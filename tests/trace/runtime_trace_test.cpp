// Integration tests for tracing woven into the msg runtime: Session
// lifetime mirrors check::Harness, spans carry kind/width/depth/envelope
// path, the solver metrics channel publishes residuals, and — the contract
// the whole subsystem hangs on — Stats are bit-identical with tracing off,
// on, or compiled out.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/trace/trace.hpp"
#include "spmd_test_util.hpp"

namespace trace = hpfcg::trace;
using hpfcg::msg::Process;
using hpfcg::msg::Stats;
using hpfcg_test::run_spmd;

namespace {

std::vector<trace::Span> spans_of_kind(const trace::RankTrace& t,
                                       trace::SpanKind kind) {
  std::vector<trace::Span> out;
  for (const auto& s : t.spans()) {
    if (s.kind == kind) out.push_back(s);
  }
  return out;
}

TEST(RuntimeTrace, SessionExistsOnlyWhenEnabled) {
  if (!trace::kCompiled) GTEST_SKIP() << "tracing compiled out";
  {
    trace::ScopedEnable off(false);
    hpfcg::msg::Runtime rt(2);
    EXPECT_EQ(rt.tracer(), nullptr);
  }
  {
    trace::ScopedEnable on(true);
    hpfcg::msg::Runtime rt(2);
    ASSERT_NE(rt.tracer(), nullptr);
    EXPECT_EQ(rt.tracer()->nprocs(), 2);
  }
}

TEST(RuntimeTrace, CollectiveSpansCarryKindWidthAndDepth) {
  if (!trace::kCompiled) GTEST_SKIP() << "tracing compiled out";
  trace::ScopedEnable on(true);
  for (const int np : hpfcg_test::test_machine_sizes()) {
    auto rt = run_spmd(np, [](Process& p) {
      std::vector<double> vals(3, static_cast<double>(p.rank()));
      p.allreduce_batch(std::span<double>(vals));
      p.barrier();
    });
    ASSERT_NE(rt->tracer(), nullptr);
    for (int r = 0; r < np; ++r) {
      const auto batches = spans_of_kind(rt->tracer()->rank(r),
                                         trace::SpanKind::kAllreduceBatch);
      ASSERT_EQ(batches.size(), 1u) << "np=" << np << " rank=" << r;
      EXPECT_EQ(batches[0].a, 3u);
      EXPECT_EQ(batches[0].bytes, 3 * sizeof(double));
      // depth = ceil(log2 np)
      int d = 0;
      while ((1 << d) < np) ++d;
      EXPECT_EQ(batches[0].depth, d) << "np=" << np;
      const auto barriers =
          spans_of_kind(rt->tracer()->rank(r), trace::SpanKind::kBarrier);
      EXPECT_EQ(barriers.size(), 1u);
    }
  }
}

TEST(RuntimeTrace, SendRecvSpansCarryPeerAndEnvelopePath) {
  if (!trace::kCompiled) GTEST_SKIP() << "tracing compiled out";
  trace::ScopedEnable on(true);
  auto rt = run_spmd(2, [](Process& p) {
    const std::vector<double> big(64, 1.0);  // 512 B: heap envelope
    const double small = 2.0;                // 8 B: inline envelope
    if (p.rank() == 0) {
      p.send_value(1, 7, small);
      p.send(1, 8, std::span<const double>(big.data(), big.size()));
    } else {
      (void)p.recv_value<double>(0, 7);
      (void)p.recv<double>(0, 8);
    }
  });
  ASSERT_NE(rt->tracer(), nullptr);
  const auto sends =
      spans_of_kind(rt->tracer()->rank(0), trace::SpanKind::kSend);
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[0].a, 1u);
  EXPECT_EQ(sends[0].bytes, sizeof(double));
  EXPECT_EQ(sends[0].aux,
            static_cast<std::uint8_t>(trace::EnvelopePath::kInline));
  EXPECT_EQ(sends[1].bytes, 64 * sizeof(double));
  EXPECT_NE(sends[1].aux,
            static_cast<std::uint8_t>(trace::EnvelopePath::kInline));
  const auto recvs =
      spans_of_kind(rt->tracer()->rank(1), trace::SpanKind::kRecv);
  ASSERT_EQ(recvs.size(), 2u);
  EXPECT_EQ(recvs[0].a, 0u);  // actual sender patched in
  EXPECT_EQ(recvs[0].bytes, sizeof(double));
}

TEST(RuntimeTrace, IterationMetricsChannelPublishesResiduals) {
  if (!trace::kCompiled) GTEST_SKIP() << "tracing compiled out";
  trace::ScopedEnable on(true);
  auto rt = run_spmd(2, [](Process& p) {
    for (int k = 0; k < 3; ++k) {
      double v = 1.0;
      p.allreduce(v);
      p.trace_iteration(static_cast<std::uint64_t>(k),
                        1.0 / static_cast<double>(k + 1));
    }
  });
  ASSERT_NE(rt->tracer(), nullptr);
  const auto iters = rt->tracer()->rank(0).iterations();
  ASSERT_EQ(iters.size(), 3u);
  EXPECT_EQ(iters[2].iteration, 2u);
  EXPECT_DOUBLE_EQ(iters[2].residual, 1.0 / 3.0);
  // Cumulative counters are nondecreasing along the channel.
  EXPECT_GE(iters[2].reductions, iters[0].reductions);
  EXPECT_GE(iters[2].bytes_moved, iters[0].bytes_moved);
  EXPECT_GT(iters[2].reductions, 0u);
}

/// The tentpole contract: tracing must never perturb the machine's
/// observable behavior.  Same workload, tracing off vs on — every Stats
/// field must match bit for bit.
TEST(RuntimeTrace, StatsBitIdenticalWithTracingOnAndOff) {
  const auto workload = [](Process& p) {
    std::vector<double> vals(4, static_cast<double>(p.rank() + 1));
    p.allreduce_batch(std::span<double>(vals));
    p.barrier();
    std::vector<double> buf(10, p.rank() == 0 ? 3.0 : 0.0);
    p.broadcast(0, buf);
    const double m = p.reduce(0, static_cast<double>(p.rank()));
    (void)m;
  };
  std::vector<Stats> off_stats, on_stats;
  for (const int np : hpfcg_test::test_machine_sizes()) {
    {
      trace::ScopedEnable off(false);
      auto rt = run_spmd(np, workload);
      off_stats.push_back(rt->total_stats());
    }
    {
      trace::ScopedEnable on(true);
      auto rt = run_spmd(np, workload);
      on_stats.push_back(rt->total_stats());
    }
  }
  ASSERT_EQ(off_stats.size(), on_stats.size());
  for (std::size_t i = 0; i < off_stats.size(); ++i) {
    const Stats& a = off_stats[i];
    const Stats& b = on_stats[i];
    EXPECT_EQ(a.messages_sent, b.messages_sent) << "i=" << i;
    EXPECT_EQ(a.messages_received, b.messages_received) << "i=" << i;
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "i=" << i;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "i=" << i;
    EXPECT_EQ(a.flops, b.flops) << "i=" << i;
    EXPECT_EQ(a.barriers, b.barriers) << "i=" << i;
    EXPECT_EQ(a.collectives, b.collectives) << "i=" << i;
    EXPECT_EQ(a.reductions, b.reductions) << "i=" << i;
    EXPECT_EQ(a.reduction_values, b.reduction_values) << "i=" << i;
    EXPECT_EQ(a.envelopes_inline, b.envelopes_inline) << "i=" << i;
    // The pooled/heap split races recycle against the next draw; only the
    // sum is deterministic across runs.
    EXPECT_EQ(a.envelopes_pooled + a.envelopes_heap,
              b.envelopes_pooled + b.envelopes_heap)
        << "i=" << i;
    EXPECT_EQ(a.modeled_comm_seconds, b.modeled_comm_seconds) << "i=" << i;
    EXPECT_EQ(a.modeled_compute_seconds, b.modeled_compute_seconds)
        << "i=" << i;
    EXPECT_EQ(a.modeled_wait_seconds, b.modeled_wait_seconds) << "i=" << i;
  }
}

TEST(RuntimeTrace, RingCapacityIsRespectedAndDropsAreCounted) {
  if (!trace::kCompiled) GTEST_SKIP() << "tracing compiled out";
  trace::ScopedEnable on(true);
  const std::size_t prev = trace::ring_capacity();
  trace::set_ring_capacity(8);
  auto rt = run_spmd(2, [](Process& p) {
    for (int i = 0; i < 100; ++i) p.barrier();
  });
  trace::set_ring_capacity(prev);
  ASSERT_NE(rt->tracer(), nullptr);
  const auto& t = rt->tracer()->rank(0);
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.spans().size(), 8u);
  EXPECT_EQ(t.recorded(), 100u);
  EXPECT_EQ(t.dropped(), 92u);
}

}  // namespace
