// Tests for the least-squares cost-model fit: exact recovery of synthetic
// parameters, degenerate-design rejection, intercept pinning, and the
// span -> FitSample derivation for tree collectives.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <span>
#include <vector>

#include "hpfcg/trace/model_fit.hpp"
#include "hpfcg/trace/span.hpp"

namespace trace = hpfcg::trace;

namespace {

/// Synthetic samples generated from known parameters over a grid of
/// (startups, bytes) designs; deterministic, noise-free.
std::vector<trace::FitSample> synthetic(double t_fixed, double t_startup,
                                        double t_comm) {
  std::vector<trace::FitSample> out;
  for (const double d : {1.0, 2.0, 3.0, 4.0, 6.0}) {
    for (const double b : {8.0, 128.0, 2048.0, 32768.0}) {
      trace::FitSample s;
      s.startups = d;
      s.bytes = d * b;
      s.seconds = t_fixed + t_startup * s.startups + t_comm * s.bytes;
      out.push_back(s);
    }
  }
  return out;
}

TEST(ModelFit, RecoversExactSyntheticParameters) {
  const double t_fixed = 2e-6, t_startup = 50e-6, t_comm = 10e-9;
  const auto samples = synthetic(t_fixed, t_startup, t_comm);
  const trace::ModelFit fit = trace::fit_cost_model(samples);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.t_fixed, t_fixed, 1e-12);
  EXPECT_NEAR(fit.t_startup, t_startup, 1e-12);
  EXPECT_NEAR(fit.t_comm, t_comm, 1e-15);
  EXPECT_NEAR(fit.rms_residual, 0.0, 1e-12);
  EXPECT_NEAR(fit.predict(4.0, 4096.0),
              t_fixed + 4.0 * t_startup + 4096.0 * t_comm, 1e-12);
}

TEST(ModelFit, TooFewSamplesIsNotOk) {
  std::vector<trace::FitSample> two(2);
  two[0] = {1.0, 8.0, 1e-4};
  two[1] = {2.0, 16.0, 2e-4};
  EXPECT_FALSE(trace::fit_cost_model(two).ok);
  EXPECT_FALSE(trace::fit_cost_model(std::span<const trace::FitSample>{}).ok);
}

TEST(ModelFit, CollinearDesignIsNotOk) {
  // bytes strictly proportional to startups: the two predictors are
  // indistinguishable and the normal equations are singular.
  std::vector<trace::FitSample> bad;
  for (const double d : {1.0, 2.0, 3.0, 4.0}) {
    bad.push_back({d, 64.0 * d, 1e-5 * d});
  }
  EXPECT_FALSE(trace::fit_cost_model(bad).ok);
}

TEST(ModelFit, RelativeWeightingRecoversExactDataIdentically) {
  // On noise-free data the 1/T weighting changes nothing: both objectives
  // are minimized at zero residual, so the recovered parameters agree.
  const double t_fixed = 2e-6, t_startup = 50e-6, t_comm = 10e-9;
  const auto samples = synthetic(t_fixed, t_startup, t_comm);
  const trace::ModelFit fit =
      trace::fit_cost_model(samples, /*with_intercept=*/true,
                            /*relative=*/true);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.t_fixed, t_fixed, 1e-12);
  EXPECT_NEAR(fit.t_startup, t_startup, 1e-12);
  EXPECT_NEAR(fit.t_comm, t_comm, 1e-15);
  // rms_residual is the RELATIVE error here — still zero on exact data.
  EXPECT_NEAR(fit.rms_residual, 0.0, 1e-9);
}

TEST(ModelFit, RelativeWeightingOptimizesRelativeResiduals) {
  // Each mode is the exact minimizer of its own objective, so on noisy
  // data where the two solutions differ, the relative fit must achieve a
  // strictly smaller sum of squared RELATIVE residuals and the absolute
  // fit a strictly smaller sum of squared ABSOLUTE residuals.
  std::vector<trace::FitSample> samples = synthetic(0.0, 1e-6, 1e-9);
  samples[0].seconds *= 3.0;   // inflate the smallest config (d=1, b=8)
  samples.back().seconds *= 1.1;  // and nudge the largest
  const trace::ModelFit abs_fit = trace::fit_cost_model(samples);
  const trace::ModelFit rel_fit =
      trace::fit_cost_model(samples, /*with_intercept=*/true,
                            /*relative=*/true);
  ASSERT_TRUE(abs_fit.ok);
  ASSERT_TRUE(rel_fit.ok);
  const auto sq_residuals = [&samples](const trace::ModelFit& f,
                                       bool relative) {
    double sq = 0.0;
    for (const auto& s : samples) {
      double e = f.predict(s.startups, s.bytes) - s.seconds;
      if (relative) e /= s.seconds;
      sq += e * e;
    }
    return sq;
  };
  EXPECT_LT(sq_residuals(rel_fit, true), sq_residuals(abs_fit, true));
  EXPECT_LT(sq_residuals(abs_fit, false), sq_residuals(rel_fit, false));
  // And rms_residual reports in the mode's own currency.
  EXPECT_NEAR(rel_fit.rms_residual,
              std::sqrt(sq_residuals(rel_fit, true) /
                        static_cast<double>(samples.size())),
              1e-12);
}

TEST(ModelFit, WithoutInterceptPinsFixedTerm) {
  const double t_startup = 40e-6, t_comm = 8e-9;
  const auto samples = synthetic(0.0, t_startup, t_comm);
  const trace::ModelFit fit =
      trace::fit_cost_model(samples, /*with_intercept=*/false);
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.t_fixed, 0.0);
  EXPECT_NEAR(fit.t_startup, t_startup, 1e-12);
  EXPECT_NEAR(fit.t_comm, t_comm, 1e-15);
}

trace::Span tree_span(trace::SpanKind kind, std::uint16_t depth,
                      std::uint64_t bytes, std::uint64_t dur_ns) {
  trace::Span s;
  s.kind = kind;
  s.depth = depth;
  s.bytes = bytes;
  s.t0_ns = 1000;
  s.t1_ns = 1000 + dur_ns;
  return s;
}

TEST(ModelFit, TreeCollectiveSamplesCountPassesPerClass) {
  trace::RankTrace t(16, std::chrono::steady_clock::now());
  // Allreduce-class: up + down the tree -> 2·depth startups.
  t.record(tree_span(trace::SpanKind::kAllreduceBatch, 3, 24, 5000));
  // Reduce-class: one pass -> depth startups.
  t.record(tree_span(trace::SpanKind::kReduce, 3, 8, 2000));
  // Broadcast-class: one pass.
  t.record(tree_span(trace::SpanKind::kBroadcast, 2, 80, 1500));
  // Non-tree spans are ignored entirely.
  t.record(tree_span(trace::SpanKind::kSend, 0, 64, 100));
  t.record(tree_span(trace::SpanKind::kBarrier, 3, 0, 300));
  t.record(tree_span(trace::SpanKind::kIteration, 0, 0, 9000));

  const auto samples = trace::tree_collective_samples(t);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].startups, 6.0);
  EXPECT_DOUBLE_EQ(samples[0].bytes, 6.0 * 24.0);
  EXPECT_DOUBLE_EQ(samples[0].seconds, 5e-6);
  EXPECT_DOUBLE_EQ(samples[1].startups, 3.0);
  EXPECT_DOUBLE_EQ(samples[1].bytes, 3.0 * 8.0);
  EXPECT_DOUBLE_EQ(samples[2].startups, 2.0);
  EXPECT_DOUBLE_EQ(samples[2].bytes, 2.0 * 80.0);
}

TEST(ModelFit, FitFromDerivedSamplesRoundTrips) {
  // Build spans whose durations follow the model exactly, derive samples,
  // fit, and check the parameters come back.
  const double t_fixed = 1e-6, t_startup = 30e-6, t_comm = 5e-9;
  trace::RankTrace t(64, std::chrono::steady_clock::now());
  for (const std::uint16_t d : {std::uint16_t{1}, std::uint16_t{2},
                                std::uint16_t{3}}) {
    for (const std::uint64_t b : {std::uint64_t{8}, std::uint64_t{256},
                                  std::uint64_t{4096}}) {
      const double start = 2.0 * d;
      const double secs = t_fixed + t_startup * start +
                          t_comm * start * static_cast<double>(b);
      t.record(tree_span(trace::SpanKind::kAllreduceBatch, d, b,
                         static_cast<std::uint64_t>(secs * 1e9)));
    }
  }
  const auto samples = trace::tree_collective_samples(t);
  ASSERT_EQ(samples.size(), 9u);
  const trace::ModelFit fit = trace::fit_cost_model(samples);
  ASSERT_TRUE(fit.ok);
  // Durations were quantized to whole nanoseconds, so allow that much.
  EXPECT_NEAR(fit.t_startup, t_startup, 1e-6);
  EXPECT_NEAR(fit.t_comm, t_comm, 1e-10);
}

}  // namespace
