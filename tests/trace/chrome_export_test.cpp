// Tests for the Chrome-trace / Perfetto JSON exporter: envelope shape,
// per-rank process + lane metadata, "X" duration events with span args,
// and "C" counter tracks from the iteration-metrics channel.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/trace/chrome_export.hpp"
#include "hpfcg/trace/trace.hpp"
#include "spmd_test_util.hpp"

namespace trace = hpfcg::trace;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& ndl) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(ndl); pos != std::string::npos;
       pos = hay.find(ndl, pos + ndl.size())) {
    ++n;
  }
  return n;
}

TEST(ChromeExport, EmptySessionStillProducesValidEnvelope) {
  trace::Session s(2, 16);
  const std::string json = trace::chrome_trace_json(s);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  // Metadata for both ranks even with no spans.
  EXPECT_EQ(count_occurrences(json, "\"process_name\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"rank 0\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"rank 1\""), 1u);
  // Three named lanes per rank.
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 6u);
  EXPECT_EQ(count_occurrences(json, "\"comm\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"intrinsics\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"solver\""), 2u);
  // No duration or counter events.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 0u);
}

TEST(ChromeExport, SpansBecomeDurationEventsWithArgs) {
  trace::Session s(1, 16);
  trace::Span sp;
  sp.t0_ns = 1000;
  sp.t1_ns = 3500;
  sp.bytes = 24;
  sp.a = 3;
  sp.depth = 2;
  sp.kind = trace::SpanKind::kAllreduceBatch;
  s.rank(0).record(sp);
  const std::string json = trace::chrome_trace_json(s);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 1u);
  EXPECT_NE(json.find("\"name\":\"allreduce_batch\""), std::string::npos);
  // ts/dur are microseconds: 1000 ns -> 1 us, 2500 ns -> 2.5 us.
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":24"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":2"), std::string::npos);
  // Collective lane is tid 0.
  EXPECT_NE(json.find("\"tid\":0,\"ts\":"), std::string::npos);
}

TEST(ChromeExport, IterationMetricsBecomeCounterTracks) {
  trace::Session s(1, 16);
  trace::IterationMetrics m;
  m.t_ns = 2000;
  m.iteration = 0;
  m.residual = 0.125;
  m.reductions = 7;
  m.bytes_moved = 96;
  s.rank(0).note_iteration(m);
  const std::string json = trace::chrome_trace_json(s);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 3u);
  EXPECT_NE(json.find("\"residual\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"reductions\":7"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_moved\":96"), std::string::npos);
}

TEST(ChromeExport, ResidualCountersRoundTripBitExactly) {
  // The reproducibility gates parse residuals back out of the exported
  // trace and compare them bit for bit, so the exporter must print
  // max_digits10 digits — the default 6-digit ostream precision silently
  // truncated them (the satellite bug this test pins).
  const double nasty[] = {
      1.0 / 3.0,
      0.1234567890123456789,
      6.62607015e-34,
      1.7976931348623157e308,
      2.2250738585072014e-308,
      -9.869604401089358,
  };
  trace::Session s(1, 16);
  for (std::size_t i = 0; i < std::size(nasty); ++i) {
    trace::IterationMetrics m;
    m.t_ns = 1000 * (i + 1);
    m.iteration = i;
    m.residual = nasty[i];
    s.rank(0).note_iteration(m);
  }
  const std::string json = trace::chrome_trace_json(s);
  // Pull every "residual": value back out and compare bits.
  std::size_t found = 0;
  const std::string key = "\"residual\":";
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    // Skip the counter-name occurrences ("name":"residual") — values only.
    const char c = json[pos + key.size()];
    if (c == '"' ) continue;
    ASSERT_LT(found, std::size(nasty));
    const double parsed = std::strtod(json.c_str() + pos + key.size(), nullptr);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
              std::bit_cast<std::uint64_t>(nasty[found]))
        << "residual " << found << " lost bits in export";
    ++found;
  }
  EXPECT_EQ(found, std::size(nasty));
  // The precision bump must not leak into neighboring fields of the
  // stream: integer counters still print as integers.
  EXPECT_NE(json.find("\"reductions\":0"), std::string::npos);
}

TEST(ChromeExport, EndToEndTracedRunExportsEveryRank) {
  if (!trace::kCompiled) GTEST_SKIP() << "tracing compiled out";
  trace::ScopedEnable on(true);
  auto rt = run_spmd(4, [](Process& p) {
    std::vector<double> vals(2, 1.0);
    p.allreduce_batch(std::span<double>(vals));
    p.barrier();
  });
  ASSERT_NE(rt->tracer(), nullptr);
  const std::string json = trace::chrome_trace_json(*rt->tracer());
  EXPECT_EQ(count_occurrences(json, "\"process_name\""), 4u);
  // Every rank recorded the batch and the barrier (ranks also record the
  // sends/receives the tree lowers to, so >= 2 X-events per rank).
  EXPECT_GE(count_occurrences(json, "\"ph\":\"X\""), 8u);
  EXPECT_GE(count_occurrences(json, "\"name\":\"allreduce_batch\""), 4u);
  // Balanced braces/brackets as a cheap well-formedness proxy.
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
}

}  // namespace
