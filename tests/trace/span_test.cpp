// Unit tests for the trace span ring: capacity, wrap-around accounting,
// oldest-first snapshots, SpanScope null-safety, and the iteration-metrics
// channel.  These exercise RankTrace directly (no simulated machine).

#include <gtest/gtest.h>

#include <chrono>

#include "hpfcg/trace/session.hpp"
#include "hpfcg/trace/span.hpp"

namespace trace = hpfcg::trace;

namespace {

trace::Span make_span(std::uint64_t t0, trace::SpanKind kind,
                      std::uint32_t a = 0) {
  trace::Span s;
  s.t0_ns = t0;
  s.t1_ns = t0 + 100;
  s.kind = kind;
  s.a = a;
  return s;
}

TEST(RankTrace, RecordsInOrderUpToCapacity) {
  trace::RankTrace t(8, std::chrono::steady_clock::now());
  EXPECT_EQ(t.capacity(), 8u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    t.record(make_span(i, trace::SpanKind::kSend, i));
  }
  EXPECT_EQ(t.recorded(), 5u);
  EXPECT_EQ(t.dropped(), 0u);
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(spans[i].a, i);
}

TEST(RankTrace, WrapsOverOldestAndCountsDropped) {
  trace::RankTrace t(4, std::chrono::steady_clock::now());
  for (std::uint32_t i = 0; i < 10; ++i) {
    t.record(make_span(i, trace::SpanKind::kRecv, i));
  }
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest surviving span first: 6, 7, 8, 9.
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(spans[i].a, 6 + i);
}

TEST(RankTrace, ClearForgetsEverything) {
  trace::RankTrace t(4, std::chrono::steady_clock::now());
  t.record(make_span(0, trace::SpanKind::kBarrier));
  t.note_iteration({});
  t.clear();
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.spans().empty());
  EXPECT_TRUE(t.iterations().empty());
}

TEST(RankTrace, IterationMetricsChannelKeepsOrder) {
  trace::RankTrace t(16, std::chrono::steady_clock::now());
  for (std::uint64_t k = 0; k < 5; ++k) {
    trace::IterationMetrics m;
    m.iteration = k;
    m.residual = 1.0 / static_cast<double>(k + 1);
    m.reductions = k * 2;
    t.note_iteration(m);
  }
  const auto iters = t.iterations();
  ASSERT_EQ(iters.size(), 5u);
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_EQ(iters[k].iteration, k);
    EXPECT_EQ(iters[k].reductions, k * 2);
  }
}

TEST(SpanScope, NullTracerIsANoOp) {
  // Must not crash and must not read the clock; nothing observable, so the
  // assertion is simply that all members are callable.
  trace::SpanScope s(nullptr, trace::SpanKind::kDot, 1, 8);
  s.set_bytes(16);
  s.set_peer(3);
  s.set_aux(1);
}

TEST(SpanScope, RecordsOnScopeExitWithPatches) {
  trace::RankTrace t(4, std::chrono::steady_clock::now());
  {
    trace::SpanScope s(&t, trace::SpanKind::kSend, 1, 8);
    s.set_peer(3);
    s.set_bytes(64);
    s.set_aux(static_cast<std::uint8_t>(trace::EnvelopePath::kPooled));
    EXPECT_EQ(t.recorded(), 0u);  // not yet closed
  }
  ASSERT_EQ(t.recorded(), 1u);
  const auto spans = t.spans();
  EXPECT_EQ(spans[0].kind, trace::SpanKind::kSend);
  EXPECT_EQ(spans[0].a, 3u);
  EXPECT_EQ(spans[0].bytes, 64u);
  EXPECT_EQ(spans[0].aux,
            static_cast<std::uint8_t>(trace::EnvelopePath::kPooled));
  EXPECT_GE(spans[0].t1_ns, spans[0].t0_ns);
}

TEST(Session, RanksShareOneOrigin) {
  trace::Session s(3, 16);
  EXPECT_EQ(s.nprocs(), 3);
  s.rank(0).record(make_span(0, trace::SpanKind::kBarrier));
  s.rank(2).record(make_span(0, trace::SpanKind::kBarrier));
  EXPECT_EQ(s.total_recorded(), 2u);
  EXPECT_EQ(s.total_dropped(), 0u);
  s.clear();
  EXPECT_EQ(s.total_recorded(), 0u);
}

TEST(SpanKinds, NamesAreStableAndTreePredicateMatches) {
  EXPECT_STREQ(trace::span_kind_name(trace::SpanKind::kAllreduceBatch),
               "allreduce_batch");
  EXPECT_STREQ(trace::span_kind_name(trace::SpanKind::kMatvec), "matvec");
  EXPECT_TRUE(trace::is_tree_collective(trace::SpanKind::kReduce));
  EXPECT_TRUE(trace::is_tree_collective(trace::SpanKind::kAllreduceBatch));
  EXPECT_FALSE(trace::is_tree_collective(trace::SpanKind::kSend));
  EXPECT_FALSE(trace::is_tree_collective(trace::SpanKind::kBarrier));
  EXPECT_FALSE(trace::is_tree_collective(trace::SpanKind::kIteration));
}

}  // namespace
