// Distributed CGS and block-Jacobi preconditioning — the remaining family
// members, verified against their serial references.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hpfcg/solvers/block_jacobi.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

class DistExtrasTest : public ::testing::TestWithParam<int> {};

TEST_P(DistExtrasTest, CgsDistMatchesSerialCgs) {
  const int np = GetParam();
  const auto a = sp::random_spd(56, 5, 201);
  const auto b_full = sp::random_rhs(56, 202);
  std::vector<double> x_ref(56, 0.0);
  const auto ref = sv::cgs(a, b_full, x_ref, {.rel_tolerance = 1e-9});
  ASSERT_TRUE(ref.converged);

  run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(56, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::cgs_dist<double>(op, b, x, {.rel_tolerance = 1e-9});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-6);
    }
  });
}

TEST_P(DistExtrasTest, BlockJacobiSolvesAndBeatsPointJacobi) {
  const int np = GetParam();
  // Strong within-block coupling: block-Jacobi should capture it and
  // converge in no more iterations than point Jacobi.
  const auto a = sp::tridiagonal(96, 2.0, -0.95);
  const auto b_full = sp::random_rhs(96, 301);
  std::vector<double> x_direct =
      sv::cholesky_solve(a.to_dense(), b_full);

  std::size_t block_iters = 0, point_iters = 0;
  run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(96, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };

    // Block-Jacobi PCG.
    const auto prec = sv::block_jacobi_dist(proc, a, *dist);
    const auto res = sv::pcg_dist<double>(op, prec, b, x,
                                          {.max_iterations = 1000,
                                           .rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_direct[i], 1e-6);
    }

    // Point-Jacobi PCG for comparison.
    DistributedVector<double> x2(proc, dist), inv_diag(proc, dist);
    const auto diag = a.diagonal();
    inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
    const auto res2 = sv::pcg_dist<double>(op, sv::jacobi_dist(inv_diag), b,
                                           x2, {.max_iterations = 1000,
                                                .rel_tolerance = 1e-10});
    EXPECT_TRUE(res2.converged);
    if (proc.rank() == 0) {
      block_iters = res.iterations;
      point_iters = res2.iterations;
    }
  });
  EXPECT_LE(block_iters, point_iters);
  if (np == 1) {
    // One block == the whole matrix: the preconditioner is a direct solve.
    EXPECT_LE(block_iters, 2u);
  }
}

TEST_P(DistExtrasTest, BlockJacobiApplicationIsCommunicationFree) {
  const int np = GetParam();
  const auto a = sp::tridiagonal(64, 3.0, -1.0);
  auto rt = run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(64, proc.nprocs()));
    const auto prec = sv::block_jacobi_dist(proc, a, *dist);
    DistributedVector<double> r(proc, dist), z(proc, dist);
    r.set_from([](std::size_t g) { return static_cast<double>(g % 7) + 1; });
    prec(r, z);
    // Every rank's z solves its block exactly: A_block z_block = r_block.
    // (Checked globally through the solver tests; here: no NaNs.)
    for (const double v : z.local()) EXPECT_TRUE(std::isfinite(v));
  });
  EXPECT_EQ(rt->total_stats().messages_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, DistExtrasTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
