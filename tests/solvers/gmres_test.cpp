// GMRES(m): the "longer recurrences, greater storage" method of
// Section 2.1 — serial and distributed, restart behaviour, non-symmetric
// capability, and agreement with CG on SPD systems.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "hpfcg/solvers/dist_gmres.hpp"
#include "hpfcg/solvers/gmres.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

double residual_norm(const sp::Csr<double>& a, std::span<const double> x,
                     std::span<const double> b) {
  std::vector<double> q(b.size());
  a.matvec(x, q);
  double acc = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    acc += (b[i] - q[i]) * (b[i] - q[i]);
  }
  return std::sqrt(acc);
}

TEST(Gmres, SolvesSpdSystem) {
  const auto a = sp::laplacian_2d(10, 10);
  const auto b = sp::random_rhs(a.n_rows(), 3);
  std::vector<double> x(b.size(), 0.0);
  const auto res = sv::gmres(a, b, x,
                             {.base = {.max_iterations = 2000,
                                       .rel_tolerance = 1e-10},
                              .restart = 30});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(a, x, b), 1e-8);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  // CG requires symmetry; GMRES does not.  Upwind-convection-like matrix.
  const std::size_t n = 80;
  sp::Coo<double> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0);
    if (i + 1 < n) coo.add(i, i + 1, -1.0);
    if (i > 0) coo.add(i, i - 1, -2.5);  // asymmetric coupling
  }
  const auto a = sp::Csr<double>::from_coo(std::move(coo));
  ASSERT_FALSE(a.is_symmetric(1e-12));
  const auto b = sp::random_rhs(n, 5);
  std::vector<double> x(n, 0.0);
  const auto res = sv::gmres(a, b, x,
                             {.base = {.max_iterations = 1000,
                                       .rel_tolerance = 1e-10},
                              .restart = 25});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(a, x, b), 1e-8);
}

TEST(Gmres, FullRestartLengthIsDirectLikeOnSmallSystems) {
  // With m >= n, GMRES is the full (unrestarted) method: it must converge
  // within n steps in exact arithmetic.
  const auto a = sp::random_spd(24, 4, 9);
  const auto b = sp::random_rhs(24, 10);
  std::vector<double> x(24, 0.0);
  const auto res = sv::gmres(a, b, x,
                             {.base = {.max_iterations = 100,
                                       .rel_tolerance = 1e-10},
                              .restart = 24});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 26u);
}

TEST(Gmres, SmallRestartStillConvergesButSlower) {
  const auto a = sp::laplacian_2d(12, 12);
  const auto b = sp::random_rhs(a.n_rows(), 11);
  sv::GmresOptions big{.base = {.max_iterations = 5000,
                                .rel_tolerance = 1e-8},
                       .restart = 60};
  sv::GmresOptions small{.base = {.max_iterations = 5000,
                                  .rel_tolerance = 1e-8},
                         .restart = 5};
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto r_big = sv::gmres(a, b, x1, big);
  const auto r_small = sv::gmres(a, b, x2, small);
  EXPECT_TRUE(r_big.converged);
  EXPECT_TRUE(r_small.converged);
  EXPECT_GE(r_small.iterations, r_big.iterations);
}

TEST(Gmres, ResidualHistoryIsNonIncreasing) {
  // Within a GMRES cycle the least-squares residual is monotone.
  const auto a = sp::random_spd(60, 5, 17);
  const auto b = sp::random_rhs(60, 18);
  std::vector<double> x(60, 0.0);
  const auto res = sv::gmres(a, b, x,
                             {.base = {.max_iterations = 200,
                                       .rel_tolerance = 1e-10,
                                       .track_residuals = true},
                              .restart = 60});
  ASSERT_TRUE(res.converged);
  for (std::size_t k = 1; k < res.residual_history.size(); ++k) {
    EXPECT_LE(res.residual_history[k],
              res.residual_history[k - 1] * (1.0 + 1e-12));
  }
}

TEST(Gmres, ZeroRhsAndWarmStart) {
  const auto a = sp::tridiagonal(16, 3.0, -1.0);
  std::vector<double> b(16, 0.0), x(16, 0.5);
  const auto res = sv::gmres(a, b, x, {.base = {.rel_tolerance = 1e-12}});
  EXPECT_TRUE(res.converged);
  for (const double v : x) EXPECT_NEAR(v, 0.0, 1e-10);
}

class DistGmresTest : public ::testing::TestWithParam<int> {};

TEST_P(DistGmresTest, MatchesSerialGmres) {
  const int np = GetParam();
  const auto a = sp::laplacian_2d(8, 8);
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 21);
  std::vector<double> x_ref(n, 0.0);
  const sv::GmresOptions opts{.base = {.max_iterations = 500,
                                       .rel_tolerance = 1e-9},
                              .restart = 20};
  const auto ref = sv::gmres(a, b_full, x_ref, opts);
  ASSERT_TRUE(ref.converged);

  run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::gmres_dist<double>(op, b, x, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-6);
    }
  });
}

TEST_P(DistGmresTest, MergeTrafficGrowsWithKrylovDepth) {
  // Section 2.1's storage/communication remark, made quantitative: the
  // j-th Arnoldi step performs j+1 merges, so a deeper restart costs more
  // collectives per step than CG's constant two.
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "no communication on one processor";
  const auto a = sp::laplacian_2d(10, 10);
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 33);

  const auto collectives_for = [&](std::size_t steps, std::size_t restart) {
    auto rt = run_spmd(np, [&](Process& proc) {
      auto dist = std::make_shared<const Distribution>(
          Distribution::block(n, proc.nprocs()));
      auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
      DistributedVector<double> b(proc, dist), x(proc, dist);
      b.from_global(b_full);
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        mat.matvec(p, q);
      };
      (void)sv::gmres_dist<double>(op, b, x,
                                   {.base = {.max_iterations = steps,
                                             .rel_tolerance = 0.0},
                                    .restart = restart});
    });
    return rt->total_stats().collectives;
  };
  // Same number of inner steps, deeper basis => more merges.
  EXPECT_GT(collectives_for(24, 24), collectives_for(24, 4));
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, DistGmresTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
