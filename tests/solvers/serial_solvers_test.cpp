// Serial solver family: each method must solve SPD systems to tolerance and
// match the direct (Cholesky/Gaussian) ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hpfcg/solvers/dense_direct.hpp"
#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/generators.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;

namespace {

double max_err(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

struct Problem {
  sp::Csr<double> a;
  std::vector<double> b;
  std::vector<double> x_ref;
};

Problem make_problem(const sp::Csr<double>& a, std::uint64_t seed) {
  Problem prob{a, sp::random_rhs(a.n_rows(), seed), {}};
  prob.x_ref = sv::cholesky_solve(prob.a.to_dense(), prob.b);
  return prob;
}

class SerialSolversTest : public ::testing::Test {
 protected:
  void SetUp() override {
    problems_.push_back(make_problem(sp::laplacian_2d(8, 8), 1));
    problems_.push_back(make_problem(sp::random_spd(70, 6, 2), 2));
    problems_.push_back(make_problem(sp::tridiagonal(50, 3.0, -1.0), 3));
  }
  std::vector<Problem> problems_;
};

TEST_F(SerialSolversTest, CgSolvesSpdSystems) {
  for (const auto& prob : problems_) {
    std::vector<double> x(prob.b.size(), 0.0);
    const auto res = sv::cg(prob.a, prob.b, x, {.rel_tolerance = 1e-12});
    EXPECT_TRUE(res.converged);
    EXPECT_FALSE(res.breakdown);
    EXPECT_LT(res.relative_residual, 1e-11);
    EXPECT_LT(max_err(x, prob.x_ref), 1e-8);
  }
}

TEST_F(SerialSolversTest, BicgMatchesCgOnSymmetricSystems) {
  // For symmetric A with rt0 = r0, BiCG reduces to CG: same iterate count
  // and (to roundoff) the same residual sequence.
  for (const auto& prob : problems_) {
    std::vector<double> x_cg(prob.b.size(), 0.0), x_bicg(prob.b.size(), 0.0);
    sv::SolveOptions opts{.rel_tolerance = 1e-10, .track_residuals = true};
    const auto r_cg = sv::cg(prob.a, prob.b, x_cg, opts);
    const auto r_bicg = sv::bicg(prob.a, prob.b, x_bicg, opts);
    EXPECT_TRUE(r_bicg.converged);
    EXPECT_EQ(r_cg.iterations, r_bicg.iterations);
    ASSERT_EQ(r_cg.residual_history.size(), r_bicg.residual_history.size());
    for (std::size_t k = 0; k < r_cg.residual_history.size(); ++k) {
      EXPECT_NEAR(r_cg.residual_history[k], r_bicg.residual_history[k],
                  1e-6 * (1.0 + r_cg.residual_history[k]));
    }
  }
}

TEST_F(SerialSolversTest, CgsSolvesSpdSystems) {
  for (const auto& prob : problems_) {
    std::vector<double> x(prob.b.size(), 0.0);
    const auto res = sv::cgs(prob.a, prob.b, x, {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    EXPECT_LT(max_err(x, prob.x_ref), 1e-6);
  }
}

TEST_F(SerialSolversTest, BicgstabSolvesSpdSystems) {
  for (const auto& prob : problems_) {
    std::vector<double> x(prob.b.size(), 0.0);
    const auto res = sv::bicgstab(prob.a, prob.b, x, {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    EXPECT_LT(max_err(x, prob.x_ref), 1e-6);
  }
}

TEST_F(SerialSolversTest, JacobiPcgConvergesFasterOnScaledSystems) {
  // Badly scaled diagonal: plain CG struggles, Jacobi fixes the scaling.
  const std::size_t n = 80;
  sp::Coo<double> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = 1.0 + static_cast<double>(i % 10) * 1000.0;
    coo.add(i, i, d);
    if (i + 1 < n) coo.add_sym(i, i + 1, -0.3);
  }
  const auto a = sp::Csr<double>::from_coo(std::move(coo));
  const auto b = sp::random_rhs(n, 5);

  std::vector<double> x0(n, 0.0), x1(n, 0.0);
  const auto plain = sv::cg(a, b, x0, {.max_iterations = 500,
                                       .rel_tolerance = 1e-12});
  const auto prec = sv::pcg(a, sv::jacobi_preconditioner(a), b, x1,
                            {.max_iterations = 500, .rel_tolerance = 1e-12});
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

TEST_F(SerialSolversTest, SsorPcgReducesIterationsOnLaplacian) {
  const auto a = sp::laplacian_2d(16, 16);
  const auto b = sp::random_rhs(a.n_rows(), 6);
  std::vector<double> x0(b.size(), 0.0), x1(b.size(), 0.0);
  sv::SolveOptions opts{.max_iterations = 2000, .rel_tolerance = 1e-10};
  const auto plain = sv::cg(a, b, x0, opts);
  const auto ssor = sv::pcg(a, sv::ssor_preconditioner(a, 1.2), b, x1, opts);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(ssor.converged);
  EXPECT_LT(ssor.iterations, plain.iterations);
  // Both converge to the same solution.
  EXPECT_LT(max_err(x0, x1), 1e-6);
}

TEST_F(SerialSolversTest, IdentityPreconditionerReproducesCg) {
  const auto& prob = problems_[0];
  std::vector<double> x_cg(prob.b.size(), 0.0), x_pcg(prob.b.size(), 0.0);
  sv::SolveOptions opts{.rel_tolerance = 1e-10, .track_residuals = true};
  const auto r1 = sv::cg(prob.a, prob.b, x_cg, opts);
  const auto r2 =
      sv::pcg(prob.a, sv::identity_preconditioner(), prob.b, x_pcg, opts);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_LT(max_err(x_cg, x_pcg), 1e-10);
}

TEST(SerialSolvers, ZeroRhsConvergesImmediately) {
  const auto a = sp::tridiagonal(10, 2.0, -1.0);
  std::vector<double> b(10, 0.0), x(10, 1.0);
  // With b = 0, the criterion is absolute: starting from x=1 CG must still
  // drive the residual to zero (solution x = 0).
  const auto res = sv::cg(a, b, x, {.rel_tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  for (const double v : x) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(SerialSolvers, WarmStartAtSolutionTakesZeroIterations) {
  const auto a = sp::tridiagonal(20, 2.0, -1.0);
  const auto b = sp::random_rhs(20, 9);
  std::vector<double> x(20, 0.0);
  (void)sv::cg(a, b, x, {.rel_tolerance = 1e-13});
  std::vector<double> x2 = x;
  const auto res = sv::cg(a, b, x2, {.rel_tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(SerialSolvers, MaxIterationsRespected) {
  const auto a = sp::laplacian_2d(12, 12);
  const auto b = sp::random_rhs(a.n_rows(), 11);
  std::vector<double> x(b.size(), 0.0);
  const auto res = sv::cg(a, b, x, {.max_iterations = 3,
                                    .rel_tolerance = 1e-14});
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3u);
}

TEST(SerialSolvers, ResidualHistoryIsMonotoneForCg) {
  // CG minimizes the A-norm of the error; the 2-norm residual of these
  // well-conditioned SPD systems decreases monotonically in practice.
  const auto a = sp::tridiagonal(60, 4.0, -1.0);
  const auto b = sp::random_rhs(60, 13);
  std::vector<double> x(60, 0.0);
  const auto res = sv::cg(a, b, x, {.rel_tolerance = 1e-12,
                                    .track_residuals = true});
  ASSERT_GT(res.residual_history.size(), 2u);
  for (std::size_t k = 1; k < res.residual_history.size(); ++k) {
    EXPECT_LE(res.residual_history[k], res.residual_history[k - 1] * 1.0001);
  }
}

TEST(DenseDirect, GaussianAndCholeskyAgree) {
  const auto a = sp::random_spd(40, 8, 15);
  const auto dense = a.to_dense();
  const auto b = sp::random_rhs(40, 16);
  const auto xg = sv::gaussian_solve(dense, b);
  const auto xc = sv::cholesky_solve(dense, b);
  EXPECT_LT(max_err(xg, xc), 1e-9);
  // Verify against the residual directly.
  std::vector<double> q(40);
  a.matvec(xg, q);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(q[i], b[i], 1e-9);
}

TEST(DenseDirect, CholeskyRejectsIndefiniteMatrix) {
  const std::vector<double> indef = {1.0, 2.0, 2.0, 1.0};  // eigenvalues 3,-1
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW((void)sv::cholesky_solve(indef, b), hpfcg::util::Error);
}

TEST(DenseDirect, GaussianRejectsSingularMatrix) {
  const std::vector<double> sing = {1.0, 2.0, 2.0, 4.0};
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW((void)sv::gaussian_solve(sing, b), hpfcg::util::Error);
}

TEST(DenseDirect, FlopModels) {
  EXPECT_GT(sv::cholesky_flops(100), 1e5 / 3);
  EXPECT_DOUBLE_EQ(sv::cg_flops(10, 50, 3), 3 * (100.0 + 100.0));
}

}  // namespace
