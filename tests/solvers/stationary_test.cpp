// Stationary methods (Jacobi/SOR) and the scatter-from-root construction:
// correctness, convergence ordering vs CG, and the distributed Jacobi sweep.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/solvers/stationary.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

TEST(Stationary, JacobiConvergesOnDiagonallyDominantSystem) {
  const auto a = sp::random_spd(60, 5, 91);  // strictly dominant by build
  const auto b = sp::random_rhs(60, 92);
  std::vector<double> x(60, 0.0), x_cg(60, 0.0);
  const auto res = sv::jacobi_iteration(a, b, x, {.max_iterations = 5000,
                                                  .rel_tolerance = 1e-9});
  ASSERT_TRUE(res.converged);
  const auto cg_res = sv::cg(a, b, x_cg, {.rel_tolerance = 1e-9});
  ASSERT_TRUE(cg_res.converged);
  for (std::size_t i = 0; i < 60; ++i) EXPECT_NEAR(x[i], x_cg[i], 1e-6);
  // CG's "faster convergence rate" (Section 2).
  EXPECT_LT(cg_res.iterations, res.iterations);
}

TEST(Stationary, SorBeatsJacobiAndGaussSeidelBeatsNeither) {
  const auto a = sp::laplacian_2d(12, 12);
  const auto b = sp::random_rhs(a.n_rows(), 93);
  const sv::SolveOptions opts{.max_iterations = 20000,
                              .rel_tolerance = 1e-8};
  std::vector<double> xj(b.size(), 0.0), xgs(b.size(), 0.0),
      xsor(b.size(), 0.0);
  const auto rj = sv::jacobi_iteration(a, b, xj, opts);
  const auto rgs = sv::sor_iteration(a, b, xgs, 1.0, opts);   // Gauss-Seidel
  const auto rsor = sv::sor_iteration(a, b, xsor, 1.5, opts);  // over-relaxed
  ASSERT_TRUE(rj.converged);
  ASSERT_TRUE(rgs.converged);
  ASSERT_TRUE(rsor.converged);
  EXPECT_LT(rgs.iterations, rj.iterations);    // GS ~ half of Jacobi
  EXPECT_LT(rsor.iterations, rgs.iterations);  // tuned SOR beats GS
}

TEST(Stationary, ZeroDiagonalDiagnosticNamesTheRow) {
  // Row 1 has no diagonal entry: both stationary sweeps divide by it, so
  // they must refuse with a message that names the offending row.
  const std::vector<double> dense = {2.0, -1.0, 0.0,   //
                                     -1.0, 0.0, -1.0,  //
                                     0.0, -1.0, 2.0};
  const auto a = hpfcg::sparse::Csr<double>::from_dense(3, 3, dense);
  const std::vector<double> b = {1.0, 1.0, 1.0};
  std::vector<double> x(3, 0.0);
  const auto expect_names_row = [&](auto&& call) {
    try {
      call();
      FAIL() << "expected a zero-diagonal diagnostic";
    } catch (const hpfcg::util::Error& e) {
      EXPECT_NE(std::string(e.what()).find("zero diagonal entry in row 1"),
                std::string::npos)
          << e.what();
    }
  };
  expect_names_row([&] { (void)sv::jacobi_iteration(a, b, x); });
  expect_names_row([&] { (void)sv::sor_iteration(a, b, x, 1.0); });
}

TEST(Stationary, SorRejectsBadOmega) {
  const auto a = sp::tridiagonal(8, 2.0, -1.0);
  const auto b = sp::random_rhs(8, 1);
  std::vector<double> x(8, 0.0);
  EXPECT_THROW((void)sv::sor_iteration(a, b, x, 0.0), hpfcg::util::Error);
  EXPECT_THROW((void)sv::sor_iteration(a, b, x, 2.0), hpfcg::util::Error);
}

class StationaryDistTest : public ::testing::TestWithParam<int> {};

TEST_P(StationaryDistTest, DistributedJacobiMatchesSerial) {
  const int np = GetParam();
  const auto a = sp::random_spd(48, 4, 95);
  const auto b_full = sp::random_rhs(48, 96);
  std::vector<double> x_ref(48, 0.0);
  const auto ref = sv::jacobi_iteration(a, b_full, x_ref,
                                        {.max_iterations = 5000,
                                         .rel_tolerance = 1e-8});
  ASSERT_TRUE(ref.converged);
  const auto diag = a.diagonal();

  run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(48, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist),
        inv_diag(proc, dist);
    b.from_global(b_full);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::jacobi_iteration_dist<double>(
        op, inv_diag, b, x, {.max_iterations = 5000, .rel_tolerance = 1e-8});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-6);
    }
  });
}

TEST_P(StationaryDistTest, ScatterFromRootMatchesReplicatedBuild) {
  const int np = GetParam();
  const auto a = sp::laplacian_2d(9, 8);
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) {
    p_full[g] = 0.5 * static_cast<double>(g % 11) - 2.0;
  }
  a.matvec(p_full, q_ref);

  run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    // Only root "has" the matrix; others pass an empty shell.
    const sp::Csr<double> empty;
    const auto mat = sp::DistCsr<double>::scatter_from_root(
        proc, 0, proc.rank() == 0 ? a : empty, dist);
    EXPECT_EQ(mat.remote_nnz(), 0u);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.from_global(p_full);
    auto mutable_mat = mat;  // matvec is non-const (cache bookkeeping)
    mutable_mat.matvec(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, StationaryDistTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
