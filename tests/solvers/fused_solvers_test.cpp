// The communication-avoiding solver variants must (a) agree with their
// serial fused references iterate-for-iterate for every machine size, and
// (b) actually pay the advertised number of reductions per iteration —
// cg_fused_dist exactly ONE against cg_dist's two (and Figure 2's literal
// three), pcg_fused_dist one against pcg_dist's three, bicgstab_fused_dist
// three against bicgstab_dist's six.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

/// 1e-10-relative agreement demanded of the distributed fused iterates.
void expect_iterates_match(const sv::SolveResult& got,
                           const sv::SolveResult& ref) {
  EXPECT_TRUE(got.converged);
  EXPECT_EQ(got.iterations, ref.iterations);
  ASSERT_EQ(got.residual_history.size(), ref.residual_history.size());
  for (std::size_t k = 0; k < got.residual_history.size(); ++k) {
    EXPECT_NEAR(got.residual_history[k], ref.residual_history[k],
                1e-10 * (1.0 + ref.residual_history[k]))
        << "iterate " << k;
  }
}

class FusedSolversTest : public ::testing::TestWithParam<int> {};

TEST(FusedSerialTest, CgFusedSolvesLikeCg) {
  const auto a = sp::laplacian_2d(7, 9);
  const auto b = sp::random_rhs(a.n_rows(), 41);
  std::vector<double> x_cg(a.n_rows(), 0.0), x_fused(a.n_rows(), 0.0);
  const auto r1 = sv::cg(a, b, x_cg, {.rel_tolerance = 1e-10});
  const auto r2 = sv::cg_fused(a, b, x_fused, {.rel_tolerance = 1e-10});
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  // Same Krylov process, reassociated recurrences: same solution, and the
  // iteration count may differ by at most a step or two.
  for (std::size_t i = 0; i < x_cg.size(); ++i) {
    EXPECT_NEAR(x_fused[i], x_cg[i], 1e-7);
  }
  EXPECT_NEAR(static_cast<double>(r2.iterations),
              static_cast<double>(r1.iterations), 2.0);
}

TEST(FusedSerialTest, PcgFusedSolvesLikePcg) {
  const auto a = sp::random_spd(64, 5, 101);
  const auto b = sp::random_rhs(64, 102);
  std::vector<double> x_ref(64, 0.0), x_fused(64, 0.0);
  const auto prec = sv::jacobi_preconditioner(a);
  const auto r1 = sv::pcg(a, prec, b, x_ref, {.rel_tolerance = 1e-10});
  const auto r2 = sv::pcg_fused(a, prec, b, x_fused, {.rel_tolerance = 1e-10});
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    EXPECT_NEAR(x_fused[i], x_ref[i], 1e-7);
  }
}

TEST(FusedSerialTest, BicgstabFusedProducesSameIteratesAsBicgstab) {
  // Same recurrence, same update order — only the merge grouping moved, so
  // the serial fused variant tracks plain BiCGSTAB step for step.
  const auto a = sp::random_spd(50, 5, 121);
  const auto b = sp::random_rhs(50, 122);
  std::vector<double> x_ref(50, 0.0), x_fused(50, 0.0);
  const auto r1 = sv::bicgstab(a, b, x_ref,
                               {.rel_tolerance = 1e-10,
                                .track_residuals = true});
  const auto r2 = sv::bicgstab_fused(a, b, x_fused,
                                     {.rel_tolerance = 1e-10,
                                      .track_residuals = true});
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(r2.iterations, r1.iterations);
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    EXPECT_NEAR(x_fused[i], x_ref[i], 1e-10);
  }
}

TEST_P(FusedSolversTest, CgFusedMatchesSerialFusedIterateForIterate) {
  const int np = GetParam();
  const auto a = sp::laplacian_2d(7, 9);
  const auto b_full = sp::random_rhs(a.n_rows(), 31);
  std::vector<double> x_ref(a.n_rows(), 0.0);
  const auto ref = sv::cg_fused(a, b_full, x_ref,
                                {.rel_tolerance = 1e-10,
                                 .track_residuals = true});
  ASSERT_TRUE(ref.converged);

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::cg_fused_dist<double>(op, b, x,
                                               {.rel_tolerance = 1e-10,
                                                .track_residuals = true});
    expect_iterates_match(res, ref);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-10 * (1.0 + std::abs(x_ref[i])));
    }
  });
}

TEST_P(FusedSolversTest, PcgFusedMatchesSerialFusedIterateForIterate) {
  const int np = GetParam();
  const auto a = sp::random_spd(64, 5, 101);
  const auto b_full = sp::random_rhs(64, 102);
  std::vector<double> x_ref(64, 0.0);
  const auto ref = sv::pcg_fused(a, sv::jacobi_preconditioner(a), b_full,
                                 x_ref,
                                 {.rel_tolerance = 1e-10,
                                  .track_residuals = true});
  ASSERT_TRUE(ref.converged);
  const auto diag = a.diagonal();

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist),
        inv_diag(proc, dist);
    b.from_global(b_full);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::pcg_fused_dist<double>(op, sv::jacobi_dist(inv_diag),
                                                b, x,
                                                {.rel_tolerance = 1e-10,
                                                 .track_residuals = true});
    expect_iterates_match(res, ref);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-10 * (1.0 + std::abs(x_ref[i])));
    }
  });
}

TEST_P(FusedSolversTest, BicgstabFusedMatchesSerialFusedIterateForIterate) {
  const int np = GetParam();
  const auto a = sp::random_spd(50, 5, 121);
  const auto b_full = sp::random_rhs(50, 122);
  std::vector<double> x_ref(50, 0.0);
  const auto ref = sv::bicgstab_fused(a, b_full, x_ref,
                                      {.rel_tolerance = 1e-10,
                                       .track_residuals = true});
  ASSERT_TRUE(ref.converged);

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(50, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res =
        sv::bicgstab_fused_dist<double>(op, b, x,
                                        {.rel_tolerance = 1e-10,
                                         .track_residuals = true});
    expect_iterates_match(res, ref);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-10 * (1.0 + std::abs(x_ref[i])));
    }
  });
}

enum class Solver { kCg, kCgFused, kPcg, kPcgFused, kBicgstab,
                    kBicgstabFused };

/// Reductions booked per iteration, isolated by differencing two runs with
/// different fixed iteration counts (setup costs cancel).
std::uint64_t reductions_per_iteration(int np, Solver which) {
  const auto a = sp::laplacian_2d(6, 6);
  const auto b_full = sp::random_rhs(a.n_rows(), 7);
  const auto diag = a.diagonal();
  const auto run_iters = [&](std::size_t iters) {
    auto rt = run_spmd(np, [&](Process& proc) {
      auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
      auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
      DistributedVector<double> b(proc, dist), x(proc, dist),
          inv_diag(proc, dist);
      b.from_global(b_full);
      inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        mat.matvec(p, q);
      };
      const sv::SolveOptions opts{.max_iterations = iters,
                                  .rel_tolerance = 1e-30};
      switch (which) {
        case Solver::kCg:
          (void)sv::cg_dist<double>(op, b, x, opts);
          break;
        case Solver::kCgFused:
          (void)sv::cg_fused_dist<double>(op, b, x, opts);
          break;
        case Solver::kPcg:
          (void)sv::pcg_dist<double>(op, sv::jacobi_dist(inv_diag), b, x,
                                     opts);
          break;
        case Solver::kPcgFused:
          (void)sv::pcg_fused_dist<double>(op, sv::jacobi_dist(inv_diag), b,
                                           x, opts);
          break;
        case Solver::kBicgstab:
          (void)sv::bicgstab_dist<double>(op, b, x, opts);
          break;
        case Solver::kBicgstabFused:
          (void)sv::bicgstab_fused_dist<double>(op, b, x, opts);
          break;
      }
    });
    return rt->stats(0).reductions;
  };
  const std::uint64_t at5 = run_iters(5);
  const std::uint64_t at10 = run_iters(10);
  return (at10 - at5) / 5;
}

TEST_P(FusedSolversTest, ReductionsPerIterationAreAsAdvertised) {
  const int np = GetParam();
  EXPECT_EQ(reductions_per_iteration(np, Solver::kCgFused), 1u);
  EXPECT_EQ(reductions_per_iteration(np, Solver::kCg), 2u);
  EXPECT_EQ(reductions_per_iteration(np, Solver::kPcgFused), 1u);
  EXPECT_EQ(reductions_per_iteration(np, Solver::kPcg), 3u);
  EXPECT_EQ(reductions_per_iteration(np, Solver::kBicgstabFused), 3u);
  EXPECT_EQ(reductions_per_iteration(np, Solver::kBicgstab), 6u);
}

TEST_P(FusedSolversTest, FusedCgMovesFewerMessagesThanBaseline) {
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "no communication on one processor";
  const auto a = sp::laplacian_2d(6, 6);
  const auto b_full = sp::random_rhs(a.n_rows(), 9);
  const auto run_solver = [&](bool fused) {
    auto rt = run_spmd(np, [&](Process& proc) {
      auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
      auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
      DistributedVector<double> b(proc, dist), x(proc, dist);
      b.from_global(b_full);
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        mat.matvec(p, q);
      };
      const sv::SolveOptions opts{.max_iterations = 20,
                                  .rel_tolerance = 1e-30};
      if (fused) {
        (void)sv::cg_fused_dist<double>(op, b, x, opts);
      } else {
        (void)sv::cg_dist<double>(op, b, x, opts);
      }
    });
    return rt->total_stats().messages_sent;
  };
  EXPECT_LT(run_solver(true), run_solver(false));
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, FusedSolversTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
