// The headline bugfix property: with HPFCG_REPRO on, the fused CG / PCG
// residual histories are bit-identical across machine sizes AND across
// rebalance schedules — the NP-dependent rounding drift the mode exists to
// remove.  The matvec is row-wise (each row dots its entries in fixed k
// order on whichever rank owns it), so once the reductions are exact the
// whole trajectory is a pure function of the problem.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/rebalance.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace repro = hpfcg::repro;
namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

/// Skewed workload so mid-solve rebalancing actually migrates.
sp::Csr<double> skewed_matrix() { return sp::powerlaw_spd(96, 3, 5, 48, 13); }

/// Run cg_fused_dist on `np` ranks and return rank 0's residual signature.
std::uint64_t cg_fused_signature(int np, const sp::Csr<double>& a,
                                 const std::vector<double>& b_full,
                                 std::size_t rebalance_every) {
  std::uint64_t sig = 0;
  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto hook = sv::make_csr_rebalancer<double>(mat);
    const auto res = sv::cg_fused_dist<double>(
        op, b, x,
        {.rel_tolerance = 1e-10,
         .track_residuals = true,
         .rebalance_every = rebalance_every},
        rebalance_every == 0 ? sv::RebalanceHook{} : hook);
    if (proc.rank() == 0) sig = res.residual_signature();
  });
  return sig;
}

/// Same for pcg_fused_dist with a Jacobi preconditioner whose diagonal
/// migrates through the rebalancer's on_migrate callback.
std::uint64_t pcg_fused_signature(int np, const sp::Csr<double>& a,
                                  const std::vector<double>& b_full,
                                  std::size_t rebalance_every) {
  std::uint64_t sig = 0;
  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist),
        inv_diag(proc, dist);
    b.from_global(b_full);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / a.at(g, g); });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const sv::DistPrec<double> prec =
        [&inv_diag](const DistributedVector<double>& r,
                    DistributedVector<double>& z) {
          hpfcg::hpf::hadamard(inv_diag, r, z);
        };
    const auto hook = sv::make_csr_rebalancer<double>(
        mat, [&](const hpfcg::hpf::DistPtr& nd) {
          inv_diag = hpfcg::hpf::redistribute(inv_diag, nd);
        });
    const auto res = sv::pcg_fused_dist<double>(
        op, prec, b, x,
        {.rel_tolerance = 1e-10,
         .track_residuals = true,
         .rebalance_every = rebalance_every},
        rebalance_every == 0 ? sv::RebalanceHook{} : hook);
    if (proc.rank() == 0) sig = res.residual_signature();
  });
  return sig;
}

class ReproSolversTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!repro::kCompiled) GTEST_SKIP() << "repro mode compiled out";
  }
};

TEST_F(ReproSolversTest, CgFusedResidualHistoryIsNpInvariant) {
  const auto a = sp::laplacian_2d(9, 7);
  const auto b_full = sp::random_rhs(a.n_rows(), 17);
  repro::ScopedEnable on;
  const std::uint64_t ref = cg_fused_signature(1, a, b_full, 0);
  for (const int np : {2, 3, 4, 7, 8}) {
    EXPECT_EQ(cg_fused_signature(np, a, b_full, 0), ref) << "np=" << np;
  }
}

TEST_F(ReproSolversTest, PcgFusedResidualHistoryIsNpInvariant) {
  const auto a = sp::random_spd(48, 5, 91);
  const auto b_full = sp::random_rhs(a.n_rows(), 37);
  repro::ScopedEnable on;
  const std::uint64_t ref = pcg_fused_signature(1, a, b_full, 0);
  for (const int np : {2, 4, 8}) {
    EXPECT_EQ(pcg_fused_signature(np, a, b_full, 0), ref) << "np=" << np;
  }
}

TEST_F(ReproSolversTest, CgFusedSurvivesRebalanceSchedules) {
  // The drift scenario from the issue: the same solve with and without
  // mid-solve redistribution (and at different cadences) must produce
  // bit-identical residual histories once reductions are exact.
  const auto a = skewed_matrix();
  const auto b_full = sp::random_rhs(a.n_rows(), 5);
  repro::ScopedEnable on;
  const int np = 4;
  const std::uint64_t never = cg_fused_signature(np, a, b_full, 0);
  EXPECT_EQ(cg_fused_signature(np, a, b_full, 3), never) << "every 3";
  EXPECT_EQ(cg_fused_signature(np, a, b_full, 5), never) << "every 5";
  // And the rebalanced runs still match every other machine size.
  EXPECT_EQ(cg_fused_signature(2, a, b_full, 4), never);
  EXPECT_EQ(cg_fused_signature(8, a, b_full, 4), never);
}

TEST_F(ReproSolversTest, PcgFusedSurvivesRebalanceSchedules) {
  const auto a = skewed_matrix();
  const auto b_full = sp::random_rhs(a.n_rows(), 33);
  repro::ScopedEnable on;
  const int np = 4;
  const std::uint64_t never = pcg_fused_signature(np, a, b_full, 0);
  EXPECT_EQ(pcg_fused_signature(np, a, b_full, 3), never) << "every 3";
  EXPECT_EQ(pcg_fused_signature(2, a, b_full, 4), never) << "np=2 every 4";
}

TEST_F(ReproSolversTest, RebalanceHookStillMigratesAndConverges) {
  // Guard against the hook param being wired but dead: with a skewed
  // matrix the pcg_fused rebalance must actually migrate, and the solve
  // must still converge against the operator.
  const auto a = skewed_matrix();
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 41);
  repro::ScopedEnable on;
  std::atomic<std::size_t> migrations{0};
  run_spmd(4, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist),
        inv_diag(proc, dist);
    b.from_global(b_full);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / a.at(g, g); });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const sv::DistPrec<double> prec =
        [&inv_diag](const DistributedVector<double>& r,
                    DistributedVector<double>& z) {
          hpfcg::hpf::hadamard(inv_diag, r, z);
        };
    const auto hook = sv::make_csr_rebalancer<double>(
        mat, [&](const hpfcg::hpf::DistPtr& nd) {
          inv_diag = hpfcg::hpf::redistribute(inv_diag, nd);
          if (proc.rank() == 0) ++migrations;
        });
    const auto res = sv::pcg_fused_dist<double>(
        op, prec, b, x,
        {.rel_tolerance = 1e-10, .track_residuals = true,
         .rebalance_every = 3},
        hook);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.relative_residual, 1e-10);
  });
  EXPECT_GE(migrations.load(), 1u);
}

}  // namespace
