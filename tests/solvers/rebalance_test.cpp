// Mid-solve rebalancing (SolveOptions::rebalance_every + RebalanceHook):
// convergence across a migration must match the serial reference, the
// matrix must actually move onto better cuts for skewed workloads, and a
// disabled hook must leave the solve bit-identical to one that never heard
// of rebalancing.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/rebalance.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

/// Skewed workload: hub rows dominate, so uniform block cuts are wrong.
sp::Csr<double> skewed_matrix() {
  return sp::powerlaw_spd(96, 3, 5, 48, 13);
}

class RebalanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RebalanceTest, CgConvergesAcrossMigrations) {
  const int np = GetParam();
  const auto a = skewed_matrix();
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 5);
  std::vector<double> x_ref(n, 0.0);
  const auto ref = sv::cg(a, b_full, x_ref, {.rel_tolerance = 1e-10});
  ASSERT_TRUE(ref.converged);

  std::atomic<std::size_t> migrations{0};
  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto hook = sv::make_csr_rebalancer<double>(
        mat, [&](const hpfcg::hpf::DistPtr&) { ++migrations; });
    const auto res = sv::cg_dist<double>(
        op, b, x, {.rel_tolerance = 1e-10, .rebalance_every = 3}, hook);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.relative_residual, 1e-10);
    // The migrated matvec is bit-identical but the dot-product partials
    // regroup after a migration, so compare solutions, not iterates.
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-7 * (1.0 + std::abs(x_ref[i])));
    }
  });
  if (np > 1) {
    EXPECT_GT(migrations.load(), 0u);
  }
}

TEST_P(RebalanceTest, CgFusedKeepsRecurrenceAcrossMigration) {
  const int np = GetParam();
  const auto a = skewed_matrix();
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 21);
  std::vector<double> x_ref(n, 0.0);
  const auto ref = sv::cg(a, b_full, x_ref, {.rel_tolerance = 1e-10});
  ASSERT_TRUE(ref.converged);

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto hook = sv::make_csr_rebalancer<double>(mat);
    const auto res = sv::cg_fused_dist<double>(
        op, b, x, {.rel_tolerance = 1e-10, .rebalance_every = 4}, hook);
    EXPECT_TRUE(res.converged);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-7 * (1.0 + std::abs(x_ref[i])));
    }
  });
}

TEST_P(RebalanceTest, PcgRealignsPreconditionerViaCallback) {
  const int np = GetParam();
  const auto a = skewed_matrix();
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 33);

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    DistributedVector<double> inv_diag(proc, dist);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / a.at(g, g); });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    // The preconditioner's diagonal is dependent state: the hook's
    // on_migrate callback re-aligns it with the migrated rows.
    const sv::DistPrec<double> prec =
        [&inv_diag](const DistributedVector<double>& r,
                    DistributedVector<double>& z) {
          hpfcg::hpf::hadamard(inv_diag, r, z);
        };
    const auto hook = sv::make_csr_rebalancer<double>(
        mat, [&](const hpfcg::hpf::DistPtr& nd) {
          inv_diag = hpfcg::hpf::redistribute(inv_diag, nd);
        });
    const auto res = sv::pcg_dist<double>(
        op, prec, b, x, {.rel_tolerance = 1e-10, .rebalance_every = 3},
        hook);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.relative_residual, 1e-10);
    // Verify against the operator directly: ||b - A x|| / ||b|| small.
    DistributedVector<double> q(proc, mat.row_dist_ptr());
    auto xa = hpfcg::hpf::redistribute(x, mat.row_dist_ptr());
    mat.matvec(xa, q);
    const auto qf = q.to_global();
    double rr = 0.0, bb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rr += (b_full[i] - qf[i]) * (b_full[i] - qf[i]);
      bb += b_full[i] * b_full[i];
    }
    EXPECT_LE(std::sqrt(rr / bb), 1e-9);
  });
}

TEST_P(RebalanceTest, SkewedMatrixActuallyMigrates) {
  const int np = GetParam();
  if (np < 2) GTEST_SKIP() << "single rank never migrates";
  const auto a = skewed_matrix();
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 41);

  std::atomic<std::size_t> migrations{0};
  run_spmd(np, [&](Process& proc) {
    auto block = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, block);
    DistributedVector<double> b(proc, block), x(proc, block);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto hook = sv::make_csr_rebalancer<double>(
        mat, [&](const hpfcg::hpf::DistPtr&) { ++migrations; });
    const auto res = sv::cg_dist<double>(
        op, b, x, {.rel_tolerance = 1e-10, .rebalance_every = 2}, hook);
    EXPECT_TRUE(res.converged);
    if (proc.rank() == 0 && res.iterations >= 2) {
      // Hub rows make optimal nnz cuts differ from uniform block cuts.
      EXPECT_FALSE(mat.row_dist() == *block);
    }
  });
}

TEST_P(RebalanceTest, DisabledHookIsBitIdentical) {
  const int np = GetParam();
  const auto a = skewed_matrix();
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 55);

  std::vector<double> hist_with, hist_without;
  std::vector<double> x_with, x_without;

  auto rt_with = run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto hook = sv::make_csr_rebalancer<double>(mat);
    // Hook installed but rebalance_every = 0 (the default): never invoked.
    const auto res = sv::cg_dist<double>(
        op, b, x, {.rel_tolerance = 1e-10, .track_residuals = true}, hook);
    if (proc.rank() == 0) {
      hist_with = res.residual_history;
      x_with = x.to_global();
    } else {
      (void)x.to_global();
    }
  });
  auto rt_without = run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::cg_dist<double>(
        op, b, x, {.rel_tolerance = 1e-10, .track_residuals = true});
    if (proc.rank() == 0) {
      hist_without = res.residual_history;
      x_without = x.to_global();
    } else {
      (void)x.to_global();
    }
  });

  const auto sw = rt_with->total_stats();
  const auto so = rt_without->total_stats();
  EXPECT_EQ(sw.messages_sent, so.messages_sent);
  EXPECT_EQ(sw.bytes_sent, so.bytes_sent);
  EXPECT_EQ(sw.collectives, so.collectives);
  EXPECT_EQ(sw.reductions, so.reductions);
  EXPECT_EQ(sw.reduction_values, so.reduction_values);
  EXPECT_EQ(sw.flops, so.flops);
  ASSERT_EQ(hist_with.size(), hist_without.size());
  for (std::size_t k = 0; k < hist_with.size(); ++k) {
    EXPECT_EQ(hist_with[k], hist_without[k]);  // bit-identical iterates
  }
  ASSERT_EQ(x_with.size(), x_without.size());
  for (std::size_t i = 0; i < x_with.size(); ++i) {
    EXPECT_EQ(x_with[i], x_without[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, RebalanceTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
