// The CG convergence theory the paper states (Section 2.1): "The CG
// algorithm will generally converge to the solution ... in at most n_e
// iterations, where n_e is the number of distinct eigenvalues", and
// preconditioning raises the convergence speed.

#include <gtest/gtest.h>

#include <vector>

#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/generators.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;

namespace {

std::size_t cg_iterations(const sp::Csr<double>& a,
                          const std::vector<double>& b) {
  std::vector<double> x(b.size(), 0.0);
  const auto res = sv::cg(a, b, x, {.max_iterations = 10 * b.size(),
                                    .rel_tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  return res.iterations;
}

class DistinctEigenvaluesTest : public ::testing::TestWithParam<int> {};

TEST_P(DistinctEigenvaluesTest, IterationsBoundedByDistinctEigenvalueCount) {
  // Diagonal matrix of size 60 with n_e distinct eigenvalues: CG must stop
  // within n_e iterations (exact arithmetic; +1 slack for roundoff).
  const int ne = GetParam();
  const std::size_t n = 60;
  std::vector<double> eigs(n);
  for (std::size_t i = 0; i < n; ++i) {
    eigs[i] = 1.0 + static_cast<double>(i % static_cast<std::size_t>(ne)) *
                        3.0;  // ne distinct values
  }
  const auto a = sp::diagonal_spectrum(eigs);
  const auto b = sp::random_rhs(n, 77);
  const std::size_t iters = cg_iterations(a, b);
  EXPECT_LE(iters, static_cast<std::size_t>(ne) + 1)
      << "CG must converge in at most n_e (+roundoff) iterations";
  // And with a generic right-hand side it should need about that many.
  EXPECT_GE(iters, static_cast<std::size_t>(ne) - 1);
}

INSTANTIATE_TEST_SUITE_P(EigenvalueCounts, DistinctEigenvaluesTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(ConvergenceTheory, IdentityConvergesInOneIteration) {
  const auto a = sp::diagonal_spectrum(std::vector<double>(32, 2.5));
  const auto b = sp::random_rhs(32, 3);
  EXPECT_LE(cg_iterations(a, b), 1u);
}

TEST(ConvergenceTheory, ExactArithmeticBoundNIterations) {
  // Full-rank SPD system of size n: at most n iterations (+slack).
  const auto a = sp::random_spd(40, 6, 55);
  const auto b = sp::random_rhs(40, 56);
  EXPECT_LE(cg_iterations(a, b), 42u);
}

TEST(ConvergenceTheory, WiderSpectrumNeedsMoreIterations) {
  // The paper: "in cases where A has many distinct eigenvalues and those
  // eigenvalues vary widely in magnitude, the CG algorithm may require a
  // large number of iterations".
  const std::size_t n = 64;
  std::vector<double> tight(n), wide(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    tight[i] = 1.0 + t;              // condition number 2
    wide[i] = 1.0 + 9999.0 * t;      // condition number 10^4
  }
  const auto b = sp::random_rhs(n, 21);
  const auto it_tight = cg_iterations(sp::diagonal_spectrum(tight), b);
  const auto it_wide = cg_iterations(sp::diagonal_spectrum(wide), b);
  EXPECT_LT(it_tight, it_wide);
}

TEST(ConvergenceTheory, JacobiCollapsesDiagonalSpectrumToOneIteration) {
  // Jacobi preconditioning of a diagonal matrix yields the identity — the
  // limiting case of "a preconditioner ... will increase the speed of
  // convergence".
  const std::size_t n = 48;
  std::vector<double> eigs(n);
  for (std::size_t i = 0; i < n; ++i) eigs[i] = 1.0 + static_cast<double>(i);
  const auto a = sp::diagonal_spectrum(eigs);
  const auto b = sp::random_rhs(n, 8);
  std::vector<double> x(n, 0.0);
  const auto res = sv::pcg(a, sv::jacobi_preconditioner(a), b, x,
                           {.rel_tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2u);
}

}  // namespace
