// Distributed solvers must reproduce the serial reference results for every
// machine size and every matvec kernel (dense row/col, CSR, CSC private).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "hpfcg/hpf/matvec_dense.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/convert.hpp"
#include "hpfcg/sparse/dist_csc.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

struct Reference {
  sp::Csr<double> a;
  std::vector<double> b;
  std::vector<double> x;
  sv::SolveResult res;
};

Reference serial_reference(const sp::Csr<double>& a, std::uint64_t seed) {
  Reference ref{a, sp::random_rhs(a.n_rows(), seed),
                std::vector<double>(a.n_rows(), 0.0),
                {}};
  ref.res = sv::cg(ref.a, ref.b, ref.x,
                   {.rel_tolerance = 1e-10, .track_residuals = true});
  return ref;
}

class DistSolversTest : public ::testing::TestWithParam<int> {};

TEST_P(DistSolversTest, CgOverCsrMatchesSerialIterateForIterate) {
  const int np = GetParam();
  const auto ref = serial_reference(sp::laplacian_2d(7, 9), 31);
  const std::size_t n = ref.a.n_rows();

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, ref.a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(ref.b);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::cg_dist<double>(op, b, x,
                                         {.rel_tolerance = 1e-10,
                                          .track_residuals = true});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref.res.iterations);
    ASSERT_EQ(res.residual_history.size(), ref.res.residual_history.size());
    for (std::size_t k = 0; k < res.residual_history.size(); ++k) {
      EXPECT_NEAR(res.residual_history[k], ref.res.residual_history[k],
                  1e-6 * (1.0 + ref.res.residual_history[k]));
    }
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], ref.x[i], 1e-7);
  });
}

TEST_P(DistSolversTest, CgOverCscPrivateMergeMatchesSerial) {
  const int np = GetParam();
  const auto ref = serial_reference(sp::random_spd(60, 5, 71), 72);
  const auto csc = sp::csr_to_csc(ref.a);
  const std::size_t n = ref.a.n_rows();

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsc<double>::col_aligned(proc, csc, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(ref.b);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec_private(p, q);
    };
    const auto res =
        sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref.res.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], ref.x[i], 1e-7);
  });
}

TEST_P(DistSolversTest, CgOverDenseRowwiseMatchesSerial) {
  const int np = GetParam();
  const std::size_t n = 48;
  // Dense SPD electromagnetics surrogate.
  const auto entry = [](std::size_t i, std::size_t j) {
    return sp::em_dense_entry(i, j, 6.0);
  };
  sp::Coo<double> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) coo.add(i, j, entry(i, j));
  }
  const auto ref = serial_reference(sp::Csr<double>::from_coo(std::move(coo)),
                                    91);

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    hpfcg::hpf::DenseRowBlockMatrix<double> mat(proc, dist);
    mat.set_from(entry);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(ref.b);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      hpfcg::hpf::matvec_rowwise(mat, p, q);
    };
    const auto res =
        sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], ref.x[i], 1e-7);
  });
}

TEST_P(DistSolversTest, PcgJacobiMatchesSerialPcg) {
  const int np = GetParam();
  const auto a = sp::random_spd(64, 5, 101);
  const auto b_full = sp::random_rhs(64, 102);
  std::vector<double> x_ref(64, 0.0);
  const auto ref_res =
      sv::pcg(a, sv::jacobi_preconditioner(a), b_full, x_ref,
              {.rel_tolerance = 1e-10});
  ASSERT_TRUE(ref_res.converged);
  const auto diag = a.diagonal();

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist),
        inv_diag(proc, dist);
    b.from_global(b_full);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::pcg_dist<double>(op, sv::jacobi_dist(inv_diag), b, x,
                                          {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref_res.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-7);
    }
  });
}

TEST_P(DistSolversTest, BicgUsesTransposeAndMatchesSerial) {
  const int np = GetParam();
  const auto a = sp::laplacian_2d(6, 8);
  const auto b_full = sp::random_rhs(a.n_rows(), 111);
  std::vector<double> x_ref(a.n_rows(), 0.0);
  const auto ref_res = sv::bicg(a, b_full, x_ref, {.rel_tolerance = 1e-10});
  ASSERT_TRUE(ref_res.converged);

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const sv::DistOp<double> op_t = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
      mat.matvec_transpose(p, q);
    };
    const auto res = sv::bicg_dist<double>(op, op_t, b, x,
                                           {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref_res.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-6);
    }
  });
}

TEST_P(DistSolversTest, BicgstabMatchesSerial) {
  const int np = GetParam();
  const auto a = sp::random_spd(50, 5, 121);
  const auto b_full = sp::random_rhs(50, 122);
  std::vector<double> x_ref(50, 0.0);
  const auto ref_res =
      sv::bicgstab(a, b_full, x_ref, {.rel_tolerance = 1e-10});
  ASSERT_TRUE(ref_res.converged);

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(50, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res =
        sv::bicgstab_dist<double>(op, b, x, {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref_res.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-6);
    }
  });
}

TEST_P(DistSolversTest, BicgCostsMoreCommunicationThanCg) {
  // Section 2.1: BiCG's A^T product turns the broadcast-only iteration into
  // broadcast + merge — more data on the wire per iteration.
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "no communication on one processor";
  const auto a = sp::laplacian_2d(8, 8);
  const auto b_full = sp::random_rhs(a.n_rows(), 131);

  const auto run_solver = [&](bool use_bicg) {
    auto rt = run_spmd(np, [&](Process& proc) {
      auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
      auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
      DistributedVector<double> b(proc, dist), x(proc, dist);
      b.from_global(b_full);
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        mat.matvec(p, q);
      };
      const sv::DistOp<double> op_t = [&](const DistributedVector<double>& p,
                                          DistributedVector<double>& q) {
        mat.matvec_transpose(p, q);
      };
      sv::SolveOptions opts{.max_iterations = 10, .rel_tolerance = 1e-30};
      if (use_bicg) {
        (void)sv::bicg_dist<double>(op, op_t, b, x, opts);
      } else {
        (void)sv::cg_dist<double>(op, b, x, opts);
      }
    });
    return rt->total_stats().bytes_sent;
  };
  EXPECT_GT(run_solver(true), run_solver(false));
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, DistSolversTest,
                         ::testing::ValuesIn(test_machine_sizes()));

TEST(ZeroRhs, SerialAndDistAgreeOnAbsoluteResidualBranch) {
  // b = 0 switches the stopping rule to an ABSOLUTE residual (the
  // bnorm > 0 ? rnorm/bnorm : rnorm branch).  Serial and distributed
  // solvers must take the same branch: x0 = 0 means r = 0, so both stop
  // before iterating with relative_residual exactly 0, and the trajectory
  // fingerprints match.
  const auto a = sp::laplacian_2d(6, 6);
  const std::size_t n = a.n_rows();
  const std::vector<double> b_zero(n, 0.0);

  std::vector<double> x_ref(n, 0.0);
  const auto ref = sv::cg(a, b_zero, x_ref, {.track_residuals = true});
  EXPECT_TRUE(ref.converged);
  EXPECT_EQ(ref.iterations, 0u);
  EXPECT_EQ(ref.relative_residual, 0.0);

  std::vector<double> xp_ref(n, 0.0);
  const auto pref = sv::pcg(a, sv::jacobi_preconditioner(a), b_zero, xp_ref,
                            {.track_residuals = true});
  EXPECT_TRUE(pref.converged);
  EXPECT_EQ(pref.relative_residual, 0.0);

  for (const int np : test_machine_sizes()) {
    run_spmd(np, [&](Process& proc) {
      auto dist = share(Distribution::block(n, proc.nprocs()));
      auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
      DistributedVector<double> b(proc, dist), x(proc, dist);
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        mat.matvec(p, q);
      };
      const auto res =
          sv::cg_dist<double>(op, b, x, {.track_residuals = true});
      EXPECT_TRUE(res.converged);
      EXPECT_EQ(res.iterations, ref.iterations);
      EXPECT_EQ(res.relative_residual, ref.relative_residual);
      EXPECT_EQ(res.residual_signature(), ref.residual_signature());
    });
  }
}

}  // namespace
