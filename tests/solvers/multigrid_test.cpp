// Geometric multigrid V-cycle preconditioner (the HPCG-class workload):
// hierarchy construction, grid-transfer round trips, V-cycle PCG
// convergence vs Jacobi-PCG, exact-smoother NP-invariance under repro
// mode (including across a mid-solve rebalance that migrates the cached
// hierarchy), preconditioner-symmetry property probes for Jacobi / SSOR /
// V-cycle, and the smoother's named zero-diagonal diagnostic.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/solvers/multigrid.hpp"
#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/rebalance.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

constexpr std::array<std::size_t, 3> kDims{16, 8, 8};  // 1024 rows

/// Runs MG-PCG on the 27-point stencil and returns the residual history
/// (rank 0's copy) plus the solution.
struct MgRun {
  std::vector<double> history;
  std::vector<double> x_full;
  sv::SolveResult res;
  bool exact = false;
};

MgRun run_mg_pcg(int np, const sv::MgOptions& mg_opts,
                 std::size_t rebalance_every = 0,
                 bool skewed_start = false) {
  const auto a = sp::stencil27_3d(kDims[0], kDims[1], kDims[2]);
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 71);
  MgRun out;
  run_spmd(np, [&](Process& proc) {
    hpfcg::hpf::DistPtr dist;
    if (skewed_start && proc.nprocs() > 1) {
      // Deliberately unbalanced cuts so the first rebalance must migrate.
      std::vector<std::size_t> cuts(
          static_cast<std::size_t>(proc.nprocs()) + 1, n);
      cuts[0] = 0;
      for (int r = 1; r < proc.nprocs(); ++r) {
        cuts[static_cast<std::size_t>(r)] =
            n / 2 + static_cast<std::size_t>(r - 1) * (n / 2) /
                        static_cast<std::size_t>(proc.nprocs());
      }
      dist = share(Distribution::from_cuts(n, std::move(cuts)));
    } else {
      dist = share(Distribution::block(n, proc.nprocs()));
    }
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    mat.enable_caching();
    mat.prepare_halo();
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    sv::MgPreconditioner mg(proc, mat, kDims, mg_opts);
    if (proc.rank() == 0) out.exact = mg.exact_smoother();
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    sv::RebalanceHook hook;
    if (rebalance_every > 0) {
      hook = sv::make_csr_rebalancer<double>(
          mat, [&](const hpfcg::hpf::DistPtr& nd) { mg.migrate_fine(nd); });
    }
    const auto res = sv::pcg_dist<double>(
        op, mg.prec(), b, x,
        {.max_iterations = 200,
         .rel_tolerance = 1e-10,
         .track_residuals = true,
         .rebalance_every = rebalance_every},
        hook);
    const auto full = x.to_global();
    if (proc.rank() == 0) {
      out.history = res.residual_history;
      out.x_full = full;
      out.res = res;
    }
  });
  return out;
}

TEST(MgHierarchy, CoarsensUntilOddOrSmall) {
  run_spmd(2, [&](Process& proc) {
    const auto a = sp::stencil27_3d(16, 8, 8);
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    sv::MgPreconditioner mg(proc, mat, {16, 8, 8},
                            {.max_levels = 8, .min_coarse_rows = 8});
    // 16x8x8 (1024) -> 8x4x4 (128) -> 4x2x2 (16) -> stop: 2x1x1 has odd
    // extents.
    ASSERT_EQ(mg.n_levels(), 3u);
    EXPECT_EQ(mg.level_dims(1), (std::array<std::size_t, 3>{8, 4, 4}));
    EXPECT_EQ(mg.level_op(1).n(), 128u);
    EXPECT_EQ(mg.level_op(2).n(), 16u);
    // min_coarse_rows stops earlier when asked.
    sv::MgPreconditioner shallow(proc, mat, {16, 8, 8},
                                 {.max_levels = 8, .min_coarse_rows = 100});
    EXPECT_EQ(shallow.n_levels(), 2u);
  });
}

TEST(MgHierarchy, RejectsMismatchedDims) {
  run_spmd(1, [&](Process& proc) {
    const auto a = sp::stencil27_3d(4, 4, 4);
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    EXPECT_THROW(sv::MgPreconditioner(proc, mat, {4, 4, 8}),
                 hpfcg::util::Error);
  });
}

class MultigridTest : public ::testing::TestWithParam<int> {};

TEST_P(MultigridTest, VcyclePcgMatchesSerialCgAndBeatsJacobiPcg) {
  const int np = GetParam();
  const auto a = sp::stencil27_3d(kDims[0], kDims[1], kDims[2]);
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 71);
  std::vector<double> x_ref(n, 0.0);
  const auto ref = sv::cg(a, b_full, x_ref, {.rel_tolerance = 1e-10});
  ASSERT_TRUE(ref.converged);

  const auto mg = run_mg_pcg(np, {});
  ASSERT_TRUE(mg.res.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(mg.x_full[i], x_ref[i], 1e-6 * (1.0 + std::abs(x_ref[i])));
  }

  // Jacobi-PCG on the same system, same machine.  This grid is small, so
  // the gap is modest; bench_hpcg gates the full MG <= 1/3 Jacobi bar on
  // the HPCG-sized grid where the hierarchy pays off.
  std::size_t jacobi_iters = 0;
  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist),
        inv_diag(proc, dist);
    b.from_global(b_full);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / a.at(g, g); });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::pcg_dist<double>(
        op, sv::jacobi_dist<double>(inv_diag), b, x,
        {.max_iterations = 500, .rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    if (proc.rank() == 0) jacobi_iters = res.iterations;
  });
  EXPECT_LE(2 * mg.res.iterations, jacobi_iters)
      << "MG-PCG took " << mg.res.iterations << " iterations vs Jacobi-PCG "
      << jacobi_iters;
}

TEST_P(MultigridTest, HybridSmootherAlsoConverges) {
  const int np = GetParam();
  const auto mg =
      run_mg_pcg(np, {.smoother = sv::MgSmoother::kHybridSymGs});
  EXPECT_FALSE(mg.exact);
  EXPECT_TRUE(mg.res.converged);
  EXPECT_LE(mg.res.relative_residual, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, MultigridTest,
                         ::testing::ValuesIn(test_machine_sizes()));

TEST(MultigridRepro, ExactSmootherHistoriesBitIdenticalAcrossNp) {
  if (!hpfcg::repro::kCompiled) GTEST_SKIP() << "HPFCG_REPRO compiled out";
  hpfcg::repro::ScopedEnable on;
  const auto ref = run_mg_pcg(1, {});
  ASSERT_TRUE(ref.res.converged);
  EXPECT_TRUE(ref.exact);  // kAuto samples the repro flag at setup
  for (const int np : {2, 4, 8}) {
    const auto got = run_mg_pcg(np, {});
    EXPECT_TRUE(got.exact);
    ASSERT_EQ(got.history.size(), ref.history.size()) << "np=" << np;
    for (std::size_t k = 0; k < ref.history.size(); ++k) {
      EXPECT_EQ(got.history[k], ref.history[k]) << "np=" << np << " k=" << k;
    }
    ASSERT_EQ(got.x_full.size(), ref.x_full.size());
    for (std::size_t i = 0; i < ref.x_full.size(); ++i) {
      EXPECT_EQ(got.x_full[i], ref.x_full[i]) << "np=" << np << " i=" << i;
    }
  }
}

TEST(MultigridRepro, RebalanceMigratesHierarchyBitIdentically) {
  if (!hpfcg::repro::kCompiled) GTEST_SKIP() << "HPFCG_REPRO compiled out";
  hpfcg::repro::ScopedEnable on;
  const auto ref = run_mg_pcg(1, {});
  ASSERT_TRUE(ref.res.converged);
  // Skewed initial cuts force the first rebalance to migrate the fine
  // matrix; migrate_fine() re-wires the cached hierarchy.  Exact smoother +
  // exact reductions make the whole history partition-invariant, so even a
  // run whose cuts CHANGE mid-solve reproduces the serial bits.
  for (const int np : {2, 4, 8}) {
    const auto got = run_mg_pcg(np, {}, /*rebalance_every=*/3,
                                /*skewed_start=*/true);
    ASSERT_TRUE(got.res.converged) << "np=" << np;
    ASSERT_EQ(got.history.size(), ref.history.size()) << "np=" << np;
    for (std::size_t k = 0; k < ref.history.size(); ++k) {
      EXPECT_EQ(got.history[k], ref.history[k]) << "np=" << np << " k=" << k;
    }
  }
}

/// r1·(M r2) == r2·(M r1): the self-adjointness PCG requires of its
/// preconditioner, probed with deterministic pseudo-random vectors.
class PrecSymmetryTest : public ::testing::TestWithParam<int> {};

TEST_P(PrecSymmetryTest, JacobiAndVcycleAreSelfAdjoint) {
  const int np = GetParam();
  const auto a = sp::stencil27_3d(kDims[0], kDims[1], kDims[2]);
  const std::size_t n = a.n_rows();
  const auto r1_full = sp::random_rhs(n, 201);
  const auto r2_full = sp::random_rhs(n, 202);

  for (const auto smoother :
       {sv::MgSmoother::kExactSymGs, sv::MgSmoother::kHybridSymGs}) {
    run_spmd(np, [&](Process& proc) {
      auto dist = share(Distribution::block(n, proc.nprocs()));
      auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
      mat.prepare_halo();
      DistributedVector<double> r1(proc, dist), r2(proc, dist),
          z1(proc, dist), z2(proc, dist);
      r1.from_global(r1_full);
      r2.from_global(r2_full);

      sv::MgPreconditioner mg(proc, mat, kDims, {.smoother = smoother});
      mg.apply(r2, z2);  // z2 = M^{-1} r2
      mg.apply(r1, z1);  // z1 = M^{-1} r1
      const double d12 = hpfcg::hpf::dot_product(r1, z2);
      const double d21 = hpfcg::hpf::dot_product(r2, z1);
      if (proc.rank() == 0) {
        EXPECT_NEAR(d12, d21, 1e-10 * (std::abs(d12) + std::abs(d21)))
            << "V-cycle (" << (mg.exact_smoother() ? "exact" : "hybrid")
            << " smoother) not self-adjoint at np=" << proc.nprocs();
      }

      // Jacobi for contrast: diagonal, so exactly self-adjoint.
      DistributedVector<double> inv_diag(proc, dist);
      inv_diag.set_from([&](std::size_t g) { return 1.0 / a.at(g, g); });
      const auto jac = sv::jacobi_dist<double>(inv_diag);
      jac(r2, z2);
      jac(r1, z1);
      const double j12 = hpfcg::hpf::dot_product(r1, z2);
      const double j21 = hpfcg::hpf::dot_product(r2, z1);
      if (proc.rank() == 0) {
        EXPECT_NEAR(j12, j21, 1e-12 * (std::abs(j12) + std::abs(j21)));
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, PrecSymmetryTest,
                         ::testing::ValuesIn(test_machine_sizes()));

TEST(PrecSymmetry, SerialSsorIsSelfAdjoint) {
  const auto a = sp::laplacian_3d(6, 6, 6);
  const std::size_t n = a.n_rows();
  const auto r1 = sp::random_rhs(n, 203);
  const auto r2 = sp::random_rhs(n, 204);
  std::vector<double> z1(n), z2(n);
  const auto ssor = sv::ssor_preconditioner(a, 1.4);
  ssor(r1, z1);
  ssor(r2, z2);
  double d12 = 0.0, d21 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d12 += r1[i] * z2[i];
    d21 += r2[i] * z1[i];
  }
  EXPECT_NEAR(d12, d21, 1e-12 * (std::abs(d12) + std::abs(d21)));
}

TEST(GsHalfSweep, MatchesSerialGaussSeidelSweep) {
  const auto a = sp::stencil27_3d(8, 4, 4);
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 61);
  // Serial reference: one forward + one backward in-place sweep.
  std::vector<double> x_ref(n, 0.0);
  const auto serial_relax = [&](std::size_t i) {
    double acc = b_full[i];
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != i) acc -= vals[k] * x_ref[cols[k]];
    }
    x_ref[i] = acc / a.at(i, i);
  };
  for (std::size_t i = 0; i < n; ++i) serial_relax(i);
  for (std::size_t i = n; i-- > 0;) serial_relax(i);

  for (const int np : test_machine_sizes()) {
    run_spmd(np, [&](Process& proc) {
      auto dist = share(Distribution::block(n, proc.nprocs()));
      auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
      mat.prepare_halo();
      DistributedVector<double> b(proc, dist), x(proc, dist);
      b.from_global(b_full);
      mat.gs_half_sweep(b, x, /*forward=*/true, /*exact=*/true);
      mat.gs_half_sweep(b, x, /*forward=*/false, /*exact=*/true);
      const auto full = x.to_global();
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(full[i], x_ref[i]) << "np=" << np << " row " << i;
      }
    });
  }
}

TEST(GsHalfSweep, ZeroDiagonalNamesTheRow) {
  // 3x3 system whose middle row has no diagonal entry.
  const std::vector<double> dense = {2.0, -1.0, 0.0,   //
                                     -1.0, 0.0, -1.0,  //
                                     0.0, -1.0, 2.0};
  const auto a = sp::Csr<double>::from_dense(3, 3, dense);
  run_spmd(1, [&](Process& proc) {
    auto dist = share(Distribution::block(3, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    try {
      mat.gs_half_sweep(b, x, true, true);
      FAIL() << "expected a zero-diagonal diagnostic";
    } catch (const hpfcg::util::Error& e) {
      EXPECT_NE(std::string(e.what()).find(
                    "gs_half_sweep: zero or missing diagonal in global row 1"),
                std::string::npos)
          << e.what();
    }
  });
}

}  // namespace
