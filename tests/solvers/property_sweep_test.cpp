// Property sweeps over random problems: CG's defining invariants hold for
// every seeded instance, serial and distributed.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "hpfcg/solvers/dense_direct.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

/// ||x - x*||_A — the norm CG minimizes over the Krylov space.
double a_norm_error(const sp::Csr<double>& a, std::span<const double> x,
                    std::span<const double> x_star) {
  const std::size_t n = x.size();
  std::vector<double> e(n), ae(n);
  for (std::size_t i = 0; i < n; ++i) e[i] = x[i] - x_star[i];
  a.matvec(e, ae);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += e[i] * ae[i];
  return std::sqrt(std::max(acc, 0.0));
}

class CgPropertySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(CgPropertySweep, InvariantsHoldOnRandomSpdInstances) {
  const auto [seed, n] = GetParam();
  const auto a = sp::random_spd(n, 5, seed);
  const auto b = sp::random_rhs(n, seed + 1000);
  const auto x_star = sv::cholesky_solve(a.to_dense(), b);

  // 1. Convergence within n (+ roundoff slack) iterations to tight tol.
  std::vector<double> x(n, 0.0);
  const auto res = sv::cg(a, b, x, {.max_iterations = n + 5,
                                    .rel_tolerance = 1e-11});
  EXPECT_TRUE(res.converged) << "seed=" << seed;
  EXPECT_FALSE(res.breakdown);

  // 2. The reported residual is the true residual.
  std::vector<double> q(n);
  a.matvec(x, q);
  double true_r = 0.0, bnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    true_r += (b[i] - q[i]) * (b[i] - q[i]);
    bnorm += b[i] * b[i];
  }
  EXPECT_NEAR(std::sqrt(true_r) / std::sqrt(bnorm), res.relative_residual,
              1e-9);

  // 3. Solution matches the direct solver.
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_star[i], 1e-7);

  // 4. The A-norm error is non-increasing in the iteration count — CG's
  //    optimality property over nested Krylov spaces.
  double prev = a_norm_error(a, std::vector<double>(n, 0.0), x_star);
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}, std::size_t{16}}) {
    std::vector<double> xk(n, 0.0);
    (void)sv::cg(a, b, xk, {.max_iterations = k, .rel_tolerance = 0.0});
    const double err = a_norm_error(a, xk, x_star);
    EXPECT_LE(err, prev * (1.0 + 1e-10))
        << "A-norm error grew at k=" << k << " seed=" << seed;
    prev = err;
  }
}

TEST_P(CgPropertySweep, DistributedAgreesOnRandomInstances) {
  const auto [seed, n] = GetParam();
  const auto a = sp::random_spd(n, 5, seed);
  const auto b_full = sp::random_rhs(n, seed + 2000);
  std::vector<double> x_ref(n, 0.0);
  const auto ref = sv::cg(a, b_full, x_ref, {.rel_tolerance = 1e-10});
  ASSERT_TRUE(ref.converged);

  run_spmd(3, [&](Process& proc) {  // deliberately awkward machine size
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], x_ref[i], 1e-7);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CgPropertySweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(11, 22, 33, 44, 55),
                       ::testing::Values<std::size_t>(30, 64)));

}  // namespace
