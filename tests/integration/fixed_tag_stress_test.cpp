// Fixed-tag FIFO stress: several subsystems reuse a constant tag across
// repeated calls (shift exchanges, Scenario-2 serialized matvecs, nnz
// executor runs, subgroup collectives) and rely on the mailbox's
// non-overtaking FIFO guarantee per (source, tag) to keep back-to-back
// calls correctly paired.  This suite hammers those paths in tight loops,
// where any mispairing would corrupt data deterministically.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "hpfcg/hpf/grid2d.hpp"
#include "hpfcg/hpf/shift.hpp"
#include "hpfcg/sparse/convert.hpp"
#include "hpfcg/sparse/dist_csc.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

TEST(FixedTagStress, RepeatedShiftChainsStayPaired) {
  const std::size_t n = 96;
  run_spmd(8, [&](Process& p) {
    auto dist = share(Distribution::block(n, 8));
    DistributedVector<double> x(p, dist), y(p, dist);
    x.set_from([](std::size_t g) { return static_cast<double>(g); });
    // 50 alternating shifts; a single mispairing would scramble values.
    for (int round = 0; round < 50; ++round) {
      hpfcg::hpf::cshift(x, y, 1);
      hpfcg::hpf::cshift(y, x, -1);  // undoes the first
    }
    for (std::size_t l = 0; l < x.local().size(); ++l) {
      EXPECT_DOUBLE_EQ(x.local()[l], static_cast<double>(x.global_of(l)));
    }
  });
}

TEST(FixedTagStress, RepeatedSerializedMatvecs) {
  const auto csr = hpfcg::sparse::random_spd(36, 4, 71);
  const auto csc = hpfcg::sparse::csr_to_csc(csr);
  const std::size_t n = csc.n_cols();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) {
    p_full[g] = static_cast<double>(g % 5) - 2.0;
  }
  csc.matvec(p_full, q_ref);

  run_spmd(4, [&](Process& proc) {
    auto dist = share(Distribution::block(n, 4));
    auto mat = hpfcg::sparse::DistCsc<double>::col_aligned(proc, csc, dist);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.from_global(p_full);
    for (int round = 0; round < 10; ++round) {
      mat.matvec_serial(p, q);
      for (std::size_t l = 0; l < q.local().size(); ++l) {
        ASSERT_NEAR(q.local()[l], q_ref[q.global_of(l)], 1e-12)
            << "round " << round;
      }
    }
  });
}

TEST(FixedTagStress, RepeatedExecutorRunsWithoutCaching) {
  // The misaligned nnz executor re-fetches every sweep over a fixed tag.
  const auto a = hpfcg::sparse::random_spd(64, 6, 81);
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = 1.0 / (1.0 + g);
  a.matvec(p_full, q_ref);

  run_spmd(8, [&](Process& proc) {
    auto row_dist = share(Distribution::block(n, 8));
    auto nnz_dist = share(Distribution::block(a.nnz(), 8));
    hpfcg::sparse::DistCsr<double> mat(proc, a, row_dist, nnz_dist);
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.from_global(p_full);
    for (int round = 0; round < 12; ++round) {
      mat.matvec(p, q);
      for (std::size_t l = 0; l < q.local().size(); ++l) {
        ASSERT_NEAR(q.local()[l], q_ref[q.global_of(l)], 1e-12)
            << "round " << round;
      }
    }
  });
}

TEST(FixedTagStress, RepeatedSubgroupCollectives) {
  run_spmd(12, [](Process& proc) {
    const hpfcg::hpf::Grid2D g(3, 4);
    const auto row = g.row_group(g.row_of(proc.rank()));
    const std::vector<std::size_t> counts(4, 3);
    for (int round = 0; round < 30; ++round) {
      std::vector<double> buf(12);
      for (std::size_t i = 0; i < 12; ++i) {
        buf[i] = static_cast<double>(i) + 1000.0 * round;
      }
      std::vector<double> mine(3);
      hpfcg::hpf::group_reduce_scatter<double>(proc, row, buf, mine, counts,
                                               0x7200);
      const std::size_t off =
          3 * static_cast<std::size_t>(g.col_of(proc.rank()));
      for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_DOUBLE_EQ(mine[i],
                         4.0 * (static_cast<double>(off + i) +
                                1000.0 * round))
            << "round " << round;
      }
    }
  });
}

}  // namespace
