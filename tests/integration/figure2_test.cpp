// Integration: a line-for-line lowering of the paper's Figure 2 HPF code
// (the full sparse CG loop over the (row, col, a) trio) must solve the
// system, using exactly the directives' semantics:
//
//   !HPF$ PROCESSORS :: PROCS(NP)
//   !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
//   !HPF$ DISTRIBUTE p(BLOCK)
//   !HPF$ DISTRIBUTE row(BLOCK((n+NP-1)/NP))
//   !HPF$ ALIGN a(:) WITH col(:)
//   !HPF$ DISTRIBUTE col(BLOCK)
//   DO k: rho0=rho; rho=DOT_PRODUCT(r,r); beta=rho/rho0
//         p = beta*p + r; q = 0; FORALL(j) q(j) += a(i)*p(col(i))
//         alpha = rho / DOT_PRODUCT(p,q); x += alpha p; r -= alpha q

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/forall.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/hpf/processors.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

class Figure2Test : public ::testing::TestWithParam<int> {};

TEST_P(Figure2Test, HandWrittenFigure2LoopSolvesTheSystem) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::laplacian_2d(8, 8);
  const std::size_t n = a.n_rows();
  const auto b_full = hpfcg::sparse::random_rhs(n, 202);

  // Serial ground truth.
  std::vector<double> x_ref(n, 0.0);
  const auto ref = hpfcg::solvers::cg(a, b_full, x_ref,
                                      {.rel_tolerance = 1e-10});
  ASSERT_TRUE(ref.converged);

  run_spmd(np, [&](Process& proc) {
    // !HPF$ PROCESSORS :: PROCS(NP)
    hpfcg::hpf::ProcessorArrangement procs(proc, "PROCS");

    // !HPF$ DISTRIBUTE p(BLOCK); ALIGN (:) WITH p(:) :: q, r, x, b
    auto pdist = std::make_shared<const Distribution>(
        Distribution::block(n, procs.size()));
    DistributedVector<double> p(proc, pdist);
    auto q = DistributedVector<double>::aligned_like(p);
    auto r = DistributedVector<double>::aligned_like(p);
    auto x = DistributedVector<double>::aligned_like(p);
    auto b = DistributedVector<double>::aligned_like(p);

    // The (row, col, a) trio distributed per the figure (row-aligned nnz).
    auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, pdist);

    // (usual initialisation of variables): x=0, r=b, p=r, rho=r.r
    b.from_global(b_full);
    hpfcg::hpf::fill(x, 0.0);
    hpfcg::hpf::assign(b, r);
    hpfcg::hpf::assign(r, p);
    double rho = hpfcg::hpf::dot_product(r, r);
    const double stop =
        1e-10 * std::sqrt(hpfcg::hpf::dot_product(b, b));

    std::size_t iters = 0;
    // Figure 2 computes rho at loop top from the PREVIOUS iteration's
    // residual; we keep its exact order of operations.
    for (std::size_t k = 1; k <= 1000; ++k) {
      if (k > 1) {
        const double rho0 = rho;
        rho = hpfcg::hpf::dot_product(r, r);  // sdot
        const double beta = rho / rho0;
        hpfcg::hpf::aypx(beta, r, p);  // p = beta*p + r (saypx)
      }
      // q = 0; sparse mat-vect multiply via FORALL over rows.
      mat.matvec(p, q);
      const double alpha = rho / hpfcg::hpf::dot_product(p, q);
      hpfcg::hpf::axpy(alpha, p, x);   // saxpy
      hpfcg::hpf::axpy(-alpha, q, r);  // saxpy
      iters = k;
      if (std::sqrt(hpfcg::hpf::dot_product(r, r)) <= stop) break;  // stop
    }

    EXPECT_EQ(iters, ref.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(full[i], x_ref[i], 1e-7);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, Figure2Test,
                         ::testing::ValuesIn(test_machine_sizes()));

TEST(Figure2, ForallRowSweepEqualsMatvec) {
  // The FORALL body of Figure 2, written with the forall() helper directly
  // over the row distribution, must equal the library matvec.
  const auto a = hpfcg::sparse::random_spd(48, 5, 303);
  const std::size_t n = a.n_rows();
  run_spmd(4, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    DistributedVector<double> p(proc, dist), q1(proc, dist), q2(proc, dist);
    p.set_from([](std::size_t g) { return 0.01 * static_cast<double>(g); });

    auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
    mat.matvec(p, q1);

    // Hand-written FORALL: every rank sweeps its own rows using the
    // replicated p (the all-to-all broadcast) and the global trio.
    const auto full_p = p.to_global();
    hpfcg::hpf::forall(proc, *dist, [&](std::size_t j, std::size_t lj) {
      double acc = 0.0;
      for (std::size_t i = a.row_ptr()[j]; i < a.row_ptr()[j + 1]; ++i) {
        acc += a.values()[i] * full_p[a.col_idx()[i]];
      }
      q2.local()[lj] = acc;
    });

    for (std::size_t l = 0; l < q1.local().size(); ++l) {
      EXPECT_NEAR(q1.local()[l], q2.local()[l], 1e-12);
    }
  });
}

}  // namespace
