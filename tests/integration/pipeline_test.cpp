// End-to-end application pipeline: generate → write Matrix Market → read at
// root only → scatter across the machine → solve with preconditioned CG →
// verify against the direct solver.  Exercises the full I/O + distribution
// + solver stack the way a downstream user would.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "hpfcg/solvers/block_jacobi.hpp"
#include "hpfcg/solvers/dense_direct.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/matrix_market.hpp"
#include "spmd_test_util.hpp"

namespace sp = hpfcg::sparse;
namespace sv = hpfcg::solvers;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

class PipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineTest, FileToSolutionEndToEnd) {
  const int np = GetParam();
  const std::string path =
      ::testing::TempDir() + "/hpfcg_pipeline_" + std::to_string(np) + ".mtx";

  // Stage 1 (offline): a tool writes the system to disk.
  const auto original = sp::random_spd(72, 5, 2026);
  sp::write_matrix_market_file(path, original);
  const auto b_full = sp::random_rhs(72, 2027);
  const auto x_direct = sv::cholesky_solve(original.to_dense(), b_full);

  // Stage 2 (parallel run): only rank 0 reads the file; slices scatter.
  run_spmd(np, [&](Process& proc) {
    sp::Csr<double> on_root;
    if (proc.rank() == 0) {
      on_root = sp::read_matrix_market_file(path);
    }
    const std::size_t n =
        proc.broadcast_value<std::size_t>(0, on_root.n_rows());
    ASSERT_EQ(n, 72u);

    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    auto mat =
        sp::DistCsr<double>::scatter_from_root(proc, 0, on_root, dist);

    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };

    // Block-Jacobi needs the local diagonal block; ranks other than root
    // do not hold the global matrix, so rebuild it from the local slices
    // is overkill here — scatter the matrix again for the preconditioner
    // build via a root broadcast of the full matrix rows is what the
    // replicated-build path does.  Instead use plain CG: the point of this
    // test is the I/O + scatter + solve pipeline.
    const auto res = sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-10});
    EXPECT_TRUE(res.converged);

    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(full[i], x_direct[i], 1e-7);
    }
  });
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, PipelineTest,
                         ::testing::ValuesIn(test_machine_sizes()));

TEST(Pipeline, ScatterMovesEachSliceOnce) {
  // The scatter path's traffic is one-shot: the matrix crosses the wire
  // exactly once, not per sweep.
  const int np = 4;
  const auto a = sp::laplacian_2d(16, 16);
  const std::size_t n = a.n_rows();
  auto rt = run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, np));
    auto mat = sp::DistCsr<double>::scatter_from_root(
        proc, 0, proc.rank() == 0 ? a : sp::Csr<double>{}, dist);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from([](std::size_t g) { return static_cast<double>(g % 3); });
    const auto before = proc.stats().bytes_sent;
    for (int s = 0; s < 5; ++s) mat.matvec(p, q);
    // Per-sweep traffic beyond this point is the p-broadcast only; the
    // matrix slices moved before the snapshot and are never re-sent.
    const auto per_sweep = (proc.stats().bytes_sent - before) / 5;
    EXPECT_LE(per_sweep, n * sizeof(double) * 2);
  });
  (void)rt;
}

}  // namespace
