// Integration: the instrumented runtime must agree with the closed-form
// cost model — the paper's formulas — for the collectives CG is built from.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::CostParams;
using hpfcg::msg::Process;
using hpfcg::msg::Topology;
using hpfcg_test::run_spmd;

namespace {

TEST(CostModelValidation, AllgatherStartupsScaleAsPredicted) {
  // Power-of-two hypercube: recursive doubling, log2(P) start-ups per rank
  // — the paper's t_startup * log N_P term.  Total volume is identical to
  // the ring's (P-1) * n bytes: the algorithm saves start-ups, not bytes.
  for (const int np : {2, 4, 8}) {
    const std::size_t n = 64;
    auto rt = run_spmd(np, [&](Process& p) {
      DistributedVector<double> v(
          p, std::make_shared<const Distribution>(Distribution::block(n, np)));
      hpfcg::hpf::fill(v, 1.0);
      (void)v.to_global();
    });
    int log2p = 0;
    while ((1 << log2p) < np) ++log2p;
    for (int r = 0; r < np; ++r) {
      EXPECT_EQ(rt->stats(r).messages_sent,
                static_cast<std::uint64_t>(log2p));
    }
    EXPECT_EQ(rt->total_stats().bytes_sent,
              static_cast<std::uint64_t>(np - 1) * n * sizeof(double));
  }
  // Non-power-of-two (and non-hypercube) machines fall back to the ring:
  // P-1 start-ups per rank.
  for (const int np : {3, 5}) {
    const std::size_t n = 60;
    auto rt = run_spmd(np, [&](Process& p) {
      DistributedVector<double> v(
          p, std::make_shared<const Distribution>(Distribution::block(n, np)));
      hpfcg::hpf::fill(v, 1.0);
      (void)v.to_global();
    });
    for (int r = 0; r < np; ++r) {
      EXPECT_EQ(rt->stats(r).messages_sent,
                static_cast<std::uint64_t>(np - 1));
    }
  }
}

TEST(CostModelValidation, DotProductMergeIsLogarithmicInMessages) {
  // The paper: the merge phase costs t_startup * log N_P on a hypercube.
  // Our allreduce(1 scalar) = binomial reduce + binomial broadcast: total
  // messages = 2*(P-1), critical path <= 2*ceil(log2 P) per rank.
  for (const int np : {2, 4, 8, 16}) {
    auto rt = run_spmd(np, [&](Process& p) {
      (void)p.allreduce(1.0);
    });
    EXPECT_EQ(rt->total_stats().messages_sent,
              static_cast<std::uint64_t>(2 * (np - 1)));
    int log2p = 0;
    while ((1 << log2p) < np) ++log2p;
    for (int r = 0; r < np; ++r) {
      EXPECT_LE(rt->stats(r).messages_sent,
                static_cast<std::uint64_t>(2 * log2p));
    }
  }
}

TEST(CostModelValidation, ModeledAllgatherTimeTracksClosedForm) {
  // Measured modeled time (max over ranks) must be within 2x of the
  // closed-form allgather_time for the ring structure we implement.
  const int np = 8;
  const std::size_t n = 1024;
  CostParams params;  // defaults
  auto rt = run_spmd(
      np,
      [&](Process& p) {
        DistributedVector<double> v(
            p,
            std::make_shared<const Distribution>(Distribution::block(n, np)));
        hpfcg::hpf::fill(v, 2.0);
        (void)v.to_global();
      },
      params, Topology::kRing);
  const double per_rank_bytes = (n / np) * sizeof(double);
  const double predicted = rt->cost().allgather_time(
      static_cast<std::size_t>(per_rank_bytes));
  const double measured = rt->modeled_makespan();
  EXPECT_GT(measured, 0.5 * predicted);
  EXPECT_LT(measured, 2.0 * predicted);
}

TEST(CostModelValidation, TopologyChangesModeledTimeNotResults) {
  const std::size_t n = 256;
  const int np = 8;
  std::vector<double> results;
  std::vector<double> times;
  for (const auto topo : {Topology::kHypercube, Topology::kRing,
                          Topology::kMesh2D, Topology::kFullyConnected}) {
    double dot = 0.0;
    auto rt = run_spmd(
        np,
        [&](Process& p) {
          DistributedVector<double> v(
              p, std::make_shared<const Distribution>(
                     Distribution::block(n, np)));
          v.set_from([](std::size_t g) { return static_cast<double>(g % 5); });
          const double d = hpfcg::hpf::dot_product(v, v);
          if (p.rank() == 0) dot = d;
        },
        CostParams{}, topo);
    results.push_back(dot);
    times.push_back(rt->modeled_makespan());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], results[0]);
  }
  // Ring routes cost more hops than the crossbar for the same algorithm.
  EXPECT_GE(times[1], times[3]);
}

TEST(CostModelValidation, ComputeCommunicationRatioImprovesWithN) {
  // The owner-computes premise: compute per rank grows with n while the
  // scalar-merge communication stays flat, so the ratio improves — the
  // "maximum computation to communications ratio" the paper attributes to
  // good data distribution.
  const int np = 4;
  const auto ratio_for = [&](std::size_t n) {
    auto rt = run_spmd(np, [&](Process& p) {
      DistributedVector<double> v(
          p, std::make_shared<const Distribution>(Distribution::block(n, np)));
      hpfcg::hpf::fill(v, 1.5);
      (void)hpfcg::hpf::dot_product(v, v);
    });
    const auto& s = rt->stats(0);
    return s.modeled_compute_seconds / (s.modeled_comm_seconds + 1e-30);
  };
  EXPECT_GT(ratio_for(100000), ratio_for(100));
}

}  // namespace
