#pragma once
// Shared helpers for SPMD tests.
//
// run_spmd(np, body) builds a machine, runs the body on every simulated
// processor, and returns the runtime for stats assertions.  Gtest
// assertions inside the body work normally: a fatal failure throws out of
// the body (gtest exceptions are off by default, so we use EXPECT_* inside
// SPMD regions and return values/flags for hard failures).

#include <functional>
#include <memory>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/msg/runtime.hpp"

namespace hpfcg_test {

/// Machine sizes most tests sweep: 1 (degenerate), 2, 3 (non-power-of-two),
/// 4, 7 (odd), 8.
inline const std::vector<int>& test_machine_sizes() {
  static const std::vector<int> sizes{1, 2, 3, 4, 7, 8};
  return sizes;
}

inline std::unique_ptr<hpfcg::msg::Runtime> run_spmd(
    int np, const std::function<void(hpfcg::msg::Process&)>& body,
    hpfcg::msg::CostParams params = {},
    hpfcg::msg::Topology topo = hpfcg::msg::Topology::kHypercube) {
  auto rt = std::make_unique<hpfcg::msg::Runtime>(np, params, topo);
  rt->run(body);
  return rt;
}

}  // namespace hpfcg_test
