// HPF intrinsics over distributed vectors: DOT_PRODUCT, SUM, norms, SAXPY /
// SAYPX, and the communication counts the paper attributes to each.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

class IntrinsicsTest : public ::testing::TestWithParam<int> {};

TEST_P(IntrinsicsTest, DotProductMatchesSerial) {
  const int np = GetParam();
  const std::size_t n = 123;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(n, p.nprocs())));
    auto y = DistributedVector<double>::aligned_like(x);
    x.set_from([](std::size_t g) { return 0.5 + static_cast<double>(g % 7); });
    y.set_from([](std::size_t g) { return 1.0 - static_cast<double>(g % 3); });
    double expect = 0.0;
    for (std::size_t g = 0; g < n; ++g) {
      expect += (0.5 + static_cast<double>(g % 7)) *
                (1.0 - static_cast<double>(g % 3));
    }
    EXPECT_NEAR(hpfcg::hpf::dot_product(x, y), expect, 1e-9);
  });
}

TEST_P(IntrinsicsTest, SumAndNormAndMaxAbs) {
  const int np = GetParam();
  const std::size_t n = 64;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(n, p.nprocs())));
    x.set_from([n](std::size_t g) {
      return g == n / 2 ? -100.0 : static_cast<double>(g);
    });
    double esum = 0.0, esq = 0.0;
    for (std::size_t g = 0; g < n; ++g) {
      const double v = g == n / 2 ? -100.0 : static_cast<double>(g);
      esum += v;
      esq += v * v;
    }
    EXPECT_NEAR(hpfcg::hpf::sum(x), esum, 1e-9);
    EXPECT_NEAR(hpfcg::hpf::norm2(x), std::sqrt(esq), 1e-9);
    EXPECT_DOUBLE_EQ(hpfcg::hpf::max_abs(x), 100.0);
  });
}

TEST_P(IntrinsicsTest, SaxpyIsCommunicationFree) {
  const int np = GetParam();
  const std::size_t n = 200;
  auto rt = run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(n, p.nprocs())));
    auto y = DistributedVector<double>::aligned_like(x);
    x.set_from([](std::size_t g) { return static_cast<double>(g); });
    y.set_from([](std::size_t g) { return static_cast<double>(2 * g); });
    hpfcg::hpf::axpy(0.5, x, y);  // y = 2g + 0.5g
    for (std::size_t l = 0; l < y.local().size(); ++l) {
      EXPECT_DOUBLE_EQ(y.local()[l], 2.5 * static_cast<double>(y.global_of(l)));
    }
  });
  // The paper: SAXPY runs in O(n/N_P) with no communication at all.
  EXPECT_EQ(rt->total_stats().messages_sent, 0u);
  EXPECT_EQ(rt->total_stats().bytes_sent, 0u);
}

TEST_P(IntrinsicsTest, SaypxMatchesFigure2Update) {
  const int np = GetParam();
  const std::size_t n = 77;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> r(p, share(Distribution::block(n, p.nprocs())));
    auto pv = DistributedVector<double>::aligned_like(r);
    r.set_from([](std::size_t g) { return static_cast<double>(g) + 1.0; });
    pv.set_from([](std::size_t g) { return static_cast<double>(g) * 2.0; });
    const double beta = 0.25;
    hpfcg::hpf::aypx(beta, r, pv);  // p = beta*p + r
    for (std::size_t l = 0; l < pv.local().size(); ++l) {
      const auto g = static_cast<double>(pv.global_of(l));
      EXPECT_DOUBLE_EQ(pv.local()[l], beta * (g * 2.0) + (g + 1.0));
    }
  });
}

TEST_P(IntrinsicsTest, DotFlopsAreDistributed) {
  const int np = GetParam();
  const std::size_t n = 128;
  auto rt = run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(n, p.nprocs())));
    hpfcg::hpf::fill(x, 1.0);
    (void)hpfcg::hpf::dot_product(x, x);
  });
  // Element-wise multiply flops: 2 per owned element, so 2n in total
  // (plus the merge's combine flops on interior tree nodes).
  std::uint64_t mult_flops = 0;
  for (int r = 0; r < np; ++r) mult_flops += rt->stats(r).flops;
  EXPECT_GE(mult_flops, 2 * n);
  // Per the paper the local phase is O(n/N_P): no rank does much more than
  // its share (block imbalance is at most one block).
  const std::size_t per_rank_cap = 2 * ((n + np - 1) / np) + 64;
  for (int r = 0; r < np; ++r) {
    EXPECT_LE(rt->stats(r).flops, per_rank_cap);
  }
}

TEST_P(IntrinsicsTest, HadamardAndScaleAndAssign) {
  const int np = GetParam();
  const std::size_t n = 60;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(n, p.nprocs())));
    auto y = DistributedVector<double>::aligned_like(x);
    auto z = DistributedVector<double>::aligned_like(x);
    x.set_from([](std::size_t g) { return static_cast<double>(g + 1); });
    y.set_from([](std::size_t g) { return 1.0 / static_cast<double>(g + 1); });
    hpfcg::hpf::hadamard(x, y, z);  // z = 1 everywhere
    EXPECT_NEAR(hpfcg::hpf::sum(z), static_cast<double>(n), 1e-9);
    hpfcg::hpf::scale(3.0, z);
    EXPECT_NEAR(hpfcg::hpf::sum(z), 3.0 * static_cast<double>(n), 1e-9);
    hpfcg::hpf::assign(z, y);
    EXPECT_NEAR(hpfcg::hpf::sum(y), 3.0 * static_cast<double>(n), 1e-9);
  });
}

TEST(Intrinsics, MisalignedOperandsRejected) {
  run_spmd(2, [](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(10, 2)));
    DistributedVector<double> y(p, share(Distribution::cyclic(10, 2)));
    EXPECT_THROW(hpfcg::hpf::axpy(1.0, x, y), hpfcg::util::Error);
    EXPECT_THROW((void)hpfcg::hpf::dot_product(x, y), hpfcg::util::Error);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, IntrinsicsTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
