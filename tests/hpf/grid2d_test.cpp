// 2-D grid decomposition (beyond-stripes ablation): subgroup collectives,
// the (BLOCK, BLOCK) dense matvec, and the communication-volume advantage
// over 1-D stripes.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "hpfcg/hpf/grid2d.hpp"
#include "hpfcg/hpf/matvec_dense.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::DenseGrid2DMatrix;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::hpf::Grid2D;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

TEST(Grid2D, SquarestFactorization) {
  EXPECT_EQ(Grid2D::squarest(16).pr(), 4);
  EXPECT_EQ(Grid2D::squarest(16).pc(), 4);
  EXPECT_EQ(Grid2D::squarest(8).pc(), 2);
  EXPECT_EQ(Grid2D::squarest(8).pr(), 4);
  EXPECT_EQ(Grid2D::squarest(7).pc(), 1);  // prime => 7x1
  EXPECT_EQ(Grid2D::squarest(1).np(), 1);
}

TEST(Grid2D, CoordinatesRoundTrip) {
  const Grid2D g(3, 4);
  for (int r = 0; r < g.np(); ++r) {
    EXPECT_EQ(g.rank_of(g.row_of(r), g.col_of(r)), r);
  }
  EXPECT_EQ(g.row_group(1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(g.col_group(2), (std::vector<int>{2, 6, 10}));
}

TEST(Grid2D, GroupAllgatherv) {
  run_spmd(6, [](Process& proc) {
    const Grid2D g(2, 3);
    const int gc = g.col_of(proc.rank());
    const auto members = g.col_group(gc);  // 2 members per column
    const std::vector<std::size_t> counts{2, 3};
    int me_pos = g.row_of(proc.rank());
    std::vector<int> local(counts[static_cast<std::size_t>(me_pos)]);
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = proc.rank() * 100 + static_cast<int>(i);
    }
    std::vector<int> out;
    hpfcg::hpf::group_allgatherv<int>(proc, members, local, out, counts,
                                      0x7000);
    ASSERT_EQ(out.size(), 5u);
    // First member's 2 elements then second member's 3.
    EXPECT_EQ(out[0], members[0] * 100 + 0);
    EXPECT_EQ(out[1], members[0] * 100 + 1);
    EXPECT_EQ(out[2], members[1] * 100 + 0);
    EXPECT_EQ(out[4], members[1] * 100 + 2);
  });
}

TEST(Grid2D, GroupReduceScatter) {
  run_spmd(6, [](Process& proc) {
    const Grid2D g(2, 3);
    const int gr = g.row_of(proc.rank());
    const auto members = g.row_group(gr);  // 3 members per row
    const std::vector<std::size_t> counts{1, 2, 3};
    // Every member contributes buf[i] = i + rank offset; the reduced chunk
    // must be the sum over the group's members.
    std::vector<double> buf(6);
    for (std::size_t i = 0; i < 6; ++i) {
      buf[i] = static_cast<double>(i) + 10.0 * proc.rank();
    }
    const int me_pos = g.col_of(proc.rank());
    std::vector<double> mine(counts[static_cast<std::size_t>(me_pos)]);
    hpfcg::hpf::group_reduce_scatter<double>(proc, members, buf, mine, counts,
                                             0x7100);
    double rank_sum = 0.0;
    for (const int m : members) rank_sum += 10.0 * m;
    std::size_t off = 0;
    for (int i = 0; i < me_pos; ++i) off += counts[static_cast<std::size_t>(i)];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_DOUBLE_EQ(mine[i],
                       3.0 * static_cast<double>(off + i) + rank_sum);
    }
  });
}

double entry(std::size_t i, std::size_t j) {
  return 0.25 + static_cast<double>((i * 7 + j * 3) % 9);
}

double pval(std::size_t g) { return static_cast<double>(g % 5) - 2.0; }

class Grid2DMatvecTest : public ::testing::TestWithParam<int> {};

TEST_P(Grid2DMatvecTest, MatchesSerialForAllMachineShapes) {
  const int np = GetParam();
  const std::size_t n = 57;  // awkward size: uneven tiles everywhere
  std::vector<double> q_ref(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) q_ref[i] += entry(i, j) * pval(j);
  }

  run_spmd(np, [&](Process& proc) {
    const auto grid = Grid2D::squarest(np);
    DenseGrid2DMatrix<double> a(proc, grid, n);
    a.set_from(entry);
    DistributedVector<double> p(proc, a.vector_dist());
    DistributedVector<double> q(proc, a.result_dist());
    p.set_from(pval);
    a.matvec(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-9);
  });
}

TEST_P(Grid2DMatvecTest, ResultRedistributesBackToVectorDist) {
  const int np = GetParam();
  const std::size_t n = 36;
  run_spmd(np, [&](Process& proc) {
    const auto grid = Grid2D::squarest(np);
    DenseGrid2DMatrix<double> a(proc, grid, n);
    a.set_from(entry);
    DistributedVector<double> p(proc, a.vector_dist());
    DistributedVector<double> q(proc, a.result_dist());
    p.set_from(pval);
    a.matvec(p, q);
    // The round-trip a CG iteration needs: q back into p's distribution.
    auto q2 = hpfcg::hpf::redistribute(q, a.vector_dist());
    const auto f1 = q.to_global();
    const auto f2 = q2.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(f1[i], f2[i]);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, Grid2DMatvecTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 9, 12, 16));

TEST(Grid2DMatvec, BeatsStripesOnCommunicationVolume) {
  // The ablation headline: per-sweep bytes O(n/sqrt(P)) vs O(n) per rank.
  const std::size_t n = 240;
  const int np = 16;  // 4x4 grid
  auto rt_grid = run_spmd(np, [&](Process& proc) {
    const auto grid = Grid2D::squarest(np);
    DenseGrid2DMatrix<double> a(proc, grid, n);
    a.set_from(entry);
    DistributedVector<double> p(proc, a.vector_dist());
    DistributedVector<double> q(proc, a.result_dist());
    p.set_from(pval);
    a.matvec(p, q);
  });
  auto rt_stripe = run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, np));
    hpfcg::hpf::DenseRowBlockMatrix<double> a(proc, dist);
    a.set_from(entry);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pval);
    hpfcg::hpf::matvec_rowwise(a, p, q);
  });
  EXPECT_LT(rt_grid->total_stats().bytes_sent,
            rt_stripe->total_stats().bytes_sent);
}

}  // namespace
