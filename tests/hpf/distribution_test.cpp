// Distribution invariants: every global index has exactly one owner, the
// owner/local/global mappings round-trip, counts are consistent, and each
// HPF kind matches its specification.

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <tuple>
#include <vector>

#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/util/error.hpp"

using hpfcg::hpf::Distribution;

namespace {

/// Exhaustive consistency sweep every distribution must satisfy.
void check_invariants(const Distribution& d) {
  const std::size_t n = d.size();
  const int np = d.nprocs();

  // counts sum to n.
  std::size_t total = 0;
  for (int r = 0; r < np; ++r) total += d.local_count(r);
  EXPECT_EQ(total, n);
  EXPECT_EQ(d.counts().size(), static_cast<std::size_t>(np));

  // owner/local_index/global_index round-trip for every element.
  for (std::size_t i = 0; i < n; ++i) {
    const int r = d.owner(i);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, np);
    const std::size_t li = d.local_index(i);
    ASSERT_LT(li, d.local_count(r));
    EXPECT_EQ(d.global_index(r, li), i);
  }

  // Every (rank, local) slot maps to a distinct global index owned by rank.
  std::vector<bool> seen(n, false);
  for (int r = 0; r < np; ++r) {
    std::size_t prev_global = 0;
    for (std::size_t li = 0; li < d.local_count(r); ++li) {
      const std::size_t g = d.global_index(r, li);
      ASSERT_LT(g, n);
      EXPECT_FALSE(seen[g]);
      seen[g] = true;
      EXPECT_EQ(d.owner(g), r);
      EXPECT_EQ(d.local_index(g), li);
      if (li > 0) {
        EXPECT_GT(g, prev_global);  // local order = global order
      }
      prev_global = g;
    }
  }

  if (d.contiguous()) {
    for (int r = 0; r < np; ++r) {
      const auto [lo, hi] = d.local_range(r);
      EXPECT_EQ(hi - lo, d.local_count(r));
      for (std::size_t i = lo; i < hi; ++i) EXPECT_EQ(d.owner(i), r);
    }
  }
}

class DistributionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(DistributionSweep, Block) {
  const auto [n, np] = GetParam();
  check_invariants(Distribution::block(n, np));
}

TEST_P(DistributionSweep, Cyclic) {
  const auto [n, np] = GetParam();
  check_invariants(Distribution::cyclic(n, np));
}

TEST_P(DistributionSweep, BlockK) {
  const auto [n, np] = GetParam();
  const std::size_t k =
      n == 0 ? 1 : (n + static_cast<std::size_t>(np) - 1) /
                       static_cast<std::size_t>(np);
  check_invariants(Distribution::block_size(n, np, k));
}

TEST_P(DistributionSweep, CyclicK) {
  const auto [n, np] = GetParam();
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    check_invariants(Distribution::cyclic_size(n, np, k));
  }
}

TEST_P(DistributionSweep, Cuts) {
  const auto [n, np] = GetParam();
  // Skewed cut points: rank r gets roughly r-proportional share.
  std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, 0);
  const std::size_t denom = static_cast<std::size_t>(np) *
                            (static_cast<std::size_t>(np) + 1) / 2;
  std::size_t acc = 0;
  for (int r = 0; r < np; ++r) {
    acc += n * static_cast<std::size_t>(r + 1) / denom;
    cuts[static_cast<std::size_t>(r) + 1] = std::min(acc, n);
  }
  cuts.back() = n;
  check_invariants(Distribution::from_cuts(n, cuts));
}

TEST_P(DistributionSweep, Indirect) {
  const auto [n, np] = GetParam();
  std::vector<int> owner(n);
  for (std::size_t i = 0; i < n; ++i) {
    owner[i] = static_cast<int>((i * 7 + 3) % static_cast<std::size_t>(np));
  }
  check_invariants(Distribution::indirect(np, owner));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DistributionSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 5, 16, 17, 100,
                                                      257),
                       ::testing::Values(1, 2, 3, 4, 7, 8)));

TEST(Distribution, BlockMatchesHpfDefinition) {
  // HPF BLOCK over n=10, np=4: blocks of ceil(10/4)=3 -> 3,3,3,1.
  const auto d = Distribution::block(10, 4);
  EXPECT_EQ(d.local_count(0), 3u);
  EXPECT_EQ(d.local_count(1), 3u);
  EXPECT_EQ(d.local_count(2), 3u);
  EXPECT_EQ(d.local_count(3), 1u);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(9), 3);
  EXPECT_EQ(d.name(), "BLOCK");
}

TEST(Distribution, BlockKPlacesLastElementOnLastProcessor) {
  // The paper's BLOCK((n+NP-1)/NP) idiom "to ensure that the (n+1)'th
  // element of row is placed in the last processor": n+1 pointer entries
  // over NP ranks.
  const std::size_t n = 12;  // 13 pointer entries
  const int np = 4;
  const std::size_t k = (n + 1 + np - 1) / np;  // ceil(13/4) = 4
  const auto d = Distribution::block_size(n + 1, np, k);
  EXPECT_EQ(d.owner(n), np - 1);  // last pointer entry on last rank
  EXPECT_EQ(d.name(), "BLOCK(4)");
}

TEST(Distribution, CyclicDealsRoundRobin) {
  const auto d = Distribution::cyclic(10, 3);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(1), 1);
  EXPECT_EQ(d.owner(2), 2);
  EXPECT_EQ(d.owner(3), 0);
  EXPECT_EQ(d.local_index(3), 1u);
  EXPECT_EQ(d.local_count(0), 4u);
  EXPECT_EQ(d.local_count(1), 3u);
  EXPECT_FALSE(d.contiguous());
}

TEST(Distribution, CyclicKDealsBlocks) {
  const auto d = Distribution::cyclic_size(10, 2, 3);
  // Blocks [0,3) r0, [3,6) r1, [6,9) r0, [9,10) r1.
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(3), 1);
  EXPECT_EQ(d.owner(6), 0);
  EXPECT_EQ(d.owner(9), 1);
  EXPECT_EQ(d.local_count(0), 6u);
  EXPECT_EQ(d.local_count(1), 4u);
  EXPECT_EQ(d.local_index(7), 4u);  // second local block, offset 1
}

TEST(Distribution, CutsExposeCutArray) {
  const auto d = Distribution::from_cuts(10, {0, 2, 2, 10});
  EXPECT_EQ(d.nprocs(), 3);
  EXPECT_EQ(d.local_count(1), 0u);  // empty middle rank
  EXPECT_EQ(d.owner(2), 2);
  EXPECT_EQ(d.cuts().size(), 4u);
}

TEST(Distribution, EqualityComparesMappings) {
  const auto a = Distribution::block(12, 4);
  const auto b = Distribution::block_size(12, 4, 3);  // same mapping
  const auto c = Distribution::cyclic(12, 4);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  // from_cuts with block boundaries equals block too.
  const auto d = Distribution::from_cuts(12, {0, 3, 6, 9, 12});
  EXPECT_TRUE(a == d);
}

TEST(Distribution, HugeBlockSizeDoesNotOverflow) {
  // Regression: the coverage check was written `k * np >= n`, which wraps
  // for huge k — BLOCK(2^61) over 8 ranks computed 2^64 ≡ 0 < 12 and was
  // falsely rejected even though rank 0 trivially holds all 12 elements.
  const std::size_t huge = std::size_t{1} << 61;
  Distribution d = Distribution::block_size(12, 8, huge);
  EXPECT_EQ(d.local_count(0), 12u);
  std::size_t total = 0;
  for (int r = 0; r < 8; ++r) total += d.local_count(r);
  EXPECT_EQ(total, 12u);  // counts built with r*k wrapped to garbage before
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(d.owner(i), 0);
  EXPECT_EQ(d.local_range(0).second, 12u);
}

TEST(Distribution, HugeCyclicBlockRejectedNotWrapped) {
  // Regression: CYCLIC(k) computed the cycle length k*np without an
  // overflow guard; with k near SIZE_MAX/np the wrapped cycle credited
  // phantom rounds, so local_count disagreed with owner().  Now an
  // overflow in the cycle length is a typed error naming k and NP.
  const std::size_t k = std::numeric_limits<std::size_t>::max() / 4 + 2;
  try {
    (void)Distribution::cyclic_size(10, 4, k);
    FAIL() << "CYCLIC(k) with k*NP overflow must be rejected";
  } catch (const hpfcg::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("NP=4"), std::string::npos);
  }
  // Large-but-safe k is still fine (one giant block on rank 0).
  check_invariants(
      Distribution::cyclic_size(10, 4, std::size_t{1} << 60));
}

TEST(Distribution, ZeroBlockFactorsNamedInError) {
  try {
    (void)Distribution::block_size(10, 2, 0);
    FAIL() << "BLOCK(0) must be rejected";
  } catch (const hpfcg::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("k=0"), std::string::npos);
  }
  try {
    (void)Distribution::cyclic_size(10, 2, 0);
    FAIL() << "CYCLIC(0) must be rejected";
  } catch (const hpfcg::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("k=0"), std::string::npos);
  }
}

TEST(Distribution, Validation) {
  EXPECT_THROW(Distribution::block(10, 0), hpfcg::util::Error);
  EXPECT_THROW(Distribution::block_size(10, 2, 4),
               hpfcg::util::Error);  // 2*4 < 10
  EXPECT_THROW(Distribution::from_cuts(10, {0, 5}), hpfcg::util::Error);
  EXPECT_THROW(Distribution::from_cuts(10, {0, 7, 5, 10}),
               hpfcg::util::Error);
  EXPECT_THROW(Distribution::indirect(2, {0, 1, 2}), hpfcg::util::Error);
  const auto d = Distribution::block(10, 2);
  EXPECT_THROW((void)d.owner(10), hpfcg::util::Error);
  EXPECT_THROW((void)d.local_count(2), hpfcg::util::Error);
  EXPECT_THROW((void)Distribution::cyclic(10, 2).local_range(0),
               hpfcg::util::Error);
}

}  // namespace
