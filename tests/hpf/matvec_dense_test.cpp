// Dense matrix-vector products for the paper's two partitioning scenarios
// (Figures 3 and 4): all variants must agree with a serial reference, and
// their communication structure must match the paper's analysis.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hpfcg/hpf/dense_matrix.hpp"
#include "hpfcg/hpf/matvec_dense.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::DenseColBlockMatrix;
using hpfcg::hpf::DenseRowBlockMatrix;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

double entry(std::size_t i, std::size_t j) {
  return 1.0 + static_cast<double>((3 * i + 5 * j) % 11) -
         (i == j ? -4.0 : 0.0);
}

double pvec(std::size_t j) { return 0.5 + static_cast<double>(j % 5); }

std::vector<double> serial_matvec(std::size_t n) {
  std::vector<double> q(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) q[i] += entry(i, j) * pvec(j);
  }
  return q;
}

class DenseMatvecTest : public ::testing::TestWithParam<int> {};

TEST_P(DenseMatvecTest, RowwiseMatchesSerial) {
  const int np = GetParam();
  const std::size_t n = 53;
  const auto expect = serial_matvec(n);
  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    DenseRowBlockMatrix<double> a(proc, dist);
    a.set_from(entry);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pvec);
    hpfcg::hpf::matvec_rowwise(a, p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], expect[i], 1e-9);
  });
}

TEST_P(DenseMatvecTest, ColwiseSerialMatchesSerial) {
  const int np = GetParam();
  const std::size_t n = 31;
  const auto expect = serial_matvec(n);
  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    DenseColBlockMatrix<double> a(proc, dist);
    a.set_from(entry);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pvec);
    hpfcg::hpf::matvec_colwise_serial(a, p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], expect[i], 1e-9);
  });
}

TEST_P(DenseMatvecTest, ColwiseSumMatchesSerial) {
  const int np = GetParam();
  const std::size_t n = 40;
  const auto expect = serial_matvec(n);
  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    DenseColBlockMatrix<double> a(proc, dist);
    a.set_from(entry);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pvec);
    hpfcg::hpf::matvec_colwise_sum(a, p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], expect[i], 1e-9);
  });
}

TEST_P(DenseMatvecTest, ColwiseSerialBooksWaitTime) {
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "serialization needs >1 processor";
  const std::size_t n = 32;
  auto rt = run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    DenseColBlockMatrix<double> a(proc, dist);
    a.set_from(entry);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pvec);
    hpfcg::hpf::matvec_colwise_serial(a, p, q);
  });
  // The last rank waits on all predecessors: its modeled wait covers their
  // compute.  The paper: "the matrix-vector operation can not be performed
  // in parallel".
  EXPECT_GT(rt->stats(np - 1).modeled_wait_seconds, 0.0);
  // Whereas the SUM variant is parallel:
  hpfcg::msg::Runtime rt2(np);
  rt2.run([&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    DenseColBlockMatrix<double> a(proc, dist);
    a.set_from(entry);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pvec);
    hpfcg::hpf::matvec_colwise_sum(a, p, q);
  });
  EXPECT_DOUBLE_EQ(rt2.stats(np - 1).modeled_wait_seconds, 0.0);
}

TEST_P(DenseMatvecTest, RowwiseAndColwiseSumMoveSimilarVolume) {
  // The paper's Section 4 conclusion: "it is not possible to reduce the
  // communication time if the matrix is partitioned into regular stripes
  // either in a row-wise or column-wise fashion" — both move O(n) data per
  // rank (broadcast of p vs. merge of q).
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "no communication on one processor";
  const std::size_t n = 96;
  const auto run_variant = [&](bool rowwise) {
    auto rt = run_spmd(np, [&](Process& proc) {
      auto dist = share(Distribution::block(n, proc.nprocs()));
      DistributedVector<double> p(proc, dist), q(proc, dist);
      p.set_from(pvec);
      if (rowwise) {
        DenseRowBlockMatrix<double> a(proc, dist);
        a.set_from(entry);
        hpfcg::hpf::matvec_rowwise(a, p, q);
      } else {
        DenseColBlockMatrix<double> a(proc, dist);
        a.set_from(entry);
        hpfcg::hpf::matvec_colwise_sum(a, p, q);
      }
    });
    return rt->total_stats().bytes_sent;
  };
  const auto row_bytes = run_variant(true);
  const auto col_bytes = run_variant(false);
  // Same order of magnitude (the merge moves full-length vectors through
  // the tree, the gather moves blocks around the ring): within ~2 log P.
  EXPECT_LT(row_bytes, col_bytes * 4);
  EXPECT_LT(col_bytes, row_bytes * 8 * static_cast<unsigned long long>(np));
  EXPECT_GT(col_bytes, 0u);
  EXPECT_GT(row_bytes, 0u);
}

TEST_P(DenseMatvecTest, RowwiseWorksOnUnevenCutDistributions) {
  // Alignment is by distribution value, not by kind: a skewed cut-point
  // distribution (e.g. from a balanced partitioner) must work unchanged.
  const int np = GetParam();
  const std::size_t n = 45;
  const auto expect = serial_matvec(n);
  run_spmd(np, [&](Process& proc) {
    std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, n);
    cuts[0] = 0;
    for (int r = 1; r < np; ++r) {
      // Front-loaded: rank 0 gets ~60%, the rest share the tail.
      cuts[static_cast<std::size_t>(r)] = std::min<std::size_t>(
          n, 27 + static_cast<std::size_t>(r - 1) * (n - 27) /
                      static_cast<std::size_t>(np));
    }
    auto dist = share(Distribution::from_cuts(n, cuts));
    DenseRowBlockMatrix<double> a(proc, dist);
    a.set_from(entry);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pvec);
    hpfcg::hpf::matvec_rowwise(a, p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], expect[i], 1e-9);
  });
}

TEST_P(DenseMatvecTest, ColwiseSumWorksOnUnevenCutDistributions) {
  const int np = GetParam();
  const std::size_t n = 38;
  const auto expect = serial_matvec(n);
  run_spmd(np, [&](Process& proc) {
    std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, n);
    cuts[0] = 0;
    for (int r = 1; r < np; ++r) {
      cuts[static_cast<std::size_t>(r)] = std::min<std::size_t>(
          n, static_cast<std::size_t>(r) * 5);
    }
    auto dist = share(Distribution::from_cuts(n, cuts));
    DenseColBlockMatrix<double> a(proc, dist);
    a.set_from(entry);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pvec);
    hpfcg::hpf::matvec_colwise_sum(a, p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], expect[i], 1e-9);
  });
}

TEST(DenseMatvec, MisalignedMatrixRejected) {
  run_spmd(2, [](Process& proc) {
    auto d1 = share(Distribution::block(10, 2));
    auto d2 = share(Distribution::cyclic(10, 2));
    DenseRowBlockMatrix<double> a(proc, d1);
    DistributedVector<double> p(proc, d2), q(proc, d2);
    EXPECT_THROW(hpfcg::hpf::matvec_rowwise(a, p, q), hpfcg::util::Error);
  });
}

TEST(DenseMatvec, SetFromFillsOwnedStrip) {
  run_spmd(3, [](Process& proc) {
    const std::size_t n = 9;
    auto dist = share(Distribution::block(n, 3));
    DenseRowBlockMatrix<double> a(proc, dist);
    a.set_from([](std::size_t i, std::size_t j) {
      return static_cast<double>(10 * i + j);
    });
    for (std::size_t lr = 0; lr < a.local_rows(); ++lr) {
      const std::size_t gi = a.global_row(lr);
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_DOUBLE_EQ(a.row(lr)[j], static_cast<double>(10 * gi + j));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, DenseMatvecTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
