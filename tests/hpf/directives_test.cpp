// Textual distribution-spec parsing ("DISTRIBUTE p(BLOCK)" etc.).

#include <gtest/gtest.h>

#include "hpfcg/hpf/directives.hpp"
#include "hpfcg/util/error.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::is_valid_distribution_spec;
using hpfcg::hpf::parse_distribution_spec;

namespace {

TEST(Directives, ParsesEveryFormat) {
  EXPECT_TRUE(parse_distribution_spec("BLOCK", 20, 4) ==
              Distribution::block(20, 4));
  EXPECT_TRUE(parse_distribution_spec("BLOCK(5)", 20, 4) ==
              Distribution::block_size(20, 4, 5));
  EXPECT_TRUE(parse_distribution_spec("CYCLIC", 20, 4) ==
              Distribution::cyclic(20, 4));
  EXPECT_TRUE(parse_distribution_spec("CYCLIC(3)", 20, 4) ==
              Distribution::cyclic_size(20, 4, 3));
}

TEST(Directives, CaseAndWhitespaceInsensitive) {
  EXPECT_TRUE(parse_distribution_spec("  block ", 12, 3) ==
              Distribution::block(12, 3));
  EXPECT_TRUE(parse_distribution_spec("Cyclic( 2 )", 12, 3) ==
              Distribution::cyclic_size(12, 3, 2));
}

TEST(Directives, ThePaperBlockIdiom) {
  // BLOCK((n+NP-1)/NP) from Figure 2's row-pointer distribution.
  const std::size_t n = 13;
  const int np = 4;
  const std::size_t k = (n + np - 1) / np;
  const auto d =
      parse_distribution_spec("BLOCK(" + std::to_string(k) + ")", n, np);
  EXPECT_EQ(d.owner(n - 1), np - 1);
}

TEST(Directives, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_distribution_spec("", 10, 2), hpfcg::util::Error);
  EXPECT_THROW((void)parse_distribution_spec("BLOK", 10, 2),
               hpfcg::util::Error);
  EXPECT_THROW((void)parse_distribution_spec("BLOCK(", 10, 2),
               hpfcg::util::Error);
  EXPECT_THROW((void)parse_distribution_spec("BLOCK()", 10, 2),
               hpfcg::util::Error);
  EXPECT_THROW((void)parse_distribution_spec("BLOCK(0)", 10, 2),
               hpfcg::util::Error);
  EXPECT_THROW((void)parse_distribution_spec("BLOCK(2x)", 10, 2),
               hpfcg::util::Error);
  EXPECT_THROW((void)parse_distribution_spec("BLOCK(2)", 10, 2),
               hpfcg::util::Error);  // 2*2 < 10: infeasible
}

TEST(Directives, Validation) {
  EXPECT_TRUE(is_valid_distribution_spec("BLOCK"));
  EXPECT_TRUE(is_valid_distribution_spec("cyclic(7)"));
  EXPECT_FALSE(is_valid_distribution_spec("INDIRECT"));
  EXPECT_FALSE(is_valid_distribution_spec("BLOCK(-1)"));
  EXPECT_FALSE(is_valid_distribution_spec(""));
}

}  // namespace
