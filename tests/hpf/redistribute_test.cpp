// REDISTRIBUTE: content must be preserved across every pair of
// distribution kinds, including dynamic (runtime-computed) cut points.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hpfcg/hpf/redistribute.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::DistPtr;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

DistPtr share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

std::vector<DistPtr> all_dists(std::size_t n, int np) {
  std::vector<DistPtr> out;
  out.push_back(share(Distribution::block(n, np)));
  out.push_back(share(Distribution::cyclic(n, np)));
  out.push_back(share(Distribution::cyclic_size(n, np, 4)));
  std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, n);
  cuts[0] = 0;
  for (int r = 1; r < np; ++r) {
    cuts[static_cast<std::size_t>(r)] =
        std::min<std::size_t>(n, static_cast<std::size_t>(r) * 2);
  }
  out.push_back(share(Distribution::from_cuts(n, cuts)));
  return out;
}

class RedistributeTest : public ::testing::TestWithParam<int> {};

TEST_P(RedistributeTest, AllPairsPreserveContent) {
  const int np = GetParam();
  const std::size_t n = 73;
  run_spmd(np, [&](Process& p) {
    const auto dists = all_dists(n, p.nprocs());
    for (const auto& from : dists) {
      for (const auto& to : dists) {
        DistributedVector<double> src(p, from);
        src.set_from([](std::size_t g) {
          return static_cast<double>(g) * 1.5 - 7.0;
        });
        auto dst = hpfcg::hpf::redistribute(src, to);
        EXPECT_TRUE(dst.dist() == *to);
        for (std::size_t l = 0; l < dst.local().size(); ++l) {
          const auto g = static_cast<double>(dst.global_of(l));
          EXPECT_DOUBLE_EQ(dst.local()[l], g * 1.5 - 7.0);
        }
      }
    }
  });
}

TEST_P(RedistributeTest, IdentityRedistributionIsContentEqual) {
  const int np = GetParam();
  const std::size_t n = 29;
  run_spmd(np, [&](Process& p) {
    auto dist = share(Distribution::block(n, p.nprocs()));
    DistributedVector<double> src(p, dist);
    src.set_from([](std::size_t g) { return static_cast<double>(g * g); });
    auto dst = hpfcg::hpf::redistribute(src, dist);
    for (std::size_t l = 0; l < dst.local().size(); ++l) {
      EXPECT_DOUBLE_EQ(dst.local()[l], src.local()[l]);
    }
  });
}

TEST_P(RedistributeTest, SizeMismatchRejected) {
  const int np = GetParam();
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> src(p,
                                  share(Distribution::block(10, p.nprocs())));
    EXPECT_THROW((void)hpfcg::hpf::redistribute(
                     src, share(Distribution::block(11, p.nprocs()))),
                 hpfcg::util::Error);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, RedistributeTest,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
