// REDISTRIBUTE: content must be preserved across every pair of
// distribution kinds, including dynamic (runtime-computed) cut points.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::DistPtr;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

DistPtr share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

std::vector<DistPtr> all_dists(std::size_t n, int np) {
  std::vector<DistPtr> out;
  out.push_back(share(Distribution::block(n, np)));
  out.push_back(share(Distribution::cyclic(n, np)));
  out.push_back(share(Distribution::cyclic_size(n, np, 4)));
  std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, n);
  cuts[0] = 0;
  for (int r = 1; r < np; ++r) {
    cuts[static_cast<std::size_t>(r)] =
        std::min<std::size_t>(n, static_cast<std::size_t>(r) * 2);
  }
  out.push_back(share(Distribution::from_cuts(n, cuts)));
  return out;
}

class RedistributeTest : public ::testing::TestWithParam<int> {};

TEST_P(RedistributeTest, AllPairsPreserveContent) {
  const int np = GetParam();
  const std::size_t n = 73;
  run_spmd(np, [&](Process& p) {
    const auto dists = all_dists(n, p.nprocs());
    for (const auto& from : dists) {
      for (const auto& to : dists) {
        DistributedVector<double> src(p, from);
        src.set_from([](std::size_t g) {
          return static_cast<double>(g) * 1.5 - 7.0;
        });
        auto dst = hpfcg::hpf::redistribute(src, to);
        EXPECT_TRUE(dst.dist() == *to);
        for (std::size_t l = 0; l < dst.local().size(); ++l) {
          const auto g = static_cast<double>(dst.global_of(l));
          EXPECT_DOUBLE_EQ(dst.local()[l], g * 1.5 - 7.0);
        }
      }
    }
  });
}

TEST_P(RedistributeTest, IdentityRedistributionIsContentEqual) {
  const int np = GetParam();
  const std::size_t n = 29;
  run_spmd(np, [&](Process& p) {
    auto dist = share(Distribution::block(n, p.nprocs()));
    DistributedVector<double> src(p, dist);
    src.set_from([](std::size_t g) { return static_cast<double>(g * g); });
    auto dst = hpfcg::hpf::redistribute(src, dist);
    for (std::size_t l = 0; l < dst.local().size(); ++l) {
      EXPECT_DOUBLE_EQ(dst.local()[l], src.local()[l]);
    }
  });
}

TEST_P(RedistributeTest, SizeMismatchRejected) {
  const int np = GetParam();
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> src(p,
                                  share(Distribution::block(10, p.nprocs())));
    EXPECT_THROW((void)hpfcg::hpf::redistribute(
                     src, share(Distribution::block(11, p.nprocs()))),
                 hpfcg::util::Error);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, RedistributeTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST_P(RedistributeTest, IdenticalTargetMovesNothing) {
  // Regression: an equal-but-distinct target used to run the full
  // all-to-all (every element serialized back to its own rank).  Now both
  // the same-object and equal-mapping cases short-circuit to a local copy:
  // zero messages, zero collectives, on every machine size.
  const int np = GetParam();
  const std::size_t n = 41;
  auto rt = run_spmd(np, [&](Process& p) {
    auto dist = share(Distribution::block(n, p.nprocs()));
    DistributedVector<double> src(p, dist);
    src.set_from([](std::size_t g) { return static_cast<double>(g) + 0.5; });
    auto same_obj = hpfcg::hpf::redistribute(src, dist);
    auto same_map = hpfcg::hpf::redistribute(
        src, share(Distribution::block(n, p.nprocs())));
    for (std::size_t l = 0; l < src.local().size(); ++l) {
      EXPECT_DOUBLE_EQ(same_obj.local()[l], src.local()[l]);
      EXPECT_DOUBLE_EQ(same_map.local()[l], src.local()[l]);
    }
  });
  const auto total = rt->total_stats();
  EXPECT_EQ(total.messages_sent, 0u);
  EXPECT_EQ(total.collectives, 0u);
}

TEST_P(RedistributeTest, OnlyMigratingElementsTravel) {
  // Regression: keepers (old owner == new owner) used to be packed,
  // "sent" to self, and unpacked.  With the self fast path the wire
  // carries exactly the elements whose owner changes, and a pair of ranks
  // exchanging nothing posts no message at all.
  const int np = GetParam();
  const std::size_t n = 57;
  const auto from = Distribution::block(n, np);
  // Shift every cut two elements right (clamped): most elements keep
  // their owner, a 2-wide fringe per boundary migrates.
  std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, 0);
  for (int r = 1; r < np; ++r) {
    cuts[static_cast<std::size_t>(r)] =
        std::min(n, from.local_range(r).first + 2);
  }
  cuts.back() = n;
  const auto to = Distribution::from_cuts(n, cuts);

  std::uint64_t want_msgs = 0;
  std::uint64_t want_bytes = 0;
  for (int s = 0; s < np; ++s) {
    for (int d = 0; d < np; ++d) {
      if (s == d) continue;
      const auto [slo, shi] = from.local_range(s);
      const auto [dlo, dhi] = to.local_range(d);
      const std::size_t lo = std::max(slo, dlo);
      const std::size_t hi = std::min(shi, dhi);
      if (lo < hi) {
        want_msgs += 1;
        want_bytes += (hi - lo) * sizeof(double);
      }
    }
  }
  if (np > 1) {
    ASSERT_GT(want_msgs, 0u);  // the shift must move something
  }

  auto rt = run_spmd(np, [&](Process& p) {
    DistributedVector<double> src(
        p, share(Distribution::block(n, p.nprocs())));
    src.set_from([](std::size_t g) { return 3.0 * static_cast<double>(g); });
    auto dst = hpfcg::hpf::redistribute(
        src, share(Distribution::from_cuts(n, cuts)));
    for (std::size_t l = 0; l < dst.local().size(); ++l) {
      EXPECT_DOUBLE_EQ(dst.local()[l],
                       3.0 * static_cast<double>(dst.global_of(l)));
    }
  });
  const auto total = rt->total_stats();
  EXPECT_EQ(total.messages_sent, want_msgs);   // no self-messages ever
  EXPECT_EQ(total.bytes_sent, want_bytes);     // migrating payload only
}

TEST_P(RedistributeTest, EmptyRanksUnderSmallArrays) {
  // n < NP leaves ranks with zero elements on one or both sides; the
  // zero-width pairs must post nothing and the check ledger must stay
  // aligned (every rank still enters the one collective).
  const int np = GetParam();
  hpfcg::check::ScopedEnable checking(true);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{3}}) {
    run_spmd(np, [&](Process& p) {
      const int P = p.nprocs();
      DistributedVector<double> src(p, share(Distribution::block(n, P)));
      src.set_from([](std::size_t g) { return static_cast<double>(g * 2); });
      // Everything onto the last rank.
      std::vector<std::size_t> cuts(static_cast<std::size_t>(P) + 1, 0);
      cuts.back() = n;
      auto dst = hpfcg::hpf::redistribute(
          src, share(Distribution::from_cuts(n, cuts)));
      EXPECT_EQ(dst.local().size(), p.rank() == P - 1 ? n : 0u);
      for (std::size_t l = 0; l < dst.local().size(); ++l) {
        EXPECT_DOUBLE_EQ(dst.local()[l],
                         static_cast<double>(dst.global_of(l) * 2));
      }
    });
  }
}

}  // namespace
