// FORALL / INDEPENDENT-DO owner-computes lowering.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <vector>

#include "hpfcg/hpf/forall.hpp"
#include "hpfcg/hpf/processors.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

TEST(Forall, EveryIterationRunsExactlyOnce) {
  const std::size_t n = 47;
  for (const int np : hpfcg_test::test_machine_sizes()) {
    std::vector<int> hits(n, 0);
    std::mutex mu;
    run_spmd(np, [&](Process& p) {
      const auto dist = Distribution::cyclic(n, p.nprocs());
      hpfcg::hpf::forall(p, dist, [&](std::size_t g, std::size_t /*l*/) {
        std::lock_guard<std::mutex> lock(mu);
        ++hits[g];
      });
    });
    for (std::size_t g = 0; g < n; ++g) EXPECT_EQ(hits[g], 1) << "np=" << np;
  }
}

TEST(Forall, LocalIndexMatchesDistribution) {
  run_spmd(4, [](Process& p) {
    const auto dist = Distribution::block(32, 4);
    hpfcg::hpf::forall(p, dist, [&](std::size_t g, std::size_t l) {
      EXPECT_EQ(dist.owner(g), p.rank());
      EXPECT_EQ(dist.local_index(g), l);
    });
  });
}

TEST(Forall, ForallReduceAccumulatesOwnedIterations) {
  const std::size_t n = 40;
  run_spmd(4, [&](Process& p) {
    const auto dist = Distribution::block(n, 4);
    const long local = hpfcg::hpf::forall_reduce<long>(
        p, dist, 0L,
        [](std::size_t g, std::size_t) { return static_cast<long>(g); },
        [](long a, long b) { return a + b; });
    const long total = p.allreduce(local);
    EXPECT_EQ(total, static_cast<long>(n * (n - 1) / 2));
  });
}

TEST(Forall, IndependentDoIsEquivalent) {
  const std::size_t n = 21;
  run_spmd(3, [&](Process& p) {
    const auto dist = Distribution::block(n, 3);
    std::size_t count = 0;
    hpfcg::hpf::independent_do(p, dist,
                               [&](std::size_t, std::size_t) { ++count; });
    EXPECT_EQ(count, dist.local_count(p.rank()));
  });
}

TEST(Processors, ArrangementValidatesDeclaredSize) {
  run_spmd(4, [](Process& p) {
    hpfcg::hpf::ProcessorArrangement procs(p, "PROCS");
    EXPECT_EQ(procs.size(), 4);
    EXPECT_EQ(procs.name(), "PROCS");
    hpfcg::hpf::ProcessorArrangement declared(p, "PROCS", 4);
    EXPECT_EQ(declared.size(), 4);
    EXPECT_THROW(hpfcg::hpf::ProcessorArrangement(p, "BAD", 5),
                 hpfcg::util::Error);
  });
}

}  // namespace
