// Affine ALIGN: induced ownership must follow the template through the
// subscript map, keeping mapped accesses local.

#include <gtest/gtest.h>

#include <memory>

#include "hpfcg/hpf/align.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::align_affine;
using hpfcg::hpf::align_affine_ptr;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

TEST(AlignAffine, IdentityAlignmentReproducesTemplate) {
  const auto tmpl = Distribution::block(24, 4);
  const auto d = align_affine(tmpl, 24, 1, 0);
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_EQ(d.owner(i), tmpl.owner(i));
  }
}

TEST(AlignAffine, StridedAlignmentFollowsTemplate) {
  // x(i) WITH T(2*i): x element i lives with template element 2i.
  const auto tmpl = Distribution::block(40, 4);
  const auto d = align_affine(tmpl, 20, 2, 0);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(d.owner(i), tmpl.owner(2 * i));
  }
}

TEST(AlignAffine, OffsetAlignment) {
  // x(i) WITH T(i + 5).
  const auto tmpl = Distribution::cyclic(30, 3);
  const auto d = align_affine(tmpl, 25, 1, 5);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(d.owner(i), tmpl.owner(i + 5));
  }
}

TEST(AlignAffine, ReversalAlignment) {
  // x(i) WITH T(n-1-i): the array lives back-to-front on the template.
  const std::size_t n = 16;
  const auto tmpl = Distribution::block(n, 4);
  const auto d = align_affine(tmpl, n, -1, static_cast<long>(n) - 1);
  EXPECT_EQ(d.owner(0), tmpl.owner(n - 1));
  EXPECT_EQ(d.owner(n - 1), tmpl.owner(0));
}

TEST(AlignAffine, OutOfTemplateRejected) {
  const auto tmpl = Distribution::block(10, 2);
  EXPECT_THROW((void)align_affine(tmpl, 10, 2, 0), hpfcg::util::Error);
  EXPECT_THROW((void)align_affine(tmpl, 10, 1, 5), hpfcg::util::Error);
  EXPECT_THROW((void)align_affine(tmpl, 10, 0, 0), hpfcg::util::Error);
  EXPECT_THROW((void)align_affine(tmpl, 10, -1, 5), hpfcg::util::Error);
}

TEST(AlignAffine, MappedAccessIsLocalInSpmd) {
  // Every rank can read x(i) next to T(2i+1) without communication.
  const std::size_t tn = 41;
  const std::size_t xn = 20;
  run_spmd(4, [&](Process& p) {
    auto tmpl = std::make_shared<const Distribution>(
        Distribution::block(tn, p.nprocs()));
    DistributedVector<double> t(p, tmpl);
    t.set_from([](std::size_t g) { return static_cast<double>(g); });
    DistributedVector<double> x(p, align_affine_ptr(*tmpl, xn, 2, 1));
    x.set_from([](std::size_t g) { return 100.0 + static_cast<double>(g); });

    // owner(x_i) == owner(T_{2i+1}) means both are locally addressable.
    for (std::size_t i = 0; i < xn; ++i) {
      if (x.owns(i)) {
        EXPECT_TRUE(t.owns(2 * i + 1));
        EXPECT_DOUBLE_EQ(t.at_global(2 * i + 1) * 0 + x.at_global(i),
                         100.0 + static_cast<double>(i));
      }
    }
  });
}

}  // namespace
