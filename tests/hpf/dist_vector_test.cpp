// DistributedVector: construction, alignment, global/local access, and the
// gather paths (to_global / to_root) across distribution kinds and machine
// sizes.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::DistPtr;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

DistPtr share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

enum class Kind { kBlock, kCyclic, kCyclicK, kCuts };

DistPtr make_dist(Kind kind, std::size_t n, int np) {
  switch (kind) {
    case Kind::kBlock:
      return share(Distribution::block(n, np));
    case Kind::kCyclic:
      return share(Distribution::cyclic(n, np));
    case Kind::kCyclicK:
      return share(Distribution::cyclic_size(n, np, 3));
    case Kind::kCuts: {
      std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, n);
      cuts[0] = 0;
      // Front-loaded cuts: rank 0 gets half, the rest split the remainder.
      std::size_t acc = n / 2;
      for (int r = 1; r < np; ++r) {
        cuts[static_cast<std::size_t>(r)] = std::min(n, acc);
        acc += (n - n / 2) / static_cast<std::size_t>(np);
      }
      return share(Distribution::from_cuts(n, cuts));
    }
  }
  return nullptr;
}

class DistVectorTest
    : public ::testing::TestWithParam<std::tuple<Kind, int>> {};

TEST_P(DistVectorTest, SetFromAndToGlobalRoundTrip) {
  const auto [kind, np] = GetParam();
  const std::size_t n = 101;
  run_spmd(np, [&, kind = kind, np = np](Process& p) {
    DistributedVector<double> v(p, make_dist(kind, n, np));
    v.set_from([](std::size_t g) { return 3.0 * g + 1.0; });
    const auto full = v.to_global();
    ASSERT_EQ(full.size(), n);
    for (std::size_t g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(full[g], 3.0 * g + 1.0);
    }
  });
}

TEST_P(DistVectorTest, FromGlobalSelectsOwnedSlice) {
  const auto [kind, np] = GetParam();
  const std::size_t n = 64;
  run_spmd(np, [&, kind = kind, np = np](Process& p) {
    std::vector<double> full(n);
    for (std::size_t g = 0; g < n; ++g) full[g] = static_cast<double>(g * g);
    DistributedVector<double> v(p, make_dist(kind, n, np));
    v.from_global(full);
    for (std::size_t l = 0; l < v.local().size(); ++l) {
      const std::size_t g = v.global_of(l);
      EXPECT_DOUBLE_EQ(v.local()[l], static_cast<double>(g * g));
    }
  });
}

TEST_P(DistVectorTest, ToRootGathersOnlyAtRoot) {
  const auto [kind, np] = GetParam();
  const std::size_t n = 37;
  run_spmd(np, [&, kind = kind, np = np](Process& p) {
    DistributedVector<double> v(p, make_dist(kind, n, np));
    v.set_from([](std::size_t g) { return static_cast<double>(g) - 5.0; });
    const auto full = v.to_root(0);
    if (p.rank() == 0) {
      ASSERT_EQ(full.size(), n);
      for (std::size_t g = 0; g < n; ++g) {
        EXPECT_DOUBLE_EQ(full[g], static_cast<double>(g) - 5.0);
      }
    } else {
      EXPECT_TRUE(full.empty());
    }
  });
}

TEST_P(DistVectorTest, OwnershipQueries) {
  const auto [kind, np] = GetParam();
  const std::size_t n = 50;
  run_spmd(np, [&, kind = kind, np = np](Process& p) {
    DistributedVector<double> v(p, make_dist(kind, n, np));
    v.set_from([](std::size_t g) { return static_cast<double>(g); });
    std::size_t owned = 0;
    for (std::size_t g = 0; g < n; ++g) {
      if (v.owns(g)) {
        ++owned;
        EXPECT_DOUBLE_EQ(v.at_global(g), static_cast<double>(g));
      }
    }
    EXPECT_EQ(owned, v.local().size());
  });
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, DistVectorTest,
    ::testing::Combine(::testing::Values(Kind::kBlock, Kind::kCyclic,
                                         Kind::kCyclicK, Kind::kCuts),
                       ::testing::Values(1, 2, 3, 4, 8)));

TEST(DistVector, AlignedLikeSharesDistribution) {
  run_spmd(4, [](Process& p) {
    DistributedVector<double> a(p, share(Distribution::block(40, 4)));
    auto b = DistributedVector<double>::aligned_like(a);
    EXPECT_TRUE(hpfcg::hpf::is_aligned(a, b));
    EXPECT_EQ(a.local().size(), b.local().size());
  });
}

TEST(DistVector, AlignmentByValueEquality) {
  run_spmd(4, [](Process& p) {
    DistributedVector<double> a(p, share(Distribution::block(40, 4)));
    DistributedVector<double> b(p, share(Distribution::block_size(40, 4, 10)));
    DistributedVector<double> c(p, share(Distribution::cyclic(40, 4)));
    EXPECT_TRUE(hpfcg::hpf::is_aligned(a, b));   // same mapping
    EXPECT_FALSE(hpfcg::hpf::is_aligned(a, c));  // different mapping
  });
}

TEST(DistVector, AtGlobalRejectsUnownedElement) {
  run_spmd(2, [](Process& p) {
    DistributedVector<double> v(p, share(Distribution::block(10, 2)));
    const std::size_t foreign = p.rank() == 0 ? 9 : 0;
    EXPECT_THROW((void)v.at_global(foreign), hpfcg::util::Error);
  });
}

TEST(DistVector, MachineSizeMismatchRejected) {
  run_spmd(2, [](Process& p) {
    EXPECT_THROW(DistributedVector<double>(
                     p, share(Distribution::block(10, 3))),
                 hpfcg::util::Error);
  });
}

}  // namespace
