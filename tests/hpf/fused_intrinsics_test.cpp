// hpf::dot_products must be a drop-in fusion of k dot_product calls:
// bit-identical results (same local kernel, same merge tree) while paying
// one reduction instead of k, for every machine size.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::hpf::DotPair;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

class FusedIntrinsicsTest : public ::testing::TestWithParam<int> {};

TEST_P(FusedIntrinsicsTest, PairFormBitIdenticalToTwoDots) {
  const int np = GetParam();
  const std::size_t n = 95;  // uneven blocks on most machine sizes
  run_spmd(np, [n](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    DistributedVector<double> r(proc, dist), w(proc, dist);
    r.set_from([](std::size_t g) { return std::sin(0.3 * g) + 0.1; });
    w.set_from([](std::size_t g) { return std::cos(0.7 * g) - 0.2; });
    const auto fused = hpfcg::hpf::dot_products(r, r, w, r);
    EXPECT_EQ(fused[0], hpfcg::hpf::dot_product(r, r));
    EXPECT_EQ(fused[1], hpfcg::hpf::dot_product(w, r));
  });
}

TEST_P(FusedIntrinsicsTest, TripleFormBitIdenticalToThreeDots) {
  const int np = GetParam();
  const std::size_t n = 64;
  run_spmd(np, [n](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    DistributedVector<double> r(proc, dist), u(proc, dist), w(proc, dist);
    r.set_from([](std::size_t g) { return 1.0 / (1.0 + g); });
    u.set_from([](std::size_t g) { return std::sin(1.1 * g); });
    w.set_from([](std::size_t g) { return 0.5 * g - 3.0; });
    const auto fused = hpfcg::hpf::dot_products(r, u, w, u, r, r);
    EXPECT_EQ(fused[0], hpfcg::hpf::dot_product(r, u));
    EXPECT_EQ(fused[1], hpfcg::hpf::dot_product(w, u));
    EXPECT_EQ(fused[2], hpfcg::hpf::dot_product(r, r));
  });
}

TEST_P(FusedIntrinsicsTest, SpanFormHandlesArbitraryWidth) {
  const int np = GetParam();
  const std::size_t n = 40;
  const std::size_t k = 11;  // wider than any solver needs
  run_spmd(np, [n, k](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    std::vector<DistributedVector<double>> vecs;
    vecs.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      vecs.emplace_back(proc, dist);
      vecs.back().set_from(
          [j](std::size_t g) { return std::sin(0.1 * j + 0.01 * g); });
    }
    std::vector<DotPair<double>> pairs(k);
    for (std::size_t j = 0; j < k; ++j) {
      pairs[j] = {&vecs[j], &vecs[(j + 1) % k]};
    }
    std::vector<double> out(k);
    hpfcg::hpf::dot_products<double>(pairs, out);
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_EQ(out[j],
                hpfcg::hpf::dot_product(vecs[j], vecs[(j + 1) % k]));
    }
  });
}

TEST_P(FusedIntrinsicsTest, WidthZeroIsCommunicationFreeNoOp) {
  const int np = GetParam();
  auto rt = run_spmd(np, [](Process&) {
    std::span<const DotPair<double>> pairs;
    std::span<double> out;
    hpfcg::hpf::dot_products<double>(pairs, out);  // documented no-op
  });
  const auto total = rt->total_stats();
  EXPECT_EQ(total.collectives, 0u);
  EXPECT_EQ(total.reductions, 0u);
  EXPECT_EQ(total.messages_sent, 0u);
}

TEST_P(FusedIntrinsicsTest, OneReductionRegardlessOfWidth) {
  const int np = GetParam();
  const std::size_t n = 32;
  auto rt = run_spmd(np, [n](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    DistributedVector<double> a(proc, dist), b(proc, dist);
    a.set_from([](std::size_t g) { return static_cast<double>(g); });
    b.set_from([](std::size_t g) { return static_cast<double>(g % 3); });
    (void)hpfcg::hpf::dot_products(a, a, b, b);        // width 2
    (void)hpfcg::hpf::dot_products(a, b, b, a, a, a);  // width 3
  });
  for (int r = 0; r < np; ++r) {
    EXPECT_EQ(rt->stats(r).reductions, 2u);
    EXPECT_EQ(rt->stats(r).reduction_values, 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, FusedIntrinsicsTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
