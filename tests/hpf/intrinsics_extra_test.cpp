// MAXVAL / MINVAL / MAXLOC / MINLOC intrinsics across distributions.

#include <gtest/gtest.h>

#include <memory>

#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

class LocIntrinsicsTest : public ::testing::TestWithParam<int> {};

TEST_P(LocIntrinsicsTest, MaxvalMinval) {
  const int np = GetParam();
  const std::size_t n = 41;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::cyclic(n, np)));
    x.set_from([n](std::size_t g) {
      return g == 17 ? 99.0 : (g == 29 ? -50.0 : static_cast<double>(g % 10));
    });
    EXPECT_DOUBLE_EQ(hpfcg::hpf::maxval(x), 99.0);
    EXPECT_DOUBLE_EQ(hpfcg::hpf::minval(x), -50.0);
  });
}

TEST_P(LocIntrinsicsTest, MaxlocMinlocFindGlobalIndices) {
  const int np = GetParam();
  const std::size_t n = 53;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(n, np)));
    x.set_from([](std::size_t g) {
      return g == 37 ? 7.5 : (g == 11 ? -7.5 : 0.0);
    });
    const auto mx = hpfcg::hpf::maxloc(x);
    EXPECT_DOUBLE_EQ(mx.value, 7.5);
    EXPECT_EQ(mx.index, 37u);
    const auto mn = hpfcg::hpf::minloc(x);
    EXPECT_DOUBLE_EQ(mn.value, -7.5);
    EXPECT_EQ(mn.index, 11u);
  });
}

TEST_P(LocIntrinsicsTest, TiesResolveToLowestIndex) {
  const int np = GetParam();
  const std::size_t n = 24;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::cyclic(n, np)));
    hpfcg::hpf::fill(x, 1.0);  // every element ties
    const auto mx = hpfcg::hpf::maxloc(x);
    EXPECT_EQ(mx.index, 0u);
    const auto mn = hpfcg::hpf::minloc(x);
    EXPECT_EQ(mn.index, 0u);
  });
}

TEST_P(LocIntrinsicsTest, EmptyShardsDoNotPollute) {
  const int np = GetParam();
  // n < np: some shards are empty and must not inject sentinels.
  const std::size_t n = 2;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(n, np)));
    x.set_from([](std::size_t g) { return g == 0 ? -3.0 : 4.0; });
    EXPECT_DOUBLE_EQ(hpfcg::hpf::maxval(x), 4.0);
    EXPECT_DOUBLE_EQ(hpfcg::hpf::minval(x), -3.0);
    EXPECT_EQ(hpfcg::hpf::maxloc(x).index, 1u);
    EXPECT_EQ(hpfcg::hpf::minloc(x).index, 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, LocIntrinsicsTest,
                         ::testing::ValuesIn(test_machine_sizes()));

TEST(CsrFromDense, RoundTripsThroughDense) {
  const std::vector<double> dense = {1, 0, 2,  //
                                     0, 0, 0,  //
                                     3, 4, 0};
  const auto a = hpfcg::sparse::Csr<double>::from_dense(3, 3, dense);
  EXPECT_EQ(a.nnz(), 4u);
  EXPECT_EQ(a.to_dense(), dense);
  EXPECT_EQ(a.row_nnz(1), 0u);
}

}  // namespace
