// CSHIFT / EOSHIFT intrinsics: Fortran semantics, all shift magnitudes and
// signs, contiguous and non-contiguous distributions, and the boundary-
// exchange communication bound on BLOCK.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "hpfcg/hpf/shift.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

double val(std::size_t g) { return 100.0 + static_cast<double>(g); }

class ShiftTest
    : public ::testing::TestWithParam<std::tuple<int, long, bool>> {};

TEST_P(ShiftTest, MatchesSerialDefinition) {
  const auto [np, shift, cyclic_dist] = GetParam();
  const std::size_t n = 23;
  run_spmd(np, [&, shift = shift, cyclic_dist = cyclic_dist](Process& p) {
    auto dist = cyclic_dist ? share(Distribution::cyclic(n, p.nprocs()))
                            : share(Distribution::block(n, p.nprocs()));
    DistributedVector<double> x(p, dist), c(p, dist), e(p, dist);
    x.set_from(val);

    hpfcg::hpf::cshift(x, c, shift);
    const auto cf = c.to_global();
    const auto sn = static_cast<long>(n);
    for (long i = 0; i < sn; ++i) {
      const long srci = (((i + shift) % sn) + sn) % sn;
      EXPECT_DOUBLE_EQ(cf[static_cast<std::size_t>(i)],
                       val(static_cast<std::size_t>(srci)))
          << "cshift i=" << i << " shift=" << shift;
    }

    hpfcg::hpf::eoshift(x, e, shift, -1.0);
    const auto ef = e.to_global();
    for (long i = 0; i < sn; ++i) {
      const long srci = i + shift;
      const double expect =
          (srci < 0 || srci >= sn) ? -1.0 : val(static_cast<std::size_t>(srci));
      EXPECT_DOUBLE_EQ(ef[static_cast<std::size_t>(i)], expect)
          << "eoshift i=" << i << " shift=" << shift;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ShiftTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values<long>(-25, -7, -1, 0, 1, 5, 23, 24,
                                               50),
                       ::testing::Bool()));

TEST(Shift, UnitShiftOnBlockIsBoundaryExchangeOnly) {
  // The stencil payoff: CSHIFT(x, ±1) on BLOCK moves exactly one element
  // per rank boundary — O(1) messages/bytes per rank, not O(n).
  const std::size_t n = 4096;
  const int np = 8;
  auto rt = run_spmd(np, [&](Process& p) {
    auto dist = share(Distribution::block(n, np));
    DistributedVector<double> x(p, dist), y(p, dist);
    x.set_from(val);
    hpfcg::hpf::cshift(x, y, 1);
  });
  // Each rank sends exactly one boundary element (to its left neighbour;
  // circular wrap included): NP messages of 8 bytes.
  EXPECT_EQ(rt->total_stats().messages_sent, static_cast<std::uint64_t>(np));
  EXPECT_EQ(rt->total_stats().bytes_sent,
            static_cast<std::uint64_t>(np) * sizeof(double));
}

TEST(Shift, Laplace1dStencilMatchesAssembledMatrix) {
  const std::size_t n = 257;
  for (const int np : {1, 3, 4, 8}) {
    run_spmd(np, [&](Process& p) {
      auto dist = share(Distribution::block(n, p.nprocs()));
      DistributedVector<double> x(p, dist), q(p, dist);
      x.set_from([](std::size_t g) {
        return std::sin(0.1 * static_cast<double>(g));
      });
      hpfcg::hpf::laplace1d_stencil(x, q);
      const auto xf = x.to_global();
      const auto qf = q.to_global();
      for (std::size_t i = 0; i < n; ++i) {
        const double left = i > 0 ? xf[i - 1] : 0.0;
        const double right = i + 1 < n ? xf[i + 1] : 0.0;
        EXPECT_NEAR(qf[i], 2 * xf[i] - left - right, 1e-12);
      }
    });
  }
}

TEST(Shift, FullWrapIsIdentity) {
  const std::size_t n = 16;
  run_spmd(4, [&](Process& p) {
    auto dist = share(Distribution::block(n, 4));
    DistributedVector<double> x(p, dist), y(p, dist);
    x.set_from(val);
    hpfcg::hpf::cshift(x, y, static_cast<long>(n));
    for (std::size_t l = 0; l < x.local().size(); ++l) {
      EXPECT_DOUBLE_EQ(y.local()[l], x.local()[l]);
    }
  });
}

TEST(Shift, EoshiftBeyondLengthFillsEverything) {
  const std::size_t n = 12;
  run_spmd(3, [&](Process& p) {
    auto dist = share(Distribution::block(n, 3));
    DistributedVector<double> x(p, dist), y(p, dist);
    x.set_from(val);
    hpfcg::hpf::eoshift(x, y, 40, 9.0);
    for (const double v : y.local()) EXPECT_DOUBLE_EQ(v, 9.0);
  });
}

TEST(Shift, MisalignedOperandsRejected) {
  run_spmd(2, [](Process& p) {
    DistributedVector<double> x(p, share(Distribution::block(10, 2)));
    DistributedVector<double> y(p, share(Distribution::cyclic(10, 2)));
    EXPECT_THROW(hpfcg::hpf::cshift(x, y, 1), hpfcg::util::Error);
  });
}

}  // namespace
