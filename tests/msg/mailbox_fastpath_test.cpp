// The mailbox's matching guarantees — FIFO per (src, tag) and
// arrival-order fairness for any-source receives — must survive the
// fast-path machinery (per-source shards, inline payloads, pooled
// buffers), including for zero-length payloads, and with every fast path
// toggled off.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "hpfcg/msg/mailbox.hpp"
#include "hpfcg/msg/process.hpp"
#include "spmd_test_util.hpp"

using hpfcg::msg::Envelope;
using hpfcg::msg::kAnySource;
using hpfcg::msg::Mailbox;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

/// Restore the global fast-path toggles however a test leaves them.
struct ToggleGuard {
  bool pooling = hpfcg::msg::buffer_pooling();
  bool inlined = hpfcg::msg::inline_payloads();
  std::size_t pool_cap = hpfcg::msg::max_pooled_buffers();
  ~ToggleGuard() {
    hpfcg::msg::set_buffer_pooling(pooling);
    hpfcg::msg::set_inline_payloads(inlined);
    hpfcg::msg::set_max_pooled_buffers(pool_cap);
  }
};

/// Deposit a one-byte message whose payload identifies it.
void post(Mailbox& mb, int src, int tag, std::uint8_t marker) {
  Envelope env = mb.make_envelope(src, tag, 1);
  *env.data() = static_cast<std::byte>(marker);
  mb.deposit(std::move(env));
}

std::uint8_t marker_of(const Envelope& env) {
  return static_cast<std::uint8_t>(*env.data());
}

TEST(MailboxFastPathTest, FifoPerSourceAndTag) {
  Mailbox mb(2);
  for (std::uint8_t m = 0; m < 5; ++m) post(mb, 1, 7, m);
  for (std::uint8_t m = 0; m < 5; ++m) {
    Envelope env = mb.receive(1, 7);
    EXPECT_EQ(marker_of(env), m);
    mb.recycle(std::move(env));
  }
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(MailboxFastPathTest, DirectedReceiveSkipsOtherTagsNotOrder) {
  Mailbox mb(2);
  post(mb, 1, /*tag=*/1, 10);
  post(mb, 1, /*tag=*/2, 20);
  post(mb, 1, /*tag=*/1, 11);
  // Pulling tag 2 first must not disturb tag 1's FIFO order.
  Envelope env = mb.receive(1, 2);
  EXPECT_EQ(marker_of(env), 20);
  env = mb.receive(1, 1);
  EXPECT_EQ(marker_of(env), 10);
  env = mb.receive(1, 1);
  EXPECT_EQ(marker_of(env), 11);
}

TEST(MailboxFastPathTest, AnySourceMatchesGloballyOldestAcrossShards) {
  Mailbox mb(4);
  // Arrival order crosses shards: 3, 1, 3, 0.  Any-source must replay it.
  post(mb, 3, 9, 30);
  post(mb, 1, 9, 10);
  post(mb, 3, 9, 31);
  post(mb, 0, 9, 0);
  const std::uint8_t expect[] = {30, 10, 31, 0};
  const int expect_src[] = {3, 1, 3, 0};
  for (int i = 0; i < 4; ++i) {
    Envelope env = mb.receive(kAnySource, 9);
    EXPECT_EQ(marker_of(env), expect[i]) << "i=" << i;
    EXPECT_EQ(env.src, expect_src[i]) << "i=" << i;
  }
}

TEST(MailboxFastPathTest, AnySourceFairnessWithZeroLengthPayloads) {
  Mailbox mb(3);
  // Zero-length messages are ordinary messages: same fairness rule.
  mb.deposit(mb.make_envelope(2, 4, 0));
  mb.deposit(mb.make_envelope(0, 4, 0));
  mb.deposit(mb.make_envelope(2, 4, 0));
  Envelope env = mb.receive(kAnySource, 4);
  EXPECT_EQ(env.src, 2);
  EXPECT_TRUE(env.empty());
  env = mb.receive(kAnySource, 4);
  EXPECT_EQ(env.src, 0);
  env = mb.receive(kAnySource, 4);
  EXPECT_EQ(env.src, 2);
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(MailboxFastPathTest, AnySourceNotStarvedByFloodFromOneRank) {
  Mailbox mb(2);
  post(mb, 0, 5, 100);             // oldest
  for (std::uint8_t m = 0; m < 50; ++m) post(mb, 1, 5, m);  // flood
  Envelope env = mb.receive(kAnySource, 5);
  EXPECT_EQ(env.src, 0);           // flood cannot overtake the older message
  EXPECT_EQ(marker_of(env), 100);
}

TEST(MailboxFastPathTest, TryReceiveMatchesOrReportsEmpty) {
  Mailbox mb(2);
  Envelope out;
  EXPECT_FALSE(mb.try_receive(kAnySource, 3, out));
  post(mb, 1, 3, 42);
  EXPECT_FALSE(mb.try_receive(1, 4, out));  // wrong tag
  EXPECT_FALSE(mb.try_receive(0, 3, out));  // wrong source
  ASSERT_TRUE(mb.try_receive(1, 3, out));
  EXPECT_EQ(marker_of(out), 42);
  EXPECT_FALSE(mb.try_receive(1, 3, out));
}

TEST(MailboxFastPathTest, InlineStorageBoundaryAt64Bytes) {
  ToggleGuard guard;
  hpfcg::msg::set_inline_payloads(true);
  Mailbox mb(1);
  Envelope at = mb.make_envelope(0, 1, Envelope::kInlineCapacity);
  EXPECT_TRUE(at.stored_inline());
  EXPECT_EQ(at.size(), Envelope::kInlineCapacity);
  Envelope over = mb.make_envelope(0, 1, Envelope::kInlineCapacity + 1);
  EXPECT_FALSE(over.stored_inline());
  EXPECT_EQ(over.size(), Envelope::kInlineCapacity + 1);

  hpfcg::msg::set_inline_payloads(false);
  Envelope off = mb.make_envelope(0, 1, 8);
  EXPECT_FALSE(off.stored_inline());  // fast path disabled => heap
  EXPECT_EQ(off.size(), 8u);
}

TEST(MailboxFastPathTest, PayloadsSurviveEitherStorage) {
  ToggleGuard guard;
  for (const bool inline_on : {true, false}) {
    hpfcg::msg::set_inline_payloads(inline_on);
    Mailbox mb(1);
    for (const std::size_t bytes : {std::size_t{8}, std::size_t{64},
                                    std::size_t{65}, std::size_t{4096}}) {
      Envelope env = mb.make_envelope(0, 2, bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        env.data()[i] = static_cast<std::byte>((i * 7 + bytes) & 0xFF);
      }
      mb.deposit(std::move(env));
      Envelope got = mb.receive(0, 2);
      ASSERT_EQ(got.size(), bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        ASSERT_EQ(got.data()[i], static_cast<std::byte>((i * 7 + bytes) & 0xFF))
            << "inline_on=" << inline_on << " bytes=" << bytes << " i=" << i;
      }
      mb.recycle(std::move(got));
    }
  }
}

TEST(MailboxFastPathTest, RecycledHeapBuffersAreReused) {
  ToggleGuard guard;
  hpfcg::msg::set_buffer_pooling(true);
  hpfcg::msg::set_inline_payloads(true);
  Mailbox mb(1);
  const std::size_t big = 1024;  // forces heap storage

  Envelope env = mb.make_envelope(0, 1, big);
  std::memset(env.data(), 0xAB, big);
  mb.deposit(std::move(env));
  Envelope got = mb.receive(0, 1);
  EXPECT_EQ(mb.pooled_buffers(), 0u);
  mb.recycle(std::move(got));
  EXPECT_EQ(mb.pooled_buffers(), 1u);  // heap buffer parked in freelist

  // The next large envelope draws the parked buffer instead of allocating.
  Envelope reuse = mb.make_envelope(0, 1, big);
  EXPECT_EQ(mb.pooled_buffers(), 0u);
  EXPECT_FALSE(reuse.stored_inline());

  // Inline envelopes contribute nothing to the pool.
  mb.recycle(mb.make_envelope(0, 1, 8));
  EXPECT_EQ(mb.pooled_buffers(), 0u);
}

TEST(MailboxFastPathTest, PoolingDisabledNeverParksBuffers) {
  ToggleGuard guard;
  hpfcg::msg::set_buffer_pooling(false);
  Mailbox mb(1);
  Envelope env = mb.make_envelope(0, 1, 1024);
  mb.deposit(std::move(env));
  Envelope got = mb.receive(0, 1);
  mb.recycle(std::move(got));
  EXPECT_EQ(mb.pooled_buffers(), 0u);
}

TEST(MailboxFastPathTest, PoolExhaustionFallsBackToTrackedHeap) {
  // Regression: a drained pool must hand out a fresh tracked heap buffer
  // immediately — never block waiting for a recycle — and the envelope
  // must say which path it took.
  ToggleGuard guard;
  hpfcg::msg::set_buffer_pooling(true);
  hpfcg::msg::set_inline_payloads(true);
  hpfcg::msg::set_max_pooled_buffers(1);
  Mailbox mb(1);
  const std::size_t big = 1024;

  // Pool starts empty: both concurrent-in-flight envelopes take the
  // tracked heap fallback.
  Envelope a = mb.make_envelope(0, 1, big);
  Envelope b = mb.make_envelope(0, 1, big);
  EXPECT_EQ(a.path(), hpfcg::msg::EnvelopePath::kHeap);
  EXPECT_EQ(b.path(), hpfcg::msg::EnvelopePath::kHeap);

  // Recycling both parks only one buffer — the cap holds.
  mb.recycle(std::move(a));
  mb.recycle(std::move(b));
  EXPECT_EQ(mb.pooled_buffers(), 1u);

  // The next draw takes the parked buffer; the one after falls back again.
  Envelope c = mb.make_envelope(0, 1, big);
  EXPECT_EQ(c.path(), hpfcg::msg::EnvelopePath::kPooled);
  Envelope d = mb.make_envelope(0, 1, big);
  EXPECT_EQ(d.path(), hpfcg::msg::EnvelopePath::kHeap);

  // Refill the pool, then cap it at 0: parking is disabled, but a buffer
  // already parked is still drained.
  mb.recycle(std::move(c));
  EXPECT_EQ(mb.pooled_buffers(), 1u);
  hpfcg::msg::set_max_pooled_buffers(0);
  Envelope e = mb.make_envelope(0, 1, big);
  EXPECT_EQ(e.path(), hpfcg::msg::EnvelopePath::kPooled);
  mb.recycle(std::move(e));
  EXPECT_EQ(mb.pooled_buffers(), 0u);  // nothing new is parked
}

class MailboxSpmdTest : public ::testing::TestWithParam<int> {};

TEST_P(MailboxSpmdTest, PoolSizeOneStressKeepsFifoAndCountsEnvelopePaths) {
  // Stress the exhausted-pool path: pool capped at ONE buffer while many
  // large sends are in flight alongside inline ones.  Per-source FIFO and
  // any-source arrival order must be unaffected, nothing may deadlock, and
  // the Stats envelope-path counters must show the heap fallback firing.
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "needs at least one sender";
  ToggleGuard guard;
  hpfcg::msg::set_buffer_pooling(true);
  hpfcg::msg::set_inline_payloads(true);
  hpfcg::msg::set_max_pooled_buffers(1);
  constexpr int kRounds = 64;
  constexpr int kTag = 91;
  auto rt = run_spmd(np, [](Process& p) {
    if (p.rank() == 0) {
      std::vector<int> next(static_cast<std::size_t>(p.nprocs()), 0);
      const int total = (p.nprocs() - 1) * kRounds;
      for (int i = 0; i < total; ++i) {
        int src = -1;
        const auto payload = p.recv_any<std::int32_t>(kTag, src);
        EXPECT_FALSE(payload.empty());
        if (payload.empty()) continue;
        // Payload alternates 1 value (inline) / 256 values (pooled or
        // heap); element 0 always carries the per-source sequence number.
        const int seq = payload[0];
        EXPECT_EQ(seq, next[static_cast<std::size_t>(src)])
            << "FIFO violated for src " << src;
        next[static_cast<std::size_t>(src)] = seq + 1;
        if (payload.size() > 1) {
          EXPECT_EQ(payload[255], seq + 1000);  // tail of the large payload
        }
      }
    } else {
      for (int i = 0; i < kRounds; ++i) {
        if (i % 2 == 0) {
          p.send_value<std::int32_t>(0, kTag, i);  // 4 B: inline
        } else {
          std::vector<std::int32_t> big(256, 0);   // 1 KiB: pooled/heap
          big[0] = i;
          big[255] = i + 1000;
          p.send<std::int32_t>(0, kTag, big);
        }
      }
    }
  });
  const auto total = rt->total_stats();
  const auto senders = static_cast<std::uint64_t>(np - 1);
  EXPECT_EQ(total.messages_sent, senders * kRounds);
  EXPECT_EQ(total.envelopes_inline, senders * kRounds / 2);
  EXPECT_EQ(total.envelopes_pooled + total.envelopes_heap,
            senders * kRounds / 2);
  // With a one-buffer pool and 32 large sends per sender racing the
  // receiver, the fallback must fire (the very first large send already
  // finds the pool empty).
  EXPECT_GT(total.envelopes_heap, 0u);
}

TEST_P(MailboxSpmdTest, AnySourceReceivesEveryRankOnceUnderToggles) {
  // End-to-end across real sender threads, with each fast-path combination:
  // rank 0 drains np-1 any-source messages (half of them zero-length) and
  // must see every sender exactly once with the right payload.
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "needs at least one sender";
  ToggleGuard guard;
  for (const bool pooling : {true, false}) {
    for (const bool inlined : {true, false}) {
      hpfcg::msg::set_buffer_pooling(pooling);
      hpfcg::msg::set_inline_payloads(inlined);
      run_spmd(np, [](Process& p) {
        constexpr int kTag = 77;
        if (p.rank() == 0) {
          std::set<int> seen;
          for (int i = 1; i < p.nprocs(); ++i) {
            int src = -1;
            const auto payload = p.recv_any<std::int32_t>(kTag, src);
            const bool expect_empty = (src % 2) == 0;
            EXPECT_EQ(payload.empty(), expect_empty);
            if (!payload.empty()) {
              EXPECT_EQ(payload[0], src * 10);
            }
            EXPECT_TRUE(seen.insert(src).second) << "duplicate src " << src;
          }
          EXPECT_EQ(static_cast<int>(seen.size()), p.nprocs() - 1);
        } else if (p.rank() % 2 == 0) {
          p.send<std::int32_t>(0, kTag, {});  // zero-length
        } else {
          p.send_value<std::int32_t>(0, kTag, p.rank() * 10);
        }
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, MailboxSpmdTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
