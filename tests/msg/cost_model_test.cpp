// The communication cost model: hop metrics per topology and the paper's
// closed-form collective costs.

#include <gtest/gtest.h>

#include "hpfcg/msg/cost_model.hpp"
#include "hpfcg/util/error.hpp"

using hpfcg::msg::CostModel;
using hpfcg::msg::CostParams;
using hpfcg::msg::Topology;

namespace {

TEST(CostModel, HypercubeHopsArePopcount) {
  CostModel m({}, Topology::kHypercube, 8);
  EXPECT_EQ(m.hops(0, 0), 0);
  EXPECT_EQ(m.hops(0, 1), 1);
  EXPECT_EQ(m.hops(0, 7), 3);
  EXPECT_EQ(m.hops(5, 6), 2);  // 101 ^ 110 = 011
}

TEST(CostModel, RingHopsAreCyclicDistance) {
  CostModel m({}, Topology::kRing, 8);
  EXPECT_EQ(m.hops(0, 1), 1);
  EXPECT_EQ(m.hops(0, 7), 1);  // wraps
  EXPECT_EQ(m.hops(0, 4), 4);
  EXPECT_EQ(m.hops(2, 6), 4);
}

TEST(CostModel, Mesh2DHopsAreManhattan) {
  // 8 procs -> 2x4 mesh (most-square factorization picks cols=2, giving a
  // 4x2 grid: rank = row*2 + col).
  CostModel m({}, Topology::kMesh2D, 8);
  EXPECT_EQ(m.hops(0, 1), 1);   // same row, adjacent col
  EXPECT_EQ(m.hops(0, 2), 1);   // adjacent row
  EXPECT_EQ(m.hops(0, 7), 4);   // (0,0) -> (3,1)
}

TEST(CostModel, CrossbarIsAlwaysOneHop) {
  CostModel m({}, Topology::kFullyConnected, 16);
  EXPECT_EQ(m.hops(3, 12), 1);
  EXPECT_EQ(m.hops(0, 15), 1);
}

TEST(CostModel, MessageTimeScalesWithBytes) {
  CostParams params;
  params.t_startup = 1e-4;
  params.t_comm = 1e-8;
  params.t_hop = 0.0;
  CostModel m(params, Topology::kFullyConnected, 4);
  const double t1 = m.message_time(0, 1, 1000);
  const double t2 = m.message_time(0, 1, 2000);
  EXPECT_DOUBLE_EQ(t2 - t1, 1000 * params.t_comm);
  EXPECT_DOUBLE_EQ(m.message_time(2, 2, 12345), 0.0);  // local copy is free
}

TEST(CostModel, BroadcastIsLogTree) {
  CostParams params;
  params.t_startup = 1.0;
  params.t_comm = 0.0;
  params.t_hop = 0.0;
  // ceil(log2(8)) = 3 start-ups.
  CostModel m8(params, Topology::kHypercube, 8);
  EXPECT_DOUBLE_EQ(m8.broadcast_time(64), 3.0);
  // ceil(log2(5)) = 3 as well.
  CostModel m5(params, Topology::kHypercube, 5);
  EXPECT_DOUBLE_EQ(m5.broadcast_time(64), 3.0);
  // One processor: no communication.
  CostModel m1(params, Topology::kHypercube, 1);
  EXPECT_DOUBLE_EQ(m1.broadcast_time(64), 0.0);
}

TEST(CostModel, AllreduceIsTwiceReduce) {
  CostModel m({}, Topology::kHypercube, 8);
  EXPECT_DOUBLE_EQ(m.allreduce_time(256), 2 * m.reduce_time(256));
}

TEST(CostModel, AllgatherHypercubeMatchesPaperFormula) {
  // The paper: all-to-all broadcast of n/N_P elements takes
  // t_startup * log N_P + t_comm * (total bytes moved per rank).
  CostParams params;
  params.t_startup = 1.0;
  params.t_comm = 1.0;
  params.t_hop = 0.0;
  CostModel m(params, Topology::kHypercube, 8);
  const std::size_t block = 16;  // bytes per rank
  // Recursive doubling: 3 start-ups + (16 + 32 + 64) bytes = 3 + 112.
  EXPECT_DOUBLE_EQ(m.allgather_time(block), 3.0 + 112.0);
  // Total payload equals (P-1)*block, matching the ring total volume.
  CostModel ring(params, Topology::kRing, 8);
  EXPECT_DOUBLE_EQ(ring.allgather_time(block), 7.0 * (1.0 + 16.0));
}

TEST(CostModel, TopologyNames) {
  EXPECT_EQ(hpfcg::msg::topology_name(Topology::kHypercube), "hypercube");
  EXPECT_EQ(hpfcg::msg::topology_name(Topology::kRing), "ring");
  EXPECT_EQ(hpfcg::msg::topology_name(Topology::kMesh2D), "mesh2d");
  EXPECT_EQ(hpfcg::msg::topology_name(Topology::kFullyConnected), "crossbar");
}

TEST(CostModel, RankValidation) {
  CostModel m({}, Topology::kRing, 4);
  EXPECT_THROW((void)m.hops(0, 4), hpfcg::util::Error);
  EXPECT_THROW((void)m.hops(-1, 0), hpfcg::util::Error);
}

}  // namespace
