// The fused reductions must be drop-in replacements for sequences of
// scalar merges: allreduce_batch over k values walks the same rank-order
// binomial tree as k scalar allreduce calls, so the results are required
// to be BIT-identical — not just close — for every machine size,
// including non-powers of two, and for k = 0, 1 and widths past the
// inline/stack fast paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/msg/process.hpp"
#include "spmd_test_util.hpp"

using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

/// Deterministic per-rank inputs with enough bit variety that a wrong
/// reduction order shows up in the low mantissa bits.
double value_for(int rank, std::size_t i) {
  return std::sin(static_cast<double>(rank + 1) * 0.7 +
                  static_cast<double>(i) * 1.3) *
         (1.0 + static_cast<double>(i % 5));
}

class BatchCollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchCollectivesTest, AllreduceBatchBitIdenticalToScalarSequence) {
  const int np = GetParam();
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{5}}) {
    run_spmd(np, [k](Process& p) {
      std::vector<double> batch(k), scalar(k);
      for (std::size_t i = 0; i < k; ++i) {
        batch[i] = scalar[i] = value_for(p.rank(), i);
      }
      p.allreduce_batch<double>(batch);
      for (std::size_t i = 0; i < k; ++i) {
        scalar[i] = p.allreduce(scalar[i]);
      }
      for (std::size_t i = 0; i < k; ++i) {
        // Same binomial tree => same association order => same bits.
        EXPECT_EQ(batch[i], scalar[i]) << "k=" << k << " i=" << i;
      }
    });
  }
}

TEST_P(BatchCollectivesTest, AllreduceBatchLargeWidthTakesHeapPaths) {
  // Width past the 64-byte inline envelope (8 doubles) AND past the
  // 16-element partner stack buffer: both heap paths must stay exact.
  const int np = GetParam();
  const std::size_t k = 37;
  run_spmd(np, [k](Process& p) {
    std::vector<double> batch(k), scalar(k);
    for (std::size_t i = 0; i < k; ++i) {
      batch[i] = scalar[i] = value_for(p.rank(), i);
    }
    p.allreduce_batch<double>(batch);
    for (std::size_t i = 0; i < k; ++i) scalar[i] = p.allreduce(scalar[i]);
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(batch[i], scalar[i]);
  });
}

TEST_P(BatchCollectivesTest, AllreduceBatchWidthZeroIsHarmless) {
  const int np = GetParam();
  run_spmd(np, [](Process& p) {
    std::vector<double> empty;
    p.allreduce_batch<double>(empty);
    // The machine stays usable and ordered afterwards.
    const double v = p.allreduce(1.0);
    EXPECT_DOUBLE_EQ(v, static_cast<double>(p.nprocs()));
  });
}

TEST_P(BatchCollectivesTest, AllreduceBatchCustomOp) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    std::vector<std::int64_t> v = {p.rank(), -p.rank(), 7};
    p.allreduce_batch<std::int64_t>(
        v, [](std::int64_t a, std::int64_t b) { return a > b ? a : b; });
    EXPECT_EQ(v[0], np - 1);
    EXPECT_EQ(v[1], 0);
    EXPECT_EQ(v[2], 7);
  });
}

TEST_P(BatchCollectivesTest, ReduceBatchBitIdenticalAtEveryRoot) {
  const int np = GetParam();
  const std::size_t k = 4;
  for (int root = 0; root < np; ++root) {
    run_spmd(np, [k, root](Process& p) {
      std::vector<double> batch(k), scalar(k);
      for (std::size_t i = 0; i < k; ++i) {
        batch[i] = scalar[i] = value_for(p.rank(), i);
      }
      p.reduce_batch<double>(root, batch);
      for (std::size_t i = 0; i < k; ++i) {
        scalar[i] = p.reduce(root, scalar[i]);
      }
      if (p.rank() == root) {
        for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(batch[i], scalar[i]);
      }
    });
  }
}

TEST_P(BatchCollectivesTest, BatchPaysOneTreeOfMessages) {
  // The point of fusing: a width-k batch moves exactly as many messages as
  // ONE scalar allreduce — the per-hop start-up is paid once, not k times.
  const int np = GetParam();
  const std::size_t k = 4;
  const auto count_messages = [&](bool fused) {
    auto rt = run_spmd(np, [&](Process& p) {
      std::vector<double> v(k, static_cast<double>(p.rank()));
      if (fused) {
        p.allreduce_batch<double>(v);
      } else {
        for (auto& x : v) x = p.allreduce(x);
      }
    });
    return rt->total_stats().messages_sent;
  };
  const auto one_scalar = [&] {
    auto rt = run_spmd(np, [](Process& p) { (void)p.allreduce(1.0); });
    return rt->total_stats().messages_sent;
  };
  EXPECT_EQ(count_messages(true), one_scalar());
  if (np > 1) {
    EXPECT_EQ(count_messages(false), k * one_scalar());
  }
}

TEST_P(BatchCollectivesTest, ReductionCountersTrackBatchWidth) {
  const int np = GetParam();
  auto rt = run_spmd(np, [](Process& p) {
    std::vector<double> v3(3, 1.0);
    p.allreduce_batch<double>(v3);   // 1 reduction, 3 values
    (void)p.allreduce(2.0);          // 1 reduction, 1 value
    std::vector<double> v2(2, 1.0);
    p.reduce_batch<double>(0, v2);   // 1 reduction, 2 values
  });
  for (int r = 0; r < np; ++r) {
    EXPECT_EQ(rt->stats(r).reductions, 3u);
    EXPECT_EQ(rt->stats(r).reduction_values, 6u);
  }
}

TEST_P(BatchCollectivesTest, WidthZeroIsCommunicationFree) {
  // Regression: a width-0 batch used to book a collective and walk the
  // coll_tag sequence.  It must now be a pure no-op: no messages, no
  // collective, no reduction booked — every Stats counter stays exactly
  // where it was.
  const int np = GetParam();
  auto rt = run_spmd(np, [](Process& p) {
    const hpfcg::msg::Stats before = p.stats();
    std::vector<double> empty;
    p.allreduce_batch<double>(empty);
    p.reduce_batch<double>(0, empty);
    const hpfcg::msg::Stats& after = p.stats();
    EXPECT_EQ(after.messages_sent, before.messages_sent);
    EXPECT_EQ(after.messages_received, before.messages_received);
    EXPECT_EQ(after.bytes_sent, before.bytes_sent);
    EXPECT_EQ(after.collectives, before.collectives);
    EXPECT_EQ(after.reductions, before.reductions);
    EXPECT_EQ(after.reduction_values, before.reduction_values);
    EXPECT_EQ(after.modeled_comm_seconds, before.modeled_comm_seconds);
  });
  EXPECT_EQ(rt->total_stats().reductions, 0u);
}

TEST_P(BatchCollectivesTest, WidthZeroAgreesUnderConformanceChecking) {
  // The empty form must not trip the HPFCG_CHECK ledger even when other
  // collectives surround it — all ranks skip it symmetrically, so the tag
  // sequence stays aligned machine-wide.
  if (!hpfcg::check::kCompiled) GTEST_SKIP() << "check compiled out";
  hpfcg::check::ScopedEnable guard(true);
  const int np = GetParam();
  run_spmd(np, [](Process& p) {
    (void)p.allreduce(1.0);
    std::vector<double> empty;
    p.allreduce_batch<double>(empty);
    std::vector<double> three(3, static_cast<double>(p.rank()));
    p.allreduce_batch<double>(three);
    p.reduce_batch<double>(0, empty);
    const double v = p.allreduce(2.0);
    EXPECT_DOUBLE_EQ(v, 2.0 * p.nprocs());
  });
}

TEST_P(BatchCollectivesTest, EmptyDotProductsIsANoOpEvenUnderCheck) {
  using hpfcg::hpf::Distribution;
  using hpfcg::hpf::DistributedVector;
  const int np = GetParam();
  hpfcg::check::ScopedEnable guard(hpfcg::check::kCompiled);
  auto rt = run_spmd(np, [](Process& p) {
    DistributedVector<double> x(
        p, std::make_shared<const Distribution>(
               Distribution::block(16, p.nprocs())));
    auto y = DistributedVector<double>::aligned_like(x);
    hpfcg::hpf::fill(x, 1.0);
    hpfcg::hpf::fill(y, 2.0);
    const hpfcg::msg::Stats before = p.stats();
    std::span<const hpfcg::hpf::DotPair<double>> no_pairs;
    std::span<double> no_out;
    hpfcg::hpf::dot_products<double>(no_pairs, no_out);
    EXPECT_EQ(p.stats().reductions, before.reductions);
    EXPECT_EQ(p.stats().messages_sent, before.messages_sent);
    EXPECT_EQ(p.stats().flops, before.flops);
    // The machine is still usable and ordered.
    EXPECT_NEAR(hpfcg::hpf::dot_product(x, y), 32.0, 1e-12);
  });
  EXPECT_EQ(rt->total_stats().reductions,
            static_cast<std::uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, BatchCollectivesTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
