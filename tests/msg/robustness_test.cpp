// Failure injection: the runtime must unwind cleanly — no deadlocks, no
// leaked messages, first error reported — whatever a processor is doing
// when another one fails.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/msg/process.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Runtime;
using hpfcg::util::Error;

namespace {

TEST(Robustness, FailureWhileOthersBlockOnBarrier) {
  Runtime rt(4);
  EXPECT_THROW(rt.run([](Process& p) {
                 if (p.rank() == 2) throw Error("rank 2 dies");
                 p.barrier();
               }),
               Error);
}

TEST(Robustness, FailureWhileOthersBlockOnBroadcast) {
  Runtime rt(4);
  EXPECT_THROW(rt.run([](Process& p) {
                 if (p.rank() == 0) throw Error("root dies");
                 std::vector<double> buf;
                 p.broadcast(0, buf);  // root never sends
               }),
               Error);
}

TEST(Robustness, FailureWhileOthersBlockOnAllreduce) {
  Runtime rt(8);
  EXPECT_THROW(rt.run([](Process& p) {
                 if (p.rank() == 5) throw Error("mid-tree death");
                 (void)p.allreduce(1.0);
               }),
               Error);
}

TEST(Robustness, FailureInsideSequentialChain) {
  Runtime rt(4);
  EXPECT_THROW(rt.run([](Process& p) {
                 p.sequential([&] {
                   if (p.rank() == 1) throw Error("dies holding the token");
                 });
               }),
               Error);
}

TEST(Robustness, FirstErrorWins) {
  Runtime rt(3);
  try {
    rt.run([](Process& p) {
      if (p.rank() == 0) throw Error("deliberate: rank 0");
      // Other ranks block; they must unwind with the abort error, and the
      // runtime must rethrow rank 0's original exception.
      (void)p.recv_value<int>(0, 1);
    });
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deliberate"), std::string::npos);
  }
}

TEST(Robustness, RuntimeUnusableAfterAbort) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Process& p) {
                 if (p.rank() == 0) throw Error("poison");
                 p.barrier();
               }),
               Error);
  // A poisoned machine refuses further runs instead of deadlocking.
  EXPECT_THROW(rt.run([](Process&) {}), Error);
}

TEST(Robustness, ApiMisuseInsideSpmdUnwinds) {
  // A REQUIRE failure on one rank (bad alignment) must not hang the rest.
  Runtime rt(4);
  EXPECT_THROW(rt.run([](Process& p) {
                 auto d1 = std::make_shared<const Distribution>(
                     Distribution::block(16, 4));
                 auto d2 = std::make_shared<const Distribution>(
                     Distribution::cyclic(16, 4));
                 DistributedVector<double> x(p, d1), y(p, d2);
                 if (p.rank() == 3) {
                   hpfcg::hpf::axpy(1.0, x, y);  // misaligned: throws
                 }
                 (void)hpfcg::hpf::dot_product(x, x);  // others block
               }),
               Error);
}

TEST(Robustness, ManyRanksStress) {
  // 32 simulated processors on one core: heavy oversubscription must still
  // complete and produce exact results.
  Runtime rt(32);
  rt.run([](Process& p) {
    const int np = p.nprocs();
    const auto sum = p.allreduce(static_cast<long>(p.rank()));
    EXPECT_EQ(sum, static_cast<long>(np) * (np - 1) / 2);
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(997, np));  // prime size: ragged last block
    DistributedVector<double> v(p, dist);
    v.set_from([](std::size_t g) { return static_cast<double>(g); });
    const double total = hpfcg::hpf::sum(v);
    EXPECT_NEAR(total, 997.0 * 996.0 / 2.0, 1e-6);
  });
}

TEST(Robustness, ZeroLengthVectorsWork) {
  // n < NP leaves some ranks empty; every collective and intrinsic must
  // cope with zero-length local shards.
  Runtime rt(8);
  rt.run([](Process& p) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(3, 8));
    DistributedVector<double> x(p, dist);
    auto y = DistributedVector<double>::aligned_like(x);
    x.set_from([](std::size_t g) { return static_cast<double>(g + 1); });
    hpfcg::hpf::fill(y, 2.0);
    EXPECT_DOUBLE_EQ(hpfcg::hpf::dot_product(x, y), 2.0 * (1 + 2 + 3));
    const auto full = x.to_global();
    ASSERT_EQ(full.size(), 3u);
    EXPECT_DOUBLE_EQ(full[2], 3.0);
  });
}

TEST(Robustness, EmptyMachineRejected) {
  EXPECT_THROW(Runtime rt(0), Error);
}

TEST(Robustness, LeftoverMessagesRejectedAtTeardown) {
  // Even without the checking layer, a leaked message fails the run and the
  // error names the mailbox's owner.  (ScopedEnable pins the base path so
  // the assertion holds regardless of the HPFCG_CHECK environment.)
  hpfcg::check::ScopedEnable off(false);
  Runtime rt(2);
  try {
    rt.run([](Process& p) {
      if (p.rank() == 0) p.send_value<int>(1, /*tag=*/3, 99);
    });
    FAIL() << "expected teardown to reject leftover messages";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
        << e.what();
  }
}

#ifdef HPFCG_CHECK_ENABLED
TEST(Robustness, UserErrorStillWinsWithCheckingOn) {
  // The verifier must not shadow the program's own first error with the
  // secondary aborts it observes while unwinding.
  hpfcg::check::ScopedEnable on;
  Runtime rt(3);
  try {
    rt.run([](Process& p) {
      if (p.rank() == 0) throw Error("deliberate: rank 0");
      (void)p.recv_value<int>(0, 1);
    });
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deliberate"), std::string::npos)
        << e.what();
  }
}
#endif

}  // namespace
