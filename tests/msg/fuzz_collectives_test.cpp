// Property fuzzing: random SPMD programs mixing every collective, checked
// against locally computed oracles.  All ranks draw from the same seeded
// RNG, so the random program is identical everywhere (SPMD discipline) and
// entirely deterministic across runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/rng.hpp"
#include "spmd_test_util.hpp"

using hpfcg::msg::Process;
using hpfcg::util::Xoshiro256;
using hpfcg_test::run_spmd;

namespace {

/// Deterministic per-rank payload element.
std::int64_t elem(int rank, std::size_t i) {
  return 31 * rank + static_cast<std::int64_t>(7 * i) - 11;
}

void random_program(Process& p, std::uint64_t seed, int ops) {
  Xoshiro256 rng(seed);  // same stream on every rank
  const int np = p.nprocs();
  for (int op = 0; op < ops; ++op) {
    switch (rng.below(7)) {
      case 0: {  // allreduce sum
        const auto v = p.allreduce(static_cast<std::int64_t>(p.rank() + op));
        std::int64_t expect = 0;
        for (int r = 0; r < np; ++r) expect += r + op;
        ASSERT_EQ(v, expect);
        break;
      }
      case 1: {  // broadcast vector from random root
        const int root = static_cast<int>(rng.below(np));
        const std::size_t len = rng.below(20);
        std::vector<std::int64_t> buf;
        if (p.rank() == root) {
          buf.resize(len);
          for (std::size_t i = 0; i < len; ++i) buf[i] = elem(root, i);
        }
        p.broadcast(root, buf);
        ASSERT_EQ(buf.size(), len);
        for (std::size_t i = 0; i < len; ++i) ASSERT_EQ(buf[i], elem(root, i));
        break;
      }
      case 2: {  // allgatherv with random ragged counts
        std::vector<std::size_t> counts(np);
        for (int r = 0; r < np; ++r) counts[r] = rng.below(6);
        std::vector<std::int64_t> local(counts[p.rank()]);
        for (std::size_t i = 0; i < local.size(); ++i) {
          local[i] = elem(p.rank(), i);
        }
        std::vector<std::int64_t> out;
        p.allgatherv<std::int64_t>(local, out, counts);
        std::size_t pos = 0;
        for (int r = 0; r < np; ++r) {
          for (std::size_t i = 0; i < counts[r]; ++i) {
            ASSERT_EQ(out[pos++], elem(r, i));
          }
        }
        break;
      }
      case 3: {  // alltoallv with random block sizes
        std::vector<std::vector<std::int64_t>> blocks(np);
        // Block from s to d has size (s + d + op) % 4, content f(s, d).
        for (int d = 0; d < np; ++d) {
          blocks[d].assign((p.rank() + d + op) % 4,
                           elem(p.rank(), static_cast<std::size_t>(d)));
        }
        const auto in = p.alltoallv<std::int64_t>(blocks);
        for (int s = 0; s < np; ++s) {
          ASSERT_EQ(in[s].size(),
                    static_cast<std::size_t>((s + p.rank() + op) % 4));
          for (const auto v : in[s]) {
            ASSERT_EQ(v, elem(s, static_cast<std::size_t>(p.rank())));
          }
        }
        break;
      }
      case 4: {  // exscan
        const auto prefix =
            p.exscan<std::int64_t>(static_cast<std::int64_t>(p.rank() * 2));
        std::int64_t expect = 0;
        for (int r = 0; r < p.rank(); ++r) expect += r * 2;
        ASSERT_EQ(prefix, expect);
        break;
      }
      case 5: {  // reduce max to random root
        const int root = static_cast<int>(rng.below(np));
        const auto v = p.reduce<std::int64_t>(
            root, elem(p.rank(), static_cast<std::size_t>(op)),
            [](std::int64_t a, std::int64_t b) { return a > b ? a : b; });
        if (p.rank() == root) {
          std::int64_t expect = elem(0, static_cast<std::size_t>(op));
          for (int r = 1; r < np; ++r) {
            expect = std::max(expect, elem(r, static_cast<std::size_t>(op)));
          }
          ASSERT_EQ(v, expect);
        }
        break;
      }
      default:
        p.barrier();
        break;
    }
  }
}

class FuzzCollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCollectivesTest, RandomProgramsAgreeWithOracles) {
  const int np = GetParam();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto rt = run_spmd(np, [&](Process& p) { random_program(p, seed, 25); });
    // The machine must end quiescent (checked by Runtime) with balanced
    // global message counts.
    EXPECT_EQ(rt->total_stats().messages_sent,
              rt->total_stats().messages_received);
    EXPECT_EQ(rt->total_stats().bytes_sent,
              rt->total_stats().bytes_received);
  }
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, FuzzCollectivesTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
