// PhaseProfile: Stats deltas must land in the right named phases.

#include <gtest/gtest.h>

#include <vector>

#include "hpfcg/msg/phase_profile.hpp"
#include "spmd_test_util.hpp"

using hpfcg::msg::PhaseProfile;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

TEST(PhaseProfile, AttributesDeltasToPhases) {
  run_spmd(2, [](Process& p) {
    PhaseProfile prof(p);

    prof.enter("compute");
    p.add_flops(1000);
    prof.enter("exchange");
    if (p.rank() == 0) {
      p.send_value<double>(1, 1, 2.5);
    } else {
      (void)p.recv_value<double>(0, 1);
    }
    prof.enter("more-compute");
    p.add_flops(500);
    prof.exit();

    EXPECT_EQ(prof.of("compute").flops, 1000u);
    EXPECT_EQ(prof.of("compute").messages_sent, 0u);
    EXPECT_EQ(prof.of("more-compute").flops, 500u);
    if (p.rank() == 0) {
      EXPECT_EQ(prof.of("exchange").messages_sent, 1u);
      EXPECT_EQ(prof.of("exchange").bytes_sent, 8u);
    } else {
      EXPECT_EQ(prof.of("exchange").messages_received, 1u);
    }
    EXPECT_EQ(prof.of("exchange").flops, 0u);
    EXPECT_EQ(prof.of("never-entered").flops, 0u);
  });
}

TEST(PhaseProfile, ReenteringAccumulates) {
  run_spmd(1, [](Process& p) {
    PhaseProfile prof(p);
    for (int i = 0; i < 3; ++i) {
      prof.enter("work");
      p.add_flops(10);
      prof.enter("idle");
    }
    prof.exit();
    EXPECT_EQ(prof.of("work").flops, 30u);
    EXPECT_EQ(prof.of("idle").flops, 0u);
    EXPECT_EQ(prof.phases().size(), 2u);
  });
}

TEST(PhaseProfile, UnattributedTimeIsDropped) {
  run_spmd(1, [](Process& p) {
    PhaseProfile prof(p);
    p.add_flops(99);  // before any phase: not attributed
    prof.enter("phase");
    p.add_flops(1);
    prof.exit();
    EXPECT_EQ(prof.of("phase").flops, 1u);
  });
}

}  // namespace
