// Point-to-point messaging semantics: matching, ordering, any-source,
// typed transfers, and instrumentation counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "spmd_test_util.hpp"

using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

TEST(PointToPoint, ScalarRoundTrip) {
  run_spmd(2, [](Process& p) {
    if (p.rank() == 0) {
      p.send_value<double>(1, 7, 3.25);
      const double back = p.recv_value<double>(1, 8);
      EXPECT_DOUBLE_EQ(back, 6.5);
    } else {
      const double v = p.recv_value<double>(0, 7);
      p.send_value<double>(0, 8, v * 2);
    }
  });
}

TEST(PointToPoint, VectorTransferPreservesContents) {
  run_spmd(2, [](Process& p) {
    if (p.rank() == 0) {
      std::vector<std::int32_t> data(1000);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::int32_t>(i * i % 9973);
      }
      p.send<std::int32_t>(1, 1, data);
    } else {
      const auto got = p.recv<std::int32_t>(0, 1);
      ASSERT_EQ(got.size(), 1000u);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], static_cast<std::int32_t>(i * i % 9973));
      }
    }
  });
}

TEST(PointToPoint, FifoPerSourceAndTag) {
  run_spmd(2, [](Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < 50; ++i) p.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(p.recv_value<int>(0, 3), i);
      }
    }
  });
}

TEST(PointToPoint, TagsSelectMessagesOutOfOrder) {
  run_spmd(2, [](Process& p) {
    if (p.rank() == 0) {
      p.send_value<int>(1, 10, 100);
      p.send_value<int>(1, 20, 200);
    } else {
      // Receive the later tag first.
      EXPECT_EQ(p.recv_value<int>(0, 20), 200);
      EXPECT_EQ(p.recv_value<int>(0, 10), 100);
    }
  });
}

TEST(PointToPoint, AnySourceReportsSender) {
  run_spmd(4, [](Process& p) {
    if (p.rank() == 0) {
      bool seen[4] = {true, false, false, false};
      for (int k = 0; k < 3; ++k) {
        int src = -1;
        const auto v = p.recv_any<int>(5, src);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_EQ(v[0], src * 11);
        seen[src] = true;
      }
      EXPECT_TRUE(seen[1] && seen[2] && seen[3]);
    } else {
      p.send_value<int>(0, 5, p.rank() * 11);
    }
  });
}

TEST(PointToPoint, SelfSendIsAllowed) {
  run_spmd(1, [](Process& p) {
    p.send_value<int>(0, 9, 42);
    EXPECT_EQ(p.recv_value<int>(0, 9), 42);
  });
}

TEST(PointToPoint, StatsCountMessagesAndBytes) {
  auto rt = run_spmd(2, [](Process& p) {
    if (p.rank() == 0) {
      std::vector<double> data(100, 1.0);
      p.send<double>(1, 1, data);
    } else {
      (void)p.recv<double>(0, 1);
    }
  });
  EXPECT_EQ(rt->stats(0).messages_sent, 1u);
  EXPECT_EQ(rt->stats(0).bytes_sent, 800u);
  EXPECT_EQ(rt->stats(1).messages_received, 1u);
  EXPECT_EQ(rt->stats(1).bytes_received, 800u);
  // Sender pays start-up, receiver pays transfer.
  EXPECT_GT(rt->stats(0).modeled_comm_seconds, 0.0);
  EXPECT_GT(rt->stats(1).modeled_comm_seconds, 0.0);
}

TEST(PointToPoint, FlopsAccounting) {
  auto rt = run_spmd(2, [](Process& p) { p.add_flops(12345); });
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(rt->stats(r).flops, 12345u);
    EXPECT_DOUBLE_EQ(rt->stats(r).modeled_compute_seconds,
                     12345 * rt->cost().params().t_flop);
  }
}

TEST(Runtime, ExceptionInOneRankPropagatesAndUnblocksOthers) {
  hpfcg::msg::Runtime rt(3);
  EXPECT_THROW(
      rt.run([](Process& p) {
        if (p.rank() == 0) {
          throw hpfcg::util::Error("deliberate failure");
        }
        // Other ranks block forever on a message that never arrives; the
        // abort must wake them.
        (void)p.recv_value<int>(0, 99);
      }),
      hpfcg::util::Error);
}

TEST(Runtime, LeftoverMessagesAreAnError) {
  hpfcg::msg::Runtime rt(2);
  EXPECT_THROW(rt.run([](Process& p) {
                 if (p.rank() == 0) p.send_value<int>(1, 1, 5);
                 // rank 1 never receives.
               }),
               hpfcg::util::Error);
}

TEST(Runtime, ModeledMakespanIsMaxOverRanks) {
  auto rt = run_spmd(2, [](Process& p) {
    if (p.rank() == 1) p.add_flops(1000);
  });
  EXPECT_DOUBLE_EQ(rt->modeled_makespan(),
                   1000 * rt->cost().params().t_flop);
}

TEST(Runtime, ResetStatsClearsCounters) {
  hpfcg::msg::Runtime rt(2);
  rt.run([](Process& p) { p.add_flops(10); });
  rt.reset_stats();
  EXPECT_EQ(rt.total_stats().flops, 0u);
  EXPECT_DOUBLE_EQ(rt.total_stats().modeled_seconds(), 0.0);
}

}  // namespace
