// Collective operations must agree with their serial definitions for every
// machine size, including non-powers of two, and for empty payloads.

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "spmd_test_util.hpp"

using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, BroadcastFromEveryRoot) {
  const int np = GetParam();
  for (int root = 0; root < np; ++root) {
    run_spmd(np, [root](Process& p) {
      std::vector<std::int64_t> buf;
      if (p.rank() == root) {
        buf = {1, 2, 3, 100 + root};
      }
      p.broadcast(root, buf);
      ASSERT_EQ(buf.size(), 4u);
      EXPECT_EQ(buf[3], 100 + root);
      EXPECT_EQ(buf[0], 1);
    });
  }
}

TEST_P(CollectivesTest, BroadcastEmptyPayload) {
  const int np = GetParam();
  run_spmd(np, [](Process& p) {
    std::vector<double> buf;
    if (p.rank() == 0) buf.clear();
    p.broadcast(0, buf);
    EXPECT_TRUE(buf.empty());
  });
}

TEST_P(CollectivesTest, BroadcastValue) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    const double v = p.broadcast_value(np - 1, p.rank() == np - 1 ? 2.5 : 0.0);
    EXPECT_DOUBLE_EQ(v, 2.5);
  });
}

TEST_P(CollectivesTest, ReduceSumToEveryRoot) {
  const int np = GetParam();
  const std::int64_t expected =
      static_cast<std::int64_t>(np) * (np - 1) / 2;  // sum of ranks
  for (int root = 0; root < np; ++root) {
    run_spmd(np, [root, expected](Process& p) {
      const std::int64_t v =
          p.reduce<std::int64_t>(root, static_cast<std::int64_t>(p.rank()));
      if (p.rank() == root) {
        EXPECT_EQ(v, expected);
      }
    });
  }
}

TEST_P(CollectivesTest, ReduceMax) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    const int v = p.reduce<int>(0, p.rank(),
                                [](int a, int b) { return a > b ? a : b; });
    if (p.rank() == 0) {
      EXPECT_EQ(v, np - 1);
    }
  });
}

TEST_P(CollectivesTest, AllreduceSum) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    const double v = p.allreduce(static_cast<double>(p.rank() + 1));
    EXPECT_DOUBLE_EQ(v, np * (np + 1) / 2.0);
  });
}

TEST_P(CollectivesTest, AllreduceVecElementwise) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    std::vector<std::int64_t> v = {p.rank(), 2 * p.rank(), 7};
    p.allreduce_vec(v);
    const std::int64_t ranks = static_cast<std::int64_t>(np) * (np - 1) / 2;
    EXPECT_EQ(v[0], ranks);
    EXPECT_EQ(v[1], 2 * ranks);
    EXPECT_EQ(v[2], 7 * np);
  });
}

TEST_P(CollectivesTest, AllgathervVariableBlocks) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    // Rank r contributes r+1 elements, each 10*r + index.
    std::vector<std::size_t> counts(np);
    for (int r = 0; r < np; ++r) counts[r] = static_cast<std::size_t>(r) + 1;
    std::vector<int> local(counts[p.rank()]);
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = 10 * p.rank() + static_cast<int>(i);
    }
    std::vector<int> out;
    p.allgatherv<int>(local, out, counts);
    std::size_t pos = 0;
    for (int r = 0; r < np; ++r) {
      for (std::size_t i = 0; i < counts[r]; ++i) {
        EXPECT_EQ(out[pos++], 10 * r + static_cast<int>(i));
      }
    }
    EXPECT_EQ(pos, out.size());
  });
}

TEST_P(CollectivesTest, AllgathervWithEmptyBlocks) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    // Only even ranks contribute.
    std::vector<std::size_t> counts(np);
    for (int r = 0; r < np; ++r) counts[r] = (r % 2 == 0) ? 2 : 0;
    std::vector<int> local(counts[p.rank()], p.rank());
    std::vector<int> out;
    p.allgatherv<int>(local, out, counts);
    std::size_t expected_size = 0;
    for (const auto c : counts) expected_size += c;
    ASSERT_EQ(out.size(), expected_size);
  });
}

TEST_P(CollectivesTest, GathervAndScatterv) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    std::vector<std::size_t> counts(np, 3);
    std::vector<double> local(3);
    for (int i = 0; i < 3; ++i) local[i] = p.rank() * 100 + i;
    std::vector<double> all;
    p.gatherv<double>(0, local, all, counts);
    if (p.rank() == 0) {
      ASSERT_EQ(all.size(), 3u * np);
      for (int r = 0; r < np; ++r) {
        for (int i = 0; i < 3; ++i) {
          EXPECT_DOUBLE_EQ(all[3 * r + i], r * 100 + i);
        }
      }
    }
    // Round-trip through scatterv.
    const auto back = p.scatterv<double>(
        0, std::span<const double>(all.data(), all.size()), counts);
    ASSERT_EQ(back.size(), 3u);
    for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(back[i], p.rank() * 100 + i);
  });
}

TEST_P(CollectivesTest, AlltoallvPersonalized) {
  const int np = GetParam();
  run_spmd(np, [np](Process& p) {
    // Rank r sends to rank d a block of d+1 ints valued r*np+d.
    std::vector<std::vector<int>> out(np);
    for (int d = 0; d < np; ++d) {
      out[d].assign(static_cast<std::size_t>(d) + 1, p.rank() * np + d);
    }
    const auto in = p.alltoallv<int>(out);
    ASSERT_EQ(static_cast<int>(in.size()), np);
    for (int s = 0; s < np; ++s) {
      ASSERT_EQ(in[s].size(), static_cast<std::size_t>(p.rank()) + 1);
      for (const int v : in[s]) EXPECT_EQ(v, s * np + p.rank());
    }
  });
}

TEST_P(CollectivesTest, ExclusiveScan) {
  const int np = GetParam();
  run_spmd(np, [](Process& p) {
    const int prefix = p.exscan<int>(p.rank() + 1);
    // exscan of (1, 2, ..., np): rank r gets sum of 1..r.
    EXPECT_EQ(prefix, p.rank() * (p.rank() + 1) / 2);
  });
}

TEST_P(CollectivesTest, SequentialRunsInRankOrder) {
  const int np = GetParam();
  std::vector<int> order;
  std::mutex mu;
  run_spmd(np, [&](Process& p) {
    p.sequential([&] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(p.rank());
    });
  });
  ASSERT_EQ(static_cast<int>(order.size()), np);
  for (int r = 0; r < np; ++r) EXPECT_EQ(order[r], r);
}

TEST_P(CollectivesTest, SequentialModelsSerializationAsWait) {
  const int np = GetParam();
  auto rt = run_spmd(np, [](Process& p) {
    p.sequential([&] { p.add_flops(1000000); });
  });
  // The last rank's modeled clock must include every predecessor's compute.
  const double t_flop = rt->cost().params().t_flop;
  const double expect_min = np * 1000000 * t_flop;
  EXPECT_GE(rt->stats(np - 1).modeled_seconds(), expect_min * 0.999);
}

TEST_P(CollectivesTest, BarrierCountsInStats) {
  const int np = GetParam();
  auto rt = run_spmd(np, [](Process& p) {
    p.barrier();
    p.barrier();
  });
  for (int r = 0; r < np; ++r) EXPECT_EQ(rt->stats(r).barriers, 2u);
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, CollectivesTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
