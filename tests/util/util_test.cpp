// Utility layer: RNG determinism, span kernels, table formatting, string
// helpers, CLI parsing, error machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/error.hpp"
#include "hpfcg/util/rng.hpp"
#include "hpfcg/util/span_math.hpp"
#include "hpfcg/util/str.hpp"
#include "hpfcg/util/table.hpp"
#include "hpfcg/util/timer.hpp"

namespace u = hpfcg::util;

namespace {

TEST(Rng, DeterministicSequences) {
  u::Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  u::Xoshiro256 a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  u::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    const double w = rng.uniform(-3.0, 5.0);
    EXPECT_GE(w, -3.0);
    EXPECT_LT(w, 5.0);
  }
}

TEST(Rng, BelowIsExactAndBounded) {
  u::Xoshiro256 rng(11);
  std::vector<int> hist(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    ++hist[v];
  }
  for (const int h : hist) {
    EXPECT_GT(h, 700);  // roughly uniform
    EXPECT_LT(h, 1300);
  }
}

TEST(SpanMath, AxpyAypxDotNormCopyFill) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  EXPECT_EQ(u::axpy<double>(2.0, x, y), 6u);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
  EXPECT_EQ(u::aypx<double>(0.5, x, y), 6u);  // y = 0.5*y + x
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(u::dot_local<double>(x, x), 14.0);
  EXPECT_DOUBLE_EQ(u::norm2_sq_local<double>(x), 14.0);
  u::fill<double>(y, 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  u::copy<double>(x, y);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_EQ(u::scale<double>(3.0, y), 3u);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  std::vector<double> z = {-5.0, 2.0};
  EXPECT_DOUBLE_EQ(u::max_abs_local<double>(z), 5.0);
  std::vector<double> wrong = {1.0};
  EXPECT_THROW(u::axpy<double>(1.0, x, wrong), u::Error);
}

TEST(Table, AlignedOutput) {
  u::Table t("demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), u::Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(u::fmt(3.14159, 3), "3.14");
  EXPECT_EQ(u::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(u::fmt_count(5), "5");
  EXPECT_EQ(u::fmt_count(0), "0");
}

TEST(Str, Helpers) {
  EXPECT_EQ(u::split_ws("  a  bb\tccc \n"),
            (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_TRUE(u::starts_with("hello", "he"));
  EXPECT_FALSE(u::starts_with("hello", "lo"));
  EXPECT_EQ(u::to_lower("AbC"), "abc");
  EXPECT_EQ(u::trim("  x y  "), "x y");
  EXPECT_EQ(u::trim(""), "");
}

TEST(Cli, ParsesFormsAndDefaults) {
  const char* argv[] = {"prog", "--n", "100", "--tol=1e-8", "--verbose"};
  u::Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 1, "size"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 1e-4, "tolerance"), 1e-8);
  EXPECT_TRUE(cli.get_flag("verbose", "chatty"));
  EXPECT_EQ(cli.get("missing", "fallback", "unused"), "fallback");
  EXPECT_FALSE(cli.help_requested());
  cli.finish();
  EXPECT_NE(cli.help_text("prog").find("--n"), std::string::npos);
}

TEST(Cli, RejectsUnknownAndMalformedOptions) {
  {
    const char* argv[] = {"prog", "--known", "1", "--unknown", "2"};
    u::Cli cli(5, argv);
    (void)cli.get_int("known", 0, "");
    EXPECT_THROW(cli.finish(), u::Error);
  }
  {
    const char* argv[] = {"prog", "bare"};
    EXPECT_THROW(u::Cli(2, argv), u::Error);
  }
  {
    const char* argv[] = {"prog", "--n", "abc"};
    u::Cli cli(3, argv);
    EXPECT_THROW((void)cli.get_int("n", 0, ""), u::Error);
  }
}

TEST(Cli, HelpFlag) {
  const char* argv[] = {"prog", "--help"};
  u::Cli cli(2, argv);
  EXPECT_TRUE(cli.help_requested());
}

TEST(Error, RequireThrowsWithContext) {
  try {
    HPFCG_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const u::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  u::Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GT(t.micros(), t.seconds());  // unit sanity
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
