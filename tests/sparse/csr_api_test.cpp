// Remaining CSR/CSC API edges: element lookup, diagonals, symmetry
// tolerance, raw-array constructors, and degenerate shapes.

#include <gtest/gtest.h>

#include <vector>

#include "hpfcg/sparse/convert.hpp"
#include "hpfcg/sparse/csc.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/sparse/generators.hpp"

namespace sp = hpfcg::sparse;

namespace {

TEST(CsrApi, AtReturnsZeroForAbsentEntries) {
  const auto a = sp::figure1_matrix();
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(a.at(5, 5), 66.0);
}

TEST(CsrApi, DiagonalExtractsZerosWhereAbsent) {
  sp::Coo<double> coo(3, 3);
  coo.add(0, 0, 5.0);
  coo.add(1, 2, 1.0);  // no (1,1)
  coo.add(2, 2, 7.0);
  const auto a = sp::Csr<double>::from_coo(std::move(coo));
  const auto d = a.diagonal();
  EXPECT_EQ(d, (std::vector<double>{5.0, 0.0, 7.0}));
}

TEST(CsrApi, SymmetryToleranceDistinguishesNearSymmetric) {
  sp::Coo<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(0, 1, 0.5);
  coo.add(1, 0, 0.5 + 1e-9);
  const auto a = sp::Csr<double>::from_coo(std::move(coo));
  EXPECT_FALSE(a.is_symmetric(0.0));
  EXPECT_TRUE(a.is_symmetric(1e-8));
}

TEST(CsrApi, AsymmetricPatternDetected) {
  sp::Coo<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(0, 1, 0.5);  // no mirror at all
  const auto a = sp::Csr<double>::from_coo(std::move(coo));
  EXPECT_FALSE(a.is_symmetric(1.0e-1));
}

TEST(CsrApi, RawArrayConstructorAcceptsValidInput) {
  // 2x3 matrix [[1,0,2],[0,3,0]] in raw CSR arrays.
  const sp::Csr<double> a(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(a.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 3.0);
  EXPECT_EQ(a.nnz(), 3u);
  // Rectangular matvec shapes.
  std::vector<double> p = {1.0, 1.0, 1.0};
  std::vector<double> q(2);
  a.matvec(p, q);
  EXPECT_DOUBLE_EQ(q[0], 3.0);
  EXPECT_DOUBLE_EQ(q[1], 3.0);
  std::vector<double> r = {1.0, 1.0};
  std::vector<double> s(3);
  a.matvec_transpose(r, s);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
  EXPECT_DOUBLE_EQ(s[2], 2.0);
}

TEST(CsrApi, EmptyMatrixIsRepresentable) {
  const sp::Csr<double> a(3, 3, {0, 0, 0, 0}, {}, {});
  EXPECT_EQ(a.nnz(), 0u);
  std::vector<double> p(3, 1.0), q(3, 9.0);
  a.matvec(p, q);
  for (const double v : q) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(CscApi, ColumnAccessorsAndAt) {
  const auto csc = sp::csr_to_csc(sp::figure1_matrix());
  EXPECT_EQ(csc.col_nnz(0), 4u);
  EXPECT_EQ(csc.col_nnz(2), 1u);
  EXPECT_DOUBLE_EQ(csc.at(2, 2), 33.0);
  EXPECT_DOUBLE_EQ(csc.at(0, 3), 0.0);
  EXPECT_THROW((void)csc.col_nnz(6), hpfcg::util::Error);
}

TEST(CscApi, DenseRoundTripThroughBothFormats) {
  const auto a = sp::random_spd(20, 4, 3);
  const auto csc = sp::csr_to_csc(a);
  EXPECT_EQ(a.to_dense(), csc.to_dense());
}

TEST(CsrApi, FromDenseDropsExplicitZerosOnly) {
  const std::vector<double> dense = {0.0, 1e-300, 0.0, -0.0};
  const auto a = sp::Csr<double>::from_dense(2, 2, dense);
  // 1e-300 is tiny but nonzero and must be kept; ±0.0 dropped.
  EXPECT_EQ(a.nnz(), 1u);
  EXPECT_EQ(a.at(0, 1), 1e-300);
}

}  // namespace
