// Sparse storage formats (Section 3): the exact Figure 1 example, CSR/CSC
// construction, round-trips, transposition, and serial matvec kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hpfcg/sparse/convert.hpp"
#include "hpfcg/sparse/csc.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/sparse/generators.hpp"

using hpfcg::sparse::Coo;
using hpfcg::sparse::Csc;
using hpfcg::sparse::Csr;

namespace {

TEST(Figure1, CscTrioMatchesThePaperExactly) {
  // Figure 1 of the paper: the 6×6 matrix stored as CSC must produce
  //   a   = a11 a21 a31 a51 | a12 a22 a42 a62 | a33 | a24 a44 | a15 a55
  //         | a26 a66
  //   row = 1 2 3 5 | 1 2 4 6 | 3 | 2 4 | 1 5 | 2 6     (1-based)
  //   col = 1 5 9 10 12 14 16                            (1-based)
  const auto csr = hpfcg::sparse::figure1_matrix();
  const auto csc = hpfcg::sparse::csr_to_csc(csr);
  ASSERT_EQ(csc.n_rows(), 6u);
  ASSERT_EQ(csc.n_cols(), 6u);
  ASSERT_EQ(csc.nnz(), 15u);

  const std::vector<double> expect_a = {11, 21, 31, 51, 12, 22, 42, 62,
                                        33, 24, 44, 15, 55, 26, 66};
  const std::vector<std::size_t> expect_row_1based = {1, 2, 3, 5, 1, 2, 4, 6,
                                                      3, 2, 4, 1, 5, 2, 6};
  const std::vector<std::size_t> expect_col_1based = {1, 5, 9, 10, 12, 14, 16};

  ASSERT_EQ(csc.values().size(), expect_a.size());
  for (std::size_t k = 0; k < expect_a.size(); ++k) {
    EXPECT_DOUBLE_EQ(csc.values()[k], expect_a[k]) << "a[" << k << "]";
    EXPECT_EQ(csc.row_idx()[k] + 1, expect_row_1based[k]) << "row[" << k << "]";
  }
  ASSERT_EQ(csc.col_ptr().size(), expect_col_1based.size());
  for (std::size_t j = 0; j < expect_col_1based.size(); ++j) {
    EXPECT_EQ(csc.col_ptr()[j] + 1, expect_col_1based[j]) << "col[" << j << "]";
  }
}

TEST(Figure1, DensePatternMatchesThePaper) {
  const auto dense = hpfcg::sparse::figure1_matrix().to_dense();
  // Row 1: a11 a12 0 0 a15 0, etc.
  const double z = 0.0;
  const std::vector<double> expect = {
      11, 12, z,  z,  15, z,   //
      21, 22, z,  24, z,  26,  //
      31, z,  33, z,  z,  z,   //
      z,  42, z,  44, z,  z,   //
      51, z,  z,  z,  55, z,   //
      z,  62, z,  z,  z,  66,
  };
  ASSERT_EQ(dense.size(), expect.size());
  for (std::size_t k = 0; k < expect.size(); ++k) {
    EXPECT_DOUBLE_EQ(dense[k], expect[k]) << "entry " << k;
  }
}

TEST(Coo, DuplicatesAreSummedByCompress) {
  Coo<double> coo(3, 3);
  coo.add(1, 2, 1.5);
  coo.add(1, 2, 2.5);
  coo.add(0, 0, 1.0);
  const auto csr = Csr<double>::from_coo(std::move(coo));
  EXPECT_EQ(csr.nnz(), 2u);
  EXPECT_DOUBLE_EQ(csr.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(csr.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(csr.at(2, 2), 0.0);
}

TEST(Coo, SymmetricAssembly) {
  Coo<double> coo(3, 3);
  coo.add_sym(0, 1, -2.0);
  coo.add_sym(2, 2, 5.0);  // diagonal is not duplicated
  const auto csr = Csr<double>::from_coo(std::move(coo));
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_DOUBLE_EQ(csr.at(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(csr.at(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(csr.at(2, 2), 5.0);
}

TEST(Coo, OutOfRangeRejected) {
  Coo<double> coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), hpfcg::util::Error);
  EXPECT_THROW(coo.add(0, 2, 1.0), hpfcg::util::Error);
}

TEST(Csr, RowAccessorsAndValidation) {
  const auto a = hpfcg::sparse::figure1_matrix();
  EXPECT_EQ(a.row_nnz(0), 3u);
  EXPECT_EQ(a.row_nnz(1), 4u);
  const auto cols = a.row_cols(1);
  EXPECT_EQ(cols[0], 0u);
  EXPECT_EQ(cols[3], 5u);
  EXPECT_THROW((void)a.row_nnz(6), hpfcg::util::Error);
  // Malformed construction is rejected.
  EXPECT_THROW(Csr<double>(2, 2, {0, 1}, {0}, {1.0}), hpfcg::util::Error);
  EXPECT_THROW(Csr<double>(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               hpfcg::util::Error);
  EXPECT_THROW(Csr<double>(2, 2, {0, 1, 2}, {0, 5}, {1.0, 2.0}),
               hpfcg::util::Error);
}

TEST(Csr, MatvecMatchesDense) {
  const auto a = hpfcg::sparse::laplacian_2d(5, 4);
  const std::size_t n = a.n_rows();
  const auto dense = a.to_dense();
  std::vector<double> p(n), q(n), q_ref(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) p[i] = 0.3 * static_cast<double>(i) - 1;
  a.matvec(p, q);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) q_ref[i] += dense[i * n + j] * p[j];
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(q[i], q_ref[i], 1e-12);
}

TEST(Csr, TransposeMatvecMatchesTransposedMatrix) {
  const auto a = hpfcg::sparse::figure1_matrix();
  const auto at = hpfcg::sparse::transpose(a);
  std::vector<double> p = {1, -2, 3, -4, 5, -6};
  std::vector<double> q1(6), q2(6);
  a.matvec_transpose(p, q1);
  at.matvec(p, q2);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(q1[i], q2[i]);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const auto a = hpfcg::sparse::random_spd(40, 5, 42);
  const auto att = hpfcg::sparse::transpose(hpfcg::sparse::transpose(a));
  ASSERT_EQ(att.nnz(), a.nnz());
  EXPECT_EQ(att.row_ptr(), a.row_ptr());
  EXPECT_EQ(att.col_idx(), a.col_idx());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_DOUBLE_EQ(att.values()[k], a.values()[k]);
  }
}

TEST(Csc, MatvecMatchesCsr) {
  const auto csr = hpfcg::sparse::laplacian_2d(6, 6);
  const auto csc = hpfcg::sparse::csr_to_csc(csr);
  const std::size_t n = csr.n_rows();
  std::vector<double> p(n), q1(n), q2(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = std::sin(static_cast<double>(i));
  csr.matvec(p, q1);
  csc.matvec(p, q2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(q1[i], q2[i], 1e-12);
}

TEST(Convert, CsrCscRoundTripPreservesMatrix) {
  const auto a = hpfcg::sparse::random_spd(30, 4, 7);
  const auto back = hpfcg::sparse::csc_to_csr(hpfcg::sparse::csr_to_csc(a));
  ASSERT_EQ(back.nnz(), a.nnz());
  EXPECT_EQ(back.row_ptr(), a.row_ptr());
  EXPECT_EQ(back.col_idx(), a.col_idx());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_DOUBLE_EQ(back.values()[k], a.values()[k]);
  }
}

TEST(Convert, CscOfTransposeSharesArraysWithCsr) {
  // The duality the paper leans on: CSR arrays of A == CSC arrays of A^T.
  const auto a = hpfcg::sparse::figure1_matrix();
  const auto at_csc = hpfcg::sparse::csr_to_csc(hpfcg::sparse::transpose(a));
  EXPECT_EQ(at_csc.col_ptr(), a.row_ptr());
  EXPECT_EQ(at_csc.row_idx(), a.col_idx());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_DOUBLE_EQ(at_csc.values()[k], a.values()[k]);
  }
}

TEST(Csc, ValidationRejectsMalformedArrays) {
  EXPECT_THROW(Csc<double>(2, 2, {0, 1}, {0}, {1.0}), hpfcg::util::Error);
  EXPECT_THROW(Csc<double>(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               hpfcg::util::Error);
  EXPECT_THROW(Csc<double>(2, 2, {0, 1, 2}, {0, 3}, {1.0, 2.0}),
               hpfcg::util::Error);
}

TEST(Csr, EmptyRowsAreRepresentable) {
  Coo<double> coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(3, 3, 2.0);
  const auto csr = Csr<double>::from_coo(std::move(coo));
  EXPECT_EQ(csr.row_nnz(1), 0u);
  EXPECT_EQ(csr.row_nnz(2), 0u);
  std::vector<double> p(4, 1.0), q(4);
  csr.matvec(p, q);
  EXPECT_DOUBLE_EQ(q[1], 0.0);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
}

}  // namespace
