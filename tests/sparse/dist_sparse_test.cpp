// Distributed sparse matrices: every matvec variant must match the serial
// kernels for all machine sizes, distributions, and alignment choices; the
// inspector/executor must fetch exactly the misaligned entries and nothing
// when atom-aligned.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "hpfcg/sparse/convert.hpp"
#include "hpfcg/sparse/dist_csc.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/nnz_exchange.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::sparse::DistCsc;
using hpfcg::sparse::DistCsr;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

double pval(std::size_t g) { return 0.25 * static_cast<double>(g % 9) - 1.0; }

class DistSparseTest : public ::testing::TestWithParam<int> {};

TEST_P(DistSparseTest, CsrRowAlignedMatchesSerial) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::laplacian_2d(9, 7);
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  a.matvec(p_full, q_ref);

  run_spmd(np, [&](Process& proc) {
    auto row_dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
    EXPECT_EQ(mat.remote_nnz(), 0u);  // atom alignment: nothing to fetch
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.set_from(pval);
    mat.matvec(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

TEST_P(DistSparseTest, CsrFlatNnzBlockMatchesSerialButFetches) {
  // HPF-1 semantics: nnz arrays distributed BLOCK over the nnz index space
  // regardless of row boundaries — correct, but rows straddling a cut must
  // fetch missing elements (the paper's "additional communication").
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(80, 6, 3);
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  a.matvec(p_full, q_ref);

  std::atomic<std::size_t> remote{0};
  run_spmd(np, [&](Process& proc) {
    auto row_dist = share(Distribution::block(n, proc.nprocs()));
    auto nnz_dist = share(Distribution::block(a.nnz(), proc.nprocs()));
    DistCsr<double> mat(proc, a, row_dist, nnz_dist);
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.set_from(pval);
    mat.matvec(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
    remote += mat.remote_nnz();
  });
  if (np > 1) {
    EXPECT_GT(remote, 0u) << "flat BLOCK should split rows and need fetches";
  } else {
    EXPECT_EQ(remote, 0u);
  }
}

TEST_P(DistSparseTest, CsrCachingFetchesOnlyOnce) {
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "no remote entries on one processor";
  const auto a = hpfcg::sparse::random_spd(60, 5, 11);
  const std::size_t n = a.n_rows();

  const auto run_sweeps = [&](bool cached) {
    auto rt = run_spmd(np, [&](Process& proc) {
      auto row_dist = share(Distribution::block(n, proc.nprocs()));
      auto nnz_dist = share(Distribution::block(a.nnz(), proc.nprocs()));
      DistCsr<double> mat(proc, a, row_dist, nnz_dist);
      if (cached) mat.enable_caching();
      DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
      p.set_from(pval);
      for (int sweep = 0; sweep < 4; ++sweep) mat.matvec(p, q);
    });
    return rt->total_stats().bytes_sent;
  };
  const auto uncached = run_sweeps(false);
  const auto cached = run_sweeps(true);
  EXPECT_LT(cached, uncached);
}

TEST_P(DistSparseTest, CsrTransposeMatchesSerial) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::figure1_matrix();  // asymmetric pattern
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g) + 1.0;
  a.matvec_transpose(p_full, q_ref);

  run_spmd(np, [&](Process& proc) {
    auto row_dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.set_from([](std::size_t g) { return pval(g) + 1.0; });
    mat.matvec_transpose(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

TEST_P(DistSparseTest, CscPrivateMergeMatchesSerial) {
  const int np = GetParam();
  const auto csr = hpfcg::sparse::laplacian_2d(8, 8);
  const auto csc = hpfcg::sparse::csr_to_csc(csr);
  const std::size_t n = csc.n_cols();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  csc.matvec(p_full, q_ref);

  run_spmd(np, [&](Process& proc) {
    auto col_dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = DistCsc<double>::col_aligned(proc, csc, col_dist);
    EXPECT_EQ(mat.remote_nnz(), 0u);
    DistributedVector<double> p(proc, col_dist), q(proc, col_dist);
    p.set_from(pval);
    mat.matvec_private(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

TEST_P(DistSparseTest, CscSerialMatchesSerialAndBooksWait) {
  const int np = GetParam();
  const auto csr = hpfcg::sparse::random_spd(50, 5, 21);
  const auto csc = hpfcg::sparse::csr_to_csc(csr);
  const std::size_t n = csc.n_cols();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  csc.matvec(p_full, q_ref);

  auto rt = run_spmd(np, [&](Process& proc) {
    auto col_dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = DistCsc<double>::col_aligned(proc, csc, col_dist);
    DistributedVector<double> p(proc, col_dist), q(proc, col_dist);
    p.set_from(pval);
    mat.matvec_serial(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
  if (np > 1) {
    EXPECT_GT(rt->stats(np - 1).modeled_wait_seconds, 0.0);
  }
}

TEST_P(DistSparseTest, CscFlatNnzBlockStillCorrect) {
  const int np = GetParam();
  const auto csr = hpfcg::sparse::random_spd(40, 6, 31);
  const auto csc = hpfcg::sparse::csr_to_csc(csr);
  const std::size_t n = csc.n_cols();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  csc.matvec(p_full, q_ref);

  run_spmd(np, [&](Process& proc) {
    auto col_dist = share(Distribution::block(n, proc.nprocs()));
    auto nnz_dist = share(Distribution::block(csc.nnz(), proc.nprocs()));
    DistCsc<double> mat(proc, csc, col_dist, nnz_dist);
    DistributedVector<double> p(proc, col_dist), q(proc, col_dist);
    p.set_from(pval);
    mat.matvec_private(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, DistSparseTest,
                         ::testing::ValuesIn(test_machine_sizes()));

TEST(NnzExchangePlan, AlignedPlanIsEmpty) {
  const auto a = hpfcg::sparse::laplacian_2d(6, 6);
  run_spmd(4, [&](Process& proc) {
    const auto row_dist = Distribution::block(a.n_rows(), 4);
    std::vector<std::size_t> cuts(5);
    for (int r = 0; r < 4; ++r) {
      cuts[static_cast<std::size_t>(r)] =
          a.row_ptr()[row_dist.local_range(r).first];
    }
    cuts[4] = a.nnz();
    const auto nnz_dist = Distribution::from_cuts(a.nnz(), cuts);
    hpfcg::sparse::NnzExchangePlan plan(proc, a.row_ptr(), row_dist, nnz_dist);
    EXPECT_EQ(plan.remote_nnz(), 0u);
    for (const auto& seg : plan.recv_segments()) EXPECT_TRUE(seg.empty());
  });
}

TEST(NnzExchangePlan, MisalignedPlanCoversExactlyTheGap) {
  // Two ranks, 4 atoms with weights 3,1,1,3: row cut at atom 2 => need
  // ranges [0,4) and [4,8); flat nnz BLOCK owns [0,4) and [4,8) — aligned.
  // Shift the nnz cut to 5 to create a 1-element gap.
  run_spmd(2, [&](Process& proc) {
    const std::vector<std::size_t> ptr = {0, 3, 4, 5, 8};
    const auto atom_dist = Distribution::block(4, 2);  // atoms {0,1} | {2,3}
    const auto nnz_dist = Distribution::from_cuts(8, {0, 5, 8});
    hpfcg::sparse::NnzExchangePlan plan(proc, ptr, atom_dist, nnz_dist);
    if (proc.rank() == 0) {
      EXPECT_EQ(plan.remote_nnz(), 0u);  // needs [0,4), owns [0,5)
    } else {
      EXPECT_EQ(plan.remote_nnz(), 1u);  // needs [4,8), owns [5,8): misses k=4
    }
    // Execute and verify the assembled window.
    std::vector<int> owned(plan.owned().size());
    for (std::size_t i = 0; i < owned.size(); ++i) {
      owned[i] = static_cast<int>(plan.owned().begin + i);
    }
    std::vector<int> work(plan.needed().size());
    plan.execute<int>(proc, owned, work);
    for (std::size_t i = 0; i < work.size(); ++i) {
      EXPECT_EQ(work[i], static_cast<int>(plan.needed().begin + i));
    }
  });
}

}  // namespace
