// Workload generators: structural and spectral properties every benchmark
// depends on (symmetry, positive-definiteness via diagonal dominance,
// degree distributions, determinism).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "hpfcg/sparse/generators.hpp"

namespace sp = hpfcg::sparse;

namespace {

TEST(Laplacian2D, StructureAndSymmetry) {
  const auto a = sp::laplacian_2d(4, 3);
  ASSERT_EQ(a.n_rows(), 12u);
  EXPECT_TRUE(a.is_symmetric());
  // Interior point has 5 entries, corner has 3.
  EXPECT_EQ(a.row_nnz(5), 5u);   // (1,1) interior for nx=4
  EXPECT_EQ(a.row_nnz(0), 3u);   // corner
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);  // north neighbour (y+1)
  EXPECT_DOUBLE_EQ(a.at(0, 5), 0.0);   // no diagonal coupling
}

TEST(Laplacian2D, RowSumsVanishInTheInterior) {
  const auto a = sp::laplacian_2d(5, 5);
  // Interior row: 4 - 1 - 1 - 1 - 1 = 0; boundary rows are diagonally
  // dominant (positive row sum) — which is what makes it SPD.
  const std::size_t interior = 2 * 5 + 2;  // (2,2)
  double sum = 0.0;
  for (const double v : a.row_values(interior)) sum += v;
  EXPECT_DOUBLE_EQ(sum, 0.0);
  double corner_sum = 0.0;
  for (const double v : a.row_values(0)) corner_sum += v;
  EXPECT_GT(corner_sum, 0.0);
}

TEST(Laplacian3D, StructureAndSymmetry) {
  const auto a = sp::laplacian_3d(3, 3, 3);
  ASSERT_EQ(a.n_rows(), 27u);
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_EQ(a.row_nnz(13), 7u);  // center of the cube
  EXPECT_DOUBLE_EQ(a.at(13, 13), 6.0);
}

TEST(Stencil27, StructureAndSymmetry) {
  const auto a = sp::stencil27_3d(4, 4, 4);
  ASSERT_EQ(a.n_rows(), 64u);
  EXPECT_TRUE(a.is_symmetric());
  // Interior point couples to all 26 neighbours plus itself; a corner sees
  // a 2x2x2 cube.
  const std::size_t interior = (1 * 4 + 1) * 4 + 1;  // (1,1,1)
  EXPECT_EQ(a.row_nnz(interior), 27u);
  EXPECT_EQ(a.row_nnz(0), 8u);
  EXPECT_DOUBLE_EQ(a.at(interior, interior), 26.0);
  EXPECT_DOUBLE_EQ(a.at(interior, interior + 1), -1.0);
  // Interior row sum vanishes (26 - 26*1); boundary rows are strictly
  // dominant — the HPCG SPD construction.
  double sum = 0.0;
  for (const double v : a.row_values(interior)) sum += v;
  EXPECT_DOUBLE_EQ(sum, 0.0);
  double corner = 0.0;
  for (const double v : a.row_values(0)) corner += v;
  EXPECT_GT(corner, 0.0);
}

TEST(GridGenerators, RejectSizeOverflow) {
  // nx*ny (or *nz) would wrap size_t; the guard must throw, not truncate.
  constexpr std::size_t kHuge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW((void)sp::laplacian_2d(kHuge, 3), hpfcg::util::Error);
  EXPECT_THROW((void)sp::laplacian_3d(kHuge, 2, 2), hpfcg::util::Error);
  EXPECT_THROW((void)sp::laplacian_3d(2, kHuge, 3), hpfcg::util::Error);
  EXPECT_THROW((void)sp::stencil27_3d(kHuge, 4, 2), hpfcg::util::Error);
  EXPECT_THROW((void)sp::stencil27_3d(1u << 20, 1u << 20, 1u << 24),
               hpfcg::util::Error);
}

TEST(Tridiagonal, Structure) {
  const auto a = sp::tridiagonal(5, 2.0, -1.0);
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_EQ(a.nnz(), 13u);  // 5 + 2*4
  EXPECT_DOUBLE_EQ(a.at(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 4), 0.0);
}

TEST(RandomSpd, SymmetricAndDiagonallyDominant) {
  const auto a = sp::random_spd(100, 6, 123);
  ASSERT_EQ(a.n_rows(), 100u);
  EXPECT_TRUE(a.is_symmetric(1e-15));
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    double off = 0.0;
    double diag = 0.0;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        diag = vals[k];
      } else {
        off += std::abs(vals[k]);
      }
    }
    EXPECT_GT(diag, off) << "row " << i << " not strictly dominant";
  }
}

TEST(RandomSpd, DeterministicForFixedSeed) {
  const auto a = sp::random_spd(50, 4, 99);
  const auto b = sp::random_spd(50, 4, 99);
  EXPECT_EQ(a.col_idx(), b.col_idx());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_DOUBLE_EQ(a.values()[k], b.values()[k]);
  }
  const auto c = sp::random_spd(50, 4, 100);
  EXPECT_NE(a.values(), c.values());
}

TEST(PowerlawSpd, HubRowsAreMuchHeavier) {
  const auto a = sp::powerlaw_spd(400, 2, 4, 120, 7);
  EXPECT_TRUE(a.is_symmetric(1e-15));
  std::size_t max_nnz = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    max_nnz = std::max(max_nnz, a.row_nnz(i));
    total += a.row_nnz(i);
  }
  const double avg =
      static_cast<double>(total) / static_cast<double>(a.n_rows());
  // The Section 5.2.2 premise: "the number of elements across rows ...
  // varies a lot".
  EXPECT_GT(static_cast<double>(max_nnz), 8.0 * avg);
}

TEST(DiagonalSpectrum, StoresEigenvaluesOnTheDiagonal) {
  const auto a = sp::diagonal_spectrum({1.0, 2.0, 2.0, 9.0});
  EXPECT_EQ(a.nnz(), 4u);
  EXPECT_DOUBLE_EQ(a.at(3, 3), 9.0);
  EXPECT_THROW(sp::diagonal_spectrum({1.0, -2.0}), hpfcg::util::Error);
  EXPECT_THROW(sp::diagonal_spectrum({}), hpfcg::util::Error);
}

TEST(EmDenseEntry, SymmetricPositiveKernel) {
  EXPECT_DOUBLE_EQ(sp::em_dense_entry(3, 3, 8.0), 2.0);
  EXPECT_DOUBLE_EQ(sp::em_dense_entry(1, 5, 8.0), sp::em_dense_entry(5, 1, 8.0));
  EXPECT_GT(sp::em_dense_entry(0, 1, 8.0), sp::em_dense_entry(0, 10, 8.0));
}

TEST(RandomRhs, DeterministicAndBounded) {
  const auto b1 = sp::random_rhs(64, 5);
  const auto b2 = sp::random_rhs(64, 5);
  EXPECT_EQ(b1, b2);
  for (const double v : b1) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
