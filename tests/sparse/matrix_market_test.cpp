// Matrix Market I/O: write/read round trips, symmetric expansion, and
// malformed-input diagnostics.

#include <gtest/gtest.h>

#include <sstream>

#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/matrix_market.hpp"

namespace sp = hpfcg::sparse;

namespace {

TEST(MatrixMarket, WriteReadRoundTrip) {
  const auto a = sp::random_spd(25, 4, 17);
  std::stringstream ss;
  sp::write_matrix_market(ss, a);
  const auto back = sp::read_matrix_market(ss);
  ASSERT_EQ(back.n_rows(), a.n_rows());
  ASSERT_EQ(back.nnz(), a.nnz());
  EXPECT_EQ(back.row_ptr(), a.row_ptr());
  EXPECT_EQ(back.col_idx(), a.col_idx());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_DOUBLE_EQ(back.values()[k], a.values()[k]);
  }
}

TEST(MatrixMarket, SymmetricFilesAreExpanded) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% lower triangle only\n"
     << "3 3 4\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "2 2 2.0\n"
     << "3 3 2.0\n";
  const auto a = sp::read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 5u);  // the off-diagonal entry is mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(MatrixMarket, CommentsAndIntegerFieldAccepted) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate integer general\n"
     << "% a comment\n"
     << "% another comment\n"
     << "2 2 2\n"
     << "1 1 3\n"
     << "2 2 4\n";
  const auto a = sp::read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
}

TEST(MatrixMarket, MalformedInputRejected) {
  {
    std::stringstream ss("not a header\n1 1 1\n1 1 1.0\n");
    EXPECT_THROW((void)sp::read_matrix_market(ss), hpfcg::util::Error);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix array real general\n2 2\n1.0\n");
    EXPECT_THROW((void)sp::read_matrix_market(ss), hpfcg::util::Error);
  }
  {
    // Entry out of declared range.
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
    EXPECT_THROW((void)sp::read_matrix_market(ss), hpfcg::util::Error);
  }
  {
    // Truncated entry list.
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW((void)sp::read_matrix_market(ss), hpfcg::util::Error);
  }
  {
    EXPECT_THROW((void)sp::read_matrix_market_file("/nonexistent/path.mtx"),
                 hpfcg::util::Error);
  }
}

TEST(MatrixMarket, BlankLinesAfterBannerAccepted) {
  // Regression: the old stream-based parser consumed the first three
  // whitespace-separated tokens as the size line, so a blank line between
  // banner and size line was harmless but a comment there shifted the
  // tokens — and a blank line *inside* the entry list silently ended it.
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "\n"
     << "% comment after a blank line\n"
     << "2 2 2\n"
     << "\n"
     << "1 1 3.0\n"
     << "% mid-list comment\n"
     << "2 2 4.0\n"
     << "\n";
  const auto a = sp::read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
}

TEST(MatrixMarket, PatternFieldGetsUnitValues) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern symmetric\n"
     << "3 3 3\n"
     << "1 1\n"
     << "2 1\n"
     << "3 3\n";
  const auto a = sp::read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 4u);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
}

TEST(MatrixMarket, SymmetricExplicitDiagonalStaysSingle) {
  // Regression: a naive expansion mirrors every entry, doubling explicit
  // diagonals; the diagonal of an SPD operator must come through intact.
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "2 2 3\n"
     << "1 1 5.0\n"
     << "2 1 -1.0\n"
     << "2 2 5.0\n";
  const auto a = sp::read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 4u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 5.0);
}

TEST(MatrixMarket, FieldCountMismatchNamesLine) {
  // Regression: token-stream parsing let a 2-field line steal the next
  // line's row index as its value, shifting every following entry — a
  // plausible-looking but wrong matrix instead of an error.
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 2\n"
     << "1 1\n"        // missing value, line 3
     << "2 2 4.0\n";
  try {
    (void)sp::read_matrix_market(ss);
    FAIL() << "short entry line must be rejected";
  } catch (const sp::MatrixMarketError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("2 fields"), std::string::npos);
  }
}

TEST(MatrixMarket, SurplusEntriesRejected) {
  // Regression: the old parser stopped reading after nnz entries, silently
  // accepting (and discarding) whatever followed.
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 1\n"
     << "1 1 1.0\n"
     << "2 2 2.0\n";
  EXPECT_THROW((void)sp::read_matrix_market(ss), sp::MatrixMarketError);
}

TEST(MatrixMarket, ErrorsCarryLineNumbers) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n% c\n2 2 1\n9 9 1.0\n");
  try {
    (void)sp::read_matrix_market(ss);
    FAIL() << "out-of-range entry must be rejected";
  } catch (const sp::MatrixMarketError& e) {
    EXPECT_EQ(e.line(), 4u);
    EXPECT_NE(std::string(e.what()).find("(line 4)"), std::string::npos);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto a = sp::laplacian_2d(4, 4);
  const std::string path = ::testing::TempDir() + "/hpfcg_mm_test.mtx";
  sp::write_matrix_market_file(path, a);
  const auto back = sp::read_matrix_market_file(path);
  EXPECT_EQ(back.nnz(), a.nnz());
  EXPECT_TRUE(back.is_symmetric());
}

}  // namespace
