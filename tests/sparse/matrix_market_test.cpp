// Matrix Market I/O: write/read round trips, symmetric expansion, and
// malformed-input diagnostics.

#include <gtest/gtest.h>

#include <sstream>

#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/matrix_market.hpp"

namespace sp = hpfcg::sparse;

namespace {

TEST(MatrixMarket, WriteReadRoundTrip) {
  const auto a = sp::random_spd(25, 4, 17);
  std::stringstream ss;
  sp::write_matrix_market(ss, a);
  const auto back = sp::read_matrix_market(ss);
  ASSERT_EQ(back.n_rows(), a.n_rows());
  ASSERT_EQ(back.nnz(), a.nnz());
  EXPECT_EQ(back.row_ptr(), a.row_ptr());
  EXPECT_EQ(back.col_idx(), a.col_idx());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_DOUBLE_EQ(back.values()[k], a.values()[k]);
  }
}

TEST(MatrixMarket, SymmetricFilesAreExpanded) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% lower triangle only\n"
     << "3 3 4\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "2 2 2.0\n"
     << "3 3 2.0\n";
  const auto a = sp::read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 5u);  // the off-diagonal entry is mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(MatrixMarket, CommentsAndIntegerFieldAccepted) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate integer general\n"
     << "% a comment\n"
     << "% another comment\n"
     << "2 2 2\n"
     << "1 1 3\n"
     << "2 2 4\n";
  const auto a = sp::read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
}

TEST(MatrixMarket, MalformedInputRejected) {
  {
    std::stringstream ss("not a header\n1 1 1\n1 1 1.0\n");
    EXPECT_THROW((void)sp::read_matrix_market(ss), hpfcg::util::Error);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix array real general\n2 2\n1.0\n");
    EXPECT_THROW((void)sp::read_matrix_market(ss), hpfcg::util::Error);
  }
  {
    // Entry out of declared range.
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
    EXPECT_THROW((void)sp::read_matrix_market(ss), hpfcg::util::Error);
  }
  {
    // Truncated entry list.
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW((void)sp::read_matrix_market(ss), hpfcg::util::Error);
  }
  {
    EXPECT_THROW((void)sp::read_matrix_market_file("/nonexistent/path.mtx"),
                 hpfcg::util::Error);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto a = sp::laplacian_2d(4, 4);
  const std::string path = ::testing::TempDir() + "/hpfcg_mm_test.mtx";
  sp::write_matrix_market_file(path, a);
  const auto back = sp::read_matrix_market_file(path);
  EXPECT_EQ(back.nnz(), a.nnz());
  EXPECT_TRUE(back.is_symmetric());
}

}  // namespace
