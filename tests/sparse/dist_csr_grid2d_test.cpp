#include <atomic>
// Sparse CSR on a 2-D processor grid: correctness for every machine shape,
// CG end-to-end via redistribution, and the communication comparison with
// 1-D row stripes.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/dist_csr_grid2d.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace sp = hpfcg::sparse;
namespace sv = hpfcg::solvers;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::hpf::Grid2D;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

double pval(std::size_t g) { return 0.4 * static_cast<double>(g % 9) - 1.5; }

class SparseGrid2DTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseGrid2DTest, MatvecMatchesSerial) {
  const int np = GetParam();
  const auto a = sp::laplacian_2d(9, 7);  // awkward sizes
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  a.matvec(p_full, q_ref);

  run_spmd(np, [&](Process& proc) {
    sp::DistCsrGrid2D<double> mat(proc, a, Grid2D::squarest(np));
    DistributedVector<double> p(proc, mat.vector_dist());
    DistributedVector<double> q(proc, mat.result_dist());
    p.from_global(p_full);
    mat.matvec(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

TEST_P(SparseGrid2DTest, TileNnzPartitionsTheMatrix) {
  const int np = GetParam();
  const auto a = sp::random_spd(80, 6, 7);
  std::atomic<std::size_t> total{0};
  run_spmd(np, [&](Process& proc) {
    sp::DistCsrGrid2D<double> mat(proc, a, Grid2D::squarest(np));
    total += mat.tile_nnz();
  });
  EXPECT_EQ(total.load(), a.nnz());
}

TEST_P(SparseGrid2DTest, CgWithPerIterationRedistributionSolves) {
  // A CG iteration needs q back in p's distribution; the redistribute
  // round-trip costs O(n/NP) per rank and keeps the 2-D layout usable
  // end-to-end.
  const int np = GetParam();
  const auto a = sp::laplacian_2d(8, 8);
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 47);
  std::vector<double> x_ref(n, 0.0);
  const auto ref = sv::cg(a, b_full, x_ref, {.rel_tolerance = 1e-9});
  ASSERT_TRUE(ref.converged);

  run_spmd(np, [&](Process& proc) {
    sp::DistCsrGrid2D<double> mat(proc, a, Grid2D::squarest(np));
    const auto vdist = mat.vector_dist();
    const auto rdist = mat.result_dist();
    DistributedVector<double> b(proc, vdist), x(proc, vdist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      DistributedVector<double> q2(proc, rdist);
      mat.matvec(p, q2);
      auto back = hpfcg::hpf::redistribute(q2, vdist);
      hpfcg::hpf::assign(back, q);
    };
    const auto res = sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-9});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, ref.iterations);
    const auto full = x.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], x_ref[i], 1e-6);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, SparseGrid2DTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 9, 12, 16));

TEST(SparseGrid2D, DenserMatrixFavorsTheGridOverStripes) {
  // With enough nonzeros per row the vector traffic dominates and the 2-D
  // layout's O(n/sqrt(P)) beats the stripes' O(n) broadcast.
  const auto a = sp::random_spd(768, 48, 13);  // dense-ish sparse matrix
  const std::size_t n = a.n_rows();
  const int np = 16;

  auto rt_grid = run_spmd(np, [&](Process& proc) {
    sp::DistCsrGrid2D<double> mat(proc, a, Grid2D::squarest(np));
    DistributedVector<double> p(proc, mat.vector_dist());
    DistributedVector<double> q(proc, mat.result_dist());
    p.set_from(pval);
    mat.matvec(p, q);
  });
  auto rt_stripe = run_spmd(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, np));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pval);
    mat.matvec(p, q);
  });
  EXPECT_LT(rt_grid->total_stats().bytes_sent,
            rt_stripe->total_stats().bytes_sent);
}

}  // namespace
