// sparse::redistribute — whole-row CSR migration onto new cut points.
//
// Properties proven here, per machine size: migrating onto
// optimal_nnz_cuts lands every rank at or under the binary-searched
// bottleneck bound; the migrated matrix's matvec is bit-for-bit identical
// to the pre-migration one (same per-row entry order, same accumulation
// order); identical cuts short-circuit to zero communication; empty ranks
// (n < NP) and surviving the check ledger are exercised together.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/ext/balanced_partition.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/redistribute.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::sparse::DistCsr;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

double pval(std::size_t g) { return 0.125 * static_cast<double>(g % 11) - 0.5; }

class RedistributeCsrTest : public ::testing::TestWithParam<int> {};

TEST_P(RedistributeCsrTest, OptimalCutsMeetBottleneckBound) {
  const int np = GetParam();
  // Skewed workload: hub rows are ~20x heavier than base rows, so the
  // uniform block layout is badly imbalanced for np > 1.
  const auto a = hpfcg::sparse::powerlaw_spd(120, 3, 6, 60, 99);
  const std::size_t n = a.n_rows();
  const auto weights = hpfcg::ext::atom_weights(a.row_ptr());
  const auto cuts = hpfcg::ext::optimal_nnz_cuts(weights, np);
  const std::size_t bound = hpfcg::ext::bottleneck(weights, cuts);

  run_spmd(np, [&](Process& proc) {
    auto mat = DistCsr<double>::row_aligned(
        proc, a, share(Distribution::block(n, proc.nprocs())));
    hpfcg::sparse::RedistributeStats st;
    auto moved = hpfcg::sparse::redistribute(mat, cuts, &st);
    EXPECT_TRUE(moved.row_dist() == Distribution::from_cuts(n, cuts));
    EXPECT_LE(moved.local_nnz(), bound);
    // Row-aligned result: per-rank nnz equals the cut-window weight.
    std::size_t want = 0;
    const auto me = static_cast<std::size_t>(proc.rank());
    for (std::size_t g = cuts[me]; g < cuts[me + 1]; ++g) want += weights[g];
    EXPECT_EQ(moved.local_nnz(), want);
    EXPECT_EQ(moved.remote_nnz(), 0u);  // atom semantics survive migration
  });
}

TEST_P(RedistributeCsrTest, MatvecBitIdenticalAcrossMigration) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::powerlaw_spd(90, 3, 5, 40, 7);
  const std::size_t n = a.n_rows();
  const auto weights = hpfcg::ext::atom_weights(a.row_ptr());
  const auto cuts = hpfcg::ext::optimal_nnz_cuts(weights, np);

  run_spmd(np, [&](Process& proc) {
    auto block = share(Distribution::block(n, proc.nprocs()));
    auto mat = DistCsr<double>::row_aligned(proc, a, block);
    DistributedVector<double> p(proc, block), q(proc, block);
    p.set_from(pval);
    mat.matvec(p, q);
    const auto before = q.to_global();

    auto moved = hpfcg::sparse::redistribute(mat, cuts);
    auto target = moved.row_dist_ptr();
    DistributedVector<double> p2 = hpfcg::hpf::redistribute(p, target);
    DistributedVector<double> q2(proc, target);
    moved.matvec(p2, q2);
    const auto after = q2.to_global();

    // Bit-for-bit: each row's (col, a) sequence and accumulation order is
    // unchanged by migration, and full_p is the same global array.
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(after[i], before[i]);
  });
}

TEST_P(RedistributeCsrTest, IdenticalCutsMoveNothing) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::laplacian_2d(6, 7);
  const std::size_t n = a.n_rows();
  const auto block = Distribution::block(n, np);
  std::vector<std::size_t> same_cuts(static_cast<std::size_t>(np) + 1, n);
  same_cuts[0] = 0;
  for (int r = 1; r < np; ++r) {
    same_cuts[static_cast<std::size_t>(r)] = block.local_range(r).first;
  }

  auto rt = run_spmd(np, [&](Process& proc) {
    auto mat = DistCsr<double>::row_aligned(
        proc, a, share(Distribution::block(n, proc.nprocs())));
    const auto before = proc.stats();
    hpfcg::sparse::RedistributeStats st;
    auto moved = hpfcg::sparse::redistribute(mat, same_cuts, &st);
    EXPECT_EQ(proc.stats().messages_sent, before.messages_sent);
    EXPECT_EQ(proc.stats().collectives, before.collectives);
    EXPECT_EQ(st.rows_moved, 0u);
    EXPECT_EQ(st.nnz_moved, 0u);
    EXPECT_EQ(st.bytes_moved, 0u);
    EXPECT_EQ(moved.local_rows(), mat.local_rows());
  });
  (void)rt;
}

TEST_P(RedistributeCsrTest, EmptyRanksAndLedgerStayAligned) {
  const int np = GetParam();
  hpfcg::check::ScopedEnable checking(true);
  // n < NP for every np > 3: several ranks own no rows on one or both
  // sides of the migration.
  const auto a = hpfcg::sparse::tridiagonal(3, 4.0, -1.0);
  const std::size_t n = a.n_rows();

  run_spmd(np, [&](Process& proc) {
    const int P = proc.nprocs();
    auto mat = DistCsr<double>::row_aligned(
        proc, a, share(Distribution::block(n, P)));
    // Everything onto the last rank — every early rank empties out.
    std::vector<std::size_t> cuts(static_cast<std::size_t>(P) + 1, 0);
    cuts.back() = n;
    auto moved = hpfcg::sparse::redistribute(mat, cuts);
    EXPECT_EQ(moved.local_rows(), proc.rank() == P - 1 ? n : 0u);

    auto target = moved.row_dist_ptr();
    DistributedVector<double> p(proc, target), q(proc, target);
    p.set_from(pval);
    moved.matvec(p, q);
    const auto full = q.to_global();
    std::vector<double> p_full(n), q_ref(n);
    for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
    a.matvec(p_full, q_ref);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(full[i], q_ref[i]);
  });
}

TEST_P(RedistributeCsrTest, StatsCountExactlyTheMigratingRows) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(64, 5, 21);
  const std::size_t n = a.n_rows();
  const auto weights = hpfcg::ext::atom_weights(a.row_ptr());
  const auto cuts = hpfcg::ext::optimal_nnz_cuts(weights, np);
  const auto from = Distribution::block(n, np);
  const auto to = Distribution::from_cuts(n, cuts);
  if (from == to) GTEST_SKIP() << "optimal cuts equal block cuts";

  // Machine-wide expectation from the replicated metadata alone.
  std::size_t want_rows = 0, want_nnz = 0;
  for (int s = 0; s < np; ++s) {
    for (int d = 0; d < np; ++d) {
      if (s == d) continue;
      const auto [slo, shi] = from.local_range(s);
      const auto [dlo, dhi] = to.local_range(d);
      const std::size_t lo = std::max(slo, dlo);
      const std::size_t hi = std::min(shi, dhi);
      for (std::size_t g = lo; g < hi; ++g) {
        ++want_rows;
        want_nnz += weights[g];
      }
    }
  }

  std::atomic<std::size_t> rows{0}, nnz{0};
  run_spmd(np, [&](Process& proc) {
    auto mat = DistCsr<double>::row_aligned(
        proc, a, share(Distribution::block(n, proc.nprocs())));
    hpfcg::sparse::RedistributeStats st;
    (void)hpfcg::sparse::redistribute(mat, cuts, &st);
    rows += st.rows_moved;
    nnz += st.nnz_moved;
  });
  EXPECT_EQ(rows.load(), want_rows);
  EXPECT_EQ(nnz.load(), want_nnz);
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, RedistributeCsrTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
