// HaloPlan inspector/executor: the ghost set must be exactly the union of
// foreign columns (deduplicated), tiny problems with empty ranks and NP=1
// must degenerate cleanly, the halo sweep must be bit-identical to the
// legacy gather, redistribution must invalidate and rebuild the plan, and
// the hoisted transpose scratch must allocate exactly once.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/dist_csr_grid2d.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/halo.hpp"
#include "hpfcg/sparse/redistribute.hpp"
#include "spmd_test_util.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::sparse::DistCsr;
using hpfcg::sparse::DistCsrGrid2D;
namespace halo = hpfcg::sparse::halo;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

double pval(std::size_t g) { return 0.25 * static_cast<double>(g % 9) - 1.0; }

class HaloPlanTest : public ::testing::TestWithParam<int> {};

TEST_P(HaloPlanTest, GhostSetIsDedupedUnionOfForeignColumns) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(64, 6, 7);
  const std::size_t n = a.n_rows();
  halo::ScopedEnable on;
  run_spmd(np, [&](Process& proc) {
    auto row_dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.set_from(pval);
    mat.matvec(p, q);  // first sweep builds the plan

    const auto [lo, hi] = row_dist->local_range(proc.rank());
    std::set<std::size_t> expect;
    for (std::size_t i = lo; i < hi; ++i) {
      for (const std::size_t c : a.row_cols(i)) {
        if (c < lo || c >= hi) expect.insert(c);
      }
    }
    const auto& plan = mat.halo_plan();
    EXPECT_TRUE(plan.built());
    const auto& ghosts = plan.ghost_gids();
    // Deduplicated: strictly increasing, and exactly the foreign union.
    EXPECT_TRUE(std::is_sorted(ghosts.begin(), ghosts.end()));
    EXPECT_EQ(std::set<std::size_t>(ghosts.begin(), ghosts.end()).size(),
              ghosts.size());
    EXPECT_EQ(std::vector<std::size_t>(expect.begin(), expect.end()), ghosts);
    EXPECT_EQ(proc.stats().ghost_entries, ghosts.size());
  });
}

TEST_P(HaloPlanTest, TinyProblemWithEmptyRanksDegeneratesCleanly) {
  // n = 3 < NP for most machine sizes: ranks owning nothing must build an
  // empty plan, move no halo bytes, and the product must still be right.
  const int np = GetParam();
  const auto a = hpfcg::sparse::laplacian_2d(3, 1);
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  a.matvec(p_full, q_ref);

  halo::ScopedEnable on;
  run_spmd(np, [&](Process& proc) {
    auto row_dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.set_from(pval);
    mat.matvec(p, q);
    if (row_dist->local_count(proc.rank()) == 0) {
      EXPECT_EQ(mat.halo_plan().n_ghosts(), 0u);
      EXPECT_EQ(proc.stats().halo_bytes, 0u);
    }
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

TEST(HaloPlanSingleRank, Np1IsANoOp) {
  const auto a = hpfcg::sparse::laplacian_2d(5, 5);
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  a.matvec(p_full, q_ref);

  halo::ScopedEnable on;
  auto rt = run_spmd(1, [&](Process& proc) {
    auto row_dist = share(Distribution::block(n, 1));
    auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.set_from(pval);
    mat.matvec(p, q);
    EXPECT_TRUE(mat.halo_plan().built());
    EXPECT_EQ(mat.halo_plan().n_ghosts(), 0u);
    EXPECT_EQ(mat.halo_plan().send_neighbors(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(q.local()[i], q_ref[i], 1e-12);
    }
  });
  EXPECT_EQ(rt->total_stats().halo_msgs, 0u);
  EXPECT_EQ(rt->total_stats().halo_bytes, 0u);
}

TEST_P(HaloPlanTest, MatvecBitIdenticalToGatherPath) {
  // Both paths accumulate each row's entries in the same k order, so the
  // results must agree to the last bit — the property the solver
  // residual-history gates rely on.
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(72, 7, 11);
  const std::size_t n = a.n_rows();
  const auto product = [&](bool use_halo) {
    halo::ScopedEnable mode(use_halo);
    std::vector<double> out;
    run_spmd(np, [&](Process& proc) {
      auto row_dist = share(Distribution::block(n, proc.nprocs()));
      auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
      DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
      p.set_from(pval);
      mat.matvec(p, q);
      mat.matvec(q, p);  // second sweep reuses the cached plan
      const auto full = p.to_global();
      if (proc.rank() == 0) out = full;
    });
    return out;
  };
  EXPECT_EQ(product(true), product(false));
}

TEST_P(HaloPlanTest, TransposeHaloMatchesSerial) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::figure1_matrix();
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n, 0.0);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      q_ref[cols[k]] += vals[k] * p_full[i];
    }
  }
  halo::ScopedEnable on;
  run_spmd(np, [&](Process& proc) {
    auto row_dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.set_from(pval);
    mat.matvec_transpose(p, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

TEST_P(HaloPlanTest, RedistributeInvalidatesAndRebuildsBitIdentically) {
  // The mid-solve rebalance path: migrating the matrix must discard the
  // old plan, and the rebuilt plan's matvec must agree with the
  // pre-migration product to the last bit (per-row k order is independent
  // of the cut points).
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(60, 6, 13);
  const std::size_t n = a.n_rows();
  halo::ScopedEnable on;
  run_spmd(np, [&](Process& proc) {
    const int p_count = proc.nprocs();
    auto row_dist = share(Distribution::block(n, p_count));
    auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
    DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
    p.set_from(pval);
    mat.matvec(p, q);
    const auto before = q.to_global();
    const std::size_t old_fp = mat.halo_plan().topology_fingerprint();

    // Skewed target: rank 0 takes a double-size block, the rest splits.
    std::vector<std::size_t> cuts(static_cast<std::size_t>(p_count) + 1, 0);
    const std::size_t head = std::min<std::size_t>(n, 2 * (n / p_count + 1));
    cuts[1] = p_count > 1 ? head : n;
    for (int r = 2; r <= p_count; ++r) {
      cuts[static_cast<std::size_t>(r)] =
          head + (n - head) * static_cast<std::size_t>(r - 1) /
                     static_cast<std::size_t>(p_count - 1);
    }
    auto mat2 = hpfcg::sparse::redistribute(mat, cuts);
    if (p_count > 1) {
      EXPECT_FALSE(mat2.halo_plan().built());  // migration dropped the plan
    } else {
      // Identical target short-circuits to a copy; the plan survives
      // because the ownership map it was built against is unchanged.
      EXPECT_TRUE(mat2.halo_plan().built());
    }

    auto p2 = hpfcg::hpf::redistribute(p, mat2.row_dist_ptr());
    DistributedVector<double> q2(proc, mat2.row_dist_ptr());
    mat2.matvec(p2, q2);
    EXPECT_TRUE(mat2.halo_plan().built());
    if (p_count > 1) {
      EXPECT_NE(mat2.halo_plan().topology_fingerprint(), old_fp);
    }
    const auto after = q2.to_global();
    EXPECT_EQ(before, after);  // bit-identical across the migration
  });
}

TEST_P(HaloPlanTest, TransposeScratchAllocatesOnceAcrossSweeps) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(48, 5, 3);
  const std::size_t n = a.n_rows();
  for (const bool use_halo : {true, false}) {
    halo::ScopedEnable mode(use_halo);
    run_spmd(np, [&](Process& proc) {
      auto row_dist = share(Distribution::block(n, proc.nprocs()));
      auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
      DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
      p.set_from(pval);
      for (int sweep = 0; sweep < 4; ++sweep) mat.matvec_transpose(p, q);
      EXPECT_EQ(mat.transpose_scratch_allocations(), 1u)
          << "halo=" << use_halo;
    });
  }
}

TEST_P(HaloPlanTest, PerSweepBytesShrinkVersusGather) {
  // The perf claim at test scale: once the plan is built, a marginal halo
  // sweep moves strictly fewer bytes than a marginal gather sweep (the
  // boundary of a 2-D Laplacian block row is O(nx), the gather is O(n)).
  const int np = GetParam();
  if (np < 2) GTEST_SKIP() << "needs at least one foreign boundary";
  const auto a = hpfcg::sparse::laplacian_2d(16, 16);
  const std::size_t n = a.n_rows();
  const auto marginal_bytes = [&](bool use_halo) {
    halo::ScopedEnable mode(use_halo);
    const auto bytes_for = [&](int sweeps) {
      auto rt = run_spmd(np, [&](Process& proc) {
        auto row_dist = share(Distribution::block(n, proc.nprocs()));
        auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
        DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
        p.set_from(pval);
        for (int sweep = 0; sweep < sweeps; ++sweep) mat.matvec(p, q);
      });
      return rt->total_stats().bytes_sent;
    };
    return bytes_for(2) - bytes_for(1);
  };
  EXPECT_LT(marginal_bytes(true), marginal_bytes(false));
}

TEST_P(HaloPlanTest, CountersSplitHaloFromGatherBytes) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::laplacian_2d(8, 8);
  const std::size_t n = a.n_rows();
  for (const bool use_halo : {true, false}) {
    halo::ScopedEnable mode(use_halo);
    auto rt = run_spmd(np, [&](Process& proc) {
      auto row_dist = share(Distribution::block(n, proc.nprocs()));
      auto mat = DistCsr<double>::row_aligned(proc, a, row_dist);
      DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
      p.set_from(pval);
      mat.matvec(p, q);
    });
    const auto total = rt->total_stats();
    if (use_halo) {
      EXPECT_EQ(total.gather_bytes, 0u);
      if (np > 1) {
        EXPECT_GT(total.halo_bytes, 0u);
      }
    } else {
      EXPECT_EQ(total.halo_bytes, 0u);
      if (np > 1) {
        EXPECT_GT(total.gather_bytes, 0u);
      }
    }
  }
}

TEST_P(HaloPlanTest, Grid2dHaloBitIdenticalToGroupGather) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(54, 6, 5);
  const auto product = [&](bool use_halo) {
    halo::ScopedEnable mode(use_halo);
    std::vector<double> out;
    run_spmd(np, [&](Process& proc) {
      const auto grid = hpfcg::hpf::Grid2D::squarest(proc.nprocs());
      DistCsrGrid2D<double> mat(proc, a, grid);
      DistributedVector<double> p(proc, mat.vector_dist());
      DistributedVector<double> q(proc, mat.result_dist());
      p.set_from(pval);
      mat.matvec(p, q);
      mat.matvec(p, q);  // second sweep reuses the cached group plan
      const auto full = q.to_global();
      if (proc.rank() == 0) out = full;
    });
    return out;
  };
  EXPECT_EQ(product(true), product(false));
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, HaloPlanTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
