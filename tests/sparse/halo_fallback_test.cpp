// Satellite coverage for the halo-fallback accounting: the one-shot stderr
// warning fires exactly once per run, the Stats::halo_fallbacks counter
// aggregates across ranks, and ordinary contiguous halo runs never count a
// fallback (the counter is a perf-cliff alarm, not background noise).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/stats.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/halo.hpp"
#include "spmd_test_util.hpp"

namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

TEST(HaloFallback, WarningFiresAtMostOncePerRun) {
  // The helper is process-global and one-shot: the first call prints, every
  // later call is silent — a fallback storm must not flood stderr.
  ::testing::internal::CaptureStderr();
  sp::halo::warn_fallback_once();
  const std::string first = ::testing::internal::GetCapturedStderr();
  ::testing::internal::CaptureStderr();
  sp::halo::warn_fallback_once();
  sp::halo::warn_fallback_once();
  const std::string rest = ::testing::internal::GetCapturedStderr();
  // Either this test triggered the first warning or an earlier fallback in
  // the same binary already did; in both cases repeats are silent.
  if (!first.empty()) {
    EXPECT_NE(first.find("halo"), std::string::npos);
    EXPECT_NE(first.find("halo_fallbacks"), std::string::npos);
  }
  EXPECT_TRUE(rest.empty()) << rest;
}

TEST(HaloFallback, StatsFieldAggregatesAcrossProcesses) {
  hpfcg::msg::Stats a, b;
  a.halo_fallbacks = 2;
  b.halo_fallbacks = 3;
  a += b;
  EXPECT_EQ(a.halo_fallbacks, 5u);
}

TEST(HaloFallback, ContiguousHaloRunsCountNoFallbacks) {
  const auto a = sp::laplacian_2d(8, 8);
  const std::size_t n = a.n_rows();
  sp::halo::ScopedEnable halo_on(true);
  auto rt = run_spmd(4, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from([](std::size_t g) { return 1.0 + static_cast<double>(g); });
    mat.matvec(p, q);
    EXPECT_TRUE(mat.halo_active());
  });
  EXPECT_EQ(rt->total_stats().halo_fallbacks, 0u);
}

TEST(HaloFallback, GatherModeIsNotAFallback) {
  // Explicitly opting out (HPFCG_HALO=0) is an A/B choice, not a silent
  // perf cliff: no fallback is counted.
  const auto a = sp::laplacian_2d(6, 6);
  const std::size_t n = a.n_rows();
  sp::halo::ScopedEnable halo_off(false);
  auto rt = run_spmd(3, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from([](std::size_t g) { return static_cast<double>(g % 7); });
    mat.matvec(p, q);
    EXPECT_FALSE(mat.halo_active());
  });
  EXPECT_EQ(rt->total_stats().halo_fallbacks, 0u);
}

}  // namespace
