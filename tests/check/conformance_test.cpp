// hpfcg::check must catch each seeded defect class — mismatched
// collectives, message leaks, out-of-shard accesses, merge-before-publish
// races — with a diagnostic that names the offending rank, instead of
// deadlocking or corrupting silently.  It must also be a pure side channel:
// enabling it never changes a single instrumentation counter.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/ext/private_array.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

using hpfcg::ext::PrivateArray;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Runtime;
using hpfcg::util::Error;
namespace check = hpfcg::check;

namespace {

/// Runs `body` on `np` ranks with checking enabled and returns the error
/// message the machine fails with (fails the test if it does not throw).
std::string failure_message(int np,
                            const std::function<void(Process&)>& body) {
  check::ScopedEnable on;
  Runtime rt(np);
  try {
    rt.run(body);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected the verifier to reject this program";
  return {};
}

auto block_dist(std::size_t n, int np) {
  return std::make_shared<const Distribution>(Distribution::block(n, np));
}

// ---- collective conformance -------------------------------------------

TEST(CheckCollectiveConformance, MismatchedKindNamesDivergentRank) {
  const std::string msg = failure_message(4, [](Process& p) {
    if (p.rank() == 2) {
      std::vector<double> buf(4, 1.0);
      p.allreduce_vec(buf);  // everyone else broadcasts
    } else {
      (void)p.broadcast_value<double>(0, 1.0);
    }
  });
  EXPECT_NE(msg.find("collective conformance violation"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("allreduce_vec"), std::string::npos) << msg;
  EXPECT_NE(msg.find("broadcast"), std::string::npos) << msg;
}

TEST(CheckCollectiveConformance, MismatchedRootNamesDivergentRank) {
  const std::string msg = failure_message(4, [](Process& p) {
    double v = 1.0;
    const int root = p.rank() == 3 ? 1 : 0;  // rank 3 disagrees on the root
    p.broadcast_into<double>(root, std::span<double>(&v, 1));
  });
  EXPECT_NE(msg.find("rank 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("root=1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("root=0"), std::string::npos) << msg;
}

TEST(CheckCollectiveConformance, MismatchedElementSizeNamesDivergentRank) {
  const std::string msg = failure_message(2, [](Process& p) {
    if (p.rank() == 1) {
      (void)p.allreduce<float>(1.0F);  // 4-byte elements
    } else {
      (void)p.allreduce<double>(1.0);  // 8-byte elements
    }
  });
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("elem=4B"), std::string::npos) << msg;
  EXPECT_NE(msg.find("elem=8B"), std::string::npos) << msg;
}

TEST(CheckCollectiveConformance, MismatchedMergeLengthNamesDivergentRank) {
  const std::string msg = failure_message(4, [](Process& p) {
    std::vector<double> buf(p.rank() == 1 ? 8 : 6, 0.0);
    p.allreduce_vec(buf);  // merge lengths must agree machine-wide
  });
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("count=8"), std::string::npos) << msg;
  EXPECT_NE(msg.find("count=6"), std::string::npos) << msg;
}

TEST(CheckCollectiveConformance, MismatchedBatchWidthNamesDivergentRank) {
  // A rank fusing a different number of scalars into allreduce_batch would
  // deadlock the tree (payload lengths disagree); the ledger names it
  // first, since the batch width is the fingerprint's count.
  const std::string msg = failure_message(4, [](Process& p) {
    std::vector<double> vals(p.rank() == 2 ? 3 : 2, 1.0);
    p.allreduce_batch<double>(vals);
  });
  EXPECT_NE(msg.find("collective conformance violation"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("allreduce_batch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("count=3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("count=2"), std::string::npos) << msg;
}

TEST(CheckCollectiveConformance, MismatchedReduceBatchRootNamesRank) {
  const std::string msg = failure_message(4, [](Process& p) {
    std::vector<double> vals(2, 1.0);
    p.reduce_batch<double>(p.rank() == 1 ? 2 : 0, vals);
  });
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("reduce_batch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("root=2"), std::string::npos) << msg;
}

TEST(CheckCollectiveConformance, ConformingProgramsPassUntouched) {
  check::ScopedEnable on;
  for (int np : hpfcg_test::test_machine_sizes()) {
    auto rt = hpfcg_test::run_spmd(np, [](Process& p) {
      auto dist = block_dist(64, p.nprocs());
      DistributedVector<double> x(p, dist);
      x.set_from([](std::size_t g) { return static_cast<double>(g); });
      (void)hpfcg::hpf::dot_product(x, x);
      (void)x.to_global();
      p.barrier();
    });
    EXPECT_EQ(rt->total_stats().messages_sent,
              rt->total_stats().messages_received);
  }
}

// ---- deadlock watchdog -------------------------------------------------

TEST(CheckWatchdog, CrossedReceivesDiagnosedNotHung) {
  const auto saved = check::watchdog_timeout_ms();
  check::set_watchdog_timeout_ms(250);
  const std::string msg = failure_message(2, [](Process& p) {
    // Classic deadlock: both ranks receive first, nobody has sent.
    (void)p.recv_value<int>(1 - p.rank(), /*tag=*/9);
  });
  check::set_watchdog_timeout_ms(saved);
  EXPECT_NE(msg.find("suspected deadlock"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0: blocked in recv(src=1, tag=9)"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rank 1: blocked in recv(src=0, tag=9)"),
            std::string::npos)
      << msg;
}

// ---- teardown audit ----------------------------------------------------

TEST(CheckTeardownAudit, UnreceivedMessageNamesReceiverSenderAndTag) {
  const std::string msg = failure_message(2, [](Process& p) {
    if (p.rank() == 0) p.send_value<int>(1, /*tag=*/42, 7);
    // rank 1 returns without receiving: the message leaks.
  });
  EXPECT_NE(msg.find("teardown audit failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1 mailbox holds 1 unreceived message"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("from rank 0, tag 42, 4 bytes"), std::string::npos)
      << msg;
}

TEST(CheckTeardownAudit, LeakedPrivateRegionReported) {
  const std::string msg = failure_message(2, [](Process& p) {
    PrivateArray<double> q(p, 16);
    q[0] = 1.0;
    // Region neither merged nor discarded: the update never publishes.
  });
  EXPECT_NE(msg.find("teardown audit failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("leaked a private region"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
}

// ---- ownership conformance --------------------------------------------

TEST(CheckOwnership, OutOfShardWriteNamesOffenderAndOwner) {
  const std::string msg = failure_message(4, [](Process& p) {
    DistributedVector<double> x(p, block_dist(16, p.nprocs()));
    if (p.rank() == 3) {
      x.at_global(0) = 1.0;  // global index 0 is owned by rank 0
    }
    p.barrier();
  });
  EXPECT_NE(msg.find("ownership violation"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out-of-shard write"), std::string::npos) << msg;
  EXPECT_NE(msg.find("owned by rank 0"), std::string::npos) << msg;
}

TEST(CheckOwnership, WriteAfterMergeTrapped) {
  const std::string msg = failure_message(2, [](Process& p) {
    PrivateArray<double> q(p, 8);
    q[3] = 1.0;
    (void)q.merge_replicated();
    if (p.rank() == 1) q[3] = 2.0;  // lost update: merge already happened
  });
  EXPECT_NE(msg.find("merge-before-publish violation"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
}

TEST(CheckOwnership, DivergentReplicatedMatrixNamesRank) {
  const std::string msg = failure_message(2, [](Process& p) {
    const std::size_t n = 8;
    // SPMD divergence: rank 1 assembles a different "replicated" matrix,
    // so every sweep would silently compute with inconsistent data.
    const double diag = p.rank() == 1 ? 5.0 : 2.0;
    auto a = hpfcg::sparse::tridiagonal(n, diag, -1.0);
    auto A = hpfcg::sparse::DistCsr<double>::row_aligned(
        p, a, block_dist(n, p.nprocs()));
    (void)A;
  });
  EXPECT_NE(msg.find("replicated_build"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("but rank 0"), std::string::npos) << msg;
}

// ---- side-channel discipline ------------------------------------------

TEST(CheckSideChannel, EnablingCheckPerturbsNoCounters) {
  const auto workload = [](Process& p) {
    const std::size_t n = 96;
    auto dist = block_dist(n, p.nprocs());
    DistributedVector<double> x(p, dist), y(p, dist);
    x.set_from([](std::size_t g) { return static_cast<double>(g % 7); });
    hpfcg::hpf::fill(y, 0.5);
    for (int it = 0; it < 3; ++it) {
      hpfcg::hpf::axpy(1.5, x, y);
      (void)hpfcg::hpf::dot_product(x, y);
      (void)y.to_global();
      p.barrier();
    }
  };
  for (int np : hpfcg_test::test_machine_sizes()) {
    hpfcg::msg::Stats off, on;
    {
      check::ScopedEnable disable(false);
      off = hpfcg_test::run_spmd(np, workload)->total_stats();
    }
    {
      check::ScopedEnable enable(true);
      on = hpfcg_test::run_spmd(np, workload)->total_stats();
    }
    EXPECT_EQ(off.messages_sent, on.messages_sent) << "np=" << np;
    EXPECT_EQ(off.bytes_sent, on.bytes_sent) << "np=" << np;
    EXPECT_EQ(off.messages_received, on.messages_received) << "np=" << np;
    EXPECT_EQ(off.bytes_received, on.bytes_received) << "np=" << np;
    EXPECT_EQ(off.flops, on.flops) << "np=" << np;
    EXPECT_EQ(off.barriers, on.barriers) << "np=" << np;
    EXPECT_EQ(off.collectives, on.collectives) << "np=" << np;
    EXPECT_EQ(off.reductions, on.reductions) << "np=" << np;
    EXPECT_EQ(off.reduction_values, on.reduction_values) << "np=" << np;
    EXPECT_DOUBLE_EQ(off.modeled_comm_seconds, on.modeled_comm_seconds);
    EXPECT_DOUBLE_EQ(off.modeled_compute_seconds, on.modeled_compute_seconds);
    EXPECT_DOUBLE_EQ(off.modeled_wait_seconds, on.modeled_wait_seconds);
  }
}

}  // namespace
