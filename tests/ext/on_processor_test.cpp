// ON PROCESSOR(f(i)) iteration mapping (Section 5.1).

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "hpfcg/ext/on_processor.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "spmd_test_util.hpp"

using hpfcg::ext::BlockMap;
using hpfcg::ext::CyclicMap;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

TEST(OnProcessor, EveryIterationRunsOnExactlyTheMappedRank) {
  const std::size_t n = 37;
  for (const int np : test_machine_sizes()) {
    std::vector<int> executed_by(n, -1);
    std::mutex mu;
    run_spmd(np, [&](Process& p) {
      hpfcg::ext::on_processor(
          p, n, [np](std::size_t i) { return static_cast<int>((i * 3) % np); },
          [&](std::size_t i) {
            std::lock_guard<std::mutex> lock(mu);
            EXPECT_EQ(executed_by[i], -1) << "iteration ran twice";
            executed_by[i] = p.rank();
          });
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(executed_by[i], static_cast<int>((i * 3) % np)) << "np=" << np;
    }
  }
}

TEST(OnProcessor, BlockMapMatchesBlockDistribution) {
  const std::size_t n = 26;
  const int np = 4;
  const BlockMap map{n, np};
  const auto dist = hpfcg::hpf::Distribution::block(n, np);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(map(i), dist.owner(i)) << "i=" << i;
  }
}

TEST(OnProcessor, CyclicMapMatchesCyclicDistribution) {
  const std::size_t n = 19;
  const int np = 3;
  const CyclicMap map{np};
  const auto dist = hpfcg::hpf::Distribution::cyclic(n, np);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(map(i), dist.owner(i)) << "i=" << i;
  }
}

TEST(OnProcessor, OutOfMachineMappingRejected) {
  run_spmd(2, [](Process& p) {
    EXPECT_THROW(hpfcg::ext::on_processor(
                     p, 4, [](std::size_t) { return 5; },
                     [](std::size_t) {}),
                 hpfcg::util::Error);
  });
}

TEST(OnProcessor, NoRuntimeCommunication) {
  // The proposal's point: the mapping is evaluated locally, "without any
  // runtime overhead" — no inspector messages.
  auto rt = run_spmd(4, [](Process& p) {
    hpfcg::ext::on_processor(p, 100, CyclicMap{4}, [](std::size_t) {});
  });
  EXPECT_EQ(rt->total_stats().messages_sent, 0u);
}

}  // namespace
