// PRIVATE ... WITH MERGE / DISCARD (Section 5.1, Figure 5).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hpfcg/ext/private_array.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "spmd_test_util.hpp"

using hpfcg::ext::PrivateArray;
using hpfcg::ext::PrivateEnd;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

class PrivateArrayTest : public ::testing::TestWithParam<int> {};

TEST_P(PrivateArrayTest, MergePlusEqualsSerialAccumulation) {
  const int np = GetParam();
  const std::size_t n = 33;
  run_spmd(np, [&](Process& p) {
    PrivateArray<double> q(p, n);
    // Every rank accumulates rank-dependent contributions; the merged value
    // must equal the sum over ranks.
    for (std::size_t i = 0; i < n; ++i) {
      q[i] += static_cast<double>((p.rank() + 1) * static_cast<int>(i));
    }
    const auto merged = q.merge_replicated();
    const double rank_sum = np * (np + 1) / 2.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(merged[i], rank_sum * static_cast<double>(i));
    }
    EXPECT_EQ(q.ended(), PrivateEnd::kMerged);
  });
}

TEST_P(PrivateArrayTest, MergeIntoDistributedTarget) {
  const int np = GetParam();
  const std::size_t n = 21;
  run_spmd(np, [&](Process& p) {
    DistributedVector<double> target(p, share(Distribution::block(n, np)));
    PrivateArray<double> q(p, n);
    for (std::size_t i = 0; i < n; ++i) q[i] = 1.0;  // each rank adds 1
    q.merge_into(target);
    for (std::size_t l = 0; l < target.local().size(); ++l) {
      EXPECT_DOUBLE_EQ(target.local()[l], static_cast<double>(np));
    }
  });
}

TEST_P(PrivateArrayTest, MergeWithMaxOperator) {
  const int np = GetParam();
  run_spmd(np, [&](Process& p) {
    PrivateArray<int> q(p, 4, 0);
    q[0] = p.rank();
    q[1] = -p.rank();
    const auto merged =
        q.merge_replicated([](int a, int b) { return a > b ? a : b; });
    EXPECT_EQ(merged[0], np - 1);
    EXPECT_EQ(merged[1], 0);
  });
}

TEST_P(PrivateArrayTest, DiscardCommunicatesNothing) {
  const int np = GetParam();
  auto rt = run_spmd(np, [&](Process& p) {
    PrivateArray<double> q(p, 100);
    q[0] = 42.0;
    q.discard();
    EXPECT_EQ(q.ended(), PrivateEnd::kDiscarded);
  });
  EXPECT_EQ(rt->total_stats().messages_sent, 0u);
}

TEST_P(PrivateArrayTest, DoubleEndIsRejected) {
  const int np = GetParam();
  run_spmd(np, [&](Process& p) {
    PrivateArray<double> q(p, 8);
    q.discard();
    EXPECT_THROW(q.discard(), hpfcg::util::Error);
    PrivateArray<double> q2(p, 8);
    (void)q2.merge_replicated();
    EXPECT_THROW((void)q2.merge_replicated(), hpfcg::util::Error);
  });
}

TEST_P(PrivateArrayTest, Figure5ColumnSweepPattern) {
  // The exact pattern of Figure 5: each processor sweeps its column range
  // j=l:u, accumulating A(:,j)*p(j) into PRV$q, then the copies merge into
  // the global q.  Verified against a serial column sweep.
  const int np = GetParam();
  const std::size_t n = 24;
  const auto a_entry = [](std::size_t i, std::size_t j) {
    return static_cast<double>((i * 5 + j * 3) % 7) - 2.0;
  };
  const auto p_entry = [](std::size_t j) {
    return 0.5 * static_cast<double>(j) - 3.0;
  };
  std::vector<double> q_ref(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) q_ref[i] += a_entry(i, j) * p_entry(j);
  }

  run_spmd(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, np));
    DistributedVector<double> pv(proc, dist), qv(proc, dist);
    pv.set_from(p_entry);
    PrivateArray<double> q_priv(proc, n);
    // j = l:u — the owned column range.
    for (std::size_t lc = 0; lc < pv.local().size(); ++lc) {
      const std::size_t j = pv.global_of(lc);
      const double pj = pv.local()[lc];
      for (std::size_t i = 0; i < n; ++i) q_priv[i] += a_entry(i, j) * pj;
    }
    q_priv.merge_into(qv);  // MERGE PRV$q's into q
    const auto full = qv.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-10);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, PrivateArrayTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
