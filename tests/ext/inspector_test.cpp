// Inspector/executor gather and scatter-add schedules: correctness against
// serial semantics, schedule reuse, duplicate handling, and the CSC matvec
// expressed through a ScatterAddSchedule.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hpfcg/ext/inspector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/sparse/convert.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

using hpfcg::ext::GatherSchedule;
using hpfcg::ext::ScatterAddSchedule;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

class InspectorTest : public ::testing::TestWithParam<int> {};

TEST_P(InspectorTest, GatherMatchesSerialVectorSubscript) {
  const int np = GetParam();
  const std::size_t n = 61;
  run_spmd(np, [&](Process& p) {
    auto src_dist = share(Distribution::block(n, np));
    auto res_dist = share(Distribution::cyclic(n, np));  // deliberately
                                                         // different
    DistributedVector<double> x(p, src_dist);
    DistributedVector<std::size_t> idx(p, res_dist);
    DistributedVector<double> result(p, res_dist);
    x.set_from([](std::size_t g) { return 10.0 * static_cast<double>(g); });
    idx.set_from([n](std::size_t g) { return (g * 7 + 3) % n; });

    GatherSchedule<double> sched(p, idx, src_dist);
    sched.execute(x, result);

    for (std::size_t l = 0; l < result.local().size(); ++l) {
      const std::size_t g = result.global_of(l);
      EXPECT_DOUBLE_EQ(result.local()[l],
                       10.0 * static_cast<double>((g * 7 + 3) % n));
    }
  });
}

TEST_P(InspectorTest, ScatterAddMatchesSerialAccumulation) {
  const int np = GetParam();
  const std::size_t n = 40;
  run_spmd(np, [&](Process& p) {
    auto dist = share(Distribution::block(n, np));
    DistributedVector<double> x(p, dist), y(p, dist);
    DistributedVector<std::size_t> idx(p, dist);
    // Many-to-one: every index maps to g % 8 — heavy duplication.
    idx.set_from([](std::size_t g) { return g % 8; });
    x.set_from([](std::size_t g) { return static_cast<double>(g); });
    hpfcg::hpf::fill(y, 0.0);

    ScatterAddSchedule<double> sched(p, idx, dist);
    sched.execute(x, y);

    // Serial oracle.
    std::vector<double> expect(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      expect[i % 8] += static_cast<double>(i);
    }
    const auto full = y.to_global();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(full[i], expect[i]) << "i=" << i;
    }
  });
}

TEST_P(InspectorTest, ScheduleReuseCutsInspectorTraffic) {
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "no communication on one processor";
  const std::size_t n = 256;
  const int sweeps = 8;

  const auto bytes_for = [&](bool reuse) {
    auto rt = run_spmd(np, [&](Process& p) {
      auto dist = share(Distribution::block(n, np));
      DistributedVector<double> x(p, dist), result(p, dist);
      DistributedVector<std::size_t> idx(p, dist);
      idx.set_from([n](std::size_t g) { return (g * 13 + 5) % n; });
      x.set_from([](std::size_t g) { return static_cast<double>(g); });
      if (reuse) {
        GatherSchedule<double> sched(p, idx, dist);
        for (int s = 0; s < sweeps; ++s) sched.execute(x, result);
      } else {
        for (int s = 0; s < sweeps; ++s) {
          GatherSchedule<double> sched(p, idx, dist);  // re-inspect
          sched.execute(x, result);
        }
      }
    });
    return rt->total_stats().bytes_sent;
  };
  // Re-inspecting every sweep moves the index lists 8x; reuse moves them
  // once — the Ponnusamy/Saltz/Choudhary claim the paper cites.
  EXPECT_LT(bytes_for(true), bytes_for(false));
}

TEST_P(InspectorTest, CscMatvecViaScatterAdd) {
  // The paper's Scenario-2 inner loop q(row(k)) += a(k)*p(j), written as a
  // scatter-add schedule over the nnz index space.
  const int np = GetParam();
  const auto csr = hpfcg::sparse::laplacian_2d(6, 7);
  const auto csc = hpfcg::sparse::csr_to_csc(csr);
  const std::size_t n = csc.n_cols();
  const std::size_t nz = csc.nnz();

  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) {
    p_full[g] = 0.3 * static_cast<double>(g % 7) - 1.0;
  }
  csc.matvec(p_full, q_ref);

  run_spmd(np, [&](Process& proc) {
    auto vec_dist = share(Distribution::block(n, np));
    auto nnz_dist = share(Distribution::block(nz, np));
    // Distributed nnz-space arrays: values a(k)*p(col_of(k)) and targets
    // row(k).
    DistributedVector<double> contrib(proc, nnz_dist);
    DistributedVector<std::size_t> row_idx(proc, nnz_dist);
    // col_of(k): reconstruct per-entry column from col_ptr.
    std::vector<std::size_t> col_of(nz);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = csc.col_ptr()[j]; k < csc.col_ptr()[j + 1]; ++k) {
        col_of[k] = j;
      }
    }
    contrib.set_from([&](std::size_t k) {
      return csc.values()[k] * p_full[col_of[k]];
    });
    row_idx.set_from([&](std::size_t k) { return csc.row_idx()[k]; });

    DistributedVector<double> q(proc, vec_dist);
    hpfcg::hpf::fill(q, 0.0);
    ScatterAddSchedule<double> sched(proc, row_idx, vec_dist);
    sched.execute(contrib, q);

    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

TEST(Inspector, DistributionMismatchRejected) {
  run_spmd(2, [](Process& p) {
    auto d1 = share(Distribution::block(10, 2));
    auto d2 = share(Distribution::cyclic(10, 2));
    DistributedVector<std::size_t> idx(p, d1);
    idx.set_from([](std::size_t g) { return g; });
    DistributedVector<double> x(p, d2), result(p, d1);
    GatherSchedule<double> sched(p, idx, d1);
    EXPECT_THROW(sched.execute(x, result), hpfcg::util::Error);  // x wrong
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, InspectorTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
