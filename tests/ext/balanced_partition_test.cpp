// Load-balancing partitioners (Section 5.2.2): the optimal contiguous
// bottleneck partition must never be worse than the greedy heuristic, both
// must respect atom boundaries, and on irregular matrices both must beat
// the uniform ATOM:BLOCK distribution.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "hpfcg/ext/balanced_partition.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/rng.hpp"

using hpfcg::ext::atom_weights;
using hpfcg::ext::bottleneck;
using hpfcg::ext::greedy_nnz_cuts;
using hpfcg::ext::optimal_nnz_cuts;
using hpfcg::ext::Partitioner;

namespace {

/// Exact optimum by exhaustive search (small inputs only).
std::size_t brute_force_bottleneck(const std::vector<std::size_t>& w, int np) {
  const std::size_t n = w.size();
  if (np <= 1) return std::accumulate(w.begin(), w.end(), std::size_t{0});
  std::size_t best = static_cast<std::size_t>(-1);
  // Choose np-1 cut positions in [0, n]; recursion keeps it simple.
  std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, 0);
  cuts.back() = n;
  const std::function<void(int, std::size_t)> rec = [&](int part,
                                                        std::size_t from) {
    if (part == np) {
      best = std::min(best, bottleneck(w, cuts));
      return;
    }
    for (std::size_t c = from; c <= n; ++c) {
      cuts[static_cast<std::size_t>(part)] = c;
      rec(part + 1, c);
    }
  };
  rec(1, 0);
  return best;
}

TEST(BalancedPartition, AtomWeightsFromPointerArray) {
  const std::vector<std::size_t> ptr = {0, 2, 2, 7, 9};
  EXPECT_EQ(atom_weights(ptr), (std::vector<std::size_t>{2, 0, 5, 2}));
}

TEST(BalancedPartition, OptimalMatchesBruteForceOnRandomInstances) {
  hpfcg::util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 3 + rng.below(9);       // 3..11 atoms
    const int np = 1 + static_cast<int>(rng.below(5));  // 1..5 parts
    std::vector<std::size_t> w(n);
    for (auto& x : w) x = rng.below(20);
    const auto cuts = optimal_nnz_cuts(w, np);
    EXPECT_EQ(bottleneck(w, cuts), brute_force_bottleneck(w, np))
        << "trial " << trial << " n=" << n << " np=" << np;
  }
}

TEST(BalancedPartition, OptimalNeverWorseThanGreedy) {
  hpfcg::util::Xoshiro256 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 50 + rng.below(200);
    const int np = 2 + static_cast<int>(rng.below(15));
    std::vector<std::size_t> w(n);
    for (auto& x : w) x = rng.below(100);
    const auto greedy = greedy_nnz_cuts(w, np);
    const auto opt = optimal_nnz_cuts(w, np);
    EXPECT_LE(bottleneck(w, opt), bottleneck(w, greedy)) << "trial " << trial;
    // And never better than the averaging lower bound.
    const std::size_t total = std::accumulate(w.begin(), w.end(),
                                              std::size_t{0});
    const std::size_t lower =
        (total + static_cast<std::size_t>(np) - 1) /
        static_cast<std::size_t>(np);
    EXPECT_GE(bottleneck(w, opt), std::min(lower, total));
  }
}

TEST(BalancedPartition, CutsAreWellFormed) {
  const std::vector<std::size_t> w = {5, 1, 1, 1, 8, 1, 1};
  for (const auto& cuts : {greedy_nnz_cuts(w, 3), optimal_nnz_cuts(w, 3)}) {
    ASSERT_EQ(cuts.size(), 4u);
    EXPECT_EQ(cuts.front(), 0u);
    EXPECT_EQ(cuts.back(), w.size());
    EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
  }
}

TEST(BalancedPartition, MorePartsThanAtomsYieldsEmptyParts) {
  const std::vector<std::size_t> w = {4, 4};
  const auto cuts = optimal_nnz_cuts(w, 5);
  ASSERT_EQ(cuts.size(), 6u);
  EXPECT_EQ(bottleneck(w, cuts), 4u);
}

TEST(BalancedPartition, BalancedBeatsUniformOnPowerlaw) {
  // The Section 5.2.2 claim: with irregular sparsity, the load-balancing
  // partitioner evens out the nonzeros that uniform atom blocks cannot.
  const auto a = hpfcg::sparse::powerlaw_spd(600, 2, 5, 150, 17);
  const auto w = atom_weights(a.row_ptr());
  const int np = 8;
  const auto uniform =
      hpfcg::ext::partition(a.row_ptr(), np, Partitioner::kUniformAtomBlock);
  const auto balanced =
      hpfcg::ext::partition(a.row_ptr(), np, Partitioner::kBalancedOptimal);

  const auto max_nnz = [&](const hpfcg::ext::AtomPartition& part) {
    std::size_t worst = 0;
    for (int r = 0; r < np; ++r) {
      worst = std::max(worst, part.nnz_dist->local_count(r));
    }
    return worst;
  };
  EXPECT_LT(max_nnz(balanced), max_nnz(uniform));
  // Balanced bottleneck is within 2x of the averaging lower bound (hubs
  // permitting — a single hub row bounds it from below).
  const std::size_t total = a.nnz();
  EXPECT_LE(max_nnz(balanced),
            std::max(2 * total / np, *std::max_element(w.begin(), w.end())));
}

TEST(BalancedPartition, PartitionProducesConsistentPair) {
  const auto a = hpfcg::sparse::random_spd(100, 5, 3);
  for (const auto which :
       {Partitioner::kUniformAtomBlock, Partitioner::kBalancedGreedy,
        Partitioner::kBalancedOptimal}) {
    const auto part = hpfcg::ext::partition(a.row_ptr(), 4, which);
    EXPECT_EQ(part.atom_dist->size(), a.n_rows());
    EXPECT_EQ(part.nnz_dist->size(), a.nnz());
    EXPECT_EQ(
        hpfcg::ext::count_split_atoms(a.row_ptr(), *part.nnz_dist), 0u);
    // nnz ownership follows atom ownership.
    for (std::size_t row = 0; row < a.n_rows(); ++row) {
      for (std::size_t k = a.row_ptr()[row]; k < a.row_ptr()[row + 1]; ++k) {
        EXPECT_EQ(part.nnz_dist->owner(k), part.atom_dist->owner(row));
      }
    }
    EXPECT_NE(hpfcg::ext::partitioner_name(which), nullptr);
  }
}

}  // namespace
