// Load-balancing partitioners (Section 5.2.2): the optimal contiguous
// bottleneck partition must never be worse than the greedy heuristic, both
// must respect atom boundaries, and on irregular matrices both must beat
// the uniform ATOM:BLOCK distribution.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "hpfcg/ext/balanced_partition.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/rng.hpp"

using hpfcg::ext::atom_weights;
using hpfcg::ext::bottleneck;
using hpfcg::ext::greedy_nnz_cuts;
using hpfcg::ext::optimal_nnz_cuts;
using hpfcg::ext::Partitioner;

namespace {

/// Exact optimum by exhaustive search (small inputs only).
std::size_t brute_force_bottleneck(const std::vector<std::size_t>& w, int np) {
  const std::size_t n = w.size();
  if (np <= 1) return std::accumulate(w.begin(), w.end(), std::size_t{0});
  std::size_t best = static_cast<std::size_t>(-1);
  // Choose np-1 cut positions in [0, n]; recursion keeps it simple.
  std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, 0);
  cuts.back() = n;
  const std::function<void(int, std::size_t)> rec = [&](int part,
                                                        std::size_t from) {
    if (part == np) {
      best = std::min(best, bottleneck(w, cuts));
      return;
    }
    for (std::size_t c = from; c <= n; ++c) {
      cuts[static_cast<std::size_t>(part)] = c;
      rec(part + 1, c);
    }
  };
  rec(1, 0);
  return best;
}

TEST(BalancedPartition, AtomWeightsFromPointerArray) {
  const std::vector<std::size_t> ptr = {0, 2, 2, 7, 9};
  EXPECT_EQ(atom_weights(ptr), (std::vector<std::size_t>{2, 0, 5, 2}));
}

TEST(BalancedPartition, OptimalMatchesBruteForceOnRandomInstances) {
  hpfcg::util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 3 + rng.below(9);       // 3..11 atoms
    const int np = 1 + static_cast<int>(rng.below(5));  // 1..5 parts
    std::vector<std::size_t> w(n);
    for (auto& x : w) x = rng.below(20);
    const auto cuts = optimal_nnz_cuts(w, np);
    EXPECT_EQ(bottleneck(w, cuts), brute_force_bottleneck(w, np))
        << "trial " << trial << " n=" << n << " np=" << np;
  }
}

TEST(BalancedPartition, OptimalNeverWorseThanGreedy) {
  hpfcg::util::Xoshiro256 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 50 + rng.below(200);
    const int np = 2 + static_cast<int>(rng.below(15));
    std::vector<std::size_t> w(n);
    for (auto& x : w) x = rng.below(100);
    const auto greedy = greedy_nnz_cuts(w, np);
    const auto opt = optimal_nnz_cuts(w, np);
    EXPECT_LE(bottleneck(w, opt), bottleneck(w, greedy)) << "trial " << trial;
    // And never better than the averaging lower bound.
    const std::size_t total = std::accumulate(w.begin(), w.end(),
                                              std::size_t{0});
    const std::size_t lower =
        (total + static_cast<std::size_t>(np) - 1) /
        static_cast<std::size_t>(np);
    EXPECT_GE(bottleneck(w, opt), std::min(lower, total));
  }
}

TEST(BalancedPartition, CutsAreWellFormed) {
  const std::vector<std::size_t> w = {5, 1, 1, 1, 8, 1, 1};
  for (const auto& cuts : {greedy_nnz_cuts(w, 3), optimal_nnz_cuts(w, 3)}) {
    ASSERT_EQ(cuts.size(), 4u);
    EXPECT_EQ(cuts.front(), 0u);
    EXPECT_EQ(cuts.back(), w.size());
    EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
  }
}

TEST(BalancedPartition, MorePartsThanAtomsYieldsEmptyParts) {
  const std::vector<std::size_t> w = {4, 4};
  const auto cuts = optimal_nnz_cuts(w, 5);
  ASSERT_EQ(cuts.size(), 6u);
  EXPECT_EQ(bottleneck(w, cuts), 4u);
}

TEST(BalancedPartition, GreedyKeepsEmptyRowTailTogether) {
  // Regression: once the remaining weight hits zero the per-part target is
  // zero too, and every empty row used to satisfy `acc >= target` — one cut
  // per empty row, fragmenting an all-empty tail across processors.  The
  // whole tail must instead stay with the next part, leaving the remaining
  // parts empty.
  const std::vector<std::size_t> w = {6, 0, 0, 0, 0};
  const auto cuts = greedy_nnz_cuts(w, 4);
  EXPECT_EQ(cuts, (std::vector<std::size_t>{0, 1, 5, 5, 5}));

  // Same shape with more parts than rows after the weighted prefix.
  const std::vector<std::size_t> w2 = {3, 0, 0, 0, 0, 0};
  EXPECT_EQ(greedy_nnz_cuts(w2, 3), (std::vector<std::size_t>{0, 1, 6, 6}));

  // All-zero input degenerates the same way: everything in part 0.
  const std::vector<std::size_t> zeros(7, 0);
  const auto zcuts = greedy_nnz_cuts(zeros, 4);
  EXPECT_EQ(zcuts, (std::vector<std::size_t>{0, 7, 7, 7, 7}));
  EXPECT_EQ(bottleneck(zeros, zcuts), 0u);

  // Interior zero runs (weight still to come) are unaffected by the fix:
  // the target stays positive, so cuts still land inside the run.
  const std::vector<std::size_t> w3 = {4, 0, 0, 0, 4};
  const auto c3 = greedy_nnz_cuts(w3, 2);
  EXPECT_EQ(bottleneck(w3, c3), 4u);
}

TEST(BalancedPartition, OptimalBottleneckEqualsBinarySearchedCap) {
  // Property test: for random weights and every NP in 1..8, the emitted
  // cuts are well formed and their bottleneck equals the smallest cap for
  // which a <= NP-part contiguous cover exists (the binary search's answer
  // is tight in both directions).
  const auto min_feasible_cap = [](const std::vector<std::size_t>& w,
                                   int np) {
    const auto feasible = [&](std::size_t cap) {
      int parts = 1;
      std::size_t acc = 0;
      for (const std::size_t x : w) {
        if (x > cap) return false;
        if (acc + x > cap) {
          if (++parts > np) return false;
          acc = x;
        } else {
          acc += x;
        }
      }
      return true;
    };
    std::size_t lo = 0, hi = 0;
    for (const std::size_t x : w) {
      lo = std::max(lo, x);
      hi += x;
    }
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (feasible(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };

  hpfcg::util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.below(60);
    std::vector<std::size_t> w(n);
    for (auto& x : w) x = rng.below(50);
    for (int np = 1; np <= 8; ++np) {
      const auto cuts = optimal_nnz_cuts(w, np);
      ASSERT_EQ(cuts.size(), static_cast<std::size_t>(np) + 1);
      EXPECT_EQ(cuts.front(), 0u);
      EXPECT_EQ(cuts.back(), n);
      EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
      EXPECT_EQ(bottleneck(w, cuts), min_feasible_cap(w, np))
          << "trial " << trial << " n=" << n << " np=" << np;
    }
  }

  // Degenerate corners the random sweep may miss.
  for (int np = 1; np <= 8; ++np) {
    const std::vector<std::size_t> zeros(5, 0);
    EXPECT_EQ(bottleneck(zeros, optimal_nnz_cuts(zeros, np)), 0u);
    // One heavy row dominates: the optimum is exactly that row's weight.
    std::vector<std::size_t> heavy(9, 1);
    heavy[4] = 1000;
    EXPECT_EQ(bottleneck(heavy, optimal_nnz_cuts(heavy, np)),
              np == 1 ? 1008u : 1000u + (np == 2 ? 4u : 0u));
  }
}

TEST(BalancedPartition, BalancedBeatsUniformOnPowerlaw) {
  // The Section 5.2.2 claim: with irregular sparsity, the load-balancing
  // partitioner evens out the nonzeros that uniform atom blocks cannot.
  const auto a = hpfcg::sparse::powerlaw_spd(600, 2, 5, 150, 17);
  const auto w = atom_weights(a.row_ptr());
  const int np = 8;
  const auto uniform =
      hpfcg::ext::partition(a.row_ptr(), np, Partitioner::kUniformAtomBlock);
  const auto balanced =
      hpfcg::ext::partition(a.row_ptr(), np, Partitioner::kBalancedOptimal);

  const auto max_nnz = [&](const hpfcg::ext::AtomPartition& part) {
    std::size_t worst = 0;
    for (int r = 0; r < np; ++r) {
      worst = std::max(worst, part.nnz_dist->local_count(r));
    }
    return worst;
  };
  EXPECT_LT(max_nnz(balanced), max_nnz(uniform));
  // Balanced bottleneck is within 2x of the averaging lower bound (hubs
  // permitting — a single hub row bounds it from below).
  const std::size_t total = a.nnz();
  EXPECT_LE(max_nnz(balanced),
            std::max(2 * total / np, *std::max_element(w.begin(), w.end())));
}

TEST(BalancedPartition, PartitionProducesConsistentPair) {
  const auto a = hpfcg::sparse::random_spd(100, 5, 3);
  for (const auto which :
       {Partitioner::kUniformAtomBlock, Partitioner::kBalancedGreedy,
        Partitioner::kBalancedOptimal}) {
    const auto part = hpfcg::ext::partition(a.row_ptr(), 4, which);
    EXPECT_EQ(part.atom_dist->size(), a.n_rows());
    EXPECT_EQ(part.nnz_dist->size(), a.nnz());
    EXPECT_EQ(
        hpfcg::ext::count_split_atoms(a.row_ptr(), *part.nnz_dist), 0u);
    // nnz ownership follows atom ownership.
    for (std::size_t row = 0; row < a.n_rows(); ++row) {
      for (std::size_t k = a.row_ptr()[row]; k < a.row_ptr()[row + 1]; ++k) {
        EXPECT_EQ(part.nnz_dist->owner(k), part.atom_dist->owner(row));
      }
    }
    EXPECT_NE(hpfcg::ext::partitioner_name(which), nullptr);
  }
}

}  // namespace
