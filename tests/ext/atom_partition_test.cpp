// INDIVISABLE atoms and ATOM:BLOCK / ATOM:CYCLIC distributions
// (Section 5.2.1): no atom may ever be split across processors, and the
// cut-point representation must stay NP-sized.

#include <gtest/gtest.h>

#include <vector>

#include "hpfcg/ext/atom_partition.hpp"
#include "hpfcg/sparse/generators.hpp"

using hpfcg::ext::atom_block;
using hpfcg::ext::atom_cyclic;
using hpfcg::ext::count_split_atoms;
using hpfcg::hpf::Distribution;

namespace {

class AtomPartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(AtomPartitionTest, AtomBlockNeverSplitsAnAtom) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::powerlaw_spd(200, 3, 3, 60, 11);
  const auto part = atom_block(a.row_ptr(), np);
  EXPECT_EQ(count_split_atoms(a.row_ptr(), *part.nnz_dist), 0u);
  // The INDIVISABLE representation: np+1 replicated cut points, "a small
  // array in the size of the number of processors".
  EXPECT_EQ(part.nnz_dist->cuts().size(), static_cast<std::size_t>(np) + 1);
  EXPECT_EQ(part.atom_dist->size(), a.n_rows());
  EXPECT_EQ(part.nnz_dist->size(), a.nnz());
}

TEST_P(AtomPartitionTest, AtomBlockMatchesHpfBlockOverAtoms) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::laplacian_2d(10, 10);
  const auto part = atom_block(a.row_ptr(), np);
  const auto hpf_block = Distribution::block(a.n_rows(), np);
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    EXPECT_EQ(part.atom_dist->owner(i), hpf_block.owner(i));
  }
}

TEST_P(AtomPartitionTest, NnzOwnershipFollowsAtomOwnership) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(120, 5, 23);
  for (const auto& part : {atom_block(a.row_ptr(), np)}) {
    for (std::size_t row = 0; row < a.n_rows(); ++row) {
      const int atom_owner = part.atom_dist->owner(row);
      for (std::size_t k = a.row_ptr()[row]; k < a.row_ptr()[row + 1]; ++k) {
        EXPECT_EQ(part.nnz_dist->owner(k), atom_owner);
      }
    }
  }
}

TEST_P(AtomPartitionTest, AtomCyclicNeverSplitsAnAtom) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::powerlaw_spd(150, 2, 2, 40, 5);
  const auto part = atom_cyclic(a.row_ptr(), np);
  EXPECT_EQ(count_split_atoms(a.row_ptr(), *part.nnz_dist), 0u);
  // Atom ownership is round-robin and nnz ownership follows it.
  for (std::size_t row = 0; row < a.n_rows(); ++row) {
    EXPECT_EQ(part.atom_dist->owner(row),
              static_cast<int>(row % static_cast<std::size_t>(np)));
    for (std::size_t k = a.row_ptr()[row]; k < a.row_ptr()[row + 1]; ++k) {
      EXPECT_EQ(part.nnz_dist->owner(k), part.atom_dist->owner(row));
    }
  }
}

TEST_P(AtomPartitionTest, FlatHpfBlockDoesSplitAtoms) {
  // The HPF-1 baseline the extension fixes: BLOCK over the nnz space splits
  // rows whenever a cut lands inside one.  25 atoms of weight 4 guarantee
  // at least one of BLOCK's cut points (multiples of ceil(100/np)) falls
  // strictly inside an atom for every tested np.
  const int np = GetParam();
  if (np == 1) GTEST_SKIP() << "one processor cannot split anything";
  std::vector<std::size_t> ptr(26);
  for (std::size_t i = 0; i < ptr.size(); ++i) ptr[i] = 4 * i;
  const auto flat = Distribution::block(ptr.back(), np);
  EXPECT_GT(count_split_atoms(ptr, flat), 0u);
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, AtomPartitionTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(AtomPartition, EmptyAtomsAreHandled) {
  // Pointer array with empty atoms (rows with no nonzeros).
  const std::vector<std::size_t> ptr = {0, 0, 3, 3, 5, 5};
  const auto part = atom_block(ptr, 2);
  EXPECT_EQ(count_split_atoms(ptr, *part.nnz_dist), 0u);
  EXPECT_EQ(part.atom_dist->size(), 5u);
  EXPECT_EQ(part.nnz_dist->size(), 5u);
}

TEST(AtomPartition, NnzCutsDeriveThroughPointerArray) {
  const std::vector<std::size_t> ptr = {0, 2, 6, 7, 10};
  const auto cuts = hpfcg::ext::nnz_cuts_from_atom_cuts(ptr, {0, 2, 4});
  EXPECT_EQ(cuts, (std::vector<std::size_t>{0, 6, 10}));
}

}  // namespace
