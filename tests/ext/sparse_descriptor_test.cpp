// SPARSE_MATRIX descriptor (Section 5.2.2): trio binding, redistribution
// through partitioners, vector re-alignment, and the locality/caching rule.

#include <gtest/gtest.h>

#include <vector>

#include "hpfcg/ext/sparse_descriptor.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

using hpfcg::ext::Partitioner;
using hpfcg::ext::SparseMatrixCsr;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

double pval(std::size_t g) { return 0.1 * static_cast<double>(g % 13) - 0.5; }

class DescriptorTest : public ::testing::TestWithParam<int> {};

TEST_P(DescriptorTest, MatvecCorrectUnderEveryPartitioner) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::powerlaw_spd(180, 3, 3, 50, 29);
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  a.matvec(p_full, q_ref);

  for (const auto which :
       {Partitioner::kUniformAtomBlock, Partitioner::kBalancedGreedy,
        Partitioner::kBalancedOptimal}) {
    run_spmd(np, [&](Process& proc) {
      SparseMatrixCsr<double> sm(proc, a, which);
      auto p = sm.make_vector();
      auto q = sm.make_vector();
      p.set_from(pval);
      sm.dist().matvec(p, q);
      const auto full = q.to_global();
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(full[i], q_ref[i], 1e-12);
      }
    });
  }
}

TEST_P(DescriptorTest, RedistributeUsingKeepsTrioConsistent) {
  const int np = GetParam();
  const auto a = hpfcg::sparse::powerlaw_spd(150, 2, 4, 40, 31);
  const std::size_t n = a.n_rows();
  std::vector<double> p_full(n), q_ref(n);
  for (std::size_t g = 0; g < n; ++g) p_full[g] = pval(g);
  a.matvec(p_full, q_ref);

  run_spmd(np, [&](Process& proc) {
    SparseMatrixCsr<double> sm(proc, a);  // uniform initially
    EXPECT_EQ(sm.active_partitioner(), Partitioner::kUniformAtomBlock);
    auto p = sm.make_vector();
    p.set_from(pval);

    // !EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
    sm.redistribute_using(Partitioner::kBalancedGreedy);
    EXPECT_EQ(sm.active_partitioner(), Partitioner::kBalancedGreedy);

    // Dependent vectors are re-aligned by the descriptor.
    auto p2 = sm.align_vector(p);
    EXPECT_TRUE(p2.dist() == *sm.row_dist());
    auto q = sm.make_vector();
    sm.dist().matvec(p2, q);
    const auto full = q.to_global();
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], q_ref[i], 1e-12);
  });
}

TEST_P(DescriptorTest, RepeatedSweepsDoNotRefetch) {
  // The descriptor's locality rule: the trio is immutable, so after the
  // first sweep no further trio (or halo-plan) communication happens —
  // every sweep past the first costs exactly the same marginal bytes.
  // Measured as linearity of the steady state: the first sweep may carry
  // one-time setup traffic (the halo inspector's index exchange), but
  // sweeps 2..5 must all cost what sweep 2 cost, and no more than a full
  // first sweep (which would mean re-fetching).
  const int np = GetParam();
  const auto a = hpfcg::sparse::random_spd(90, 5, 41);
  const auto bytes_for = [&](int sweeps) {
    auto rt = run_spmd(np, [&](Process& proc) {
      SparseMatrixCsr<double> sm(proc, a);
      auto p = sm.make_vector();
      auto q = sm.make_vector();
      p.set_from(pval);
      for (int sweep = 0; sweep < sweeps; ++sweep) sm.dist().matvec(p, q);
    });
    return rt->total_stats().bytes_sent;
  };
  const std::uint64_t b1 = bytes_for(1);
  const std::uint64_t b2 = bytes_for(2);
  const std::uint64_t b5 = bytes_for(5);
  const std::uint64_t marginal = b2 - b1;
  EXPECT_EQ(b5 - b1, 4 * marginal);  // sweeps 2..5 all cost the same
  EXPECT_LE(marginal, b1);           // and never more than a first sweep
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, DescriptorTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
