// Detection must be a pure side channel: with HPFCG_RACE on (replay off),
// every Stats counter and modeled cost is bit-identical to a detector-free
// run — the clock stamp rides the envelope struct, never the payload, and
// the wildcard arbitration picks the same oldest-arrival match.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/race/race.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "spmd_test_util.hpp"

namespace race = hpfcg::race;
namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Runtime;
using hpfcg::msg::Stats;

namespace {

/// Assert per-rank Stats equality, field by field.  The pooled/heap split
/// depends on thread scheduling (whether a recycle beat the next draw), so
/// only its sum is compared; everything else must match exactly — modeled
/// doubles included, since both runs execute the same arithmetic.
void expect_identical(const Stats& off, const Stats& on, int rank) {
  SCOPED_TRACE("rank " + std::to_string(rank));
  EXPECT_EQ(off.messages_sent, on.messages_sent);
  EXPECT_EQ(off.messages_received, on.messages_received);
  EXPECT_EQ(off.bytes_sent, on.bytes_sent);
  EXPECT_EQ(off.bytes_received, on.bytes_received);
  EXPECT_EQ(off.flops, on.flops);
  EXPECT_EQ(off.barriers, on.barriers);
  EXPECT_EQ(off.collectives, on.collectives);
  EXPECT_EQ(off.reductions, on.reductions);
  EXPECT_EQ(off.reduction_values, on.reduction_values);
  EXPECT_EQ(off.envelopes_inline, on.envelopes_inline);
  EXPECT_EQ(off.envelopes_pooled + off.envelopes_heap,
            on.envelopes_pooled + on.envelopes_heap);
  EXPECT_EQ(off.modeled_comm_seconds, on.modeled_comm_seconds);
  EXPECT_EQ(off.modeled_compute_seconds, on.modeled_compute_seconds);
  EXPECT_EQ(off.modeled_wait_seconds, on.modeled_wait_seconds);
}

/// Run `body` twice — detection off, then on — and compare per-rank Stats.
void compare_runs(int np, const std::function<void(Process&)>& body) {
  std::unique_ptr<Runtime> off;
  {
    race::ScopedEnable disable(false);
    off = std::make_unique<Runtime>(np);
    off->run(body);
    EXPECT_EQ(off->racer(), nullptr);
  }
  std::unique_ptr<Runtime> on;
  {
    race::ScopedEnable enable(true);
    on = std::make_unique<Runtime>(np);
    on->run(body);
    ASSERT_NE(on->racer(), nullptr);
  }
  for (int r = 0; r < np; ++r) {
    expect_identical(off->stats(r), on->stats(r), r);
  }
}

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

}  // namespace

class RaceStatsIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(RaceStatsIdentityTest, WildcardAndZeroLengthTraffic) {
  // Exercises the paths detection instruments hardest: any-source matching
  // (the detector arbitrates the choice), zero-length messages (stamps ride
  // the struct — payload bytes must stay 0), and the fused collectives.
  const int np = GetParam();
  compare_runs(np, [](Process& p) {
    const int last = p.nprocs() - 1;
    // Deposit order is pinned (each sender waits for its predecessors'
    // messages to land) so both runs receive in the same order and even
    // the floating-point cost accumulation is bit-identical.  The senders
    // stay causally concurrent — with detection on this IS a wildcard
    // race, which must be flagged without moving a single counter.
    auto pending = [&]() -> std::size_t {
      return p.runtime().mailbox(last).pending();
    };
    if (p.rank() != last) {
      while (pending() < 2 * static_cast<std::size_t>(p.rank())) {
        std::this_thread::yield();
      }
      p.send_value<double>(last, 11, p.rank() * 1.5);
      p.send<std::uint8_t>(last, 12, std::span<const std::uint8_t>());
    } else {
      while (pending() < 2 * static_cast<std::size_t>(last)) {
        std::this_thread::yield();
      }
      double sum = 0.0;
      for (int i = 0; i < last; ++i) {
        int src = -1;
        sum += p.recv_any<double>(11, src)[0];
        EXPECT_EQ(src, i);  // oldest arrival first, in both runs
        EXPECT_TRUE(p.recv<std::uint8_t>(src, 12).empty());
      }
    }
    p.barrier();
    std::vector<double> batch{1.0, 2.0, static_cast<double>(p.rank())};
    p.allreduce_batch<double>(batch);
    (void)p.allreduce<double>(1.0);
    p.barrier();
  });
}

TEST_P(RaceStatsIdentityTest, FusedCgSolve) {
  const int np = GetParam();
  const auto a = sp::laplacian_2d(7, 9);
  const auto b_full = sp::random_rhs(a.n_rows(), 17);
  compare_runs(np, [&](Process& p) {
    auto dist = share(Distribution::block(a.n_rows(), p.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(p, a, dist);
    DistributedVector<double> b(p, dist), x(p, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& q,
                                      DistributedVector<double>& out) {
      mat.matvec(q, out);
    };
    const auto res = sv::cg_fused_dist<double>(
        op, b, x, {.rel_tolerance = 1e-10, .track_residuals = true});
    EXPECT_TRUE(res.converged);
  });
}

TEST_P(RaceStatsIdentityTest, TinyProblemWithEmptyRanks) {
  // n < NP: some ranks own zero rows, so collectives move zero-length
  // blocks — exactly the envelopes that must carry clocks without ever
  // showing up in a byte counter.
  const int np = GetParam();
  if (np < 4) GTEST_SKIP() << "needs empty ranks to be interesting";
  const auto a = sp::laplacian_2d(3, 1);  // n = 3 rows
  const auto b_full = sp::random_rhs(a.n_rows(), 29);
  compare_runs(np, [&](Process& p) {
    auto dist = share(Distribution::block(a.n_rows(), p.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(p, a, dist);
    DistributedVector<double> b(p, dist), x(p, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& q,
                                      DistributedVector<double>& out) {
      mat.matvec(q, out);
    };
    const auto res = sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-12});
    EXPECT_TRUE(res.converged);
  });
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, RaceStatsIdentityTest,
                         ::testing::ValuesIn(hpfcg_test::test_machine_sizes()));
