// The race detector must flag each seeded hazard class — wildcard-receive
// match-order races (naming both candidate sources and the receive site),
// fence-order hazards, unordered replicated/private region accesses — and
// must stay silent on causally ordered programs, including ones whose only
// ordering edge is a zero-length message (empty envelopes carry clocks).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/ext/private_array.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/race/detector.hpp"
#include "hpfcg/race/race.hpp"
#include "spmd_test_util.hpp"

namespace race = hpfcg::race;
namespace check = hpfcg::check;
using hpfcg::msg::Process;
using hpfcg::msg::Runtime;
using race::RaceKind;
using race::RegionKind;

namespace {

/// Spin until `n` messages are queued in `rank`'s mailbox — makes the
/// "both sends in flight at match time" interleaving deterministic.
void await_pending(Process& p, std::size_t n) {
  while (p.runtime().mailbox(p.rank()).pending() < n) {
    std::this_thread::yield();
  }
}

/// Advance this rank's clock past the all-zero origin (where every pair of
/// clocks compares *equal*, not concurrent) via a self send/receive.
void tick_clock(Process& p) {
  p.send_value<int>(p.rank(), 99, 0);
  (void)p.recv_value<int>(p.rank(), 99);
}

}  // namespace

// ---- wildcard-receive races --------------------------------------------

TEST(RaceDetector, WildcardRaceNamesBothSourcesAndSite) {
  race::ScopedEnable on;
  Runtime rt(3);
  rt.run([](Process& p) {
    if (p.rank() == 1) p.send_value<int>(0, 7, 10);
    if (p.rank() == 2) p.send_value<int>(0, 7, 20);
    if (p.rank() == 0) {
      await_pending(p, 2);  // both candidates in flight
      race::SiteScope site("halo recv");
      int src = -1;
      (void)p.recv_any<int>(7, src);
      (void)p.recv_any<int>(7, src);
    }
  });

  ASSERT_NE(rt.racer(), nullptr);
  const auto records = rt.racer()->records();
  ASSERT_EQ(records.size(), 1u);  // deduped: one report per racing pair
  const auto& r = records[0];
  EXPECT_EQ(r.kind, RaceKind::kWildcard);
  EXPECT_EQ(r.rank, 0);
  EXPECT_EQ(r.src_a, 1);
  EXPECT_EQ(r.src_b, 2);
  EXPECT_EQ(r.tag, 7);
  EXPECT_EQ(r.site, "halo recv");
  EXPECT_NE(r.detail.find("rank 1"), std::string::npos);
  EXPECT_NE(r.detail.find("rank 2"), std::string::npos);
  EXPECT_NE(rt.racer()->report().find("wildcard-receive"), std::string::npos);
}

TEST(RaceDetector, CausallyOrderedSendsAreNotFlagged) {
  // rank 1's send to 0 happens-before rank 2's (token chain), so even with
  // both messages in flight the any-source match has a forced order.
  race::ScopedEnable on;
  Runtime rt(3);
  rt.run([](Process& p) {
    if (p.rank() == 1) {
      p.send_value<int>(0, 5, 10);
      p.send_value<int>(2, 9, 0);  // token: orders rank 2 after the send
    }
    if (p.rank() == 2) {
      (void)p.recv_value<int>(1, 9);
      p.send_value<int>(0, 5, 20);
    }
    if (p.rank() == 0) {
      await_pending(p, 2);
      int src = -1;
      EXPECT_EQ(p.recv_any<int>(5, src)[0], 10);  // forced: oldest first
      EXPECT_EQ(src, 1);
      EXPECT_EQ(p.recv_any<int>(5, src)[0], 20);
      EXPECT_EQ(src, 2);
    }
  });
  EXPECT_EQ(rt.racer()->race_count(), 0u);
}

TEST(RaceDetector, ZeroLengthTokenCarriesTheClock) {
  // Same ordering chain, but the token is a zero-length message.  The
  // suppression of the wildcard flag proves empty envelopes carry stamps:
  // without one, rank 2's send would look concurrent with rank 1's.
  race::ScopedEnable on;
  Runtime rt(3);
  rt.run([](Process& p) {
    if (p.rank() == 1) {
      p.send_value<int>(0, 5, 10);
      p.send<std::uint8_t>(2, 9, std::span<const std::uint8_t>());
    }
    if (p.rank() == 2) {
      EXPECT_TRUE(p.recv<std::uint8_t>(1, 9).empty());
      p.send_value<int>(0, 5, 20);
    }
    if (p.rank() == 0) {
      await_pending(p, 2);
      int src = -1;
      (void)p.recv_any<int>(5, src);
      (void)p.recv_any<int>(5, src);
    }
  });
  EXPECT_EQ(rt.racer()->race_count(), 0u);
}

// ---- fence-order hazards -----------------------------------------------

TEST(RaceDetector, PendingMessageAcrossAllreduceIsFlagged) {
  race::ScopedEnable on;
  Runtime rt(2);
  rt.run([](Process& p) {
    if (p.rank() == 1) {
      p.send_value<int>(0, 3, 42);
      (void)p.allreduce<double>(1.0);
    } else {
      await_pending(p, 1);  // the unreceived send is in the mailbox
      (void)p.allreduce<double>(1.0);
      EXPECT_EQ(p.recv_value<int>(1, 3), 42);
    }
  });

  const auto records = rt.racer()->records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, RaceKind::kFenceOrder);
  EXPECT_EQ(records[0].rank, 0);
  EXPECT_EQ(records[0].src_a, 1);
  EXPECT_EQ(records[0].tag, 3);
  EXPECT_NE(records[0].detail.find("allreduce"), std::string::npos);
}

TEST(RaceDetector, ReceiveBeforeFenceIsNotFlagged) {
  race::ScopedEnable on;
  Runtime rt(2);
  rt.run([](Process& p) {
    if (p.rank() == 1) p.send_value<int>(0, 3, 42);
    if (p.rank() == 0) {
      EXPECT_EQ(p.recv_value<int>(1, 3), 42);
    }
    (void)p.allreduce<double>(1.0);
    p.barrier();
  });
  EXPECT_EQ(rt.racer()->race_count(), 0u);
}

// ---- region races ------------------------------------------------------

TEST(RaceDetector, ConcurrentReplicatedWritesAreFlagged) {
  race::ScopedEnable on;
  Runtime rt(2);
  rt.run([](Process& p) {
    tick_clock(p);  // leave the all-zero origin so the clocks can diverge
    race::Detector* d = p.runtime().racer();
    const auto id = d->register_region(p.rank(), RegionKind::kReplicated,
                                       "lookup-table");
    d->on_region_write(p.rank(), id);  // no ordering between the two writes
    p.barrier();
  });

  const auto records = rt.racer()->records();
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records[0].kind, RaceKind::kRegion);
  EXPECT_EQ(records[0].src_a, 0);
  EXPECT_EQ(records[0].src_b, 1);
  EXPECT_NE(records[0].detail.find("lookup-table"), std::string::npos);
}

TEST(RaceDetector, OrderedReplicatedAccessesAreNotFlagged) {
  race::ScopedEnable on;
  Runtime rt(2);
  rt.run([](Process& p) {
    race::Detector* d = p.runtime().racer();
    const auto id = d->register_region(p.rank(), RegionKind::kReplicated,
                                       "lookup-table");
    if (p.rank() == 0) {
      d->on_region_write(0, id);
      p.send_value<int>(1, 4, 1);  // orders rank 1's access after the write
    } else {
      (void)p.recv_value<int>(0, 4);
      d->on_region_write(1, id);
      d->on_region_read(1, id);
    }
    p.barrier();
  });
  EXPECT_EQ(rt.racer()->race_count(), 0u);
}

TEST(RaceDetector, PrivatePublishRacingAWriteIsFlagged) {
  // rank 1 writes its private copy while rank 0's "merge" completes with
  // no ordering edge between them — the update may or may not be merged.
  race::ScopedEnable on;
  Runtime rt(2);
  rt.run([](Process& p) {
    tick_clock(p);  // leave the all-zero origin so the clocks can diverge
    race::Detector* d = p.runtime().racer();
    const auto id =
        d->register_region(p.rank(), RegionKind::kPrivate, "partials");
    if (p.rank() == 1) {
      d->on_region_write(1, id);
    } else {
      // Real-time delay only (no clock edge): the write lands in the region
      // table first, but stays causally concurrent with this publish.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      d->on_region_publish(0, id);
    }
    p.barrier();
  });

  const auto records = rt.racer()->records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, RaceKind::kRegion);
  EXPECT_NE(records[0].detail.find("merge"), std::string::npos);
}

TEST(RaceDetector, PrivateArrayMergeIsRaceFree) {
  // The library's own PRIVATE/MERGE discipline must never be flagged: the
  // merge collective orders every write before every publish.
  race::ScopedEnable on;
  check::ScopedEnable check_on;  // harness attached: teardown audit armed
  Runtime rt(4);
  rt.run([](Process& p) {
    hpfcg::ext::PrivateArray<double> q(p, 16);
    for (std::size_t i = 0; i < q.size(); ++i) q[i] += p.rank() + 1.0;
    const auto merged = q.merge_replicated();
    EXPECT_DOUBLE_EQ(merged[0], 1.0 + 2.0 + 3.0 + 4.0);
  });
  EXPECT_EQ(rt.racer()->race_count(), 0u);
}

// ---- check-ledger integration ------------------------------------------

TEST(RaceDetector, RacesFailTheCheckTeardownAudit) {
  // With both layers on, a flagged race is mirrored into the check
  // violation ledger, so the machine run *fails* instead of passing with a
  // diagnostic nobody read.
  if (!check::kCompiled) GTEST_SKIP() << "check compiled out";
  race::ScopedEnable on;
  check::ScopedEnable check_on;
  Runtime rt(3);
  std::string message;
  try {
    rt.run([](Process& p) {
      if (p.rank() == 1) p.send_value<int>(0, 7, 10);
      if (p.rank() == 2) p.send_value<int>(0, 7, 20);
      if (p.rank() == 0) {
        await_pending(p, 2);
        int src = -1;
        (void)p.recv_any<int>(7, src);
        (void)p.recv_any<int>(7, src);
      }
    });
    ADD_FAILURE() << "expected the teardown audit to reject the race";
  } catch (const hpfcg::util::Error& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("hpfcg::race"), std::string::npos);
  EXPECT_NE(message.find("wildcard"), std::string::npos);
}

// ---- reporting ---------------------------------------------------------

TEST(RaceDetector, JsonReportIsWellFormedAndComplete) {
  race::ScopedEnable on;
  Runtime rt(3);
  rt.run([](Process& p) {
    if (p.rank() != 0) p.send_value<int>(0, 7, p.rank());
    if (p.rank() == 0) {
      await_pending(p, 2);
      int src = -1;
      (void)p.recv_any<int>(7, src);
      (void)p.recv_any<int>(7, src);
    }
  });
  std::ostringstream os;
  rt.racer()->write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"nprocs\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"wildcard-receive\""), std::string::npos);
  EXPECT_NE(json.find("\"src_a\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"src_b\": 2"), std::string::npos);

  rt.racer()->clear();
  EXPECT_EQ(rt.racer()->race_count(), 0u);
}

// ---- off-by-default ----------------------------------------------------

TEST(RaceDetector, NoDetectorWhenDisabled) {
  // Without the env var / scoped enable, the runtime carries no detector
  // and racy programs run to completion unflagged (the PR-1 behavior).
  Runtime rt(2);
  rt.run([](Process& p) {
    if (p.rank() == 1) p.send_value<int>(0, 7, 1);
    if (p.rank() == 0) {
      int src = -1;
      (void)p.recv_any<int>(7, src);
    }
  });
  EXPECT_EQ(rt.racer(), nullptr);
}
