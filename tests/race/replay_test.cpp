// Schedule-perturbation replay: under adversarial any-source delivery the
// per-(src,tag) FIFO invariant must survive every permutation, solver
// workloads must stay bit-identical run over run (they never race), and a
// workload whose answer genuinely depends on match order must either
// reproduce the baseline or be flagged — never diverge silently.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/race/race.hpp"
#include "hpfcg/race/replay.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/multigrid.hpp"
#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/rebalance.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/halo.hpp"
#include "spmd_test_util.hpp"

namespace race = hpfcg::race;
namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Runtime;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

/// Build-and-run one machine with the given replay seed and detection on;
/// returns the detector's race count after the run.
std::size_t run_with_seed(int np, std::uint64_t seed,
                          const std::function<void(Process&)>& body) {
  race::ScopedEnable on;
  race::ScopedReplaySeed replay(seed);
  Runtime rt(np);
  rt.run(body);
  return rt.racer()->race_count();
}

}  // namespace

// ---- the fairness/FIFO property ----------------------------------------

TEST(RaceReplay, PerSourceFifoSurvivesEveryPermutation) {
  // Three senders each stream 8 sequenced values to rank 0 under one tag.
  // Whatever order the adversarial network interleaves the sources, each
  // source's own values must arrive in send order (only shard heads are
  // eligible), and the multiset must be complete.
  constexpr int kNp = 4;
  constexpr int kPerSource = 8;
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull, 7777ull}) {
    std::vector<std::vector<int>> seen(kNp);
    const std::size_t races =
        run_with_seed(kNp, seed, [&seen](Process& p) {
          if (p.rank() != 0) {
            for (int k = 0; k < kPerSource; ++k) {
              p.send_value<int>(0, 21, k);
            }
          } else {
            for (int i = 0; i < (kNp - 1) * kPerSource; ++i) {
              int src = -1;
              const int v = p.recv_any<int>(21, src)[0];
              seen[static_cast<std::size_t>(src)].push_back(v);
            }
          }
        });
    for (int s = 1; s < kNp; ++s) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " source " +
                   std::to_string(s));
      ASSERT_EQ(seen[static_cast<std::size_t>(s)].size(),
                static_cast<std::size_t>(kPerSource));
      EXPECT_TRUE(std::is_sorted(seen[static_cast<std::size_t>(s)].begin(),
                                 seen[static_cast<std::size_t>(s)].end()));
      for (int k = 0; k < kPerSource; ++k) {
        EXPECT_EQ(seen[static_cast<std::size_t>(s)][static_cast<std::size_t>(k)],
                  k);
      }
    }
    // The senders are mutually concurrent, so the detector must have
    // flagged the match-order race it was busy permuting.
    EXPECT_GE(races, 1u);
  }
}

// ---- solver replay invariance ------------------------------------------

class RaceReplaySolverTest : public ::testing::TestWithParam<int> {};

TEST_P(RaceReplaySolverTest, CgFusedIsReplayInvariant) {
  const int np = GetParam();
  const auto a = sp::laplacian_2d(7, 9);
  const auto b_full = sp::random_rhs(a.n_rows(), 23);

  const auto report = race::perturbed_replay(
      50, 0x5eedu + static_cast<std::uint64_t>(np),
      [&](std::uint64_t seed) {
        race::ScopedEnable on;
        race::ScopedReplaySeed replay(seed);
        Runtime rt(np);
        race::ReplayRun run;
        rt.run([&](Process& p) {
          auto dist = share(Distribution::block(a.n_rows(), p.nprocs()));
          auto mat = sp::DistCsr<double>::row_aligned(p, a, dist);
          DistributedVector<double> b(p, dist), x(p, dist);
          b.from_global(b_full);
          const sv::DistOp<double> op =
              [&](const DistributedVector<double>& q,
                  DistributedVector<double>& out) { mat.matvec(q, out); };
          const auto res = sv::cg_fused_dist<double>(
              op, b, x, {.rel_tolerance = 1e-10, .track_residuals = true});
          if (p.rank() == 0) run.signature = res.residual_signature();
        });
        run.races = rt.racer()->race_count();
        return run;
      });

  // Bit-identical residual histories across all 50 perturbed schedules,
  // and nothing flagged: the solver's receives are all directed or
  // collective — there is no match order to race on.
  EXPECT_TRUE(report.deterministic())
      << report.identical << "/" << report.perturbed.size() << " identical";
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.baseline.races, 0u);
}

TEST_P(RaceReplaySolverTest, HaloCgFusedIsReplayInvariant) {
  // The halo-exchange matvec path: the inspector's index exchange and every
  // executor sweep post *directed* per-source receives on fixed tags, so no
  // wildcard match order exists for the adversarial scheduler to permute —
  // 20 perturbed schedules must reproduce the baseline residual history
  // bit for bit with zero flagged races.
  const int np = GetParam();
  const auto a = sp::laplacian_2d(9, 8);
  const auto b_full = sp::random_rhs(a.n_rows(), 61);

  const auto report = race::perturbed_replay(
      20, 0x4a10u + static_cast<std::uint64_t>(np),
      [&](std::uint64_t seed) {
        hpfcg::sparse::halo::ScopedEnable halo_on(true);
        race::ScopedEnable on;
        race::ScopedReplaySeed replay(seed);
        Runtime rt(np);
        race::ReplayRun run;
        rt.run([&](Process& p) {
          auto dist = share(Distribution::block(a.n_rows(), p.nprocs()));
          auto mat = sp::DistCsr<double>::row_aligned(p, a, dist);
          DistributedVector<double> b(p, dist), x(p, dist);
          b.from_global(b_full);
          const sv::DistOp<double> op =
              [&](const DistributedVector<double>& q,
                  DistributedVector<double>& out) { mat.matvec(q, out); };
          const auto res = sv::cg_fused_dist<double>(
              op, b, x, {.rel_tolerance = 1e-10, .track_residuals = true});
          if (p.rank() == 0) {
            run.signature = res.residual_signature();
            EXPECT_TRUE(mat.halo_active());
          }
        });
        run.races = rt.racer()->race_count();
        return run;
      });

  EXPECT_TRUE(report.deterministic())
      << report.identical << "/" << report.perturbed.size() << " identical";
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.baseline.races, 0u);
}

TEST_P(RaceReplaySolverTest, PcgFusedIsReplayInvariant) {
  const int np = GetParam();
  const auto a = sp::random_spd(48, 5, 91);
  const auto b_full = sp::random_rhs(a.n_rows(), 37);
  const auto diag = a.diagonal();

  const auto report = race::perturbed_replay(
      50, 0xacedu + static_cast<std::uint64_t>(np),
      [&](std::uint64_t seed) {
        race::ScopedEnable on;
        race::ScopedReplaySeed replay(seed);
        Runtime rt(np);
        race::ReplayRun run;
        rt.run([&](Process& p) {
          auto dist = share(Distribution::block(a.n_rows(), p.nprocs()));
          auto mat = sp::DistCsr<double>::row_aligned(p, a, dist);
          DistributedVector<double> b(p, dist), x(p, dist),
              inv_diag(p, dist);
          b.from_global(b_full);
          inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
          const sv::DistOp<double> op =
              [&](const DistributedVector<double>& q,
                  DistributedVector<double>& out) { mat.matvec(q, out); };
          const auto res = sv::pcg_fused_dist<double>(
              op, sv::jacobi_dist(inv_diag), b, x,
              {.rel_tolerance = 1e-10, .track_residuals = true});
          if (p.rank() == 0) run.signature = res.residual_signature();
        });
        run.races = rt.racer()->race_count();
        return run;
      });

  EXPECT_TRUE(report.deterministic())
      << report.identical << "/" << report.perturbed.size() << " identical";
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.baseline.races, 0u);
}

TEST_P(RaceReplaySolverTest, PcgFusedReproRebalanceIsReplayInvariant) {
  // The reproducible mode's hardest schedule: exact-superaccumulator
  // reductions AND mid-solve redistribution under an adversarial delivery
  // order.  Every perturbed replay must reproduce the baseline residual
  // history bit for bit with nothing flagged — the repro merge is
  // collective (directed receives only) and the migration is a replicated
  // decision, so no wildcard match order exists.
  if (!hpfcg::repro::kCompiled) GTEST_SKIP() << "repro mode compiled out";
  const int np = GetParam();
  const auto a = sp::powerlaw_spd(96, 3, 5, 48, 13);
  const auto b_full = sp::random_rhs(a.n_rows(), 29);
  const auto diag = a.diagonal();

  const auto report = race::perturbed_replay(
      20, 0x4e9au + static_cast<std::uint64_t>(np),
      [&](std::uint64_t seed) {
        hpfcg::repro::ScopedEnable repro_on;
        race::ScopedEnable on;
        race::ScopedReplaySeed replay(seed);
        Runtime rt(np);
        race::ReplayRun run;
        rt.run([&](Process& p) {
          auto dist = share(Distribution::block(a.n_rows(), p.nprocs()));
          auto mat = sp::DistCsr<double>::row_aligned(p, a, dist);
          DistributedVector<double> b(p, dist), x(p, dist),
              inv_diag(p, dist);
          b.from_global(b_full);
          inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
          const sv::DistOp<double> op =
              [&](const DistributedVector<double>& q,
                  DistributedVector<double>& out) { mat.matvec(q, out); };
          const sv::DistPrec<double> prec =
              [&inv_diag](const DistributedVector<double>& r,
                          DistributedVector<double>& z) {
                hpfcg::hpf::hadamard(inv_diag, r, z);
              };
          const auto hook = sv::make_csr_rebalancer<double>(
              mat, [&](const hpfcg::hpf::DistPtr& nd) {
                inv_diag = hpfcg::hpf::redistribute(inv_diag, nd);
              });
          const auto res = sv::pcg_fused_dist<double>(
              op, prec, b, x,
              {.rel_tolerance = 1e-10,
               .track_residuals = true,
               .rebalance_every = 3},
              hook);
          if (p.rank() == 0) run.signature = res.residual_signature();
        });
        run.races = rt.racer()->race_count();
        return run;
      });

  EXPECT_TRUE(report.deterministic())
      << report.identical << "/" << report.perturbed.size() << " identical";
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.baseline.races, 0u);
}

TEST_P(RaceReplaySolverTest, MgPcgIsReplayInvariant) {
  // The multigrid V-cycle's message surface under adversarial delivery:
  // pipelined symGS half-sweeps (kSweepTag), grid-transfer injections
  // (kRestrictTag/kProlongTag), and halo exchanges on every level.  All of
  // its receives are directed per-source on fixed tags, so 20 perturbed
  // schedules must reproduce the baseline residual history bit for bit
  // with zero flagged races.
  const int np = GetParam();
  constexpr std::array<std::size_t, 3> dims{8, 8, 4};
  const auto a = sp::stencil27_3d(dims[0], dims[1], dims[2]);
  const auto b_full = sp::random_rhs(a.n_rows(), 83);

  const auto report = race::perturbed_replay(
      20, 0x519du + static_cast<std::uint64_t>(np),
      [&](std::uint64_t seed) {
        hpfcg::sparse::halo::ScopedEnable halo_on(true);
        race::ScopedEnable on;
        race::ScopedReplaySeed replay(seed);
        Runtime rt(np);
        race::ReplayRun run;
        rt.run([&](Process& p) {
          auto dist = share(Distribution::block(a.n_rows(), p.nprocs()));
          auto mat = sp::DistCsr<double>::row_aligned(p, a, dist);
          mat.prepare_halo();
          DistributedVector<double> b(p, dist), x(p, dist);
          b.from_global(b_full);
          sv::MgPreconditioner mg(p, mat, dims,
                                  {.smoother = sv::MgSmoother::kExactSymGs});
          const sv::DistOp<double> op =
              [&](const DistributedVector<double>& q,
                  DistributedVector<double>& out) { mat.matvec(q, out); };
          const auto res = sv::pcg_dist<double>(
              op, mg.prec(), b, x,
              {.rel_tolerance = 1e-10, .track_residuals = true});
          if (p.rank() == 0) run.signature = res.residual_signature();
        });
        run.races = rt.racer()->race_count();
        return run;
      });

  EXPECT_TRUE(report.deterministic())
      << report.identical << "/" << report.perturbed.size() << " identical";
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.baseline.races, 0u);
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, RaceReplaySolverTest,
                         ::testing::Values(2, 4, 8));

// ---- completeness: a divergent workload is always flagged --------------

TEST(RaceReplay, OrderDependentWorkloadDivergesOnlyFlagged) {
  // rank 0 folds two racing messages with a non-commutative combiner, so
  // the answer genuinely depends on the match order the replayer perturbs.
  // Every divergence from the baseline must be flagged — and since both
  // candidates are guaranteed in flight at match time, every run flags the
  // wildcard pair.
  constexpr int kNp = 3;
  const auto report = race::perturbed_replay(30, 99, [](std::uint64_t seed) {
    race::ScopedEnable on;
    race::ScopedReplaySeed replay(seed);
    Runtime rt(kNp);
    race::ReplayRun run;
    rt.run([&run](Process& p) {
      if (p.rank() != 0) {
        p.send_value<std::uint64_t>(0, 31,
                                    static_cast<std::uint64_t>(p.rank()));
      } else {
        while (p.runtime().mailbox(0).pending() < 2) {
          std::this_thread::yield();
        }
        int src = -1;
        std::uint64_t acc = 0;
        for (int i = 0; i < kNp - 1; ++i) {
          // Non-commutative fold: order changes the result.
          acc = acc * 1000003u + p.recv_any<std::uint64_t>(31, src)[0];
        }
        run.signature = acc;
      }
    });
    run.races = rt.racer()->race_count();
    return run;
  });

  EXPECT_TRUE(report.complete()) << report.unflagged_divergences
                                 << " silent divergence(s)";
  EXPECT_EQ(report.baseline.races, 1u);
  for (const auto& run : report.perturbed) EXPECT_EQ(run.races, 1u);
  // With 30 uniform permutations of two candidates, at least one run picks
  // the other order (probability of all matching the baseline: 2^-30).
  EXPECT_GE(report.flagged_divergences, 1u);
}
