// Vector-clock algebra: the happens-before partial order must be exactly
// the textbook one (element-wise <= with inequality), empty stamps must act
// as the bottom element, and the replay harness must classify runs by the
// identical / flagged / unflagged trichotomy.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hpfcg/race/clock.hpp"
#include "hpfcg/race/replay.hpp"

namespace race = hpfcg::race;
using race::Order;
using race::Stamp;
using race::VectorClock;

TEST(RaceClock, CompareIsTheTextbookPartialOrder) {
  const Stamp a{1, 2, 3};
  const Stamp b{1, 2, 3};
  const Stamp c{2, 2, 3};  // a <= c, a != c
  const Stamp d{0, 5, 0};  // incomparable with a

  EXPECT_EQ(race::compare(a, b), Order::kEqual);
  EXPECT_EQ(race::compare(a, c), Order::kBefore);
  EXPECT_EQ(race::compare(c, a), Order::kAfter);
  EXPECT_EQ(race::compare(a, d), Order::kConcurrent);
  EXPECT_EQ(race::compare(d, a), Order::kConcurrent);

  EXPECT_TRUE(race::concurrent(a, d));
  EXPECT_FALSE(race::concurrent(a, c));
  EXPECT_TRUE(race::dominated(a, c));
  EXPECT_TRUE(race::dominated(a, b));
  EXPECT_FALSE(race::dominated(c, a));
}

TEST(RaceClock, EmptyStampIsTheBottomElement) {
  const Stamp empty;
  const Stamp some{3, 1};
  EXPECT_EQ(race::compare(empty, empty), Order::kEqual);
  EXPECT_EQ(race::compare(empty, some), Order::kBefore);
  EXPECT_EQ(race::compare(some, empty), Order::kAfter);
  EXPECT_TRUE(race::dominated(empty, some));
  EXPECT_FALSE(race::concurrent(empty, some));
}

TEST(RaceClock, TickMergeAdoptFollowTheAlgebra) {
  VectorClock c0(3);
  VectorClock c1(3);
  c0.tick(0);
  c0.tick(0);
  c1.tick(1);
  EXPECT_EQ(c0.component(0), 2u);
  EXPECT_EQ(c1.component(1), 1u);

  // A receive on rank 1 of rank 0's stamp: element-wise max, caller ticks.
  c1.merge(c0.view());
  c1.tick(1);
  EXPECT_EQ(c1.component(0), 2u);
  EXPECT_EQ(c1.component(1), 2u);
  // Now c0's stamp happens-before c1's.
  EXPECT_TRUE(race::dominated(c0.view(), c1.view()));

  // Barrier adoption: both clocks equal the join afterwards.
  VectorClock join(3);
  join.merge(c0.view());
  join.merge(c1.view());
  c0.adopt(join);
  c1.adopt(join);
  EXPECT_EQ(race::compare(c0.view(), c1.view()), Order::kEqual);

  // Merging an empty stamp (a message sent with detection off) is a no-op.
  const Stamp snap = c0.snapshot();
  c0.merge(Stamp{});
  EXPECT_EQ(race::compare(c0.view(), snap), Order::kEqual);
}

// ---- replay harness classification ------------------------------------

TEST(RaceReplay, ClassifiesIdenticalFlaggedAndUnflaggedRuns) {
  // Synthetic closure: seed 0 (baseline) returns signature 100 with no
  // races; the first two perturbed runs diverge with a race flagged, the
  // third diverges silently, the rest reproduce the baseline.
  int call = 0;
  const auto report = race::perturbed_replay(5, 42, [&](std::uint64_t seed) {
    race::ReplayRun run;
    if (seed == 0) {
      run.signature = 100;
      return run;
    }
    ++call;
    if (call <= 2) {
      run.signature = 200;
      run.races = 1;
    } else if (call == 3) {
      run.signature = 300;  // diverged, nothing flagged
    } else {
      run.signature = 100;
    }
    return run;
  });

  EXPECT_EQ(report.baseline.signature, 100u);
  ASSERT_EQ(report.perturbed.size(), 5u);
  EXPECT_EQ(report.identical, 2u);
  EXPECT_EQ(report.flagged_divergences, 2u);
  EXPECT_EQ(report.unflagged_divergences, 1u);
  EXPECT_FALSE(report.complete());
  EXPECT_FALSE(report.deterministic());

  // Sub-seeds are distinct, nonzero, and deterministic in base_seed.
  for (const std::uint64_t s : report.seeds) EXPECT_NE(s, 0u);
  const auto again = race::perturbed_replay(
      5, 42, [](std::uint64_t) { return race::ReplayRun{1, 0}; });
  EXPECT_EQ(report.seeds, again.seeds);
  EXPECT_TRUE(again.deterministic());
  EXPECT_TRUE(again.complete());
}

TEST(RaceReplay, BaselineRacesAloneMarkDivergenceFlagged) {
  // A divergence counts as flagged when the *baseline* reported the race,
  // even if the perturbed run itself did not.
  const auto report = race::perturbed_replay(1, 7, [](std::uint64_t seed) {
    if (seed == 0) return race::ReplayRun{1, 3};
    return race::ReplayRun{2, 0};
  });
  EXPECT_EQ(report.flagged_divergences, 1u);
  EXPECT_TRUE(report.complete());
}
