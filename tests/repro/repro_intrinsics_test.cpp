// The tentpole property at the HPF-intrinsics level: with HPFCG_REPRO on,
// dot_product / dot_products / sum / norm2 over a FIXED global vector are
// bit-identical for every machine size and for every block-cut placement —
// the local partial sums are accumulated exactly, so the block cuts and
// the merge tree stop being observable.

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/repro/superacc.hpp"
#include "spmd_test_util.hpp"

namespace repro = hpfcg::repro;
namespace hpf = hpfcg::hpf;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

/// Fixed global payloads spanning ~1e±15 with mixed signs: partial-sum
/// order visibly matters for these under plain float summation.
std::vector<double> global_x(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int e = static_cast<int>((i * 11) % 100) - 50;
    v[i] = (i % 3 == 0 ? -1.0 : 1.0) *
           std::ldexp(1.0 + 0.013 * static_cast<double>(i), e);
  }
  return v;
}

std::vector<double> global_y(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int e = static_cast<int>((i * 7 + 3) % 90) - 45;
    v[i] = (i % 5 == 0 ? -1.0 : 1.0) *
           std::ldexp(2.0 - 0.005 * static_cast<double>(i), e);
  }
  return v;
}

constexpr std::size_t kN = 257;

/// Serial exact references.
double exact_dot(const std::vector<double>& x, const std::vector<double>& y) {
  repro::Superacc acc = repro::dot_accumulate<double>(
      std::span<const double>(x), std::span<const double>(y));
  return acc.round();
}

double exact_sum(const std::vector<double>& x) {
  repro::Superacc acc =
      repro::sum_accumulate<double>(std::span<const double>(x));
  return acc.round();
}

class ReproIntrinsicsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!repro::kCompiled) GTEST_SKIP() << "repro mode compiled out";
  }
};

TEST_F(ReproIntrinsicsTest, DotProductIsNpInvariantAndExact) {
  const auto xs = global_x(kN);
  const auto ys = global_y(kN);
  const double expect = exact_dot(xs, ys);
  repro::ScopedEnable on;
  for (const int np : test_machine_sizes()) {
    run_spmd(np, [&](Process& p) {
      auto dist = share(Distribution::block(kN, p.nprocs()));
      DistributedVector<double> x(p, dist), y(p, dist);
      x.from_global(xs);
      y.from_global(ys);
      const double got = hpf::dot_product(x, y);
      EXPECT_EQ(bits_of(got), bits_of(expect))
          << "np=" << np << " rank " << p.rank();
    });
  }
}

TEST_F(ReproIntrinsicsTest, DotProductIsBlockCutInvariant) {
  // Same machine size, three different contiguous cut layouts — the
  // rebalance scenario in miniature.  Plain float partial sums would give
  // three different roundings; the exact path must give one.
  const auto xs = global_x(kN);
  const auto ys = global_y(kN);
  const double expect = exact_dot(xs, ys);
  repro::ScopedEnable on;
  const int np = 4;
  const std::vector<std::vector<std::size_t>> cut_sets{
      {0, 64, 128, 192, kN},
      {0, 10, 30, 200, kN},
      {0, 1, 2, 3, kN},  // maximally skewed: rank 3 holds nearly everything
  };
  for (const auto& cuts : cut_sets) {
    run_spmd(np, [&](Process& p) {
      auto dist = share(Distribution::from_cuts(kN, cuts));
      DistributedVector<double> x(p, dist), y(p, dist);
      x.from_global(xs);
      y.from_global(ys);
      EXPECT_EQ(bits_of(hpf::dot_product(x, y)), bits_of(expect))
          << "cuts[1]=" << cuts[1] << " rank " << p.rank();
    });
  }
}

TEST_F(ReproIntrinsicsTest, FusedDotBatchMatchesScalarDots) {
  const auto xs = global_x(kN);
  const auto ys = global_y(kN);
  repro::ScopedEnable on;
  for (const int np : {1, 3, 8}) {
    run_spmd(np, [&](Process& p) {
      auto dist = share(Distribution::block(kN, p.nprocs()));
      DistributedVector<double> x(p, dist), y(p, dist);
      x.from_global(xs);
      y.from_global(ys);
      const auto batch = hpf::dot_products(x, x, x, y, y, y);
      EXPECT_EQ(bits_of(batch[0]), bits_of(hpf::dot_product(x, x)));
      EXPECT_EQ(bits_of(batch[1]), bits_of(hpf::dot_product(x, y)));
      EXPECT_EQ(bits_of(batch[2]), bits_of(hpf::dot_product(y, y)));
    });
  }
}

TEST_F(ReproIntrinsicsTest, SumAndNorm2AreNpInvariant) {
  const auto xs = global_x(kN);
  const double sum_expect = exact_sum(xs);
  const double norm_expect = std::sqrt(exact_dot(xs, xs));
  repro::ScopedEnable on;
  for (const int np : test_machine_sizes()) {
    run_spmd(np, [&](Process& p) {
      auto dist = share(Distribution::block(kN, p.nprocs()));
      DistributedVector<double> x(p, dist);
      x.from_global(xs);
      EXPECT_EQ(bits_of(hpf::sum(x)), bits_of(sum_expect)) << "np=" << np;
      // norm2 = sqrt(exact dot): sqrt is correctly rounded per IEEE, so the
      // norm inherits the invariance.
      EXPECT_EQ(bits_of(hpf::norm2(x)), bits_of(norm_expect)) << "np=" << np;
    });
  }
}

TEST_F(ReproIntrinsicsTest, ModeOffLeavesThePlainPathAlone) {
  // With the mode off the intrinsics take the historical float path: same
  // run-to-run bits as before (determinism within one layout), and the
  // repro Stats counters stay zero.
  const auto xs = global_x(kN);
  const auto ys = global_y(kN);
  repro::ScopedEnable off(false);
  for (const int np : {2, 7}) {
    double first = 0.0;
    for (int trial = 0; trial < 2; ++trial) {
      auto rt = run_spmd(np, [&](Process& p) {
        auto dist = share(Distribution::block(kN, p.nprocs()));
        DistributedVector<double> x(p, dist), y(p, dist);
        x.from_global(xs);
        y.from_global(ys);
        const double got = hpf::dot_product(x, y);
        if (p.rank() == 0) first = trial == 0 ? got : first;
        if (trial == 1 && p.rank() == 0) {
          EXPECT_EQ(bits_of(got), bits_of(first));
        }
      });
      EXPECT_EQ(rt->total_stats().repro_reductions, 0u);
      EXPECT_EQ(rt->total_stats().repro_values, 0u);
    }
  }
}

}  // namespace
