// SPMD tests for the reproducible-reduction collectives: with HPFCG_REPRO
// on, allreduce / allreduce_vec / allreduce_batch over doubles return the
// correctly rounded exact sum (computed serially with the same
// superaccumulator), the batch form is bit-identical to k scalar merges on
// every machine size, the Stats counters account the mode, and the hoisted
// collective scratch buffer allocates exactly once (satellite regression).

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/repro/superacc.hpp"
#include "spmd_test_util.hpp"

namespace repro = hpfcg::repro;
using hpfcg::msg::Process;
using hpfcg_test::run_spmd;
using hpfcg_test::test_machine_sizes;

namespace {

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Rank r's contribution to element i: deterministic, sign-mixed, spanning
/// ~1e±15 so naive summation order visibly matters.
double contribution(int r, std::size_t i) {
  const int e = static_cast<int>((static_cast<std::size_t>(r) * 13 + i * 7) %
                                 100) - 50;
  const double sign = ((static_cast<std::size_t>(r) + i) % 2 == 0) ? 1.0 : -1.0;
  return sign * std::ldexp(1.0 + 0.37 * static_cast<double>(r) +
                               0.011 * static_cast<double>(i),
                           e);
}

/// The correctly rounded exact sum of all ranks' contributions to element i.
double exact_sum(int np, std::size_t i) {
  repro::Superacc acc;
  for (int r = 0; r < np; ++r) acc.add(contribution(r, i));
  return acc.round();
}

class ReproCollectivesTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    if (!repro::kCompiled) GTEST_SKIP() << "repro mode compiled out";
  }
};

TEST_P(ReproCollectivesTest, ScalarAllreduceReturnsCorrectlyRoundedSum) {
  const int np = GetParam();
  repro::ScopedEnable on;
  run_spmd(np, [&](Process& p) {
    const double got = p.allreduce(contribution(p.rank(), 0));
    EXPECT_EQ(bits_of(got), bits_of(exact_sum(np, 0))) << "rank " << p.rank();
    // Cancellation within one merge: ranks 0/1 carry ±1e16, the rest tiny
    // addends a float tree can lose against the big pair.  The exact merge
    // keeps them and rounds once.
    const double mine = p.rank() == 0   ? 1e16
                        : p.rank() == 1 ? -1e16
                                        : 1e-16;
    repro::Superacc ref;
    ref.add(1e16);
    if (np > 1) ref.add(-1e16);
    for (int r = 2; r < np; ++r) ref.add(1e-16);
    EXPECT_EQ(bits_of(p.allreduce(mine)), bits_of(ref.round()));
  });
}

TEST_P(ReproCollectivesTest, AllreduceVecMatchesSerialExactPerElement) {
  const int np = GetParam();
  constexpr std::size_t kN = 37;
  repro::ScopedEnable on;
  run_spmd(np, [&](Process& p) {
    std::vector<double> buf(kN);
    for (std::size_t i = 0; i < kN; ++i) buf[i] = contribution(p.rank(), i);
    p.allreduce_vec(buf);
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(bits_of(buf[i]), bits_of(exact_sum(np, i)))
          << "rank " << p.rank() << " element " << i;
    }
  });
}

TEST_P(ReproCollectivesTest, BatchIsBitIdenticalToScalarMerges) {
  // The satellite property test: allreduce_batch(k) must equal k scalar
  // allreduce calls bit for bit, payloads spanning 1e±15 — with the repro
  // mode on AND off (the float tree reduces element-wise over the same
  // tree, so the property holds either way).
  const int np = GetParam();
  constexpr std::size_t kK = 9;
  for (const bool mode : {true, false}) {
    repro::ScopedEnable scope(mode);
    run_spmd(np, [&](Process& p) {
      std::array<double, kK> batch;
      for (std::size_t i = 0; i < kK; ++i) {
        batch[i] = contribution(p.rank(), 1000 + i);
      }
      std::array<double, kK> scalars = batch;
      p.allreduce_batch(std::span<double>(batch));
      for (std::size_t i = 0; i < kK; ++i) {
        scalars[i] = p.allreduce(scalars[i]);
      }
      for (std::size_t i = 0; i < kK; ++i) {
        EXPECT_EQ(bits_of(batch[i]), bits_of(scalars[i]))
            << "repro=" << mode << " rank " << p.rank() << " lane " << i;
      }
    });
  }
}

TEST_P(ReproCollectivesTest, NonSumReductionsAreUntouched) {
  // max/min/maxloc-style merges are order-invariant already; the repro
  // branch must leave them on the ordinary path and keep them correct.
  const int np = GetParam();
  repro::ScopedEnable on;
  run_spmd(np, [&](Process& p) {
    const double got = p.allreduce(
        static_cast<double>(p.rank()),
        [](double a, double b) { return a > b ? a : b; });
    EXPECT_EQ(got, static_cast<double>(np - 1));
    // Integer sums stay on the plain path too (already exact).
    EXPECT_EQ(p.allreduce(p.rank() + 1), np * (np + 1) / 2);
  });
}

TEST_P(ReproCollectivesTest, StatsCountTheModeAndOnlyTheMode) {
  const int np = GetParam();
  {
    repro::ScopedEnable on;
    auto rt = run_spmd(np, [](Process& p) {
      (void)p.allreduce(1.5);                      // 1 value
      std::vector<double> v(4, 0.25);
      p.allreduce_vec(v);                          // 4 values
      std::array<double, 3> b{1.0, 2.0, 3.0};
      p.allreduce_batch(std::span<double>(b));     // 3 values
    });
    const auto total = rt->total_stats();
    EXPECT_EQ(total.repro_reductions, static_cast<std::uint64_t>(3 * np));
    EXPECT_EQ(total.repro_values, static_cast<std::uint64_t>(8 * np));
  }
  {
    repro::ScopedEnable off(false);
    auto rt = run_spmd(np, [](Process& p) {
      (void)p.allreduce(1.5);
      std::vector<double> v(4, 0.25);
      p.allreduce_vec(v);
    });
    const auto total = rt->total_stats();
    EXPECT_EQ(total.repro_reductions, 0u);
    EXPECT_EQ(total.repro_values, 0u);
  }
}

TEST_P(ReproCollectivesTest, RuntimeSamplesTheFlagAtConstruction) {
  const int np = GetParam();
  repro::ScopedEnable on;
  auto rt = std::make_unique<hpfcg::msg::Runtime>(np);
  // Flipping the global mid-machine must not change this machine.
  repro::set_enabled(false);
  EXPECT_TRUE(rt->repro_active());
  rt->run([](Process& p) {
    EXPECT_TRUE(p.repro_active());
    (void)p.allreduce(1.0);
  });
  EXPECT_GE(rt->total_stats().repro_reductions, static_cast<std::uint64_t>(np));
}

TEST_P(ReproCollectivesTest, CollScratchAllocatesOncePerProcess) {
  // Satellite regression: allreduce_vec used to allocate a fresh n-element
  // vector at EVERY tree level of EVERY call; the scratch is now hoisted
  // into the Process and must grow at most once for a fixed payload size.
  const int np = GetParam();
  constexpr std::size_t kN = 513;
  constexpr int kCalls = 20;
  for (const bool mode : {false, true}) {
    repro::ScopedEnable scope(mode);
    std::vector<std::uint64_t> allocs(static_cast<std::size_t>(np), 0);
    run_spmd(np, [&](Process& p) {
      std::vector<double> buf(kN);
      for (int c = 0; c < kCalls; ++c) {
        for (std::size_t i = 0; i < kN; ++i) {
          buf[i] = contribution(p.rank(), i + static_cast<std::size_t>(c));
        }
        p.allreduce_vec(buf);
        // Smaller payloads must reuse the same buffer, never re-grow.
        std::vector<double> small(kN / 4, 1.0);
        p.allreduce_vec(small);
      }
      allocs[static_cast<std::size_t>(p.rank())] =
          p.coll_scratch_allocations();
    });
    for (int r = 0; r < np; ++r) {
      // Only ranks that RECEIVE in the reduce phase touch the scratch
      // (pure senders — e.g. every odd rank — never do), so the pinned
      // property is "at most one growth ever": the pre-fix code allocated
      // at every tree level of every call (~kCalls * log2(np) times).
      EXPECT_LE(allocs[static_cast<std::size_t>(r)], 1u)
          << "repro=" << mode << " rank " << r;
    }
    // Rank 0 is the tree root: with np > 1 it always receives, and must
    // have grown the scratch exactly once across all 40 collectives.
    EXPECT_EQ(allocs[0], np == 1 ? 0u : 1u) << "repro=" << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, ReproCollectivesTest,
                         ::testing::ValuesIn(test_machine_sizes()));

}  // namespace
