// Unit and property tests for the exact superaccumulator behind the
// reproducible-reduction mode: exactness (no value is ever rounded until
// round()), order/partition invariance of the limb representation, IEEE
// round-to-nearest-even at the final rounding step (including subnormals
// and overflow), and the non-finite side-sum semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "hpfcg/repro/superacc.hpp"

namespace repro = hpfcg::repro;

namespace {

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

double round_all(std::span<const double> vals) {
  repro::Superacc acc;
  for (const double v : vals) acc.add(v);
  return acc.round();
}

/// Values spanning the magnitude range the issue names (1e±15 around 1.0)
/// plus signs, seeded deterministically.
std::vector<double> nasty_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> mant(-1.0, 1.0);
  std::uniform_int_distribution<int> expo(-50, 50);  // ~1e-15 .. 1e15
  std::vector<double> out(n);
  for (auto& v : out) v = std::ldexp(mant(gen), expo(gen));
  return out;
}

TEST(Superacc, EmptyAccumulatorIsZero) {
  repro::Superacc acc;
  EXPECT_TRUE(acc.is_zero());
  EXPECT_EQ(acc.round(), 0.0);
  EXPECT_FALSE(std::signbit(acc.round()));
}

TEST(Superacc, SingleValueRoundTripsBitExactly) {
  const double cases[] = {
      1.0,
      -1.5,
      3.141592653589793,
      1e308,
      -1.7976931348623157e308,              // max finite
      std::numeric_limits<double>::min(),   // min normal
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      5e-324,
      1e-300,
      std::ldexp(1.0, -1070),               // deep subnormal range
      6.02214076e23,
      -2.2250738585072014e-308,
  };
  for (const double v : cases) {
    repro::Superacc acc;
    acc.add(v);
    EXPECT_EQ(bits_of(acc.round()), bits_of(v)) << "value " << v;
  }
}

TEST(Superacc, CancellationIsExact) {
  // The classic drift generators: a naive left-to-right sum loses the small
  // addend entirely; the exact accumulator must not.
  EXPECT_EQ(round_all(std::vector<double>{1e16, 1.0, -1e16}), 1.0);
  EXPECT_EQ(round_all(std::vector<double>{1e200, 1e-200, -1e200}), 1e-200);
  EXPECT_EQ(round_all(std::vector<double>{1e100, 3.0, -1e100, 4.0}), 7.0);
  // Fully cancelling sum of many scales.
  std::vector<double> vals;
  for (int e = -40; e <= 40; ++e) {
    vals.push_back(std::ldexp(1.0, e));
    vals.push_back(-std::ldexp(1.0, e));
  }
  EXPECT_EQ(round_all(vals), 0.0);
}

TEST(Superacc, SumIsOrderInvariant) {
  auto vals = nasty_values(256, 0x5ac1u);
  const double reference = round_all(vals);
  std::mt19937_64 gen(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(vals.begin(), vals.end(), gen);
    EXPECT_EQ(bits_of(round_all(vals)), bits_of(reference))
        << "shuffle " << trial;
  }
  // Reversed, too.
  std::reverse(vals.begin(), vals.end());
  EXPECT_EQ(bits_of(round_all(vals)), bits_of(reference));
}

TEST(Superacc, MergeIsPartitionAndTreeInvariant) {
  const auto vals = nasty_values(300, 0xfeedu);
  const double reference = round_all(vals);

  // Arbitrary block cuts (the "any rebalance schedule" claim): accumulate
  // each part separately, merge left-to-right.
  for (const std::size_t parts : {2u, 3u, 5u, 8u}) {
    std::vector<repro::Superacc> accs(parts);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      accs[i % parts].add(vals[i]);  // cyclic cut: maximally scrambled
    }
    repro::Superacc total = accs[0];
    for (std::size_t p = 1; p < parts; ++p) total.merge(accs[p]);
    EXPECT_EQ(bits_of(total.round()), bits_of(reference))
        << parts << " parts, sequential merge";
  }

  // Binomial-tree merge over 8 parts (the collective's actual shape).
  std::vector<repro::Superacc> accs(8);
  std::size_t cut = 0;
  for (std::size_t p = 0; p < 8; ++p) {
    const std::size_t next = (p + 1) * vals.size() / 8;
    for (; cut < next; ++cut) accs[p].add(vals[cut]);
  }
  for (std::size_t stride = 1; stride < 8; stride *= 2) {
    for (std::size_t p = 0; p + stride < 8; p += 2 * stride) {
      accs[p].merge(accs[p + stride]);
    }
  }
  EXPECT_EQ(bits_of(accs[0].round()), bits_of(reference));
}

TEST(Superacc, RoundsToNearestEven) {
  // 1 + 2^-53 is exactly halfway between 1 and 1+2^-52: ties to even (1.0).
  {
    repro::Superacc acc;
    acc.add(1.0);
    acc.add(std::ldexp(1.0, -53));
    EXPECT_EQ(bits_of(acc.round()), bits_of(1.0));
  }
  // Any sticky bit below the halfway point breaks the tie upward.
  {
    repro::Superacc acc;
    acc.add(1.0);
    acc.add(std::ldexp(1.0, -53));
    acc.add(std::ldexp(1.0, -105));
    EXPECT_EQ(bits_of(acc.round()), bits_of(std::nextafter(1.0, 2.0)));
  }
  // (1+2^-52) + 2^-53 ties between an odd and an even mantissa: the even
  // neighbour (1+2^-51) wins.
  {
    repro::Superacc acc;
    acc.add(1.0 + std::ldexp(1.0, -52));
    acc.add(std::ldexp(1.0, -53));
    EXPECT_EQ(bits_of(acc.round()), bits_of(1.0 + std::ldexp(1.0, -51)));
  }
  // Below-halfway rounds down.
  {
    repro::Superacc acc;
    acc.add(1.0);
    acc.add(std::ldexp(1.0, -54));
    EXPECT_EQ(bits_of(acc.round()), bits_of(1.0));
  }
}

TEST(Superacc, SubnormalResultsAreExact) {
  const double dmin = std::numeric_limits<double>::denorm_min();
  {
    repro::Superacc acc;
    acc.add(dmin);
    acc.add(dmin);
    acc.add(dmin);
    EXPECT_EQ(bits_of(acc.round()), bits_of(3 * dmin));
  }
  // A difference of normals landing in the subnormal range.
  {
    const double a = std::numeric_limits<double>::min();  // 2^-1022
    const double b = std::ldexp(1.0, -1024);
    repro::Superacc acc;
    acc.add(a);
    acc.add(-b);
    // 2^-1022 - 2^-1024 = 3*2^-1024, exactly representable (subnormal).
    EXPECT_EQ(bits_of(acc.round()), bits_of(3 * std::ldexp(1.0, -1024)));
  }
}

TEST(Superacc, OverflowSaturatesToInfinity) {
  repro::Superacc acc;
  acc.add(1.7e308);
  acc.add(1.7e308);
  EXPECT_EQ(acc.round(), std::numeric_limits<double>::infinity());
  repro::Superacc neg;
  neg.add(-1.7e308);
  neg.add(-1.7e308);
  EXPECT_EQ(neg.round(), -std::numeric_limits<double>::infinity());
  // A later cancelling addend pulls it back: the accumulator itself never
  // overflowed, only the rounding would have.
  acc.add(-1.7e308);
  EXPECT_EQ(bits_of(acc.round()), bits_of(1.7e308));
}

TEST(Superacc, NonFiniteInputsFollowIeeeSemantics) {
  const double inf = std::numeric_limits<double>::infinity();
  {
    repro::Superacc acc;
    acc.add(inf);
    acc.add(123.0);
    EXPECT_EQ(acc.round(), inf);
  }
  {
    repro::Superacc acc;
    acc.add(-inf);
    EXPECT_EQ(acc.round(), -inf);
  }
  {
    repro::Superacc acc;
    acc.add(inf);
    acc.add(-inf);
    EXPECT_TRUE(std::isnan(acc.round()));
  }
  {
    repro::Superacc acc;
    acc.add(std::numeric_limits<double>::quiet_NaN());
    acc.add(1.0);
    EXPECT_TRUE(std::isnan(acc.round()));
  }
  // Non-finite state survives a merge.
  {
    repro::Superacc a, b;
    a.add(1.0);
    b.add(inf);
    a.merge(b);
    EXPECT_EQ(a.round(), inf);
  }
}

TEST(Superacc, DotAccumulateIsExactOnIntegerValues) {
  // Integer-valued doubles below 2^25: every product is exact in int64
  // arithmetic, so the correctly rounded dot is the integer dot.
  std::mt19937_64 gen(0xd07u);
  std::uniform_int_distribution<std::int64_t> d(-(1 << 25), 1 << 25);
  std::vector<double> x(512), y(512);
  std::int64_t exact = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::int64_t a = d(gen), b = d(gen);
    x[i] = static_cast<double>(a);
    y[i] = static_cast<double>(b);
    exact += a * b;
  }
  repro::Superacc acc = repro::dot_accumulate<double>(
      std::span<const double>(x), std::span<const double>(y));
  EXPECT_EQ(acc.round(), static_cast<double>(exact));
}

TEST(Superacc, DotAccumulateKeepsTwoProdLowParts) {
  // (1+2^-30)^2 = 1 + 2^-29 + 2^-60.  The naive product drops the 2^-60
  // term; TwoProd keeps it, and it must surface once a cancelling -1
  // removes the leading bits.
  const double a = 1.0 + std::ldexp(1.0, -30);
  const std::vector<double> x{a, -1.0};
  const std::vector<double> y{a, 1.0};
  repro::Superacc acc = repro::dot_accumulate<double>(
      std::span<const double>(x), std::span<const double>(y));
  const double expect = std::ldexp(1.0, -29) + std::ldexp(1.0, -60);
  EXPECT_EQ(bits_of(acc.round()), bits_of(expect));
}

TEST(Superacc, SumAccumulateMatchesManualAdds) {
  const auto vals = nasty_values(64, 0x50fau);
  repro::Superacc manual;
  for (const double v : vals) manual.add(v);
  repro::Superacc bulk =
      repro::sum_accumulate<double>(std::span<const double>(vals));
  EXPECT_EQ(bits_of(bulk.round()), bits_of(manual.round()));
}

TEST(Superacc, SurvivesRenormalizationThreshold) {
  // More adds than kRenormEvery, all the same magnitude: the limbs must
  // renormalize internally without losing a single ulp.  Scaling by a
  // power of two is exact, so the expected value is exact as well.
  const double v = 0.001;  // inexact in binary — deliberately
  constexpr std::size_t kN = (1u << 21) + 17;
  repro::Superacc acc;
  for (std::size_t i = 0; i < kN; ++i) acc.add(v);
  // Split the same work across two accumulators and merge: same bits.
  repro::Superacc lo_half, hi_half;
  for (std::size_t i = 0; i < kN / 2; ++i) lo_half.add(v);
  for (std::size_t i = kN / 2; i < kN; ++i) hi_half.add(v);
  lo_half.merge(hi_half);
  EXPECT_EQ(bits_of(acc.round()), bits_of(lo_half.round()));
  // 2^21 * v is an exact power-of-two scaling of v.
  repro::Superacc pow2;
  for (std::size_t i = 0; i < (1u << 21); ++i) pow2.add(v);
  EXPECT_EQ(bits_of(pow2.round()), bits_of(std::ldexp(v, 21)));
}

TEST(Superacc, TriviallyCopyableEnvelopeRoundTrips) {
  // The collective ships accumulators as raw bytes; memcpy must preserve
  // the full state.
  static_assert(std::is_trivially_copyable_v<repro::Superacc>);
  repro::Superacc acc;
  for (const double v : nasty_values(32, 0xc0b7u)) acc.add(v);
  alignas(repro::Superacc) unsigned char wire[sizeof(repro::Superacc)];
  std::memcpy(wire, &acc, sizeof acc);
  repro::Superacc back;
  std::memcpy(&back, wire, sizeof back);
  EXPECT_EQ(bits_of(back.round()), bits_of(acc.round()));
}

}  // namespace
