#include "hpfcg/trace/chrome_export.hpp"

#include <limits>
#include <ostream>
#include <sstream>

namespace hpfcg::trace {

namespace {

/// Trace-viewer lane for a span: communication, intrinsic compute, or
/// solver structure.  Lanes render as named threads inside the rank's
/// process, so the reduction-tree vs SAXPY split is visually separable.
int lane_of(SpanKind k) {
  switch (k) {
    case SpanKind::kSend:
    case SpanKind::kRecv:
    case SpanKind::kBarrier:
    case SpanKind::kBroadcast:
    case SpanKind::kReduce:
    case SpanKind::kAllreduceVec:
    case SpanKind::kAllreduceBatch:
    case SpanKind::kReduceBatch:
    case SpanKind::kAllgatherv:
    case SpanKind::kGatherv:
    case SpanKind::kScatterv:
    case SpanKind::kAlltoallv:
    case SpanKind::kExscan:
    case SpanKind::kSequential:
    case SpanKind::kHalo:
    case SpanKind::kGatherFull:
    case SpanKind::kReproMerge:
      return 0;
    case SpanKind::kDot:
    case SpanKind::kDotBatch:
    case SpanKind::kAxpy:
    case SpanKind::kAypx:
      return 1;
    case SpanKind::kMatvec:
    case SpanKind::kPrecond:
    case SpanKind::kIteration:
    case SpanKind::kRedistribute:
    case SpanKind::kMgLevel:
      return 2;
  }
  return 0;
}

double us(std::uint64_t ns) { return static_cast<double>(ns) * 1e-3; }

void meta_event(std::ostream& os, bool& first, int pid, const char* what,
                int tid, const std::string& name) {
  os << (first ? "" : ",\n") << R"( {"name":")" << what
     << R"(","ph":"M","pid":)" << pid;
  if (tid >= 0) os << R"(,"tid":)" << tid;
  os << R"(,"args":{"name":")" << name << R"("}})";
  first = false;
}

void counter_event(std::ostream& os, int pid, std::uint64_t t_ns,
                   const char* name, double value) {
  // max_digits10 decimal digits round-trip any finite double exactly
  // through strtod, so consumers that parse counter values back (the
  // reproducibility gates compare residuals bit-for-bit) see the same
  // bits the solver produced — the default 6-digit ostream precision
  // silently truncated them.
  const auto prev = os.precision(std::numeric_limits<double>::max_digits10);
  os << ",\n"
     << R"( {"name":")" << name << R"(","ph":"C","pid":)" << pid
     << R"(,"tid":0,"ts":)" << us(t_ns) << R"(,"args":{")" << name
     << R"(":)" << value << "}}";
  os.precision(prev);
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Session& session) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (int r = 0; r < session.nprocs(); ++r) {
    const int pid = r;
    meta_event(os, first, pid, "process_name", -1,
               "rank " + std::to_string(r));
    meta_event(os, first, pid, "thread_name", 0, "comm");
    meta_event(os, first, pid, "thread_name", 1, "intrinsics");
    meta_event(os, first, pid, "thread_name", 2, "solver");

    for (const Span& s : session.rank(r).spans()) {
      os << ",\n"
         << R"( {"name":")" << span_kind_name(s.kind)
         << R"(","ph":"X","pid":)" << pid << R"(,"tid":)" << lane_of(s.kind)
         << R"(,"ts":)" << us(s.t0_ns) << R"(,"dur":)"
         << us(s.t1_ns - s.t0_ns) << R"(,"args":{"bytes":)" << s.bytes
         << R"(,"a":)" << s.a << R"(,"depth":)" << s.depth << R"(,"aux":)"
         << static_cast<int>(s.aux) << "}}";
    }

    // Counter tracks from the solver metrics channel: the residual plus
    // Stats-cumulative merge and byte counters, one track each, so
    // Perfetto plots convergence against communication volume.
    for (const IterationMetrics& m : session.rank(r).iterations()) {
      counter_event(os, pid, m.t_ns, "residual", m.residual);
      counter_event(os, pid, m.t_ns, "reductions",
                    static_cast<double>(m.reductions));
      counter_event(os, pid, m.t_ns, "bytes_moved",
                    static_cast<double>(m.bytes_moved));
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(const Session& session) {
  std::ostringstream os;
  write_chrome_trace(os, session);
  return os.str();
}

}  // namespace hpfcg::trace
