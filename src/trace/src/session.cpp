#include "hpfcg/trace/session.hpp"

#include <algorithm>

namespace hpfcg::trace {

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kSend: return "send";
    case SpanKind::kRecv: return "recv";
    case SpanKind::kBarrier: return "barrier";
    case SpanKind::kBroadcast: return "broadcast";
    case SpanKind::kReduce: return "reduce";
    case SpanKind::kAllreduceVec: return "allreduce_vec";
    case SpanKind::kAllreduceBatch: return "allreduce_batch";
    case SpanKind::kReduceBatch: return "reduce_batch";
    case SpanKind::kAllgatherv: return "allgatherv";
    case SpanKind::kGatherv: return "gatherv";
    case SpanKind::kScatterv: return "scatterv";
    case SpanKind::kAlltoallv: return "alltoallv";
    case SpanKind::kExscan: return "exscan";
    case SpanKind::kSequential: return "sequential";
    case SpanKind::kDot: return "dot";
    case SpanKind::kDotBatch: return "dot_batch";
    case SpanKind::kAxpy: return "axpy";
    case SpanKind::kAypx: return "aypx";
    case SpanKind::kMatvec: return "matvec";
    case SpanKind::kPrecond: return "precond";
    case SpanKind::kIteration: return "iteration";
    case SpanKind::kRedistribute: return "redistribute";
    case SpanKind::kHalo: return "halo";
    case SpanKind::kGatherFull: return "gather_full";
    case SpanKind::kReproMerge: return "repro_merge";
    case SpanKind::kMgLevel: return "mg_level";
  }
  return "?";
}

RankTrace::RankTrace(std::size_t span_capacity,
                     std::chrono::steady_clock::time_point origin)
    : origin_(origin) {
  spans_.resize(std::max<std::size_t>(span_capacity, 1));
  // Iteration samples are far sparser than spans (one per solver
  // iteration, not one per message); a smaller ring keeps the footprint
  // proportionate while still holding every iteration of any realistic
  // solve.
  iters_.resize(std::clamp<std::size_t>(span_capacity / 8, 64, 8192));
}

std::vector<Span> RankTrace::spans() const {
  std::vector<Span> out;
  const auto cap = static_cast<std::uint64_t>(spans_.size());
  const std::uint64_t n = std::min(head_, cap);
  out.reserve(static_cast<std::size_t>(n));
  const std::uint64_t first = head_ - n;  // oldest surviving record
  for (std::uint64_t i = first; i < head_; ++i) {
    out.push_back(spans_[static_cast<std::size_t>(i % cap)]);
  }
  return out;
}

std::vector<IterationMetrics> RankTrace::iterations() const {
  std::vector<IterationMetrics> out;
  const auto cap = static_cast<std::uint64_t>(iters_.size());
  const std::uint64_t n = std::min(iter_head_, cap);
  out.reserve(static_cast<std::size_t>(n));
  const std::uint64_t first = iter_head_ - n;
  for (std::uint64_t i = first; i < iter_head_; ++i) {
    out.push_back(iters_[static_cast<std::size_t>(i % cap)]);
  }
  return out;
}

Session::Session(int nprocs, std::size_t span_capacity)
    : origin_(std::chrono::steady_clock::now()) {
  ranks_.reserve(static_cast<std::size_t>(nprocs > 0 ? nprocs : 1));
  for (int r = 0; r < std::max(nprocs, 1); ++r) {
    ranks_.push_back(std::make_unique<RankTrace>(span_capacity, origin_));
  }
}

std::uint64_t Session::total_recorded() const {
  std::uint64_t n = 0;
  for (const auto& r : ranks_) n += r->recorded();
  return n;
}

std::uint64_t Session::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& r : ranks_) n += r->dropped();
  return n;
}

void Session::clear() {
  for (auto& r : ranks_) r->clear();
}

}  // namespace hpfcg::trace
