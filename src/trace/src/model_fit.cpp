#include "hpfcg/trace/model_fit.hpp"

#include <array>
#include <cmath>
#include <cstddef>

namespace hpfcg::trace {

namespace {

/// Solve the 3x3 system A x = b by Gaussian elimination with partial
/// pivoting.  Returns false when A is (numerically) singular.
bool solve3(std::array<std::array<double, 3>, 3> a, std::array<double, 3> b,
            std::array<double, 3>& x) {
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-30) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < 3; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (int i = 0; i < 3; ++i) x[i] = b[i] / a[i][i];
  return true;
}

}  // namespace

ModelFit fit_cost_model(std::span<const FitSample> samples,
                        bool with_intercept, bool relative) {
  ModelFit fit;
  if (samples.size() < (with_intercept ? 3U : 2U)) return fit;

  // Weighted normal equations for T = x0·1 + x1·startups + x2·bytes, with
  // the intercept row/column zeroed out when it is excluded.  Relative
  // mode scales each row by 1/T, turning the objective into the sum of
  // squared RELATIVE residuals.
  std::array<std::array<double, 3>, 3> ata{};
  std::array<double, 3> atb{};
  for (const FitSample& s : samples) {
    const double w = relative && s.seconds > 0.0 ? 1.0 / s.seconds : 1.0;
    const std::array<double, 3> row{with_intercept ? w : 0.0,
                                    w * s.startups, w * s.bytes};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) ata[i][j] += row[i] * row[j];
      atb[i] += row[i] * (w * s.seconds);
    }
  }
  if (!with_intercept) ata[0][0] = 1.0;  // pin x0 = 0

  std::array<double, 3> x{};
  if (!solve3(ata, atb, x)) return fit;
  fit.t_fixed = with_intercept ? x[0] : 0.0;
  fit.t_startup = x[1];
  fit.t_comm = x[2];
  fit.ok = true;

  double sq = 0.0;
  for (const FitSample& s : samples) {
    double e = fit.predict(s.startups, s.bytes) - s.seconds;
    if (relative && s.seconds > 0.0) e /= s.seconds;
    sq += e * e;
  }
  fit.rms_residual = std::sqrt(sq / static_cast<double>(samples.size()));
  return fit;
}

std::vector<FitSample> tree_collective_samples(const RankTrace& trace) {
  std::vector<FitSample> out;
  for (const Span& s : trace.spans()) {
    if (!is_tree_collective(s.kind)) continue;
    // Allreduce-class collectives walk the tree up AND down; reduce- and
    // broadcast-class spans walk it once.  The measuring rank (use rank 0)
    // sees `depth` message events per pass, each moving the span's
    // payload.
    const double passes = (s.kind == SpanKind::kAllreduceVec ||
                           s.kind == SpanKind::kAllreduceBatch)
                              ? 2.0
                              : 1.0;
    FitSample f;
    f.startups = passes * static_cast<double>(s.depth);
    f.bytes = f.startups * static_cast<double>(s.bytes);
    f.seconds = s.seconds();
    out.push_back(f);
  }
  return out;
}

}  // namespace hpfcg::trace
