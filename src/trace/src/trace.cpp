#include "hpfcg/trace/trace.hpp"

#ifdef HPFCG_TRACE_ENABLED

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hpfcg::trace {

namespace {

bool env_truthy(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "ON") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "TRUE") == 0 || std::strcmp(v, "yes") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_truthy("HPFCG_TRACE", false)};
  return flag;
}

std::atomic<std::size_t>& capacity_flag() {
  static std::atomic<std::size_t> cap{[] {
    const char* v = std::getenv("HPFCG_TRACE_CAPACITY");
    if (v != nullptr) {
      const long long parsed = std::atoll(v);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return static_cast<std::size_t>(1) << 16;
  }()};
  return cap;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::size_t ring_capacity() {
  return capacity_flag().load(std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t spans) {
  capacity_flag().store(spans > 0 ? spans : 1, std::memory_order_relaxed);
}

}  // namespace hpfcg::trace

#endif  // HPFCG_TRACE_ENABLED
