#pragma once
// Span records and the per-rank ring buffer they live in.
//
// Threading model: a RankTrace has exactly one writer — the simulated
// processor that owns it, which runs on its own OS thread inside
// Runtime::run().  Readers (exporters, model fitting, tests) only touch a
// ring after run() joins, so the thread join provides the happens-before
// edge and the hot path needs no synchronization at all: recording a span
// is two clock reads and one 40-byte store into preallocated storage.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpfcg::trace {

/// What a span measured.  Communication kinds mirror the msg runtime's
/// primitives one-to-one; phase kinds mirror the paper's per-iteration
/// cost table (matvec / dot / saxpy).
enum class SpanKind : std::uint8_t {
  // point-to-point
  kSend,
  kRecv,
  // collectives (Process:: lowers allreduce to kReduce + kBroadcast)
  kBarrier,
  kBroadcast,
  kReduce,
  kAllreduceVec,
  kAllreduceBatch,
  kReduceBatch,
  kAllgatherv,
  kGatherv,
  kScatterv,
  kAlltoallv,
  kExscan,
  kSequential,
  // hpf intrinsic phases
  kDot,
  kDotBatch,
  kAxpy,
  kAypx,
  // solver phases
  kMatvec,
  kPrecond,
  kIteration,
  // data migration (sparse::redistribute / hpf::redistribute callers):
  // bytes = payload this rank shipped, a = destination count
  kRedistribute,
  // sparse halo executor (sparse::HaloPlan): one cached ghost exchange;
  // bytes = payload this rank sent, a = neighbor count, aux = 1 for the
  // reverse (transpose scatter/accumulate) direction
  kHalo,
  // legacy O(n) gather (DistributedVector::to_global): bytes = full vector
  kGatherFull,
  // reproducible-mode reduction (hpfcg::repro): one exact superaccumulator
  // all-reduce; a = batch width, bytes = width * sizeof(Superacc)
  kReproMerge,
  // one multigrid level's share of a V-cycle (solvers::MgPreconditioner):
  // a = level index (0 = finest), bytes = level rows * sizeof(double)
  kMgLevel,
};

/// Human-readable span kind (stable names; used by the Chrome exporter).
[[nodiscard]] const char* span_kind_name(SpanKind k);

/// True for the reduction/broadcast tree collectives whose cost the paper
/// models as t_startup·depth + t_comm·bytes per tree pass.
[[nodiscard]] constexpr bool is_tree_collective(SpanKind k) {
  return k == SpanKind::kBroadcast || k == SpanKind::kReduce ||
         k == SpanKind::kAllreduceVec || k == SpanKind::kAllreduceBatch ||
         k == SpanKind::kReduceBatch || k == SpanKind::kReproMerge;
}

/// How an Envelope's payload was stored (Span::aux for kSend/kRecv).
enum class EnvelopePath : std::uint8_t { kInline = 0, kPooled = 1, kHeap = 2 };

/// One recorded interval.  Fixed-size POD so the ring never allocates.
struct Span {
  std::uint64_t t0_ns = 0;  ///< begin, ns since session origin
  std::uint64_t t1_ns = 0;  ///< end, ns since session origin
  std::uint64_t bytes = 0;  ///< payload bytes (p2p) / width·elem (collective)
  std::uint32_t a = 0;      ///< peer rank, batch width, or iteration index
  std::uint16_t depth = 0;  ///< collective tree depth ceil(log2 NP)
  SpanKind kind = SpanKind::kSend;
  std::uint8_t aux = 0;     ///< EnvelopePath for kSend/kRecv; solver id etc.

  [[nodiscard]] double seconds() const {
    return static_cast<double>(t1_ns - t0_ns) * 1e-9;
  }
};

/// One per-iteration sample from the solver metrics channel: the residual
/// plus cumulative Stats counters at the moment the iteration closed, so
/// consumers difference neighbors to get per-iteration merges/bytes.
struct IterationMetrics {
  std::uint64_t t_ns = 0;
  std::uint64_t iteration = 0;
  double residual = 0.0;
  std::uint64_t reductions = 0;        ///< cumulative Stats.reductions
  std::uint64_t reduction_values = 0;  ///< cumulative Stats.reduction_values
  std::uint64_t bytes_moved = 0;       ///< cumulative sent + received bytes
  std::uint64_t messages = 0;          ///< cumulative sent + received count
  std::uint64_t flops = 0;             ///< cumulative Stats.flops
};

/// Fixed-capacity span ring for one rank.  Single-writer (the owning
/// rank's thread); read only after the machine joins.
class RankTrace {
 public:
  RankTrace(std::size_t span_capacity,
            std::chrono::steady_clock::time_point origin);

  RankTrace(const RankTrace&) = delete;
  RankTrace& operator=(const RankTrace&) = delete;
  RankTrace(RankTrace&&) = default;
  RankTrace& operator=(RankTrace&&) = default;

  /// Nanoseconds since the owning session's origin.
  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  /// Append a span; wraps over the oldest record when full (counted).
  void record(const Span& s) {
    if (spans_.empty()) return;
    spans_[static_cast<std::size_t>(head_ % spans_.size())] = s;
    ++head_;
  }

  /// Append an iteration-metrics sample (same wrap policy).
  void note_iteration(const IterationMetrics& m) {
    if (iters_.empty()) return;
    iters_[static_cast<std::size_t>(iter_head_ % iters_.size())] = m;
    ++iter_head_;
  }

  /// Spans in record order, oldest first (post-run only).
  [[nodiscard]] std::vector<Span> spans() const;

  /// Iteration metrics in record order, oldest first (post-run only).
  [[nodiscard]] std::vector<IterationMetrics> iterations() const;

  /// Total spans ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const { return head_; }

  /// Spans lost to ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const {
    const auto cap = static_cast<std::uint64_t>(spans_.size());
    return head_ > cap ? head_ - cap : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return spans_.size(); }

  /// Forget everything recorded so far (between benchmark phases).
  void clear() {
    head_ = 0;
    iter_head_ = 0;
  }

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<Span> spans_;             // preallocated ring storage
  std::vector<IterationMetrics> iters_; // preallocated ring storage
  std::uint64_t head_ = 0;
  std::uint64_t iter_head_ = 0;
};

/// RAII span guard: stamps the begin time at construction and records the
/// span at scope exit.  A null RankTrace (tracing off) makes every member
/// a no-op — the clock is never read.
class SpanScope {
 public:
  SpanScope(RankTrace* t, SpanKind kind, std::uint32_t a = 0,
            std::uint64_t bytes = 0, std::uint16_t depth = 0,
            std::uint8_t aux = 0)
      : t_(t) {
    if (t_ == nullptr) return;
    s_.kind = kind;
    s_.a = a;
    s_.bytes = bytes;
    s_.depth = depth;
    s_.aux = aux;
    s_.t0_ns = t_->now_ns();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() {
    if (t_ == nullptr) return;
    s_.t1_ns = t_->now_ns();
    t_->record(s_);
  }

  // Facts that are only known mid-span (actual sender, payload size,
  // storage path) are patched in before the scope closes.
  void set_bytes(std::uint64_t bytes) {
    if (t_ != nullptr) s_.bytes = bytes;
  }
  void set_peer(std::uint32_t peer) {
    if (t_ != nullptr) s_.a = peer;
  }
  void set_aux(std::uint8_t aux) {
    if (t_ != nullptr) s_.aux = aux;
  }

 private:
  RankTrace* t_;
  Span s_{};
};

}  // namespace hpfcg::trace
