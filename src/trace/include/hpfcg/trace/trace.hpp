#pragma once
// hpfcg::trace — per-rank span tracing with model-vs-measured validation.
//
// The paper's evaluation is purely analytical: Section 4 bills every CG
// phase with closed-form costs (t_startup·log N_P for the reduction tree,
// O(n/N_P) for SAXPY) and our CostModel reproduces the formulas.  This
// module closes the loop by *measuring* them: every rank records what it
// actually did — sends, receives, each collective with kind/width/tree
// depth, intrinsic and solver phases — into a fixed-capacity ring buffer
// (span.hpp), which exports to Chrome-trace/Perfetto JSON
// (chrome_export.hpp) and feeds a least-squares fit of t_startup/t_comm
// from the traced collectives (model_fit.hpp).
//
// Cost discipline mirrors hpfcg::check:
//   * side channel only — recording never sends messages and never touches
//     Stats, so every Stats counter is bit-identical whether tracing is
//     off, on, or compiled out (proved by bench_trace_overhead);
//   * hot path — one null-pointer branch when runtime-disabled; when
//     enabled, a span is two steady_clock reads and one store into a
//     preallocated ring (no locks, no allocation after init).
//
// Enablement is two-level:
//   compile time — CMake option HPFCG_TRACE (ON by default) defines
//     HPFCG_TRACE_ENABLED; OFF removes every hook from the binary;
//   run time — environment variable HPFCG_TRACE=1|on|true (sampled once),
//     or programmatic set_enabled() (tests, benches).  A msg::Runtime
//     samples the flag at construction, like the check harness.

#include <cstddef>

namespace hpfcg::trace {

/// True when the tracing hooks are compiled into the binary.
#ifdef HPFCG_TRACE_ENABLED
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

#ifdef HPFCG_TRACE_ENABLED
/// Runtime switch: env HPFCG_TRACE (parsed once) or set_enabled().
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Per-rank span ring capacity (env HPFCG_TRACE_CAPACITY, default 65536
/// spans ≈ 2.5 MiB/rank).  Sampled when a Session is constructed; when the
/// ring wraps, the oldest spans are overwritten and counted as dropped.
[[nodiscard]] std::size_t ring_capacity();
void set_ring_capacity(std::size_t spans);
#else
[[nodiscard]] inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
[[nodiscard]] inline constexpr std::size_t ring_capacity() { return 0; }
inline void set_ring_capacity(std::size_t) {}
#endif

/// RAII enable/disable for tests: restores the previous state on scope exit.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ~ScopedEnable() { set_enabled(prev_); }

 private:
  bool prev_;
};

}  // namespace hpfcg::trace
