#pragma once
// Per-machine trace session: one RankTrace per simulated processor, all
// sharing one clock origin so spans from different ranks line up on one
// timeline.  A msg::Runtime owns at most one Session for its lifetime
// (created at construction when tracing is enabled, like check::Harness);
// statistics accumulate across run() calls until clear().

#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "hpfcg/trace/span.hpp"

namespace hpfcg::trace {

class Session {
 public:
  /// `nprocs` rings of `span_capacity` spans each, preallocated here —
  /// nothing on the recording path allocates after this.
  Session(int nprocs, std::size_t span_capacity);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] int nprocs() const { return static_cast<int>(ranks_.size()); }

  [[nodiscard]] RankTrace& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] const RankTrace& rank(int r) const {
    return *ranks_[static_cast<std::size_t>(r)];
  }

  /// Nanoseconds since the session origin (same clock every rank stamps).
  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  /// Total spans recorded / dropped across all ranks.
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Forget all recorded spans and metrics (between benchmark phases).
  void clear();

 private:
  std::chrono::steady_clock::time_point origin_;
  // unique_ptr per rank so ring storage never moves once handed to a rank.
  std::vector<std::unique_ptr<RankTrace>> ranks_;
};

}  // namespace hpfcg::trace
