#pragma once
// Chrome-trace / Perfetto JSON exporter.
//
// Emits the Trace Event Format (the JSON Chrome's about:tracing and
// https://ui.perfetto.dev load directly): one *process* per simulated
// rank, two *threads* inside it — a communication lane (sends, receives,
// collectives) and a compute lane (intrinsic and solver phases) — plus
// counter tracks derived from the solver metrics channel (residual,
// cumulative merges, bytes moved), so the paper's "reduction tree vs
// SAXPY" cost split is visible on a real timeline.

#include <iosfwd>
#include <string>

#include "hpfcg/trace/session.hpp"

namespace hpfcg::trace {

/// Write the whole session as Chrome-trace JSON ("traceEvents" array
/// form).  Durations are microseconds (the format's native unit).
void write_chrome_trace(std::ostream& os, const Session& session);

/// Convenience: the same JSON as a string (tests, small traces).
[[nodiscard]] std::string chrome_trace_json(const Session& session);

}  // namespace hpfcg::trace
