#pragma once
// Least-squares recovery of the paper's machine parameters from traced
// collectives — the model-vs-measured half of hpfcg::trace.
//
// The paper's reduction-tree cost is `t_startup · d + t_comm · bytes` per
// tree pass (d = ceil(log2 N_P)).  Every traced tree collective gives one
// observation: the measured wall duration of the span against the number
// of tree edges on the measuring rank's critical path and the bytes that
// crossed them.  Fitting
//
//     T  =  t_fixed  +  t_startup · startups  +  t_comm · bytes
//
// over spans from machines of different sizes and batch widths identifies
// all three terms: t_fixed absorbs the per-call overhead the closed form
// omits, t_startup is the simulation's real per-message start-up latency,
// and t_comm its real per-byte cost.  bench_model_fit prints fitted vs
// CostModel-default values per term and gates on the fitted curve
// reproducing the measured times (EXPERIMENTS.md §TR).

#include <cstdint>
#include <span>
#include <vector>

#include "hpfcg/trace/span.hpp"

namespace hpfcg::trace {

/// One observation for the regression.
struct FitSample {
  double startups = 0.0;  ///< tree edges on the measured rank's path
  double bytes = 0.0;     ///< payload bytes crossing those edges
  double seconds = 0.0;   ///< measured wall duration
};

/// Fitted machine parameters (all seconds; t_comm seconds per byte).
struct ModelFit {
  double t_fixed = 0.0;
  double t_startup = 0.0;
  double t_comm = 0.0;
  double rms_residual = 0.0;  ///< root-mean-square fit error, seconds
  bool ok = false;            ///< false when the system was singular

  [[nodiscard]] double predict(double startups, double bytes) const {
    return t_fixed + t_startup * startups + t_comm * bytes;
  }
};

/// Ordinary least squares for the 3-term model above (2-term when
/// `with_intercept` is false).  Degenerate designs (fewer than 3
/// independent samples, collinear predictors) return ok = false.
/// With `relative` set, each sample is weighted by 1/seconds so the fit
/// minimizes RELATIVE residuals — the right objective when observations
/// span orders of magnitude (a 2-rank tree costs microseconds, an 8-rank
/// one tens of them) and the acceptance metric is percent error;
/// rms_residual is then the root-mean-square relative error.
[[nodiscard]] ModelFit fit_cost_model(std::span<const FitSample> samples,
                                      bool with_intercept = true,
                                      bool relative = false);

/// Extract fit samples from one rank's ring: every tree-collective span
/// becomes an observation, with startups/bytes derived from the span's
/// recorded tree depth and payload width (an allreduce-class span walks
/// the tree twice, a reduce/broadcast-class span once).  Root-rank traces
/// are the cleanest source: rank 0 sits on every tree's critical path for
/// both the reduce and the broadcast pass, so mixing traces from machines
/// of different sizes is safe and is exactly what identifies t_startup.
[[nodiscard]] std::vector<FitSample> tree_collective_samples(
    const RankTrace& trace);

}  // namespace hpfcg::trace
