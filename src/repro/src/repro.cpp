#include "hpfcg/repro/repro.hpp"

#ifdef HPFCG_REPRO_ENABLED

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hpfcg::repro {

namespace {

bool env_truthy(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "ON") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "TRUE") == 0 || std::strcmp(v, "yes") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_truthy("HPFCG_REPRO", false)};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

}  // namespace hpfcg::repro

#endif  // HPFCG_REPRO_ENABLED
