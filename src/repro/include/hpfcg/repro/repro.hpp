#pragma once
// hpfcg::repro — opt-in bit-reproducible floating-point reductions.
//
// Dot products and sum-allreduces normally round differently depending on
// NP, tree shape, and block-cut placement: floating-point addition is not
// associative, so the *same* solve returns different bits at NP=1 vs NP=8,
// and a mid-solve rebalance (sparse::redistribute) silently changes the
// answer of an in-flight CG.  With this mode on, every sum-class reduction
// — Process::allreduce / allreduce_batch / allreduce_vec and the local
// partial-sum loops of hpf::dot_product(s) / sum / norm2 — routes through
// an *exact* fixed-point superaccumulator (superacc.hpp).  Exact summation
// is associative and commutative, so the result is a pure function of the
// multiset of addends: any NP in {1..8}, any reduction-tree shape, and any
// rebalance schedule produce bit-identical results, rounded once at the
// end (the Iakymchuk et al. reproducible-PCG construction).
//
// Cost discipline mirrors hpfcg::check / hpfcg::trace / hpfcg::race:
//   * opt-in — default OFF; with the mode off every reduction takes the
//     ordinary float path and Stats/results stay bit-identical to a build
//     without the hooks (proved by bench_repro);
//   * observable — reductions routed through the mode bump the
//     Stats::repro_reductions / repro_values counters and record
//     kReproMerge trace spans, so the overhead is measurable, not guessed.
//
// Enablement is two-level:
//   compile time — CMake option HPFCG_REPRO (ON by default) defines
//     HPFCG_REPRO_ENABLED; OFF removes the re-routing branches;
//   run time — environment variable HPFCG_REPRO=1|on|true (sampled once)
//     or set_enabled().  A msg::Runtime samples the flag at construction,
//     like the check harness, so all ranks of a machine agree on the
//     collective shapes for the machine's whole lifetime.

namespace hpfcg::repro {

/// True when the reproducible-reduction branches are compiled in.
#ifdef HPFCG_REPRO_ENABLED
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

#ifdef HPFCG_REPRO_ENABLED
/// Runtime switch: env HPFCG_REPRO (parsed once) or set_enabled().
[[nodiscard]] bool enabled();
void set_enabled(bool on);
#else
[[nodiscard]] inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#endif

/// RAII enable/disable for tests: restores the previous state on scope exit.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ~ScopedEnable() { set_enabled(prev_); }

 private:
  bool prev_;
};

}  // namespace hpfcg::repro
