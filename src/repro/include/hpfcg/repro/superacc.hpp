#pragma once
// Exact fixed-point superaccumulator for reproducible summation.
//
// A Superacc holds the *exact* sum of any sequence of doubles as a
// carry-save fixed-point number: limb[i] counts multiples of
// 2^(32*i + kBias), so the represented value is
//
//   sum_i limb[i] * 2^(32*i + kBias).
//
// Every finite double decomposes as m * 2^e with m < 2^53 and
// e in [-1074, 971]; its mantissa lands in at most three adjacent limbs.
// Addition of two accumulators is element-wise integer limb addition —
// exact, associative, and commutative — which is the whole point: the sum
// is a pure function of the multiset of addends, independent of summation
// order, reduction-tree shape, NP, and block-cut placement.  Rounding back
// to double happens exactly once, with correct round-to-nearest-even, so
// the reproducible mode returns the correctly rounded exact sum.
//
// Limb geometry: bit positions of finite doubles span [-1074, 1023]; with
// kBias = -1088 a mantissa deposited at exponent e >= -1074 starts at
// in-array bit position e - kBias >= 14, and the topmost data bit
// (e = 971, bit e + 52 = 1023) lands in limb 65.  Limb 66 absorbs deposit
// spill, limb 67 absorbs renormalization carries and holds the sign.
// Limbs are int64 digit counters; deposits add at most 2^32 - 1 per limb,
// so with renormalization every 2^20 deposits the counters stay far from
// int64 overflow (|limb| < 2^53) even across merges.
//
// Infinities and NaNs cannot enter the fixed-point array; they accumulate
// in a parallel IEEE side-sum whose value class (±inf / NaN) is
// order-independent, and round() returns it whenever one was seen.
//
// The struct is trivially copyable so it travels through the msg runtime's
// memcpy-based envelopes unchanged: the merged limbs broadcast from rank 0
// are bit-identical on every rank, hence so is the rounded double.

#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace hpfcg::repro {

class Superacc {
 public:
  static constexpr int kLimbBits = 32;
  static constexpr int kLimbs = 68;
  static constexpr int kBias = -1088;
  /// Flop cost booked per merged value in allreduce_acc: one integer add
  /// per limb.
  static constexpr std::uint64_t kMergeFlops = kLimbs;

  /// Deposit one double exactly (finite) or into the IEEE side-sum
  /// (inf/NaN).  ±0 contributes nothing.
  void add(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    const int biased = static_cast<int>((bits >> 52) & 0x7FF);
    std::uint64_t m = bits & ((std::uint64_t{1} << 52) - 1);
    if (biased == 0x7FF) {  // inf / NaN: exact machinery cannot hold these
      nonfinite_ += v;
      ++nonfinite_count_;
      return;
    }
    int e = 0;
    if (biased == 0) {
      if (m == 0) return;  // ±0
      e = -1074;
    } else {
      m |= std::uint64_t{1} << 52;
      e = biased - 1075;
    }
    const int p = e - kBias;  // in-array bit position, >= 14
    const int li = p >> 5;
    const int off = p & 31;
    const std::uint64_t lo = m << off;  // low 64 bits of m * 2^off
    const std::uint64_t hi = off != 0 ? m >> (64 - off) : 0;  // the spill
    const std::int64_t sign = (bits >> 63) != 0 ? -1 : 1;
    limb_[static_cast<std::size_t>(li)] +=
        sign * static_cast<std::int64_t>(lo & 0xFFFFFFFFU);
    limb_[static_cast<std::size_t>(li) + 1] +=
        sign * static_cast<std::int64_t>(lo >> 32);
    limb_[static_cast<std::size_t>(li) + 2] +=
        sign * static_cast<std::int64_t>(hi);
    if (++adds_ >= kRenormEvery) renormalize();
  }

  /// Deposit the product a*b exactly via TwoProd: hi = fl(a*b) and
  /// lo = fma(a, b, -hi) satisfy hi + lo == a*b exactly (whenever hi is a
  /// finite normal; on overflow the pair degrades to the IEEE side-sum, and
  /// in the deep-underflow corner hi+lo is the nearest representable pair —
  /// in every case a pure function of (a, b), so reproducibility holds).
  void add_product(double a, double b) {
    const double hi = a * b;
    const double lo = std::fma(a, b, -hi);
    add(hi);
    add(lo);
  }

  /// Element-wise limb addition — the exact, associative merge used by the
  /// reduction tree.  Both sides should be in canonical (renormalized)
  /// form, which allreduce_acc guarantees before any accumulator travels.
  void merge(const Superacc& o) {
    for (std::size_t i = 0; i < limb_.size(); ++i) limb_[i] += o.limb_[i];
    nonfinite_ += o.nonfinite_;
    nonfinite_count_ += o.nonfinite_count_;
    adds_ += o.adds_ + 1;
    if (adds_ >= kRenormEvery) renormalize();
  }

  /// Propagate carries so every limb below the top holds one non-negative
  /// 32-bit digit (the top limb keeps the signed residue).  Values are
  /// unchanged; this bounds limb magnitudes and puts the accumulator in the
  /// canonical form merge() and the wire format rely on.
  void renormalize() {
    std::int64_t carry = 0;
    for (std::size_t i = 0; i + 1 < limb_.size(); ++i) {
      const std::int64_t v = limb_[i] + carry;
      carry = v >> kLimbBits;  // floor division: remainder stays in [0, 2^32)
      limb_[i] = v - (carry << kLimbBits);
    }
    limb_.back() += carry;
    adds_ = 0;
  }

  /// Round the exact sum to double once, with round-to-nearest-even
  /// (including the subnormal range).  If any inf/NaN was deposited the
  /// IEEE side-sum is returned instead.
  [[nodiscard]] double round() const {
    if (nonfinite_count_ != 0) return nonfinite_;
    Superacc c = *this;
    c.renormalize();
    const bool neg = c.limb_.back() < 0;
    if (neg) {
      for (auto& l : c.limb_) l = -l;
      c.renormalize();
    }
    int h = kLimbs - 1;
    while (h >= 0 && c.limb_[static_cast<std::size_t>(h)] == 0) --h;
    if (h < 0) return 0.0;
    const int msb =
        32 * h +
        static_cast<int>(std::bit_width(static_cast<std::uint64_t>(
            c.limb_[static_cast<std::size_t>(h)]))) -
        1;
    const int exp = msb + kBias;  // |sum| in [2^exp, 2^(exp+1))
    if (exp > 1023) return neg ? -HUGE_VAL : HUGE_VAL;
    // Mantissa LSB position: normal results keep 53 bits, results in the
    // subnormal range keep correspondingly fewer — extracting at the final
    // precision directly avoids any double rounding.
    const int lsb = (exp - 52 > -1074 ? exp - 52 : -1074) - kBias;  // >= 14
    std::uint64_t m = c.read_bits(lsb, msb - lsb + 1);
    const bool round_bit = c.read_bits(lsb - 1, 1) != 0;
    const bool sticky = c.any_below(lsb - 1);
    if (round_bit && (sticky || (m & 1) != 0)) ++m;
    const double mag = std::ldexp(static_cast<double>(m), lsb + kBias);
    return neg ? -mag : mag;
  }

  /// True when no value (finite or not) has been deposited.  Canonicalizes
  /// a copy, so cancellation to exact zero also reports zero.
  [[nodiscard]] bool is_zero() const {
    if (nonfinite_count_ != 0) return false;
    Superacc c = *this;
    c.renormalize();
    for (const auto& l : c.limb_) {
      if (l != 0) return false;
    }
    return true;
  }

 private:
  // Deposits between renormalizations; 2^20 keeps |limb| < 2^53 with wide
  // margin (each deposit moves a limb by < 2^32).
  static constexpr std::int64_t kRenormEvery = std::int64_t{1} << 20;

  /// Bits [lo, lo + count) of the canonical non-negative limb array as an
  /// integer (count <= 63); bit j of limb i has in-array position 32*i + j.
  [[nodiscard]] std::uint64_t read_bits(int lo, int count) const {
    std::uint64_t out = 0;
    int got = 0;
    int li = lo >> 5;
    int off = lo & 31;
    while (got < count && li < kLimbs) {
      const std::uint64_t chunk =
          static_cast<std::uint64_t>(limb_[static_cast<std::size_t>(li)]) >>
          off;
      out |= chunk << got;
      got += kLimbBits - off;
      off = 0;
      ++li;
    }
    if (count < 64) out &= (std::uint64_t{1} << count) - 1;
    return out;
  }

  /// Any set bit strictly below in-array position `bit`?
  [[nodiscard]] bool any_below(int bit) const {
    const int li = bit >> 5;
    const int off = bit & 31;
    for (int i = 0; i < li && i < kLimbs; ++i) {
      if (limb_[static_cast<std::size_t>(i)] != 0) return true;
    }
    if (li >= 0 && li < kLimbs && off != 0) {
      const std::uint64_t mask = (std::uint64_t{1} << off) - 1;
      if ((static_cast<std::uint64_t>(limb_[static_cast<std::size_t>(li)]) &
           mask) != 0) {
        return true;
      }
    }
    return false;
  }

  std::array<std::int64_t, kLimbs> limb_{};
  double nonfinite_ = 0.0;
  std::int64_t nonfinite_count_ = 0;
  std::int64_t adds_ = 0;
};

static_assert(std::is_trivially_copyable_v<Superacc>,
              "Superacc must travel through memcpy-based envelopes");

/// Exact local dot-product accumulation: every product enters the
/// accumulator exactly (TwoProd splits a double product into hi + lo;
/// float products are already exact in double), so the local partial sum
/// is independent of iteration order and block-cut placement.
template <class T>
[[nodiscard]] Superacc dot_accumulate(std::span<const T> x,
                                      std::span<const T> y) {
  Superacc acc;
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  for (std::size_t i = 0; i < n; ++i) {
    if constexpr (sizeof(T) < sizeof(double)) {
      acc.add(static_cast<double>(x[i]) * static_cast<double>(y[i]));
    } else {
      acc.add_product(static_cast<double>(x[i]), static_cast<double>(y[i]));
    }
  }
  return acc;
}

/// Exact local sum accumulation (the SUM intrinsic's local loop).
template <class T>
[[nodiscard]] Superacc sum_accumulate(std::span<const T> x) {
  Superacc acc;
  for (const T& v : x) acc.add(static_cast<double>(v));
  return acc;
}

}  // namespace hpfcg::repro
