#pragma once
// Schedule-perturbation replay harness.
//
// The completeness argument for a message-passing program is not "no race
// fired on the schedule we happened to see" but "no *reachable* schedule
// changes the answer, or every schedule that could is flagged".  This
// harness approximates the ISP/MUST exploration loop with randomized
// adversarial delivery: it runs one workload N+1 times — run 0 with the
// mailbox's deterministic oldest-first delivery (the baseline), runs 1..N
// with a nonzero replay seed so every any-source match picks uniformly
// among the eligible per-source heads — and classifies each perturbed run:
//
//   * identical  — bit-identical signature to the baseline (the common case
//     for deterministic solvers: per-(src,tag) FIFO is preserved by
//     construction, so programs that never race are replay-invariant);
//   * flagged    — signature diverged and the detector reported at least
//     one race in the baseline or the diverging run;
//   * unflagged  — signature diverged with no race reported anywhere: a
//     detector completeness bug, the one outcome that must never happen.
//
// The harness is deliberately msg-agnostic: callers hand it a closure that
// builds a machine, runs a solve under the given replay seed, and returns a
// result signature plus the run's race count.  (The race library sits below
// msg in the dependency order, so it cannot run machines itself.)

#include <cstdint>
#include <functional>
#include <vector>

namespace hpfcg::race {

/// Outcome of a single replayed run, as reported by the caller's closure.
struct ReplayRun {
  std::uint64_t signature = 0;  ///< bit-signature of the numerical result
  std::size_t races = 0;        ///< races the detector flagged during the run
};

/// Closure contract: execute the workload once with `seed` as the replay
/// seed (0 = unperturbed baseline) and detection enabled.
using ReplayFn = std::function<ReplayRun(std::uint64_t seed)>;

/// Aggregate verdict over one baseline plus `runs` perturbed replays.
struct ReplayReport {
  ReplayRun baseline;
  std::vector<std::uint64_t> seeds;  ///< the perturbed seeds, in run order
  std::vector<ReplayRun> perturbed;  ///< one entry per perturbed run
  std::size_t identical = 0;
  std::size_t flagged_divergences = 0;
  std::size_t unflagged_divergences = 0;

  /// The completeness property: every perturbed run either reproduced the
  /// baseline bit-for-bit or was flagged by the detector.
  [[nodiscard]] bool complete() const { return unflagged_divergences == 0; }

  /// Strict determinism: every perturbed run reproduced the baseline.
  [[nodiscard]] bool deterministic() const {
    return identical == perturbed.size();
  }
};

/// Run the replay loop: one baseline (seed 0) plus `runs` perturbed runs
/// with distinct nonzero sub-seeds derived from `base_seed` via SplitMix64.
[[nodiscard]] ReplayReport perturbed_replay(int runs, std::uint64_t base_seed,
                                            const ReplayFn& run_one);

}  // namespace hpfcg::race
