#pragma once
// hpfcg::race — vector-clock message-race detection with schedule
// perturbation replay.
//
// TSan sees races on *memory*; this layer sees races on *match order*.  The
// msg runtime has exactly the ingredients for logical message races that no
// memory checker can observe: wildcard (any-source) receives, a seq-stamped
// mailbox fast path, and mid-solve rebalancing.  Whether two in-flight
// sends could both satisfy one receive is a happens-before question, so
// every envelope piggybacks a compact vector clock (a side channel riding
// the Envelope struct, never the payload — Stats counters stay
// bit-identical), and a per-machine Detector flags:
//
//   * wildcard-receive races — two concurrently-in-flight sends that could
//     both match one any-source receive, reported with both candidate
//     source ranks and the receive site;
//   * unordered conflicting accesses to replicated/PRIVATE regions across
//     ranks (fed into the existing hpfcg::check violation ledger);
//   * fence-order hazards — a point-to-point message pending across a
//     fence-class collective (barrier / allreduce family) whose send the
//     collective's clock does not dominate.
//
// Paired with detection is a schedule-perturbation replayer (replay.hpp):
// with a nonzero replay seed, any-source matching picks uniformly among the
// eligible per-source heads instead of the oldest arrival — an adversarial
// network — while per-(src,tag) FIFO is preserved by construction.
// Re-running a solve N times under different seeds and asserting either
// bit-identical results or that every divergence was flagged is the
// ISP/MUST-style completeness argument for our solvers.
//
// Cost discipline mirrors hpfcg::check / hpfcg::trace:
//   * side channel only — detection never sends messages and never touches
//     Stats; with detection on (replay off), match order, Stats, and
//     modeled costs are bit-identical to a detector-free run (proved by
//     bench_race_overhead);
//   * hot path — one null-pointer branch per send/receive when disabled.
//
// Enablement is two-level:
//   compile time — CMake option HPFCG_RACE (ON by default) defines
//     HPFCG_RACE_ENABLED; OFF removes every hook from the binary;
//   run time — environment variable HPFCG_RACE=1|on|true (sampled once) or
//     set_enabled(); replay via HPFCG_RACE_SEED or set_replay_seed().
//     A msg::Runtime samples both at construction, like the check harness.

#include <cstdint>

namespace hpfcg::race {

/// True when the race-detection hooks are compiled into the binary.
#ifdef HPFCG_RACE_ENABLED
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

#ifdef HPFCG_RACE_ENABLED
/// Runtime switch: env HPFCG_RACE (parsed once) or set_enabled().
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Schedule-perturbation seed: 0 (default) keeps the mailbox's oldest-first
/// any-source delivery; nonzero seeds the adversarial permutation.  Env
/// HPFCG_RACE_SEED or set_replay_seed().
[[nodiscard]] std::uint64_t replay_seed();
void set_replay_seed(std::uint64_t seed);
#else
[[nodiscard]] inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
[[nodiscard]] inline constexpr std::uint64_t replay_seed() { return 0; }
inline void set_replay_seed(std::uint64_t) {}
#endif

/// RAII enable/disable for tests: restores the previous state on scope exit.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ~ScopedEnable() { set_enabled(prev_); }

 private:
  bool prev_;
};

/// RAII replay-seed override for tests and the replay harness.
class ScopedReplaySeed {
 public:
  explicit ScopedReplaySeed(std::uint64_t seed) : prev_(replay_seed()) {
    set_replay_seed(seed);
  }
  ScopedReplaySeed(const ScopedReplaySeed&) = delete;
  ScopedReplaySeed& operator=(const ScopedReplaySeed&) = delete;
  ~ScopedReplaySeed() { set_replay_seed(prev_); }

 private:
  std::uint64_t prev_;
};

}  // namespace hpfcg::race
