#pragma once
// Per-machine race detector: owns the per-rank vector clocks, the race
// ledger, the barrier join, the region table, and the replay RNGs.  One
// instance per msg::Runtime, created when detection or replay is enabled at
// Runtime construction; every hook is a side channel (no simulated
// messages, no Stats mutation).
//
// Threading contract: rank r's clock is touched only by rank r's thread
// (send / receive-completion ticks, barrier adoption, region snapshots), so
// clock accesses need no lock.  The join map, the race ledger, and the
// region table have their own mutexes; choose_wildcard() runs under the
// receiving mailbox's lock and takes at most the ledger mutex (lock order:
// mailbox -> ledger, never the reverse).

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpfcg/race/clock.hpp"
#include "hpfcg/util/rng.hpp"

namespace hpfcg::check {
class Harness;
}

namespace hpfcg::race {

/// What kind of match-order race a record describes.
enum class RaceKind : std::uint8_t {
  kWildcard = 0,    ///< two concurrent sends both eligible for one recv_any
  kRegion = 1,      ///< unordered conflicting accesses to a shared region
  kFenceOrder = 2,  ///< pending p2p message not dominated by a fence's clock
};

[[nodiscard]] const char* to_string(RaceKind kind);

/// One flagged race.  `rank` is where it was observed (the receiver, the
/// fence enterer, or the later region accessor); src_a/src_b name the two
/// racing participants, diagnostics-style (the check layer's convention of
/// naming the offending ranks).
struct RaceRecord {
  RaceKind kind = RaceKind::kWildcard;
  int rank = 0;
  int src_a = 0;
  int src_b = 0;
  int tag = 0;
  std::string site;    ///< receive call-site label (SiteScope), if any
  std::string detail;  ///< human-readable one-liner
};

/// Sharing discipline of a registered region.
enum class RegionKind : std::uint8_t {
  /// Per-rank copies (the paper's PRIVATE): concurrent writes are the
  /// normal case; only a write unordered with another rank's publish
  /// (merge) is harmful.
  kPrivate = 0,
  /// Every rank holds a copy assumed identical: any two cross-rank
  /// accesses, at least one a write, must be clock-ordered.
  kReplicated = 1,
};

class Detector {
 public:
  /// `ledger` (may be null) is the hpfcg::check harness: every race is
  /// mirrored into its violation list, so with both layers on a flagged
  /// race fails the runtime's teardown audit instead of passing silently.
  Detector(int nprocs, bool detect, std::uint64_t replay_seed,
           check::Harness* ledger);

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  [[nodiscard]] bool detecting() const { return detect_; }
  [[nodiscard]] bool replaying() const { return replay_seed_ != 0; }
  [[nodiscard]] int nprocs() const { return nprocs_; }

  // ---- clock hooks (called by the owning rank's thread) -----------------
  /// A send by `src`: tick its clock and write the stamp the envelope will
  /// carry.  No-op (stamp left empty) when detection is off.
  void on_send(int src, Stamp& stamp_out);

  /// A receive completed on `rank` for a message from `src` carrying
  /// `stamp`: merge then tick.
  void on_receive(int rank, int src, std::span<const std::uint32_t> stamp);

  /// Barrier protocol: every rank posts its clock before entering the
  /// runtime barrier and adopts the join (plus a tick) after leaving it.
  /// The runtime barrier guarantees all posts of a generation precede any
  /// adopt of that generation.
  void barrier_post(int rank);
  void barrier_adopt(int rank);

  // ---- wildcard matching (called under the receiving mailbox's lock) ----
  /// One eligible shard head during an any-source match.
  struct Candidate {
    int src = 0;
    std::uint64_t seq = 0;       ///< mailbox arrival stamp
    const Stamp* stamp = nullptr;
  };

  /// Pick which candidate an any-source receive matches and, when
  /// detecting, flag every candidate concurrent with the chosen one as a
  /// wildcard race.  Without replay the choice is the oldest arrival —
  /// bit-identical to the detector-free mailbox; with replay it is drawn
  /// from this rank's seeded RNG.  `cands` is nonempty and sorted by shard
  /// (source) order.
  [[nodiscard]] std::size_t choose_wildcard(int rank, int tag,
                                            std::span<const Candidate> cands);

  // ---- fence ordering ---------------------------------------------------
  /// Rank entered a fence-class collective (`what`) with `pending`
  /// unreceived point-to-point messages in its mailbox.  Any of them whose
  /// stamp is concurrent with the rank's current clock is a match the
  /// fence will not order — flagged once per (rank, src, tag).
  void on_fence(int rank, const char* what,
                std::span<const StampedMessage> pending);

  // ---- regions ----------------------------------------------------------
  /// Register a shared region.  SPMD discipline means every rank registers
  /// its regions in the same program order, so the per-rank ordinal is the
  /// machine-wide identity; ranks disagreeing on `kind` for one ordinal is
  /// itself reported.  Returns the region id.
  std::uint64_t register_region(int rank, RegionKind kind, std::string name);

  /// Record an access on `rank` at its current clock.  For kReplicated,
  /// a write concurrent with any other rank's recorded access (or any
  /// access concurrent with another rank's write) is flagged.
  void on_region_write(int rank, std::uint64_t region);
  void on_region_read(int rank, std::uint64_t region);

  /// A publish (merge) of a kPrivate region completed on `rank`: every
  /// other rank's recorded write must now be dominated by this rank's
  /// clock — the merge collective ordered it — or it raced the merge.
  void on_region_publish(int rank, std::uint64_t region);

  // ---- ledger -----------------------------------------------------------
  [[nodiscard]] std::size_t race_count() const;
  [[nodiscard]] std::vector<RaceRecord> records() const;
  /// Human-readable multi-line report (empty string when no races).
  [[nodiscard]] std::string report() const;
  /// Machine-readable report: {"nprocs":…, "races":[{…}…]}.
  void write_json(std::ostream& os) const;
  void clear();

  /// Test hook: rank's current clock.  Only meaningful from the rank's own
  /// thread or after the machine quiesced (run() joined).
  [[nodiscard]] std::span<const std::uint32_t> clock_view(int rank) const {
    return clocks_[static_cast<std::size_t>(rank)].view();
  }

 private:
  struct BarrierJoin {
    VectorClock join;
    int posted = 0;
    int adopted = 0;
  };

  struct RegionAccess {
    Stamp clock;
    bool valid = false;
  };

  struct Region {
    RegionKind kind = RegionKind::kPrivate;
    std::string name;
    std::vector<RegionAccess> writes;  ///< last write per rank
    std::vector<RegionAccess> reads;   ///< last read per rank
  };

  void record(RaceRecord rec);
  void region_access(int rank, std::uint64_t region, bool write);

  int nprocs_;
  bool detect_;
  std::uint64_t replay_seed_;
  check::Harness* ledger_;

  std::vector<VectorClock> clocks_;
  /// Replay RNG per rank; rank r's stream is drawn only under rank r's
  /// mailbox lock, so no extra synchronization is needed.
  std::vector<util::Xoshiro256> rngs_;

  mutable std::mutex join_mu_;
  std::unordered_map<std::uint64_t, BarrierJoin> joins_;
  std::vector<std::uint64_t> post_gen_;
  std::vector<std::uint64_t> adopt_gen_;

  mutable std::mutex region_mu_;
  std::vector<Region> regions_;
  std::vector<std::uint64_t> region_ordinal_;  ///< per-rank registration count

  mutable std::mutex ledger_mu_;
  std::vector<RaceRecord> races_;
  /// Dedup key: (kind, rank, tag, lo(src), hi(src)) — a racing pair is
  /// reported once, not once per retry of the same receive loop.
  std::set<std::tuple<int, int, int, int, int>> seen_;
};

/// Thread-local receive-site label, attached to wildcard-race reports so a
/// diagnostic names the receive that raced, not just its tag.  Scope one
/// around a receive region: `race::SiteScope site("pcg halo recv");`.
class SiteScope {
 public:
  explicit SiteScope(const char* label);
  SiteScope(const SiteScope&) = delete;
  SiteScope& operator=(const SiteScope&) = delete;
  ~SiteScope();

 private:
  const char* prev_;
};

/// The innermost SiteScope label on this thread ("" when none).
[[nodiscard]] const char* current_site();

}  // namespace hpfcg::race
