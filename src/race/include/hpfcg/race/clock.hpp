#pragma once
// Vector-clock algebra for the message-race detector.
//
// One component per rank; component r counts rank r's observable events
// (sends, receive completions, barrier passages).  The algebra is the
// textbook one:
//
//   tick(r)      — rank r performs an event: C[r] += 1.
//   merge(S)     — a receive completes with stamp S: C = max(C, S)
//                  element-wise (then tick, done by the caller).
//   compare(A,B) — the induced partial order.  A happens-before B iff
//                  A <= B element-wise and A != B; incomparable stamps are
//                  *concurrent*, which is precisely "could be delivered in
//                  either order" — the thing TSan cannot see.
//
// Stamps travel as plain std::vector<std::uint32_t> so the msg layer can
// carry them in an Envelope without depending on this header's types.

#include <cstdint>
#include <span>
#include <vector>

namespace hpfcg::race {

/// Raw stamp type as piggybacked on a message envelope.
using Stamp = std::vector<std::uint32_t>;

/// Outcome of comparing two stamps under the happens-before partial order.
enum class Order : std::uint8_t {
  kEqual = 0,
  kBefore = 1,      ///< left happens-before right
  kAfter = 2,       ///< right happens-before left
  kConcurrent = 3,  ///< incomparable: no causal path either way
};

/// Compare two equal-length stamps.  Zero-length stamps (a message sent
/// while detection was off) are treated as the bottom element: ordered
/// before everything non-empty, equal to each other.
[[nodiscard]] inline Order compare(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b) {
  if (a.empty() || b.empty()) {
    if (a.empty() && b.empty()) return Order::kEqual;
    return a.empty() ? Order::kBefore : Order::kAfter;
  }
  bool le = true;  // a <= b element-wise
  bool ge = true;  // a >= b element-wise
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) ge = false;
    if (a[i] > b[i]) le = false;
  }
  if (le && ge) return Order::kEqual;
  if (le) return Order::kBefore;
  if (ge) return Order::kAfter;
  return Order::kConcurrent;
}

/// True when neither stamp happens-before the other (and they differ).
[[nodiscard]] inline bool concurrent(std::span<const std::uint32_t> a,
                                     std::span<const std::uint32_t> b) {
  return compare(a, b) == Order::kConcurrent;
}

/// True when `a` happens-before-or-equals `b` (a is *dominated* by b).
[[nodiscard]] inline bool dominated(std::span<const std::uint32_t> a,
                                    std::span<const std::uint32_t> b) {
  const Order o = compare(a, b);
  return o == Order::kBefore || o == Order::kEqual;
}

/// One rank's clock.  Each rank's clock is mutated only by its own thread
/// (sends, receive completions); the barrier join copies it under the
/// detector's join mutex while its owner is parked inside the barrier.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int nprocs)
      : c_(static_cast<std::size_t>(nprocs), 0) {}

  void tick(int rank) { ++c_[static_cast<std::size_t>(rank)]; }

  /// Element-wise max with a received stamp (no-op for empty stamps).
  void merge(std::span<const std::uint32_t> stamp) {
    const std::size_t n = stamp.size() < c_.size() ? stamp.size() : c_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (stamp[i] > c_[i]) c_[i] = stamp[i];
    }
  }

  /// Replace this clock with a join result (barrier adoption).
  void adopt(const VectorClock& join) { c_ = join.c_; }

  [[nodiscard]] std::span<const std::uint32_t> view() const { return c_; }
  [[nodiscard]] Stamp snapshot() const { return c_; }
  [[nodiscard]] std::uint32_t component(int rank) const {
    return c_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::size_t size() const { return c_.size(); }

 private:
  Stamp c_;
};

/// A pending message's identity plus its piggybacked stamp — what the fence
/// check inspects (copied out under the mailbox lock).
struct StampedMessage {
  int src = 0;
  int tag = 0;
  Stamp stamp;
};

}  // namespace hpfcg::race
