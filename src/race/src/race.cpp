#include "hpfcg/race/race.hpp"

#ifdef HPFCG_RACE_ENABLED

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hpfcg::race {

namespace {

bool env_truthy(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "ON") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "TRUE") == 0 || std::strcmp(v, "yes") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_truthy("HPFCG_RACE", false)};
  return flag;
}

std::atomic<std::uint64_t>& seed_flag() {
  static std::atomic<std::uint64_t> seed{[] {
    const char* v = std::getenv("HPFCG_RACE_SEED");
    if (v != nullptr) {
      const unsigned long long parsed = std::strtoull(v, nullptr, 10);
      return static_cast<std::uint64_t>(parsed);
    }
    return std::uint64_t{0};
  }()};
  return seed;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::uint64_t replay_seed() {
  return seed_flag().load(std::memory_order_relaxed);
}

void set_replay_seed(std::uint64_t seed) {
  seed_flag().store(seed, std::memory_order_relaxed);
}

}  // namespace hpfcg::race

#endif  // HPFCG_RACE_ENABLED
