#include "hpfcg/race/detector.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "hpfcg/check/harness.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::race {

namespace {

thread_local const char* t_site = "";

/// JSON string escaping for the report (labels and details only).
void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u0020";  // control chars never appear; keep it valid
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

const char* to_string(RaceKind kind) {
  switch (kind) {
    case RaceKind::kWildcard: return "wildcard-receive";
    case RaceKind::kRegion: return "region";
    case RaceKind::kFenceOrder: return "fence-order";
  }
  return "?";
}

SiteScope::SiteScope(const char* label) : prev_(t_site) { t_site = label; }
SiteScope::~SiteScope() { t_site = prev_; }
const char* current_site() { return t_site; }

Detector::Detector(int nprocs, bool detect, std::uint64_t replay_seed,
                   check::Harness* ledger)
    : nprocs_(nprocs),
      detect_(detect),
      replay_seed_(replay_seed),
      ledger_(ledger),
      post_gen_(static_cast<std::size_t>(nprocs), 0),
      adopt_gen_(static_cast<std::size_t>(nprocs), 0),
      region_ordinal_(static_cast<std::size_t>(nprocs), 0) {
  HPFCG_REQUIRE(nprocs >= 1, "race::Detector needs at least one rank");
  clocks_.reserve(static_cast<std::size_t>(nprocs));
  rngs_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    clocks_.emplace_back(nprocs);
    // Distinct, deterministic stream per receiving rank.
    rngs_.emplace_back(replay_seed ^ (0x9e3779b97f4a7c15ULL *
                                      static_cast<std::uint64_t>(r + 1)));
  }
}

void Detector::on_send(int src, Stamp& stamp_out) {
  if (!detect_) return;
  auto& c = clocks_[static_cast<std::size_t>(src)];
  c.tick(src);
  stamp_out = c.snapshot();
}

void Detector::on_receive(int rank, int /*src*/,
                          std::span<const std::uint32_t> stamp) {
  if (!detect_) return;
  auto& c = clocks_[static_cast<std::size_t>(rank)];
  c.merge(stamp);
  c.tick(rank);
}

void Detector::barrier_post(int rank) {
  if (!detect_) return;
  std::lock_guard<std::mutex> lock(join_mu_);
  const std::uint64_t gen = post_gen_[static_cast<std::size_t>(rank)]++;
  BarrierJoin& j = joins_[gen];
  if (j.join.size() == 0) j.join = VectorClock(nprocs_);
  j.join.merge(clocks_[static_cast<std::size_t>(rank)].view());
  ++j.posted;
}

void Detector::barrier_adopt(int rank) {
  if (!detect_) return;
  std::lock_guard<std::mutex> lock(join_mu_);
  const std::uint64_t gen = adopt_gen_[static_cast<std::size_t>(rank)]++;
  auto it = joins_.find(gen);
  // The runtime barrier orders every post of a generation before any adopt
  // of it, so the join is complete here by construction.
  HPFCG_REQUIRE(it != joins_.end() && it->second.posted == nprocs_,
                "race: barrier join incomplete — barrier hook out of order");
  auto& c = clocks_[static_cast<std::size_t>(rank)];
  c.adopt(it->second.join);
  c.tick(rank);
  if (++it->second.adopted == nprocs_) joins_.erase(it);
}

std::size_t Detector::choose_wildcard(int rank, int tag,
                                      std::span<const Candidate> cands) {
  // Delivery choice first: oldest arrival unless replay perturbs it.
  std::size_t chosen = 0;
  if (replaying() && cands.size() > 1) {
    chosen = static_cast<std::size_t>(
        rngs_[static_cast<std::size_t>(rank)].below(cands.size()));
  } else {
    for (std::size_t i = 1; i < cands.size(); ++i) {
      if (cands[i].seq < cands[chosen].seq) chosen = i;
    }
  }
  if (!detect_ || cands.size() < 2) return chosen;

  // Any candidate concurrent with the chosen one could equally have been
  // delivered to this receive: a match-order race.  (Pairs not involving
  // the chosen message will surface when one of them is chosen by a later
  // receive of the same loop.)
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (i == chosen) continue;
    if (!concurrent(*cands[i].stamp, *cands[chosen].stamp)) continue;
    const int a = std::min(cands[chosen].src, cands[i].src);
    const int b = std::max(cands[chosen].src, cands[i].src);
    RaceRecord rec;
    rec.kind = RaceKind::kWildcard;
    rec.rank = rank;
    rec.src_a = a;
    rec.src_b = b;
    rec.tag = tag;
    rec.site = current_site();
    std::ostringstream os;
    os << "wildcard-receive race: any-source receive on rank " << rank
       << " (tag " << tag << (rec.site.empty() ? "" : ", site \"")
       << rec.site << (rec.site.empty() ? "" : "\"")
       << ") has concurrently-in-flight matches from rank " << a
       << " and rank " << b
       << " — delivery order is not fixed by any happens-before edge";
    rec.detail = os.str();
    record(std::move(rec));
  }
  return chosen;
}

void Detector::on_fence(int rank, const char* what,
                        std::span<const StampedMessage> pending) {
  if (!detect_) return;
  const auto my = clocks_[static_cast<std::size_t>(rank)].view();
  for (const StampedMessage& m : pending) {
    if (dominated(m.stamp, my)) continue;  // ordered before the fence
    // Sent strictly after the sender passed this fence (its own component
    // outruns everything we could have joined): delivery after the fence
    // is the only possibility — not a race.
    RaceRecord rec;
    rec.kind = RaceKind::kFenceOrder;
    rec.rank = rank;
    rec.src_a = m.src;
    rec.src_b = rank;
    rec.tag = m.tag;
    rec.site = current_site();
    std::ostringstream os;
    os << "fence-order hazard: rank " << rank << " entered " << what
       << " with a pending message from rank " << m.src << " (tag " << m.tag
       << ") whose send the collective's clock does not dominate — a "
          "receive after the fence may or may not be ordered with it";
    rec.detail = os.str();
    record(std::move(rec));
  }
}

std::uint64_t Detector::register_region(int rank, RegionKind kind,
                                        std::string name) {
  std::lock_guard<std::mutex> lock(region_mu_);
  const std::uint64_t id = region_ordinal_[static_cast<std::size_t>(rank)]++;
  if (id >= regions_.size()) {
    regions_.resize(id + 1);
  }
  Region& reg = regions_[id];
  if (reg.writes.empty()) {
    reg.kind = kind;
    reg.name = std::move(name);
    reg.writes.resize(static_cast<std::size_t>(nprocs_));
    reg.reads.resize(static_cast<std::size_t>(nprocs_));
  } else if (reg.kind != kind) {
    RaceRecord rec;
    rec.kind = RaceKind::kRegion;
    rec.rank = rank;
    rec.src_a = rank;
    rec.src_b = rank;
    rec.detail = "region \"" + reg.name + "\" (#" + std::to_string(id) +
                 ") registered with divergent sharing kinds across ranks — "
                 "SPMD region registration order diverged";
    record(std::move(rec));
  }
  return id;
}

void Detector::region_access(int rank, std::uint64_t region, bool write) {
  if (!detect_) return;
  const Stamp now = clocks_[static_cast<std::size_t>(rank)].snapshot();
  std::lock_guard<std::mutex> lock(region_mu_);
  HPFCG_REQUIRE(region < regions_.size(), "race: unknown region id");
  Region& reg = regions_[region];
  if (reg.kind == RegionKind::kReplicated) {
    // Conflicting = cross-rank pair with at least one write, unordered.
    for (int r = 0; r < nprocs_; ++r) {
      if (r == rank) continue;
      const auto ur = static_cast<std::size_t>(r);
      const RegionAccess& w = reg.writes[ur];
      const bool vs_write =
          w.valid && concurrent(w.clock, now);
      const RegionAccess& rd = reg.reads[ur];
      const bool vs_read =
          write && rd.valid && concurrent(rd.clock, now);
      if (!vs_write && !vs_read) continue;
      RaceRecord rec;
      rec.kind = RaceKind::kRegion;
      rec.rank = rank;
      rec.src_a = std::min(rank, r);
      rec.src_b = std::max(rank, r);
      std::ostringstream os;
      os << "region race: rank " << rank << (write ? " wrote" : " read")
         << " replicated region \"" << reg.name << "\" (#" << region
         << ") unordered with rank " << r << "'s "
         << (vs_write ? "write" : "read")
         << " — the replicated copies can diverge";
      rec.detail = os.str();
      record(std::move(rec));
    }
  }
  auto& slot = write ? reg.writes[static_cast<std::size_t>(rank)]
                     : reg.reads[static_cast<std::size_t>(rank)];
  slot.clock = now;
  slot.valid = true;
}

void Detector::on_region_write(int rank, std::uint64_t region) {
  region_access(rank, region, true);
}

void Detector::on_region_read(int rank, std::uint64_t region) {
  region_access(rank, region, false);
}

void Detector::on_region_publish(int rank, std::uint64_t region) {
  if (!detect_) return;
  const auto my = clocks_[static_cast<std::size_t>(rank)].view();
  std::lock_guard<std::mutex> lock(region_mu_);
  HPFCG_REQUIRE(region < regions_.size(), "race: unknown region id");
  Region& reg = regions_[region];
  for (int r = 0; r < nprocs_; ++r) {
    if (r == rank) continue;
    const RegionAccess& w = reg.writes[static_cast<std::size_t>(r)];
    if (!w.valid || dominated(w.clock, my)) continue;
    RaceRecord rec;
    rec.kind = RaceKind::kRegion;
    rec.rank = rank;
    rec.src_a = std::min(rank, r);
    rec.src_b = std::max(rank, r);
    std::ostringstream os;
    os << "region race: rank " << rank << "'s merge of private region \""
       << reg.name << "\" (#" << region << ") completed without ordering "
       << "rank " << r
       << "'s write — that update may or may not be in the merged result";
    rec.detail = os.str();
    record(std::move(rec));
  }
}

void Detector::record(RaceRecord rec) {
  {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    const auto key =
        std::make_tuple(static_cast<int>(rec.kind), rec.rank, rec.tag,
                        rec.src_a, rec.src_b);
    if (!seen_.insert(key).second) return;
    races_.push_back(rec);
  }
  // Mirror into the check violation ledger (non-throwing): with both layers
  // on, the runtime's teardown audit turns the race into a hard failure.
  if (ledger_ != nullptr) {
    ledger_->report_violation("hpfcg::race: " + rec.detail);
  }
}

std::size_t Detector::race_count() const {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  return races_.size();
}

std::vector<RaceRecord> Detector::records() const {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  return races_;
}

std::string Detector::report() const {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  if (races_.empty()) return {};
  std::ostringstream os;
  os << "hpfcg::race: " << races_.size() << " race(s) detected:\n";
  for (const RaceRecord& r : races_) {
    os << "  [" << to_string(r.kind) << "] " << r.detail << '\n';
  }
  return os.str();
}

void Detector::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  os << "{\"nprocs\": " << nprocs_ << ", \"replay_seed\": " << replay_seed_
     << ", \"races\": [";
  bool first = true;
  for (const RaceRecord& r : races_) {
    if (!first) os << ", ";
    first = false;
    os << "{\"kind\": \"" << to_string(r.kind) << "\", \"rank\": " << r.rank
       << ", \"src_a\": " << r.src_a << ", \"src_b\": " << r.src_b
       << ", \"tag\": " << r.tag << ", \"site\": ";
    json_escape(os, r.site);
    os << ", \"detail\": ";
    json_escape(os, r.detail);
    os << "}";
  }
  os << "]}";
}

void Detector::clear() {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  races_.clear();
  seen_.clear();
}

}  // namespace hpfcg::race
