#include "hpfcg/race/replay.hpp"

#include "hpfcg/util/error.hpp"
#include "hpfcg/util/rng.hpp"

namespace hpfcg::race {

ReplayReport perturbed_replay(int runs, std::uint64_t base_seed,
                              const ReplayFn& run_one) {
  HPFCG_REQUIRE(runs >= 0, "perturbed_replay: negative run count");
  HPFCG_REQUIRE(static_cast<bool>(run_one), "perturbed_replay: empty closure");

  ReplayReport report;
  report.baseline = run_one(0);

  util::SplitMix64 mix(base_seed ^ 0xd1b54a32d192ed03ULL);
  report.seeds.reserve(static_cast<std::size_t>(runs));
  report.perturbed.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    std::uint64_t seed = mix.next();
    if (seed == 0) seed = 1;  // 0 means "unperturbed"; never hand it out
    report.seeds.push_back(seed);
    const ReplayRun run = run_one(seed);
    report.perturbed.push_back(run);
    if (run.signature == report.baseline.signature) {
      ++report.identical;
    } else if (run.races > 0 || report.baseline.races > 0) {
      ++report.flagged_divergences;
    } else {
      ++report.unflagged_divergences;
    }
  }
  return report;
}

}  // namespace hpfcg::race
