#include "hpfcg/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "hpfcg/util/error.hpp"

namespace hpfcg::util {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  HPFCG_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HPFCG_REQUIRE(cells.size() == columns_.size(),
                "row width must match the header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |\n");
    }
  };

  os << "\n== " << title_ << " ==\n";
  print_row(columns_);
  os << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os << std::setprecision(prec) << v;
  return os.str();
}

std::string fmt_count(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int seen = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (seen != 0 && seen % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++seen;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace hpfcg::util
