#include "hpfcg/util/cli.hpp"

#include <algorithm>
#include <sstream>

#include "hpfcg/util/error.hpp"

namespace hpfcg::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    HPFCG_REQUIRE(arg.rfind("--", 0) == 0, "options must start with --: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      given_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      given_[arg] = argv[++i];
    } else {
      given_[arg] = "true";  // bare flag
    }
  }
}

std::string Cli::get(const std::string& name, const std::string& def,
                     const std::string& help) {
  doc_.push_back("  --" + name + " (default: " + def + ")  " + help);
  consumed_.push_back(name);
  const auto it = given_.find(name);
  return it == given_.end() ? def : it->second;
}

long Cli::get_int(const std::string& name, long def, const std::string& help) {
  const std::string v = get(name, std::to_string(def), help);
  try {
    return std::stol(v);
  } catch (const std::exception&) {
    throw Error("option --" + name + " expects an integer, got '" + v + "'");
  }
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& help) {
  // Never round-trip the default through text: std::to_string flattens
  // small magnitudes (1e-10 -> "0.000000").
  std::ostringstream def_text;
  def_text << def;
  doc_.push_back("  --" + name + " (default: " + def_text.str() + ")  " +
                 help);
  consumed_.push_back(name);
  const auto it = given_.find(name);
  if (it == given_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw Error("option --" + name + " expects a number, got '" + it->second +
                "'");
  }
}

bool Cli::get_flag(const std::string& name, const std::string& help) {
  doc_.push_back("  --" + name + " (flag)  " + help);
  consumed_.push_back(name);
  const auto it = given_.find(name);
  return it != given_.end() && it->second != "false";
}

std::string Cli::help_text(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& d : doc_) os << d << '\n';
  return os.str();
}

void Cli::finish() const {
  for (const auto& [name, value] : given_) {
    (void)value;
    if (std::find(consumed_.begin(), consumed_.end(), name) ==
        consumed_.end()) {
      throw Error("unknown option --" + name);
    }
  }
}

}  // namespace hpfcg::util
