#include "hpfcg/util/str.hpp"

#include <cctype>
#include <sstream>

namespace hpfcg::util {

std::vector<std::string> split_ws(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace hpfcg::util
