#pragma once
// Fixed-width ASCII table printer.
//
// The benchmark binaries regenerate the paper's analyses as tables on
// stdout; this formatter keeps them aligned and machine-greppable
// (one row per line, pipe-separated).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hpfcg::util {

/// Accumulates rows of string cells and renders an aligned table.
class Table {
 public:
  /// `title` is printed above the table; `columns` are the header cells.
  Table(std::string title, std::vector<std::string> columns);

  /// Append one row.  Must have exactly as many cells as there are columns.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render to `os` with per-column alignment.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` significant digits (benchmark table cells).
std::string fmt(double v, int prec = 4);

/// Format an integral count with thousands separators ("1,234,567").
std::string fmt_count(unsigned long long v);

}  // namespace hpfcg::util
