#pragma once
// Deterministic, seedable random number generation.
//
// All stochastic workload generators in hpf-cg (random sparse matrices,
// power-law degree sequences, right-hand sides) draw from Xoshiro256**,
// seeded through SplitMix64, so that every test and benchmark is exactly
// reproducible across runs and platforms.

#include <cstdint>
#include <limits>

namespace hpfcg::util {

/// SplitMix64: used to expand a single 64-bit seed into the Xoshiro state.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Xoshiro256** — fast, high-quality, 256-bit state PRNG.
/// Satisfies UniformRandomBitGenerator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless method, simplified (negligible bias for
    // the matrix sizes used here is unacceptable in tests, so we use the
    // rejection loop to make it exact).
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace hpfcg::util
