#pragma once
// Minimal command-line option parser for the example programs.
//
// Supports `--name value` and `--name=value` forms plus boolean flags.
// Unknown options raise an Error listing the accepted names, so examples
// are self-documenting.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace hpfcg::util {

/// Parses `--key value` / `--key=value` style options.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Declare an option with a default; returns the parsed or default value.
  std::string get(const std::string& name, const std::string& def,
                  const std::string& help);
  long get_int(const std::string& name, long def, const std::string& help);
  double get_double(const std::string& name, double def,
                    const std::string& help);
  bool get_flag(const std::string& name, const std::string& help);

  /// True if `--help` was passed; callers should print_help() and exit.
  [[nodiscard]] bool help_requested() const { return help_; }

  /// Render the accumulated option documentation.
  [[nodiscard]] std::string help_text(const std::string& program) const;

  /// Throws if any option given on the command line was never declared.
  void finish() const;

 private:
  std::map<std::string, std::string> given_;
  std::vector<std::string> consumed_;
  std::vector<std::string> doc_;
  bool help_ = false;
};

}  // namespace hpfcg::util
