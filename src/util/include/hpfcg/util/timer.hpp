#pragma once
// Wall-clock timing helper used by benchmarks and examples.

#include <chrono>

namespace hpfcg::util {

/// Monotonic stopwatch.  Construction starts it; seconds() reads elapsed time.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hpfcg::util
