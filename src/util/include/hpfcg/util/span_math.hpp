#pragma once
// Serial dense-vector kernels on std::span.
//
// These are the node-local building blocks the distributed layer composes:
// SAXPY/SAYPX (the paper's Section 2 vector updates), dot products, norms
// and fills.  Each returns the flop count it performed so callers can feed
// the cost model.

#include <cmath>
#include <cstddef>
#include <span>

#include "hpfcg/util/error.hpp"

namespace hpfcg::util {

/// y += alpha * x  (the SAXPY of the paper).  Returns flops (2n).
template <class T>
std::size_t axpy(T alpha, std::span<const T> x, std::span<T> y) {
  HPFCG_REQUIRE(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  return 2 * x.size();
}

/// y = alpha * y + x  (the SAYPX used for p = beta*p + r).  Returns flops.
template <class T>
std::size_t aypx(T alpha, std::span<const T> x, std::span<T> y) {
  HPFCG_REQUIRE(x.size() == y.size(), "aypx: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = alpha * y[i] + x[i];
  return 2 * x.size();
}

/// Element-wise scale: x *= alpha.  Returns flops (n).
template <class T>
std::size_t scale(T alpha, std::span<T> x) {
  for (auto& v : x) v *= alpha;
  return x.size();
}

/// Local (un-merged) inner product.  Returns the partial sum.
template <class T>
T dot_local(std::span<const T> x, std::span<const T> y) {
  HPFCG_REQUIRE(x.size() == y.size(), "dot: length mismatch");
  T acc{};
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

/// Local squared two-norm.
template <class T>
T norm2_sq_local(std::span<const T> x) {
  return dot_local(x, x);
}

/// x = value.
template <class T>
void fill(std::span<T> x, T value) {
  for (auto& v : x) v = value;
}

/// y = x (sizes must match).
template <class T>
void copy(std::span<const T> x, std::span<T> y) {
  HPFCG_REQUIRE(x.size() == y.size(), "copy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// max |x_i| over the local span (0 for empty spans).
template <class T>
T max_abs_local(std::span<const T> x) {
  T m{};
  for (const auto& v : x) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace hpfcg::util
