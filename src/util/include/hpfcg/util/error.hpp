#pragma once
// Error handling primitives for the hpf-cg library.
//
// Library invariants are checked with HPFCG_REQUIRE (always on; throws
// hpfcg::util::Error) so that misuse of the public API is diagnosable in
// release builds.  Internal consistency checks that are cheap enough to keep
// use HPFCG_ASSERT, which compiles out under NDEBUG.

#include <sstream>
#include <stdexcept>
#include <string>

namespace hpfcg::util {

/// Exception type thrown on violated preconditions anywhere in hpf-cg.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "hpfcg: requirement failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hpfcg::util

#define HPFCG_REQUIRE(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::hpfcg::util::detail::fail(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define HPFCG_ASSERT(cond) ((void)0)
#else
#define HPFCG_ASSERT(cond) HPFCG_REQUIRE(cond, "internal assertion")
#endif
