#pragma once
// Small string utilities shared by I/O and reporting code.

#include <string>
#include <vector>

namespace hpfcg::util {

/// Split `s` on whitespace runs; empty tokens are dropped.
std::vector<std::string> split_ws(const std::string& s);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Lower-case ASCII copy of `s`.
std::string to_lower(std::string s);

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s);

}  // namespace hpfcg::util
