#include "hpfcg/solvers/serial.hpp"

#include <cmath>
#include <vector>

#include "hpfcg/util/error.hpp"
#include "hpfcg/util/span_math.hpp"

namespace hpfcg::solvers {

namespace {

using util::axpy;
using util::aypx;
using util::dot_local;

double norm2(std::span<const double> v) { return std::sqrt(dot_local(v, v)); }

/// Shared epilogue bookkeeping.
void record(SolveResult& res, const SolveOptions& opts, double rnorm,
            double bnorm) {
  res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
  if (opts.track_residuals) res.residual_history.push_back(rnorm);
}

MatVec wrap(const sparse::Csr<double>& a) {
  return [&a](std::span<const double> x, std::span<double> y) {
    a.matvec(x, y);
  };
}

MatVec wrap_transpose(const sparse::Csr<double>& a) {
  return [&a](std::span<const double> x, std::span<double> y) {
    a.matvec_transpose(x, y);
  };
}

}  // namespace

SolveResult cg(const MatVec& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "cg: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> r(n), p(n), q(n);
  a(x, q);  // q = A x0
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - q[i];
  util::copy<double>(r, p);
  double rho = dot_local<double>(r, r);
  record(res, opts, std::sqrt(rho), bnorm);
  if (std::sqrt(rho) <= stop) {
    res.converged = true;
    return res;
  }

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    a(p, q);
    const double pq = dot_local<double>(p, q);
    if (pq == 0.0) {
      res.breakdown = true;
      break;
    }
    const double alpha = rho / pq;
    axpy<double>(alpha, p, x);
    axpy<double>(-alpha, q, r);
    const double rho_new = dot_local<double>(r, r);
    res.iterations = k + 1;
    record(res, opts, std::sqrt(rho_new), bnorm);
    if (std::sqrt(rho_new) <= stop) {
      res.converged = true;
      return res;
    }
    const double beta = rho_new / rho;
    aypx<double>(beta, r, p);  // p = beta*p + r (the saypx of Figure 2)
    rho = rho_new;
  }
  return res;
}

SolveResult cg(const sparse::Csr<double>& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts) {
  return cg(wrap(a), b, x, opts);
}

SolveResult cg_fused(const MatVec& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "cg_fused: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> r(n), w(n), p(n), s(n);
  a(x, w);  // scratch: w = A x0
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
  a(r, w);  // the extra start-up matvec of the fused recurrence
  // In the distributed solver these two dots are ONE merge.
  double gamma = dot_local<double>(r, r);
  double delta = dot_local<double>(w, r);
  record(res, opts, std::sqrt(gamma), bnorm);
  if (std::sqrt(gamma) <= stop) {
    res.converged = true;
    return res;
  }
  if (delta == 0.0) {
    res.breakdown = true;
    return res;
  }
  double alpha = gamma / delta;
  util::copy<double>(r, p);
  util::copy<double>(w, s);

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    axpy<double>(alpha, p, x);   // x = x + alpha p
    axpy<double>(-alpha, s, r);  // r = r - alpha s   (s = A p by recurrence)
    a(r, w);                     // w = A r — the iteration's only matvec
    const double gamma_new = dot_local<double>(r, r);
    const double delta_new = dot_local<double>(w, r);
    res.iterations = k + 1;
    record(res, opts, std::sqrt(gamma_new), bnorm);
    if (std::sqrt(gamma_new) <= stop) {
      res.converged = true;
      return res;
    }
    const double beta = gamma_new / gamma;
    const double denom = delta_new - beta * gamma_new / alpha;
    if (denom == 0.0) {
      res.breakdown = true;
      break;
    }
    alpha = gamma_new / denom;
    aypx<double>(beta, r, p);  // p = r + beta p
    aypx<double>(beta, w, s);  // s = w + beta s   (= A p, no extra matvec)
    gamma = gamma_new;
  }
  return res;
}

SolveResult cg_fused(const sparse::Csr<double>& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts) {
  return cg_fused(wrap(a), b, x, opts);
}

SolveResult pcg(const MatVec& a, const PrecApply& m_inv,
                std::span<const double> b, std::span<double> x,
                const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "pcg: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> r(n), z(n), p(n), q(n);
  a(x, q);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - q[i];
  record(res, opts, norm2(r), bnorm);
  if (norm2(r) <= stop) {
    res.converged = true;
    return res;
  }
  m_inv(r, z);
  util::copy<double>(z, p);
  double rho = dot_local<double>(r, z);

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    a(p, q);
    const double pq = dot_local<double>(p, q);
    if (pq == 0.0 || rho == 0.0) {
      res.breakdown = true;
      break;
    }
    const double alpha = rho / pq;
    axpy<double>(alpha, p, x);
    axpy<double>(-alpha, q, r);
    const double rnorm = norm2(r);
    res.iterations = k + 1;
    record(res, opts, rnorm, bnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    m_inv(r, z);
    const double rho_new = dot_local<double>(r, z);
    const double beta = rho_new / rho;
    aypx<double>(beta, z, p);  // p = beta*p + z
    rho = rho_new;
  }
  return res;
}

SolveResult pcg(const sparse::Csr<double>& a, const PrecApply& m_inv,
                std::span<const double> b, std::span<double> x,
                const SolveOptions& opts) {
  return pcg(wrap(a), m_inv, b, x, opts);
}

SolveResult pcg_fused(const MatVec& a, const PrecApply& m_inv,
                      std::span<const double> b, std::span<double> x,
                      const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "pcg_fused: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> r(n), u(n), w(n), p(n), s(n);
  a(x, w);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
  m_inv(r, u);
  a(u, w);
  // One fused merge of three inner products in the distributed solver.
  double gamma = dot_local<double>(r, u);
  double rr = dot_local<double>(r, r);
  double delta = dot_local<double>(w, u);
  record(res, opts, std::sqrt(rr), bnorm);
  if (std::sqrt(rr) <= stop) {
    res.converged = true;
    return res;
  }
  if (delta == 0.0) {
    res.breakdown = true;
    return res;
  }
  double alpha = gamma / delta;
  util::copy<double>(u, p);
  util::copy<double>(w, s);

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    axpy<double>(alpha, p, x);
    axpy<double>(-alpha, s, r);  // s = A p by recurrence
    m_inv(r, u);
    a(u, w);
    const double gamma_new = dot_local<double>(r, u);
    const double delta_new = dot_local<double>(w, u);
    rr = dot_local<double>(r, r);
    res.iterations = k + 1;
    record(res, opts, std::sqrt(rr), bnorm);
    if (std::sqrt(rr) <= stop) {
      res.converged = true;
      return res;
    }
    if (gamma == 0.0) {
      res.breakdown = true;
      break;
    }
    const double beta = gamma_new / gamma;
    const double denom = delta_new - beta * gamma_new / alpha;
    if (denom == 0.0) {
      res.breakdown = true;
      break;
    }
    alpha = gamma_new / denom;
    aypx<double>(beta, u, p);  // p = u + beta p
    aypx<double>(beta, w, s);  // s = w + beta s
    gamma = gamma_new;
  }
  return res;
}

SolveResult pcg_fused(const sparse::Csr<double>& a, const PrecApply& m_inv,
                      std::span<const double> b, std::span<double> x,
                      const SolveOptions& opts) {
  return pcg_fused(wrap(a), m_inv, b, x, opts);
}

SolveResult bicg(const MatVec& a, const MatVec& a_transpose,
                 std::span<const double> b, std::span<double> x,
                 const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "bicg: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> r(n), rt(n), p(n), pt(n), q(n), qt(n);
  a(x, q);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - q[i];
  util::copy<double>(r, rt);  // shadow residual: rt = r
  util::copy<double>(r, p);
  util::copy<double>(rt, pt);
  double rho = dot_local<double>(rt, r);
  record(res, opts, norm2(r), bnorm);
  if (norm2(r) <= stop) {
    res.converged = true;
    return res;
  }

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    if (rho == 0.0) {
      res.breakdown = true;
      break;
    }
    a(p, q);
    a_transpose(pt, qt);  // the A^T product that negates row-storage tuning
    const double ptq = dot_local<double>(pt, q);
    if (ptq == 0.0) {
      res.breakdown = true;
      break;
    }
    const double alpha = rho / ptq;
    axpy<double>(alpha, p, x);
    axpy<double>(-alpha, q, r);
    axpy<double>(-alpha, qt, rt);
    const double rnorm = norm2(r);
    res.iterations = k + 1;
    record(res, opts, rnorm, bnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    const double rho_new = dot_local<double>(rt, r);
    const double beta = rho_new / rho;
    aypx<double>(beta, r, p);    // p  = r  + beta*p
    aypx<double>(beta, rt, pt);  // pt = rt + beta*pt
    rho = rho_new;
  }
  return res;
}

SolveResult bicg(const sparse::Csr<double>& a, std::span<const double> b,
                 std::span<double> x, const SolveOptions& opts) {
  return bicg(wrap(a), wrap_transpose(a), b, x, opts);
}

SolveResult cgs(const MatVec& a, std::span<const double> b,
                std::span<double> x, const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "cgs: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> r(n), rt(n), p(n), q(n), u(n), vhat(n), uq(n), t(n);
  a(x, t);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - t[i];
  util::copy<double>(r, rt);
  record(res, opts, norm2(r), bnorm);
  if (norm2(r) <= stop) {
    res.converged = true;
    return res;
  }

  double rho_old = 1.0;
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    const double rho = dot_local<double>(rt, r);
    if (rho == 0.0) {
      res.breakdown = true;
      break;
    }
    if (k == 0) {
      util::copy<double>(r, u);
      util::copy<double>(u, p);
    } else {
      const double beta = rho / rho_old;
      for (std::size_t i = 0; i < n; ++i) u[i] = r[i] + beta * q[i];
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = u[i] + beta * (q[i] + beta * p[i]);
      }
    }
    a(p, vhat);
    const double sigma = dot_local<double>(rt, vhat);
    if (sigma == 0.0) {
      res.breakdown = true;
      break;
    }
    const double alpha = rho / sigma;
    for (std::size_t i = 0; i < n; ++i) q[i] = u[i] - alpha * vhat[i];
    for (std::size_t i = 0; i < n; ++i) uq[i] = u[i] + q[i];
    axpy<double>(alpha, uq, x);
    a(uq, t);
    axpy<double>(-alpha, t, r);
    const double rnorm = norm2(r);
    res.iterations = k + 1;
    record(res, opts, rnorm, bnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    if (!std::isfinite(rnorm)) {
      res.breakdown = true;  // CGS's "actual divergence" (Section 2.1)
      break;
    }
    rho_old = rho;
  }
  return res;
}

SolveResult cgs(const sparse::Csr<double>& a, std::span<const double> b,
                std::span<double> x, const SolveOptions& opts) {
  return cgs(wrap(a), b, x, opts);
}

SolveResult bicgstab(const MatVec& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "bicgstab: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> r(n), rt(n), p(n), v(n), s(n), t(n);
  a(x, t);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - t[i];
  util::copy<double>(r, rt);
  record(res, opts, norm2(r), bnorm);
  if (norm2(r) <= stop) {
    res.converged = true;
    return res;
  }

  double rho_old = 1.0, alpha = 1.0, omega = 1.0;
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    const double rho = dot_local<double>(rt, r);  // inner product 1
    if (rho == 0.0 || omega == 0.0) {
      res.breakdown = true;
      break;
    }
    if (k == 0) {
      util::copy<double>(r, p);
    } else {
      const double beta = (rho / rho_old) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    a(p, v);
    const double rtv = dot_local<double>(rt, v);  // inner product 2
    if (rtv == 0.0) {
      res.breakdown = true;
      break;
    }
    alpha = rho / rtv;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    const double snorm = norm2(s);
    if (snorm <= stop) {
      axpy<double>(alpha, p, x);
      res.iterations = k + 1;
      record(res, opts, snorm, bnorm);
      res.converged = true;
      return res;
    }
    a(s, t);
    const double ts = dot_local<double>(t, s);  // inner product 3
    const double tt = dot_local<double>(t, t);  // inner product 4
    if (tt == 0.0) {
      res.breakdown = true;
      break;
    }
    omega = ts / tt;
    axpy<double>(alpha, p, x);
    axpy<double>(omega, s, x);
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    const double rnorm = norm2(r);
    res.iterations = k + 1;
    record(res, opts, rnorm, bnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    rho_old = rho;
  }
  return res;
}

SolveResult bicgstab(const sparse::Csr<double>& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts) {
  return bicgstab(wrap(a), b, x, opts);
}

SolveResult bicgstab_fused(const MatVec& a, std::span<const double> b,
                           std::span<double> x, const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "bicgstab_fused: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> r(n), rt(n), p(n), v(n), s(n), t(n);
  a(x, t);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - t[i];
  util::copy<double>(r, rt);
  // Merge point 0: convergence norm and the first shadow product together
  // (rt = r here, but the distributed solver fuses them regardless).
  const double rr0 = dot_local<double>(r, r);
  double rho = dot_local<double>(rt, r);
  record(res, opts, std::sqrt(rr0), bnorm);
  if (std::sqrt(rr0) <= stop) {
    res.converged = true;
    return res;
  }

  double rho_old = 1.0, alpha = 1.0, omega = 1.0;
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    if (rho == 0.0 || omega == 0.0) {
      res.breakdown = true;
      break;
    }
    if (k == 0) {
      util::copy<double>(r, p);
    } else {
      const double beta = (rho / rho_old) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    a(p, v);
    const double rtv = dot_local<double>(rt, v);  // merge point 1 (width 1)
    if (rtv == 0.0) {
      res.breakdown = true;
      break;
    }
    alpha = rho / rtv;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    a(s, t);  // unconditional: the s-norm check rides the next merge
    // Merge point 2 (width 3): omega numerator/denominator + s-norm.
    const double ts = dot_local<double>(t, s);
    const double tt = dot_local<double>(t, t);
    const double ss = dot_local<double>(s, s);
    const double snorm = std::sqrt(ss);
    if (snorm <= stop) {
      axpy<double>(alpha, p, x);
      res.iterations = k + 1;
      record(res, opts, snorm, bnorm);
      res.converged = true;
      return res;
    }
    if (tt == 0.0) {
      res.breakdown = true;
      break;
    }
    omega = ts / tt;
    axpy<double>(alpha, p, x);
    axpy<double>(omega, s, x);
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    // Merge point 3 (width 2): convergence norm + next iteration's rho.
    const double rr = dot_local<double>(r, r);
    const double rtr = dot_local<double>(rt, r);
    const double rnorm = std::sqrt(rr);
    res.iterations = k + 1;
    record(res, opts, rnorm, bnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    rho_old = rho;
    rho = rtr;
  }
  return res;
}

SolveResult bicgstab_fused(const sparse::Csr<double>& a,
                           std::span<const double> b, std::span<double> x,
                           const SolveOptions& opts) {
  return bicgstab_fused(wrap(a), b, x, opts);
}

}  // namespace hpfcg::solvers
