#include "hpfcg/solvers/gmres.hpp"

#include <cmath>
#include <vector>

#include "hpfcg/util/error.hpp"
#include "hpfcg/util/span_math.hpp"

namespace hpfcg::solvers {

namespace {

double norm2(std::span<const double> v) {
  return std::sqrt(util::dot_local(v, v));
}

}  // namespace

SolveResult gmres(const MatVec& a, std::span<const double> b,
                  std::span<double> x, const GmresOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "gmres: dimension mismatch");
  HPFCG_REQUIRE(opts.restart >= 1, "gmres: restart length must be >= 1");
  const std::size_t n = b.size();
  const std::size_t m = opts.restart;
  SolveResult res;
  const double bnorm = norm2(b);
  const double stop =
      opts.base.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  // Krylov basis (m+1 vectors of length n) — the "greater storage" of
  // Section 2.1 — plus the (m+1)×m Hessenberg in packed columns.
  std::vector<std::vector<double>> v(m + 1, std::vector<double>(n));
  std::vector<std::vector<double>> h(m, std::vector<double>(m + 1, 0.0));
  std::vector<double> cs(m, 0.0), sn(m, 0.0), g(m + 1, 0.0), w(n);

  std::size_t total_steps = 0;
  while (total_steps < opts.base.max_iterations) {
    // Restart: r0 = b - A x, v1 = r0/|r0|.
    a(x, w);
    for (std::size_t i = 0; i < n; ++i) v[0][i] = b[i] - w[i];
    double beta = norm2(v[0]);
    res.relative_residual = bnorm > 0.0 ? beta / bnorm : beta;
    if (opts.base.track_residuals && total_steps == 0) {
      res.residual_history.push_back(beta);
    }
    if (beta <= stop) {
      res.converged = true;
      return res;
    }
    const double inv_beta = 1.0 / beta;
    for (auto& vi : v[0]) vi *= inv_beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t j = 0;  // columns built this cycle
    for (; j < m && total_steps < opts.base.max_iterations; ++j) {
      // Arnoldi step with modified Gram-Schmidt: w = A v_j, orthogonalize
      // against v_0..v_j (j+1 inner products + j+1 AXPYs).
      a(v[j], w);
      for (std::size_t i = 0; i <= j; ++i) {
        const double hij = util::dot_local<double>(w, v[i]);
        h[j][i] = hij;
        util::axpy<double>(-hij, v[i], w);
      }
      const double hnext = norm2(w);
      h[j][j + 1] = hnext;
      if (hnext > 0.0) {
        const double inv = 1.0 / hnext;
        for (std::size_t i = 0; i < n; ++i) v[j + 1][i] = w[i] * inv;
      }

      // Apply previous Givens rotations to the new column, then create the
      // rotation that annihilates h[j][j+1].
      for (std::size_t i = 0; i < j; ++i) {
        const double t = cs[i] * h[j][i] + sn[i] * h[j][i + 1];
        h[j][i + 1] = -sn[i] * h[j][i] + cs[i] * h[j][i + 1];
        h[j][i] = t;
      }
      const double denom =
          std::sqrt(h[j][j] * h[j][j] + h[j][j + 1] * h[j][j + 1]);
      if (denom == 0.0) {
        res.breakdown = true;
        break;
      }
      cs[j] = h[j][j] / denom;
      sn[j] = h[j][j + 1] / denom;
      h[j][j] = denom;
      h[j][j + 1] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];

      ++total_steps;
      res.iterations = total_steps;
      const double rnorm = std::abs(g[j + 1]);
      res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
      if (opts.base.track_residuals) res.residual_history.push_back(rnorm);
      if (rnorm <= stop || hnext == 0.0) {
        ++j;  // include this column in the update
        break;
      }
    }

    // Back-substitute y from the triangularized system, update x.
    if (j > 0) {
      std::vector<double> y(j, 0.0);
      for (std::size_t ii = j; ii-- > 0;) {
        double acc = g[ii];
        for (std::size_t k = ii + 1; k < j; ++k) acc -= h[k][ii] * y[k];
        y[ii] = acc / h[ii][ii];
      }
      for (std::size_t k = 0; k < j; ++k) {
        util::axpy<double>(y[k], v[k], x);
      }
    }
    if (res.breakdown) return res;

    if (res.relative_residual * (bnorm > 0.0 ? bnorm : 1.0) <= stop) {
      // Confirm with the true residual (restarted GMRES's recurrence
      // residual can drift).
      a(x, w);
      double true_r = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = b[i] - w[i];
        true_r += d * d;
      }
      true_r = std::sqrt(true_r);
      res.relative_residual = bnorm > 0.0 ? true_r / bnorm : true_r;
      if (true_r <= stop * 1.01) {
        res.converged = true;
        return res;
      }
    }
  }
  return res;
}

SolveResult gmres(const sparse::Csr<double>& a, std::span<const double> b,
                  std::span<double> x, const GmresOptions& opts) {
  return gmres(
      [&a](std::span<const double> p, std::span<double> q) { a.matvec(p, q); },
      b, x, opts);
}

}  // namespace hpfcg::solvers
