#include "hpfcg/solvers/dense_direct.hpp"

#include <cmath>

#include "hpfcg/util/error.hpp"

namespace hpfcg::solvers {

std::vector<double> gaussian_solve(std::span<const double> a,
                                   std::span<const double> b) {
  const std::size_t n = b.size();
  HPFCG_REQUIRE(a.size() == n * n, "gaussian_solve: A must be n×n");
  std::vector<double> m(a.begin(), a.end());
  std::vector<double> x(b.begin(), b.end());

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t piv = k;
    double best = std::abs(m[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(m[i * n + k]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    HPFCG_REQUIRE(best > 0.0, "gaussian_solve: singular matrix");
    if (piv != k) {
      for (std::size_t j = k; j < n; ++j) std::swap(m[k * n + j], m[piv * n + j]);
      std::swap(x[k], x[piv]);
    }
    const double inv = 1.0 / m[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = m[i * n + k] * inv;
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) m[i * n + j] -= f * m[k * n + j];
      x[i] -= f * x[k];
    }
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= m[ii * n + j] * x[j];
    x[ii] = acc / m[ii * n + ii];
  }
  return x;
}

std::vector<double> cholesky_factor(std::span<const double> a,
                                    std::size_t n) {
  HPFCG_REQUIRE(a.size() == n * n, "cholesky_factor: A must be n×n");
  std::vector<double> l(a.begin(), a.end());
  for (std::size_t j = 0; j < n; ++j) {
    double d = l[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= l[j * n + k] * l[j * n + k];
    HPFCG_REQUIRE(d > 0.0, "cholesky_factor: matrix is not positive definite");
    const double ljj = std::sqrt(d);
    l[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = l[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= l[i * n + k] * l[j * n + k];
      l[i * n + j] = s / ljj;
    }
    for (std::size_t k = j + 1; k < n; ++k) l[j * n + k] = 0.0;  // zero upper
  }
  return l;
}

std::vector<double> cholesky_solve_factored(std::span<const double> l,
                                            std::span<const double> b) {
  const std::size_t n = b.size();
  HPFCG_REQUIRE(l.size() == n * n, "cholesky_solve: factor must be n×n");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l[i * n + j] * y[j];
    y[i] = acc / l[i * n + i];
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l[j * n + ii] * x[j];
    x[ii] = acc / l[ii * n + ii];
  }
  return x;
}

std::vector<double> cholesky_solve(std::span<const double> a,
                                   std::span<const double> b) {
  return cholesky_solve_factored(cholesky_factor(a, b.size()), b);
}

double cholesky_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0 + 2.0 * nd * nd;  // factor + two triangular solves
}

double cg_flops(std::size_t n, std::size_t nnz, std::size_t iterations) {
  // Per iteration: matvec 2*nnz, two dots 4n, three axpy-like updates 6n.
  return static_cast<double>(iterations) *
         (2.0 * static_cast<double>(nnz) + 10.0 * static_cast<double>(n));
}

}  // namespace hpfcg::solvers
