#include "hpfcg/solvers/multigrid.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "hpfcg/repro/repro.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/trace/span.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::solvers {

namespace {

/// Fine gid co-located with coarse point (xc, yc, zc): every extent doubles.
std::size_t fine_gid_of(std::array<std::size_t, 3> fine_dims, std::size_t xc,
                        std::size_t yc, std::size_t zc) {
  return (2 * zc * fine_dims[1] + 2 * yc) * fine_dims[0] + 2 * xc;
}

}  // namespace

void GridTransfer::build(msg::Process& proc,
                         std::array<std::size_t, 3> fine_dims,
                         const hpf::Distribution& fine_dist,
                         std::array<std::size_t, 3> coarse_dims,
                         const hpf::Distribution& coarse_dist) {
  HPFCG_REQUIRE(fine_dist.contiguous() && coarse_dist.contiguous(),
                "GridTransfer: contiguous distributions required");
  const int np = proc.nprocs();
  const int me = proc.rank();
  const auto [clo, chi] = coarse_dist.local_range(me);
  const auto [flo, fhi] = fine_dist.local_range(me);

  coarse_peers_.clear();
  fine_peers_.clear();
  fine_idx_.clear();
  self_coarse_.clear();
  self_fine_.clear();

  // Inspector: walk my coarse rows in order; the co-located fine gid is
  // monotone in the coarse gid (both orderings are lexicographic in
  // (z, y, x)), so each fine owner's slice is one contiguous run.
  std::vector<std::vector<std::size_t>> requests(static_cast<std::size_t>(np));
  int run_rank = -1;
  std::size_t run_begin = 0;
  const auto close_run = [&](std::size_t end) {
    if (run_rank < 0 || run_rank == me || end == run_begin) return;
    coarse_peers_.push_back(
        Peer{run_rank, run_begin - clo, end - run_begin});
  };
  for (std::size_t ic = clo; ic < chi; ++ic) {
    const std::size_t zc = ic / (coarse_dims[0] * coarse_dims[1]);
    const std::size_t rem = ic % (coarse_dims[0] * coarse_dims[1]);
    const std::size_t yc = rem / coarse_dims[0];
    const std::size_t xc = rem % coarse_dims[0];
    const std::size_t g = fine_gid_of(fine_dims, xc, yc, zc);
    const int owner = fine_dist.owner(g);
    if (owner != run_rank) {
      close_run(ic);
      run_rank = owner;
      run_begin = ic;
    }
    if (owner == me) {
      self_coarse_.push_back(ic - clo);
      self_fine_.push_back(g - flo);
    } else {
      requests[static_cast<std::size_t>(owner)].push_back(g);
    }
  }
  close_run(chi);

  // One neighborhood personalized all-to-all ships the fine-gid request
  // lists; the replies tell this rank which of its owned fine entries each
  // coarse-side peer injects from.
  const auto replies = proc.neighbor_alltoallv<std::size_t>(requests);
  for (int r = 0; r < np; ++r) {
    if (r == me) continue;
    const auto& want = replies[static_cast<std::size_t>(r)];
    if (want.empty()) continue;
    fine_peers_.push_back(Peer{r, fine_idx_.size(), want.size()});
    for (const std::size_t g : want) {
      HPFCG_REQUIRE(g >= flo && g < fhi,
                    "GridTransfer: peer requested a fine entry this rank "
                    "does not own — grid maps diverged");
      fine_idx_.push_back(g - flo);
    }
  }
  built_ = true;
}

void GridTransfer::restrict_to(msg::Process& proc,
                               std::span<const double> fine,
                               std::span<double> coarse) const {
  HPFCG_REQUIRE(built_, "GridTransfer::restrict_to before build");
  for (const Peer& pe : fine_peers_) {
    if (pack_.size() < pe.count) pack_.resize(pe.count);
    for (std::size_t j = 0; j < pe.count; ++j) {
      pack_[j] = fine[fine_idx_[pe.offset + j]];
    }
    proc.send<double>(pe.rank, kRestrictTag,
                      std::span<const double>(pack_.data(), pe.count));
  }
  for (std::size_t i = 0; i < self_coarse_.size(); ++i) {
    coarse[self_coarse_[i]] = fine[self_fine_[i]];
  }
  for (const Peer& pe : coarse_peers_) {
    proc.recv_into<double>(pe.rank, kRestrictTag,
                           coarse.subspan(pe.offset, pe.count));
  }
}

void GridTransfer::prolong_add(msg::Process& proc,
                               std::span<const double> coarse,
                               std::span<double> fine) const {
  HPFCG_REQUIRE(built_, "GridTransfer::prolong_add before build");
  for (const Peer& pe : coarse_peers_) {
    proc.send<double>(pe.rank, kProlongTag,
                      coarse.subspan(pe.offset, pe.count));
  }
  std::uint64_t adds = self_fine_.size();
  for (std::size_t i = 0; i < self_fine_.size(); ++i) {
    fine[self_fine_[i]] += coarse[self_coarse_[i]];
  }
  for (const Peer& pe : fine_peers_) {
    if (pack_.size() < pe.count) pack_.resize(pe.count);
    proc.recv_into<double>(pe.rank, kProlongTag,
                           std::span<double>(pack_.data(), pe.count));
    for (std::size_t j = 0; j < pe.count; ++j) {
      fine[fine_idx_[pe.offset + j]] += pack_[j];
    }
    adds += pe.count;
  }
  proc.add_flops(adds);
}

MgPreconditioner::MgPreconditioner(msg::Process& proc,
                                   sparse::DistCsr<double>& fine,
                                   std::array<std::size_t, 3> fine_dims,
                                   const MgOptions& opts)
    : proc_(&proc), fine_(&fine), opts_(opts) {
  HPFCG_REQUIRE(fine.n() == fine_dims[0] * fine_dims[1] * fine_dims[2],
                "MgPreconditioner: grid dims disagree with the fine matrix");
  HPFCG_REQUIRE(fine.row_dist().contiguous(),
                "MgPreconditioner: contiguous fine distribution required");
  HPFCG_REQUIRE(opts.max_levels >= 1 && opts.pre_sweeps >= 1 &&
                    opts.post_sweeps >= 1 && opts.coarse_sweeps >= 1,
                "MgPreconditioner: sweeps and levels must be >= 1");
  exact_ = opts_.smoother == MgSmoother::kExactSymGs ||
           (opts_.smoother == MgSmoother::kAuto && repro::kCompiled &&
            repro::enabled());

  Level l0;
  l0.dims = fine_dims;
  l0.dist = fine.row_dist_ptr();
  l0.op = &fine;
  levels_.push_back(std::move(l0));

  while (levels_.size() < opts_.max_levels) {
    const auto d = levels_.back().dims;
    if (d[0] % 2 != 0 || d[1] % 2 != 0 || d[2] % 2 != 0) break;
    const std::array<std::size_t, 3> cd = {d[0] / 2, d[1] / 2, d[2] / 2};
    const std::size_t cn = cd[0] * cd[1] * cd[2];
    if (cn < opts_.min_coarse_rows) break;
    Level lc;
    lc.dims = cd;
    lc.dist = std::make_shared<const hpf::Distribution>(
        hpf::Distribution::block(cn, proc.nprocs()));
    // Geometric coarse operator: the same 27-point stencil on the halved
    // grid, built replicated (the DistCsr constructor conforms a content
    // fingerprint under checking) and cached — the descriptor trio of a
    // level never changes.
    const sparse::Csr<double> ac = sparse::stencil27_3d(cd[0], cd[1], cd[2]);
    lc.owned_op = std::make_unique<sparse::DistCsr<double>>(
        sparse::DistCsr<double>::row_aligned(proc, ac, lc.dist));
    lc.owned_op->enable_caching();
    lc.owned_op->prepare_halo();
    lc.op = lc.owned_op.get();
    lc.r = std::make_unique<hpf::DistributedVector<double>>(proc, lc.dist);
    lc.z = std::make_unique<hpf::DistributedVector<double>>(proc, lc.dist);
    lc.scratch =
        std::make_unique<hpf::DistributedVector<double>>(proc, lc.dist);
    levels_.push_back(std::move(lc));
  }

  levels_[0].scratch = std::make_unique<hpf::DistributedVector<double>>(
      proc, levels_[0].dist);
  for (std::size_t l = 0; l + 1 < levels_.size(); ++l) {
    levels_[l].to_coarse.build(proc, levels_[l].dims, *levels_[l].dist,
                               levels_[l + 1].dims, *levels_[l + 1].dist);
  }
}

void MgPreconditioner::apply(const hpf::DistributedVector<double>& r,
                             hpf::DistributedVector<double>& z) {
  ++proc_->stats().mg_vcycles;
  vcycle(0, r, z);
}

DistPrec<double> MgPreconditioner::prec() {
  return [this](const hpf::DistributedVector<double>& r,
                hpf::DistributedVector<double>& z) { apply(r, z); };
}

void MgPreconditioner::migrate_fine(const hpf::DistPtr& new_dist) {
  HPFCG_REQUIRE(new_dist != nullptr && new_dist->contiguous(),
                "migrate_fine: contiguous fine distribution required");
  levels_[0].dist = new_dist;
  levels_[0].scratch = std::make_unique<hpf::DistributedVector<double>>(
      *proc_, new_dist);
  if (levels_.size() > 1) {
    levels_[0].to_coarse.build(*proc_, levels_[0].dims, *new_dist,
                               levels_[1].dims, *levels_[1].dist);
  }
}

void MgPreconditioner::symgs(std::size_t l,
                             const hpf::DistributedVector<double>& rhs,
                             hpf::DistributedVector<double>& z,
                             std::size_t sweeps) {
  sparse::DistCsr<double>& a = *levels_[l].op;
  for (std::size_t s = 0; s < sweeps; ++s) {
    a.gs_half_sweep(rhs, z, /*forward=*/true, exact_);
    a.gs_half_sweep(rhs, z, /*forward=*/false, exact_);
    proc_->stats().mg_level_sweeps += 2;
  }
}

void MgPreconditioner::vcycle(std::size_t l,
                              const hpf::DistributedVector<double>& r,
                              hpf::DistributedVector<double>& z) {
  Level& lev = levels_[l];
  trace::SpanScope span(proc_->tracer_rank(), trace::SpanKind::kMgLevel,
                        static_cast<std::uint32_t>(l),
                        lev.dims[0] * lev.dims[1] * lev.dims[2] *
                            sizeof(double));
  auto zl = z.local();
  std::fill(zl.begin(), zl.end(), 0.0);
  if (l + 1 == levels_.size()) {
    symgs(l, r, z, opts_.coarse_sweeps);
    return;
  }
  symgs(l, r, z, opts_.pre_sweeps);

  // Fine residual, restricted to the next level's right-hand side.
  lev.op->matvec(z, *lev.scratch);
  auto sl = lev.scratch->local();
  const auto rl = r.local();
  for (std::size_t i = 0; i < sl.size(); ++i) sl[i] = rl[i] - sl[i];
  proc_->add_flops(sl.size());
  Level& coarse = levels_[l + 1];
  lev.to_coarse.restrict_to(*proc_,
                            std::span<const double>(sl.data(), sl.size()),
                            coarse.r->local());

  vcycle(l + 1, *coarse.r, *coarse.z);

  const auto czl = coarse.z->local();
  lev.to_coarse.prolong_add(*proc_,
                            std::span<const double>(czl.data(), czl.size()),
                            zl);
  symgs(l, r, z, opts_.post_sweeps);
}

}  // namespace hpfcg::solvers
