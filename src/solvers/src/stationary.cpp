#include "hpfcg/solvers/stationary.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "hpfcg/util/error.hpp"

namespace hpfcg::solvers {

namespace {

double residual_norm(const sparse::Csr<double>& a, std::span<const double> x,
                     std::span<const double> b, std::span<double> scratch) {
  a.matvec(x, scratch);
  double acc = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = b[i] - scratch[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

SolveResult jacobi_iteration(const sparse::Csr<double>& a,
                             std::span<const double> b, std::span<double> x,
                             const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "jacobi_iteration: dimension mismatch");
  const std::size_t n = b.size();
  SolveResult res;
  const auto diag = a.diagonal();
  for (std::size_t i = 0; i < diag.size(); ++i) {
    HPFCG_REQUIRE(diag[i] != 0.0,
                  "jacobi_iteration: zero diagonal entry in row " +
                      std::to_string(i));
  }
  double bnorm = 0.0;
  for (const double v : b) bnorm += v * v;
  bnorm = std::sqrt(bnorm);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> q(n);
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    const double rnorm = residual_norm(a, x, b, q);
    res.iterations = k;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    if (opts.track_residuals) res.residual_history.push_back(rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    // q currently holds A x; x_i += (b_i - (Ax)_i) / d_i.
    for (std::size_t i = 0; i < n; ++i) x[i] += (b[i] - q[i]) / diag[i];
  }
  return res;
}

SolveResult sor_iteration(const sparse::Csr<double>& a,
                          std::span<const double> b, std::span<double> x,
                          double omega, const SolveOptions& opts) {
  HPFCG_REQUIRE(b.size() == x.size(), "sor_iteration: dimension mismatch");
  HPFCG_REQUIRE(omega > 0.0 && omega < 2.0, "sor: omega must be in (0,2)");
  const std::size_t n = b.size();
  SolveResult res;
  const auto diag = a.diagonal();
  for (std::size_t i = 0; i < diag.size(); ++i) {
    HPFCG_REQUIRE(diag[i] != 0.0,
                  "sor_iteration: zero diagonal entry in row " +
                      std::to_string(i));
  }
  double bnorm = 0.0;
  for (const double v : b) bnorm += v * v;
  bnorm = std::sqrt(bnorm);
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<double> scratch(n);
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    const double rnorm = residual_norm(a, x, b, scratch);
    res.iterations = k;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    if (opts.track_residuals) res.residual_history.push_back(rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    // In-place forward sweep — each unknown uses already-updated
    // predecessors: the Scenario-2-style sequential dependency.
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      const auto cols = a.row_cols(i);
      const auto vals = a.row_values(i);
      for (std::size_t kk = 0; kk < cols.size(); ++kk) {
        if (cols[kk] != i) acc -= vals[kk] * x[cols[kk]];
      }
      x[i] = (1.0 - omega) * x[i] + omega * acc / diag[i];
    }
  }
  return res;
}

}  // namespace hpfcg::solvers
