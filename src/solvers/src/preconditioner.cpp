#include "hpfcg/solvers/preconditioner.hpp"

#include <memory>
#include <string>

#include "hpfcg/util/error.hpp"

namespace hpfcg::solvers {

PrecApply jacobi_preconditioner(const sparse::Csr<double>& a) {
  auto inv_diag = std::make_shared<std::vector<double>>(a.diagonal());
  for (std::size_t i = 0; i < inv_diag->size(); ++i) {
    HPFCG_REQUIRE((*inv_diag)[i] != 0.0,
                  "jacobi: zero diagonal entry in row " + std::to_string(i));
    (*inv_diag)[i] = 1.0 / (*inv_diag)[i];
  }
  return [inv_diag](std::span<const double> r, std::span<double> z) {
    HPFCG_REQUIRE(r.size() == inv_diag->size() && z.size() == r.size(),
                  "jacobi: dimension mismatch");
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = (*inv_diag)[i] * r[i];
  };
}

PrecApply ssor_preconditioner(const sparse::Csr<double>& a, double omega) {
  HPFCG_REQUIRE(omega > 0.0 && omega < 2.0, "ssor: omega must be in (0,2)");
  HPFCG_REQUIRE(a.n_rows() == a.n_cols(), "ssor: square matrices only");
  // Keep a private copy of the structure: the preconditioner must outlive
  // the caller's matrix reference safely.
  auto mat = std::make_shared<sparse::Csr<double>>(a);
  auto diag = std::make_shared<std::vector<double>>(a.diagonal());
  for (std::size_t i = 0; i < diag->size(); ++i) {
    HPFCG_REQUIRE((*diag)[i] != 0.0,
                  "ssor: zero diagonal entry in row " + std::to_string(i));
  }
  const double scale = omega * (2.0 - omega);

  return [mat, diag, omega, scale](std::span<const double> r,
                                   std::span<double> z) {
    const std::size_t n = mat->n_rows();
    HPFCG_REQUIRE(r.size() == n && z.size() == n, "ssor: dimension mismatch");
    std::vector<double> y(n);
    // Forward sweep: (D/omega + L) y = r   <=>  (D + omega L) (y/omega)=r;
    // we solve (D + omega L) y' = r with y' implicit in y.
    for (std::size_t i = 0; i < n; ++i) {
      double acc = r[i];
      const auto cols = mat->row_cols(i);
      const auto vals = mat->row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] < i) acc -= omega * vals[k] * y[cols[k]];
      }
      y[i] = acc / (*diag)[i];
    }
    // Scale by D.
    for (std::size_t i = 0; i < n; ++i) y[i] *= (*diag)[i];
    // Backward sweep: (D + omega U) z = y.
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = y[ii];
      const auto cols = mat->row_cols(ii);
      const auto vals = mat->row_values(ii);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] > ii) acc -= omega * vals[k] * z[cols[k]];
      }
      z[ii] = acc / (*diag)[ii];
    }
    for (std::size_t i = 0; i < n; ++i) z[i] *= scale;
  };
}

PrecApply identity_preconditioner() {
  return [](std::span<const double> r, std::span<double> z) {
    HPFCG_REQUIRE(r.size() == z.size(), "identity prec: dimension mismatch");
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i];
  };
}

}  // namespace hpfcg::solvers
