#pragma once
// Shared iterative-solver configuration and reporting types.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpfcg::solvers {

/// Stopping control for every iterative solver in the suite.
struct SolveOptions {
  std::size_t max_iterations = 1000;
  /// Converged when ||r||_2 <= rel_tolerance * ||b||_2 (absolute when b=0).
  double rel_tolerance = 1e-10;
  /// Record ||r||_2 after every iteration (residual_history).
  bool track_residuals = false;
  /// Mid-solve load rebalancing (distributed cg/pcg/cg_fused only): every
  /// this many iterations the solver invokes its RebalanceHook, which may
  /// migrate the matrix onto new cut points and return the new row
  /// distribution; the solver then re-aligns its live vectors with
  /// hpf::redistribute.  0 (default) disables the hook entirely — the
  /// solve is bit-identical to one that never heard of rebalancing.
  std::size_t rebalance_every = 0;
};

/// Outcome of an iterative solve.
struct SolveResult {
  std::size_t iterations = 0;
  bool converged = false;
  /// True when the recurrence broke down (zero inner product) before
  /// reaching the tolerance — possible for CGS/BiCG on hard problems, and
  /// the reason the paper calls CGS numerically undesirable.
  bool breakdown = false;
  /// ||r||_2 / ||b||_2 at exit.
  double relative_residual = 0.0;
  /// Per-iteration ||r||_2 (filled only when track_residuals).
  std::vector<double> residual_history;

  /// Bit-exact fingerprint of the solve's observable trajectory: FNV-1a
  /// over the raw bits of every recorded residual plus the iteration count,
  /// convergence, and exit residual.  Two solves are replay-equivalent iff
  /// their signatures match — the comparison currency of the hpfcg::race
  /// schedule-perturbation replayer (solve with track_residuals so the
  /// whole trajectory is pinned, not just the endpoint).
  [[nodiscard]] std::uint64_t residual_signature() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001b3ULL;
      }
    };
    for (const double r : residual_history) mix(std::bit_cast<std::uint64_t>(r));
    mix(static_cast<std::uint64_t>(iterations));
    mix(static_cast<std::uint64_t>(converged) |
        (static_cast<std::uint64_t>(breakdown) << 1));
    mix(std::bit_cast<std::uint64_t>(relative_residual));
    return h;
  }
};

}  // namespace hpfcg::solvers
