#pragma once
// Shared iterative-solver configuration and reporting types.

#include <cstddef>
#include <vector>

namespace hpfcg::solvers {

/// Stopping control for every iterative solver in the suite.
struct SolveOptions {
  std::size_t max_iterations = 1000;
  /// Converged when ||r||_2 <= rel_tolerance * ||b||_2 (absolute when b=0).
  double rel_tolerance = 1e-10;
  /// Record ||r||_2 after every iteration (residual_history).
  bool track_residuals = false;
  /// Mid-solve load rebalancing (distributed cg/pcg/cg_fused only): every
  /// this many iterations the solver invokes its RebalanceHook, which may
  /// migrate the matrix onto new cut points and return the new row
  /// distribution; the solver then re-aligns its live vectors with
  /// hpf::redistribute.  0 (default) disables the hook entirely — the
  /// solve is bit-identical to one that never heard of rebalancing.
  std::size_t rebalance_every = 0;
};

/// Outcome of an iterative solve.
struct SolveResult {
  std::size_t iterations = 0;
  bool converged = false;
  /// True when the recurrence broke down (zero inner product) before
  /// reaching the tolerance — possible for CGS/BiCG on hard problems, and
  /// the reason the paper calls CGS numerically undesirable.
  bool breakdown = false;
  /// ||r||_2 / ||b||_2 at exit.
  double relative_residual = 0.0;
  /// Per-iteration ||r||_2 (filled only when track_residuals).
  std::vector<double> residual_history;
};

}  // namespace hpfcg::solvers
