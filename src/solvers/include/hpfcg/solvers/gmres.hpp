#pragma once
// GMRES(m) — the "more complex algorithms such as GMRES [that] make use of
// longer recurrences (which require greater storage)" of Section 2.1.
//
// Restarted GMRES with Arnoldi orthogonalization (modified Gram-Schmidt)
// and Givens-rotation least squares.  Unlike CG's three-vector recurrence,
// GMRES(m) stores an m+1-vector Krylov basis — the storage/communication
// trade-off the paper contrasts against CG: every Arnoldi step performs
// j+1 inner products, so the merge traffic per iteration grows linearly
// with the restart length where CG's stays constant.

#include <cstddef>
#include <span>

#include "hpfcg/solvers/options.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/csr.hpp"

namespace hpfcg::solvers {

/// Restart-length control on top of the shared options.
struct GmresOptions {
  SolveOptions base{};
  std::size_t restart = 30;  ///< m: Krylov basis size between restarts
};

/// Matrix-free restarted GMRES.  Works for any nonsingular A (not just
/// SPD).  `x` carries the initial guess in and the solution out.
/// SolveResult::iterations counts total inner (Arnoldi) steps.
SolveResult gmres(const MatVec& a, std::span<const double> b,
                  std::span<double> x, const GmresOptions& opts = {});

/// GMRES on an assembled CSR matrix.
SolveResult gmres(const sparse::Csr<double>& a, std::span<const double> b,
                  std::span<double> x, const GmresOptions& opts = {});

}  // namespace hpfcg::solvers
