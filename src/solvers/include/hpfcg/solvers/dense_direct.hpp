#pragma once
// Dense direct solvers — the "simple Gaussian elimination" the paper's
// introduction contrasts CG against, plus Cholesky for SPD ground truth.
//
// Used (a) as the correctness oracle for every iterative solver test and
// (b) in the flop-crossover benchmark showing where iterative methods
// overtake direct ones as n grows and A becomes sparse.

#include <cstddef>
#include <span>
#include <vector>

namespace hpfcg::solvers {

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// `a` is a dense row-major n×n matrix (copied internally).
/// Throws util::Error if A is numerically singular.
std::vector<double> gaussian_solve(std::span<const double> a,
                                   std::span<const double> b);

/// Cholesky factorization A = L L^T of an SPD dense row-major matrix,
/// in place in the lower triangle of the returned copy.
/// Throws util::Error if A is not positive definite.
std::vector<double> cholesky_factor(std::span<const double> a, std::size_t n);

/// Solve L L^T x = b given the factor from cholesky_factor.
std::vector<double> cholesky_solve_factored(std::span<const double> l,
                                            std::span<const double> b);

/// Convenience: factor + solve.
std::vector<double> cholesky_solve(std::span<const double> a,
                                   std::span<const double> b);

/// Flop counts for the crossover analysis: dense Cholesky ~ n^3/3,
/// CG ~ iterations * (2*nnz + 10n).
double cholesky_flops(std::size_t n);
double cg_flops(std::size_t n, std::size_t nnz, std::size_t iterations);

}  // namespace hpfcg::solvers
