#pragma once
// Preconditioners for PCG (Section 2.1: "A preconditioner for A ... will
// increase the speed of convergence of the CG algorithm").
//
// Serial: Jacobi (diagonal) and SSOR, both built from a CSR matrix.
// The distributed Jacobi preconditioner lives with the distributed solvers
// (it is a purely local operation once the diagonal is aligned with r).

#include <vector>

#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/csr.hpp"

namespace hpfcg::solvers {

/// Jacobi: M = diag(A); apply z = D^{-1} r.  Fails if a diagonal entry is
/// zero (not SPD then anyway).
PrecApply jacobi_preconditioner(const sparse::Csr<double>& a);

/// SSOR with relaxation factor omega in (0, 2):
///   M = 1/(omega(2-omega)) (D + omega L) D^{-1} (D + omega U)
/// applied by one forward and one backward triangular sweep.
PrecApply ssor_preconditioner(const sparse::Csr<double>& a,
                              double omega = 1.0);

/// Identity (no preconditioning) — for uniform PCG call sites.
PrecApply identity_preconditioner();

}  // namespace hpfcg::solvers
