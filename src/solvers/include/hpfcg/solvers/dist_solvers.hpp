#pragma once
// Distributed solver family over the HPF layer — the lowered form of the
// paper's Figure 2 CG code and its Section 2.1 relatives.
//
// Every solver is matrix-format agnostic: it takes the matrix as a
// distributed linear operator (a callable computing q = A*p on aligned
// distributed vectors), so the same solver text runs over dense row-wise,
// dense column-wise, CSR and CSC matvec kernels — which is exactly the
// benchmark axis of the paper (which storage/partitioning feeds CG best).
//
// Communication per iteration (reproducing the paper's Section 4 count):
//   CG:        1 matvec + 2 DOT_PRODUCT merges; SAXPYs are local.
//   BiCG:      2 matvecs (one with A^T) + 2 merges.
//   BiCGSTAB:  2 matvecs + 4 merges ("greater demand for an efficient
//              intrinsic", Section 2.1).
//
// The *_fused_* variants below are the communication-avoiding forms: the
// recurrences are regrouped (Chronopoulos–Gear for CG/PCG) so the inner
// products of an iteration land back to back and merge through ONE
// hpf::dot_products batch — each merge costs t_startup*log(N_P) regardless
// of how many scalars ride it, so fusing k dots recovers
// (k-1)*2*ceil(log2 N_P)*t_startup per iteration:
//   cg_fused_dist:        1 matvec + 1 merge   (batch {(r,r),(w,r)})
//   pcg_fused_dist:       1 matvec + 1 merge   (batch {(r,u),(w,u),(r,r)})
//   bicgstab_fused_dist:  2 matvecs + 3 merges (vs bicgstab_dist's 6).

#include <cmath>
#include <functional>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/solvers/options.hpp"

namespace hpfcg::solvers {

/// Distributed linear operator: q = A * p (collective call).
template <class T>
using DistOp = std::function<void(const hpf::DistributedVector<T>&,
                                  hpf::DistributedVector<T>&)>;

/// Distributed preconditioner application: z = M^{-1} r (collective call).
template <class T>
using DistPrec = DistOp<T>;

/// Mid-solve rebalance hook (collective call).  Invoked every
/// SolveOptions::rebalance_every iterations; migrates whatever backs the
/// operator (matrix, preconditioner state) onto new cut points and returns
/// the new row distribution — or nullptr to decline (cuts unchanged).  The
/// decision must be replicated: every rank returns the same answer.
/// solvers/rebalance.hpp builds the canonical hook over a DistCsr.
using RebalanceHook = std::function<hpf::DistPtr()>;

namespace detail {
/// Record a residual evaluation: into the history (when tracked) and onto
/// the solver's per-iteration trace metrics channel (when tracing).
inline void dist_record(msg::Process& proc, SolveResult& res,
                        const SolveOptions& opts, double rnorm) {
  if (opts.track_residuals) res.residual_history.push_back(rnorm);
  proc.trace_iteration(res.iterations, rnorm);
}

/// Apply a distributed operator under a trace span (kMatvec / kPrecond).
template <class T>
void traced_apply(trace::RankTrace* trc, trace::SpanKind kind,
                  const DistOp<T>& op, const hpf::DistributedVector<T>& in,
                  hpf::DistributedVector<T>& out) {
  trace::SpanScope span(trc, kind, 0, in.local().size() * sizeof(T));
  op(in, out);
}

/// True when iteration k (0-based, about to end) is a rebalance point.
inline bool rebalance_due(const SolveOptions& opts,
                          const RebalanceHook& hook, std::size_t k) {
  return opts.rebalance_every != 0 && hook != nullptr &&
         (k + 1) % opts.rebalance_every == 0;
}

/// Invoke the hook and, when it migrated, move the live iteration vectors
/// onto the new distribution.  Dead scratch vectors are the caller's
/// problem (rebuilt empty on the new cuts).  Returns the new distribution
/// or nullptr when nothing moved.
template <class T, class... Live>
hpf::DistPtr apply_rebalance(const RebalanceHook& hook, Live&... live) {
  hpf::DistPtr nd = hook();
  if (nd == nullptr) return nullptr;
  ((live = hpf::redistribute(live, nd)), ...);
  return nd;
}
}  // namespace detail

/// Distributed CG (Figure 2).  x holds the initial guess; all vectors must
/// be mutually aligned.
template <class T>
SolveResult cg_dist(const DistOp<T>& a, const hpf::DistributedVector<T>& b,
                    hpf::DistributedVector<T>& x,
                    const SolveOptions& opts = {},
                    const RebalanceHook& rebalance = {}) {
  SolveResult res;
  trace::RankTrace* const trc = b.proc().tracer_rank();
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto p = hpf::DistributedVector<T>::aligned_like(b);
  auto q = hpf::DistributedVector<T>::aligned_like(b);

  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, x, q);
  hpf::assign(b, r);
  hpf::axpy<T>(T{-1}, q, r);  // r = b - A x0
  hpf::assign(r, p);
  T rho = hpf::dot_product(r, r);
  detail::dist_record(b.proc(), res, opts,
                      std::sqrt(static_cast<double>(rho)));
  res.relative_residual =
      bnorm > 0.0 ? std::sqrt(static_cast<double>(rho)) / bnorm
                  : std::sqrt(static_cast<double>(rho));
  if (std::sqrt(static_cast<double>(rho)) <= stop) {
    res.converged = true;
    return res;
  }

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    trace::SpanScope iter_span(trc, trace::SpanKind::kIteration,
                               static_cast<std::uint32_t>(k));
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, p, q);
    const T pq = hpf::dot_product(p, q);
    if (pq == T{}) {
      res.breakdown = true;
      break;
    }
    const T alpha = rho / pq;
    hpf::axpy<T>(alpha, p, x);   // x = x + alpha p   (saxpy)
    hpf::axpy<T>(-alpha, q, r);  // r = r - alpha q   (saxpy)
    // One merge serves both convergence and beta: rho_new = (r,r) is the
    // residual norm squared AND next iteration's numerator, so Figure 2's
    // literal third DOT_PRODUCT per iteration never happens here.
    const T rho_new = hpf::dot_product(r, r);
    const double rnorm = std::sqrt(static_cast<double>(rho_new));
    res.iterations = k + 1;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    detail::dist_record(b.proc(), res, opts, rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    const T beta = rho_new / rho;
    hpf::aypx<T>(beta, r, p);  // p = beta p + r   (saypx, Figure 2)
    rho = rho_new;
    // Live vectors at this point: x, r, p.  q is pure scratch — rebuilt
    // empty on the new cuts rather than migrated.
    if (detail::rebalance_due(opts, rebalance, k) &&
        detail::apply_rebalance<T>(rebalance, x, r, p)) {
      q = hpf::DistributedVector<T>::aligned_like(x);
    }
  }
  return res;
}

/// Communication-avoiding CG (Chronopoulos–Gear single-reduction form):
/// one matvec and ONE two-wide dot_products merge per iteration, against
/// cg_dist's two scalar merges.  alpha comes from the recurrence
/// alpha = gamma_new / (delta - beta*gamma_new/alpha) instead of (p, A p),
/// at the price of one extra matvec at start-up and one extra vector
/// s = A p maintained by saypx.  Iterates match the serial cg_fused()
/// reference (same recurrence; only the merge's reduction order differs).
template <class T>
SolveResult cg_fused_dist(const DistOp<T>& a,
                          const hpf::DistributedVector<T>& b,
                          hpf::DistributedVector<T>& x,
                          const SolveOptions& opts = {},
                          const RebalanceHook& rebalance = {}) {
  SolveResult res;
  trace::RankTrace* const trc = b.proc().tracer_rank();
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto w = hpf::DistributedVector<T>::aligned_like(b);
  auto p = hpf::DistributedVector<T>::aligned_like(b);
  auto s = hpf::DistributedVector<T>::aligned_like(b);

  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, x, w);  // w = A x0
  hpf::assign(b, r);
  hpf::axpy<T>(T{-1}, w, r);  // r = b - A x0
  // Extra start-up matvec: w = A r.
  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, r, w);
  const auto d0 = hpf::dot_products(r, r, w, r);  // {gamma, delta}, 1 merge
  T gamma = d0[0];
  T delta = d0[1];
  const double rnorm0 = std::sqrt(static_cast<double>(gamma));
  res.relative_residual = bnorm > 0.0 ? rnorm0 / bnorm : rnorm0;
  detail::dist_record(b.proc(), res, opts, rnorm0);
  if (rnorm0 <= stop) {
    res.converged = true;
    return res;
  }
  if (delta == T{}) {
    res.breakdown = true;
    return res;
  }
  T alpha = gamma / delta;
  hpf::assign(r, p);
  hpf::assign(w, s);

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    trace::SpanScope iter_span(trc, trace::SpanKind::kIteration,
                               static_cast<std::uint32_t>(k));
    hpf::axpy<T>(alpha, p, x);   // x = x + alpha p
    hpf::axpy<T>(-alpha, s, r);  // r = r - alpha s   (s = A p by recurrence)
    // The iteration's only matvec.
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, r, w);
    // The iteration's only reduction: {(r,r), (w,r)} in one tree walk.
    const auto d = hpf::dot_products(r, r, w, r);
    const T gamma_new = d[0];
    const T delta_new = d[1];
    const double rnorm = std::sqrt(static_cast<double>(gamma_new));
    res.iterations = k + 1;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    detail::dist_record(b.proc(), res, opts, rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    const T beta = gamma_new / gamma;
    const T denom = delta_new - beta * gamma_new / alpha;
    if (denom == T{}) {
      res.breakdown = true;
      break;
    }
    alpha = gamma_new / denom;
    hpf::aypx<T>(beta, r, p);  // p = r + beta p
    hpf::aypx<T>(beta, w, s);  // s = w + beta s  (= A p, no extra matvec)
    gamma = gamma_new;
    // Live vectors: x, r, p, and the recurrence vector s = A p (which MUST
    // migrate — recomputing it would cost a matvec).  w is scratch.
    if (detail::rebalance_due(opts, rebalance, k) &&
        detail::apply_rebalance<T>(rebalance, x, r, p, s)) {
      w = hpf::DistributedVector<T>::aligned_like(x);
    }
  }
  return res;
}

/// Distributed preconditioned CG.
template <class T>
SolveResult pcg_dist(const DistOp<T>& a, const DistPrec<T>& m_inv,
                     const hpf::DistributedVector<T>& b,
                     hpf::DistributedVector<T>& x,
                     const SolveOptions& opts = {},
                     const RebalanceHook& rebalance = {}) {
  SolveResult res;
  trace::RankTrace* const trc = b.proc().tracer_rank();
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto z = hpf::DistributedVector<T>::aligned_like(b);
  auto p = hpf::DistributedVector<T>::aligned_like(b);
  auto q = hpf::DistributedVector<T>::aligned_like(b);

  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, x, q);
  hpf::assign(b, r);
  hpf::axpy<T>(T{-1}, q, r);
  double rnorm = std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
  res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
  detail::dist_record(b.proc(), res, opts, rnorm);
  if (rnorm <= stop) {
    res.converged = true;
    return res;
  }
  detail::traced_apply(trc, trace::SpanKind::kPrecond, m_inv, r, z);
  hpf::assign(z, p);
  T rho = hpf::dot_product(r, z);

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    trace::SpanScope iter_span(trc, trace::SpanKind::kIteration,
                               static_cast<std::uint32_t>(k));
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, p, q);
    const T pq = hpf::dot_product(p, q);
    if (pq == T{} || rho == T{}) {
      res.breakdown = true;
      break;
    }
    const T alpha = rho / pq;
    hpf::axpy<T>(alpha, p, x);
    hpf::axpy<T>(-alpha, q, r);
    rnorm = std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
    res.iterations = k + 1;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    detail::dist_record(b.proc(), res, opts, rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    detail::traced_apply(trc, trace::SpanKind::kPrecond, m_inv, r, z);
    const T rho_new = hpf::dot_product(r, z);
    const T beta = rho_new / rho;
    hpf::aypx<T>(beta, z, p);
    rho = rho_new;
    // Live vectors: x, r, p.  z is recomputed from r next iteration and q
    // is scratch; both rebuilt on the new cuts.  The preconditioner must
    // follow the migration itself (e.g. via make_csr_rebalancer's
    // on_migrate callback) — jacobi_dist's captured diagonal does not.
    if (detail::rebalance_due(opts, rebalance, k) &&
        detail::apply_rebalance<T>(rebalance, x, r, p)) {
      z = hpf::DistributedVector<T>::aligned_like(x);
      q = hpf::DistributedVector<T>::aligned_like(x);
    }
  }
  return res;
}

/// Communication-avoiding preconditioned CG: ONE three-wide merge per
/// iteration — {(r,u), (w,u), (r,r)} with u = M^{-1} r, w = A u — against
/// pcg_dist's three scalar merges.  The (r,r) convergence norm rides the
/// batch for free.  Iterates match the serial pcg_fused() reference.
template <class T>
SolveResult pcg_fused_dist(const DistOp<T>& a, const DistPrec<T>& m_inv,
                           const hpf::DistributedVector<T>& b,
                           hpf::DistributedVector<T>& x,
                           const SolveOptions& opts = {},
                           const RebalanceHook& rebalance = {}) {
  SolveResult res;
  trace::RankTrace* const trc = b.proc().tracer_rank();
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto u = hpf::DistributedVector<T>::aligned_like(b);
  auto w = hpf::DistributedVector<T>::aligned_like(b);
  auto p = hpf::DistributedVector<T>::aligned_like(b);
  auto s = hpf::DistributedVector<T>::aligned_like(b);

  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, x, w);
  hpf::assign(b, r);
  hpf::axpy<T>(T{-1}, w, r);
  detail::traced_apply(trc, trace::SpanKind::kPrecond, m_inv, r, u);
  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, u, w);
  const auto d0 = hpf::dot_products(r, u, w, u, r, r);  // one 3-wide merge
  T gamma = d0[0];
  T delta = d0[1];
  const double rnorm0 = std::sqrt(static_cast<double>(d0[2]));
  res.relative_residual = bnorm > 0.0 ? rnorm0 / bnorm : rnorm0;
  detail::dist_record(b.proc(), res, opts, rnorm0);
  if (rnorm0 <= stop) {
    res.converged = true;
    return res;
  }
  if (delta == T{}) {
    res.breakdown = true;
    return res;
  }
  T alpha = gamma / delta;
  hpf::assign(u, p);
  hpf::assign(w, s);

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    trace::SpanScope iter_span(trc, trace::SpanKind::kIteration,
                               static_cast<std::uint32_t>(k));
    hpf::axpy<T>(alpha, p, x);
    hpf::axpy<T>(-alpha, s, r);  // s = A p by recurrence
    detail::traced_apply(trc, trace::SpanKind::kPrecond, m_inv, r, u);
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, u, w);
    // The iteration's only reduction: beta/alpha numerators + convergence.
    const auto d = hpf::dot_products(r, u, w, u, r, r);
    const T gamma_new = d[0];
    const T delta_new = d[1];
    const double rnorm = std::sqrt(static_cast<double>(d[2]));
    res.iterations = k + 1;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    detail::dist_record(b.proc(), res, opts, rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    if (gamma == T{}) {
      res.breakdown = true;
      break;
    }
    const T beta = gamma_new / gamma;
    const T denom = delta_new - beta * gamma_new / alpha;
    if (denom == T{}) {
      res.breakdown = true;
      break;
    }
    alpha = gamma_new / denom;
    hpf::aypx<T>(beta, u, p);  // p = u + beta p
    hpf::aypx<T>(beta, w, s);  // s = w + beta s
    gamma = gamma_new;
    // Live vectors: x, r, p, and the recurrence vector s = A p.  u and w
    // are recomputed from r next iteration — rebuilt on the new cuts.  The
    // preconditioner must follow the migration itself (e.g. via
    // make_csr_rebalancer's on_migrate callback).
    if (detail::rebalance_due(opts, rebalance, k) &&
        detail::apply_rebalance<T>(rebalance, x, r, p, s)) {
      u = hpf::DistributedVector<T>::aligned_like(x);
      w = hpf::DistributedVector<T>::aligned_like(x);
    }
  }
  return res;
}

/// Distributed BiCG: needs both q = A p and qt = A^T pt.
template <class T>
SolveResult bicg_dist(const DistOp<T>& a, const DistOp<T>& a_transpose,
                      const hpf::DistributedVector<T>& b,
                      hpf::DistributedVector<T>& x,
                      const SolveOptions& opts = {}) {
  SolveResult res;
  trace::RankTrace* const trc = b.proc().tracer_rank();
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto rt = hpf::DistributedVector<T>::aligned_like(b);
  auto p = hpf::DistributedVector<T>::aligned_like(b);
  auto pt = hpf::DistributedVector<T>::aligned_like(b);
  auto q = hpf::DistributedVector<T>::aligned_like(b);
  auto qt = hpf::DistributedVector<T>::aligned_like(b);

  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, x, q);
  hpf::assign(b, r);
  hpf::axpy<T>(T{-1}, q, r);
  hpf::assign(r, rt);
  hpf::assign(r, p);
  hpf::assign(rt, pt);
  T rho = hpf::dot_product(rt, r);
  double rnorm = std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
  res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
  detail::dist_record(b.proc(), res, opts, rnorm);
  if (rnorm <= stop) {
    res.converged = true;
    return res;
  }

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    trace::SpanScope iter_span(trc, trace::SpanKind::kIteration,
                               static_cast<std::uint32_t>(k));
    if (rho == T{}) {
      res.breakdown = true;
      break;
    }
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, p, q);
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a_transpose, pt, qt);
    const T ptq = hpf::dot_product(pt, q);
    if (ptq == T{}) {
      res.breakdown = true;
      break;
    }
    const T alpha = rho / ptq;
    hpf::axpy<T>(alpha, p, x);
    hpf::axpy<T>(-alpha, q, r);
    hpf::axpy<T>(-alpha, qt, rt);
    rnorm = std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
    res.iterations = k + 1;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    detail::dist_record(b.proc(), res, opts, rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    const T rho_new = hpf::dot_product(rt, r);
    const T beta = rho_new / rho;
    hpf::aypx<T>(beta, r, p);
    hpf::aypx<T>(beta, rt, pt);
    rho = rho_new;
  }
  return res;
}

/// Distributed BiCGSTAB — avoids A^T, pays four DOT_PRODUCT merges.
template <class T>
SolveResult bicgstab_dist(const DistOp<T>& a,
                          const hpf::DistributedVector<T>& b,
                          hpf::DistributedVector<T>& x,
                          const SolveOptions& opts = {}) {
  SolveResult res;
  trace::RankTrace* const trc = b.proc().tracer_rank();
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto rt = hpf::DistributedVector<T>::aligned_like(b);
  auto p = hpf::DistributedVector<T>::aligned_like(b);
  auto v = hpf::DistributedVector<T>::aligned_like(b);
  auto s = hpf::DistributedVector<T>::aligned_like(b);
  auto t = hpf::DistributedVector<T>::aligned_like(b);

  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, x, t);
  hpf::assign(b, r);
  hpf::axpy<T>(T{-1}, t, r);
  hpf::assign(r, rt);
  double rnorm = std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
  res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
  detail::dist_record(b.proc(), res, opts, rnorm);
  if (rnorm <= stop) {
    res.converged = true;
    return res;
  }

  T rho_old{1}, alpha{1}, omega{1};
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    trace::SpanScope iter_span(trc, trace::SpanKind::kIteration,
                               static_cast<std::uint32_t>(k));
    const T rho = hpf::dot_product(rt, r);
    if (rho == T{} || omega == T{}) {
      res.breakdown = true;
      break;
    }
    if (k == 0) {
      hpf::assign(r, p);
    } else {
      const T beta = (rho / rho_old) * (alpha / omega);
      // p = r + beta (p - omega v), expressed with aligned local ops.
      hpf::axpy<T>(-omega, v, p);
      hpf::aypx<T>(beta, r, p);
    }
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, p, v);
    const T rtv = hpf::dot_product(rt, v);
    if (rtv == T{}) {
      res.breakdown = true;
      break;
    }
    alpha = rho / rtv;
    hpf::assign(r, s);
    hpf::axpy<T>(-alpha, v, s);
    const double snorm =
        std::sqrt(static_cast<double>(hpf::dot_product(s, s)));
    if (snorm <= stop) {
      hpf::axpy<T>(alpha, p, x);
      res.iterations = k + 1;
      res.relative_residual = bnorm > 0.0 ? snorm / bnorm : snorm;
      detail::dist_record(b.proc(), res, opts, snorm);
      res.converged = true;
      return res;
    }
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, s, t);
    const T ts = hpf::dot_product(t, s);
    const T tt = hpf::dot_product(t, t);
    if (tt == T{}) {
      res.breakdown = true;
      break;
    }
    omega = ts / tt;
    hpf::axpy<T>(alpha, p, x);
    hpf::axpy<T>(omega, s, x);
    hpf::assign(s, r);
    hpf::axpy<T>(-omega, t, r);
    rnorm = std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
    res.iterations = k + 1;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    detail::dist_record(b.proc(), res, opts, rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    rho_old = rho;
  }
  return res;
}

/// Fused-reduction BiCGSTAB: three merge points per iteration against
/// bicgstab_dist's six — (rt,v) alone after the first matvec, then the
/// batch {(t,s), (t,t), (s,s)} after the second, then {(r,r), (rt,r)}
/// where next iteration's shadow product rides with the convergence norm.
/// The s-norm early exit moves after the second matvec (costing one extra
/// matvec in the final iteration only); iterates match the serial
/// bicgstab_fused() reference.
template <class T>
SolveResult bicgstab_fused_dist(const DistOp<T>& a,
                                const hpf::DistributedVector<T>& b,
                                hpf::DistributedVector<T>& x,
                                const SolveOptions& opts = {}) {
  SolveResult res;
  trace::RankTrace* const trc = b.proc().tracer_rank();
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto rt = hpf::DistributedVector<T>::aligned_like(b);
  auto p = hpf::DistributedVector<T>::aligned_like(b);
  auto v = hpf::DistributedVector<T>::aligned_like(b);
  auto s = hpf::DistributedVector<T>::aligned_like(b);
  auto t = hpf::DistributedVector<T>::aligned_like(b);

  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, x, t);
  hpf::assign(b, r);
  hpf::axpy<T>(T{-1}, t, r);
  hpf::assign(r, rt);
  // Merge point 0: convergence norm + first shadow product, one batch.
  const auto d0 = hpf::dot_products(r, r, rt, r);
  const double rnorm0 = std::sqrt(static_cast<double>(d0[0]));
  T rho = d0[1];
  res.relative_residual = bnorm > 0.0 ? rnorm0 / bnorm : rnorm0;
  detail::dist_record(b.proc(), res, opts, rnorm0);
  if (rnorm0 <= stop) {
    res.converged = true;
    return res;
  }

  T rho_old{1}, alpha{1}, omega{1};
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    trace::SpanScope iter_span(trc, trace::SpanKind::kIteration,
                               static_cast<std::uint32_t>(k));
    if (rho == T{} || omega == T{}) {
      res.breakdown = true;
      break;
    }
    if (k == 0) {
      hpf::assign(r, p);
    } else {
      const T beta = (rho / rho_old) * (alpha / omega);
      hpf::axpy<T>(-omega, v, p);
      hpf::aypx<T>(beta, r, p);  // p = r + beta (p - omega v)
    }
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, p, v);
    const T rtv = hpf::dot_product(rt, v);  // merge point 1 (width 1)
    if (rtv == T{}) {
      res.breakdown = true;
      break;
    }
    alpha = rho / rtv;
    hpf::assign(r, s);
    hpf::axpy<T>(-alpha, v, s);
    // Unconditional: the s-norm check rides the next merge.
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, s, t);
    // Merge point 2 (width 3): omega numerator/denominator + s-norm.
    const auto d2 = hpf::dot_products(t, s, t, t, s, s);
    const T ts = d2[0];
    const T tt = d2[1];
    const double snorm = std::sqrt(static_cast<double>(d2[2]));
    if (snorm <= stop) {
      hpf::axpy<T>(alpha, p, x);
      res.iterations = k + 1;
      res.relative_residual = bnorm > 0.0 ? snorm / bnorm : snorm;
      detail::dist_record(b.proc(), res, opts, snorm);
      res.converged = true;
      return res;
    }
    if (tt == T{}) {
      res.breakdown = true;
      break;
    }
    omega = ts / tt;
    hpf::axpy<T>(alpha, p, x);
    hpf::axpy<T>(omega, s, x);
    hpf::assign(s, r);
    hpf::axpy<T>(-omega, t, r);
    // Merge point 3 (width 2): convergence norm + next iteration's rho.
    const auto d3 = hpf::dot_products(r, r, rt, r);
    const double rnorm = std::sqrt(static_cast<double>(d3[0]));
    res.iterations = k + 1;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    detail::dist_record(b.proc(), res, opts, rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    rho_old = rho;
    rho = d3[1];
  }
  return res;
}

/// Distributed CGS — Section 2.1's Conjugate Gradient Squared: avoids A^T
/// but "can have some undesirable numerical properties such as actual
/// divergence or irregular rates of convergence" (reported via breakdown /
/// non-monotone residual_history).
template <class T>
SolveResult cgs_dist(const DistOp<T>& a, const hpf::DistributedVector<T>& b,
                     hpf::DistributedVector<T>& x,
                     const SolveOptions& opts = {}) {
  SolveResult res;
  trace::RankTrace* const trc = b.proc().tracer_rank();
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto rt = hpf::DistributedVector<T>::aligned_like(b);
  auto p = hpf::DistributedVector<T>::aligned_like(b);
  auto q = hpf::DistributedVector<T>::aligned_like(b);
  auto u = hpf::DistributedVector<T>::aligned_like(b);
  auto vhat = hpf::DistributedVector<T>::aligned_like(b);
  auto uq = hpf::DistributedVector<T>::aligned_like(b);
  auto t = hpf::DistributedVector<T>::aligned_like(b);

  detail::traced_apply(trc, trace::SpanKind::kMatvec, a, x, t);
  hpf::assign(b, r);
  hpf::axpy<T>(T{-1}, t, r);
  hpf::assign(r, rt);
  double rnorm = std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
  res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
  detail::dist_record(b.proc(), res, opts, rnorm);
  if (rnorm <= stop) {
    res.converged = true;
    return res;
  }

  T rho_old{1};
  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    trace::SpanScope iter_span(trc, trace::SpanKind::kIteration,
                               static_cast<std::uint32_t>(k));
    const T rho = hpf::dot_product(rt, r);
    if (rho == T{}) {
      res.breakdown = true;
      break;
    }
    if (k == 0) {
      hpf::assign(r, u);
      hpf::assign(u, p);
    } else {
      const T beta = rho / rho_old;
      // u = r + beta*q
      hpf::assign(q, u);
      hpf::scale<T>(beta, u);
      hpf::axpy<T>(T{1}, r, u);
      // p = u + beta*(q + beta*p)
      hpf::scale<T>(beta, p);
      hpf::axpy<T>(T{1}, q, p);
      hpf::scale<T>(beta, p);
      hpf::axpy<T>(T{1}, u, p);
    }
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, p, vhat);
    const T sigma = hpf::dot_product(rt, vhat);
    if (sigma == T{}) {
      res.breakdown = true;
      break;
    }
    const T alpha = rho / sigma;
    // q = u - alpha*vhat;  uq = u + q
    hpf::assign(u, q);
    hpf::axpy<T>(-alpha, vhat, q);
    hpf::assign(u, uq);
    hpf::axpy<T>(T{1}, q, uq);
    hpf::axpy<T>(alpha, uq, x);
    detail::traced_apply(trc, trace::SpanKind::kMatvec, a, uq, t);
    hpf::axpy<T>(-alpha, t, r);
    rnorm = std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
    res.iterations = k + 1;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    detail::dist_record(b.proc(), res, opts, rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    if (!std::isfinite(rnorm)) {
      res.breakdown = true;  // CGS's "actual divergence"
      break;
    }
    rho_old = rho;
  }
  return res;
}

/// Distributed Jacobi preconditioner: the inverse diagonal is distributed
/// aligned with the vectors, so each application is a local Hadamard
/// product — zero communication.
template <class T>
DistPrec<T> jacobi_dist(hpf::DistributedVector<T> inv_diag) {
  return [inv_diag = std::move(inv_diag)](const hpf::DistributedVector<T>& r,
                                          hpf::DistributedVector<T>& z) {
    hpf::hadamard(inv_diag, r, z);
  };
}

}  // namespace hpfcg::solvers
