#pragma once
// Serial reference implementations of the Section 2 solver family.
//
// These are the ground truth the distributed solvers are verified against,
// and the single-processor baselines of the benchmarks:
//   cg        — classic non-preconditioned Conjugate Gradient (the paper's
//               Section 2 pseudo-code);
//   pcg       — preconditioned CG (Jacobi or SSOR, preconditioner.hpp);
//   bicg      — Bi-Conjugate Gradient (two matvecs, one with A^T);
//   cgs       — Conjugate Gradient Squared (avoids A^T; can diverge);
//   bicgstab  — Stabilized BiCG (avoids A^T, four inner products).

#include <functional>
#include <span>

#include "hpfcg/solvers/options.hpp"
#include "hpfcg/sparse/csr.hpp"

namespace hpfcg::solvers {

/// y = A*x callback used by the matrix-free solver entry points.
using MatVec = std::function<void(std::span<const double>, std::span<double>)>;

/// z = M^{-1}*r preconditioner application.
using PrecApply =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Matrix-free CG: solves A x = b for SPD A given y=Ax.  x holds the
/// initial guess on entry and the solution on exit.
SolveResult cg(const MatVec& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts = {});

/// CG on an assembled CSR matrix.
SolveResult cg(const sparse::Csr<double>& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opts = {});

/// Chronopoulos–Gear single-reduction CG: algebraically equivalent to cg()
/// but restructured so the two inner products of an iteration — (r,r) and
/// (w,r) with w = A r — are computed back to back and can be merged in ONE
/// collective in the distributed version (cg_fused_dist).  alpha is updated
/// by recurrence instead of from (p, A p); the price is one extra matvec at
/// start-up and one extra recurrence vector s = A p.  This serial form is
/// the bitwise ground truth the distributed fused solver is verified
/// against (same recurrence, only the reduction order differs).
SolveResult cg_fused(const MatVec& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts = {});
SolveResult cg_fused(const sparse::Csr<double>& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts = {});

/// Preconditioned CG.
SolveResult pcg(const MatVec& a, const PrecApply& m_inv,
                std::span<const double> b, std::span<double> x,
                const SolveOptions& opts = {});
SolveResult pcg(const sparse::Csr<double>& a, const PrecApply& m_inv,
                std::span<const double> b, std::span<double> x,
                const SolveOptions& opts = {});

/// Chronopoulos–Gear preconditioned CG: one fused group of three inner
/// products — (r,u), (w,u), (r,r) with u = M^{-1} r, w = A u — per
/// iteration, against pcg()'s three separate merges.  Serial ground truth
/// for pcg_fused_dist.
SolveResult pcg_fused(const MatVec& a, const PrecApply& m_inv,
                      std::span<const double> b, std::span<double> x,
                      const SolveOptions& opts = {});
SolveResult pcg_fused(const sparse::Csr<double>& a, const PrecApply& m_inv,
                      std::span<const double> b, std::span<double> x,
                      const SolveOptions& opts = {});

/// BiCG: needs A and A^T products.  For symmetric A it produces the same
/// iterates as CG (a test invariant).
SolveResult bicg(const MatVec& a, const MatVec& a_transpose,
                 std::span<const double> b, std::span<double> x,
                 const SolveOptions& opts = {});
SolveResult bicg(const sparse::Csr<double>& a, std::span<const double> b,
                 std::span<double> x, const SolveOptions& opts = {});

/// CGS.
SolveResult cgs(const MatVec& a, std::span<const double> b,
                std::span<double> x, const SolveOptions& opts = {});
SolveResult cgs(const sparse::Csr<double>& a, std::span<const double> b,
                std::span<double> x, const SolveOptions& opts = {});

/// BiCGSTAB.
SolveResult bicgstab(const MatVec& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts = {});
SolveResult bicgstab(const sparse::Csr<double>& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opts = {});

/// Fused-reduction BiCGSTAB: the six inner products of an iteration are
/// regrouped into three merge points — (rt,v) alone, then {(t,s), (t,t),
/// (s,s)} after the second matvec, then {(r,r), (rt,r)} where the shadow
/// product for the NEXT iteration rides along with the convergence norm.
/// The s-norm early exit moves after the second matvec (one extra matvec
/// in the final iteration only); iterates are otherwise identical to
/// bicgstab().  Serial ground truth for bicgstab_fused_dist.
SolveResult bicgstab_fused(const MatVec& a, std::span<const double> b,
                           std::span<double> x, const SolveOptions& opts = {});
SolveResult bicgstab_fused(const sparse::Csr<double>& a,
                           std::span<const double> b, std::span<double> x,
                           const SolveOptions& opts = {});

}  // namespace hpfcg::solvers
