#pragma once
// Stationary iterative methods — the pre-Krylov baselines (Jacobi
// iteration, Gauss-Seidel, SOR) that CG's "faster convergence rate"
// (Section 2) is measured against.
//
// Jacobi's update x <- x + D^{-1}(b - A x) is embarrassingly data-parallel
// (one matvec plus local work: a perfect fit for HPF), while Gauss-Seidel
// and SOR sweep sequentially through the unknowns — the same dependency
// structure as the paper's Scenario 2, which is why parallel codes of the
// era preferred Jacobi or red-black orderings.

#include <functional>
#include <span>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/options.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/csr.hpp"

namespace hpfcg::solvers {

/// Serial Jacobi iteration.  Converges for strictly diagonally dominant A.
SolveResult jacobi_iteration(const sparse::Csr<double>& a,
                             std::span<const double> b, std::span<double> x,
                             const SolveOptions& opts = {});

/// Serial SOR (omega = 1 gives Gauss-Seidel).  Sequential sweeps.
SolveResult sor_iteration(const sparse::Csr<double>& a,
                          std::span<const double> b, std::span<double> x,
                          double omega, const SolveOptions& opts = {});

/// Distributed Jacobi iteration over any matvec kernel: needs the inverse
/// diagonal aligned with the vectors.  Fully parallel — one matvec plus
/// local updates and one norm merge per sweep.
template <class T>
SolveResult jacobi_iteration_dist(const DistOp<T>& a,
                                  const hpf::DistributedVector<T>& inv_diag,
                                  const hpf::DistributedVector<T>& b,
                                  hpf::DistributedVector<T>& x,
                                  const SolveOptions& opts = {}) {
  SolveResult res;
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop = opts.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  auto r = hpf::DistributedVector<T>::aligned_like(b);
  auto q = hpf::DistributedVector<T>::aligned_like(b);

  for (std::size_t k = 0; k < opts.max_iterations; ++k) {
    a(x, q);
    hpf::assign(b, r);
    hpf::axpy<T>(T{-1}, q, r);  // r = b - A x
    const double rnorm =
        std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
    res.iterations = k;
    res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
    if (opts.track_residuals) res.residual_history.push_back(rnorm);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    // x += D^{-1} r  — purely local given the aligned inverse diagonal.
    auto xs = x.local();
    auto rs = r.local();
    auto ds = inv_diag.local();
    for (std::size_t i = 0; i < xs.size(); ++i) xs[i] += ds[i] * rs[i];
    x.proc().add_flops(2 * xs.size());
  }
  return res;
}

}  // namespace hpfcg::solvers
