#pragma once
// Distributed restarted GMRES over the HPF layer.
//
// The communication contrast with CG that Section 2.1 hints at: Arnoldi
// step j performs j+1 DOT_PRODUCT merges (plus the basis-vector norms), so
// the per-iteration merge traffic grows with the restart length, while the
// Krylov basis costs m+1 distributed vectors of storage.  The scalar
// Hessenberg/Givens state is replicated — every rank computes identical
// values because the reduction trees are deterministic.

#include <cmath>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/gmres.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::solvers {

/// Distributed GMRES(m).  `x` holds the initial guess / solution.
template <class T>
SolveResult gmres_dist(const DistOp<T>& a, const hpf::DistributedVector<T>& b,
                       hpf::DistributedVector<T>& x,
                       const GmresOptions& opts = {}) {
  HPFCG_REQUIRE(opts.restart >= 1, "gmres_dist: restart must be >= 1");
  const std::size_t m = opts.restart;
  SolveResult res;
  const double bnorm = std::sqrt(static_cast<double>(hpf::dot_product(b, b)));
  const double stop =
      opts.base.rel_tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  std::vector<hpf::DistributedVector<T>> v;
  v.reserve(m + 1);
  for (std::size_t i = 0; i <= m; ++i) {
    v.push_back(hpf::DistributedVector<T>::aligned_like(b));
  }
  auto w = hpf::DistributedVector<T>::aligned_like(b);
  std::vector<std::vector<double>> h(m, std::vector<double>(m + 1, 0.0));
  std::vector<double> cs(m, 0.0), sn(m, 0.0), g(m + 1, 0.0);

  std::size_t total_steps = 0;
  while (total_steps < opts.base.max_iterations) {
    a(x, w);
    hpf::assign(b, v[0]);
    hpf::axpy<T>(T{-1}, w, v[0]);  // v0 = b - A x
    const double beta =
        std::sqrt(static_cast<double>(hpf::dot_product(v[0], v[0])));
    res.relative_residual = bnorm > 0.0 ? beta / bnorm : beta;
    if (opts.base.track_residuals && total_steps == 0) {
      res.residual_history.push_back(beta);
    }
    if (beta <= stop) {
      res.converged = true;
      return res;
    }
    hpf::scale<T>(static_cast<T>(1.0 / beta), v[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t j = 0;
    for (; j < m && total_steps < opts.base.max_iterations; ++j) {
      a(v[j], w);
      for (std::size_t i = 0; i <= j; ++i) {
        const double hij = static_cast<double>(hpf::dot_product(w, v[i]));
        h[j][i] = hij;
        hpf::axpy<T>(static_cast<T>(-hij), v[i], w);
      }
      const double hnext =
          std::sqrt(static_cast<double>(hpf::dot_product(w, w)));
      h[j][j + 1] = hnext;
      if (hnext > 0.0) {
        hpf::assign(w, v[j + 1]);
        hpf::scale<T>(static_cast<T>(1.0 / hnext), v[j + 1]);
      }

      for (std::size_t i = 0; i < j; ++i) {
        const double t = cs[i] * h[j][i] + sn[i] * h[j][i + 1];
        h[j][i + 1] = -sn[i] * h[j][i] + cs[i] * h[j][i + 1];
        h[j][i] = t;
      }
      const double denom =
          std::sqrt(h[j][j] * h[j][j] + h[j][j + 1] * h[j][j + 1]);
      if (denom == 0.0) {
        res.breakdown = true;
        break;
      }
      cs[j] = h[j][j] / denom;
      sn[j] = h[j][j + 1] / denom;
      h[j][j] = denom;
      h[j][j + 1] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];

      ++total_steps;
      res.iterations = total_steps;
      const double rnorm = std::abs(g[j + 1]);
      res.relative_residual = bnorm > 0.0 ? rnorm / bnorm : rnorm;
      if (opts.base.track_residuals) res.residual_history.push_back(rnorm);
      if (rnorm <= stop || hnext == 0.0) {
        ++j;
        break;
      }
    }

    if (j > 0) {
      std::vector<double> y(j, 0.0);
      for (std::size_t ii = j; ii-- > 0;) {
        double acc = g[ii];
        for (std::size_t k = ii + 1; k < j; ++k) acc -= h[k][ii] * y[k];
        y[ii] = acc / h[ii][ii];
      }
      for (std::size_t k = 0; k < j; ++k) {
        hpf::axpy<T>(static_cast<T>(y[k]), v[k], x);
      }
    }
    if (res.breakdown) return res;

    if (res.relative_residual * (bnorm > 0.0 ? bnorm : 1.0) <= stop) {
      a(x, w);
      auto r = hpf::DistributedVector<T>::aligned_like(b);
      hpf::assign(b, r);
      hpf::axpy<T>(T{-1}, w, r);
      const double true_r =
          std::sqrt(static_cast<double>(hpf::dot_product(r, r)));
      res.relative_residual = bnorm > 0.0 ? true_r / bnorm : true_r;
      if (true_r <= stop * 1.01) {
        res.converged = true;
        return res;
      }
    }
  }
  return res;
}

}  // namespace hpfcg::solvers
