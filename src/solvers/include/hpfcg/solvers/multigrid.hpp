#pragma once
// Geometric multigrid V-cycle preconditioner — the HPCG-class workload.
//
// The hierarchy is the HPCG one: the 27-point stencil on an nx×ny×nz grid,
// coarsened by halving every extent while they stay even, with injection
// restriction (each coarse point copies its co-located fine point) and its
// transpose scatter as prolongation (P = Rᵀ, which keeps the preconditioner
// symmetric), and a symmetric Gauss–Seidel smoother on every level.  Coarse
// operators are regenerated geometrically — the 27-point stencil on the
// halved grid — so setup needs no Galerkin triple product.
//
// Smoother parallelization (the choice ROADMAP item 2 asks for):
//   * kHybridSymGs — every rank sweeps its rows concurrently with ghost
//     values frozen for the half sweep, so cross-rank couplings relax
//     Jacobi-style.  Rank-parallel (no serialization on halo dependencies)
//     but the iterates depend on the partition.
//   * kExactSymGs — the pipelined true Gauss–Seidel: ranks relax in global
//     row order, each receiving updated boundary values from the ranks the
//     sweep already visited (the paper's Scenario 2 sequential dependency).
//     Bit-identical to a serial sweep for any NP and any contiguous
//     partition — the smoother behind the NP-invariance guarantees of
//     bench_hpcg under HPFCG_REPRO.
//   * kAuto (default) — exact when the reproducible mode is active at
//     setup, hybrid otherwise.
// Both variants are symmetric operators (the hybrid because the local
// lower/upper triangles are transposes of each other when A is symmetric),
// so PCG theory applies either way; the preconditioner-symmetry property
// tests probe r1·(M r2) == r2·(M r1) for both.
//
// Setup builds and caches everything the solve reuses — coarse operators,
// halo plans, smoother diagonals, grid-transfer schedules, level scratch
// vectors — and the whole object survives a mid-solve rebalance: wire
// migrate_fine() into make_csr_rebalancer's on_migrate callback and only
// the fine-level boundary state (transfer plan, scratch) is rebuilt, while
// the coarse hierarchy migrates untouched.

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"

namespace hpfcg::solvers {

/// Which symmetric Gauss–Seidel variant smooths each level.
enum class MgSmoother {
  kAuto,         ///< exact when HPFCG_REPRO is active at setup, else hybrid
  kExactSymGs,   ///< pipelined true symGS — NP-invariant bit for bit
  kHybridSymGs,  ///< rank-parallel symGS, boundary couplings Jacobi-frozen
};

struct MgOptions {
  std::size_t max_levels = 4;        ///< hierarchy depth cap (incl. finest)
  std::size_t min_coarse_rows = 32;  ///< stop coarsening below this
  std::size_t pre_sweeps = 1;        ///< symGS applies before restriction
  std::size_t post_sweeps = 1;       ///< symGS applies after prolongation
  std::size_t coarse_sweeps = 4;     ///< symGS applies at the bottom level
  MgSmoother smoother = MgSmoother::kAuto;
};

/// Inspector/executor transfer schedule between one grid level and its
/// coarsening.  Built once at setup (one neighborhood all-to-all of fine
/// gid requests, mirroring HaloPlan); each apply is O(transfer boundary)
/// point-to-point traffic.  Restriction is injection — coarse point
/// (xc,yc,zc) copies fine point (2xc,2yc,2zc) — and prolongation is its
/// transpose scatter-add, so each fine point receives at most one coarse
/// contribution and the apply is bitwise partition-invariant.
class GridTransfer {
 public:
  /// Collective: every rank calls together.  Distributions must be
  /// contiguous (they are the matrices' row distributions).
  void build(msg::Process& proc, std::array<std::size_t, 3> fine_dims,
             const hpf::Distribution& fine_dist,
             std::array<std::size_t, 3> coarse_dims,
             const hpf::Distribution& coarse_dist);

  /// coarse = R fine (collective).
  void restrict_to(msg::Process& proc, std::span<const double> fine,
                   std::span<double> coarse) const;

  /// fine += Rᵀ coarse (collective).
  void prolong_add(msg::Process& proc, std::span<const double> coarse,
                   std::span<double> fine) const;

  [[nodiscard]] bool built() const { return built_; }

 private:
  struct Peer {
    int rank = 0;
    std::size_t offset = 0;
    std::size_t count = 0;
  };

  static constexpr int kRestrictTag = 0x2501;
  static constexpr int kProlongTag = 0x2502;

  bool built_ = false;
  std::vector<Peer> coarse_peers_;  ///< runs of my coarse rows, per fine owner
  std::vector<Peer> fine_peers_;    ///< coarse owners served from fine_idx_
  std::vector<std::size_t> fine_idx_;     ///< my fine-local injection points
  std::vector<std::size_t> self_coarse_;  ///< co-owned: coarse local index
  std::vector<std::size_t> self_fine_;    ///< co-owned: fine local index
  mutable std::vector<double> pack_;      ///< send/recv scratch
};

/// V-cycle geometric multigrid over a 27-point stencil DistCsr, pluggable
/// into pcg_dist / pcg_fused_dist via prec().  Holds a non-owning pointer
/// to the fine matrix — the same object make_csr_rebalancer reassigns in
/// place, so after a migration only migrate_fine() is needed.
class MgPreconditioner {
 public:
  /// Collective setup: builds the level hierarchy (coarse operators with
  /// caching + warm halo plans, smoother diagonals, transfer schedules,
  /// scratch).  `fine_dims` are the grid extents with
  /// fine.n() == nx*ny*nz; the fine distribution must be contiguous.
  MgPreconditioner(msg::Process& proc, sparse::DistCsr<double>& fine,
                   std::array<std::size_t, 3> fine_dims,
                   const MgOptions& opts = {});

  /// z = M⁻¹ r: one V(pre,post) cycle from a zero initial guess
  /// (collective).  Emits one kMgLevel span per level visit and counts
  /// Stats::mg_vcycles / mg_level_sweeps.
  void apply(const hpf::DistributedVector<double>& r,
             hpf::DistributedVector<double>& z);

  /// The std::function form the distributed PCG solvers take.
  [[nodiscard]] DistPrec<double> prec();

  /// Collective: re-wire the fine level after the rebalance hook migrated
  /// the matrix onto `new_dist` (fresh halo plan and diagonals come with
  /// the migrated matrix object; this rebuilds the fine transfer schedule
  /// and scratch).  The coarse hierarchy is reused as cached.
  void migrate_fine(const hpf::DistPtr& new_dist);

  [[nodiscard]] std::size_t n_levels() const { return levels_.size(); }
  [[nodiscard]] std::array<std::size_t, 3> level_dims(std::size_t l) const {
    return levels_[l].dims;
  }
  [[nodiscard]] const sparse::DistCsr<double>& level_op(std::size_t l) const {
    return *levels_[l].op;
  }
  /// True when the pipelined exact symGS smooths (NP-invariant mode).
  [[nodiscard]] bool exact_smoother() const { return exact_; }

 private:
  struct Level {
    std::array<std::size_t, 3> dims{};
    hpf::DistPtr dist;
    std::unique_ptr<sparse::DistCsr<double>> owned_op;  ///< null on level 0
    sparse::DistCsr<double>* op = nullptr;
    std::unique_ptr<hpf::DistributedVector<double>> r, z, scratch;
    GridTransfer to_coarse;  ///< towards level l+1 (unused on the last)
  };

  void vcycle(std::size_t l, const hpf::DistributedVector<double>& r,
              hpf::DistributedVector<double>& z);
  void symgs(std::size_t l, const hpf::DistributedVector<double>& rhs,
             hpf::DistributedVector<double>& z, std::size_t sweeps);

  msg::Process* proc_;
  sparse::DistCsr<double>* fine_;
  MgOptions opts_;
  bool exact_ = false;
  std::vector<Level> levels_;
};

}  // namespace hpfcg::solvers
