#pragma once
// Mid-solve load rebalancing (SolveOptions::rebalance_every).
//
// The measured ingredient: when tracing is on, each rank knows how long its
// own matvec spans took, and dividing by its local nnz gives a per-nonzero
// cost in ns.  Row weights are per-row nnz scaled by that cost, replicated
// with one allgatherv, and fed to ext::optimal_nnz_cuts — so the re-cut
// follows where the machine says the time goes, not where the static model
// guessed.  Without tracing the weights degrade gracefully to plain nnz
// counts (the static balance).  Either way the weight vector is replicated
// before the cut decision, so every rank decides identically and the check
// ledger stays aligned.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "hpfcg/ext/balanced_partition.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/redistribute.hpp"
#include "hpfcg/trace/span.hpp"

namespace hpfcg::solvers {

/// Replicated per-row weights for re-cutting: per-row nnz, scaled by this
/// rank's measured ns-per-nonzero when tracing is on (reading the rank's
/// own span ring mid-run is safe — it is the single writer).  Collective:
/// one allgatherv replicates the weights on every rank.
template <class T>
std::vector<std::size_t> measured_row_weights(sparse::DistCsr<T>& mat) {
  msg::Process& proc = mat.proc();
  const auto rp = mat.local_row_ptr();
  const std::size_t local_nnz = rp.empty() ? 0 : rp.back() - rp.front();

  std::uint64_t unit = 1;
  if (trace::RankTrace* trc = proc.tracer_rank();
      trc != nullptr && local_nnz > 0) {
    std::uint64_t ns = 0;
    std::uint64_t n_spans = 0;
    for (const trace::Span& s : trc->spans()) {
      if (s.kind == trace::SpanKind::kMatvec) {
        ns += s.t1_ns - s.t0_ns;
        ++n_spans;
      }
    }
    if (n_spans > 0) {
      unit = std::max<std::uint64_t>(1, ns / (n_spans * local_nnz));
    }
  }

  std::vector<std::size_t> local(mat.local_rows());
  for (std::size_t lr = 0; lr < local.size(); ++lr) {
    local[lr] = (rp[lr + 1] - rp[lr]) * static_cast<std::size_t>(unit);
  }
  std::vector<std::size_t> weights;
  proc.allgatherv<std::size_t>(
      std::span<const std::size_t>(local.data(), local.size()), weights,
      mat.row_dist().counts());
  return weights;
}

/// Build the canonical RebalanceHook over a DistCsr: re-cut on measured row
/// weights, migrate the matrix when the bottleneck-optimal cuts differ from
/// the current ones, and return the new row distribution so the solver
/// re-aligns its live vectors.  Returns nullptr (no migration) when the
/// cuts come out unchanged — a replicated decision, since the weights are.
/// `on_migrate` lets the caller move dependent state (preconditioner
/// diagonals, descriptor bookkeeping) in the same breath.
template <class T>
RebalanceHook make_csr_rebalancer(
    sparse::DistCsr<T>& mat,
    std::function<void(const hpf::DistPtr&)> on_migrate = {}) {
  return [&mat, on_migrate = std::move(on_migrate)]() -> hpf::DistPtr {
    const std::vector<std::size_t> weights = measured_row_weights(mat);
    const std::vector<std::size_t> cuts =
        ext::optimal_nnz_cuts(weights, mat.proc().nprocs());
    const auto target = hpf::Distribution::from_cuts(mat.n(), cuts);
    if (target == mat.row_dist()) return nullptr;
    mat = sparse::redistribute(mat, cuts);
    // Migration built a fresh matrix, so the cached halo plan is gone;
    // rebuild it here (collectively — the cut decision is replicated, so
    // every rank takes this branch together) so the inspector cost lands
    // inside the rebalance step instead of silently extending the next
    // matvec.
    mat.prepare_halo();
    if (on_migrate) on_migrate(mat.row_dist_ptr());
    return mat.row_dist_ptr();
  };
}

}  // namespace hpfcg::solvers
