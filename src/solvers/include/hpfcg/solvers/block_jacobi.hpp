#pragma once
// Distributed block-Jacobi preconditioner.
//
// The natural preconditioner for the paper's owner-computes layout: each
// processor owns a contiguous row range, so the diagonal block A[lo:hi,
// lo:hi) lives entirely on one rank.  M = blockdiag(A_00, ..., A_PP) is
// factored once per rank with dense Cholesky; each application is two
// local triangular solves — zero communication, like point Jacobi, but
// capturing the within-block coupling the diagonal alone misses.

#include <cstddef>
#include <memory>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/solvers/dense_direct.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::solvers {

/// Build a distributed block-Jacobi preconditioner for `a` under the
/// contiguous row distribution `dist`.  SPD diagonal blocks required
/// (guaranteed for SPD `a`).  Collective: every rank factors its block.
inline DistPrec<double> block_jacobi_dist(msg::Process& proc,
                                          const sparse::Csr<double>& a,
                                          const hpf::Distribution& dist) {
  HPFCG_REQUIRE(dist.contiguous(),
                "block_jacobi: needs a contiguous row distribution");
  HPFCG_REQUIRE(a.n_rows() == dist.size(),
                "block_jacobi: matrix and distribution sizes differ");
  const auto [lo, hi] = dist.local_range(proc.rank());
  const std::size_t bn = hi - lo;

  // Densify and factor this rank's diagonal block.
  auto factor = std::make_shared<std::vector<double>>();
  if (bn > 0) {
    std::vector<double> block(bn * bn, 0.0);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] >= lo && cols[k] < hi) {
          block[(i - lo) * bn + (cols[k] - lo)] = vals[k];
        }
      }
    }
    *factor = cholesky_factor(block, bn);
  }
  // Factorization flops ~ bn^3/3.
  proc.add_flops(static_cast<std::uint64_t>(
      static_cast<double>(bn) * static_cast<double>(bn) *
      static_cast<double>(bn) / 3.0));

  return [factor, bn](const hpf::DistributedVector<double>& r,
                      hpf::DistributedVector<double>& z) {
    HPFCG_REQUIRE(r.local().size() == bn && z.local().size() == bn,
                  "block_jacobi: vector not aligned with the factor");
    if (bn == 0) return;
    const auto zl = cholesky_solve_factored(
        *factor, std::span<const double>(r.local().data(), bn));
    for (std::size_t i = 0; i < bn; ++i) z.local()[i] = zl[i];
    r.proc().add_flops(2 * bn * bn);  // two triangular solves
  };
}

}  // namespace hpfcg::solvers
