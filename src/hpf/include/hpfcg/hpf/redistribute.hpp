#pragma once
// REDISTRIBUTE: move a distributed vector onto a new distribution.
//
// HPF's DYNAMIC/REDISTRIBUTE directives (Section 5.2 of the paper) let the
// program adopt a data layout only known at run time — here, typically the
// atom-aligned or load-balanced cut-point distributions produced by the
// ext:: partitioners.  The exchange is a single personalized all-to-all.

#include <utility>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"

namespace hpfcg::hpf {

/// Collective: returns a copy of `src` distributed according to `target`.
/// Both distributions must describe the same global size and machine.
///
/// Only elements whose owner actually changes travel: keepers are copied
/// locally, and a pair of ranks exchanging nothing posts no message (the
/// all-to-all's sparsity pattern is derived on every rank from the two
/// replicated distributions).  A target identical to the source degenerates
/// to a pure local copy with no communication at all — both fast paths take
/// the same branch on every rank, so the check ledger stays aligned.
template <class T>
DistributedVector<T> redistribute(const DistributedVector<T>& src,
                                  DistPtr target) {
  HPFCG_REQUIRE(target != nullptr, "redistribute: target required");
  HPFCG_REQUIRE(target->size() == src.size(),
                "redistribute: sizes must match");
  HPFCG_REQUIRE(target->nprocs() == src.dist().nprocs(),
                "redistribute: machine sizes must match");
  msg::Process& proc = src.proc();
  const int np = proc.nprocs();
  const int me = proc.rank();
  const Distribution& from = src.dist();
  const Distribution& to = *target;

  if (src.dist_ptr() == target || from == to) {
    DistributedVector<T> dst(proc, std::move(target));
    std::copy(src.local().begin(), src.local().end(), dst.local().begin());
    return dst;
  }

  // Build per-destination blocks: my elements that rank r owns under the
  // new distribution, in ascending global order (both sides enumerate the
  // same order, so no index metadata travels).  Keepers (new owner == me)
  // skip the buffers entirely.
  std::vector<std::vector<T>> send_blocks(static_cast<std::size_t>(np));
  const std::size_t mine = from.local_count(me);
  for (std::size_t l = 0; l < mine; ++l) {
    const std::size_t g = from.global_index(me, l);
    const int o = to.owner(g);
    if (o != me) send_blocks[static_cast<std::size_t>(o)].push_back(
        src.local()[l]);
  }
  std::vector<std::uint8_t> recv_mask(static_cast<std::size_t>(np), 0);
  const std::size_t new_mine = to.local_count(me);
  for (std::size_t l = 0; l < new_mine; ++l) {
    const int s = from.owner(to.global_index(me, l));
    if (s != me) recv_mask[static_cast<std::size_t>(s)] = 1;
  }

  const auto recv_blocks = proc.alltoallv_masked<T>(send_blocks, recv_mask);

  DistributedVector<T> dst(proc, std::move(target));
  std::vector<std::size_t> cursor(static_cast<std::size_t>(np), 0);
  for (std::size_t l = 0; l < new_mine; ++l) {
    const std::size_t g = to.global_index(me, l);
    const auto s = static_cast<std::size_t>(from.owner(g));
    dst.local()[l] = static_cast<int>(s) == me
                         ? src.local()[from.local_index(g)]
                         : recv_blocks[s][cursor[s]++];
  }
  return dst;
}

}  // namespace hpfcg::hpf
