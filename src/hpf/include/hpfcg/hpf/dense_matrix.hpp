#pragma once
// Dense distributed matrices in the two layouts Section 4 analyses:
//
//   (BLOCK, *)  "row-wise partitioning"    !HPF$ ALIGN A(:, *) WITH p(:)
//   (*, BLOCK)  "column-wise partitioning" !HPF$ ALIGN A(*, :) WITH p(:)
//
// Each rank stores its strip in full; the distribution of the aligned
// dimension is shared with the vectors so ownership agrees (Figures 3/4).

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::hpf {

/// n×n dense matrix, rows distributed, each local row stored full-width.
template <class T>
class DenseRowBlockMatrix {
 public:
  DenseRowBlockMatrix(msg::Process& proc, DistPtr row_dist)
      : proc_(&proc), dist_(std::move(row_dist)) {
    HPFCG_REQUIRE(dist_ != nullptr, "matrix needs a row distribution");
    n_ = dist_->size();
    local_.assign(dist_->local_count(proc.rank()) * n_, T{});
  }

  [[nodiscard]] msg::Process& proc() const { return *proc_; }
  [[nodiscard]] const Distribution& dist() const { return *dist_; }
  [[nodiscard]] const DistPtr& dist_ptr() const { return dist_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t local_rows() const {
    return dist_->local_count(proc_->rank());
  }

  /// Full-width view of local row lr.
  [[nodiscard]] std::span<T> row(std::size_t lr) {
    HPFCG_REQUIRE(lr < local_rows(), "row: local row out of range");
    return {local_.data() + lr * n_, n_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t lr) const {
    HPFCG_REQUIRE(lr < local_rows(), "row: local row out of range");
    return {local_.data() + lr * n_, n_};
  }

  /// Global row index of local row lr.
  [[nodiscard]] std::size_t global_row(std::size_t lr) const {
    return dist_->global_index(proc_->rank(), lr);
  }

  /// Fill owned rows from a function of (global_row, col).
  void set_from(const std::function<T(std::size_t, std::size_t)>& f) {
    for (std::size_t lr = 0; lr < local_rows(); ++lr) {
      const std::size_t i = global_row(lr);
      auto rr = row(lr);
      for (std::size_t j = 0; j < n_; ++j) rr[j] = f(i, j);
    }
  }

 private:
  msg::Process* proc_;
  DistPtr dist_;
  std::size_t n_ = 0;
  std::vector<T> local_;  // local_rows × n, row-major
};

/// n×n dense matrix, columns distributed, each local column stored in full.
template <class T>
class DenseColBlockMatrix {
 public:
  DenseColBlockMatrix(msg::Process& proc, DistPtr col_dist)
      : proc_(&proc), dist_(std::move(col_dist)) {
    HPFCG_REQUIRE(dist_ != nullptr, "matrix needs a column distribution");
    n_ = dist_->size();
    local_.assign(dist_->local_count(proc.rank()) * n_, T{});
  }

  [[nodiscard]] msg::Process& proc() const { return *proc_; }
  [[nodiscard]] const Distribution& dist() const { return *dist_; }
  [[nodiscard]] const DistPtr& dist_ptr() const { return dist_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t local_cols() const {
    return dist_->local_count(proc_->rank());
  }

  /// Full-height view of local column lc (column-major storage).
  [[nodiscard]] std::span<T> col(std::size_t lc) {
    HPFCG_REQUIRE(lc < local_cols(), "col: local column out of range");
    return {local_.data() + lc * n_, n_};
  }
  [[nodiscard]] std::span<const T> col(std::size_t lc) const {
    HPFCG_REQUIRE(lc < local_cols(), "col: local column out of range");
    return {local_.data() + lc * n_, n_};
  }

  [[nodiscard]] std::size_t global_col(std::size_t lc) const {
    return dist_->global_index(proc_->rank(), lc);
  }

  /// Fill owned columns from a function of (row, global_col).
  void set_from(const std::function<T(std::size_t, std::size_t)>& f) {
    for (std::size_t lc = 0; lc < local_cols(); ++lc) {
      const std::size_t j = global_col(lc);
      auto cc = col(lc);
      for (std::size_t i = 0; i < n_; ++i) cc[i] = f(i, j);
    }
  }

 private:
  msg::Process* proc_;
  DistPtr dist_;
  std::size_t n_ = 0;
  std::vector<T> local_;  // local_cols × n, column-major
};

}  // namespace hpfcg::hpf
