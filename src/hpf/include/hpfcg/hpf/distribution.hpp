#pragma once
// HPF data distributions.
//
// Implements the mappings behind the paper's directives:
//
//   !HPF$ DISTRIBUTE p(BLOCK)              -> Distribution::block
//   !HPF$ DISTRIBUTE row(BLOCK((n+NP-1)/NP)) -> Distribution::block_size
//   !HPF$ DISTRIBUTE row(CYCLIC)           -> Distribution::cyclic
//   !HPF$ DISTRIBUTE row(CYCLIC(k))        -> Distribution::cyclic_size
//
// plus two forms HPF-1 lacks and the paper's Section 5 proposes:
//
//   cut-point distributions (the ATOM: BLOCK result — "a small array in the
//   size of the number of processors keeps the cut-off points") ->
//   Distribution::from_cuts, and
//   fully indirect ownership maps (Vienna-Fortran style)        ->
//   Distribution::indirect.
//
// A Distribution answers the three questions owner-computes code generation
// needs: who owns global index i, what is its local index there, and what
// does rank r own.

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hpfcg::hpf {

/// Immutable mapping of a 1-D global index space [0, n) onto NP processors.
class Distribution {
 public:
  enum class Kind {
    kBlock,     ///< HPF BLOCK: contiguous blocks of ceil(n/NP)
    kBlockK,    ///< HPF BLOCK(k): contiguous blocks of exactly k
    kCyclic,    ///< HPF CYCLIC: round-robin single elements
    kCyclicK,   ///< HPF CYCLIC(k): round-robin blocks of k
    kCuts,      ///< contiguous with explicit cut points (atom/balanced)
    kIndirect,  ///< arbitrary per-element owner map
  };

  /// HPF BLOCK over n elements and np processors.
  static Distribution block(std::size_t n, int np);

  /// HPF BLOCK(k).  Requires k*np >= n (at most one block per processor),
  /// which is what the paper's `BLOCK((n+NP-1)/NP)` guarantees.
  static Distribution block_size(std::size_t n, int np, std::size_t k);

  /// HPF CYCLIC.
  static Distribution cyclic(std::size_t n, int np);

  /// HPF CYCLIC(k) block-cyclic.
  static Distribution cyclic_size(std::size_t n, int np, std::size_t k);

  /// Contiguous distribution given np+1 nondecreasing cut points with
  /// cuts.front()==0 and cuts.back()==n.  Rank r owns [cuts[r], cuts[r+1]).
  static Distribution from_cuts(std::size_t n, std::vector<std::size_t> cuts);

  /// Arbitrary ownership: owner[i] in [0, np).  Local numbering is by
  /// ascending global index within each rank.
  static Distribution indirect(int np, std::vector<int> owner);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] int nprocs() const { return np_; }
  [[nodiscard]] Kind kind() const { return kind_; }

  /// Rank owning global index i.
  [[nodiscard]] int owner(std::size_t i) const;

  /// Position of global index i within its owner's local storage.
  [[nodiscard]] std::size_t local_index(std::size_t i) const;

  /// Number of elements rank r owns.
  [[nodiscard]] std::size_t local_count(int r) const;

  /// Global index of rank r's li-th local element.
  [[nodiscard]] std::size_t global_index(int r, std::size_t li) const;

  /// True when each rank's elements form one contiguous global range.
  [[nodiscard]] bool contiguous() const;

  /// For contiguous distributions: the global [lo, hi) range of rank r.
  [[nodiscard]] std::pair<std::size_t, std::size_t> local_range(int r) const;

  /// Per-rank element counts (index = rank).
  [[nodiscard]] const std::vector<std::size_t>& counts() const {
    return counts_;
  }

  /// For kCuts: the replicated cut-point array (np+1 entries).
  [[nodiscard]] const std::vector<std::size_t>& cuts() const;

  /// Human-readable name ("BLOCK", "CYCLIC(4)", ...) for tables.
  [[nodiscard]] std::string name() const;

  /// Two distributions are equal iff they map every index identically.
  bool operator==(const Distribution& o) const;

 private:
  Distribution(Kind kind, std::size_t n, int np, std::size_t k);

  void build_counts();

  Kind kind_;
  std::size_t n_;
  int np_;
  std::size_t k_ = 0;  ///< block size for kBlock/kBlockK/kCyclicK
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> cuts_;       ///< kCuts only
  std::vector<int> owner_map_;          ///< kIndirect only
  std::vector<std::size_t> local_map_;  ///< kIndirect: global -> local index
  std::vector<std::vector<std::size_t>> rank_globals_;  ///< kIndirect
};

/// Shared immutable distribution handle; aligned arrays share one instance,
/// mirroring `!HPF$ ALIGN (:) WITH p(:)` — see dist_vector.hpp.
using DistPtr = std::shared_ptr<const Distribution>;

/// Convenience wrapper producing a shared handle.
template <class... Args>
DistPtr make_block(Args&&... args) {
  return std::make_shared<const Distribution>(
      Distribution::block(std::forward<Args>(args)...));
}

}  // namespace hpfcg::hpf
