#pragma once
// Dense matrix-vector products for the two partitioning scenarios of
// Section 4.  All variants compute q = A*p and leave q distributed exactly
// like p (the paper's alignment target).
//
// Scenario 1 (row-wise, Figure 3): every rank needs all of p — one
// all-to-all broadcast — then the local rows produce the locally-owned
// block of q with no rearrangement.  Cost: allgather + 2*n*n/N_P flops.
//
// Scenario 2 (column-wise, Figure 4): the element-wise multiply is local,
// but the accumulation q(i) += ... targets elements owned by other ranks —
// a many-to-one, order-dependent update.  HPF-1 offers two expressions:
//   * the faithful serial loop (matvec_colwise_serial) — inter-processor
//     dependencies force rank-ordered execution; the cost model books the
//     serialization as wait time;
//   * a full-length temporary per processor merged with the SUM intrinsic
//     (matvec_colwise_sum) — parallel again, at the price of n-length
//     temporaries; the paper calls this "somewhat unsatisfactory" and
//     proposes the PRIVATE/MERGE extension (see ext/private_array.hpp,
//     which shares this communication structure but manages storage).

#include <vector>

#include "hpfcg/hpf/dense_matrix.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/util/error.hpp"
#include "hpfcg/util/span_math.hpp"

namespace hpfcg::hpf {

/// Scenario 1: A distributed (BLOCK, *), vectors (BLOCK).
template <class T>
void matvec_rowwise(const DenseRowBlockMatrix<T>& a,
                    const DistributedVector<T>& p, DistributedVector<T>& q) {
  HPFCG_REQUIRE(a.n() == p.size() && a.n() == q.size(),
                "matvec: dimension mismatch");
  HPFCG_REQUIRE(a.dist() == p.dist() && a.dist() == q.dist(),
                "matvec_rowwise: A rows and vectors must be aligned");
  // The all-to-all broadcast of the local vector elements (paper, Sec. 4).
  const std::vector<T> full_p = p.to_global();
  msg::Process& proc = p.proc();
  auto ql = q.local();
  for (std::size_t lr = 0; lr < a.local_rows(); ++lr) {
    ql[lr] = util::dot_local<T>(a.row(lr),
                                std::span<const T>(full_p.data(), a.n()));
  }
  proc.add_flops(2 * a.local_rows() * a.n());
}

/// Scenario 2, faithful serial semantics: ranks execute their column sweeps
/// in rank order (token chain), shipping every cross-owner accumulation to
/// its owner, which applies updates before the next rank proceeds.
template <class T>
void matvec_colwise_serial(const DenseColBlockMatrix<T>& a,
                           const DistributedVector<T>& p,
                           DistributedVector<T>& q) {
  HPFCG_REQUIRE(a.n() == p.size() && a.n() == q.size(),
                "matvec: dimension mismatch");
  HPFCG_REQUIRE(a.dist() == p.dist() && a.dist() == q.dist(),
                "matvec_colwise: A columns and vectors must be aligned");
  msg::Process& proc = p.proc();
  const int np = proc.nprocs();
  const int me = proc.rank();
  const std::size_t n = a.n();
  const int tag = 0x1000;

  util::fill<T>(q.local(), T{});
  // Partial sums this rank produces for every global q element.
  std::vector<T> partial(n, T{});

  proc.sequential([&] {
    for (std::size_t lc = 0; lc < a.local_cols(); ++lc) {
      const T pj = p.local()[lc];
      auto cc = a.col(lc);
      for (std::size_t i = 0; i < n; ++i) partial[i] += cc[i] * pj;
    }
    proc.add_flops(2 * a.local_cols() * n);
    // Ship each owner its slice of the partial sums (the many-to-one
    // assignments of the paper's inner loop, batched per destination).
    for (int r = 0; r < np; ++r) {
      if (r == me) continue;
      std::vector<T> chunk(q.dist().local_count(r));
      for (std::size_t l = 0; l < chunk.size(); ++l) {
        chunk[l] = partial[q.dist().global_index(r, l)];
      }
      proc.send<T>(r, tag, std::span<const T>(chunk.data(), chunk.size()));
    }
    // Apply own contributions.
    auto ql = q.local();
    for (std::size_t l = 0; l < ql.size(); ++l) {
      ql[l] += partial[q.global_of(l)];
    }
    proc.add_flops(ql.size());
  });

  // Apply the other ranks' contributions (owner side of the dependency).
  auto ql = q.local();
  for (int r = 0; r < np; ++r) {
    if (r == me) continue;
    std::vector<T> chunk(ql.size());
    proc.recv_into<T>(r, tag, std::span<T>(chunk.data(), chunk.size()));
    for (std::size_t l = 0; l < ql.size(); ++l) ql[l] += chunk[l];
    proc.add_flops(ql.size());
  }
}

/// Scenario 2 with the HPF-1 workaround the paper describes: a full-length
/// temporary on every rank ("two dimensional temporary local vectors in
/// place of vector q"), merged at the end with the SUM intrinsic — fully
/// parallel, same communication volume as Scenario 1's broadcast.
template <class T>
void matvec_colwise_sum(const DenseColBlockMatrix<T>& a,
                        const DistributedVector<T>& p,
                        DistributedVector<T>& q) {
  HPFCG_REQUIRE(a.n() == p.size() && a.n() == q.size(),
                "matvec: dimension mismatch");
  HPFCG_REQUIRE(a.dist() == p.dist() && a.dist() == q.dist(),
                "matvec_colwise: A columns and vectors must be aligned");
  msg::Process& proc = p.proc();
  const std::size_t n = a.n();

  std::vector<T> temp(n, T{});
  for (std::size_t lc = 0; lc < a.local_cols(); ++lc) {
    const T pj = p.local()[lc];
    auto cc = a.col(lc);
    for (std::size_t i = 0; i < n; ++i) temp[i] += cc[i] * pj;
  }
  proc.add_flops(2 * a.local_cols() * n);

  // SUM merge across processors (log-tree), then keep the owned block.
  proc.allreduce_vec(temp);
  auto ql = q.local();
  for (std::size_t l = 0; l < ql.size(); ++l) ql[l] = temp[q.global_of(l)];
}

}  // namespace hpfcg::hpf
