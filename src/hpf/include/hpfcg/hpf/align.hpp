#pragma once
// General HPF alignment functions.
//
// The paper only needs identity alignment (`ALIGN (:) WITH p(:)`), but HPF
// permits affine subscripts:
//
//   !HPF$ ALIGN x(i) WITH T(stride*i + offset)
//
// meaning element i of x lives wherever template element stride*i+offset
// lives.  This header derives the induced distribution, so strided and
// reversed arrays co-locate with the template elements they touch —
// element-wise operations against the template's ownership remain
// communication-free.

#include <memory>
#include <vector>

#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::hpf {

/// Distribution of an n-element array aligned with `tmpl` through the map
/// i -> stride*i + offset.  Every mapped subscript must land inside the
/// template.  stride may be negative (reversal alignment); zero is
/// rejected (that would be replication, which DistributedVector does not
/// model).
inline Distribution align_affine(const Distribution& tmpl, std::size_t n,
                                 long stride, long offset) {
  HPFCG_REQUIRE(stride != 0, "align_affine: stride must be nonzero");
  std::vector<int> owner(n);
  const auto tn = static_cast<long>(tmpl.size());
  for (std::size_t i = 0; i < n; ++i) {
    const long t = stride * static_cast<long>(i) + offset;
    HPFCG_REQUIRE(t >= 0 && t < tn,
                  "align_affine: subscript " + std::to_string(t) +
                      " falls outside the template");
    owner[i] = tmpl.owner(static_cast<std::size_t>(t));
  }
  return Distribution::indirect(tmpl.nprocs(), std::move(owner));
}

/// Shared-handle convenience.
inline DistPtr align_affine_ptr(const Distribution& tmpl, std::size_t n,
                                long stride, long offset) {
  return std::make_shared<const Distribution>(
      align_affine(tmpl, n, stride, offset));
}

}  // namespace hpfcg::hpf
