#pragma once
// Textual HPF distribution specs.
//
// Parses the distribution-format part of a DISTRIBUTE directive —
//   "BLOCK", "BLOCK(k)", "CYCLIC", "CYCLIC(k)"
// (case-insensitive, whitespace-tolerant) — into a Distribution, so
// example programs and drivers can take the paper's directives verbatim
// from the command line:  `quickstart --dist "CYCLIC(4)"`.

#include <string>

#include "hpfcg/hpf/distribution.hpp"

namespace hpfcg::hpf {

/// Parse an HPF distribution format spec over n elements and np
/// processors.  Throws util::Error with a pointed message on anything the
/// grammar does not accept.
Distribution parse_distribution_spec(const std::string& spec, std::size_t n,
                                     int np);

/// True if `spec` parses (for validating CLI input without committing).
bool is_valid_distribution_spec(const std::string& spec);

}  // namespace hpfcg::hpf
