#pragma once
// HPF intrinsics and array operations over distributed vectors.
//
// These are the operations Figure 2 of the paper is built from:
//   DOT_PRODUCT(r, r)      -> dot_product()        (local mult + merge)
//   p = beta * p + r       -> aypx()               (communication-free)
//   x = x + alpha * p      -> axpy()               (communication-free)
//   SUM(...)               -> sum()
//   MAXVAL(ABS(...))       -> max_abs()
//
// Element-wise operations require their operands to be mutually aligned —
// enforced, because in HPF misaligned operands silently generate
// communication; here the library makes the requirement explicit.

#include <array>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/repro/superacc.hpp"
#include "hpfcg/trace/span.hpp"
#include "hpfcg/util/span_math.hpp"

namespace hpfcg::hpf {

namespace detail {
template <class T>
void require_aligned(const DistributedVector<T>& a,
                     const DistributedVector<T>& b, const char* op) {
  HPFCG_REQUIRE(is_aligned(a, b),
                std::string(op) + ": operands must be aligned");
}
}  // namespace detail

/// DOT_PRODUCT intrinsic: local element-wise products (no communication)
/// followed by the log-tree merge (allreduce).  Cost per the paper:
/// O(n/N_P) compute + t_startup*log(N_P) merge.
///
/// With the reproducible mode on the local partial sum is accumulated
/// exactly (TwoProd into a superaccumulator) and merged via allreduce_acc,
/// so the result is the correctly rounded exact dot product — independent
/// of NP, tree shape, and block-cut placement.
template <class T>
T dot_product(const DistributedVector<T>& x, const DistributedVector<T>& y) {
  detail::require_aligned(x, y, "dot_product");
  trace::SpanScope span(x.proc().tracer_rank(), trace::SpanKind::kDot, 1,
                        x.local().size() * sizeof(T));
  auto& proc = x.proc();
  if constexpr (std::is_floating_point_v<T>) {
    if (proc.repro_active()) {
      repro::Superacc acc = repro::dot_accumulate<T>(x.local(), y.local());
      proc.add_flops(2 * x.local().size());
      proc.allreduce_acc(std::span<repro::Superacc>(&acc, 1));
      return static_cast<T>(acc.round());
    }
  }
  const T local = util::dot_local<T>(x.local(), y.local());
  proc.add_flops(2 * x.local().size());
  return proc.allreduce(local);
}

/// One (x, y) operand pair of a fused multi-dot request.
template <class T>
struct DotPair {
  const DistributedVector<T>* x;
  const DistributedVector<T>* y;
};

/// Fused DOT_PRODUCT: evaluates pairs[i].x · pairs[i].y for every pair,
/// writing the results to `out`, but merges all k partial sums in a single
/// allreduce_batch — one tree walk instead of k, so the paper's
/// t_startup*log(N_P) latency term is paid once per *group* of dots.  This
/// is the HPF-extension analogue of an elemental reduction intrinsic
/// operating on an array of expressions.  k = 0 is a communication-free
/// no-op: with no operands there is no Process to merge through, and no
/// collective is entered (all ranks must of course agree on k, which the
/// conformance ledger enforces whenever k > 0).
template <class T>
void dot_products(std::span<const DotPair<T>> pairs, std::span<T> out) {
  HPFCG_REQUIRE(pairs.size() == out.size(),
                "dot_products: pairs/out size mismatch");
  if (pairs.empty()) return;
  trace::SpanScope span(pairs[0].x->proc().tracer_rank(),
                        trace::SpanKind::kDotBatch,
                        static_cast<std::uint32_t>(pairs.size()),
                        pairs[0].x->local().size() * sizeof(T));
  auto& proc = pairs[0].x->proc();
  if constexpr (std::is_floating_point_v<T>) {
    if (proc.repro_active()) {
      // Exact local accumulation per pair, one exact batched merge: still
      // a single tree walk, and each dot is bit-identical to its scalar
      // repro dot_product for any NP and any block cuts.
      std::vector<repro::Superacc> accs(pairs.size());
      std::uint64_t rflops = 0;
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto& x = *pairs[i].x;
        const auto& y = *pairs[i].y;
        detail::require_aligned(x, y, "dot_products");
        accs[i] = repro::dot_accumulate<T>(x.local(), y.local());
        rflops += 2 * x.local().size();
      }
      proc.add_flops(rflops);
      proc.allreduce_acc(std::span<repro::Superacc>(accs));
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        out[i] = static_cast<T>(accs[i].round());
      }
      return;
    }
  }
  std::uint64_t flops = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& x = *pairs[i].x;
    const auto& y = *pairs[i].y;
    detail::require_aligned(x, y, "dot_products");
    out[i] = util::dot_local<T>(x.local(), y.local());
    flops += 2 * x.local().size();
  }
  proc.add_flops(flops);
  proc.allreduce_batch(out);
}

/// Two-dot convenience: {x1·y1, x2·y2} in one merge — the shape the fused
/// CG recurrence needs ((r,r) and (w,r) per iteration).
template <class T>
std::array<T, 2> dot_products(const DistributedVector<T>& x1,
                              const DistributedVector<T>& y1,
                              const DistributedVector<T>& x2,
                              const DistributedVector<T>& y2) {
  const std::array<DotPair<T>, 2> pairs{{{&x1, &y1}, {&x2, &y2}}};
  std::array<T, 2> out;
  dot_products<T>(pairs, out);
  return out;
}

/// Three-dot convenience, the fused PCG shape ((r,u), (w,u), (r,r)).
template <class T>
std::array<T, 3> dot_products(const DistributedVector<T>& x1,
                              const DistributedVector<T>& y1,
                              const DistributedVector<T>& x2,
                              const DistributedVector<T>& y2,
                              const DistributedVector<T>& x3,
                              const DistributedVector<T>& y3) {
  const std::array<DotPair<T>, 3> pairs{
      {{&x1, &y1}, {&x2, &y2}, {&x3, &y3}}};
  std::array<T, 3> out;
  dot_products<T>(pairs, out);
  return out;
}

/// SUM intrinsic over a distributed vector.  Reproducible mode: the local
/// loop deposits every element exactly, so the result is the correctly
/// rounded exact sum regardless of NP or block cuts.
template <class T>
T sum(const DistributedVector<T>& x) {
  auto& proc = x.proc();
  if constexpr (std::is_floating_point_v<T>) {
    if (proc.repro_active()) {
      repro::Superacc acc = repro::sum_accumulate<T>(x.local());
      proc.add_flops(x.local().size());
      proc.allreduce_acc(std::span<repro::Superacc>(&acc, 1));
      return static_cast<T>(acc.round());
    }
  }
  T local{};
  for (const auto& v : x.local()) local += v;
  proc.add_flops(x.local().size());
  return proc.allreduce(local);
}

/// Two-norm via dot_product.
template <class T>
T norm2(const DistributedVector<T>& x) {
  return std::sqrt(dot_product(x, x));
}

/// MAXVAL(ABS(x)).
template <class T>
T max_abs(const DistributedVector<T>& x) {
  const T local = util::max_abs_local<T>(x.local());
  return x.proc().allreduce(local, [](T a, T b) { return a > b ? a : b; });
}

/// MAXVAL intrinsic.  Empty local shards contribute the lowest value.
template <class T>
T maxval(const DistributedVector<T>& x) {
  T local = std::numeric_limits<T>::lowest();
  for (const auto& v : x.local()) local = v > local ? v : local;
  return x.proc().allreduce(local, [](T a, T b) { return a > b ? a : b; });
}

/// MINVAL intrinsic.
template <class T>
T minval(const DistributedVector<T>& x) {
  T local = std::numeric_limits<T>::max();
  for (const auto& v : x.local()) local = v < local ? v : local;
  return x.proc().allreduce(local, [](T a, T b) { return a < b ? a : b; });
}

/// Value-and-location pair for MAXLOC/MINLOC.
template <class T>
struct ValueLoc {
  T value;
  std::size_t index;  ///< global index
};

/// MAXLOC intrinsic: the maximum value and its (lowest) global index.
/// x must be non-empty.
template <class T>
ValueLoc<T> maxloc(const DistributedVector<T>& x) {
  HPFCG_REQUIRE(x.size() > 0, "maxloc: empty array");
  ValueLoc<T> local{std::numeric_limits<T>::lowest(), x.size()};
  for (std::size_t l = 0; l < x.local().size(); ++l) {
    const T v = x.local()[l];
    const std::size_t g = x.global_of(l);
    if (v > local.value || (v == local.value && g < local.index)) {
      local = {v, g};
    }
  }
  return x.proc().allreduce(
      local, [](const ValueLoc<T>& a, const ValueLoc<T>& b) {
        if (a.value != b.value) return a.value > b.value ? a : b;
        return a.index <= b.index ? a : b;  // lowest index ties, HPF-style
      });
}

/// MINLOC intrinsic.
template <class T>
ValueLoc<T> minloc(const DistributedVector<T>& x) {
  HPFCG_REQUIRE(x.size() > 0, "minloc: empty array");
  ValueLoc<T> local{std::numeric_limits<T>::max(), x.size()};
  for (std::size_t l = 0; l < x.local().size(); ++l) {
    const T v = x.local()[l];
    const std::size_t g = x.global_of(l);
    if (v < local.value || (v == local.value && g < local.index)) {
      local = {v, g};
    }
  }
  return x.proc().allreduce(
      local, [](const ValueLoc<T>& a, const ValueLoc<T>& b) {
        if (a.value != b.value) return a.value < b.value ? a : b;
        return a.index <= b.index ? a : b;
      });
}

/// y = y + alpha*x — the SAXPY of Section 2, O(n/N_P), communication-free.
template <class T>
void axpy(T alpha, const DistributedVector<T>& x, DistributedVector<T>& y) {
  detail::require_aligned(x, y, "axpy");
  trace::SpanScope span(y.proc().tracer_rank(), trace::SpanKind::kAxpy, 0,
                        y.local().size() * sizeof(T));
  y.proc().add_flops(util::axpy<T>(alpha, x.local(), y.local()));
}

/// y = alpha*y + x — the SAYPX used for p = beta*p + r.
template <class T>
void aypx(T alpha, const DistributedVector<T>& x, DistributedVector<T>& y) {
  detail::require_aligned(x, y, "aypx");
  trace::SpanScope span(y.proc().tracer_rank(), trace::SpanKind::kAypx, 0,
                        y.local().size() * sizeof(T));
  y.proc().add_flops(util::aypx<T>(alpha, x.local(), y.local()));
}

/// x = alpha * x.
template <class T>
void scale(T alpha, DistributedVector<T>& x) {
  x.proc().add_flops(util::scale<T>(alpha, x.local()));
}

/// dst = src (parallel array assignment).
template <class T>
void assign(const DistributedVector<T>& src, DistributedVector<T>& dst) {
  detail::require_aligned(src, dst, "assign");
  util::copy<T>(src.local(), dst.local());
}

/// x = value everywhere.
template <class T>
void fill(DistributedVector<T>& x, T value) {
  util::fill<T>(x.local(), value);
}

/// z = x * y element-wise (all three aligned).
template <class T>
void hadamard(const DistributedVector<T>& x, const DistributedVector<T>& y,
              DistributedVector<T>& z) {
  detail::require_aligned(x, y, "hadamard");
  detail::require_aligned(x, z, "hadamard");
  auto xs = x.local();
  auto ys = y.local();
  auto zs = z.local();
  for (std::size_t i = 0; i < xs.size(); ++i) zs[i] = xs[i] * ys[i];
  z.proc().add_flops(xs.size());
}

}  // namespace hpfcg::hpf
