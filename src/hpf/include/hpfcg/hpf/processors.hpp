#pragma once
// Processor arrangements — the `!HPF$ PROCESSORS :: PROCS(NP)` directive.
//
// The paper only uses 1-D arrangements; this thin type records the declared
// shape and validates it against the running machine, so example code can
// mirror the HPF source one-to-one.

#include <string>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::hpf {

/// A named 1-D processor arrangement.
class ProcessorArrangement {
 public:
  ProcessorArrangement(msg::Process& proc, std::string name)
      : name_(std::move(name)), np_(proc.nprocs()) {}

  ProcessorArrangement(msg::Process& proc, std::string name, int declared_np)
      : name_(std::move(name)), np_(declared_np) {
    HPFCG_REQUIRE(declared_np == proc.nprocs(),
                  "PROCESSORS " + name_ + "(" + std::to_string(declared_np) +
                      ") does not match the machine size " +
                      std::to_string(proc.nprocs()));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int size() const { return np_; }

 private:
  std::string name_;
  int np_;
};

}  // namespace hpfcg::hpf
