#pragma once
// Distributed 1-D arrays — the vectors of the CG algorithm.
//
// A DistributedVector is the lowered form of an HPF array with a DISTRIBUTE
// directive: each SPMD rank holds only its local shard.  Alignment
// (`!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b`) is expressed by sharing one
// Distribution instance: vectors aligned this way agree on the owner of
// every index, so element-wise operations between them are purely local —
// exactly the property the paper exploits for the SAXPY updates.

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::hpf {

/// SPMD-local handle to a distributed vector.  Constructed collectively:
/// every rank builds one with the same distribution.
template <class T>
class DistributedVector {
 public:
  DistributedVector(msg::Process& proc, DistPtr dist)
      : proc_(&proc), dist_(std::move(dist)) {
    HPFCG_REQUIRE(dist_ != nullptr, "DistributedVector needs a distribution");
    HPFCG_REQUIRE(dist_->nprocs() == proc.nprocs(),
                  "distribution processor count must match the machine");
    local_.assign(dist_->local_count(proc.rank()), T{});
  }

  /// `!HPF$ ALIGN new WITH other`: share the target's distribution.
  [[nodiscard]] static DistributedVector aligned_like(
      const DistributedVector& other) {
    return DistributedVector(*other.proc_, other.dist_);
  }

  [[nodiscard]] msg::Process& proc() const { return *proc_; }
  [[nodiscard]] const Distribution& dist() const { return *dist_; }
  [[nodiscard]] const DistPtr& dist_ptr() const { return dist_; }
  [[nodiscard]] std::size_t size() const { return dist_->size(); }

  [[nodiscard]] std::span<T> local() { return {local_.data(), local_.size()}; }
  [[nodiscard]] std::span<const T> local() const {
    return {local_.data(), local_.size()};
  }

  /// True if the calling rank owns global index g.
  [[nodiscard]] bool owns(std::size_t g) const {
    return dist_->owner(g) == proc_->rank();
  }

  /// Owner-side access to a global element (caller must own it).  An
  /// out-of-shard access is the paper's silent-corruption hazard: with
  /// checking enabled the trap names both the offending and the owning
  /// rank.
  [[nodiscard]] T& at_global(std::size_t g) {
    if (!owns(g)) ownership_fail(g, /*write=*/true);
    return local_[dist_->local_index(g)];
  }
  [[nodiscard]] const T& at_global(std::size_t g) const {
    if (!owns(g)) ownership_fail(g, /*write=*/false);
    return local_[dist_->local_index(g)];
  }

  /// Global index of the l-th local element on this rank.
  [[nodiscard]] std::size_t global_of(std::size_t l) const {
    return dist_->global_index(proc_->rank(), l);
  }

  /// Fill every owned element from a pure function of the global index.
  /// No communication (owner computes).
  void set_from(const std::function<T(std::size_t)>& f) {
    for (std::size_t l = 0; l < local_.size(); ++l) local_[l] = f(global_of(l));
  }

  /// Copy the owned slice out of a replicated full-length array.
  void from_global(std::span<const T> full) {
    HPFCG_REQUIRE(full.size() == size(), "from_global: length mismatch");
    for (std::size_t l = 0; l < local_.size(); ++l) {
      local_[l] = full[global_of(l)];
    }
  }

  /// Collective: materialize the whole vector on every rank, in global
  /// index order.  This is the all-to-all broadcast of Section 4 whose cost
  /// the paper analyses; the caller pays `allgather` communication.
  [[nodiscard]] std::vector<T> to_global() const {
    // The legacy/naive O(n) materialization (Scenario 1 as HPF-1 lowers
    // it).  The explicit span and gather_bytes counter keep the
    // gathered-vs-halo byte comparison honest in the bench tables: every
    // call delivers the whole vector minus this rank's block, regardless
    // of how few entries the caller actually reads.
    trace::SpanScope span(proc_->tracer_rank(), trace::SpanKind::kGatherFull,
                          0, size() * sizeof(T), proc_->tree_depth());
    proc_->stats().gather_bytes +=
        (size() - local().size()) * sizeof(T);
    std::vector<T> gathered;
    proc_->allgatherv<T>(local(), gathered, dist_->counts());
    if (dist_->contiguous()) return gathered;  // already in global order
    // Non-contiguous distributions: permute rank-concatenated order into
    // global order.
    std::vector<T> full(size());
    std::size_t pos = 0;
    for (int r = 0; r < proc_->nprocs(); ++r) {
      const std::size_t cnt = dist_->local_count(r);
      for (std::size_t l = 0; l < cnt; ++l) {
        full[dist_->global_index(r, l)] = gathered[pos++];
      }
    }
    return full;
  }

  /// Collective: gather the vector to `root` only (global order there,
  /// empty elsewhere).
  [[nodiscard]] std::vector<T> to_root(int root) const {
    std::vector<T> gathered;
    proc_->gatherv<T>(root, local(), gathered, dist_->counts());
    if (proc_->rank() != root) return {};
    if (dist_->contiguous()) return gathered;
    std::vector<T> full(size());
    std::size_t pos = 0;
    for (int r = 0; r < proc_->nprocs(); ++r) {
      const std::size_t cnt = dist_->local_count(r);
      for (std::size_t l = 0; l < cnt; ++l) {
        full[dist_->global_index(r, l)] = gathered[pos++];
      }
    }
    return full;
  }

 private:
  [[noreturn]] void ownership_fail(std::size_t g, bool write) const {
    if (check::kCompiled && check::enabled()) {
      throw util::Error(
          "hpfcg::check: ownership violation: rank " +
          std::to_string(proc_->rank()) + " attempted an out-of-shard " +
          (write ? "write to" : "read of") + " global index " +
          std::to_string(g) + ", which is owned by rank " +
          std::to_string(dist_->owner(g)));
    }
    HPFCG_REQUIRE(false, "at_global: element not owned by this rank");
  }

  msg::Process* proc_;
  DistPtr dist_;
  std::vector<T> local_;
};

/// True when two vectors share an identical element→rank mapping (the HPF
/// alignment property that makes element-wise ops communication-free).
template <class T>
bool is_aligned(const DistributedVector<T>& a, const DistributedVector<T>& b) {
  return a.dist_ptr() == b.dist_ptr() || a.dist() == b.dist();
}

}  // namespace hpfcg::hpf
