#pragma once
// FORALL / INDEPENDENT-DO loop helpers.
//
// HPF's FORALL with owner-computes placement lowers to "each rank iterates
// over the indices it owns".  These helpers express that directly: the body
// receives (global_index, local_index) for every locally-owned iteration.

#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"

namespace hpfcg::hpf {

/// Owner-computes FORALL over [0, dist.size()): each rank runs the body for
/// the iterations it owns.  Iterations must be independent (FORALL
/// semantics); nothing is synchronized.
template <class Body>
void forall(msg::Process& proc, const Distribution& dist, Body&& body) {
  const int r = proc.rank();
  const std::size_t cnt = dist.local_count(r);
  for (std::size_t l = 0; l < cnt; ++l) {
    body(dist.global_index(r, l), l);
  }
}

/// INDEPENDENT DO — semantically identical lowering; provided so call sites
/// can mirror which HPF construct the paper's code fragments use.
template <class Body>
void independent_do(msg::Process& proc, const Distribution& dist,
                    Body&& body) {
  forall(proc, dist, std::forward<Body>(body));
}

/// FORALL with a local reduction: returns op-fold of body results over the
/// owned iterations (no merge — combine with Process::allreduce if a global
/// value is needed).
template <class T, class Body, class Op>
T forall_reduce(msg::Process& proc, const Distribution& dist, T init,
                Body&& body, Op&& op) {
  const int r = proc.rank();
  const std::size_t cnt = dist.local_count(r);
  T acc = init;
  for (std::size_t l = 0; l < cnt; ++l) {
    acc = op(acc, body(dist.global_index(r, l), l));
  }
  return acc;
}

}  // namespace hpfcg::hpf
