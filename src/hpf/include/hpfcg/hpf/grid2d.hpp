#pragma once
// 2-D processor grids and block-block dense matrices — beyond the paper.
//
// Section 4 concludes that with 1-D stripes "it is not possible to reduce
// the communication time ... either in a row-wise or column-wise fashion":
// both move O(n) data per sweep.  The classical escape (Kumar et al.,
// which the paper cites) is a 2-D pr×pc block decomposition: the vector is
// gathered only within grid columns (n/pc per rank) and partial results
// reduce-scattered only within grid rows (n/pr per rank), for O(n/sqrt(P))
// total volume.  This header provides that decomposition as an ablation:
//
//   Grid2D               — rank <-> (row, col) coordinates, group lists
//   group_allgatherv     — allgather among an explicit rank list
//   group_reduce_scatter — ring reduce-scatter among an explicit rank list
//   DenseGrid2DMatrix    — the (BLOCK, BLOCK) dense matrix
//   matvec_grid2d        — q = A p with both vectors in plain BLOCK(np)
//
// Subgroup collectives use fixed tags: within one call each (src, dst,
// tag) pair carries exactly one message and SPMD programs order calls
// identically on every rank, so FIFO matching keeps back-to-back calls
// aligned.

#include <memory>
#include <numeric>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::hpf {

/// A pr×pc arrangement of the machine's np = pr*pc processors.
/// Rank r sits at (row, col) = (r / pc, r % pc).
class Grid2D {
 public:
  /// Most-square factorization of np.
  static Grid2D squarest(int np) {
    int pc = 1;
    for (int c = 1; c * c <= np; ++c) {
      if (np % c == 0) pc = c;
    }
    return Grid2D(np / pc, pc);
  }

  Grid2D(int pr, int pc) : pr_(pr), pc_(pc) {
    HPFCG_REQUIRE(pr >= 1 && pc >= 1, "Grid2D: empty grid");
  }

  [[nodiscard]] int pr() const { return pr_; }
  [[nodiscard]] int pc() const { return pc_; }
  [[nodiscard]] int np() const { return pr_ * pc_; }

  [[nodiscard]] int row_of(int rank) const { return rank / pc_; }
  [[nodiscard]] int col_of(int rank) const { return rank % pc_; }
  [[nodiscard]] int rank_of(int row, int col) const {
    return row * pc_ + col;
  }

  /// Ranks sharing grid row `row`, ordered by column.
  [[nodiscard]] std::vector<int> row_group(int row) const {
    std::vector<int> out(static_cast<std::size_t>(pc_));
    for (int c = 0; c < pc_; ++c) out[static_cast<std::size_t>(c)] =
        rank_of(row, c);
    return out;
  }

  /// Ranks sharing grid column `col`, ordered by row.
  [[nodiscard]] std::vector<int> col_group(int col) const {
    std::vector<int> out(static_cast<std::size_t>(pr_));
    for (int r = 0; r < pr_; ++r) out[static_cast<std::size_t>(r)] =
        rank_of(r, col);
    return out;
  }

 private:
  int pr_;
  int pc_;
};

/// Ring allgather among `members` (this rank must be one of them).
/// `counts[i]` is member i's block length; `out` receives the ordered
/// concatenation on every member.
template <class T>
void group_allgatherv(msg::Process& proc, const std::vector<int>& members,
                      std::span<const T> local, std::vector<T>& out,
                      const std::vector<std::size_t>& counts, int tag) {
  const int g = static_cast<int>(members.size());
  HPFCG_REQUIRE(counts.size() == members.size(),
                "group_allgatherv: one count per member");
  int me = -1;
  for (int i = 0; i < g; ++i) {
    if (members[static_cast<std::size_t>(i)] == proc.rank()) me = i;
  }
  HPFCG_REQUIRE(me >= 0, "group_allgatherv: caller not in the group");
  HPFCG_REQUIRE(local.size() == counts[static_cast<std::size_t>(me)],
                "group_allgatherv: local size disagrees with counts");

  std::vector<std::size_t> offset(counts.size() + 1, 0);
  std::partial_sum(counts.begin(), counts.end(), offset.begin() + 1);
  out.assign(offset.back(), T{});
  std::copy(local.begin(), local.end(),
            out.begin() +
                static_cast<std::ptrdiff_t>(offset[static_cast<std::size_t>(me)]));
  if (g == 1) return;

  const int right = members[static_cast<std::size_t>((me + 1) % g)];
  const int left = members[static_cast<std::size_t>((me - 1 + g) % g)];
  for (int step = 0; step < g - 1; ++step) {
    const auto sb = static_cast<std::size_t>((me - step + g) % g);
    const auto rb = static_cast<std::size_t>((me - step - 1 + g) % g);
    proc.send<T>(right, tag + step,
                 std::span<const T>(out.data() + offset[sb], counts[sb]));
    proc.recv_into<T>(left, tag + step,
                      std::span<T>(out.data() + offset[rb], counts[rb]));
  }
}

/// Ring reduce-scatter among `members`: every member holds a full group
/// vector `buf` (concatenation of per-member chunks sized by `counts`);
/// on return `mine` holds the element-wise sum of member chunk `me`.
template <class T>
void group_reduce_scatter(msg::Process& proc, const std::vector<int>& members,
                          std::vector<T>& buf, std::span<T> mine,
                          const std::vector<std::size_t>& counts, int tag) {
  const int g = static_cast<int>(members.size());
  HPFCG_REQUIRE(counts.size() == members.size(),
                "group_reduce_scatter: one count per member");
  int me = -1;
  for (int i = 0; i < g; ++i) {
    if (members[static_cast<std::size_t>(i)] == proc.rank()) me = i;
  }
  HPFCG_REQUIRE(me >= 0, "group_reduce_scatter: caller not in the group");
  std::vector<std::size_t> offset(counts.size() + 1, 0);
  std::partial_sum(counts.begin(), counts.end(), offset.begin() + 1);
  HPFCG_REQUIRE(buf.size() == offset.back(),
                "group_reduce_scatter: buffer length disagrees with counts");
  HPFCG_REQUIRE(mine.size() == counts[static_cast<std::size_t>(me)],
                "group_reduce_scatter: result length disagrees with counts");

  if (g == 1) {
    std::copy_n(buf.data() + offset[static_cast<std::size_t>(me)],
                mine.size(), mine.data());
    return;
  }
  const int right = members[static_cast<std::size_t>((me + 1) % g)];
  const int left = members[static_cast<std::size_t>((me - 1 + g) % g)];
  // Step s: send chunk (me - s) and fold the received chunk (me - s - 1)
  // into our running buffer; after g-1 steps chunk `me+1-g == me+1 mod g`…
  // the standard ring ends with chunk (me+1)%g fully reduced at this rank —
  // so we walk the ring so that chunk `me` lands here instead.
  for (int step = 0; step < g - 1; ++step) {
    const auto sb = static_cast<std::size_t>((me - step + g) % g);
    const auto rb = static_cast<std::size_t>((me - step - 1 + g) % g);
    proc.send<T>(right, tag + step,
                 std::span<const T>(buf.data() + offset[sb], counts[sb]));
    std::vector<T> incoming(counts[rb]);
    proc.recv_into<T>(left, tag + step,
                      std::span<T>(incoming.data(), incoming.size()));
    T* dst = buf.data() + offset[rb];
    for (std::size_t i = 0; i < incoming.size(); ++i) dst[i] += incoming[i];
    proc.add_flops(incoming.size());
  }
  // After the loop the fully reduced chunk at this rank is (me + 1) % g…
  // no: we folded rb = me-1, me-2, …, me-(g-1); the last fold was into
  // chunk (me - (g-1)) % g == (me + 1) % g.  One extra hop brings chunk
  // `me` home from the right neighbour, which finished reducing it.
  {
    const auto final_here = static_cast<std::size_t>((me + 1) % g);
    proc.send<T>(right, tag + g,
                 std::span<const T>(buf.data() + offset[final_here],
                                    counts[final_here]));
    proc.recv_into<T>(left, tag + g, mine);
  }
}

/// Dense n×n matrix on a 2-D grid: rank (i, j) stores the (BLOCK, BLOCK)
/// tile rows(i) × cols(j), with rows = BLOCK(n, pr), cols = BLOCK(n, pc).
template <class T>
class DenseGrid2DMatrix {
 public:
  DenseGrid2DMatrix(msg::Process& proc, Grid2D grid, std::size_t n)
      : proc_(&proc), grid_(grid), n_(n),
        row_blocks_(Distribution::block(n, grid.pr())),
        col_blocks_(Distribution::block(n, grid.pc())) {
    HPFCG_REQUIRE(grid.np() == proc.nprocs(),
                  "DenseGrid2DMatrix: grid must cover the machine");
    const int gr = grid_.row_of(proc.rank());
    const int gc = grid_.col_of(proc.rank());
    std::tie(rlo_, rhi_) = row_blocks_.local_range(gr);
    std::tie(clo_, chi_) = col_blocks_.local_range(gc);
    tile_.assign((rhi_ - rlo_) * (chi_ - clo_), T{});
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] const Grid2D& grid() const { return grid_; }
  [[nodiscard]] std::size_t tile_rows() const { return rhi_ - rlo_; }
  [[nodiscard]] std::size_t tile_cols() const { return chi_ - clo_; }

  /// Fill the owned tile from a function of global (i, j).
  void set_from(const std::function<T(std::size_t, std::size_t)>& f) {
    for (std::size_t i = rlo_; i < rhi_; ++i) {
      for (std::size_t j = clo_; j < chi_; ++j) {
        tile_[(i - rlo_) * tile_cols() + (j - clo_)] = f(i, j);
      }
    }
  }

  /// The distribution a vector must have so that grid column j's group
  /// collectively owns column segment j: rank (i, j) owns the i-th
  /// sub-piece of segment j.
  [[nodiscard]] DistPtr vector_dist() const {
    std::vector<int> owner(n_);
    for (int j = 0; j < grid_.pc(); ++j) {
      const auto [lo, hi] = col_blocks_.local_range(j);
      const auto piece = Distribution::block(hi - lo, grid_.pr());
      for (std::size_t g = lo; g < hi; ++g) {
        owner[g] = grid_.rank_of(piece.owner(g - lo), j);
      }
    }
    return std::make_shared<const Distribution>(
        Distribution::indirect(grid_.np(), std::move(owner)));
  }

  /// The distribution the *result* of matvec comes out in: rank (i, j)
  /// owns the j-th sub-piece of row segment i — the transpose of
  /// vector_dist().  (The classical 2-D matvec asymmetry; redistribute()
  /// maps between the two at O(n/NP) per-rank cost when iterating.)
  [[nodiscard]] DistPtr result_dist() const {
    std::vector<int> owner(n_);
    for (int i = 0; i < grid_.pr(); ++i) {
      const auto [lo, hi] = row_blocks_.local_range(i);
      const auto piece = Distribution::block(hi - lo, grid_.pc());
      for (std::size_t g = lo; g < hi; ++g) {
        owner[g] = grid_.rank_of(i, piece.owner(g - lo));
      }
    }
    return std::make_shared<const Distribution>(
        Distribution::indirect(grid_.np(), std::move(owner)));
  }

  /// q = A p.  `p` must use vector_dist(), `q` result_dist().
  /// Communication per rank: column-group allgather of n/pc + row-group
  /// reduce-scatter of n/pr — O(n/sqrt(P)) instead of the stripes' O(n).
  void matvec(const DistributedVector<T>& p, DistributedVector<T>& q) {
    HPFCG_REQUIRE(p.size() == n_ && q.size() == n_,
                  "grid2d matvec: dimension mismatch");
    msg::Process& proc = *proc_;
    const int gr = grid_.row_of(proc.rank());
    const int gc = grid_.col_of(proc.rank());

    // (1) allgather p's column segment within my grid column.
    const auto col_members = grid_.col_group(gc);
    std::vector<std::size_t> piece_counts(col_members.size());
    {
      const auto piece =
          Distribution::block(chi_ - clo_, grid_.pr());
      for (int i = 0; i < grid_.pr(); ++i) {
        piece_counts[static_cast<std::size_t>(i)] = piece.local_count(i);
      }
    }
    std::vector<T> p_seg;
    group_allgatherv<T>(proc, col_members, p.local(), p_seg, piece_counts,
                        0x3000);
    HPFCG_REQUIRE(p_seg.size() == chi_ - clo_,
                  "grid2d matvec: gathered segment has wrong length");

    // (2) local GEMV over the tile -> partial result for rows [rlo, rhi).
    const std::size_t tr = tile_rows();
    const std::size_t tc = tile_cols();
    std::vector<T> partial(tr, T{});
    for (std::size_t i = 0; i < tr; ++i) {
      T acc{};
      const T* row = tile_.data() + i * tc;
      for (std::size_t j = 0; j < tc; ++j) acc += row[j] * p_seg[j];
      partial[i] = acc;
    }
    proc.add_flops(2 * tr * tc);

    // (3) reduce-scatter the partials within my grid row; my piece of the
    // row segment is the gc-th sub-block.
    const auto row_members = grid_.row_group(gr);
    std::vector<std::size_t> out_counts(row_members.size());
    {
      const auto piece = Distribution::block(tr, grid_.pc());
      for (int j = 0; j < grid_.pc(); ++j) {
        out_counts[static_cast<std::size_t>(j)] = piece.local_count(j);
      }
    }
    HPFCG_REQUIRE(q.local().size() ==
                      out_counts[static_cast<std::size_t>(gc)],
                  "grid2d matvec: q not distributed by vector_dist()");
    group_reduce_scatter<T>(proc, row_members, partial, q.local(), out_counts,
                            0x3200);
  }

 private:
  msg::Process* proc_;
  Grid2D grid_;
  std::size_t n_;
  Distribution row_blocks_;
  Distribution col_blocks_;
  std::size_t rlo_ = 0, rhi_ = 0, clo_ = 0, chi_ = 0;
  std::vector<T> tile_;  // tile_rows × tile_cols, row-major
};

}  // namespace hpfcg::hpf
