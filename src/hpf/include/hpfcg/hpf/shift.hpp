#pragma once
// CSHIFT / EOSHIFT — the Fortran 90 / HPF shift intrinsics.
//
// Shifts are the data-parallel idiom behind stencil computations (the CFD
// grids of the paper's introduction): `CSHIFT(x, 1)` aligns each element
// with its right neighbour, so a Laplacian apply is a sum of shifted
// arrays with no assembled matrix at all.  On a contiguous (BLOCK-like)
// distribution a shift by s exchanges only the s boundary elements with
// the neighbouring ranks — O(s) bytes and O(1) messages per rank, against
// the matvec broadcast's O(n).  Non-contiguous distributions fall back to
// a personalized all-to-all.

#include <algorithm>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::hpf {

namespace detail {

/// Split the global interval [a, b) (not wrapped) into maximal pieces with
/// a single owner under contiguous distribution d.  Calls
/// fn(owner, piece_begin, piece_end).
template <class Fn>
void for_owned_pieces(const Distribution& d, std::size_t a, std::size_t b,
                      Fn&& fn) {
  std::size_t pos = a;
  while (pos < b) {
    const int r = d.owner(pos);
    const std::size_t owner_hi = d.local_range(r).second;
    const std::size_t end = std::min(b, owner_hi);
    fn(r, pos, end);
    pos = end;
  }
}

/// Targeted shift for contiguous distributions: every rank sends exactly
/// the sub-ranges of its block that other ranks need, and receives the
/// mirror set — neighbours only, for small shifts.
template <class T>
void shift_contiguous(const DistributedVector<T>& src,
                      DistributedVector<T>& dst, long shift, bool circular,
                      T fill) {
  msg::Process& proc = src.proc();
  const Distribution& d = src.dist();
  const std::size_t n = src.size();
  const auto sn = static_cast<long>(n);
  const int me = proc.rank();
  constexpr int kTag = 0x2800;

  // Circular shifts reduce modulo n (a full wrap is the identity); end-off
  // shifts must NOT be reduced — shifting by >= n vacates everything.
  long s = shift;
  if (circular) {
    s %= sn;
    if (s < 0) s += sn;
  }

  const auto [dlo, dhi] = d.local_range(me);
  const auto [slo, shi] = d.local_range(me);

  // dst[t] = src[t + s] (with wrap when circular).  A global dst interval
  // [a, b) therefore needs the src interval [a+s, b+s), possibly wrapped
  // into up to two unwrapped pieces; an unwrapped src piece [p, q) owned
  // by rank r means: r sends src[p, q) to the owner(s) of dst [p-s, q-s).
  //
  // Sends: decompose my src block shifted back into dst space.
  const auto send_piece = [&](long t_begin, long t_end, std::size_t src_off) {
    // dst indices [t_begin, t_end), data from my local storage starting at
    // src_off; clip to the valid dst range for end-off shifts.
    long lo = t_begin;
    long hi = t_end;
    if (!circular) {
      lo = std::max(lo, 0L);
      hi = std::min(hi, sn);
    }
    if (lo >= hi) return;
    const std::size_t adj = static_cast<std::size_t>(lo - t_begin);
    for_owned_pieces(
        d, static_cast<std::size_t>(lo), static_cast<std::size_t>(hi),
        [&](int r, std::size_t a, std::size_t b) {
          const std::size_t off = src_off + adj + (a - static_cast<std::size_t>(lo));
          if (r == me) {
            // Local move.
            for (std::size_t t = a; t < b; ++t) {
              dst.local()[d.local_index(t)] =
                  src.local()[off + (t - a)];
            }
          } else {
            proc.send<T>(r, kTag,
                         std::span<const T>(src.local().data() + off, b - a));
          }
        });
  };

  if (!circular) {
    for (auto& v : dst.local()) v = fill;
  }

  // My src block [slo, shi) maps to dst interval [slo - s, shi - s); for
  // circular shifts split the wrapped image into unwrapped pieces.
  {
    const long t0 = static_cast<long>(slo) - s;
    const long t1 = static_cast<long>(shi) - s;
    if (!circular) {
      send_piece(t0, t1, 0);
    } else {
      // Shift the interval into [0, n) by adding multiples of n; it can
      // straddle one wrap boundary, producing at most two pieces.
      long base = t0;
      while (base < 0) base += sn;
      while (base >= sn) base -= sn;
      const long len = t1 - t0;  // == block length
      const long first_len = std::min(len, sn - base);
      send_piece(base, base + first_len, 0);
      if (first_len < len) {
        send_piece(0, len - first_len, static_cast<std::size_t>(first_len));
      }
    }
  }

  // Receives: decompose my dst block's source interval by owner; FIFO per
  // (src, tag) keeps multi-piece streams ordered because both sides
  // enumerate pieces in ascending global order.
  {
    const long u0 = static_cast<long>(dlo) + s;
    const long u1 = static_cast<long>(dhi) + s;
    const auto recv_piece = [&](std::size_t a, std::size_t b,
                                std::size_t dst_off) {
      for_owned_pieces(d, a, b, [&](int r, std::size_t pa, std::size_t pb) {
        if (r == me) return;  // handled by the local move above
        proc.recv_into<T>(
            r, kTag,
            std::span<T>(dst.local().data() + dst_off + (pa - a), pb - pa));
      });
    };
    if (!circular) {
      const long lo = std::max(u0, 0L);
      const long hi = std::min(u1, sn);
      if (lo < hi) {
        recv_piece(static_cast<std::size_t>(lo), static_cast<std::size_t>(hi),
                   static_cast<std::size_t>(lo - u0));
      }
    } else {
      long base = u0;
      while (base < 0) base += sn;
      while (base >= sn) base -= sn;
      const long len = u1 - u0;
      const long first_len = std::min(len, sn - base);
      recv_piece(static_cast<std::size_t>(base),
                 static_cast<std::size_t>(base + first_len), 0);
      if (first_len < len) {
        recv_piece(0, static_cast<std::size_t>(len - first_len),
                   static_cast<std::size_t>(first_len));
      }
    }
  }
}

/// Fallback for non-contiguous distributions: route element-wise through
/// one personalized all-to-all.
template <class T>
void shift_alltoall(const DistributedVector<T>& src, DistributedVector<T>& dst,
                    long shift, bool circular, T fill) {
  msg::Process& proc = src.proc();
  const std::size_t n = src.size();
  const auto sn = static_cast<long>(n);
  const int np = proc.nprocs();
  const Distribution& d = src.dist();

  std::vector<std::vector<T>> out(static_cast<std::size_t>(np));
  std::vector<std::vector<std::size_t>> out_idx(static_cast<std::size_t>(np));
  for (std::size_t l = 0; l < src.local().size(); ++l) {
    const auto g = static_cast<long>(src.global_of(l));
    long target = g - shift;  // dst[target] = src[g]
    if (circular) {
      target = ((target % sn) + sn) % sn;
    } else if (target < 0 || target >= sn) {
      continue;
    }
    const auto ut = static_cast<std::size_t>(target);
    const int owner = d.owner(ut);
    out[static_cast<std::size_t>(owner)].push_back(src.local()[l]);
    out_idx[static_cast<std::size_t>(owner)].push_back(ut);
  }

  const auto vals = proc.alltoallv<T>(out);
  const auto idxs = proc.alltoallv<std::size_t>(out_idx);

  if (!circular) {
    for (auto& v : dst.local()) v = fill;
  }
  for (int r = 0; r < np; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    for (std::size_t k = 0; k < vals[ur].size(); ++k) {
      dst.at_global(idxs[ur][k]) = vals[ur][k];
    }
  }
}

template <class T>
void shift_exchange(const DistributedVector<T>& src, DistributedVector<T>& dst,
                    long shift, bool circular, T fill) {
  HPFCG_REQUIRE(is_aligned(src, dst), "shift: operands must be aligned");
  HPFCG_REQUIRE(src.size() > 0, "shift: empty array");
  if (src.dist().contiguous()) {
    shift_contiguous(src, dst, shift, circular, fill);
  } else {
    shift_alltoall(src, dst, shift, circular, fill);
  }
}

}  // namespace detail

/// dst = CSHIFT(src, shift): dst(i) = src((i + shift) mod n) — Fortran
/// semantics: positive shift moves data toward lower indices.
template <class T>
void cshift(const DistributedVector<T>& src, DistributedVector<T>& dst,
            long shift) {
  detail::shift_exchange(src, dst, shift, /*circular=*/true, T{});
}

/// dst = EOSHIFT(src, shift, boundary): end-off shift, vacated positions
/// filled with `boundary`.
template <class T>
void eoshift(const DistributedVector<T>& src, DistributedVector<T>& dst,
             long shift, T boundary = T{}) {
  detail::shift_exchange(src, dst, shift, /*circular=*/false, boundary);
}

/// Matrix-free 1-D Laplacian stencil via shifts (Dirichlet boundaries):
///   q = 2*p - EOSHIFT(p, +1) - EOSHIFT(p, -1)
/// Numerically identical to the assembled tridiagonal [-1, 2, -1] matvec,
/// but communicating only the two boundary elements per rank.
template <class T>
void laplace1d_stencil(const DistributedVector<T>& p,
                       DistributedVector<T>& q) {
  auto left = DistributedVector<T>::aligned_like(p);
  auto right = DistributedVector<T>::aligned_like(p);
  eoshift(p, right, 1, T{});   // right(i) = p(i+1)
  eoshift(p, left, -1, T{});   // left(i)  = p(i-1)
  auto ps = p.local();
  auto ls = left.local();
  auto rs = right.local();
  auto qs = q.local();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    qs[i] = 2 * ps[i] - ls[i] - rs[i];
  }
  p.proc().add_flops(3 * ps.size());
}

}  // namespace hpfcg::hpf
