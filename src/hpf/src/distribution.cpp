#include "hpfcg/hpf/distribution.hpp"

#include <algorithm>
#include <limits>

#include "hpfcg/util/error.hpp"

namespace hpfcg::hpf {

namespace {
/// a*b clamped to SIZE_MAX instead of wrapping.  Block boundaries like
/// r*k feed std::min(n_, ...) — a wrapped product silently lands back
/// inside [0, n) and produces owner/local_count answers that disagree.
std::size_t mul_sat(std::size_t a, std::size_t b) {
  if (a != 0 && b > std::numeric_limits<std::size_t>::max() / a) {
    return std::numeric_limits<std::size_t>::max();
  }
  return a * b;
}
}  // namespace

Distribution::Distribution(Kind kind, std::size_t n, int np, std::size_t k)
    : kind_(kind), n_(n), np_(np), k_(k) {
  HPFCG_REQUIRE(np >= 1, "distribution needs at least one processor");
}

Distribution Distribution::block(std::size_t n, int np) {
  HPFCG_REQUIRE(np >= 1, "distribution needs at least one processor");
  // HPF BLOCK is BLOCK(ceil(n/np)).
  const std::size_t k =
      n == 0 ? 1 : (n + static_cast<std::size_t>(np) - 1) /
                       static_cast<std::size_t>(np);
  Distribution d(Kind::kBlock, n, np, k);
  d.build_counts();
  return d;
}

Distribution Distribution::block_size(std::size_t n, int np, std::size_t k) {
  HPFCG_REQUIRE(np >= 1, "distribution needs at least one processor");
  HPFCG_REQUIRE(k >= 1, "BLOCK(k) needs k >= 1, got k=" + std::to_string(k) +
                            " over n=" + std::to_string(n));
  // Coverage check in ceil-division form: the literal k*np >= n wraps for
  // large k (k*np mod 2^64 can fall below n), spuriously rejecting layouts
  // that do cover the array.
  const std::size_t min_k = n == 0 ? 1
                                   : (n + static_cast<std::size_t>(np) - 1) /
                                         static_cast<std::size_t>(np);
  HPFCG_REQUIRE(k >= min_k,
                "BLOCK(k): k*NP must cover the array (one block per rank): "
                "k=" + std::to_string(k) + ", NP=" + std::to_string(np) +
                    ", n=" + std::to_string(n));
  Distribution d(Kind::kBlockK, n, np, k);
  d.build_counts();
  return d;
}

Distribution Distribution::cyclic(std::size_t n, int np) {
  Distribution d(Kind::kCyclic, n, np, 1);
  d.build_counts();
  return d;
}

Distribution Distribution::cyclic_size(std::size_t n, int np, std::size_t k) {
  HPFCG_REQUIRE(np >= 1, "distribution needs at least one processor");
  HPFCG_REQUIRE(k >= 1, "CYCLIC(k) needs k >= 1, got k=" + std::to_string(k) +
                            " over n=" + std::to_string(n));
  // The cycle length k*NP must be representable: a wrapped cycle makes
  // build_counts credit whole phantom cycles to ranks that owner() never
  // names (counts() and owner() disagree).
  HPFCG_REQUIRE(k <= std::numeric_limits<std::size_t>::max() /
                         static_cast<std::size_t>(np),
                "CYCLIC(k): k*NP overflows: k=" + std::to_string(k) +
                    ", NP=" + std::to_string(np));
  Distribution d(Kind::kCyclicK, n, np, k);
  d.build_counts();
  return d;
}

Distribution Distribution::from_cuts(std::size_t n,
                                     std::vector<std::size_t> cuts) {
  HPFCG_REQUIRE(cuts.size() >= 2, "from_cuts: need np+1 cut points");
  HPFCG_REQUIRE(cuts.front() == 0 && cuts.back() == n,
                "from_cuts: cuts must start at 0 and end at n");
  HPFCG_REQUIRE(std::is_sorted(cuts.begin(), cuts.end()),
                "from_cuts: cut points must be nondecreasing");
  const int np = static_cast<int>(cuts.size()) - 1;
  Distribution d(Kind::kCuts, n, np, 0);
  d.cuts_ = std::move(cuts);
  d.build_counts();
  return d;
}

Distribution Distribution::indirect(int np, std::vector<int> owner) {
  Distribution d(Kind::kIndirect, owner.size(), np, 0);
  d.owner_map_ = std::move(owner);
  d.local_map_.resize(d.n_);
  d.rank_globals_.resize(static_cast<std::size_t>(np));
  for (std::size_t i = 0; i < d.n_; ++i) {
    const int r = d.owner_map_[i];
    HPFCG_REQUIRE(r >= 0 && r < np, "indirect: owner out of range");
    auto& mine = d.rank_globals_[static_cast<std::size_t>(r)];
    d.local_map_[i] = mine.size();
    mine.push_back(i);
  }
  d.build_counts();
  return d;
}

void Distribution::build_counts() {
  counts_.assign(static_cast<std::size_t>(np_), 0);
  switch (kind_) {
    case Kind::kBlock:
    case Kind::kBlockK:
      for (int r = 0; r < np_; ++r) {
        const std::size_t lo =
            std::min(n_, mul_sat(static_cast<std::size_t>(r), k_));
        const std::size_t hi =
            std::min(n_, mul_sat(static_cast<std::size_t>(r) + 1, k_));
        counts_[static_cast<std::size_t>(r)] = hi - lo;
      }
      break;
    case Kind::kCyclic:
    case Kind::kCyclicK: {
      // Count whole cycles analytically, then the tail exactly.
      const std::size_t cycle = k_ * static_cast<std::size_t>(np_);
      const std::size_t full = n_ / cycle;
      for (auto& c : counts_) c = full * k_;
      for (std::size_t i = full * cycle; i < n_; ++i) {
        ++counts_[static_cast<std::size_t>(owner(i))];
      }
      break;
    }
    case Kind::kCuts:
      for (int r = 0; r < np_; ++r) {
        counts_[static_cast<std::size_t>(r)] =
            cuts_[static_cast<std::size_t>(r) + 1] -
            cuts_[static_cast<std::size_t>(r)];
      }
      break;
    case Kind::kIndirect:
      for (int r = 0; r < np_; ++r) {
        counts_[static_cast<std::size_t>(r)] =
            rank_globals_[static_cast<std::size_t>(r)].size();
      }
      break;
  }
}

int Distribution::owner(std::size_t i) const {
  HPFCG_REQUIRE(i < n_, "owner: index out of range");
  switch (kind_) {
    case Kind::kBlock:
    case Kind::kBlockK:
      return static_cast<int>(i / k_);
    case Kind::kCyclic:
      return static_cast<int>(i % static_cast<std::size_t>(np_));
    case Kind::kCyclicK:
      return static_cast<int>((i / k_) % static_cast<std::size_t>(np_));
    case Kind::kCuts: {
      const auto it = std::upper_bound(cuts_.begin() + 1, cuts_.end(), i);
      return static_cast<int>(it - cuts_.begin()) - 1;
    }
    case Kind::kIndirect:
      return owner_map_[i];
  }
  return 0;
}

std::size_t Distribution::local_index(std::size_t i) const {
  HPFCG_REQUIRE(i < n_, "local_index: index out of range");
  switch (kind_) {
    case Kind::kBlock:
    case Kind::kBlockK:
      return i % k_;
    case Kind::kCyclic:
      return i / static_cast<std::size_t>(np_);
    case Kind::kCyclicK: {
      const std::size_t b = i / k_;                        // global block
      const std::size_t lb = b / static_cast<std::size_t>(np_);  // local block
      return lb * k_ + i % k_;
    }
    case Kind::kCuts:
      return i - cuts_[static_cast<std::size_t>(owner(i))];
    case Kind::kIndirect:
      return local_map_[i];
  }
  return 0;
}

std::size_t Distribution::local_count(int r) const {
  HPFCG_REQUIRE(r >= 0 && r < np_, "local_count: rank out of range");
  return counts_[static_cast<std::size_t>(r)];
}

std::size_t Distribution::global_index(int r, std::size_t li) const {
  HPFCG_REQUIRE(r >= 0 && r < np_, "global_index: rank out of range");
  HPFCG_REQUIRE(li < local_count(r), "global_index: local index out of range");
  const auto ur = static_cast<std::size_t>(r);
  switch (kind_) {
    case Kind::kBlock:
    case Kind::kBlockK:
      return ur * k_ + li;
    case Kind::kCyclic:
      return li * static_cast<std::size_t>(np_) + ur;
    case Kind::kCyclicK: {
      const std::size_t lb = li / k_;
      const std::size_t b = lb * static_cast<std::size_t>(np_) + ur;
      return b * k_ + li % k_;
    }
    case Kind::kCuts:
      return cuts_[ur] + li;
    case Kind::kIndirect:
      return rank_globals_[ur][li];
  }
  return 0;
}

bool Distribution::contiguous() const {
  return kind_ == Kind::kBlock || kind_ == Kind::kBlockK ||
         kind_ == Kind::kCuts || np_ == 1;
}

std::pair<std::size_t, std::size_t> Distribution::local_range(int r) const {
  HPFCG_REQUIRE(contiguous(), "local_range: distribution is not contiguous");
  HPFCG_REQUIRE(r >= 0 && r < np_, "local_range: rank out of range");
  const auto ur = static_cast<std::size_t>(r);
  if (kind_ == Kind::kCuts) return {cuts_[ur], cuts_[ur + 1]};
  if (np_ == 1) return {0, n_};
  const std::size_t lo = std::min(n_, mul_sat(ur, k_));
  const std::size_t hi = std::min(n_, mul_sat(ur + 1, k_));
  return {lo, hi};
}

const std::vector<std::size_t>& Distribution::cuts() const {
  HPFCG_REQUIRE(kind_ == Kind::kCuts,
                "cuts() only applies to cut-point distributions");
  return cuts_;
}

std::string Distribution::name() const {
  switch (kind_) {
    case Kind::kBlock:
      return "BLOCK";
    case Kind::kBlockK:
      return "BLOCK(" + std::to_string(k_) + ")";
    case Kind::kCyclic:
      return "CYCLIC";
    case Kind::kCyclicK:
      return "CYCLIC(" + std::to_string(k_) + ")";
    case Kind::kCuts:
      return "CUTS";
    case Kind::kIndirect:
      return "INDIRECT";
  }
  return "?";
}

bool Distribution::operator==(const Distribution& o) const {
  if (n_ != o.n_ || np_ != o.np_) return false;
  for (std::size_t i = 0; i < n_; ++i) {
    if (owner(i) != o.owner(i) || local_index(i) != o.local_index(i)) {
      return false;
    }
  }
  return true;
}

}  // namespace hpfcg::hpf
