#include "hpfcg/hpf/directives.hpp"

#include "hpfcg/util/error.hpp"
#include "hpfcg/util/str.hpp"

namespace hpfcg::hpf {

namespace {

/// Split "NAME(arg)" into name and optional positive integer arg.
struct Spec {
  std::string name;
  bool has_arg = false;
  std::size_t arg = 0;
};

Spec parse_spec(const std::string& raw) {
  const std::string s = util::trim(raw);
  HPFCG_REQUIRE(!s.empty(), "distribution spec is empty");
  Spec out;
  const auto open = s.find('(');
  if (open == std::string::npos) {
    out.name = util::to_lower(util::trim(s));
    return out;
  }
  HPFCG_REQUIRE(s.back() == ')',
                "distribution spec '" + raw + "' is missing ')'");
  out.name = util::to_lower(util::trim(s.substr(0, open)));
  const std::string arg_text =
      util::trim(s.substr(open + 1, s.size() - open - 2));
  HPFCG_REQUIRE(!arg_text.empty(),
                "distribution spec '" + raw + "' has an empty argument");
  for (const char c : arg_text) {
    HPFCG_REQUIRE(c >= '0' && c <= '9',
                  "distribution spec '" + raw +
                      "' needs a positive integer argument");
  }
  out.has_arg = true;
  out.arg = static_cast<std::size_t>(std::stoull(arg_text));
  HPFCG_REQUIRE(out.arg >= 1, "distribution spec '" + raw +
                                  "' needs a positive block size");
  return out;
}

}  // namespace

Distribution parse_distribution_spec(const std::string& spec, std::size_t n,
                                     int np) {
  const Spec s = parse_spec(spec);
  if (s.name == "block") {
    return s.has_arg ? Distribution::block_size(n, np, s.arg)
                     : Distribution::block(n, np);
  }
  if (s.name == "cyclic") {
    return s.has_arg ? Distribution::cyclic_size(n, np, s.arg)
                     : Distribution::cyclic(n, np);
  }
  throw util::Error("unknown distribution format '" + spec +
                    "' (expected BLOCK, BLOCK(k), CYCLIC or CYCLIC(k))");
}

bool is_valid_distribution_spec(const std::string& spec) {
  try {
    // Parse against a throwaway shape; BLOCK(k) feasibility depends on
    // (n, np), so validate the grammar only.
    const Spec s = parse_spec(spec);
    return s.name == "block" || s.name == "cyclic";
  } catch (const util::Error&) {
    return false;
  }
}

}  // namespace hpfcg::hpf
