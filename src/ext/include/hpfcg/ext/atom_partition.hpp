#pragma once
// INDIVISABLE atoms and ATOM-based distributions (Section 5.2.1).
//
//   !EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)
//   !EXT$ REDISTRIBUTE row(ATOM: BLOCK)
//
// An *atom* is the chunk of the nnz arrays enclosed by two consecutive
// entries of the compressed pointer array — one row of a CSR matrix, one
// column of a CSC matrix.  An ATOM distribution assigns whole atoms to
// processors so no row/column is ever split across a cut.  As the paper
// prescribes, the result is represented by "a small array in the size of
// the number of processors [that] keeps the cut-off points": our cut-point
// Distribution.

#include <cstddef>
#include <memory>
#include <vector>

#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::ext {

/// The pair of distributions an atom partition induces: one over the atoms
/// (rows/columns — the alignment target of the vectors) and one over the
/// nnz index space (the (a, col/row) arrays).
struct AtomPartition {
  hpf::DistPtr atom_dist;  ///< over [0, n_atoms)
  hpf::DistPtr nnz_dist;   ///< over [0, nnz)
};

/// Derive the nnz cut points from atom cut points through the pointer
/// array: atom cut c maps to nnz cut ptr[c].
inline std::vector<std::size_t> nnz_cuts_from_atom_cuts(
    const std::vector<std::size_t>& ptr,
    const std::vector<std::size_t>& atom_cuts) {
  std::vector<std::size_t> out(atom_cuts.size());
  for (std::size_t r = 0; r < atom_cuts.size(); ++r) {
    HPFCG_REQUIRE(atom_cuts[r] < ptr.size(),
                  "atom cut beyond the pointer array");
    out[r] = ptr[atom_cuts[r]];
  }
  return out;
}

/// ATOM:BLOCK — distribute atoms in equal contiguous blocks (the regular /
/// uniform sparse block distribution of Section 5.2.1, appropriate when
/// every row/column has about the same number of entries).
/// `ptr` is the compressed pointer array (n_atoms+1 entries).
inline AtomPartition atom_block(const std::vector<std::size_t>& ptr, int np) {
  HPFCG_REQUIRE(!ptr.empty(), "atom_block: pointer array required");
  HPFCG_REQUIRE(np >= 1, "atom_block: need at least one processor");
  const std::size_t n_atoms = ptr.size() - 1;
  const std::size_t nnz = ptr.back();
  // Atom cut points replicate HPF BLOCK over the atom index space.
  const auto block = hpf::Distribution::block(n_atoms, np);
  std::vector<std::size_t> atom_cuts(static_cast<std::size_t>(np) + 1);
  for (int r = 0; r < np; ++r) {
    atom_cuts[static_cast<std::size_t>(r)] = block.local_range(r).first;
  }
  atom_cuts.back() = n_atoms;

  AtomPartition part;
  part.nnz_dist = std::make_shared<const hpf::Distribution>(
      hpf::Distribution::from_cuts(nnz,
                                   nnz_cuts_from_atom_cuts(ptr, atom_cuts)));
  part.atom_dist = std::make_shared<const hpf::Distribution>(
      hpf::Distribution::from_cuts(n_atoms, std::move(atom_cuts)));
  return part;
}

/// ATOM:CYCLIC — atoms dealt round-robin.  The nnz space is then owned
/// non-contiguously, expressed as an indirect distribution where nnz entry
/// k belongs to the owner of its enclosing atom.  (Usable with the
/// Distribution layer; the contiguous-storage matvec kernels require the
/// contiguous ATOM:BLOCK form.)
inline AtomPartition atom_cyclic(const std::vector<std::size_t>& ptr, int np) {
  HPFCG_REQUIRE(!ptr.empty(), "atom_cyclic: pointer array required");
  const std::size_t n_atoms = ptr.size() - 1;
  const std::size_t nnz = ptr.back();
  std::vector<int> owner(nnz, 0);
  for (std::size_t atom = 0; atom < n_atoms; ++atom) {
    const int r = static_cast<int>(atom % static_cast<std::size_t>(np));
    for (std::size_t k = ptr[atom]; k < ptr[atom + 1]; ++k) owner[k] = r;
  }
  AtomPartition part;
  part.atom_dist = std::make_shared<const hpf::Distribution>(
      hpf::Distribution::cyclic(n_atoms, np));
  part.nnz_dist = std::make_shared<const hpf::Distribution>(
      hpf::Distribution::indirect(np, std::move(owner)));
  return part;
}

/// Verify the INDIVISABLE invariant: no atom's nnz range crosses an
/// ownership boundary of `nnz_dist`.  Returns the number of split atoms
/// (0 for any ATOM distribution; positive for HPF-1's flat BLOCK).
inline std::size_t count_split_atoms(const std::vector<std::size_t>& ptr,
                                     const hpf::Distribution& nnz_dist) {
  std::size_t split = 0;
  for (std::size_t atom = 0; atom + 1 < ptr.size(); ++atom) {
    if (ptr[atom] == ptr[atom + 1]) continue;  // empty atom cannot split
    const int first_owner = nnz_dist.owner(ptr[atom]);
    for (std::size_t k = ptr[atom] + 1; k < ptr[atom + 1]; ++k) {
      if (nnz_dist.owner(k) != first_owner) {
        ++split;
        break;
      }
    }
  }
  return split;
}

}  // namespace hpfcg::ext
