#pragma once
// Inspector/executor schedules for irregular array accesses.
//
// Section 5.1: "As the array q is accessed through a level of indirection,
// the value of its index (i.e. row(k)) can be known only at run-time.
// Inspector-executor mechanisms [15] which are costly in nature should be
// employed for the determination of the owner" — and the paper cites
// Ponnusamy/Saltz/Choudhary's *communication schedule reuse* as the
// mitigation.  These classes implement exactly that machinery:
//
//   GatherSchedule      result(i) = x(idx(i))        (vector subscript read)
//   ScatterAddSchedule  y(idx(i)) += x(i)            (many-to-one update)
//
// The *inspector* (constructor) exchanges the index lists once; every
// *executor* run (execute()) then moves only values.  Reusing a schedule
// across sweeps amortizes the inspector — the measured subject of
// bench_inspector.

#include <cstddef>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::ext {

/// Schedule for result(i) = x(idx(i)): `idx` is distributed like `result`,
/// x like `src_dist`.  Built collectively; reusable for any x/result with
/// the same distributions and the same index values.
template <class T>
class GatherSchedule {
 public:
  GatherSchedule(msg::Process& proc,
                 const hpf::DistributedVector<std::size_t>& idx,
                 hpf::DistPtr src_dist)
      : proc_(&proc), src_dist_(std::move(src_dist)),
        result_dist_(idx.dist_ptr()) {
    const int np = proc.nprocs();
    const hpf::Distribution& sd = *src_dist_;

    // Inspector: which global x-elements do my result elements need, and
    // where do the fetched values land locally?
    std::vector<std::vector<std::size_t>> requests(
        static_cast<std::size_t>(np));
    placement_.assign(static_cast<std::size_t>(np), {});
    for (std::size_t l = 0; l < idx.local().size(); ++l) {
      const std::size_t g = idx.local()[l];
      HPFCG_REQUIRE(g < sd.size(), "gather: index out of range");
      const auto owner = static_cast<std::size_t>(sd.owner(g));
      requests[owner].push_back(g);
      placement_[owner].push_back(l);
    }
    // One exchange of index lists — the inspector's cost.
    const auto serve_globals = proc.alltoallv<std::size_t>(requests);
    serve_.assign(static_cast<std::size_t>(np), {});
    for (int r = 0; r < np; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      serve_[ur].reserve(serve_globals[ur].size());
      for (const std::size_t g : serve_globals[ur]) {
        serve_[ur].push_back(sd.local_index(g));
      }
    }
  }

  /// Executor: moves values only.  `x` must use the schedule's source
  /// distribution, `result` the index vector's distribution.
  void execute(const hpf::DistributedVector<T>& x,
               hpf::DistributedVector<T>& result) const {
    HPFCG_REQUIRE(x.dist() == *src_dist_,
                  "gather: x distribution differs from the schedule");
    HPFCG_REQUIRE(result.dist() == *result_dist_,
                  "gather: result distribution differs from the schedule");
    msg::Process& proc = *proc_;
    const int np = proc.nprocs();
    std::vector<std::vector<T>> out(static_cast<std::size_t>(np));
    for (int r = 0; r < np; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      out[ur].reserve(serve_[ur].size());
      for (const std::size_t l : serve_[ur]) out[ur].push_back(x.local()[l]);
    }
    const auto in = proc.alltoallv<T>(out);
    for (int r = 0; r < np; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      HPFCG_REQUIRE(in[ur].size() == placement_[ur].size(),
                    "gather: executor stream length mismatch");
      for (std::size_t k = 0; k < in[ur].size(); ++k) {
        result.local()[placement_[ur][k]] = in[ur][k];
      }
    }
  }

 private:
  msg::Process* proc_;
  hpf::DistPtr src_dist_;
  hpf::DistPtr result_dist_;
  /// placement_[r][k]: local result slot of the k-th value from rank r.
  std::vector<std::vector<std::size_t>> placement_;
  /// serve_[r][k]: local x index of the k-th value rank r asked us for.
  std::vector<std::vector<std::size_t>> serve_;
};

/// Schedule for y(idx(i)) += x(i): the many-to-one accumulation of the
/// paper's Scenario 2 inner loop, as a first-class schedule.  `idx` and
/// `x` share a distribution; `y` uses `target_dist`.  Contributions to the
/// same element (from any rank) sum.
template <class T>
class ScatterAddSchedule {
 public:
  ScatterAddSchedule(msg::Process& proc,
                     const hpf::DistributedVector<std::size_t>& idx,
                     hpf::DistPtr target_dist)
      : proc_(&proc), src_dist_(idx.dist_ptr()),
        target_dist_(std::move(target_dist)) {
    const int np = proc.nprocs();
    const hpf::Distribution& td = *target_dist_;

    // Inspector: route each local contribution to its target's owner.
    pick_.assign(static_cast<std::size_t>(np), {});
    std::vector<std::vector<std::size_t>> targets(
        static_cast<std::size_t>(np));
    for (std::size_t l = 0; l < idx.local().size(); ++l) {
      const std::size_t g = idx.local()[l];
      HPFCG_REQUIRE(g < td.size(), "scatter_add: index out of range");
      const auto owner = static_cast<std::size_t>(td.owner(g));
      pick_[owner].push_back(l);
      targets[owner].push_back(g);
    }
    const auto incoming = proc.alltoallv<std::size_t>(targets);
    apply_.assign(static_cast<std::size_t>(np), {});
    for (int r = 0; r < np; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      apply_[ur].reserve(incoming[ur].size());
      for (const std::size_t g : incoming[ur]) {
        apply_[ur].push_back(td.local_index(g));
      }
    }
  }

  /// Executor: y(idx(i)) += x(i) for every i, across all ranks.
  void execute(const hpf::DistributedVector<T>& x,
               hpf::DistributedVector<T>& y) const {
    HPFCG_REQUIRE(x.dist() == *src_dist_,
                  "scatter_add: x distribution differs from the schedule");
    HPFCG_REQUIRE(y.dist() == *target_dist_,
                  "scatter_add: y distribution differs from the schedule");
    msg::Process& proc = *proc_;
    const int np = proc.nprocs();
    std::vector<std::vector<T>> out(static_cast<std::size_t>(np));
    for (int r = 0; r < np; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      out[ur].reserve(pick_[ur].size());
      for (const std::size_t l : pick_[ur]) out[ur].push_back(x.local()[l]);
    }
    const auto in = proc.alltoallv<T>(out);
    std::size_t flops = 0;
    for (int r = 0; r < np; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      HPFCG_REQUIRE(in[ur].size() == apply_[ur].size(),
                    "scatter_add: executor stream length mismatch");
      for (std::size_t k = 0; k < in[ur].size(); ++k) {
        y.local()[apply_[ur][k]] += in[ur][k];
      }
      flops += in[ur].size();
    }
    proc.add_flops(flops);
  }

 private:
  msg::Process* proc_;
  hpf::DistPtr src_dist_;
  hpf::DistPtr target_dist_;
  /// pick_[r][k]: local x slot of the k-th contribution sent to rank r.
  std::vector<std::vector<std::size_t>> pick_;
  /// apply_[r][k]: local y slot receiving the k-th contribution from r.
  std::vector<std::vector<std::size_t>> apply_;
};

}  // namespace hpfcg::ext
