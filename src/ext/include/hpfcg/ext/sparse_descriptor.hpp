#pragma once
// The SPARSE_MATRIX descriptor extension (Section 5.2.2).
//
//   !HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
//
// The descriptor tells the compiler (1) which storage scheme the trio uses
// and (2) that the three arrays form one logical object.  Consequences the
// paper derives, which this class implements:
//   * tight binding — "whenever any one's distribution is changed, the
//     other two should be aligned accordingly": redistribute_using()
//     repartitions rows, nnz arrays and the aligned vectors together;
//   * locality rule — accessing row i implies accessing its (col, a)
//     entries, so fetched remote entries may be cached rather than
//     re-communicated every sweep (caching enabled on the wrapped matrix);
//   * partitioner hook — REDISTRIBUTE smA USING <partitioner>.

#include <memory>
#include <utility>

#include "hpfcg/ext/balanced_partition.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/redistribute.hpp"

namespace hpfcg::ext {

/// CSR sparse-matrix descriptor: owns the distributed matrix and the
/// knowledge of how it is partitioned, and keeps the trio's distributions
/// consistent across redistributions.
template <class T>
class SparseMatrixCsr {
 public:
  /// Declare the descriptor over a (replicated) assembled matrix, initially
  /// partitioned by `initial` (default: uniform ATOM:BLOCK — the paper's
  /// "initially distributed using HPF's regular distribution primitives").
  SparseMatrixCsr(msg::Process& proc, sparse::Csr<T> matrix,
                  Partitioner initial = Partitioner::kUniformAtomBlock)
      : proc_(&proc), global_(std::move(matrix)) {
    apply(initial);
  }

  [[nodiscard]] msg::Process& proc() const { return *proc_; }
  [[nodiscard]] const sparse::Csr<T>& global() const { return global_; }
  [[nodiscard]] sparse::DistCsr<T>& dist() { return *dist_; }
  [[nodiscard]] const sparse::DistCsr<T>& dist() const { return *dist_; }
  [[nodiscard]] const hpf::DistPtr& row_dist() const {
    return part_.atom_dist;
  }
  [[nodiscard]] Partitioner active_partitioner() const { return active_; }

  /// !EXT$ REDISTRIBUTE smA USING <which> — move the trio onto the named
  /// partitioner's cut points by migrating whole rows between ranks
  /// (sparse::redistribute), not by re-slicing the replicated matrix: only
  /// rows whose owner changes travel, in one personalized all-to-all.
  /// Stats of the last migration are kept for cost reporting.
  void redistribute_using(Partitioner which) {
    part_ = partition(global_.row_ptr(), proc_->nprocs(), which);
    auto migrated = sparse::redistribute(*dist_, part_.atom_dist->cuts(),
                                         &last_migration_);
    dist_ = std::make_unique<sparse::DistCsr<T>>(std::move(migrated));
    dist_->enable_caching();
    part_.atom_dist = dist_->row_dist_ptr();
    part_.nnz_dist = dist_->nnz_dist_ptr();
    active_ = which;
  }

  /// Send-side stats of the last redistribute_using on this rank.
  [[nodiscard]] const sparse::RedistributeStats& last_migration() const {
    return last_migration_;
  }

  /// Redistribute an aligned vector to follow the descriptor's current row
  /// distribution (the "arranging all dependent vectors" the paper
  /// requires of the compiler).
  [[nodiscard]] hpf::DistributedVector<T> align_vector(
      const hpf::DistributedVector<T>& v) const {
    return hpf::redistribute(v, part_.atom_dist);
  }

  /// Fresh zero vector aligned with the rows.
  [[nodiscard]] hpf::DistributedVector<T> make_vector() const {
    return hpf::DistributedVector<T>(*proc_, part_.atom_dist);
  }

 private:
  void apply(Partitioner which) {
    part_ = partition(global_.row_ptr(), proc_->nprocs(), which);
    dist_ = std::make_unique<sparse::DistCsr<T>>(*proc_, global_,
                                                 part_.atom_dist,
                                                 part_.nnz_dist);
    // The descriptor makes the trio's immutability known to the "compiler",
    // so remote entries (none for atom partitions, some for exotic layouts)
    // are fetched once and cached.
    dist_->enable_caching();
    active_ = which;
  }

  msg::Process* proc_;
  sparse::Csr<T> global_;
  AtomPartition part_;
  std::unique_ptr<sparse::DistCsr<T>> dist_;
  Partitioner active_ = Partitioner::kUniformAtomBlock;
  sparse::RedistributeStats last_migration_{};
};

}  // namespace hpfcg::ext
