#pragma once
// The paper's ON PROCESSOR(f(i)) iteration-mapping extension (Section 5.1).
//
// Owner-computes placement needs the owner of the left-hand side, which for
// indirection arrays (q(row(k))) is only known at run time — normally
// forcing an inspector/executor pass.  ON PROCESSOR sidesteps that: the
// programmer supplies the iteration→processor map f(i) directly, so the
// compiler partitions the loop at compile time "without any runtime
// overhead".  (When the left-hand side is privatized the map is mandatory,
// because a private array has no owner.)

#include <cstddef>
#include <utility>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::ext {

/// Execute iterations i in [0, n) for which owner_of(i) == this rank.
/// `owner_of` must be a pure function; every rank evaluates it over the
/// whole range (exactly the compile-time partitioning of the proposal).
template <class OwnerFn, class Body>
void on_processor(msg::Process& proc, std::size_t n, OwnerFn&& owner_of,
                  Body&& body) {
  const int me = proc.rank();
  const int np = proc.nprocs();
  for (std::size_t i = 0; i < n; ++i) {
    const int owner = owner_of(i);
    HPFCG_REQUIRE(owner >= 0 && owner < np,
                  "on_processor: iteration mapped outside the machine");
    if (owner == me) body(i);
  }
}

/// The paper's example map `ON PROCESSOR(j/np)` — actually j divided by the
/// block length, i.e. a block map over the iteration space.
struct BlockMap {
  std::size_t n;
  int np;
  int operator()(std::size_t i) const {
    const std::size_t block =
        (n + static_cast<std::size_t>(np) - 1) / static_cast<std::size_t>(np);
    return static_cast<int>(i / block);
  }
};

/// Round-robin iteration map.
struct CyclicMap {
  int np;
  int operator()(std::size_t i) const {
    return static_cast<int>(i % static_cast<std::size_t>(np));
  }
};

}  // namespace hpfcg::ext
