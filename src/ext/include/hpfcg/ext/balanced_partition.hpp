#pragma once
// Load-balancing sparse partitioners (Section 5.2.2).
//
//   !EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
//
// For irregular sparsity ("some grid points may have many neighbours,
// while others have very few") equal-atom-count distributions leave some
// processors with far more nonzeros — and therefore more multiply-adds per
// matvec — than others.  These partitioners choose contiguous atom cut
// points that balance the per-processor nonzero counts instead:
//
//   * greedy_nnz_cuts    — the fast heuristic: sweep atoms, start a new
//     part when the running part reaches total/NP;
//   * optimal_nnz_cuts   — exact contiguous bottleneck partition via
//     parametric search (binary search on the bottleneck value, greedy
//     feasibility check): minimizes max per-processor nnz.

#include <cstddef>
#include <vector>

#include "hpfcg/ext/atom_partition.hpp"
#include "hpfcg/hpf/distribution.hpp"

namespace hpfcg::ext {

/// Per-atom weights (nnz per row/column) from a compressed pointer array.
std::vector<std::size_t> atom_weights(const std::vector<std::size_t>& ptr);

/// Greedy contiguous partition of `weights` into np parts: close a part as
/// soon as it reaches the ideal average.  Returns np+1 cut points over the
/// atom index space.
std::vector<std::size_t> greedy_nnz_cuts(const std::vector<std::size_t>& weights,
                                         int np);

/// Optimal contiguous bottleneck partition: cut points minimizing the
/// maximum part weight (ties broken toward earlier cuts).  O(n log sum).
std::vector<std::size_t> optimal_nnz_cuts(
    const std::vector<std::size_t>& weights, int np);

/// Maximum part weight under the given atom cut points.
std::size_t bottleneck(const std::vector<std::size_t>& weights,
                       const std::vector<std::size_t>& cuts);

/// Which partitioner a REDISTRIBUTE ... USING clause names.
enum class Partitioner {
  kUniformAtomBlock,   ///< ATOM:BLOCK — equal atom counts (Section 5.2.1)
  kBalancedGreedy,     ///< CG_BALANCED_PARTITIONER_1, heuristic
  kBalancedOptimal,    ///< exact bottleneck-optimal contiguous partition
};

/// Build the (atom_dist, nnz_dist) pair a partitioner produces for the
/// matrix described by the compressed pointer array `ptr`.
AtomPartition partition(const std::vector<std::size_t>& ptr, int np,
                        Partitioner which);

/// Partitioner name for benchmark tables.
const char* partitioner_name(Partitioner which);

}  // namespace hpfcg::ext
