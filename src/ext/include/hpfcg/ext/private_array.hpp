#pragma once
// The paper's PRIVATE abstraction (Section 5.1, Figure 5).
//
//   !EXT$ ITERATION j ON PROCESSOR(j/np), &
//   !EXT$ PRIVATE(q(n)) WITH MERGE(+), &
//   !EXT$ NEW(pj, k)
//
// A PrivateArray forks a full-length copy of an array on every processor at
// private-region entry.  Unlike HPF's NEW (scoped to one loop iteration), a
// private copy lives until the region ends, at which point it is either
//   * merged into a single global copy with an element-wise reduction
//     (WITH MERGE(+) — merge_into / merge_replicated), or
//   * thrown away (WITH DISCARD — discard()).
// The merge is one log-tree vector all-reduce: the same communication
// volume as Scenario 1's broadcast, which is the paper's headline claim for
// why this extension makes column-wise CG competitive.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/check/harness.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::ext {

/// How a private region ends.
enum class PrivateEnd { kPending, kMerged, kDiscarded };

/// Per-processor private full-length array with MERGE/DISCARD semantics.
template <class T>
class PrivateArray {
 public:
  /// Fork a private copy of length n on every rank, initialized to `init`
  /// (the additive identity for MERGE(+)).  With race detection on, the
  /// region is registered with the machine's detector (every rank
  /// constructs its regions in the same SPMD order, so the per-rank
  /// ordinal is the machine-wide region identity).
  PrivateArray(msg::Process& proc, std::size_t n, T init = T{})
      : proc_(&proc), data_(n, init) {
    if (race::Detector* d = proc.runtime().racer(); d != nullptr &&
                                                    d->detecting()) {
      region_ = d->register_region(proc.rank(), race::RegionKind::kPrivate,
                                   "private[" + std::to_string(n) + "]");
      tracked_ = true;
    }
  }

  PrivateArray(const PrivateArray&) = delete;
  PrivateArray& operator=(const PrivateArray&) = delete;
  PrivateArray(PrivateArray&& o) noexcept
      : proc_(o.proc_),
        data_(std::move(o.data_)),
        ended_(o.ended_),
        region_(o.region_),
        tracked_(o.tracked_),
        dirty_(o.dirty_) {
    o.ended_ = PrivateEnd::kDiscarded;  // moved-from shell owes no merge
    o.tracked_ = false;
  }

  /// Leak audit (checking only): a region that reaches end of scope still
  /// pending was neither merged nor discarded — its per-processor updates
  /// silently never published (the Scenario-2 race the paper's MERGE
  /// discipline exists to prevent).  Destructors cannot throw, so this is
  /// reported to the harness and surfaced by the runtime's teardown audit.
  ~PrivateArray() {
    if (check::kCompiled && check::enabled() &&
        ended_ == PrivateEnd::kPending) {
      if (auto* h = proc_->runtime().checker()) {
        h->report_violation(
            "rank " + std::to_string(proc_->rank()) +
            " leaked a private region (length " + std::to_string(size()) +
            ") that was never merged or discarded — its updates were "
            "never published");
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::span<T> local() {
    trap_write_after_end();
    dirty_ = true;  // dirty bit, not a detector call: the hot path stays hot
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const T> local() const {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    trap_write_after_end();
    dirty_ = true;
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] PrivateEnd ended() const { return ended_; }

  /// WITH MERGE(op): combine all ranks' copies element-wise and write the
  /// result into a distributed vector (each rank keeps its owned block).
  template <class Op = std::plus<T>>
  void merge_into(hpf::DistributedVector<T>& target, Op op = {}) {
    HPFCG_REQUIRE(ended_ == PrivateEnd::kPending,
                  "private region already ended");
    HPFCG_REQUIRE(target.size() == data_.size(),
                  "merge_into: length mismatch");
    race_note_writes();
    proc_->allreduce_vec(data_, op);
    race_note_publish();
    auto tl = target.local();
    for (std::size_t l = 0; l < tl.size(); ++l) {
      tl[l] = data_[target.global_of(l)];
    }
    ended_ = PrivateEnd::kMerged;
  }

  /// WITH MERGE(op), replicated result: every rank receives the full merged
  /// array.
  template <class Op = std::plus<T>>
  std::vector<T> merge_replicated(Op op = {}) {
    HPFCG_REQUIRE(ended_ == PrivateEnd::kPending,
                  "private region already ended");
    race_note_writes();
    proc_->allreduce_vec(data_, op);
    race_note_publish();
    ended_ = PrivateEnd::kMerged;
    return data_;
  }

  /// WITH DISCARD: end the region without any communication.
  void discard() {
    HPFCG_REQUIRE(ended_ == PrivateEnd::kPending,
                  "private region already ended");
    ended_ = PrivateEnd::kDiscarded;
  }

 private:
  /// Checking only: a mutable access after MERGE/DISCARD can never publish
  /// (the merge already happened) — trap it instead of losing the update.
  void trap_write_after_end() const {
    if (check::kCompiled && check::enabled() &&
        ended_ != PrivateEnd::kPending) {
      throw util::Error(
          "hpfcg::check: merge-before-publish violation: rank " +
          std::to_string(proc_->rank()) +
          " wrote to a private array after its region ended (" +
          (ended_ == PrivateEnd::kMerged ? "merged" : "discarded") +
          ") — the update can never be published");
    }
  }

  /// Race detection: record the region's accumulated writes (one call at
  /// merge time — the current clock dominates every program-order write the
  /// dirty bit stands for) and, after the merge collective, verify the
  /// publish dominated every other rank's write.
  void race_note_writes() {
    if (!tracked_ || !dirty_) return;
    if (race::Detector* d = proc_->runtime().racer()) {
      d->on_region_write(proc_->rank(), region_);
    }
  }
  void race_note_publish() {
    if (!tracked_) return;
    if (race::Detector* d = proc_->runtime().racer()) {
      d->on_region_publish(proc_->rank(), region_);
    }
  }

  msg::Process* proc_;
  std::vector<T> data_;
  PrivateEnd ended_ = PrivateEnd::kPending;
  std::uint64_t region_ = 0;
  bool tracked_ = false;
  bool dirty_ = false;
};

}  // namespace hpfcg::ext
