#include "hpfcg/ext/balanced_partition.hpp"

#include <algorithm>
#include <numeric>

#include "hpfcg/util/error.hpp"

namespace hpfcg::ext {

std::vector<std::size_t> atom_weights(const std::vector<std::size_t>& ptr) {
  HPFCG_REQUIRE(!ptr.empty(), "atom_weights: pointer array required");
  std::vector<std::size_t> w(ptr.size() - 1);
  for (std::size_t i = 0; i + 1 < ptr.size(); ++i) {
    HPFCG_REQUIRE(ptr[i] <= ptr[i + 1],
                  "atom_weights: pointer array must be nondecreasing");
    w[i] = ptr[i + 1] - ptr[i];
  }
  return w;
}

std::vector<std::size_t> greedy_nnz_cuts(
    const std::vector<std::size_t>& weights, int np) {
  HPFCG_REQUIRE(np >= 1, "greedy_nnz_cuts: need at least one part");
  const std::size_t n = weights.size();
  const std::size_t total =
      std::accumulate(weights.begin(), weights.end(), std::size_t{0});
  std::vector<std::size_t> cuts;
  cuts.reserve(static_cast<std::size_t>(np) + 1);
  cuts.push_back(0);
  std::size_t acc = 0;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n && static_cast<int>(cuts.size()) <= np - 1;
       ++i) {
    acc += weights[i];
    // Ideal average over the REMAINING parts, so late imbalance cannot
    // starve the last processor.
    const int parts_left = np - static_cast<int>(cuts.size()) + 1;
    const std::size_t target =
        (total - assigned + static_cast<std::size_t>(parts_left) - 1) /
        static_cast<std::size_t>(parts_left);
    // target == 0 means all remaining weight (including acc) is zero: every
    // empty row would otherwise satisfy `acc >= target` and burn one cut
    // each, fragmenting an empty-row tail across processors.
    if (target > 0 && acc >= target) {
      cuts.push_back(i + 1);
      assigned += acc;
      acc = 0;
    }
  }
  while (static_cast<int>(cuts.size()) <= np) cuts.push_back(n);
  return cuts;
}

namespace {

/// Can `weights` be covered by at most np contiguous parts of weight <= cap?
bool feasible(const std::vector<std::size_t>& weights, int np,
              std::size_t cap) {
  int parts = 1;
  std::size_t acc = 0;
  for (const std::size_t w : weights) {
    if (w > cap) return false;
    if (acc + w > cap) {
      ++parts;
      if (parts > np) return false;
      acc = w;
    } else {
      acc += w;
    }
  }
  return true;
}

}  // namespace

std::vector<std::size_t> optimal_nnz_cuts(
    const std::vector<std::size_t>& weights, int np) {
  HPFCG_REQUIRE(np >= 1, "optimal_nnz_cuts: need at least one part");
  const std::size_t n = weights.size();
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (const std::size_t w : weights) {
    lo = std::max(lo, w);
    hi += w;
  }
  // Smallest cap for which a <=np-part cover exists.
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible(weights, np, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::size_t cap = lo;

  // Emit greedy cuts under the optimal cap.
  std::vector<std::size_t> cuts;
  cuts.reserve(static_cast<std::size_t>(np) + 1);
  cuts.push_back(0);
  std::size_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (acc + weights[i] > cap &&
        static_cast<int>(cuts.size()) <= np - 1) {
      cuts.push_back(i);
      acc = 0;
    }
    acc += weights[i];
  }
  while (static_cast<int>(cuts.size()) <= np) cuts.push_back(n);
  return cuts;
}

std::size_t bottleneck(const std::vector<std::size_t>& weights,
                       const std::vector<std::size_t>& cuts) {
  HPFCG_REQUIRE(cuts.size() >= 2 && cuts.front() == 0 &&
                    cuts.back() == weights.size(),
                "bottleneck: malformed cut points");
  std::size_t worst = 0;
  for (std::size_t r = 0; r + 1 < cuts.size(); ++r) {
    std::size_t acc = 0;
    for (std::size_t i = cuts[r]; i < cuts[r + 1]; ++i) acc += weights[i];
    worst = std::max(worst, acc);
  }
  return worst;
}

AtomPartition partition(const std::vector<std::size_t>& ptr, int np,
                        Partitioner which) {
  if (which == Partitioner::kUniformAtomBlock) return atom_block(ptr, np);

  const auto weights = atom_weights(ptr);
  const auto atom_cuts = which == Partitioner::kBalancedGreedy
                             ? greedy_nnz_cuts(weights, np)
                             : optimal_nnz_cuts(weights, np);
  AtomPartition part;
  part.atom_dist = std::make_shared<const hpf::Distribution>(
      hpf::Distribution::from_cuts(weights.size(), atom_cuts));
  part.nnz_dist = std::make_shared<const hpf::Distribution>(
      hpf::Distribution::from_cuts(ptr.back(),
                                   nnz_cuts_from_atom_cuts(ptr, atom_cuts)));
  return part;
}

const char* partitioner_name(Partitioner which) {
  switch (which) {
    case Partitioner::kUniformAtomBlock:
      return "ATOM:BLOCK (uniform)";
    case Partitioner::kBalancedGreedy:
      return "CG_BALANCED_PARTITIONER_1 (greedy)";
    case Partitioner::kBalancedOptimal:
      return "bottleneck-optimal";
  }
  return "?";
}

}  // namespace hpfcg::ext
