#pragma once
// Per-process instrumentation counters.
//
// Every process accumulates what it actually did — messages, bytes, flops,
// collective calls — plus a modeled clock split into communication and
// computation.  Tests assert on the exact counts (they are deterministic);
// benchmarks print the modeled times next to the paper's closed-form
// predictions.

#include <cstddef>
#include <cstdint>

namespace hpfcg::msg {

/// Counters for one simulated processor.  Not thread-safe by design: each
/// process mutates only its own Stats.
struct Stats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t flops = 0;
  std::uint64_t barriers = 0;
  std::uint64_t collectives = 0;  ///< broadcast/reduce/allreduce/gather/...
  /// Reduction-class collectives entered (reduce, allreduce, allreduce_vec,
  /// reduce_batch, allreduce_batch).  A scalar allreduce counts once; a
  /// batch of k scalars also counts once — this is the "allreduces per
  /// iteration" currency of the communication-avoiding solver benchmarks.
  std::uint64_t reductions = 0;
  /// Scalar values merged by those reductions (k per batch), so the
  /// batching factor reduction_values / reductions is visible.
  std::uint64_t reduction_values = 0;
  /// Reductions routed through the reproducible mode (hpfcg::repro): exact
  /// superaccumulator merges instead of float adds, and the values they
  /// carried.  Zero whenever the mode is off — the opt-in costs nothing
  /// until enabled, and the A/B benches assert exactly that.
  std::uint64_t repro_reductions = 0;
  std::uint64_t repro_values = 0;

  /// Halo-executor traffic (sparse::HaloPlan): point-to-point messages and
  /// payload bytes this rank *sent* through a cached ghost-exchange plan,
  /// and ghost entries materialized at plan build.  The halo/gather
  /// comparison benches difference these against `gather_bytes` — the
  /// foreign bytes a full `to_global()` gather delivered to this rank — so
  /// the O(boundary) vs O(n) claim is measured in one currency.
  std::uint64_t halo_msgs = 0;
  std::uint64_t halo_bytes = 0;
  std::uint64_t ghost_entries = 0;
  std::uint64_t gather_bytes = 0;
  /// Matvecs that wanted the halo executor but fell back to the O(n)
  /// gather because the row distribution is not contiguous — the perf
  /// cliff the one-shot runtime warning points at.
  std::uint64_t halo_fallbacks = 0;

  /// Multigrid preconditioner work (solvers::MgPreconditioner): V-cycle
  /// applications and Gauss–Seidel half-sweeps summed over every level —
  /// the "smoother sweeps per preconditioner apply" currency of the
  /// bench_hpcg tables (a V(1,1) cycle over L levels runs 4(L-1) + 2·coarse
  /// half-sweeps).
  std::uint64_t mg_vcycles = 0;
  std::uint64_t mg_level_sweeps = 0;

  /// Envelope storage path per message sent: inline (≤64 B payload),
  /// drawn from the destination mailbox's buffer pool, or the tracked
  /// heap fallback when the bounded pool is exhausted (or pooling is
  /// toggled off).  These diagnose the allocation machinery, so unlike
  /// every other counter they legitimately move with the mailbox
  /// fast-path toggles; message semantics and modeled costs do not.
  /// The pooled/heap split additionally depends on thread scheduling
  /// (whether a recycle beat the next draw back to the pool) — only
  /// `envelopes_pooled + envelopes_heap` is deterministic per workload.
  std::uint64_t envelopes_inline = 0;
  std::uint64_t envelopes_pooled = 0;
  std::uint64_t envelopes_heap = 0;

  double modeled_comm_seconds = 0.0;
  double modeled_compute_seconds = 0.0;
  /// Idle time spent waiting on serialized predecessors (Process::sequential
  /// token chains).  This is how the model exposes loops that "can not be
  /// performed in parallel" (the paper's Scenario 2).
  double modeled_wait_seconds = 0.0;

  [[nodiscard]] double modeled_seconds() const {
    return modeled_comm_seconds + modeled_compute_seconds +
           modeled_wait_seconds;
  }

  /// Element-wise sum, used to aggregate across ranks.
  Stats& operator+=(const Stats& o) {
    messages_sent += o.messages_sent;
    messages_received += o.messages_received;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    flops += o.flops;
    barriers += o.barriers;
    collectives += o.collectives;
    reductions += o.reductions;
    reduction_values += o.reduction_values;
    repro_reductions += o.repro_reductions;
    repro_values += o.repro_values;
    halo_msgs += o.halo_msgs;
    halo_bytes += o.halo_bytes;
    ghost_entries += o.ghost_entries;
    gather_bytes += o.gather_bytes;
    halo_fallbacks += o.halo_fallbacks;
    mg_vcycles += o.mg_vcycles;
    mg_level_sweeps += o.mg_level_sweeps;
    envelopes_inline += o.envelopes_inline;
    envelopes_pooled += o.envelopes_pooled;
    envelopes_heap += o.envelopes_heap;
    modeled_comm_seconds += o.modeled_comm_seconds;
    modeled_compute_seconds += o.modeled_compute_seconds;
    modeled_wait_seconds += o.modeled_wait_seconds;
    return *this;
  }

  void reset() { *this = Stats{}; }
};

}  // namespace hpfcg::msg
