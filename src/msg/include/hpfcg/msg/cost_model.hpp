#pragma once
// Communication cost model.
//
// The paper's evaluation (Sections 4-5) is analytical: it expresses the cost
// of each CG building block in terms of a message start-up latency
// `t_startup`, a per-byte transfer time `t_comm`, the processor count N_P
// and the vector length n — e.g. the all-to-all broadcast of n/N_P-element
// vectors on a hypercube costs `t_startup * log N_P + t_comm * n/N_P` per
// step.  We reproduce those numbers by modelling each message the runtime
// actually sends: cost = t_startup + hops * t_hop + bytes * t_comm, where
// `hops` depends on the interconnect topology.  Flops are modelled at
// `t_flop` each so compute/communication ratios are visible.
//
// Defaults are representative of 1995-era message-passing machines (the
// paper's context): start-up latency dominates per-byte cost by ~3 orders
// of magnitude, and a flop is ~4 orders cheaper than a start-up.

#include <cstddef>
#include <cstdint>
#include <string>

namespace hpfcg::msg {

/// Machine parameters of the analytical model (seconds).
struct CostParams {
  double t_startup = 50e-6;  ///< per-message start-up latency (t_s)
  double t_comm = 10e-9;     ///< per-byte transfer time (t_c)
  double t_hop = 0.5e-6;     ///< per-hop routing delay (cut-through)
  double t_flop = 5e-9;      ///< time per floating-point operation
};

/// Interconnect shapes the model can account hops for.
enum class Topology {
  kHypercube,       ///< hops = popcount(src ^ dst)
  kRing,            ///< hops = min cyclic distance
  kMesh2D,          ///< hops = Manhattan distance on a near-square grid
  kFullyConnected,  ///< hops = 1 (crossbar / idealized network)
};

/// Human-readable topology name for benchmark tables.
std::string topology_name(Topology t);

/// Pure cost calculator: answers "what does this message / collective cost"
/// under the configured parameters and topology.  Stateless apart from the
/// configuration so it can be shared by all processes.
class CostModel {
 public:
  CostModel() = default;
  CostModel(CostParams params, Topology topo, int nprocs);

  [[nodiscard]] const CostParams& params() const { return params_; }
  [[nodiscard]] Topology topology() const { return topo_; }
  [[nodiscard]] int nprocs() const { return nprocs_; }

  /// Network hops between two ranks under the active topology.
  [[nodiscard]] int hops(int src, int dst) const;

  /// Modeled time for one point-to-point message of `bytes` payload.
  [[nodiscard]] double message_time(int src, int dst,
                                    std::size_t bytes) const;

  /// Modeled time for `flops` floating-point operations.
  [[nodiscard]] double compute_time(std::uint64_t flops) const {
    return static_cast<double>(flops) * params_.t_flop;
  }

  // ---- Closed-form collective estimates (the paper's formulas) ----------
  // These are *predictions* used to validate the instrumented runtime: the
  // benches print model-vs-measured so the reproduction of the paper's
  // cost analysis is explicit.

  /// Binomial-tree broadcast of `bytes` to all ranks:
  ///   ceil(log2 P) * (t_s + bytes * t_c)  (+ hop terms folded into t_s).
  [[nodiscard]] double broadcast_time(std::size_t bytes) const;

  /// Reduction of `bytes` to one rank (same tree as broadcast).
  [[nodiscard]] double reduce_time(std::size_t bytes) const;

  /// All-reduce = reduce + broadcast.
  [[nodiscard]] double allreduce_time(std::size_t bytes) const;

  /// Fused all-reduce of k scalars of `elem_bytes` each: the k values share
  /// every hop's start-up, so the tree is walked once —
  ///   2 * ceil(log2 P) * (t_s + t_hop + k*elem*t_c)
  /// versus k * allreduce_time(elem) for k sequential scalar merges.
  [[nodiscard]] double allreduce_batch_time(std::size_t k,
                                            std::size_t elem_bytes) const;

  /// Modeled start-up time recovered per call by fusing k scalar
  /// all-reduces into one batch: (k-1) * 2 * ceil(log2 P) * t_s.  This is
  /// the paper's `t_startup · log N_P` term paid (k-1) fewer times.
  [[nodiscard]] double batch_startup_savings(std::size_t k) const;

  /// Ring all-gather where every rank contributes `bytes_per_rank`:
  ///   (P-1) * (t_s + bytes_per_rank * t_c)
  /// This is the paper's "all-to-all broadcast of the local vector
  /// elements"; on a hypercube the start-up term drops to t_s * log P with
  /// recursive doubling, which the model reports for that topology.
  [[nodiscard]] double allgather_time(std::size_t bytes_per_rank) const;

  /// Barrier modeled as a zero-byte all-reduce.
  [[nodiscard]] double barrier_time() const;

  /// One cached halo exchange: `neighbors` point-to-point messages carrying
  /// `bytes` of boundary payload in total —
  ///   neighbors * (t_s + t_hop) + bytes * t_c.
  /// Compare against allgather_time(n/P * elem): the inspector/executor
  /// replaces the O(n) per-rank gather with an O(boundary) exchange, so the
  /// byte term shrinks from ~n*elem to the ghost-set size and the start-up
  /// term from P-1 to the neighbor count.
  [[nodiscard]] double halo_exchange_time(std::size_t neighbors,
                                          std::size_t bytes) const;

  /// Reproducible all-reduce of k values (hpfcg::repro): the batch tree
  /// walked once with `acc_bytes`-wide exact-accumulator payloads, plus the
  /// integer limb merge at every reduce level —
  ///   allreduce_batch_time(k, acc_bytes) + ceil(log2 P)*k*merge_flops*t_f.
  /// Compared against allreduce_batch_time(k, elem) this prices the mode's
  /// overhead: wider payloads (the byte term) and the limb adds (the flop
  /// term), while the start-up count — the dominant term — is unchanged.
  [[nodiscard]] double repro_allreduce_time(std::size_t k,
                                            std::size_t acc_bytes,
                                            std::size_t merge_flops) const;

 private:
  [[nodiscard]] int log2_ceil_procs() const;

  CostParams params_{};
  Topology topo_ = Topology::kHypercube;
  int nprocs_ = 1;
  int mesh_cols_ = 1;  // derived for kMesh2D
};

}  // namespace hpfcg::msg
