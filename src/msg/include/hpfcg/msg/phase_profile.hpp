#pragma once
// Per-phase cost attribution.
//
// Attributes a rank's Stats deltas to named phases ("broadcast", "local
// matvec", "dot merge", ...), so benchmarks can print the per-iteration
// decomposition the paper describes qualitatively ("a single matrix-vector
// multiplication, two inner products, and several SAXPY operations").

#include <map>
#include <string>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/msg/stats.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::msg {

/// Accumulates Stats deltas per phase name for one rank.  Use enter() to
/// switch phases; deltas between switches accrue to the active phase.
class PhaseProfile {
 public:
  explicit PhaseProfile(Process& proc)
      : proc_(&proc), mark_(proc.stats()) {}

  /// Close the active phase (if any) and open `name`.
  void enter(const std::string& name) {
    flush();
    active_ = name;
  }

  /// Close the active phase.
  void exit() {
    flush();
    active_.clear();
  }

  /// Accumulated deltas per phase (valid after exit()/enter()).
  [[nodiscard]] const std::map<std::string, Stats>& phases() const {
    return phases_;
  }

  /// Stats accrued to one phase (zeros if never entered).
  [[nodiscard]] Stats of(const std::string& name) const {
    const auto it = phases_.find(name);
    return it == phases_.end() ? Stats{} : it->second;
  }

 private:
  static Stats delta(const Stats& now, const Stats& then) {
    Stats d;
    d.messages_sent = now.messages_sent - then.messages_sent;
    d.messages_received = now.messages_received - then.messages_received;
    d.bytes_sent = now.bytes_sent - then.bytes_sent;
    d.bytes_received = now.bytes_received - then.bytes_received;
    d.flops = now.flops - then.flops;
    d.barriers = now.barriers - then.barriers;
    d.collectives = now.collectives - then.collectives;
    d.reductions = now.reductions - then.reductions;
    d.reduction_values = now.reduction_values - then.reduction_values;
    d.envelopes_inline = now.envelopes_inline - then.envelopes_inline;
    d.envelopes_pooled = now.envelopes_pooled - then.envelopes_pooled;
    d.envelopes_heap = now.envelopes_heap - then.envelopes_heap;
    d.modeled_comm_seconds =
        now.modeled_comm_seconds - then.modeled_comm_seconds;
    d.modeled_compute_seconds =
        now.modeled_compute_seconds - then.modeled_compute_seconds;
    d.modeled_wait_seconds =
        now.modeled_wait_seconds - then.modeled_wait_seconds;
    return d;
  }

  void flush() {
    const Stats now = proc_->stats();
    if (!active_.empty()) {
      phases_[active_] += delta(now, mark_);
    }
    mark_ = now;
  }

  Process* proc_;
  Stats mark_;
  std::string active_;
  std::map<std::string, Stats> phases_;
};

}  // namespace hpfcg::msg
