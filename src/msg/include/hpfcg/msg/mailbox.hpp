#pragma once
// Per-process incoming message queue.
//
// The "network" of the simulated machine: a send deposits a message into the
// destination's mailbox (buffered, non-blocking, like an eager-protocol MPI
// send); a receive blocks until a matching (source, tag) message arrives.
//
// Matching guarantees (mirroring MPI's non-overtaking rule):
//   * FIFO per (src, tag): two messages from the same source with the same
//     tag are received in the order they were deposited.
//   * Any-source receives match the globally oldest deposited message with
//     the requested tag, regardless of source — so a flood from one rank
//     cannot starve another (arrival-order fairness).
// Both hold for zero-length payloads, which are ordinary messages here.
//
// Fast-path machinery (the start-up latency of the *simulation* itself):
//   * Queues are sharded per source rank, so a directed receive scans only
//     its source's queue and an any-source scan touches the head region of
//     each shard instead of walking one global O(queue) deque.
//   * Payloads of at most kInlineCapacity bytes (any scalar, and every
//     batched-collective header the CG solvers emit) live in a fixed buffer
//     inside the Envelope — they never touch the heap.
//   * Larger payload buffers are recycled through a per-mailbox freelist
//     (make_envelope / recycle), so a steady-state solver loop allocates
//     nothing after warm-up.

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "hpfcg/race/clock.hpp"

namespace hpfcg::race {
class Detector;
}

namespace hpfcg::msg {

/// Wildcard source for receive matching (MPI_ANY_SOURCE analogue).
inline constexpr int kAnySource = -1;

/// Tag-space bit reserved for collective traffic (set by Process::coll_tag).
/// User point-to-point tags must stay below it; the race detector's fence
/// check uses it to skip a collective's own internal messages.
inline constexpr int kCollectiveTagBit = 0x40000000;

/// Runtime toggles for the mailbox fast paths, so benchmarks can A/B the
/// pooled/inline machinery against plain heap allocation in one binary.
/// Both default to on; message semantics, modeled costs, and every Stats
/// counter except the envelope-path diagnostics (envelopes_inline/pooled/
/// heap, which exist precisely to observe these toggles) are bit-identical
/// either way.
void set_buffer_pooling(bool on);
[[nodiscard]] bool buffer_pooling();
void set_inline_payloads(bool on);
[[nodiscard]] bool inline_payloads();

/// Bound on each mailbox's heap-buffer freelist.  Recycled buffers beyond
/// the bound are freed; senders finding the pool empty fall back to a fresh
/// tracked heap buffer (counted in Stats::envelopes_heap) — the fallback
/// never blocks and never grows the pool.  Tests shrink this to force
/// exhaustion; 0 disables pooling entirely.
void set_max_pooled_buffers(std::size_t n);
[[nodiscard]] std::size_t max_pooled_buffers();

/// How an Envelope's payload ended up stored.  Mirrors (and numerically
/// matches) trace::EnvelopePath so spans can carry it as their aux byte.
enum class EnvelopePath : std::uint8_t {
  kInline = 0,  ///< payload fit the in-envelope buffer
  kPooled = 1,  ///< heap buffer drawn from the mailbox freelist
  kHeap = 2,    ///< fresh heap buffer (pool empty/disabled) — tracked in Stats
};

/// One in-flight message.  Small payloads are stored inline; larger ones
/// in a heap buffer that the owning Mailbox recycles through its freelist.
class Envelope {
 public:
  /// Largest payload stored without heap allocation.  64 bytes covers every
  /// scalar, any ValueLoc pair, and a fused batch of up to 8 doubles — the
  /// whole per-iteration scalar traffic of the communication-avoiding CG
  /// variants.
  static constexpr std::size_t kInlineCapacity = 64;

  int src = 0;
  int tag = 0;

  /// Piggybacked vector-clock stamp (hpfcg::race).  Rides the envelope
  /// struct, not the payload: zero-length messages carry clocks for free
  /// and no Stats byte counter ever sees it.  Empty unless race detection
  /// was on at send time.
  race::Stamp race_stamp;

  Envelope() = default;

  /// Set the payload size, choosing inline or heap storage.  Existing
  /// bytes are not preserved (envelopes are filled immediately after).
  void resize_payload(std::size_t bytes);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::byte* data() {
    return stored_inline_ ? inline_.data() : heap_.data();
  }
  [[nodiscard]] const std::byte* data() const {
    return stored_inline_ ? inline_.data() : heap_.data();
  }
  [[nodiscard]] bool stored_inline() const { return stored_inline_; }

  /// Storage path this envelope's payload took (for Stats and trace spans).
  [[nodiscard]] EnvelopePath path() const { return path_; }

  // ---- freelist plumbing (used by Mailbox) ------------------------------
  /// Adopt a recycled heap buffer for a `bytes`-long payload.
  void adopt_heap(std::vector<std::byte>&& buf, std::size_t bytes);
  /// Surrender the heap buffer (empty vector if the payload was inline).
  [[nodiscard]] std::vector<std::byte> release_heap();

 private:
  friend class Mailbox;

  std::size_t size_ = 0;
  bool stored_inline_ = true;
  EnvelopePath path_ = EnvelopePath::kInline;
  std::uint64_t seq = 0;  ///< mailbox arrival stamp (any-source fairness)
  std::array<std::byte, kInlineCapacity> inline_;
  std::vector<std::byte> heap_;
};

/// Thread-safe mailbox with (src, tag) matching and abort support.
///
/// Abort exists so that an exception on one simulated processor does not
/// deadlock the others: the runtime poisons every mailbox and any blocked
/// receive throws.
class Mailbox {
 public:
  /// One queue shard per possible source rank.
  explicit Mailbox(int nprocs);

  /// Build an envelope addressed to this mailbox, drawing any heap payload
  /// buffer from the freelist (called by the sending thread).
  Envelope make_envelope(int src, int tag, std::size_t bytes);

  /// Deposit a message (called by the sending thread).
  void deposit(Envelope env);

  /// Block until a message matching (src-or-any, tag) is available and
  /// return it.  Throws util::Error if the runtime aborted.
  Envelope receive(int src, int tag);

  /// Non-blocking variant: returns true and fills `out` if a match exists.
  bool try_receive(int src, int tag, Envelope& out);

  /// Return a consumed envelope's payload buffer to the freelist (called
  /// by the receiving thread after copying the payload out).
  void recycle(Envelope&& env);

  /// Number of queued messages (for tests / diagnostics).
  std::size_t pending() const;

  /// Heap buffers currently parked in the freelist (for tests).
  std::size_t pooled_buffers() const;

  /// Summary of every queued message, for the hpfcg::check teardown audit.
  struct PendingInfo {
    int src = 0;
    int tag = 0;
    std::size_t bytes = 0;
  };
  std::vector<PendingInfo> pending_info() const;

  /// Poison the mailbox: wake all waiters, make every receive throw.
  void abort();

  /// Attach the machine's race detector (null detaches).  `owner` is the
  /// rank this mailbox belongs to — the receiver whose any-source matches
  /// the detector arbitrates.  Set once at Runtime construction, before
  /// any worker thread runs.
  void set_race(race::Detector* det, int owner);

  /// Stamps of every queued non-collective message, in arrival order — the
  /// input to the detector's fence-order check.  Called by the owning
  /// rank's thread at fence entry.
  [[nodiscard]] std::vector<race::StampedMessage> pending_user_stamps() const;

 private:
  bool match_locked(int src, int tag, Envelope& out);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Shard per source rank, each in deposit order — a directed receive
  /// scans one shard; any-source picks the lowest arrival stamp across
  /// shard-local first matches.
  std::vector<std::deque<Envelope>> shards_;
  std::uint64_t next_seq_ = 0;
  bool aborted_ = false;

  /// Race detector (null when detection and replay are both off).  Guarded
  /// by mu_ only in the sense that it is written before threads start;
  /// match_locked consults it under mu_ (lock order: mailbox -> ledger).
  race::Detector* race_ = nullptr;
  int race_owner_ = 0;

  /// Freelist of heap payload buffers.  Its own mutex: senders draw from it
  /// while the receiver recycles, and neither should contend with matching.
  /// The lock is only ever held for a pointer swap — allocation (adopting or
  /// resizing a buffer) happens outside it, so an exhausted pool can never
  /// stall another sender behind someone else's malloc.
  mutable std::mutex pool_mu_;
  std::vector<std::vector<std::byte>> pool_;
};

}  // namespace hpfcg::msg
