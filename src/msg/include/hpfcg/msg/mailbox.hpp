#pragma once
// Per-process incoming message queue.
//
// The "network" of the simulated machine: a send deposits a message into the
// destination's mailbox (buffered, non-blocking, like an eager-protocol MPI
// send); a receive blocks until a matching (source, tag) message arrives.
// Matching is FIFO per (source, tag) pair, mirroring MPI's non-overtaking
// guarantee.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace hpfcg::msg {

/// Wildcard source for receive matching (MPI_ANY_SOURCE analogue).
inline constexpr int kAnySource = -1;

/// One in-flight message.
struct Envelope {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Thread-safe mailbox with (src, tag) matching and abort support.
///
/// Abort exists so that an exception on one simulated processor does not
/// deadlock the others: the runtime poisons every mailbox and any blocked
/// receive throws.
class Mailbox {
 public:
  /// Deposit a message (called by the sending thread).
  void deposit(Envelope env);

  /// Block until a message matching (src-or-any, tag) is available and
  /// return it.  Throws util::Error if the runtime aborted.
  Envelope receive(int src, int tag);

  /// Non-blocking variant: returns true and fills `out` if a match exists.
  bool try_receive(int src, int tag, Envelope& out);

  /// Number of queued messages (for tests / diagnostics).
  std::size_t pending() const;

  /// Summary of every queued message, for the hpfcg::check teardown audit.
  struct PendingInfo {
    int src = 0;
    int tag = 0;
    std::size_t bytes = 0;
  };
  std::vector<PendingInfo> pending_info() const;

  /// Poison the mailbox: wake all waiters, make every receive throw.
  void abort();

 private:
  bool match_locked(int src, int tag, Envelope& out);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool aborted_ = false;
};

}  // namespace hpfcg::msg
