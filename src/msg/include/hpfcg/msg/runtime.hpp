#pragma once
// SPMD runtime: N simulated processors, each an OS thread.
//
// This is the execution substrate an HPF compiler of the paper's era would
// target: a single program body runs on every processor with its own rank
// and private memory, communicating only through messages and collectives
// (see process.hpp).  Runtime owns the mailboxes (the network), the barrier,
// the cost model, and per-rank instrumentation.

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "hpfcg/msg/cost_model.hpp"
#include "hpfcg/msg/mailbox.hpp"
#include "hpfcg/msg/stats.hpp"

namespace hpfcg::msg {

class Process;

/// Owns the simulated machine.  Construct once, then call run() any number
/// of times; statistics accumulate across runs until reset_stats().
class Runtime {
 public:
  /// `nprocs` simulated processors with the given cost model parameters.
  explicit Runtime(int nprocs, CostParams params = {},
                   Topology topo = Topology::kHypercube);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute `body` on every simulated processor concurrently and join.
  /// The first exception thrown by any processor aborts the whole machine
  /// (blocked receives/barriers unwind) and is rethrown here.
  void run(const std::function<void(Process&)>& body);

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const CostModel& cost() const { return cost_; }

  /// Instrumentation for one rank.
  [[nodiscard]] const Stats& stats(int rank) const;

  /// Sum of all ranks' counters.
  [[nodiscard]] Stats total_stats() const;

  /// Max modeled time over ranks — the machine's critical-path estimate.
  [[nodiscard]] double modeled_makespan() const;

  void reset_stats();

  // ---- internals used by Process (public: Process lives in another TU) --
  Mailbox& mailbox(int rank);
  Stats& stats_mutable(int rank);
  void barrier_wait();
  void abort_all();
  [[nodiscard]] bool aborted() const { return aborted_; }

 private:
  int nprocs_;
  CostModel cost_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<Stats> stats_;

  // Sense-reversing central barrier with abort support.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  unsigned long barrier_generation_ = 0;
  bool aborted_ = false;
};

/// Convenience: build a machine, run `body`, and return the runtime so the
/// caller can inspect stats.
std::unique_ptr<Runtime> spmd_run(int nprocs,
                                  const std::function<void(Process&)>& body,
                                  CostParams params = {},
                                  Topology topo = Topology::kHypercube);

}  // namespace hpfcg::msg
