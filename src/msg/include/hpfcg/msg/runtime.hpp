#pragma once
// SPMD runtime: N simulated processors, each an OS thread.
//
// This is the execution substrate an HPF compiler of the paper's era would
// target: a single program body runs on every processor with its own rank
// and private memory, communicating only through messages and collectives
// (see process.hpp).  Runtime owns the mailboxes (the network), the barrier,
// the cost model, per-rank instrumentation, and — when hpfcg::check is
// enabled — the verification harness (collective-conformance ledger,
// deadlock watchdog, teardown audit).

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/check/harness.hpp"
#include "hpfcg/msg/cost_model.hpp"
#include "hpfcg/msg/mailbox.hpp"
#include "hpfcg/msg/stats.hpp"
#include "hpfcg/race/detector.hpp"
#include "hpfcg/race/race.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/trace/session.hpp"
#include "hpfcg/trace/trace.hpp"

namespace hpfcg::msg {

class Process;

/// Owns the simulated machine.  Construct once, then call run() any number
/// of times; statistics accumulate across runs until reset_stats().
class Runtime {
 public:
  /// `nprocs` simulated processors with the given cost model parameters.
  /// Samples check::enabled() here: the verification harness exists for the
  /// machine's whole lifetime or not at all.
  explicit Runtime(int nprocs, CostParams params = {},
                   Topology topo = Topology::kHypercube);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute `body` on every simulated processor concurrently and join.
  /// The first exception thrown by any processor aborts the whole machine
  /// (blocked receives/barriers unwind) and is rethrown here.  With checking
  /// enabled, a watchdog converts deadlocks into diagnostics and a teardown
  /// audit reports unreceived messages and recorded violations.
  void run(const std::function<void(Process&)>& body);

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const CostModel& cost() const { return cost_; }

  /// Instrumentation for one rank.  Aggregation across ranks is only sound
  /// once every processor has synchronized (Stats is not thread-safe by
  /// design), so cross-rank reads are rejected while a run is in flight.
  [[nodiscard]] const Stats& stats(int rank) const;

  /// Sum of all ranks' counters.
  [[nodiscard]] Stats total_stats() const;

  /// Max modeled time over ranks — the machine's critical-path estimate.
  [[nodiscard]] double modeled_makespan() const;

  void reset_stats();

  // ---- internals used by Process (public: Process lives in another TU) --
  Mailbox& mailbox(int rank);
  Stats& stats_mutable(int rank);
  void barrier_wait();
  void abort_all();
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Verification harness, or nullptr when checking is off.  When the check
  /// layer is compiled out this folds to a constant nullptr, so every hook
  /// site (`if (auto* h = rt.checker())`) is dead code.
  [[nodiscard]] check::Harness* checker() const {
    if constexpr (!check::kCompiled) return nullptr;
    return checker_.get();
  }

  /// Trace session, or nullptr when tracing is off.  When the trace layer
  /// is compiled out this folds to a constant nullptr, so every recording
  /// site is dead code.  Like Stats, spans accumulate across run() calls;
  /// read them only between runs (the thread join orders the reads).
  [[nodiscard]] trace::Session* tracer() const {
    if constexpr (!trace::kCompiled) return nullptr;
    return tracer_.get();
  }

  /// Race detector, or nullptr when detection and replay are both off.
  /// When the race layer is compiled out this folds to a constant nullptr,
  /// so every hook site (`if (auto* d = rt.racer())`) is dead code.
  [[nodiscard]] race::Detector* racer() const {
    if constexpr (!race::kCompiled) return nullptr;
    return racer_.get();
  }

  /// True when this machine routes sum-class reductions through the exact
  /// superaccumulator (hpfcg::repro).  Sampled once at construction, like
  /// the check harness, so every rank agrees on the collective shapes for
  /// the machine's whole lifetime.  When the repro layer is compiled out
  /// this folds to false and the re-routing branches are dead code.
  [[nodiscard]] bool repro_active() const {
    if constexpr (!repro::kCompiled) return false;
    return repro_;
  }

 private:
  void audit_teardown() const;

  int nprocs_;
  CostModel cost_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<Stats> stats_;
  std::unique_ptr<check::Harness> checker_;
  std::unique_ptr<trace::Session> tracer_;
  std::unique_ptr<race::Detector> racer_;
  bool repro_ = false;

  /// True between run() entry and join; guards cross-rank Stats aggregation.
  std::atomic<bool> running_{false};

  // Sense-reversing central barrier with abort support.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  unsigned long barrier_generation_ = 0;
  bool aborted_ = false;
};

/// Convenience: build a machine, run `body`, and return the runtime so the
/// caller can inspect stats.
std::unique_ptr<Runtime> spmd_run(int nprocs,
                                  const std::function<void(Process&)>& body,
                                  CostParams params = {},
                                  Topology topo = Topology::kHypercube);

}  // namespace hpfcg::msg
