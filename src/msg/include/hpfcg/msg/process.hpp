#pragma once
// Per-processor communication context: point-to-point messaging and the
// collective operations the HPF layer is lowered to.
//
// Semantics follow the message-passing SPMD model the paper contrasts HPF
// against: sends are buffered (eager) and never block; receives block until
// a matching message arrives; collectives must be called by all ranks in
// the same order (standard SPMD discipline).
//
// Modeled-time accounting (see cost_model.hpp): a sender pays the start-up
// latency `t_startup`; the receiver pays the routing and transfer time
// `hops * t_hop + bytes * t_comm`.  Summed over a balanced exchange this
// reproduces the paper's per-step cost `t_startup + t_comm * m`, and the
// per-rank maximum approximates the machine's critical path.

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/check/harness.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/repro/superacc.hpp"
#include "hpfcg/trace/span.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::msg {

namespace detail {
/// True when `Op` is the standard addition functor for `T` — the only
/// reduction class the reproducible mode re-routes (max/min/loc merges pick
/// an operand rather than rounding, so they are already order-invariant).
template <class T, class Op>
inline constexpr bool kIsPlus =
    std::is_same_v<Op, std::plus<T>> || std::is_same_v<Op, std::plus<>>;
}  // namespace detail

/// Handle to one simulated processor inside Runtime::run().
class Process {
 public:
  Process(Runtime& rt, int rank)
      : rt_(rt),
        rank_(rank),
        trace_(rt.tracer() != nullptr ? &rt.tracer()->rank(rank) : nullptr) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nprocs() const { return rt_.nprocs(); }
  [[nodiscard]] const CostModel& cost() const { return rt_.cost(); }
  [[nodiscard]] Runtime& runtime() { return rt_; }
  [[nodiscard]] Stats& stats() { return rt_.stats_mutable(rank_); }

  /// This rank's span ring, or nullptr when tracing is off.  Upper layers
  /// (hpf intrinsics, solvers) hang their own SpanScopes off it.
  [[nodiscard]] trace::RankTrace* tracer_rank() const { return trace_; }

  /// Binomial-tree depth of the machine, ceil(log2 NP); stamped on every
  /// collective span so the model fit knows how many start-ups a tree pass
  /// paid without re-deriving it from NP.
  [[nodiscard]] std::uint16_t tree_depth() const {
    return static_cast<std::uint16_t>(
        std::bit_width(static_cast<unsigned>(nprocs() - 1)));
  }

  /// Solver metrics channel: publish one per-iteration sample (residual plus
  /// this rank's cumulative counters) to the trace ring.  No-op when tracing
  /// is off; never mutates Stats either way.
  void trace_iteration(std::uint64_t iteration, double residual) {
    if (trace_ == nullptr) return;
    const Stats& s = rt_.stats_mutable(rank_);
    trace::IterationMetrics m;
    m.t_ns = trace_->now_ns();
    m.iteration = iteration;
    m.residual = residual;
    m.reductions = s.reductions;
    m.reduction_values = s.reduction_values;
    m.bytes_moved = s.bytes_sent + s.bytes_received;
    m.messages = s.messages_sent + s.messages_received;
    m.flops = s.flops;
    trace_->note_iteration(m);
  }

  /// Record `n` local floating-point operations in the cost model.
  void add_flops(std::uint64_t n) {
    auto& s = stats();
    s.flops += n;
    s.modeled_compute_seconds += cost().compute_time(n);
  }

  // ---- point-to-point --------------------------------------------------

  /// Buffered send of a trivially-copyable element range.
  template <class T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, data.data(), data.size_bytes());
  }

  template <class T>
  void send_value(int dst, int tag, const T& v) {
    send(dst, tag, std::span<const T>(&v, 1));
  }

  /// Blocking receive into a caller-sized buffer; the message length must
  /// match exactly (HPF lowerings always know their shapes).
  template <class T>
  void recv_into(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    Envelope env = recv_bytes(src, tag);
    HPFCG_REQUIRE(env.size() == out.size_bytes(),
                  "recv: message length mismatch");
    if (!env.empty()) {  // empty span data() may be null (UB to copy)
      std::memcpy(out.data(), env.data(), env.size());
    }
    rt_.mailbox(rank_).recycle(std::move(env));
  }

  /// Blocking receive of a whole message as a vector.
  template <class T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Envelope env = recv_bytes(src, tag);
    HPFCG_REQUIRE(env.size() % sizeof(T) == 0,
                  "recv: message is not a whole number of elements");
    std::vector<T> out(env.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), env.data(), env.size());
    }
    rt_.mailbox(rank_).recycle(std::move(env));
    return out;
  }

  /// Receive from any source; `src_out` reports the actual sender.
  template <class T>
  std::vector<T> recv_any(int tag, int& src_out) {
    Envelope env = recv_bytes(kAnySource, tag, &src_out);
    HPFCG_REQUIRE(env.size() % sizeof(T) == 0,
                  "recv_any: message is not a whole number of elements");
    std::vector<T> out(env.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), env.data(), env.size());
    }
    rt_.mailbox(rank_).recycle(std::move(env));
    return out;
  }

  template <class T>
  T recv_value(int src, int tag) {
    T v{};
    recv_into(src, tag, std::span<T>(&v, 1));
    return v;
  }

  // ---- collectives -----------------------------------------------------
  // All ranks must call each collective in the same program order.

  /// Synchronize all processors.
  void barrier() {
    conform(check::CollectiveKind::kBarrier, check::kNoRoot, 0, 0);
    race_fence("barrier");
    trace::SpanScope span(trace_, trace::SpanKind::kBarrier, 0, 0,
                          tree_depth());
    auto& s = stats();
    ++s.barriers;
    s.modeled_comm_seconds += cost().barrier_time();
    check::Harness* h = rt_.checker();
    if (h != nullptr) h->begin_wait(rank_, check::WaitKind::kBarrier);
    race::Detector* d = rt_.racer();
    if (d != nullptr) d->barrier_post(rank_);
    rt_.barrier_wait();
    if (d != nullptr) d->barrier_adopt(rank_);
    if (h != nullptr) h->end_wait(rank_);
  }

  /// Binomial-tree broadcast: `buf` is input on `root`, output elsewhere.
  template <class T>
  void broadcast(int root, std::vector<T>& buf) {
    const int p = nprocs();
    // Non-root ranks cannot know the length (it travels in the header), so
    // the fingerprint pins it only on the root.
    conform(check::CollectiveKind::kBroadcast, root, sizeof(T),
            rank_ == root ? buf.size() : check::kUnknownCount);
    trace::SpanScope span(trace_, trace::SpanKind::kBroadcast,
                          static_cast<std::uint32_t>(root),
                          buf.size() * sizeof(T), tree_depth());
    const int seq = next_collective();
    if (p == 1) return;
    std::size_t len = buf.size();
    // Length travels in the same tree pass as a tiny header message.
    const int vr = rel_rank(root);
    int mask = 1;
    while (mask < p) {
      if (vr & mask) {
        const int src = abs_rank(vr - mask, root);
        len = recv_value<std::size_t>(src, coll_tag(seq, 0));
        buf.resize(len);
        recv_into<T>(src, coll_tag(seq, 1), buf);
        span.set_bytes(len * sizeof(T));
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vr + mask < p) {
        const int dst = abs_rank(vr + mask, root);
        send_value<std::size_t>(dst, coll_tag(seq, 0), len);
        send<T>(dst, coll_tag(seq, 1), buf);
      }
      mask >>= 1;
    }
  }

  /// Binomial-tree broadcast of a fixed-size buffer (size known on every
  /// rank, so no length header travels — one message per tree edge).
  template <class T>
  void broadcast_into(int root, std::span<T> buf) {
    const int p = nprocs();
    conform(check::CollectiveKind::kBroadcast, root, sizeof(T), buf.size());
    trace::SpanScope span(trace_, trace::SpanKind::kBroadcast,
                          static_cast<std::uint32_t>(root), buf.size_bytes(),
                          tree_depth());
    const int seq = next_collective();
    if (p == 1) return;
    const int vr = rel_rank(root);
    int mask = 1;
    while (mask < p) {
      if (vr & mask) {
        recv_into<T>(abs_rank(vr - mask, root), coll_tag(seq, 0), buf);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vr + mask < p) {
        send<T>(abs_rank(vr + mask, root), coll_tag(seq, 0),
                std::span<const T>(buf.data(), buf.size()));
      }
      mask >>= 1;
    }
  }

  /// Broadcast a single value from `root` and return it everywhere.
  template <class T>
  T broadcast_value(int root, T v) {
    broadcast_into<T>(root, std::span<T>(&v, 1));
    return v;
  }

  /// Binomial-tree reduction of one value to `root` (valid only there).
  template <class T, class Op = std::plus<T>>
  T reduce(int root, T value, Op op = {}) {
    const int p = nprocs();
    conform(check::CollectiveKind::kReduce, root, sizeof(T), 1);
    trace::SpanScope span(trace_, trace::SpanKind::kReduce, 1, sizeof(T),
                          tree_depth());
    const int seq = next_collective();
    note_reduction(1);
    const int vr = rel_rank(root);
    int mask = 1;
    while (mask < p) {
      if ((vr & mask) == 0) {
        const int partner = vr | mask;
        if (partner < p) {
          const T other = recv_value<T>(abs_rank(partner, root),
                                        coll_tag(seq, 0));
          value = op(value, other);
        }
      } else {
        send_value<T>(abs_rank(vr - mask, root), coll_tag(seq, 0), value);
        break;
      }
      mask <<= 1;
    }
    return value;
  }

  /// All-reduce of one value: reduce to rank 0 then broadcast.  With the
  /// reproducible mode on, floating-point sums route through the exact
  /// superaccumulator merge instead (see allreduce_acc), so the result is
  /// the correctly rounded exact sum — identical for every NP and tree.
  template <class T, class Op = std::plus<T>>
  T allreduce(T value, Op op = {}) {
    if constexpr (std::is_floating_point_v<T> && detail::kIsPlus<T, Op>) {
      if (repro_active()) {
        repro::Superacc acc;
        acc.add(static_cast<double>(value));
        allreduce_acc(std::span<repro::Superacc>(&acc, 1));
        return static_cast<T>(acc.round());
      }
    }
    race_fence("allreduce");
    value = reduce<T, Op>(0, value, op);
    return broadcast_value<T>(0, value);
  }

  /// Element-wise all-reduce of equal-length vectors on every rank.
  /// This is the merge phase of the paper's PRIVATE ... WITH MERGE(+).
  template <class T, class Op = std::plus<T>>
  void allreduce_vec(std::vector<T>& buf, Op op = {}) {
    if constexpr (std::is_floating_point_v<T> && detail::kIsPlus<T, Op>) {
      if (repro_active()) {
        std::vector<repro::Superacc> accs(buf.size());
        for (std::size_t i = 0; i < buf.size(); ++i) {
          accs[i].add(static_cast<double>(buf[i]));
        }
        allreduce_acc(std::span<repro::Superacc>(accs));
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = static_cast<T>(accs[i].round());
        }
        return;
      }
    }
    const int p = nprocs();
    conform(check::CollectiveKind::kAllreduceVec, check::kNoRoot, sizeof(T),
            buf.size());
    race_fence("allreduce_vec");
    trace::SpanScope span(trace_, trace::SpanKind::kAllreduceVec,
                          static_cast<std::uint32_t>(buf.size()),
                          buf.size() * sizeof(T), tree_depth());
    const int seq = next_collective();
    note_reduction(buf.size());
    if (p == 1) return;
    const std::size_t n = buf.size();
    // Binomial reduce to 0 ...
    int mask = 1;
    while (mask < p) {
      if ((rank_ & mask) == 0) {
        const int partner = rank_ | mask;
        if (partner < p) {
          const std::span<T> other = coll_scratch<T>(n);
          recv_into<T>(partner, coll_tag(seq, 0), other);
          for (std::size_t i = 0; i < n; ++i) buf[i] = op(buf[i], other[i]);
          add_flops(n);
        }
      } else {
        send<T>(rank_ - mask, coll_tag(seq, 0),
                std::span<const T>(buf.data(), n));
        break;
      }
      mask <<= 1;
    }
    // ... then broadcast the merged vector (reuse of the tree pattern with
    // a distinct phase id so steps cannot be confused).
    int mask2 = 1;
    while (mask2 < p) {
      if (rank_ & mask2) {
        recv_into<T>(rank_ - mask2, coll_tag(seq, 1), buf);
        break;
      }
      mask2 <<= 1;
    }
    mask2 >>= 1;
    while (mask2 > 0) {
      if (rank_ + mask2 < p) {
        send<T>(rank_ + mask2, coll_tag(seq, 1),
                std::span<const T>(buf.data(), n));
      }
      mask2 >>= 1;
    }
  }

  // ---- batched (fused) reductions --------------------------------------
  // The communication-avoiding primitives: k scalars travel together, so
  // the per-hop start-up latency — the paper's dominant `t_startup · log NP`
  // term — is paid once instead of k times.  The reduction tree is the
  // rank-order binomial tree of `reduce(0, ...)` / `allreduce`, so a batch
  // produces bit-identical values to k sequential scalar allreduces.

  /// Fused all-reduce of `vals.size()` independent scalars, element-wise
  /// under `op`, one message per tree edge.  All ranks must pass the same
  /// batch width (enforced by the conformance ledger).  k = 0 still posts
  /// to the ledger — the machine-wide width agreement is checked — but is
  /// otherwise a communication-free no-op: no messages, no collective or
  /// reduction booked, Stats untouched.
  template <class T, class Op = std::plus<T>>
  void allreduce_batch(std::span<T> vals, Op op = {}) {
    if constexpr (std::is_floating_point_v<T> && detail::kIsPlus<T, Op>) {
      if (repro_active()) {
        // Same batched tree, exact payloads: the batch stays bit-identical
        // to vals.size() scalar repro allreduces because each value's exact
        // sum is independent of its neighbors in the batch.
        BatchBuffer<repro::Superacc> accs(vals.size());
        for (std::size_t i = 0; i < vals.size(); ++i) {
          accs.span()[i].add(static_cast<double>(vals[i]));
        }
        allreduce_acc(accs.span());
        for (std::size_t i = 0; i < vals.size(); ++i) {
          vals[i] = static_cast<T>(accs.span()[i].round());
        }
        return;
      }
    }
    const int p = nprocs();
    conform(check::CollectiveKind::kAllreduceBatch, check::kNoRoot, sizeof(T),
            vals.size());
    if (vals.empty()) return;  // width-0: no messages, no fence semantics
    race_fence("allreduce_batch");
    trace::SpanScope span(trace_, trace::SpanKind::kAllreduceBatch,
                          static_cast<std::uint32_t>(vals.size()),
                          vals.size() * sizeof(T), tree_depth());
    const int seq = next_collective();
    note_reduction(vals.size());
    if (p == 1) return;
    const std::size_t k = vals.size();
    // Reduce to rank 0 (phase 0) ...
    int mask = 1;
    while (mask < p) {
      if ((rank_ & mask) == 0) {
        const int partner = rank_ | mask;
        if (partner < p) {
          BatchBuffer<T> other(k);
          recv_into<T>(partner, coll_tag(seq, 0), other.span());
          for (std::size_t i = 0; i < k; ++i) {
            vals[i] = op(vals[i], other.span()[i]);
          }
          add_flops(k);
        }
      } else {
        send<T>(rank_ - mask, coll_tag(seq, 0),
                std::span<const T>(vals.data(), k));
        break;
      }
      mask <<= 1;
    }
    // ... then broadcast the merged batch down the same tree (phase 1).
    int mask2 = 1;
    while (mask2 < p) {
      if (rank_ & mask2) {
        recv_into<T>(rank_ - mask2, coll_tag(seq, 1), vals);
        break;
      }
      mask2 <<= 1;
    }
    mask2 >>= 1;
    while (mask2 > 0) {
      if (rank_ + mask2 < p) {
        send<T>(rank_ + mask2, coll_tag(seq, 1),
                std::span<const T>(vals.data(), k));
      }
      mask2 >>= 1;
    }
  }

  /// True when this machine routes sum-class reductions through the exact
  /// superaccumulator (sampled once at Runtime construction).  Folds to
  /// false when the repro layer is compiled out.
  [[nodiscard]] bool repro_active() const {
    if constexpr (!repro::kCompiled) return false;
    return rt_.repro_active();
  }

  /// All-reduce of exact superaccumulators — the reproducible mode's merge
  /// primitive.  Walks the same binomial tree as allreduce_batch, but the
  /// payload is the fixed-point accumulator and the merge is element-wise
  /// integer limb addition, which is associative: every rank ends holding
  /// the bit-identical exact sum (rank 0's merged limbs, broadcast
  /// verbatim) and rounds it identically.  Books one reduction of
  /// accs.size() values — the same currency as the float path — plus the
  /// limb-merge flops, and bumps the repro_* Stats counters.  k = 0
  /// conforms and then no-ops, like the batch collectives.
  void allreduce_acc(std::span<repro::Superacc> accs) {
    const int p = nprocs();
    conform(check::CollectiveKind::kReproReduce, check::kNoRoot,
            sizeof(repro::Superacc), accs.size());
    if (accs.empty()) return;
    race_fence("allreduce");
    trace::SpanScope span(trace_, trace::SpanKind::kReproMerge,
                          static_cast<std::uint32_t>(accs.size()),
                          accs.size() * sizeof(repro::Superacc), tree_depth());
    const int seq = next_collective();
    note_reduction(accs.size());
    auto& s = stats();
    ++s.repro_reductions;
    s.repro_values += accs.size();
    // Canonical digits on the wire: merge() relies on both sides being
    // renormalized, and rank 0's broadcast limbs must already be canonical.
    for (auto& a : accs) a.renormalize();
    if (p == 1) return;
    const std::size_t k = accs.size();
    // Reduce to rank 0 (phase 0) ...
    int mask = 1;
    while (mask < p) {
      if ((rank_ & mask) == 0) {
        const int partner = rank_ | mask;
        if (partner < p) {
          const std::span<repro::Superacc> other =
              coll_scratch<repro::Superacc>(k);
          recv_into<repro::Superacc>(partner, coll_tag(seq, 0), other);
          for (std::size_t i = 0; i < k; ++i) accs[i].merge(other[i]);
          add_flops(k * repro::Superacc::kMergeFlops);
        }
      } else {
        send<repro::Superacc>(
            rank_ - mask, coll_tag(seq, 0),
            std::span<const repro::Superacc>(accs.data(), k));
        break;
      }
      mask <<= 1;
    }
    // ... then broadcast the merged accumulators down the tree (phase 1).
    int mask2 = 1;
    while (mask2 < p) {
      if (rank_ & mask2) {
        recv_into<repro::Superacc>(rank_ - mask2, coll_tag(seq, 1), accs);
        break;
      }
      mask2 <<= 1;
    }
    mask2 >>= 1;
    while (mask2 > 0) {
      if (rank_ + mask2 < p) {
        send<repro::Superacc>(
            rank_ + mask2, coll_tag(seq, 1),
            std::span<const repro::Superacc>(accs.data(), k));
      }
      mask2 >>= 1;
    }
  }

  /// Allocations taken by the reusable vector-collective receive scratch
  /// (allreduce_vec / allreduce_acc tree levels): backs the regression test
  /// that the per-level `std::vector other(n)` allocation churn stays gone.
  [[nodiscard]] std::uint64_t coll_scratch_allocations() const {
    return coll_scratch_allocations_;
  }

  /// Fused reduction of `vals.size()` scalars to `root` (valid only there),
  /// element-wise under `op`, one message per tree edge.  Like
  /// allreduce_batch, k = 0 conforms and then no-ops without touching Stats.
  template <class T, class Op = std::plus<T>>
  void reduce_batch(int root, std::span<T> vals, Op op = {}) {
    const int p = nprocs();
    conform(check::CollectiveKind::kReduceBatch, root, sizeof(T),
            vals.size());
    if (vals.empty()) return;
    trace::SpanScope span(trace_, trace::SpanKind::kReduceBatch,
                          static_cast<std::uint32_t>(vals.size()),
                          vals.size() * sizeof(T), tree_depth());
    const int seq = next_collective();
    note_reduction(vals.size());
    if (p == 1) return;
    const std::size_t k = vals.size();
    const int vr = rel_rank(root);
    int mask = 1;
    while (mask < p) {
      if ((vr & mask) == 0) {
        const int partner = vr | mask;
        if (partner < p) {
          BatchBuffer<T> other(k);
          recv_into<T>(abs_rank(partner, root), coll_tag(seq, 0),
                       other.span());
          for (std::size_t i = 0; i < k; ++i) {
            vals[i] = op(vals[i], other.span()[i]);
          }
          add_flops(k);
        }
      } else {
        send<T>(abs_rank(vr - mask, root), coll_tag(seq, 0),
                std::span<const T>(vals.data(), k));
        break;
      }
      mask <<= 1;
    }
  }

  /// All-gather with per-rank block sizes `counts` (known by all, in
  /// elements).  `local` is this rank's block; `out` receives the whole
  /// concatenation.  This is the paper's "all-to-all broadcast of the local
  /// vector elements" used by the row-wise matrix-vector product.
  ///
  /// Algorithm selection mirrors the paper's Section 4 analysis: on a
  /// power-of-two hypercube we use recursive doubling (log NP start-ups,
  /// the `t_startup * log N_P + t_comm * n/N_P ...` form); otherwise the
  /// ring algorithm (NP-1 equal steps).
  template <class T>
  void allgatherv(std::span<const T> local, std::vector<T>& out,
                  const std::vector<std::size_t>& counts) {
    const int p = nprocs();
    HPFCG_REQUIRE(static_cast<int>(counts.size()) == p,
                  "allgatherv: counts must have one entry per rank");
    HPFCG_REQUIRE(local.size() == counts[static_cast<std::size_t>(rank_)],
                  "allgatherv: local block size disagrees with counts");
    const int seq = next_collective();

    std::vector<std::size_t> offset(counts.size() + 1, 0);
    std::partial_sum(counts.begin(), counts.end(), offset.begin() + 1);
    // Local block sizes legitimately differ; the global total must agree.
    conform(check::CollectiveKind::kAllgatherv, check::kNoRoot, sizeof(T),
            offset.back());
    trace::SpanScope span(trace_, trace::SpanKind::kAllgatherv,
                          static_cast<std::uint32_t>(offset.back()),
                          offset.back() * sizeof(T), tree_depth());
    out.assign(offset.back(), T{});
    std::copy(local.begin(), local.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                offset[static_cast<std::size_t>(rank_)]));
    if (p == 1) return;

    const bool pow2 = (p & (p - 1)) == 0;
    if (pow2 && cost().topology() == Topology::kHypercube) {
      // Recursive doubling: after step s this rank holds the blocks of the
      // 2^(s+1)-rank group it belongs to; each step exchanges the whole
      // held group with the partner across dimension s.
      for (int step = 0, group = 1; group < p; ++step, group <<= 1) {
        const int partner = rank_ ^ group;
        const int my_base = rank_ & ~(group - 1);
        const int partner_base = partner & ~(group - 1);
        const auto mb = static_cast<std::size_t>(my_base);
        const auto pb = static_cast<std::size_t>(partner_base);
        const std::size_t my_len =
            offset[mb + static_cast<std::size_t>(group)] - offset[mb];
        const std::size_t partner_len =
            offset[pb + static_cast<std::size_t>(group)] - offset[pb];
        send<T>(partner, coll_tag(seq, step),
                std::span<const T>(out.data() + offset[mb], my_len));
        recv_into<T>(partner, coll_tag(seq, step),
                     std::span<T>(out.data() + offset[pb], partner_len));
      }
      return;
    }

    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      const int send_block = (rank_ - step + p) % p;
      const int recv_block = (rank_ - step - 1 + p) % p;
      const auto sb = static_cast<std::size_t>(send_block);
      const auto rb = static_cast<std::size_t>(recv_block);
      send<T>(right, coll_tag(seq, step),
              std::span<const T>(out.data() + offset[sb], counts[sb]));
      recv_into<T>(left, coll_tag(seq, step),
                   std::span<T>(out.data() + offset[rb], counts[rb]));
    }
  }

  /// Gather variable-size blocks to `root`.  `counts` known by all ranks.
  /// On root, `out` receives the concatenation; elsewhere it is cleared.
  template <class T>
  void gatherv(int root, std::span<const T> local, std::vector<T>& out,
               const std::vector<std::size_t>& counts) {
    const int p = nprocs();
    HPFCG_REQUIRE(static_cast<int>(counts.size()) == p,
                  "gatherv: counts must have one entry per rank");
    if (rt_.checker() != nullptr) {
      conform(check::CollectiveKind::kGatherv, root, sizeof(T),
              std::accumulate(counts.begin(), counts.end(), std::size_t{0}));
    }
    trace::SpanScope span(trace_, trace::SpanKind::kGatherv,
                          static_cast<std::uint32_t>(root),
                          total_bytes<T>(counts), tree_depth());
    const int seq = next_collective();
    if (rank_ == root) {
      std::vector<std::size_t> offset(counts.size() + 1, 0);
      std::partial_sum(counts.begin(), counts.end(), offset.begin() + 1);
      out.assign(offset.back(), T{});
      std::copy(local.begin(), local.end(),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  offset[static_cast<std::size_t>(root)]));
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        recv_into<T>(r, coll_tag(seq, 0),
                     std::span<T>(out.data() + offset[static_cast<std::size_t>(r)],
                                  counts[static_cast<std::size_t>(r)]));
      }
    } else {
      out.clear();
      send<T>(root, coll_tag(seq, 0), local);
    }
  }

  /// Scatter variable-size blocks from `root`; returns this rank's block.
  /// `all` is read only on root.
  template <class T>
  std::vector<T> scatterv(int root, std::span<const T> all,
                          const std::vector<std::size_t>& counts) {
    const int p = nprocs();
    HPFCG_REQUIRE(static_cast<int>(counts.size()) == p,
                  "scatterv: counts must have one entry per rank");
    if (rt_.checker() != nullptr) {
      conform(check::CollectiveKind::kScatterv, root, sizeof(T),
              std::accumulate(counts.begin(), counts.end(), std::size_t{0}));
    }
    trace::SpanScope span(trace_, trace::SpanKind::kScatterv,
                          static_cast<std::uint32_t>(root),
                          total_bytes<T>(counts), tree_depth());
    const int seq = next_collective();
    std::vector<T> mine(counts[static_cast<std::size_t>(rank_)]);
    if (rank_ == root) {
      std::vector<std::size_t> offset(counts.size() + 1, 0);
      std::partial_sum(counts.begin(), counts.end(), offset.begin() + 1);
      HPFCG_REQUIRE(all.size() == offset.back(),
                    "scatterv: source length disagrees with counts");
      for (int r = 0; r < p; ++r) {
        const auto ur = static_cast<std::size_t>(r);
        if (r == root) {
          std::copy_n(all.data() + offset[ur], counts[ur], mine.data());
        } else {
          send<T>(r, coll_tag(seq, 0),
                  std::span<const T>(all.data() + offset[ur], counts[ur]));
        }
      }
    } else {
      recv_into<T>(root, coll_tag(seq, 0), std::span<T>(mine));
    }
    return mine;
  }

  /// Personalized all-to-all: `send_blocks[r]` goes to rank r; returns the
  /// blocks received, indexed by source rank.
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& send_blocks) {
    const int p = nprocs();
    HPFCG_REQUIRE(static_cast<int>(send_blocks.size()) == p,
                  "alltoallv: need one block per destination rank");
    // Per-destination block sizes are legitimately rank-specific; only the
    // kind and element size are conformable.
    conform(check::CollectiveKind::kAlltoallv, check::kNoRoot, sizeof(T),
            check::kUnknownCount);
    trace::SpanScope span(trace_, trace::SpanKind::kAlltoallv, 0, 0,
                          tree_depth());
    if (trace_ != nullptr) {
      std::uint64_t b = 0;
      for (const auto& blk : send_blocks) b += blk.size() * sizeof(T);
      span.set_bytes(b);
    }
    const int seq = next_collective();
    std::vector<std::vector<T>> recv_blocks(static_cast<std::size_t>(p));
    recv_blocks[static_cast<std::size_t>(rank_)] =
        send_blocks[static_cast<std::size_t>(rank_)];
    for (int off = 1; off < p; ++off) {
      const int dst = (rank_ + off) % p;
      const int src = (rank_ - off + p) % p;
      const auto& blk = send_blocks[static_cast<std::size_t>(dst)];
      send<T>(dst, coll_tag(seq, off),
              std::span<const T>(blk.data(), blk.size()));
      recv_blocks[static_cast<std::size_t>(src)] =
          recv<T>(src, coll_tag(seq, off));
    }
    return recv_blocks;
  }

  /// Personalized all-to-all whose sparsity pattern is replicated
  /// knowledge.  `recv_mask[s]` must be nonzero exactly when rank s's
  /// `send_blocks[rank()]` is nonempty — both sides derive the pattern from
  /// the same replicated metadata (e.g. old and new cut points), so empty
  /// pairs post no message at all.  This extends the zero-width no-op
  /// guarantee of the batch collectives to the all-to-all: ranks owning
  /// nothing (n < N_P) cost zero messages, and the conformance record is
  /// still posted on every rank, keeping the check ledger aligned.
  /// The self block never travels (copied directly, like alltoallv).
  template <class T>
  std::vector<std::vector<T>> alltoallv_masked(
      const std::vector<std::vector<T>>& send_blocks,
      const std::vector<std::uint8_t>& recv_mask) {
    const int p = nprocs();
    HPFCG_REQUIRE(static_cast<int>(send_blocks.size()) == p,
                  "alltoallv_masked: need one block per destination rank");
    HPFCG_REQUIRE(static_cast<int>(recv_mask.size()) == p,
                  "alltoallv_masked: need one mask entry per source rank");
    conform(check::CollectiveKind::kAlltoallv, check::kNoRoot, sizeof(T),
            check::kUnknownCount);
    trace::SpanScope span(trace_, trace::SpanKind::kAlltoallv, 0, 0,
                          tree_depth());
    if (trace_ != nullptr) {
      std::uint64_t b = 0;
      for (const auto& blk : send_blocks) b += blk.size() * sizeof(T);
      span.set_bytes(b);
    }
    const int seq = next_collective();
    std::vector<std::vector<T>> recv_blocks(static_cast<std::size_t>(p));
    recv_blocks[static_cast<std::size_t>(rank_)] =
        send_blocks[static_cast<std::size_t>(rank_)];
    for (int off = 1; off < p; ++off) {
      const int dst = (rank_ + off) % p;
      const int src = (rank_ - off + p) % p;
      const auto& blk = send_blocks[static_cast<std::size_t>(dst)];
      if (!blk.empty()) {
        send<T>(dst, coll_tag(seq, off),
                std::span<const T>(blk.data(), blk.size()));
      }
      if (recv_mask[static_cast<std::size_t>(src)] != 0) {
        recv_blocks[static_cast<std::size_t>(src)] =
            recv<T>(src, coll_tag(seq, off));
      }
    }
    return recv_blocks;
  }

  /// Neighborhood personalized all-to-all: only the sender knows its
  /// destinations.  A header pass transposes the per-pair counts (every
  /// pair exchanges one std::size_t), then payload messages travel only for
  /// the nonzero pairs — ranks with no mutual boundary exchange nothing but
  /// the header.  Receivers post directed recvs per source rank in a fixed
  /// ring order (no wildcards), so the exchange is replay-deterministic.
  /// Cost O(P) start-ups for the header pass; intended for setup-time plan
  /// construction (the sparse halo inspector), not per-iteration use — the
  /// executor replays the discovered pattern with exactly one message per
  /// nonempty pair.
  template <class T>
  std::vector<std::vector<T>> neighbor_alltoallv(
      const std::vector<std::vector<T>>& send_blocks) {
    const int p = nprocs();
    HPFCG_REQUIRE(static_cast<int>(send_blocks.size()) == p,
                  "neighbor_alltoallv: need one block per destination rank");
    // Per-destination block sizes are private sender knowledge; only the
    // kind and element size are conformable.
    conform(check::CollectiveKind::kNeighborAlltoallv, check::kNoRoot,
            sizeof(T), check::kUnknownCount);
    trace::SpanScope span(trace_, trace::SpanKind::kAlltoallv, 0, 0,
                          tree_depth());
    if (trace_ != nullptr) {
      std::uint64_t b = 0;
      for (const auto& blk : send_blocks) b += blk.size() * sizeof(T);
      span.set_bytes(b);
    }
    const int seq = next_collective();
    std::vector<std::vector<T>> recv_blocks(static_cast<std::size_t>(p));
    recv_blocks[static_cast<std::size_t>(rank_)] =
        send_blocks[static_cast<std::size_t>(rank_)];
    // Headers (and payloads, eagerly buffered) out first; the per-(src,tag)
    // FIFO pairs each header with its payload on the shared tag.
    for (int off = 1; off < p; ++off) {
      const int dst = (rank_ + off) % p;
      const auto& blk = send_blocks[static_cast<std::size_t>(dst)];
      send_value<std::size_t>(dst, coll_tag(seq, off), blk.size());
      if (!blk.empty()) {
        send<T>(dst, coll_tag(seq, off),
                std::span<const T>(blk.data(), blk.size()));
      }
    }
    for (int off = 1; off < p; ++off) {
      const int src = (rank_ - off + p) % p;
      const auto n = recv_value<std::size_t>(src, coll_tag(seq, off));
      if (n != 0) {
        auto& blk = recv_blocks[static_cast<std::size_t>(src)];
        blk.resize(n);
        recv_into<T>(src, coll_tag(seq, off), std::span<T>(blk));
      }
    }
    return recv_blocks;
  }

  /// Exclusive prefix sum over ranks (rank 0 gets T{}).
  template <class T, class Op = std::plus<T>>
  T exscan(T value, Op op = {}) {
    // Simple linear scan: rank r receives the prefix from r-1, forwards
    // prefix ⊕ value to r+1.  Cost O(P) start-ups; used only in setup paths.
    conform(check::CollectiveKind::kExscan, check::kNoRoot, sizeof(T), 1);
    trace::SpanScope span(trace_, trace::SpanKind::kExscan, 1, sizeof(T),
                          tree_depth());
    const int seq = next_collective();
    T prefix{};
    if (rank_ > 0) prefix = recv_value<T>(rank_ - 1, coll_tag(seq, 0));
    if (rank_ + 1 < nprocs()) {
      send_value<T>(rank_ + 1, coll_tag(seq, 0), op(prefix, value));
    }
    return prefix;
  }

  /// hpfcg::check hook: assert that a structure this rank built locally
  /// (e.g. a replicated matrix every rank assembles from the same source)
  /// is bit-identical machine-wide, by posting its content fingerprint to
  /// the conformance ledger.  No-op when checking is inactive; callers
  /// should guard fingerprint computation with checking_active().
  void conform_replicated(std::size_t fingerprint) {
    if (fingerprint == check::kUnknownCount) fingerprint = 0;  // avoid wildcard
    conform(check::CollectiveKind::kReplicatedBuild, check::kNoRoot, 0,
            fingerprint);
  }

  /// hpfcg::check hook for cached exchange executors (sparse::HaloPlan):
  /// every rank entering a plan replay posts the plan's replicated topology
  /// fingerprint under kHaloExchange, so a rank executing a stale plan —
  /// e.g. one not rebuilt after a redistribute — is named by the ledger
  /// instead of deadlocking on an orphaned recv.  No-op when checking is
  /// inactive.
  void conform_halo(std::size_t elem_size, std::size_t topology_fingerprint) {
    if (topology_fingerprint == check::kUnknownCount) topology_fingerprint = 0;
    conform(check::CollectiveKind::kHaloExchange, check::kNoRoot, elem_size,
            topology_fingerprint);
  }

  /// True when the verification harness is observing this machine.
  [[nodiscard]] bool checking_active() const {
    return rt_.checker() != nullptr;
  }

  /// Advance this rank's modeled clock to at least `t` seconds, booking the
  /// difference as wait time.  Models blocking on a serialized predecessor.
  void wait_until(double t) {
    auto& s = stats();
    const double now = s.modeled_seconds();
    if (t > now) s.modeled_wait_seconds += t - now;
  }

  /// Run `f` on every rank in rank order (token-passed), then barrier.
  /// Used to reproduce loops whose inter-processor dependencies serialize
  /// execution (the paper's Scenario 2) and for ordered diagnostics.
  /// The token carries the predecessor's modeled clock, so the cost model
  /// sees the serialization: rank r's modeled time includes all of ranks
  /// 0..r-1's time inside the chain.
  void sequential(const std::function<void()>& f) {
    conform(check::CollectiveKind::kSequential, check::kNoRoot, 0, 0);
    trace::SpanScope span(trace_, trace::SpanKind::kSequential, 0, 0,
                          tree_depth());
    const int seq = next_collective();
    if (rank_ > 0) {
      const double pred_clock =
          recv_value<double>(rank_ - 1, coll_tag(seq, 0));
      wait_until(pred_clock);
    }
    f();
    if (rank_ + 1 < nprocs()) {
      send_value<double>(rank_ + 1, coll_tag(seq, 0),
                         stats().modeled_seconds());
    }
    barrier();
  }

 private:
  /// Scratch for a partner's batch in the fused reductions: stack storage
  /// for the batch widths solvers actually use, heap only beyond that.
  template <class T>
  class BatchBuffer {
   public:
    explicit BatchBuffer(std::size_t k) : size_(k) {
      if (k > kStackElems) heap_.resize(k);
    }
    [[nodiscard]] std::span<T> span() {
      return {size_ <= kStackElems ? stack_.data() : heap_.data(), size_};
    }

   private:
    static constexpr std::size_t kStackElems = 16;
    std::size_t size_;
    std::array<T, kStackElems> stack_;
    std::vector<T> heap_;
  };

  /// Reusable receive scratch for the vector-length collectives
  /// (allreduce_vec and allreduce_acc tree levels): one buffer grown to the
  /// high-water byte mark instead of a fresh std::vector per tree level of
  /// every call — the same hoist as the sparse transpose scratch.  Only
  /// receiving (non-leaf) tree ranks ever touch it.  Contents are
  /// overwritten by recv_into before every read, so no initialization runs.
  template <class T>
  [[nodiscard]] std::span<T> coll_scratch(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t bytes = n * sizeof(T);
    if (coll_scratch_.capacity() < bytes) ++coll_scratch_allocations_;
    if (coll_scratch_.size() < bytes) coll_scratch_.resize(bytes);
    return {reinterpret_cast<T*>(coll_scratch_.data()), n};
  }

  /// Total payload of a counts-described collective, computed only when a
  /// span will carry it.
  template <class T>
  [[nodiscard]] std::uint64_t total_bytes(
      const std::vector<std::size_t>& counts) const {
    if (trace_ == nullptr) return 0;
    return std::accumulate(counts.begin(), counts.end(), std::size_t{0}) *
           sizeof(T);
  }

  /// Book one reduction-class collective merging `values` scalars (the
  /// benchmark currency of the communication-avoiding variants).
  void note_reduction(std::size_t values) {
    auto& s = stats();
    ++s.reductions;
    s.reduction_values += values;
  }

  [[nodiscard]] int rel_rank(int root) const {
    return (rank_ - root + nprocs()) % nprocs();
  }
  [[nodiscard]] int abs_rank(int vr, int root) const {
    return (vr + root) % nprocs();
  }

  int next_collective() {
    ++stats().collectives;
    return coll_seq_++;
  }

  /// hpfcg::check hook: post this rank's collective fingerprint to the
  /// conformance ledger (side channel — no messages, no Stats mutation).
  /// Throws util::Error naming the divergent rank on mismatch.
  void conform(check::CollectiveKind kind, int root, std::size_t elem,
               std::size_t count) {
    check::Harness* h = rt_.checker();
    if (h != nullptr) {
      h->on_collective(rank_, conf_seq_++,
                       check::CollectiveRecord{kind, root, elem, count});
    }
  }

  /// Collective-internal tags live above the user tag space.
  static int coll_tag(int seq, int step) {
    return kCollectiveTagBit | ((seq & 0x3FFFFF) << 8) | (step & 0xFF);
  }

  /// hpfcg::race hook: flag point-to-point messages still pending in this
  /// rank's mailbox as it enters a fence-class collective (`what`), when
  /// their sends are not ordered before the fence.  Side channel — never
  /// sends, never touches Stats.
  void race_fence(const char* what) {
    race::Detector* d = rt_.racer();
    if (d == nullptr || !d->detecting()) return;
    const auto pending = rt_.mailbox(rank_).pending_user_stamps();
    if (!pending.empty()) d->on_fence(rank_, what, pending);
  }

  void send_bytes(int dst, int tag, const void* data, std::size_t bytes) {
    HPFCG_REQUIRE(dst >= 0 && dst < nprocs(), "send: bad destination rank");
    trace::SpanScope span(trace_, trace::SpanKind::kSend,
                          static_cast<std::uint32_t>(dst), bytes);
    // Draw the envelope from the destination's freelist: small payloads are
    // stored inline, larger ones reuse a recycled buffer when one exists.
    Envelope env = rt_.mailbox(dst).make_envelope(rank_, tag, bytes);
    if (bytes > 0) std::memcpy(env.data(), data, bytes);
    if (race::Detector* d = rt_.racer()) d->on_send(rank_, env.race_stamp);
    auto& s = stats();
    ++s.messages_sent;
    s.bytes_sent += bytes;
    switch (env.path()) {
      case EnvelopePath::kInline: ++s.envelopes_inline; break;
      case EnvelopePath::kPooled: ++s.envelopes_pooled; break;
      case EnvelopePath::kHeap: ++s.envelopes_heap; break;
    }
    span.set_aux(static_cast<std::uint8_t>(env.path()));
    if (dst != rank_) s.modeled_comm_seconds += cost().params().t_startup;
    rt_.mailbox(dst).deposit(std::move(env));
    check::Harness* h = rt_.checker();
    if (h != nullptr) h->note_progress();
  }

  Envelope recv_bytes(int src, int tag, int* src_out = nullptr) {
    trace::SpanScope span(trace_, trace::SpanKind::kRecv,
                          src == kAnySource ? 0xFFFFFFFFu
                                            : static_cast<std::uint32_t>(src));
    check::Harness* h = rt_.checker();
    if (h != nullptr) h->begin_wait(rank_, check::WaitKind::kRecv, src, tag);
    Envelope env = rt_.mailbox(rank_).receive(src, tag);
    if (h != nullptr) h->end_wait(rank_);
    if (race::Detector* d = rt_.racer()) {
      d->on_receive(rank_, env.src, env.race_stamp);
    }
    auto& s = stats();
    ++s.messages_received;
    s.bytes_received += env.size();
    if (env.src != rank_) {
      s.modeled_comm_seconds +=
          cost().hops(env.src, rank_) * cost().params().t_hop +
          static_cast<double>(env.size()) * cost().params().t_comm;
    }
    span.set_peer(static_cast<std::uint32_t>(env.src));
    span.set_bytes(env.size());
    span.set_aux(static_cast<std::uint8_t>(env.path()));
    if (src_out != nullptr) *src_out = env.src;
    return env;
  }

  Runtime& rt_;
  int rank_;
  trace::RankTrace* trace_;
  std::vector<std::byte> coll_scratch_;
  std::uint64_t coll_scratch_allocations_ = 0;
  int coll_seq_ = 0;
  /// Conformance-relevant op count (collectives + barriers), advanced only
  /// while a check harness is attached; independent of the tag space.
  std::uint64_t conf_seq_ = 0;
};

}  // namespace hpfcg::msg
