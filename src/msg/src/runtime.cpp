#include "hpfcg/msg/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::msg {

Runtime::Runtime(int nprocs, CostParams params, Topology topo)
    : nprocs_(nprocs), cost_(params, topo, nprocs), stats_(nprocs) {
  HPFCG_REQUIRE(nprocs >= 1, "Runtime needs at least one processor");
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>(nprocs));
  }
  if (check::kCompiled && check::enabled()) {
    checker_ = std::make_unique<check::Harness>(nprocs);
  }
  if (trace::kCompiled && trace::enabled()) {
    tracer_ = std::make_unique<trace::Session>(nprocs, trace::ring_capacity());
  }
  repro_ = repro::kCompiled && repro::enabled();
  if (race::kCompiled && (race::enabled() || race::replay_seed() != 0)) {
    racer_ = std::make_unique<race::Detector>(nprocs, race::enabled(),
                                              race::replay_seed(),
                                              checker_.get());
    for (int r = 0; r < nprocs; ++r) {
      mailboxes_[static_cast<std::size_t>(r)]->set_race(racer_.get(), r);
    }
  }
}

void Runtime::run(const std::function<void(Process&)>& body) {
  HPFCG_REQUIRE(!aborted_, "Runtime was aborted by a previous failure");

  running_.store(true, std::memory_order_release);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nprocs_; ++r) {
    threads.emplace_back([this, r, &body, &err_mu, &first_error] {
      Process proc(*this, r);
      try {
        body(proc);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        abort_all();
      }
    });
  }

  // Deadlock watchdog (checking only): when the machine stops making
  // progress while at least one rank is blocked, dump the per-rank wait-for
  // state and abort instead of hanging forever.  A condition variable (not
  // a plain sleep) lets run() return the moment the workers finish instead
  // of waiting out the poll interval.
  std::exception_ptr watchdog_error;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool workers_done = false;  // guarded by wd_mu
  std::thread watchdog;
  if (checker() != nullptr) {
    watchdog = std::thread([this, &wd_mu, &wd_cv, &workers_done,
                            &watchdog_error] {
      using clock = std::chrono::steady_clock;
      check::Harness& h = *checker();
      std::uint64_t last_epoch = h.epoch();
      clock::time_point last_change = clock::now();
      std::unique_lock<std::mutex> lock(wd_mu);
      while (!workers_done) {
        const auto timeout =
            std::chrono::milliseconds(check::watchdog_timeout_ms());
        wd_cv.wait_for(lock,
                       std::min<std::chrono::milliseconds>(
                           std::chrono::milliseconds(50),
                           timeout / 4 + std::chrono::milliseconds(1)));
        if (workers_done) break;
        const std::uint64_t e = h.epoch();
        if (e != last_epoch) {
          last_epoch = e;
          last_change = clock::now();
          continue;
        }
        if (h.anyone_waiting() && clock::now() - last_change >= timeout) {
          std::ostringstream os;
          os << "hpfcg::check: no progress for " << check::watchdog_timeout_ms()
             << " ms with blocked processors — suspected deadlock; "
                "per-rank wait-for state:\n"
             << h.dump_wait_state();
          watchdog_error = std::make_exception_ptr(util::Error(os.str()));
          abort_all();
          return;
        }
      }
    });
  }

  for (auto& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(wd_mu);
    workers_done = true;
  }
  wd_cv.notify_all();
  if (watchdog.joinable()) watchdog.join();

  running_.store(false, std::memory_order_release);

  // The watchdog's diagnosis is the root cause: the per-rank errors it
  // provoked by aborting ("runtime aborted while receiving") are secondary.
  if (watchdog_error) std::rethrow_exception(watchdog_error);
  if (first_error) std::rethrow_exception(first_error);

  audit_teardown();
}

void Runtime::audit_teardown() const {
  // A correct SPMD program leaves no message in flight.
  if (checker() == nullptr) {
    for (int r = 0; r < nprocs_; ++r) {
      HPFCG_REQUIRE(mailboxes_[static_cast<std::size_t>(r)]->pending() == 0,
                    "unreceived messages left in mailbox of rank " +
                        std::to_string(r));
    }
    return;
  }

  // Checking: enumerate every leftover (sender, tag, size) and any recorded
  // non-throwing violations, so the diagnostic names the offending ranks.
  std::ostringstream os;
  bool failed = false;
  for (int r = 0; r < nprocs_; ++r) {
    const auto left = mailboxes_[static_cast<std::size_t>(r)]->pending_info();
    if (left.empty()) continue;
    failed = true;
    os << "  rank " << r << " mailbox holds " << left.size()
       << " unreceived message(s):";
    for (const auto& m : left) {
      os << " [from rank " << m.src << ", tag " << m.tag << ", " << m.bytes
         << " bytes]";
    }
    os << '\n';
  }
  for (const auto& v : checker()->violations()) {
    failed = true;
    os << "  violation: " << v << '\n';
  }
  if (failed) {
    throw util::Error("hpfcg::check: teardown audit failed:\n" + os.str());
  }
}

const Stats& Runtime::stats(int rank) const {
  HPFCG_REQUIRE(rank >= 0 && rank < nprocs_, "stats: rank out of range");
  HPFCG_REQUIRE(!running_.load(std::memory_order_acquire),
                "stats: cross-rank aggregation during run() — Stats is "
                "per-rank by design; synchronize (join/barrier) first");
  return stats_[static_cast<std::size_t>(rank)];
}

Stats Runtime::total_stats() const {
  HPFCG_REQUIRE(!running_.load(std::memory_order_acquire),
                "total_stats: aggregation during run() — Stats is per-rank "
                "by design; synchronize (join/barrier) first");
  Stats total;
  for (const auto& s : stats_) total += s;
  return total;
}

double Runtime::modeled_makespan() const {
  HPFCG_REQUIRE(!running_.load(std::memory_order_acquire),
                "modeled_makespan: aggregation during run() — synchronize "
                "(join/barrier) first");
  double m = 0.0;
  for (const auto& s : stats_) m = std::max(m, s.modeled_seconds());
  return m;
}

void Runtime::reset_stats() {
  HPFCG_REQUIRE(!running_.load(std::memory_order_acquire),
                "reset_stats: cannot reset while a run is in flight");
  for (auto& s : stats_) s.reset();
}

Mailbox& Runtime::mailbox(int rank) {
  HPFCG_REQUIRE(rank >= 0 && rank < nprocs_, "mailbox: rank out of range");
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

Stats& Runtime::stats_mutable(int rank) {
  return stats_[static_cast<std::size_t>(rank)];
}

void Runtime::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  if (aborted_) throw util::Error("msg runtime aborted at barrier");
  const unsigned long my_generation = barrier_generation_;
  if (++barrier_count_ == nprocs_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    lock.unlock();
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return aborted_ || barrier_generation_ != my_generation;
  });
  if (barrier_generation_ == my_generation) {
    throw util::Error("msg runtime aborted at barrier");
  }
}

void Runtime::abort_all() {
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    aborted_ = true;
  }
  barrier_cv_.notify_all();
  for (auto& mb : mailboxes_) mb->abort();
}

std::unique_ptr<Runtime> spmd_run(int nprocs,
                                  const std::function<void(Process&)>& body,
                                  CostParams params, Topology topo) {
  auto rt = std::make_unique<Runtime>(nprocs, params, topo);
  rt->run(body);
  return rt;
}

}  // namespace hpfcg::msg
