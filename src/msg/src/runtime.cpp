#include "hpfcg/msg/runtime.hpp"

#include <thread>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::msg {

Runtime::Runtime(int nprocs, CostParams params, Topology topo)
    : nprocs_(nprocs), cost_(params, topo, nprocs), stats_(nprocs) {
  HPFCG_REQUIRE(nprocs >= 1, "Runtime needs at least one processor");
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Runtime::run(const std::function<void(Process&)>& body) {
  HPFCG_REQUIRE(!aborted_, "Runtime was aborted by a previous failure");

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nprocs_; ++r) {
    threads.emplace_back([this, r, &body, &err_mu, &first_error] {
      Process proc(*this, r);
      try {
        body(proc);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);

  // A correct SPMD program leaves no message in flight.
  for (int r = 0; r < nprocs_; ++r) {
    HPFCG_REQUIRE(mailboxes_[static_cast<std::size_t>(r)]->pending() == 0,
                  "unreceived messages left in mailbox of rank " +
                      std::to_string(r));
  }
}

const Stats& Runtime::stats(int rank) const {
  HPFCG_REQUIRE(rank >= 0 && rank < nprocs_, "stats: rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

Stats Runtime::total_stats() const {
  Stats total;
  for (const auto& s : stats_) total += s;
  return total;
}

double Runtime::modeled_makespan() const {
  double m = 0.0;
  for (const auto& s : stats_) m = std::max(m, s.modeled_seconds());
  return m;
}

void Runtime::reset_stats() {
  for (auto& s : stats_) s.reset();
}

Mailbox& Runtime::mailbox(int rank) {
  HPFCG_REQUIRE(rank >= 0 && rank < nprocs_, "mailbox: rank out of range");
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

Stats& Runtime::stats_mutable(int rank) {
  return stats_[static_cast<std::size_t>(rank)];
}

void Runtime::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  if (aborted_) throw util::Error("msg runtime aborted at barrier");
  const unsigned long my_generation = barrier_generation_;
  if (++barrier_count_ == nprocs_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    lock.unlock();
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return aborted_ || barrier_generation_ != my_generation;
  });
  if (barrier_generation_ == my_generation) {
    throw util::Error("msg runtime aborted at barrier");
  }
}

void Runtime::abort_all() {
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    aborted_ = true;
  }
  barrier_cv_.notify_all();
  for (auto& mb : mailboxes_) mb->abort();
}

std::unique_ptr<Runtime> spmd_run(int nprocs,
                                  const std::function<void(Process&)>& body,
                                  CostParams params, Topology topo) {
  auto rt = std::make_unique<Runtime>(nprocs, params, topo);
  rt->run(body);
  return rt;
}

}  // namespace hpfcg::msg
