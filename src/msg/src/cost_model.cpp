#include "hpfcg/msg/cost_model.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>

#include "hpfcg/util/error.hpp"

namespace hpfcg::msg {

std::string topology_name(Topology t) {
  switch (t) {
    case Topology::kHypercube:
      return "hypercube";
    case Topology::kRing:
      return "ring";
    case Topology::kMesh2D:
      return "mesh2d";
    case Topology::kFullyConnected:
      return "crossbar";
  }
  return "unknown";
}

CostModel::CostModel(CostParams params, Topology topo, int nprocs)
    : params_(params), topo_(topo), nprocs_(nprocs) {
  HPFCG_REQUIRE(nprocs >= 1, "cost model needs at least one processor");
  // Choose the most-square factorization for the 2-D mesh.
  mesh_cols_ = 1;
  for (int c = 1; c * c <= nprocs; ++c) {
    if (nprocs % c == 0) mesh_cols_ = c;
  }
}

int CostModel::hops(int src, int dst) const {
  HPFCG_REQUIRE(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_,
                "rank out of range in hop computation");
  if (src == dst) return 0;
  switch (topo_) {
    case Topology::kHypercube:
      return std::popcount(static_cast<unsigned>(src ^ dst));
    case Topology::kRing: {
      const int d = std::abs(src - dst);
      return std::min(d, nprocs_ - d);
    }
    case Topology::kMesh2D: {
      const int cols = mesh_cols_;
      const int r1 = src / cols, c1 = src % cols;
      const int r2 = dst / cols, c2 = dst % cols;
      return std::abs(r1 - r2) + std::abs(c1 - c2);
    }
    case Topology::kFullyConnected:
      return 1;
  }
  return 1;
}

double CostModel::message_time(int src, int dst, std::size_t bytes) const {
  if (src == dst) return 0.0;  // local "copy": modelled as free
  return params_.t_startup + hops(src, dst) * params_.t_hop +
         static_cast<double>(bytes) * params_.t_comm;
}

int CostModel::log2_ceil_procs() const {
  int l = 0;
  while ((1 << l) < nprocs_) ++l;
  return l;
}

double CostModel::broadcast_time(std::size_t bytes) const {
  const int steps = log2_ceil_procs();
  return steps * (params_.t_startup + params_.t_hop +
                  static_cast<double>(bytes) * params_.t_comm);
}

double CostModel::reduce_time(std::size_t bytes) const {
  return broadcast_time(bytes);  // mirrored tree
}

double CostModel::allreduce_time(std::size_t bytes) const {
  return reduce_time(bytes) + broadcast_time(bytes);
}

double CostModel::allreduce_batch_time(std::size_t k,
                                       std::size_t elem_bytes) const {
  return allreduce_time(k * elem_bytes);
}

double CostModel::batch_startup_savings(std::size_t k) const {
  if (k < 2) return 0.0;
  return static_cast<double>(k - 1) * 2.0 * log2_ceil_procs() *
         params_.t_startup;
}

double CostModel::allgather_time(std::size_t bytes_per_rank) const {
  if (nprocs_ == 1) return 0.0;
  if (topo_ == Topology::kHypercube &&
      std::has_single_bit(static_cast<unsigned>(nprocs_))) {
    // Recursive doubling: log P steps, doubling payload each step.  Total
    // data moved per rank is (P-1)*m, start-ups are log P — this is the
    // paper's  t_startup * log N_P + t_comm * n/N_P * (N_P - 1)  form.
    const int steps = log2_ceil_procs();
    double t = 0.0;
    std::size_t chunk = bytes_per_rank;
    for (int s = 0; s < steps; ++s) {
      t += params_.t_startup + params_.t_hop +
           static_cast<double>(chunk) * params_.t_comm;
      chunk *= 2;
    }
    return t;
  }
  // Ring algorithm: P-1 equal steps.
  return (nprocs_ - 1) * (params_.t_startup + params_.t_hop +
                          static_cast<double>(bytes_per_rank) * params_.t_comm);
}

double CostModel::barrier_time() const { return allreduce_time(0); }

double CostModel::halo_exchange_time(std::size_t neighbors,
                                     std::size_t bytes) const {
  return static_cast<double>(neighbors) * (params_.t_startup + params_.t_hop) +
         static_cast<double>(bytes) * params_.t_comm;
}

double CostModel::repro_allreduce_time(std::size_t k, std::size_t acc_bytes,
                                       std::size_t merge_flops) const {
  return allreduce_batch_time(k, acc_bytes) +
         static_cast<double>(log2_ceil_procs()) *
             compute_time(k * merge_flops);
}

}  // namespace hpfcg::msg
