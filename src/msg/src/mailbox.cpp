#include "hpfcg/msg/mailbox.hpp"

#include "hpfcg/util/error.hpp"

namespace hpfcg::msg {

void Mailbox::deposit(Envelope env) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(env));
  }
  cv_.notify_all();
}

bool Mailbox::match_locked(int src, int tag, Envelope& out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((src == kAnySource || it->src == src) && it->tag == tag) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

Envelope Mailbox::receive(int src, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  Envelope out;
  bool matched = false;
  cv_.wait(lock, [&] {
    matched = match_locked(src, tag, out);
    return matched || aborted_;
  });
  if (!matched) {
    throw util::Error("msg runtime aborted while receiving");
  }
  return out;
}

bool Mailbox::try_receive(int src, int tag, Envelope& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) throw util::Error("msg runtime aborted while receiving");
  return match_locked(src, tag, out);
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::vector<Mailbox::PendingInfo> Mailbox::pending_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingInfo> out;
  out.reserve(queue_.size());
  for (const auto& env : queue_) {
    out.push_back(PendingInfo{env.src, env.tag, env.payload.size()});
  }
  return out;
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

}  // namespace hpfcg::msg
