#include "hpfcg/msg/mailbox.hpp"

#include <algorithm>
#include <atomic>

#include "hpfcg/race/detector.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::msg {

namespace {
std::atomic<bool> g_pooling{true};
std::atomic<bool> g_inline{true};
std::atomic<std::size_t> g_max_pooled{64};
}  // namespace

void set_buffer_pooling(bool on) {
  g_pooling.store(on, std::memory_order_relaxed);
}
bool buffer_pooling() { return g_pooling.load(std::memory_order_relaxed); }
void set_inline_payloads(bool on) {
  g_inline.store(on, std::memory_order_relaxed);
}
bool inline_payloads() { return g_inline.load(std::memory_order_relaxed); }
void set_max_pooled_buffers(std::size_t n) {
  g_max_pooled.store(n, std::memory_order_relaxed);
}
std::size_t max_pooled_buffers() {
  return g_max_pooled.load(std::memory_order_relaxed);
}

// ---- Envelope -----------------------------------------------------------

void Envelope::resize_payload(std::size_t bytes) {
  size_ = bytes;
  if (bytes <= kInlineCapacity && inline_payloads()) {
    stored_inline_ = true;
    path_ = EnvelopePath::kInline;
    return;
  }
  stored_inline_ = false;
  path_ = EnvelopePath::kHeap;
  if (heap_.size() < bytes) heap_.resize(bytes);
}

void Envelope::adopt_heap(std::vector<std::byte>&& buf, std::size_t bytes) {
  heap_ = std::move(buf);
  if (heap_.size() < bytes) heap_.resize(bytes);
  size_ = bytes;
  stored_inline_ = false;
  path_ = EnvelopePath::kPooled;
}

std::vector<std::byte> Envelope::release_heap() {
  size_ = 0;
  stored_inline_ = true;
  path_ = EnvelopePath::kInline;
  return std::move(heap_);
}

// ---- Mailbox ------------------------------------------------------------

Mailbox::Mailbox(int nprocs)
    : shards_(static_cast<std::size_t>(nprocs > 0 ? nprocs : 1)) {}

Envelope Mailbox::make_envelope(int src, int tag, std::size_t bytes) {
  Envelope env;
  env.src = src;
  env.tag = tag;
  if (bytes <= Envelope::kInlineCapacity && inline_payloads()) {
    env.resize_payload(bytes);  // inline: no pool, no heap
    return env;
  }
  if (buffer_pooling()) {
    std::vector<std::byte> buf;
    bool drew = false;
    {
      // Lock only for the swap; a possible resize of the drawn buffer (and
      // the fresh allocation on the exhausted path below) happens unlocked.
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (!pool_.empty()) {
        buf = std::move(pool_.back());
        pool_.pop_back();
        drew = true;
      }
    }
    if (drew) {
      env.adopt_heap(std::move(buf), bytes);
      return env;
    }
  }
  // Pool exhausted (or pooling off): fall back to a fresh tracked heap
  // buffer.  Bounded by construction — it is owned by this one envelope and
  // recycle() frees it rather than growing the pool past its cap.
  env.resize_payload(bytes);
  return env;
}

void Mailbox::deposit(Envelope env) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto shard = static_cast<std::size_t>(env.src);
    HPFCG_REQUIRE(shard < shards_.size(), "deposit: bad source rank");
    env.seq = next_seq_++;
    shards_[shard].push_back(std::move(env));
  }
  cv_.notify_all();
}

bool Mailbox::match_locked(int src, int tag, Envelope& out) {
  if (src != kAnySource) {
    const auto shard = static_cast<std::size_t>(src);
    HPFCG_REQUIRE(shard < shards_.size(), "receive: bad source rank");
    auto& q = shards_[shard];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->tag == tag) {  // first match = oldest from src (FIFO per src,tag)
        out = std::move(*it);
        q.erase(it);
        return true;
      }
    }
    return false;
  }
  // Any-source: each shard is in deposit order, so its first tag match is
  // that source's oldest candidate; the lowest arrival stamp among those is
  // the globally oldest match — exactly the single-queue FIFO semantics,
  // without walking past already-inspected non-matching traffic of every
  // other source.
  std::deque<Envelope>* best_q = nullptr;
  std::deque<Envelope>::iterator best_it;
  if (race_ != nullptr) {
    // Detector attached: hand it the full candidate set (one head per
    // source shard) so it can flag concurrent pairs and, under replay,
    // perturb the choice.  Per-(src,tag) FIFO is preserved by construction
    // because only shard heads are eligible.  Without replay the detector
    // picks the lowest arrival stamp — bit-identical to the plain path.
    std::vector<std::deque<Envelope>::iterator> heads;
    std::vector<race::Detector::Candidate> cands;
    for (auto& q : shards_) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->tag != tag) continue;
        heads.push_back(it);
        cands.push_back(race::Detector::Candidate{it->src, it->seq,
                                                  &it->race_stamp});
        break;  // later entries in this shard are newer
      }
    }
    if (heads.empty()) return false;
    const std::size_t pick = race_->choose_wildcard(race_owner_, tag, cands);
    best_it = heads[pick];
    best_q = &shards_[static_cast<std::size_t>(best_it->src)];
  } else {
    for (auto& q : shards_) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->tag != tag) continue;
        if (best_q == nullptr || it->seq < best_it->seq) {
          best_q = &q;
          best_it = it;
        }
        break;  // later entries in this shard are newer
      }
    }
    if (best_q == nullptr) return false;
  }
  out = std::move(*best_it);
  best_q->erase(best_it);
  return true;
}

Envelope Mailbox::receive(int src, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  Envelope out;
  bool matched = false;
  cv_.wait(lock, [&] {
    matched = match_locked(src, tag, out);
    return matched || aborted_;
  });
  if (!matched) {
    throw util::Error("msg runtime aborted while receiving");
  }
  return out;
}

bool Mailbox::try_receive(int src, int tag, Envelope& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) throw util::Error("msg runtime aborted while receiving");
  return match_locked(src, tag, out);
}

void Mailbox::recycle(Envelope&& env) {
  if (env.stored_inline() || !buffer_pooling()) return;
  std::vector<std::byte> buf = env.release_heap();
  if (buf.capacity() == 0) return;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.size() < max_pooled_buffers()) pool_.push_back(std::move(buf));
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& q : shards_) n += q.size();
  return n;
}

std::size_t Mailbox::pooled_buffers() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_.size();
}

std::vector<Mailbox::PendingInfo> Mailbox::pending_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Report in deposit order (by arrival stamp) so diagnostics stay stable
  // across the sharded layout.
  std::vector<const Envelope*> left;
  for (const auto& q : shards_) {
    for (const auto& env : q) left.push_back(&env);
  }
  std::sort(left.begin(), left.end(),
            [](const Envelope* a, const Envelope* b) { return a->seq < b->seq; });
  std::vector<PendingInfo> out;
  out.reserve(left.size());
  for (const Envelope* env : left) {
    out.push_back(PendingInfo{env->src, env->tag, env->size()});
  }
  return out;
}

void Mailbox::set_race(race::Detector* det, int owner) {
  std::lock_guard<std::mutex> lock(mu_);
  race_ = det;
  race_owner_ = owner;
}

std::vector<race::StampedMessage> Mailbox::pending_user_stamps() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Envelope*> left;
  for (const auto& q : shards_) {
    for (const auto& env : q) {
      if ((env.tag & kCollectiveTagBit) == 0) left.push_back(&env);
    }
  }
  std::sort(left.begin(), left.end(),
            [](const Envelope* a, const Envelope* b) { return a->seq < b->seq; });
  std::vector<race::StampedMessage> out;
  out.reserve(left.size());
  for (const Envelope* env : left) {
    out.push_back(race::StampedMessage{env->src, env->tag, env->race_stamp});
  }
  return out;
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

}  // namespace hpfcg::msg
