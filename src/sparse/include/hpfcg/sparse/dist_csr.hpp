#pragma once
// Distributed CSR matrix — the paper's Scenario 1 (row-wise partitioning)
// for sparse storage, Figure 2 / Section 4.
//
// Rows are distributed by `row_dist` (the alignment target of the q vector)
// and the nnz arrays (a, col) by `nnz_dist`.  HPF-1 can only express
// regular distributions of the nnz arrays, e.g. `DISTRIBUTE col(BLOCK)`,
// whose boundaries ignore row structure — rows straddling a cut need their
// missing (col, a) elements fetched every sweep (NnzExchangePlan).  The
// paper's proposed ATOM:BLOCK distribution (ext/atom_partition.hpp) makes
// the two distributions row-aligned so the fetch disappears; its proposed
// SPARSE_MATRIX descriptor lets the compiler cache the fetched entries
// (enable_caching()), since the trio is known immutable.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hpfcg/check/check.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/sparse/halo.hpp"
#include "hpfcg/sparse/nnz_exchange.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

template <class T>
class DistCsr {
 public:
  /// Collective build from a replicated matrix: each rank keeps only its
  /// owned rows' pointers and its owned nnz slice.
  DistCsr(msg::Process& proc, const Csr<T>& a, hpf::DistPtr row_dist,
          hpf::DistPtr nnz_dist)
      : proc_(&proc),
        row_dist_(std::move(row_dist)),
        nnz_dist_(std::move(nnz_dist)),
        n_(a.n_rows()),
        plan_(proc, a.row_ptr(), *row_dist_, *nnz_dist_) {
    HPFCG_REQUIRE(a.n_rows() == a.n_cols(),
                  "DistCsr: square matrices only (CG context)");
    HPFCG_REQUIRE(row_dist_->size() == n_, "DistCsr: row dist size mismatch");
    HPFCG_REQUIRE(nnz_dist_->size() == a.nnz(),
                  "DistCsr: nnz dist size mismatch");

    // Checking only: every rank builds `a` locally, so rank-divergent
    // assembly (an SPMD bug) silently computes with different matrices.
    // Conform a content fingerprint so the divergent rank is named instead.
    if (proc.checking_active()) {
      proc.conform_replicated(structure_fingerprint(a));
    }

    const auto [row_lo, row_hi] = row_dist_->local_range(proc.rank());
    row_lo_ = row_lo;
    row_ptr_.assign(a.row_ptr().begin() + static_cast<std::ptrdiff_t>(row_lo),
                    a.row_ptr().begin() + static_cast<std::ptrdiff_t>(row_hi) +
                        1);

    const auto own = plan_.owned();
    col_o_.assign(a.col_idx().begin() + static_cast<std::ptrdiff_t>(own.begin),
                  a.col_idx().begin() + static_cast<std::ptrdiff_t>(own.end));
    val_o_.assign(a.values().begin() + static_cast<std::ptrdiff_t>(own.begin),
                  a.values().begin() + static_cast<std::ptrdiff_t>(own.end));

    const auto need = plan_.needed();
    col_w_.assign(need.size(), 0);
    val_w_.assign(need.size(), T{});
  }

  /// Atom-aligned build: nnz cut points derived from the row cut points, so
  /// each row's entries live with its owner — the ATOM:BLOCK semantics.
  static DistCsr row_aligned(msg::Process& proc, const Csr<T>& a,
                             hpf::DistPtr row_dist) {
    HPFCG_REQUIRE(row_dist->contiguous(),
                  "row_aligned: row distribution must be contiguous");
    std::vector<std::size_t> cuts(static_cast<std::size_t>(row_dist->nprocs()) +
                                  1);
    for (int r = 0; r <= row_dist->nprocs(); ++r) {
      const std::size_t row_cut =
          r == row_dist->nprocs() ? a.n_rows()
                                  : row_dist->local_range(r).first;
      cuts[static_cast<std::size_t>(r)] = a.row_ptr()[row_cut];
    }
    auto nnz_dist = std::make_shared<const hpf::Distribution>(
        hpf::Distribution::from_cuts(a.nnz(), std::move(cuts)));
    return DistCsr(proc, a, std::move(row_dist), std::move(nnz_dist));
  }

  /// Collective build where only `root` holds the assembled matrix (the
  /// realistic I/O path: root parses a file, slices travel once).  Always
  /// row-aligned.  `a` is read only on root; other ranks may pass any
  /// matrix (ignored).  `row_dist` must be contiguous.
  static DistCsr scatter_from_root(msg::Process& proc, int root,
                                   const Csr<T>& a, hpf::DistPtr row_dist) {
    HPFCG_REQUIRE(row_dist->contiguous(),
                  "scatter_from_root: row distribution must be contiguous");
    const int np = proc.nprocs();
    constexpr int kTag = 0x2300;

    // Root derives and broadcasts the nnz cut points (the replicated
    // "small array in the size of the number of processors").
    std::vector<std::size_t> cuts(static_cast<std::size_t>(np) + 1, 0);
    if (proc.rank() == root) {
      HPFCG_REQUIRE(a.n_rows() == row_dist->size(),
                    "scatter_from_root: matrix and distribution disagree");
      for (int r = 0; r < np; ++r) {
        cuts[static_cast<std::size_t>(r)] =
            a.row_ptr()[row_dist->local_range(r).first];
      }
      cuts.back() = a.nnz();
    }
    proc.broadcast_into<std::size_t>(root,
                                     std::span<std::size_t>(cuts));

    DistCsr out(proc, std::move(row_dist),
                hpf::Distribution::from_cuts(cuts.back(), cuts));

    // Ship each rank its slices: row_ptr (global k values), col, a.
    if (proc.rank() == root) {
      for (int r = 0; r < np; ++r) {
        const auto [lo, hi] = out.row_dist_->local_range(r);
        const auto ur = static_cast<std::size_t>(r);
        const std::span<const std::size_t> rp(a.row_ptr().data() + lo,
                                              hi - lo + 1);
        const std::span<const std::size_t> cols(
            a.col_idx().data() + cuts[ur], cuts[ur + 1] - cuts[ur]);
        const std::span<const T> vals(a.values().data() + cuts[ur],
                                      cuts[ur + 1] - cuts[ur]);
        if (r == root) {
          out.row_ptr_.assign(rp.begin(), rp.end());
          out.col_o_.assign(cols.begin(), cols.end());
          out.val_o_.assign(vals.begin(), vals.end());
        } else {
          proc.send<std::size_t>(r, kTag, rp);
          proc.send<std::size_t>(r, kTag + 1, cols);
          proc.send<T>(r, kTag + 2, vals);
        }
      }
    } else {
      out.row_ptr_ = proc.recv<std::size_t>(root, kTag);
      out.col_o_ = proc.recv<std::size_t>(root, kTag + 1);
      out.val_o_ = proc.recv<T>(root, kTag + 2);
    }
    out.col_w_ = out.col_o_;
    out.val_w_ = out.val_o_;
    out.assembled_ = true;
    out.caching_ = true;  // aligned: the work window never changes
    return out;
  }

  /// Collective build from per-rank row slices — the migration path of
  /// REDISTRIBUTE (sparse/redistribute.hpp).  Each rank passes the lengths
  /// of its `row_dist->local_count()` rows plus their concatenated (col, a)
  /// entries; the nnz cut points are derived with one allgatherv and the
  /// result is row-aligned with caching on.  The new ownership map is
  /// registered with the check ledger (a rank that migrated a different
  /// layout is named instead of silently computing on skewed cuts).
  static DistCsr from_local_rows(msg::Process& proc, hpf::DistPtr row_dist,
                                 const std::vector<std::size_t>& row_lens,
                                 std::vector<std::size_t> col,
                                 std::vector<T> val) {
    HPFCG_REQUIRE(row_dist->contiguous(),
                  "from_local_rows: row distribution must be contiguous");
    const int np = proc.nprocs();
    const int me = proc.rank();
    HPFCG_REQUIRE(row_lens.size() == row_dist->local_count(me),
                  "from_local_rows: need one length per owned row on rank " +
                      std::to_string(me));
    std::size_t mine = 0;
    for (const std::size_t len : row_lens) mine += len;
    HPFCG_REQUIRE(mine == col.size() && col.size() == val.size(),
                  "from_local_rows: row lengths disagree with entry arrays "
                  "on rank " + std::to_string(me));

    // Replicate per-rank nnz counts, then prefix-sum into the new nnz cut
    // points (the "small array in the size of the number of processors").
    std::vector<std::size_t> per_rank;
    proc.allgatherv<std::size_t>(
        std::span<const std::size_t>(&mine, 1), per_rank,
        std::vector<std::size_t>(static_cast<std::size_t>(np), 1));
    std::vector<std::size_t> nnz_cuts(static_cast<std::size_t>(np) + 1, 0);
    std::partial_sum(per_rank.begin(), per_rank.end(), nnz_cuts.begin() + 1);

    DistCsr out(proc, std::move(row_dist),
                hpf::Distribution::from_cuts(nnz_cuts.back(), nnz_cuts));
    out.row_ptr_.resize(row_lens.size() + 1);
    out.row_ptr_[0] = nnz_cuts[static_cast<std::size_t>(me)];
    for (std::size_t lr = 0; lr < row_lens.size(); ++lr) {
      out.row_ptr_[lr + 1] = out.row_ptr_[lr] + row_lens[lr];
    }
    out.col_o_ = std::move(col);
    out.val_o_ = std::move(val);
    out.col_w_ = out.col_o_;
    out.val_w_ = out.val_o_;
    out.assembled_ = true;
    out.caching_ = true;  // aligned: the work window never changes

    if (proc.checking_active()) {
      proc.conform_replicated(
          ownership_fingerprint(out.row_dist(), nnz_cuts));
    }
    return out;
  }

  [[nodiscard]] msg::Process& proc() const { return *proc_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] const hpf::Distribution& row_dist() const {
    return *row_dist_;
  }
  [[nodiscard]] const hpf::DistPtr& row_dist_ptr() const { return row_dist_; }
  [[nodiscard]] const hpf::Distribution& nnz_dist() const {
    return *nnz_dist_;
  }
  [[nodiscard]] const hpf::DistPtr& nnz_dist_ptr() const { return nnz_dist_; }

  /// My rows' pointer slice — local_rows()+1 global k values.
  [[nodiscard]] std::span<const std::size_t> local_row_ptr() const {
    return {row_ptr_.data(), row_ptr_.size()};
  }

  /// The (col, a) window covering exactly this rank's rows, assembling it
  /// first if stale (collective in that case — call on every rank).  Entries
  /// of local row lr sit at [row_ptr[lr] - row_ptr[0], row_ptr[lr+1] -
  /// row_ptr[0]) within the spans.
  std::pair<std::span<const std::size_t>, std::span<const T>>
  assembled_window() {
    assemble();
    return {std::span<const std::size_t>(col_w_.data(), col_w_.size()),
            std::span<const T>(val_w_.data(), val_w_.size())};
  }
  [[nodiscard]] std::size_t local_rows() const {
    return row_ptr_.size() - 1;
  }
  [[nodiscard]] std::size_t local_nnz() const { return val_o_.size(); }

  /// Entries fetched from other ranks per (uncached) sweep.
  [[nodiscard]] std::size_t remote_nnz() const { return plan_.remote_nnz(); }

  /// SPARSE_MATRIX-descriptor semantics: the trio is declared immutable, so
  /// fetched entries are cached after the first sweep instead of re-fetched
  /// every time.
  void enable_caching() { caching_ = true; }

  /// q = A * p.  Both vectors must be distributed like the rows.
  /// Default path (HPFCG_HALO on): the cached HaloPlan executor — exchange
  /// only the O(boundary) ghost entries this rank's columns touch, then
  /// sweep through the [owned | ghost] compact numbering.  Legacy path
  /// (HPFCG_HALO=0): one all-to-all broadcast of p (Scenario 1 as HPF-1
  /// lowers it).  Both paths accumulate each row's entries in identical k
  /// order, so their results are bit-identical.
  void matvec(const hpf::DistributedVector<T>& p,
              hpf::DistributedVector<T>& q) {
    check_vectors(p, q);
    if (use_halo()) {
      assemble();
      audit_structure();
      ensure_halo();
      const std::size_t nl = local_rows();
      x_halo_.resize(nl + halo_.n_ghosts());
      std::copy(p.local().begin(), p.local().end(), x_halo_.begin());
      halo_.exchange<T>(*proc_, p.local(),
                        std::span<T>(x_halo_).subspan(nl), halo_pack_);
      const std::size_t base = plan_.needed().begin;
      auto ql = q.local();
      std::size_t flops = 0;
      for (std::size_t lr = 0; lr < nl; ++lr) {
        T acc{};
        const std::size_t lo = row_ptr_[lr];
        const std::size_t hi = row_ptr_[lr + 1];
        for (std::size_t k = lo; k < hi; ++k) {
          acc += val_w_[k - base] * x_halo_[col_local_[k - base]];
        }
        ql[lr] = acc;
        flops += 2 * (hi - lo);
      }
      proc_->add_flops(flops);
      return;
    }
    const std::vector<T> full_p = p.to_global();
    assemble();
    audit_structure();
    const std::size_t base = plan_.needed().begin;
    auto ql = q.local();
    std::size_t flops = 0;
    for (std::size_t lr = 0; lr < local_rows(); ++lr) {
      T acc{};
      const std::size_t lo = row_ptr_[lr];
      const std::size_t hi = row_ptr_[lr + 1];
      for (std::size_t k = lo; k < hi; ++k) {
        acc += val_w_[k - base] * full_p[col_w_[k - base]];
      }
      ql[lr] = acc;
      flops += 2 * (hi - lo);
    }
    proc_->add_flops(flops);
  }

  /// q = A^T * p.  With row-wise storage the transpose product is a
  /// many-to-one accumulation (each local row scatters into q's columns) —
  /// the merge pattern of Scenario 2.  This is the operation that makes
  /// BiCG "negate" row-storage optimisations (Section 2.1).  The halo path
  /// accumulates into the compact [owned | ghost] scratch and ships only
  /// the ghost *partials* back to their owners (an owner-targeted
  /// scatter/accumulate); the legacy path pays the full n-length merge.
  void matvec_transpose(const hpf::DistributedVector<T>& p,
                        hpf::DistributedVector<T>& q) {
    check_vectors(p, q);
    assemble();
    audit_structure();
    const std::size_t base = plan_.needed().begin;
    auto ql = q.local();
    if (use_halo()) {
      ensure_halo();
      const std::size_t nl = local_rows();
      zero_scratch(transpose_scratch_, nl + halo_.n_ghosts());
      std::size_t flops = 0;
      for (std::size_t lr = 0; lr < nl; ++lr) {
        const T pi = p.local()[lr];
        const std::size_t lo = row_ptr_[lr];
        const std::size_t hi = row_ptr_[lr + 1];
        for (std::size_t k = lo; k < hi; ++k) {
          transpose_scratch_[col_local_[k - base]] += val_w_[k - base] * pi;
        }
        flops += 2 * (hi - lo);
      }
      proc_->add_flops(flops);
      const std::span<T> scratch(transpose_scratch_.data(),
                                 nl + halo_.n_ghosts());
      halo_.accumulate<T>(*proc_, scratch.subspan(nl), scratch.first(nl),
                          halo_pack_);
      std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(
                                                       ql.size()),
                ql.begin());
      return;
    }
    zero_scratch(transpose_scratch_, n_);
    std::size_t flops = 0;
    for (std::size_t lr = 0; lr < local_rows(); ++lr) {
      const T pi = p.local()[lr];
      const std::size_t lo = row_ptr_[lr];
      const std::size_t hi = row_ptr_[lr + 1];
      for (std::size_t k = lo; k < hi; ++k) {
        transpose_scratch_[col_w_[k - base]] += val_w_[k - base] * pi;
      }
      flops += 2 * (hi - lo);
    }
    proc_->add_flops(flops);
    proc_->allreduce_vec(transpose_scratch_);
    for (std::size_t l = 0; l < ql.size(); ++l) {
      ql[l] = transpose_scratch_[q.global_of(l)];
    }
  }

  /// In-place Gauss–Seidel half sweep over this rank's rows:
  ///   x_i = (b_i - sum_{j != i} a_ij x_j) / a_ii
  /// in ascending (`forward`) or descending global row order — the smoother
  /// kernel of the multigrid preconditioner.  Collective.  `exact` selects
  /// the pipelined executor: ghost columns owned by ranks the sweep already
  /// visited carry *updated* values, so the result is bit-identical to a
  /// serial sweep for any NP (the Scenario 2 sequential dependency, paid as
  /// pipeline wait).  Otherwise ghost values are frozen for the half sweep,
  /// so boundary couplings relax Jacobi-style and every rank sweeps
  /// concurrently — the hybrid smoother.  Requires a contiguous row
  /// distribution (rank order must be global row order) and a nonzero
  /// diagonal in every row.
  void gs_half_sweep(const hpf::DistributedVector<T>& b,
                     hpf::DistributedVector<T>& x, bool forward, bool exact) {
    HPFCG_REQUIRE(b.size() == n_ && x.size() == n_,
                  "gs_half_sweep: dimension mismatch");
    HPFCG_REQUIRE(b.dist() == *row_dist_ && x.dist() == *row_dist_,
                  "gs_half_sweep: vectors must be aligned with the rows");
    HPFCG_REQUIRE(row_dist_->contiguous(),
                  "gs_half_sweep: contiguous row distribution required");
    assemble();
    audit_structure();
    ensure_gs_diag();
    const std::size_t nl = local_rows();
    const std::size_t base = plan_.needed().begin;
    auto xl = x.local();
    const auto bl = b.local();
    std::size_t flops = 0;

    if (use_halo()) {
      ensure_halo();
      x_halo_.resize(nl + halo_.n_ghosts());
      std::copy(xl.begin(), xl.end(), x_halo_.begin());
      const auto ghosts = std::span<T>(x_halo_).subspan(nl);
      const std::span<const T> owned(xl.data(), xl.size());
      if (exact) {
        halo_.sweep_pre<T>(*proc_, owned, ghosts, halo_pack_, forward);
      } else {
        halo_.exchange<T>(*proc_, owned, ghosts, halo_pack_);
      }
      const auto relax = [&](std::size_t lr) {
        const std::size_t lo = row_ptr_[lr];
        const std::size_t hi = row_ptr_[lr + 1];
        T acc = bl[lr];
        for (std::size_t k = lo; k < hi; ++k) {
          const std::size_t c = col_local_[k - base];
          if (c == lr) continue;
          acc -= val_w_[k - base] * x_halo_[c];
        }
        const T xi = acc / gs_diag_[lr];
        x_halo_[lr] = xi;
        xl[lr] = xi;
        flops += 2 * (hi - lo) + 1;
      };
      if (forward) {
        for (std::size_t lr = 0; lr < nl; ++lr) relax(lr);
      } else {
        for (std::size_t lr = nl; lr-- > 0;) relax(lr);
      }
      if (exact) halo_.sweep_post<T>(*proc_, owned, halo_pack_, forward);
      proc_->add_flops(flops);
      return;
    }

    // Legacy gather path: materialize the full vector, then (exact mode)
    // chain the ranks in sweep order — each predecessor ships the vector
    // with all of its rows updated, so the sweep is still bit-identical to
    // the serial pass (at O(n) bytes per hop, matching this path's matvec).
    std::vector<T> full = x.to_global();
    constexpr int kChainTag = 0x2320;
    const int np = proc_->nprocs();
    const int me = proc_->rank();
    const int prev = forward ? me - 1 : me + 1;
    const int next = forward ? me + 1 : me - 1;
    if (exact && prev >= 0 && prev < np) {
      proc_->recv_into<T>(prev, kChainTag, std::span<T>(full));
    }
    const auto relax = [&](std::size_t lr) {
      const std::size_t lo = row_ptr_[lr];
      const std::size_t hi = row_ptr_[lr + 1];
      const std::size_t g = row_lo_ + lr;
      T acc = bl[lr];
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t c = col_w_[k - base];
        if (c == g) continue;
        acc -= val_w_[k - base] * full[c];
      }
      const T xi = acc / gs_diag_[lr];
      full[g] = xi;
      xl[lr] = xi;
      flops += 2 * (hi - lo) + 1;
    };
    if (forward) {
      for (std::size_t lr = 0; lr < nl; ++lr) relax(lr);
    } else {
      for (std::size_t lr = nl; lr-- > 0;) relax(lr);
    }
    if (exact && next >= 0 && next < np) {
      proc_->send<T>(next, kChainTag, std::span<const T>(full));
    }
    proc_->add_flops(flops);
  }

  /// The cached ghost-exchange schedule (empty until the first halo sweep).
  [[nodiscard]] const HaloPlan& halo_plan() const { return halo_; }

  /// True when this matrix's sweeps run the halo executor.  The toggle is
  /// sampled once per matrix, at the first sweep, so a matrix never mixes
  /// half-built halo state with gather sweeps.
  [[nodiscard]] bool halo_active() {
    return use_halo();
  }

  /// Collective warm build of the halo plan (no-op when already built or
  /// when the executor is off).  The rebalance hook calls this right after
  /// a migration so the rebuild lands inside the rebalance step instead of
  /// silently extending the next matvec.
  void prepare_halo() {
    if (!use_halo()) return;
    assemble();
    ensure_halo();
  }

  /// Drop the cached plan and re-sample the toggle; the plan is rebuilt
  /// collectively at the next sweep.  Migration paths get this for free
  /// (they construct a fresh matrix); tests use it for A/B switching.
  void invalidate_halo() {
    halo_.invalidate();
    col_local_.clear();
    halo_mode_ = -1;
  }

  /// Times the transpose scratch grew (tests pin this to 1 across repeated
  /// sweeps — the buffer is hoisted, not reallocated per call).
  [[nodiscard]] std::uint64_t transpose_scratch_allocations() const {
    return scratch_allocations_;
  }

 private:
  /// Shell constructor for scatter_from_root: aligned plan, storage filled
  /// by the caller.
  DistCsr(msg::Process& proc, hpf::DistPtr row_dist,
          hpf::Distribution nnz_dist)
      : proc_(&proc),
        row_dist_(std::move(row_dist)),
        nnz_dist_(std::make_shared<const hpf::Distribution>(
            std::move(nnz_dist))),
        n_(row_dist_->size()),
        plan_(NnzExchangePlan::aligned(
            proc.nprocs(),
            {nnz_dist_->local_range(proc.rank()).first,
             nnz_dist_->local_range(proc.rank()).second})) {
    row_lo_ = row_dist_->local_range(proc.rank()).first;
  }

  /// FNV-1a over the replicated ownership map (row cuts + nnz cuts) — the
  /// conformance record posted after a migration.
  static std::size_t ownership_fingerprint(
      const hpf::Distribution& row_dist,
      const std::vector<std::size_t>& nnz_cuts) {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(row_dist.size());
    for (int r = 0; r < row_dist.nprocs(); ++r) {
      mix(row_dist.local_range(r).first);
    }
    for (const std::size_t c : nnz_cuts) mix(c);
    return static_cast<std::size_t>(h);
  }

  /// FNV-1a over the trio's content — cheap relative to a build, computed
  /// only when checking is active.
  static std::size_t structure_fingerprint(const Csr<T>& a) {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(a.n_rows());
    for (const std::size_t r : a.row_ptr()) mix(r);
    for (const std::size_t c : a.col_idx()) mix(c);
    for (const T& v : a.values()) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, std::min(sizeof(T), sizeof(bits)));
      mix(bits);
    }
    return static_cast<std::size_t>(h);
  }

  void check_vectors(const hpf::DistributedVector<T>& p,
                     const hpf::DistributedVector<T>& q) const {
    HPFCG_REQUIRE(p.size() == n_ && q.size() == n_,
                  "DistCsr::matvec: dimension mismatch");
    HPFCG_REQUIRE(p.dist() == *row_dist_ && q.dist() == *row_dist_,
                  "DistCsr::matvec: vectors must be aligned with the rows");
  }

  /// Sample the halo toggle once per matrix (first sweep decides).  The
  /// executor needs a contiguous row map to turn ownership into ranges;
  /// anything else falls back to the gather path — counted per matrix in
  /// Stats::halo_fallbacks and announced once per run on stderr, because
  /// the silent O(n)-per-sweep downgrade is otherwise invisible.
  [[nodiscard]] bool use_halo() {
    if (halo_mode_ < 0) {
      if (halo::enabled() && !row_dist_->contiguous()) {
        ++proc_->stats().halo_fallbacks;
        halo::warn_fallback_once();
      }
      halo_mode_ = (halo::enabled() && row_dist_->contiguous()) ? 1 : 0;
    }
    return halo_mode_ == 1;
  }

  /// Collective lazy build: run the inspector over the assembled column
  /// window and remap it into the compact [owned | ghost] numbering.  All
  /// ranks reach the first sweep together, so the collective is aligned.
  /// Requires assemble() to have run (col_w_ holds the window; its values
  /// are immutable across re-fetches, so the remap stays valid even for
  /// uncached HPF-1 layouts).
  void ensure_halo() {
    if (halo_.built()) return;
    halo_.build(*proc_, std::span<const std::size_t>(col_w_), *row_dist_);
    col_local_.resize(col_w_.size());
    for (std::size_t i = 0; i < col_w_.size(); ++i) {
      col_local_[i] = halo_.local_index(col_w_[i]);
    }
  }

  /// Cache each owned row's diagonal for the Gauss–Seidel sweeps, naming
  /// the offending global row and rank when one is zero or missing — the
  /// same diagnostic contract as jacobi_preconditioner, so a singular
  /// smoother fails loudly instead of propagating NaN.  The values are
  /// immutable per matrix object (migration builds a fresh one), so the
  /// scan runs once.
  void ensure_gs_diag() {
    if (gs_diag_built_) return;
    const std::size_t base = plan_.needed().begin;
    gs_diag_.assign(local_rows(), T{});
    for (std::size_t lr = 0; lr < local_rows(); ++lr) {
      const std::size_t g = row_lo_ + lr;
      T d{};
      for (std::size_t k = row_ptr_[lr]; k < row_ptr_[lr + 1]; ++k) {
        if (col_w_[k - base] == g) {
          d = val_w_[k - base];
          break;
        }
      }
      HPFCG_REQUIRE(d != T{},
                    "gs_half_sweep: zero or missing diagonal in global row " +
                        std::to_string(g) + " on rank " +
                        std::to_string(proc_->rank()));
      gs_diag_[lr] = d;
    }
    gs_diag_built_ = true;
  }

  /// Zero `buf` to exactly `m` elements, growing at most once over the
  /// matrix's lifetime (counted, so tests can pin the allocation count).
  void zero_scratch(std::vector<T>& buf, std::size_t m) {
    if (buf.capacity() < m) ++scratch_allocations_;
    buf.assign(m, T{});
  }

  /// Run the executor unless the cache already holds the window.
  void assemble() {
    if (caching_ && assembled_) return;
    plan_.execute<std::size_t>(*proc_, std::span<const std::size_t>(col_o_),
                               std::span<std::size_t>(col_w_));
    plan_.execute<T>(*proc_, std::span<const T>(val_o_), std::span<T>(val_w_));
    assembled_ = true;
    audited_ = false;
  }

  /// Checking only: validate the assembled trio before the sweep indexes
  /// through it.  A column index ≥ n means the sweep would read (or, in the
  /// transpose, accumulate into) memory outside every rank's shard — the
  /// out-of-shard hazard the descriptor's immutability contract is supposed
  /// to rule out.  Runs once per assembly.
  void audit_structure() {
    if (!(check::kCompiled && check::enabled()) || audited_) return;
    const std::size_t base = plan_.needed().begin;
    for (std::size_t lr = 0; lr < local_rows(); ++lr) {
      HPFCG_REQUIRE(row_ptr_[lr] <= row_ptr_[lr + 1],
                    "DistCsr: row pointers not monotone on rank " +
                        std::to_string(proc_->rank()));
      for (std::size_t k = row_ptr_[lr]; k < row_ptr_[lr + 1]; ++k) {
        const std::size_t c = col_w_[k - base];
        if (c >= n_) {
          throw util::Error(
              "hpfcg::check: out-of-shard index: rank " +
              std::to_string(proc_->rank()) + " holds column index " +
              std::to_string(c) + " >= n=" + std::to_string(n_) +
              " in global row " + std::to_string(row_lo_ + lr) +
              " — the sweep would touch memory outside every rank's shard");
        }
      }
    }
    audited_ = true;
  }

  msg::Process* proc_;
  hpf::DistPtr row_dist_;
  hpf::DistPtr nnz_dist_;
  std::size_t n_ = 0;
  std::size_t row_lo_ = 0;
  NnzExchangePlan plan_;
  std::vector<std::size_t> row_ptr_;  ///< my rows' pointers (global k values)
  std::vector<std::size_t> col_o_;    ///< owned slice of col
  std::vector<T> val_o_;              ///< owned slice of a
  std::vector<std::size_t> col_w_;    ///< assembled needed window of col
  std::vector<T> val_w_;              ///< assembled needed window of a
  bool caching_ = false;
  bool assembled_ = false;
  bool audited_ = false;  ///< hpfcg::check: window validated since assembly
  std::vector<T> gs_diag_;      ///< owned diagonals for the GS sweeps
  bool gs_diag_built_ = false;  ///< diag scan (with zero check) done

  // Halo-executor state.  Plain values: the rebalance hook copy-assigns
  // matrices, and a copied plan stays valid while the ownership map does
  // (a real migration builds a fresh object, so the plan resets there).
  HaloPlan halo_;
  int halo_mode_ = -1;  ///< -1 undecided, 0 gather, 1 halo (set at 1st sweep)
  std::vector<std::size_t> col_local_;  ///< col_w_ in [owned | ghost] numbering
  std::vector<T> x_halo_;               ///< [owned | ghost] sweep buffer
  std::vector<T> halo_pack_;            ///< executor pack/unpack scratch
  std::vector<T> transpose_scratch_;    ///< hoisted transpose accumulator
  std::uint64_t scratch_allocations_ = 0;
};

}  // namespace hpfcg::sparse
