#pragma once
// Workload generators — the application matrices the paper's introduction
// motivates, built synthetically so every experiment is self-contained:
//
//   * 2-D/3-D Laplacians: the CFD / structural-analysis grid operators
//     ("computational fluid dynamics ... sparse" matrices);
//   * random symmetric positive-definite matrices: NAS-CG-style benchmark
//     inputs;
//   * power-law ("irregular grid") matrices: "some grid points may have
//     many neighbours, while others have very few" (Section 5.2.2) — the
//     load-imbalance workload for the balanced partitioners;
//   * diagonal matrices with a prescribed spectrum: exercise the CG theory
//     that convergence takes at most n_e = #distinct eigenvalues steps;
//   * the exact 6×6 example of Figure 1;
//   * a dense SPD surrogate for computational-electromagnetics systems.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hpfcg/sparse/csr.hpp"

namespace hpfcg::sparse {

/// 5-point 2-D Laplacian on an nx×ny grid (n = nx*ny).  SPD.
Csr<double> laplacian_2d(std::size_t nx, std::size_t ny);

/// 7-point 3-D Laplacian on an nx×ny×nz grid.  SPD.
Csr<double> laplacian_3d(std::size_t nx, std::size_t ny, std::size_t nz);

/// 27-point 3-D stencil on an nx×ny×nz grid — the HPCG benchmark operator:
/// 26.0 on the diagonal, -1.0 for every face/edge/corner neighbour.
/// Interior rows sum to zero, boundary rows are strictly dominant, so the
/// matrix is SPD; coarsening each extent by 2 reproduces the same operator
/// on the coarse grid (the geometric-multigrid hierarchy of bench_hpcg).
Csr<double> stencil27_3d(std::size_t nx, std::size_t ny, std::size_t nz);

/// Symmetric tridiagonal Toeplitz [off, diag, off].  SPD when diag > 2|off|.
Csr<double> tridiagonal(std::size_t n, double diag, double off);

/// Random sparse SPD matrix: symmetric pattern with ~`avg_row_nnz` entries
/// per row, off-diagonal values in (-1, 0), and a diagonal that strictly
/// dominates each row (so the matrix is SPD by Gershgorin).
Csr<double> random_spd(std::size_t n, std::size_t avg_row_nnz,
                       std::uint64_t seed);

/// Irregular "power-law" SPD matrix: `hub_count` hub rows connect to
/// ~`hub_degree` random neighbours each, every other row has `base_degree`
/// neighbours.  Symmetric, diagonally dominant.  Row nonzero counts vary by
/// orders of magnitude — the Section 5.2.2 workload.
Csr<double> powerlaw_spd(std::size_t n, std::size_t base_degree,
                         std::size_t hub_count, std::size_t hub_degree,
                         std::uint64_t seed);

/// Diagonal matrix with the given (positive) eigenvalues.
Csr<double> diagonal_spectrum(const std::vector<double>& eigenvalues);

/// The exact 6×6 sparse matrix of Figure 1, with a_ij = 10*i + j (1-based
/// subscripts), e.g. a11 = 11, a51 = 51.  15 nonzeros.
Csr<double> figure1_matrix();

/// Dense SPD surrogate for an electromagnetics moment-method system:
/// A(i,j) = exp(-|i-j|/range) off the diagonal, 2.0 on it.  Returned as a
/// callable-friendly dense row generator value.
double em_dense_entry(std::size_t i, std::size_t j, double range);

/// Random right-hand side with entries in (-1, 1).
std::vector<double> random_rhs(std::size_t n, std::uint64_t seed);

}  // namespace hpfcg::sparse
