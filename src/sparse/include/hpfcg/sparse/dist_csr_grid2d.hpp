#pragma once
// Sparse CSR matrix on a 2-D processor grid — the sparse counterpart of
// hpf::DenseGrid2DMatrix (ablation B1 extended to the paper's own setting).
//
// Rank (i, j) stores the tile rows(i) × cols(j) of A as a local CSR with
// columns rebased to the tile; the matvec gathers p only within grid
// columns (n/pc elements) and reduce-scatters partials within grid rows
// (n/pr) — O(n/sqrt(P)) communication per sweep where the paper's 1-D
// stripes move O(n).  For very sparse tiles the win shrinks (tiles hold
// ~nnz/P entries but the vector traffic still scales with n), which is
// exactly the regular-vs-irregular trade-off the bench quantifies.

#include <memory>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/grid2d.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

template <class T>
class DistCsrGrid2D {
 public:
  /// Collective build from a replicated matrix: each rank keeps its tile.
  DistCsrGrid2D(msg::Process& proc, const Csr<T>& a, hpf::Grid2D grid)
      : proc_(&proc), grid_(grid), n_(a.n_rows()) {
    HPFCG_REQUIRE(a.n_rows() == a.n_cols(),
                  "DistCsrGrid2D: square matrices only");
    HPFCG_REQUIRE(grid.np() == proc.nprocs(),
                  "DistCsrGrid2D: grid must cover the machine");
    const auto row_blocks = hpf::Distribution::block(n_, grid.pr());
    const auto col_blocks = hpf::Distribution::block(n_, grid.pc());
    std::tie(rlo_, rhi_) = row_blocks.local_range(grid.row_of(proc.rank()));
    std::tie(clo_, chi_) = col_blocks.local_range(grid.col_of(proc.rank()));

    // Extract the tile: my rows restricted to my column range, columns
    // rebased to the tile.
    tile_ptr_.assign(rhi_ - rlo_ + 1, 0);
    for (std::size_t i = rlo_; i < rhi_; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] >= clo_ && cols[k] < chi_) {
          tile_col_.push_back(cols[k] - clo_);
          tile_val_.push_back(vals[k]);
        }
      }
      tile_ptr_[i - rlo_ + 1] = tile_col_.size();
    }
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] const hpf::Grid2D& grid() const { return grid_; }
  [[nodiscard]] std::size_t tile_nnz() const { return tile_val_.size(); }

  /// Vector distributions (see DenseGrid2DMatrix for the layout logic).
  [[nodiscard]] hpf::DistPtr vector_dist() const {
    const auto col_blocks = hpf::Distribution::block(n_, grid_.pc());
    std::vector<int> owner(n_);
    for (int j = 0; j < grid_.pc(); ++j) {
      const auto [lo, hi] = col_blocks.local_range(j);
      const auto piece = hpf::Distribution::block(hi - lo, grid_.pr());
      for (std::size_t g = lo; g < hi; ++g) {
        owner[g] = grid_.rank_of(piece.owner(g - lo), j);
      }
    }
    return std::make_shared<const hpf::Distribution>(
        hpf::Distribution::indirect(grid_.np(), std::move(owner)));
  }

  [[nodiscard]] hpf::DistPtr result_dist() const {
    const auto row_blocks = hpf::Distribution::block(n_, grid_.pr());
    std::vector<int> owner(n_);
    for (int i = 0; i < grid_.pr(); ++i) {
      const auto [lo, hi] = row_blocks.local_range(i);
      const auto piece = hpf::Distribution::block(hi - lo, grid_.pc());
      for (std::size_t g = lo; g < hi; ++g) {
        owner[g] = grid_.rank_of(i, piece.owner(g - lo));
      }
    }
    return std::make_shared<const hpf::Distribution>(
        hpf::Distribution::indirect(grid_.np(), std::move(owner)));
  }

  /// q = A p: p in vector_dist(), q in result_dist().
  void matvec(const hpf::DistributedVector<T>& p,
              hpf::DistributedVector<T>& q) {
    HPFCG_REQUIRE(p.size() == n_ && q.size() == n_,
                  "grid2d sparse matvec: dimension mismatch");
    msg::Process& proc = *proc_;
    const int gr = grid_.row_of(proc.rank());
    const int gc = grid_.col_of(proc.rank());

    // (1) gather my column segment of p within the grid column.
    const auto col_members = grid_.col_group(gc);
    std::vector<std::size_t> piece_counts(col_members.size());
    {
      const auto piece = hpf::Distribution::block(chi_ - clo_, grid_.pr());
      for (int i = 0; i < grid_.pr(); ++i) {
        piece_counts[static_cast<std::size_t>(i)] = piece.local_count(i);
      }
    }
    std::vector<T> p_seg;
    hpf::group_allgatherv<T>(proc, col_members, p.local(), p_seg,
                             piece_counts, 0x3400);

    // (2) local sparse tile SpMV.
    const std::size_t tr = rhi_ - rlo_;
    std::vector<T> partial(tr, T{});
    std::size_t flops = 0;
    for (std::size_t i = 0; i < tr; ++i) {
      T acc{};
      for (std::size_t k = tile_ptr_[i]; k < tile_ptr_[i + 1]; ++k) {
        acc += tile_val_[k] * p_seg[tile_col_[k]];
      }
      partial[i] = acc;
      flops += 2 * (tile_ptr_[i + 1] - tile_ptr_[i]);
    }
    proc.add_flops(flops);

    // (3) reduce-scatter within the grid row.
    const auto row_members = grid_.row_group(gr);
    std::vector<std::size_t> out_counts(row_members.size());
    {
      const auto piece = hpf::Distribution::block(tr, grid_.pc());
      for (int j = 0; j < grid_.pc(); ++j) {
        out_counts[static_cast<std::size_t>(j)] = piece.local_count(j);
      }
    }
    HPFCG_REQUIRE(q.local().size() ==
                      out_counts[static_cast<std::size_t>(gc)],
                  "grid2d sparse matvec: q not distributed by result_dist()");
    hpf::group_reduce_scatter<T>(proc, row_members, partial, q.local(),
                                 out_counts, 0x3600);
  }

 private:
  msg::Process* proc_;
  hpf::Grid2D grid_;
  std::size_t n_;
  std::size_t rlo_ = 0, rhi_ = 0, clo_ = 0, chi_ = 0;
  std::vector<std::size_t> tile_ptr_;  ///< local CSR over tile rows
  std::vector<std::size_t> tile_col_;  ///< rebased to [0, chi-clo)
  std::vector<T> tile_val_;
};

}  // namespace hpfcg::sparse
