#pragma once
// Sparse CSR matrix on a 2-D processor grid — the sparse counterpart of
// hpf::DenseGrid2DMatrix (ablation B1 extended to the paper's own setting).
//
// Rank (i, j) stores the tile rows(i) × cols(j) of A as a local CSR with
// columns rebased to the tile; the matvec gathers p only within grid
// columns (n/pc elements) and reduce-scatters partials within grid rows
// (n/pr) — O(n/sqrt(P)) communication per sweep where the paper's 1-D
// stripes move O(n).  For very sparse tiles the win shrinks (tiles hold
// ~nnz/P entries but the vector traffic still scales with n), which is
// exactly the regular-vs-irregular trade-off the bench quantifies.

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/grid2d.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/sparse/halo.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

template <class T>
class DistCsrGrid2D {
 public:
  /// Collective build from a replicated matrix: each rank keeps its tile.
  DistCsrGrid2D(msg::Process& proc, const Csr<T>& a, hpf::Grid2D grid)
      : proc_(&proc), grid_(grid), n_(a.n_rows()) {
    HPFCG_REQUIRE(a.n_rows() == a.n_cols(),
                  "DistCsrGrid2D: square matrices only");
    HPFCG_REQUIRE(grid.np() == proc.nprocs(),
                  "DistCsrGrid2D: grid must cover the machine");
    const auto row_blocks = hpf::Distribution::block(n_, grid.pr());
    const auto col_blocks = hpf::Distribution::block(n_, grid.pc());
    std::tie(rlo_, rhi_) = row_blocks.local_range(grid.row_of(proc.rank()));
    std::tie(clo_, chi_) = col_blocks.local_range(grid.col_of(proc.rank()));

    // Extract the tile: my rows restricted to my column range, columns
    // rebased to the tile.
    tile_ptr_.assign(rhi_ - rlo_ + 1, 0);
    for (std::size_t i = rlo_; i < rhi_; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] >= clo_ && cols[k] < chi_) {
          tile_col_.push_back(cols[k] - clo_);
          tile_val_.push_back(vals[k]);
        }
      }
      tile_ptr_[i - rlo_ + 1] = tile_col_.size();
    }
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] const hpf::Grid2D& grid() const { return grid_; }
  [[nodiscard]] std::size_t tile_nnz() const { return tile_val_.size(); }

  /// Vector distributions (see DenseGrid2DMatrix for the layout logic).
  [[nodiscard]] hpf::DistPtr vector_dist() const {
    const auto col_blocks = hpf::Distribution::block(n_, grid_.pc());
    std::vector<int> owner(n_);
    for (int j = 0; j < grid_.pc(); ++j) {
      const auto [lo, hi] = col_blocks.local_range(j);
      const auto piece = hpf::Distribution::block(hi - lo, grid_.pr());
      for (std::size_t g = lo; g < hi; ++g) {
        owner[g] = grid_.rank_of(piece.owner(g - lo), j);
      }
    }
    return std::make_shared<const hpf::Distribution>(
        hpf::Distribution::indirect(grid_.np(), std::move(owner)));
  }

  [[nodiscard]] hpf::DistPtr result_dist() const {
    const auto row_blocks = hpf::Distribution::block(n_, grid_.pr());
    std::vector<int> owner(n_);
    for (int i = 0; i < grid_.pr(); ++i) {
      const auto [lo, hi] = row_blocks.local_range(i);
      const auto piece = hpf::Distribution::block(hi - lo, grid_.pc());
      for (std::size_t g = lo; g < hi; ++g) {
        owner[g] = grid_.rank_of(i, piece.owner(g - lo));
      }
    }
    return std::make_shared<const hpf::Distribution>(
        hpf::Distribution::indirect(grid_.np(), std::move(owner)));
  }

  /// q = A p: p in vector_dist(), q in result_dist().
  void matvec(const hpf::DistributedVector<T>& p,
              hpf::DistributedVector<T>& q) {
    HPFCG_REQUIRE(p.size() == n_ && q.size() == n_,
                  "grid2d sparse matvec: dimension mismatch");
    msg::Process& proc = *proc_;
    const int gr = grid_.row_of(proc.rank());
    const int gc = grid_.col_of(proc.rank());

    // (1) gather my column segment of p within the grid column.
    const auto col_members = grid_.col_group(gc);
    std::vector<std::size_t> piece_counts(col_members.size());
    {
      const auto piece = hpf::Distribution::block(chi_ - clo_, grid_.pr());
      for (int i = 0; i < grid_.pr(); ++i) {
        piece_counts[static_cast<std::size_t>(i)] = piece.local_count(i);
      }
    }
    if (use_halo()) {
      // Inspector/executor variant of (1): exchange only the segment
      // entries this tile's columns actually touch, scattered into the
      // same positions of the full-size segment buffer — the sweep below
      // reads identical values either way, so results are bit-identical.
      ensure_group_halo(proc, col_members, piece_counts);
      x_seg_.assign(chi_ - clo_, T{});
      std::copy(p.local().begin(), p.local().end(),
                x_seg_.begin() + static_cast<std::ptrdiff_t>(my_piece_lo_));
      trace::SpanScope span(proc.tracer_rank(), trace::SpanKind::kHalo,
                            static_cast<std::uint32_t>(peers_.size()));
      std::uint64_t bytes = 0;
      std::uint64_t msgs = 0;
      for (const GroupPeer& pe : peers_) {
        if (pe.send_idx.empty()) continue;
        if (pack_.size() < pe.send_idx.size()) pack_.resize(pe.send_idx.size());
        for (std::size_t j = 0; j < pe.send_idx.size(); ++j) {
          pack_[j] = p.local()[pe.send_idx[j]];
        }
        proc.send<T>(pe.rank, kExchangeTag,
                     std::span<const T>(pack_.data(), pe.send_idx.size()));
        bytes += pe.send_idx.size() * sizeof(T);
        ++msgs;
      }
      for (const GroupPeer& pe : peers_) {
        if (pe.recv_pos.empty()) continue;
        if (pack_.size() < pe.recv_pos.size()) pack_.resize(pe.recv_pos.size());
        proc.recv_into<T>(pe.rank, kExchangeTag,
                          std::span<T>(pack_.data(), pe.recv_pos.size()));
        for (std::size_t j = 0; j < pe.recv_pos.size(); ++j) {
          x_seg_[pe.recv_pos[j]] = pack_[j];
        }
      }
      span.set_bytes(bytes);
      auto& s = proc.stats();
      s.halo_msgs += msgs;
      s.halo_bytes += bytes;
    } else {
      hpf::group_allgatherv<T>(proc, col_members, p.local(), x_seg_,
                               piece_counts, 0x3400);
    }

    // (2) local sparse tile SpMV.
    const std::size_t tr = rhi_ - rlo_;
    std::vector<T> partial(tr, T{});
    std::size_t flops = 0;
    for (std::size_t i = 0; i < tr; ++i) {
      T acc{};
      for (std::size_t k = tile_ptr_[i]; k < tile_ptr_[i + 1]; ++k) {
        acc += tile_val_[k] * x_seg_[tile_col_[k]];
      }
      partial[i] = acc;
      flops += 2 * (tile_ptr_[i + 1] - tile_ptr_[i]);
    }
    proc.add_flops(flops);

    // (3) reduce-scatter within the grid row.
    const auto row_members = grid_.row_group(gr);
    std::vector<std::size_t> out_counts(row_members.size());
    {
      const auto piece = hpf::Distribution::block(tr, grid_.pc());
      for (int j = 0; j < grid_.pc(); ++j) {
        out_counts[static_cast<std::size_t>(j)] = piece.local_count(j);
      }
    }
    HPFCG_REQUIRE(q.local().size() ==
                      out_counts[static_cast<std::size_t>(gc)],
                  "grid2d sparse matvec: q not distributed by result_dist()");
    hpf::group_reduce_scatter<T>(proc, row_members, partial, q.local(),
                                 out_counts, 0x3600);
  }

  /// Segment entries the inspector found touched but foreign (0 until the
  /// first halo sweep; used by tests and the bench table).
  [[nodiscard]] std::size_t ghost_entries() const { return ghost_entries_; }

 private:
  /// One column-group member's slice of the exchange schedule.
  struct GroupPeer {
    int rank = 0;  ///< machine rank
    std::vector<std::size_t> send_idx;  ///< my-piece-local offsets to pack
    std::vector<std::size_t> recv_pos;  ///< segment positions they fill
  };

  /// Group-scoped exchange tags, following the 0x3400/0x3600 group-op
  /// idiom (fixed user tags, no ledger conformance — group membership
  /// itself keeps the streams paired).
  static constexpr int kSetupTag = 0x3500;
  static constexpr int kExchangeTag = 0x3501;

  [[nodiscard]] bool use_halo() {
    if (halo_mode_ < 0) halo_mode_ = halo::enabled() ? 1 : 0;
    return halo_mode_ == 1;
  }

  /// Group-collective inspector, run lazily at the first halo sweep: scan
  /// the tile's (rebased) columns for touched segment positions, exchange
  /// the request lists pairwise within the grid column, and cache who
  /// needs which of my piece entries.  Eager sends make the
  /// send-all-then-recv-all pairwise pass deadlock-free; empty lists still
  /// travel once here so both sides learn the (possibly empty) pattern.
  void ensure_group_halo(msg::Process& proc,
                         const std::vector<int>& col_members,
                         const std::vector<std::size_t>& piece_counts) {
    if (gplan_built_) return;
    const int g = static_cast<int>(col_members.size());
    const int me_g = grid_.row_of(proc.rank());
    std::vector<std::size_t> off(static_cast<std::size_t>(g) + 1, 0);
    std::partial_sum(piece_counts.begin(), piece_counts.end(),
                     off.begin() + 1);
    my_piece_lo_ = off[static_cast<std::size_t>(me_g)];

    std::vector<std::size_t> touched(tile_col_);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

    std::vector<std::vector<std::size_t>> req(static_cast<std::size_t>(g));
    for (const std::size_t pos : touched) {
      const auto it = std::upper_bound(off.begin(), off.end(), pos);
      const auto owner = static_cast<std::size_t>(it - off.begin()) - 1;
      if (static_cast<int>(owner) != me_g) req[owner].push_back(pos);
    }

    peers_.clear();
    for (int i = 0; i < g; ++i) {
      if (i == me_g) continue;
      const auto& r = req[static_cast<std::size_t>(i)];
      proc.send<std::size_t>(col_members[static_cast<std::size_t>(i)],
                             kSetupTag,
                             std::span<const std::size_t>(r.data(), r.size()));
    }
    for (int i = 0; i < g; ++i) {
      if (i == me_g) continue;
      GroupPeer pe;
      pe.rank = col_members[static_cast<std::size_t>(i)];
      const auto want = proc.recv<std::size_t>(pe.rank, kSetupTag);
      pe.send_idx.reserve(want.size());
      const std::size_t mine =
          piece_counts[static_cast<std::size_t>(me_g)];
      for (const std::size_t w : want) {
        HPFCG_REQUIRE(w >= my_piece_lo_ && w - my_piece_lo_ < mine,
                      "grid2d halo: peer requested a position outside this "
                      "rank's piece");
        pe.send_idx.push_back(w - my_piece_lo_);
      }
      pe.recv_pos = req[static_cast<std::size_t>(i)];
      ghost_entries_ += pe.recv_pos.size();
      peers_.push_back(std::move(pe));
    }
    proc.stats().ghost_entries += ghost_entries_;
    gplan_built_ = true;
  }

  msg::Process* proc_;
  hpf::Grid2D grid_;
  std::size_t n_;
  std::size_t rlo_ = 0, rhi_ = 0, clo_ = 0, chi_ = 0;
  std::vector<std::size_t> tile_ptr_;  ///< local CSR over tile rows
  std::vector<std::size_t> tile_col_;  ///< rebased to [0, chi-clo)
  std::vector<T> tile_val_;

  // Column-group halo state (lazy; see ensure_group_halo).
  int halo_mode_ = -1;       ///< -1 undecided, 0 gather, 1 halo
  bool gplan_built_ = false;
  std::size_t my_piece_lo_ = 0;  ///< my piece's offset within the segment
  std::size_t ghost_entries_ = 0;
  std::vector<GroupPeer> peers_;  ///< other members, ascending group index
  std::vector<T> x_seg_;          ///< column-segment sweep buffer
  std::vector<T> pack_;           ///< executor pack/unpack scratch
};

}  // namespace hpfcg::sparse
