#pragma once
// Matrix Market (coordinate, real) I/O.
//
// Supports `general` and `symmetric` coordinate files with real entries —
// enough to exchange the paper's benchmark matrices with external tools
// (PARKBENCH/NAS-era codes all spoke this format).

#include <iosfwd>
#include <string>

#include "hpfcg/sparse/csr.hpp"

namespace hpfcg::sparse {

/// Parse a Matrix Market coordinate stream into CSR.  Symmetric files are
/// expanded to full storage.  Throws util::Error on malformed input.
Csr<double> read_matrix_market(std::istream& in);

/// Convenience: open and parse a file.
Csr<double> read_matrix_market_file(const std::string& path);

/// Write `a` as a general real coordinate Matrix Market stream (1-based).
void write_matrix_market(std::ostream& out, const Csr<double>& a);

/// Convenience: write to a file.
void write_matrix_market_file(const std::string& path, const Csr<double>& a);

}  // namespace hpfcg::sparse
