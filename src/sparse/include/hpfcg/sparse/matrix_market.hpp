#pragma once
// Matrix Market (coordinate) I/O.
//
// Supports `general` and `symmetric` coordinate files with `real`,
// `integer` or `pattern` fields — enough to exchange the paper's benchmark
// matrices with external tools (PARKBENCH/NAS-era codes all spoke this
// format).  Parsing is line-based and strict: comment and blank lines are
// legal anywhere after the banner, every entry line must carry exactly the
// field count the banner declares, and any deviation (truncation, surplus
// entries, shifted fields) raises a MatrixMarketError naming the line —
// never a silently truncated or mis-shifted matrix.

#include <cstddef>
#include <iosfwd>
#include <string>

#include "hpfcg/sparse/csr.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

/// Typed parse failure: what went wrong and on which 1-based input line
/// (0 when no line applies, e.g. an unopenable file).
class MatrixMarketError : public util::Error {
 public:
  MatrixMarketError(const std::string& what, std::size_t line)
      : util::Error("matrix market: " + what +
                    (line > 0 ? " (line " + std::to_string(line) + ")"
                              : std::string{})),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parse a Matrix Market coordinate stream into CSR.  Symmetric files are
/// expanded to full storage (explicit diagonal entries stay single);
/// `pattern` entries get value 1.0.  Throws MatrixMarketError (a
/// util::Error) on malformed input.
Csr<double> read_matrix_market(std::istream& in);

/// Convenience: open and parse a file.
Csr<double> read_matrix_market_file(const std::string& path);

/// Write `a` as a general real coordinate Matrix Market stream (1-based).
void write_matrix_market(std::ostream& out, const Csr<double>& a);

/// Convenience: write to a file.
void write_matrix_market_file(const std::string& path, const Csr<double>& a);

}  // namespace hpfcg::sparse
