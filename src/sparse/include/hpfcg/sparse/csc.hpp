#pragma once
// Compressed Sparse Column storage — Figure 1 of the paper.
//
// The trio of Figure 1:
//   a(nz)    nonzero values in column order            -> values()
//   row(nz)  row number of each nonzero                -> row_idx()
//   col(n+1) position of each column's first entry     -> col_ptr()
// (0-based here; the paper is 1-based Fortran.)

#include <cstddef>
#include <span>
#include <vector>

#include "hpfcg/sparse/coo.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

/// Immutable-after-build CSC matrix.
template <class T>
class Csc {
 public:
  Csc() = default;

  Csc(std::size_t n_rows, std::size_t n_cols, std::vector<std::size_t> col_ptr,
      std::vector<std::size_t> row_idx, std::vector<T> values)
      : n_rows_(n_rows),
        n_cols_(n_cols),
        col_ptr_(std::move(col_ptr)),
        row_idx_(std::move(row_idx)),
        values_(std::move(values)) {
    HPFCG_REQUIRE(col_ptr_.size() == n_cols_ + 1,
                  "Csc: col_ptr must have n_cols+1 entries");
    HPFCG_REQUIRE(col_ptr_.front() == 0 && col_ptr_.back() == row_idx_.size(),
                  "Csc: col_ptr must span [0, nnz]");
    HPFCG_REQUIRE(row_idx_.size() == values_.size(),
                  "Csc: row_idx/values length mismatch");
    for (std::size_t j = 0; j < n_cols_; ++j) {
      HPFCG_REQUIRE(col_ptr_[j] <= col_ptr_[j + 1],
                    "Csc: col_ptr must be nondecreasing");
    }
    for (const std::size_t r : row_idx_) {
      HPFCG_REQUIRE(r < n_rows_, "Csc: row index out of range");
    }
  }

  /// Build from (compressed) COO — entries sorted by (col, row).
  static Csc from_coo(Coo<T> coo) {
    // compress() sorts by (row, col); we need column-major order, so build
    // a transposed COO, compress that, and swap roles back while emitting.
    Coo<T> tmp(coo.n_cols(), coo.n_rows());
    for (const auto& e : coo.entries()) tmp.add(e.col, e.row, e.value);
    tmp.compress();
    std::vector<std::size_t> col_ptr(coo.n_cols() + 1, 0);
    std::vector<std::size_t> row_idx;
    std::vector<T> values;
    row_idx.reserve(tmp.nnz());
    values.reserve(tmp.nnz());
    for (const auto& e : tmp.entries()) ++col_ptr[e.row + 1];  // e.row == col
    for (std::size_t j = 0; j < coo.n_cols(); ++j) col_ptr[j + 1] += col_ptr[j];
    for (const auto& e : tmp.entries()) {
      row_idx.push_back(e.col);  // e.col == original row
      values.push_back(e.value);
    }
    return Csc(coo.n_rows(), coo.n_cols(), std::move(col_ptr),
               std::move(row_idx), std::move(values));
  }

  [[nodiscard]] std::size_t n_rows() const { return n_rows_; }
  [[nodiscard]] std::size_t n_cols() const { return n_cols_; }
  [[nodiscard]] std::size_t nnz() const { return row_idx_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& col_ptr() const {
    return col_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& row_idx() const {
    return row_idx_;
  }
  [[nodiscard]] const std::vector<T>& values() const { return values_; }

  [[nodiscard]] std::size_t col_nnz(std::size_t j) const {
    HPFCG_REQUIRE(j < n_cols_, "col_nnz: out of range");
    return col_ptr_[j + 1] - col_ptr_[j];
  }

  [[nodiscard]] std::span<const std::size_t> col_rows(std::size_t j) const {
    HPFCG_REQUIRE(j < n_cols_, "col_rows: out of range");
    return {row_idx_.data() + col_ptr_[j], col_nnz(j)};
  }
  [[nodiscard]] std::span<const T> col_values(std::size_t j) const {
    HPFCG_REQUIRE(j < n_cols_, "col_values: out of range");
    return {values_.data() + col_ptr_[j], col_nnz(j)};
  }

  /// Element lookup (zero if absent).
  [[nodiscard]] T at(std::size_t i, std::size_t j) const {
    const auto rows = col_rows(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] == i) return col_values(j)[k];
    }
    return T{};
  }

  /// q = A * p, serial reference — the paper's column-major loop:
  ///   DO j; pj = p(j); DO k = col(j), col(j+1)-1:
  ///     q(row(k)) += a(k) * pj
  void matvec(std::span<const T> p, std::span<T> q) const {
    HPFCG_REQUIRE(p.size() == n_cols_ && q.size() == n_rows_,
                  "Csc::matvec: dimension mismatch");
    for (auto& v : q) v = T{};
    for (std::size_t j = 0; j < n_cols_; ++j) {
      const T pj = p[j];
      const std::size_t lo = col_ptr_[j];
      const std::size_t hi = col_ptr_[j + 1];
      for (std::size_t k = lo; k < hi; ++k) {
        q[row_idx_[k]] += values_[k] * pj;
      }
    }
  }

  /// Dense expansion (tests only).
  [[nodiscard]] std::vector<T> to_dense() const {
    std::vector<T> d(n_rows_ * n_cols_, T{});
    for (std::size_t j = 0; j < n_cols_; ++j) {
      const auto rows = col_rows(j);
      const auto vals = col_values(j);
      for (std::size_t k = 0; k < rows.size(); ++k) {
        d[rows[k] * n_cols_ + j] = vals[k];
      }
    }
    return d;
  }

 private:
  std::size_t n_rows_ = 0;
  std::size_t n_cols_ = 0;
  std::vector<std::size_t> col_ptr_;
  std::vector<std::size_t> row_idx_;
  std::vector<T> values_;
};

}  // namespace hpfcg::sparse
