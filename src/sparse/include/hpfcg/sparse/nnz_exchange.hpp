#pragma once
// Inspector/executor machinery for distributed compressed sparse storage.
//
// Section 4 of the paper observes that when the nonzero arrays (a, col) of
// a CSR matrix are distributed with HPF's flat BLOCK over the nnz index
// space, "a processor that is responsible from a specific row may not have
// all the actual data elements (i.e., col and a) on that row.  Therefore,
// additional communication is needed to bring in those missing elements."
//
// This header computes and executes that communication: given a contiguous
// distribution of the atoms (rows for CSR, columns for CSC) and a
// contiguous distribution of the nnz arrays, each rank derives which
// foreign nnz segments its atoms reference (the *inspector*, built once —
// the "communication schedule reuse" of Ponnusamy et al., which the paper
// cites) and ships them per sweep (the *executor*).  When the two
// distributions are atom-aligned (the paper's proposed ATOM:BLOCK
// semantics), every segment is empty and the executor is free.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

/// Half-open global nnz-index range.
struct NnzSegment {
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Inverted ranges (from empty intersections) count as empty.
  [[nodiscard]] std::size_t size() const {
    return begin < end ? end - begin : 0;
  }
  [[nodiscard]] bool empty() const { return begin >= end; }
};

inline NnzSegment intersect(NnzSegment a, NnzSegment b) {
  return {std::max(a.begin, b.begin), std::min(a.end, b.end)};
}

/// The reusable communication schedule for one (atom_dist, nnz_dist) pair.
class NnzExchangePlan {
 public:
  /// Trivial plan for a perfectly atom-aligned layout: this rank needs
  /// exactly what it owns and nothing moves.  Used by construction paths
  /// that guarantee alignment without holding the replicated pointer array
  /// (e.g. root-scatter assembly).
  static NnzExchangePlan aligned(int nprocs, NnzSegment owned_range) {
    NnzExchangePlan plan;
    plan.need_ = owned_range;
    plan.own_ = owned_range;
    plan.recv_from_.assign(static_cast<std::size_t>(nprocs), NnzSegment{});
    plan.send_to_.assign(static_cast<std::size_t>(nprocs), NnzSegment{});
    return plan;
  }

  /// `ptr` is the *global* compressed pointer array (row_ptr or col_ptr),
  /// replicated — the inspector reads it to derive every rank's needs.
  NnzExchangePlan(msg::Process& proc, const std::vector<std::size_t>& ptr,
                  const hpf::Distribution& atom_dist,
                  const hpf::Distribution& nnz_dist) {
    HPFCG_REQUIRE(atom_dist.contiguous(),
                  "nnz exchange: atom distribution must be contiguous");
    HPFCG_REQUIRE(nnz_dist.contiguous(),
                  "nnz exchange: nnz distribution must be contiguous");
    HPFCG_REQUIRE(ptr.size() == atom_dist.size() + 1,
                  "nnz exchange: pointer array must have one entry per atom "
                  "plus the terminator");
    const int np = proc.nprocs();
    const int me = proc.rank();

    const auto need_of = [&](int r) -> NnzSegment {
      const auto [lo, hi] = atom_dist.local_range(r);
      return {ptr[lo], ptr[hi]};
    };
    const auto own_of = [&](int r) -> NnzSegment {
      const auto [lo, hi] = nnz_dist.local_range(r);
      return {lo, hi};
    };

    need_ = need_of(me);
    own_ = own_of(me);
    recv_from_.resize(static_cast<std::size_t>(np));
    send_to_.resize(static_cast<std::size_t>(np));
    for (int r = 0; r < np; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      if (r != me) {
        recv_from_[ur] = intersect(need_, own_of(r));
        send_to_[ur] = intersect(own_, need_of(r));
        remote_nnz_ += recv_from_[ur].size();
      } else {
        recv_from_[ur] = {0, 0};
        send_to_[ur] = {0, 0};
      }
    }
  }

  /// Global nnz range this rank's atoms reference.
  [[nodiscard]] NnzSegment needed() const { return need_; }
  /// Global nnz range this rank stores.
  [[nodiscard]] NnzSegment owned() const { return own_; }
  /// Entries that must be fetched from other ranks per executor run.
  [[nodiscard]] std::size_t remote_nnz() const { return remote_nnz_; }

  [[nodiscard]] const std::vector<NnzSegment>& recv_segments() const {
    return recv_from_;
  }
  [[nodiscard]] const std::vector<NnzSegment>& send_segments() const {
    return send_to_;
  }

  /// Executor: assemble this rank's needed window of a global array.
  ///
  /// `owned` holds this rank's slice (global range owned()); on return
  /// `work` (sized needed().size()) holds the full needed window, local
  /// entries copied and remote entries fetched point-to-point — exactly one
  /// message per nonempty segment, so an atom-aligned plan sends nothing.
  template <class T>
  void execute(msg::Process& proc, std::span<const T> owned,
               std::span<T> work) const {
    HPFCG_REQUIRE(owned.size() == own_.size(),
                  "nnz exchange: owned slice has wrong length");
    HPFCG_REQUIRE(work.size() == need_.size(),
                  "nnz exchange: work window has wrong length");
    // Local overlap copies straight across.
    const NnzSegment local = intersect(need_, own_);
    if (!local.empty()) {
      std::copy_n(owned.data() + (local.begin - own_.begin), local.size(),
                  work.data() + (local.begin - need_.begin));
    }
    const int np = proc.nprocs();
    const int me = proc.rank();
    // FIFO matching per (src, tag) keeps back-to-back executor runs
    // correctly paired even with a fixed tag.
    constexpr int kTag = 0x2001;
    for (int r = 0; r < np; ++r) {
      const auto seg = send_to_[static_cast<std::size_t>(r)];
      if (r == me || seg.empty()) continue;
      proc.send<T>(r, kTag,
                   std::span<const T>(owned.data() + (seg.begin - own_.begin),
                                      seg.size()));
    }
    for (int r = 0; r < np; ++r) {
      const auto seg = recv_from_[static_cast<std::size_t>(r)];
      if (r == me || seg.empty()) continue;
      proc.recv_into<T>(
          r, kTag,
          std::span<T>(work.data() + (seg.begin - need_.begin), seg.size()));
    }
  }

 private:
  NnzExchangePlan() = default;

  NnzSegment need_{};
  NnzSegment own_{};
  std::size_t remote_nnz_ = 0;
  std::vector<NnzSegment> recv_from_;
  std::vector<NnzSegment> send_to_;
};

}  // namespace hpfcg::sparse
