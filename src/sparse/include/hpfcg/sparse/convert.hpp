#pragma once
// Conversions among the sparse storage schemes of Section 3.
//
// All conversions are exact: they preserve every stored entry (including
// explicitly stored zeros are NOT preserved — construction goes through COO
// compression which sums duplicates; generators never emit explicit zeros).

#include "hpfcg/sparse/coo.hpp"
#include "hpfcg/sparse/csc.hpp"
#include "hpfcg/sparse/csr.hpp"

namespace hpfcg::sparse {

template <class T>
Coo<T> to_coo(const Csr<T>& a) {
  Coo<T> coo(a.n_rows(), a.n_cols());
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) coo.add(i, cols[k], vals[k]);
  }
  return coo;
}

template <class T>
Coo<T> to_coo(const Csc<T>& a) {
  Coo<T> coo(a.n_rows(), a.n_cols());
  for (std::size_t j = 0; j < a.n_cols(); ++j) {
    const auto rows = a.col_rows(j);
    const auto vals = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) coo.add(rows[k], j, vals[k]);
  }
  return coo;
}

template <class T>
Csc<T> csr_to_csc(const Csr<T>& a) {
  return Csc<T>::from_coo(to_coo(a));
}

template <class T>
Csr<T> csc_to_csr(const Csc<T>& a) {
  return Csr<T>::from_coo(to_coo(a));
}

/// A^T in CSR.  Note the format duality the paper leans on: the CSR arrays
/// of A^T are exactly the CSC arrays of A.
template <class T>
Csr<T> transpose(const Csr<T>& a) {
  Coo<T> coo(a.n_cols(), a.n_rows());
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) coo.add(cols[k], i, vals[k]);
  }
  return Csr<T>::from_coo(std::move(coo));
}

}  // namespace hpfcg::sparse
