#pragma once
// Coordinate (triplet) sparse format — the assembly format.
//
// COO is the natural target for generators and Matrix Market input; it is
// converted to the compressed formats of the paper (CSR/CSC, Section 3)
// before any computation.

#include <algorithm>
#include <cstddef>
#include <tuple>
#include <vector>

#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

/// One nonzero entry.
template <class T>
struct Triplet {
  std::size_t row;
  std::size_t col;
  T value;
};

/// Mutable triplet collection for an n_rows × n_cols sparse matrix.
template <class T>
class Coo {
 public:
  Coo(std::size_t n_rows, std::size_t n_cols)
      : n_rows_(n_rows), n_cols_(n_cols) {}

  [[nodiscard]] std::size_t n_rows() const { return n_rows_; }
  [[nodiscard]] std::size_t n_cols() const { return n_cols_; }
  [[nodiscard]] std::size_t nnz() const { return entries_.size(); }
  [[nodiscard]] const std::vector<Triplet<T>>& entries() const {
    return entries_;
  }

  /// Append one entry (duplicates allowed; they sum in compress()).
  void add(std::size_t row, std::size_t col, T value) {
    HPFCG_REQUIRE(row < n_rows_ && col < n_cols_, "Coo::add: out of range");
    entries_.push_back({row, col, value});
  }

  /// Append (i,j,v) and, when off-diagonal, (j,i,v) — symmetric assembly.
  void add_sym(std::size_t row, std::size_t col, T value) {
    add(row, col, value);
    if (row != col) add(col, row, value);
  }

  /// Sort by (row, col) and sum duplicate coordinates in place.
  void compress() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Triplet<T>& a, const Triplet<T>& b) {
                return std::tie(a.row, a.col) < std::tie(b.row, b.col);
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (out > 0 && entries_[out - 1].row == entries_[i].row &&
          entries_[out - 1].col == entries_[i].col) {
        entries_[out - 1].value += entries_[i].value;
      } else {
        entries_[out++] = entries_[i];
      }
    }
    entries_.resize(out);
  }

 private:
  std::size_t n_rows_;
  std::size_t n_cols_;
  std::vector<Triplet<T>> entries_;
};

}  // namespace hpfcg::sparse
