#pragma once
// Inspector/executor halo exchange for row-distributed sparse matrices.
//
// Scenario 1's matvec as lowered by HPF-1 materializes the whole p vector
// on every rank (an all-to-all broadcast, O(n) bytes per rank per sweep)
// even though a rank's rows reference only the columns its nnz actually
// touch.  This module is the compiler transformation the paper's
// SPARSE_MATRIX descriptor enables: because the (row_ptr, col, a) trio is
// declared immutable, the column footprint of each rank is a static
// property — so an *inspector* pass can run once, compute exactly which
// foreign x entries this rank needs (its ghost set), exchange the packed
// index lists via one neighborhood personalized all-to-all, and remap the
// local column indices into a compact [owned | ghost] numbering.  The
// per-sweep *executor* then posts O(boundary) point-to-point messages from
// the cached plan instead of rebuilding an O(n) replicated vector.
//
// Plan lifecycle:
//   build       — collective; scans the assembled column window against
//                 the (contiguous) row distribution.  Cached indefinitely:
//                 the descriptor's immutability contract means the footprint
//                 never changes for a given ownership map.
//   exchange    — forward executor (matvec): owners ship boundary entries,
//                 ghosts land in the tail of the [owned | ghost] buffer.
//   accumulate  — reverse executor (matvec_transpose): ghost *partials*
//                 travel back to their owners and are added into the owned
//                 range — an owner-targeted scatter/accumulate replacing
//                 the n-length allreduce merge.
//   invalidate  — on redistribute the ownership map changes, so the plan is
//                 discarded and rebuilt (collectively, lazily) on the next
//                 sweep.  DistCsr handles this automatically because
//                 migration constructs a fresh matrix object.
//
// Determinism: receives are posted per source rank in ascending-rank order
// (never wildcard), and reverse-direction partials are accumulated in that
// same fixed order, so solver residual histories are replay-invariant and
// the forward path is bit-identical to the gather path (each row dots its
// entries in the same k order either way).
//
// Checking: the build registers the plan's replicated topology fingerprint
// (per-rank ghost/boundary counts) with the conformance ledger, and every
// executor replay re-posts it under kHaloExchange — a rank replaying a
// stale plan is named by the ledger instead of deadlocking on an orphaned
// recv.  The fingerprint inputs are replicated by an unconditional (tiny)
// allgatherv so enabling the checker never changes what the network does.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/trace/span.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

namespace halo {

/// Runtime switch for the halo executor, sampled by each DistCsr at its
/// first sweep: env HPFCG_HALO (default ON; 0|off|false selects the legacy
/// O(n) gather for A/B comparisons) or programmatic set_enabled().
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Emit (once per run) the stderr notice that a matrix wanted the halo
/// executor but its row distribution is not contiguous, so the sweep
/// silently pays the legacy O(n) gather instead.  The per-matrix event is
/// also counted in Stats::halo_fallbacks; the one-shot warning exists so
/// the perf cliff is visible even when nobody reads the stats.
void warn_fallback_once();

/// RAII enable/disable for tests and benches: restores the previous state.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ~ScopedEnable() { set_enabled(prev_); }

 private:
  bool prev_;
};

}  // namespace halo

/// The cached communication schedule of one rank: who I receive boundary
/// entries from (owners of my ghosts), who I send to (ranks whose rows
/// reference my entries), and which owned indices each of them needs.
/// Plain value state — matrices are copied by the rebalance hook, and a
/// copied plan stays valid as long as the ownership map does.
class HaloPlan {
 public:
  HaloPlan() = default;

  /// Collective inspector: scan this rank's column indices `cols` (global
  /// numbering) against the contiguous row distribution, exchange the
  /// packed request lists, and derive the send/recv schedule.  Every rank
  /// must call it together (it runs a neighbor_alltoallv + allgatherv).
  void build(msg::Process& proc, std::span<const std::size_t> cols,
             const hpf::Distribution& row_dist) {
    HPFCG_REQUIRE(row_dist.contiguous(),
                  "HaloPlan: row distribution must be contiguous");
    const int np = proc.nprocs();
    const int me = proc.rank();
    const auto [lo, hi] = row_dist.local_range(me);
    row_lo_ = lo;
    n_owned_ = hi - lo;

    // Inspector: the ghost set is the sorted, deduplicated union of the
    // foreign column indices.
    ghost_gids_.clear();
    for (const std::size_t c : cols) {
      if (c < lo || c >= hi) ghost_gids_.push_back(c);
    }
    std::sort(ghost_gids_.begin(), ghost_gids_.end());
    ghost_gids_.erase(std::unique(ghost_gids_.begin(), ghost_gids_.end()),
                      ghost_gids_.end());

    // Group ghosts by owner: contiguous ownership makes each owner's
    // ghosts one contiguous run of the sorted list.
    recv_peers_.clear();
    std::vector<std::vector<std::size_t>> requests(
        static_cast<std::size_t>(np));
    {
      std::size_t i = 0;
      for (int r = 0; r < np && i < ghost_gids_.size(); ++r) {
        if (r == me) continue;
        const auto [rlo, rhi] = row_dist.local_range(r);
        const std::size_t begin = i;
        while (i < ghost_gids_.size() && ghost_gids_[i] < rhi) {
          HPFCG_REQUIRE(ghost_gids_[i] >= rlo,
                        "HaloPlan: column index outside every rank's range");
          ++i;
        }
        if (i == begin) continue;
        recv_peers_.push_back(Peer{r, begin, i - begin});
        requests[static_cast<std::size_t>(r)].assign(
            ghost_gids_.begin() + static_cast<std::ptrdiff_t>(begin),
            ghost_gids_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }

    // One neighborhood personalized all-to-all ships the index lists; the
    // replies tell this rank which of its owned entries each peer ghosts.
    const auto replies = proc.neighbor_alltoallv<std::size_t>(requests);
    send_peers_.clear();
    send_idx_.clear();
    for (int r = 0; r < np; ++r) {
      if (r == me) continue;
      const auto& want = replies[static_cast<std::size_t>(r)];
      if (want.empty()) continue;
      send_peers_.push_back(Peer{r, send_idx_.size(), want.size()});
      for (const std::size_t g : want) {
        HPFCG_REQUIRE(g >= lo && g < hi,
                      "HaloPlan: peer requested an entry this rank does not "
                      "own — ownership maps diverged");
        send_idx_.push_back(g - lo);
      }
    }

    // Replicate the per-rank (ghost, boundary) counts and fold them into
    // the topology fingerprint the executor re-posts on every replay.
    // Unconditional so checking never changes the communication pattern.
    const std::size_t mine[2] = {ghost_gids_.size(), send_idx_.size()};
    std::vector<std::size_t> all_counts;
    proc.allgatherv<std::size_t>(
        std::span<const std::size_t>(mine, 2), all_counts,
        std::vector<std::size_t>(static_cast<std::size_t>(np), 2));
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(row_dist.size()));
    for (int r = 0; r < np; ++r) {
      mix(row_dist.local_range(r).first);
    }
    for (const std::size_t c : all_counts) mix(c);
    topo_fp_ = static_cast<std::size_t>(h);
    if (proc.checking_active()) proc.conform_replicated(topo_fp_);

    proc.stats().ghost_entries += ghost_gids_.size();
    built_ = true;
  }

  /// Forget the schedule (ownership changed); the owner rebuilds lazily.
  void invalidate() { *this = HaloPlan{}; }

  [[nodiscard]] bool built() const { return built_; }
  [[nodiscard]] std::size_t n_owned() const { return n_owned_; }
  [[nodiscard]] std::size_t n_ghosts() const { return ghost_gids_.size(); }
  [[nodiscard]] std::size_t boundary_entries() const {
    return send_idx_.size();
  }
  [[nodiscard]] std::size_t send_neighbors() const {
    return send_peers_.size();
  }
  [[nodiscard]] std::size_t recv_neighbors() const {
    return recv_peers_.size();
  }
  [[nodiscard]] const std::vector<std::size_t>& ghost_gids() const {
    return ghost_gids_;
  }
  [[nodiscard]] std::size_t topology_fingerprint() const { return topo_fp_; }

  /// Compact [owned | ghost] index of global column g: owned entries keep
  /// their offset within the block, ghosts follow in ascending-gid order.
  [[nodiscard]] std::size_t local_index(std::size_t g) const {
    if (g >= row_lo_ && g < row_lo_ + n_owned_) return g - row_lo_;
    const auto it =
        std::lower_bound(ghost_gids_.begin(), ghost_gids_.end(), g);
    HPFCG_REQUIRE(it != ghost_gids_.end() && *it == g,
                  "HaloPlan: column index missing from the ghost set");
    return n_owned_ +
           static_cast<std::size_t>(it - ghost_gids_.begin());
  }

  /// Forward executor: owners ship the boundary entries of `owned` that
  /// peers ghost; this rank's ghosts land in `ghosts` (ascending-gid
  /// order, matching local_index).  `pack` is caller-owned scratch so the
  /// steady state allocates nothing.
  template <class T>
  void exchange(msg::Process& proc, std::span<const T> owned,
                std::span<T> ghosts, std::vector<T>& pack) const {
    HPFCG_REQUIRE(built_, "HaloPlan::exchange before build");
    HPFCG_REQUIRE(owned.size() == n_owned_ && ghosts.size() == n_ghosts(),
                  "HaloPlan::exchange: buffer sizes disagree with the plan");
    proc.conform_halo(sizeof(T), topo_fp_);
    trace::SpanScope span(
        proc.tracer_rank(), trace::SpanKind::kHalo,
        static_cast<std::uint32_t>(send_peers_.size() + recv_peers_.size()));
    std::uint64_t bytes = 0;
    for (const Peer& pe : send_peers_) {
      if (pack.size() < pe.count) pack.resize(pe.count);
      for (std::size_t j = 0; j < pe.count; ++j) {
        pack[j] = owned[send_idx_[pe.offset + j]];
      }
      proc.send<T>(pe.rank, kForwardTag,
                   std::span<const T>(pack.data(), pe.count));
      bytes += pe.count * sizeof(T);
    }
    for (const Peer& pe : recv_peers_) {
      proc.recv_into<T>(pe.rank, kForwardTag,
                        ghosts.subspan(pe.offset, pe.count));
    }
    span.set_bytes(bytes);
    auto& s = proc.stats();
    s.halo_msgs += send_peers_.size();
    s.halo_bytes += bytes;
  }

  /// Reverse executor: ship this rank's ghost *partials* back to their
  /// owners and add incoming partials into `owned` at the boundary
  /// positions, in ascending peer-rank order (deterministic summation).
  template <class T>
  void accumulate(msg::Process& proc, std::span<const T> ghost_partials,
                  std::span<T> owned, std::vector<T>& pack) const {
    HPFCG_REQUIRE(built_, "HaloPlan::accumulate before build");
    HPFCG_REQUIRE(
        owned.size() == n_owned_ && ghost_partials.size() == n_ghosts(),
        "HaloPlan::accumulate: buffer sizes disagree with the plan");
    proc.conform_halo(sizeof(T), topo_fp_);
    trace::SpanScope span(
        proc.tracer_rank(), trace::SpanKind::kHalo,
        static_cast<std::uint32_t>(send_peers_.size() + recv_peers_.size()),
        0, 0, /*aux=*/1);
    std::uint64_t bytes = 0;
    for (const Peer& pe : recv_peers_) {
      proc.send<T>(pe.rank, kReverseTag,
                   ghost_partials.subspan(pe.offset, pe.count));
      bytes += pe.count * sizeof(T);
    }
    std::uint64_t adds = 0;
    for (const Peer& pe : send_peers_) {
      if (pack.size() < pe.count) pack.resize(pe.count);
      proc.recv_into<T>(pe.rank, kReverseTag,
                        std::span<T>(pack.data(), pe.count));
      for (std::size_t j = 0; j < pe.count; ++j) {
        owned[send_idx_[pe.offset + j]] += pack[j];
      }
      adds += pe.count;
    }
    span.set_bytes(bytes);
    auto& s = proc.stats();
    s.halo_msgs += recv_peers_.size();
    s.halo_bytes += bytes;
    proc.add_flops(adds);
  }

  /// Pipelined Gauss–Seidel half-sweep exchange, phase 1 — call BEFORE the
  /// local row sweep.  For an ascending (forward) sweep each rank
  ///   1. ships its OLD owned boundary values to lower-ranked peers (their
  ///      rows precede this rank's in global order, so this rank's entries
  ///      are not-yet-updated columns there),
  ///   2. refreshes ghosts owned by higher ranks with their OLD values, and
  ///   3. blocks for UPDATED ghost values from lower-ranked owners — the
  ///      sequential cross-rank dependency (the paper's Scenario 2) that
  ///      makes the sweep bit-identical to a serial Gauss–Seidel pass in
  ///      global row order, for any NP and any contiguous partition.
  /// A descending (backward) sweep mirrors every direction.  Phase 2
  /// (sweep_post) ships this rank's updated boundary values downstream.
  /// Contiguous ownership means peer rank order IS global row order, so a
  /// single recv loop in ascending peer rank serves both roles: upstream
  /// owners' messages are their post-sweep values, downstream owners' are
  /// their pre-sweep values, and per-(src, tag) FIFO keeps successive
  /// half-sweeps paired.
  template <class T>
  void sweep_pre(msg::Process& proc, std::span<const T> owned,
                 std::span<T> ghosts, std::vector<T>& pack,
                 bool ascending) const {
    HPFCG_REQUIRE(built_, "HaloPlan::sweep_pre before build");
    HPFCG_REQUIRE(owned.size() == n_owned_ && ghosts.size() == n_ghosts(),
                  "HaloPlan::sweep_pre: buffer sizes disagree with the plan");
    proc.conform_halo(sizeof(T), topo_fp_);
    trace::SpanScope span(
        proc.tracer_rank(), trace::SpanKind::kHalo,
        static_cast<std::uint32_t>(send_peers_.size() + recv_peers_.size()),
        0, 0, /*aux=*/2);
    const int me = proc.rank();
    std::uint64_t bytes = 0;
    std::uint64_t msgs = 0;
    for (const Peer& pe : send_peers_) {
      const bool upstream = ascending ? pe.rank < me : pe.rank > me;
      if (!upstream) continue;
      if (pack.size() < pe.count) pack.resize(pe.count);
      for (std::size_t j = 0; j < pe.count; ++j) {
        pack[j] = owned[send_idx_[pe.offset + j]];
      }
      proc.send<T>(pe.rank, kSweepTag,
                   std::span<const T>(pack.data(), pe.count));
      bytes += pe.count * sizeof(T);
      ++msgs;
    }
    for (const Peer& pe : recv_peers_) {
      proc.recv_into<T>(pe.rank, kSweepTag,
                        ghosts.subspan(pe.offset, pe.count));
    }
    span.set_bytes(bytes);
    auto& s = proc.stats();
    s.halo_msgs += msgs;
    s.halo_bytes += bytes;
  }

  /// Phase 2 of the pipelined half sweep: ship this rank's now-updated
  /// boundary values to the peers the sweep has not reached yet (higher
  /// ranks for an ascending sweep, lower for a descending one) — they are
  /// blocked in their sweep_pre recv loop waiting for exactly these.
  template <class T>
  void sweep_post(msg::Process& proc, std::span<const T> owned,
                  std::vector<T>& pack, bool ascending) const {
    HPFCG_REQUIRE(built_, "HaloPlan::sweep_post before build");
    HPFCG_REQUIRE(owned.size() == n_owned_,
                  "HaloPlan::sweep_post: buffer size disagrees with the plan");
    const int me = proc.rank();
    std::uint64_t bytes = 0;
    std::uint64_t msgs = 0;
    for (const Peer& pe : send_peers_) {
      const bool downstream = ascending ? pe.rank > me : pe.rank < me;
      if (!downstream) continue;
      if (pack.size() < pe.count) pack.resize(pe.count);
      for (std::size_t j = 0; j < pe.count; ++j) {
        pack[j] = owned[send_idx_[pe.offset + j]];
      }
      proc.send<T>(pe.rank, kSweepTag,
                   std::span<const T>(pack.data(), pe.count));
      bytes += pe.count * sizeof(T);
      ++msgs;
    }
    auto& s = proc.stats();
    s.halo_msgs += msgs;
    s.halo_bytes += bytes;
  }

  /// Modeled time of one forward replay under the machine's cost model.
  [[nodiscard]] double modeled_exchange_seconds(
      const msg::CostModel& model, std::size_t elem_size) const {
    return model.halo_exchange_time(send_peers_.size(),
                                    send_idx_.size() * elem_size);
  }

 private:
  /// One neighbor's slice: `offset`/`count` index into the ghost array
  /// (recv peers) or into send_idx_ (send peers).
  struct Peer {
    int rank = 0;
    std::size_t offset = 0;
    std::size_t count = 0;
  };

  // Executor tags live in the user tag space (FIFO per (src, tag) keeps
  // repeated replays paired); distinct directions use distinct tags so a
  // matvec and a matvec_transpose in flight can never cross.
  static constexpr int kForwardTag = 0x2401;
  static constexpr int kReverseTag = 0x2402;
  static constexpr int kSweepTag = 0x2403;  ///< pipelined GS half-sweeps

  bool built_ = false;
  std::size_t n_owned_ = 0;
  std::size_t row_lo_ = 0;
  std::size_t topo_fp_ = 0;
  std::vector<std::size_t> ghost_gids_;  ///< sorted foreign columns
  std::vector<Peer> recv_peers_;         ///< owners of my ghosts (asc. rank)
  std::vector<Peer> send_peers_;         ///< ranks ghosting my entries
  std::vector<std::size_t> send_idx_;    ///< owned offsets to pack, per peer
};

}  // namespace hpfcg::sparse
