#pragma once
// REDISTRIBUTE for the distributed CSR trio (Section 5.2.2).
//
//   !EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
//
// The paper's SPARSE_MATRIX descriptor makes (row, col, a) one logical
// object, so changing the row distribution must move whole rows — the
// INDIVISABLE atoms — onto the new cut points.  This is the matrix half of
// hpf::redistribute: one personalized all-to-all carrying, per migrating
// rank pair, the packed (row-length deltas, col_idx, a) triple.  Both the
// old and new layouts are replicated cut-point arrays, so every rank
// derives the full exchange pattern locally: pairs moving no rows post no
// message (empty ranks under n < N_P cost nothing), rows staying put never
// touch a buffer, and an identical target degenerates to a local copy with
// no communication at all.
//
// The migrated matrix is row-aligned (ATOM semantics: each row's entries
// live with its owner) with caching enabled, and its new ownership map is
// registered with the hpfcg::check ledger; the exchange runs under a
// trace::kRedistribute span so cost accounting survives the swap.
//
// Halo invalidation: a migration changes the ownership map, so any cached
// HaloPlan is stale by construction.  This falls out of the structure —
// from_local_rows returns a *fresh* DistCsr whose plan is empty, and the
// next sweep (or solvers::make_csr_rebalancer's explicit prepare_halo())
// rebuilds it collectively against the new cuts.  The identical-target
// short-circuit below returns a copy of `src` whose plan is still valid,
// because the ownership map it was built against is unchanged.

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/trace/span.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

/// What one rank moved during a redistribute (this rank's send side; sum
/// across ranks for machine totals).
struct RedistributeStats {
  std::size_t rows_moved = 0;   ///< rows this rank shipped to other ranks
  std::size_t nnz_moved = 0;    ///< entries inside those rows
  std::size_t bytes_moved = 0;  ///< packed payload bytes sent
};

namespace detail {

/// Append the raw bytes of `src` to `out`.
template <class T>
void pack(std::vector<std::byte>& out, std::span<const T> src) {
  const std::size_t at = out.size();
  out.resize(at + src.size_bytes());
  if (!src.empty()) std::memcpy(out.data() + at, src.data(), src.size_bytes());
}

/// Read `count` Ts from `in` at byte offset `at` (advanced past them).
template <class T>
void unpack(std::span<const std::byte> in, std::size_t& at,
            std::span<T> dst) {
  HPFCG_REQUIRE(at + dst.size_bytes() <= in.size(),
                "sparse redistribute: truncated migration payload");
  if (!dst.empty()) std::memcpy(dst.data(), in.data() + at, dst.size_bytes());
  at += dst.size_bytes();
}

}  // namespace detail

/// Collective: migrate whole CSR rows of `src` onto the contiguous row
/// distribution described by `new_row_cuts` (np+1 nondecreasing cut
/// points).  Returns the row-aligned migrated matrix; `src` is only read
/// (its window is assembled first when stale).  Vectors bound to the matrix
/// must be re-aligned separately with hpf::redistribute onto
/// result.row_dist_ptr().
template <class T>
DistCsr<T> redistribute(DistCsr<T>& src,
                        const std::vector<std::size_t>& new_row_cuts,
                        RedistributeStats* stats = nullptr) {
  msg::Process& proc = src.proc();
  const int np = proc.nprocs();
  const int me = proc.rank();
  HPFCG_REQUIRE(new_row_cuts.size() == static_cast<std::size_t>(np) + 1,
                "sparse redistribute: need np+1 row cut points");
  const hpf::Distribution& from = src.row_dist();
  HPFCG_REQUIRE(from.contiguous(),
                "sparse redistribute: row distribution must be contiguous");
  auto target = std::make_shared<const hpf::Distribution>(
      hpf::Distribution::from_cuts(src.n(), new_row_cuts));

  if (stats != nullptr) *stats = RedistributeStats{};

  // Identical mapping: nothing migrates and no collective runs.  Both
  // distributions are replicated, so every rank takes this branch together.
  if (from == *target) return src;

  trace::SpanScope span(proc.tracer_rank(), trace::SpanKind::kRedistribute);

  const auto [old_lo, old_hi] = from.local_range(me);
  const std::size_t new_lo = new_row_cuts[static_cast<std::size_t>(me)];
  const std::size_t new_hi = new_row_cuts[static_cast<std::size_t>(me) + 1];
  const auto rp = src.local_row_ptr();  // global k values, rows+1 entries
  const auto [win_col, win_val] = src.assembled_window();
  const std::size_t base = rp.empty() ? 0 : rp.front();

  // Pack one (lengths, cols, vals) block per destination that receives any
  // of my rows; the self range is kept aside and never serialized.
  std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(np));
  std::uint64_t sent_bytes = 0;
  for (int d = 0; d < np; ++d) {
    if (d == me) continue;
    const std::size_t lo =
        std::max(old_lo, new_row_cuts[static_cast<std::size_t>(d)]);
    const std::size_t hi =
        std::min(old_hi, new_row_cuts[static_cast<std::size_t>(d) + 1]);
    if (lo >= hi) continue;
    auto& blk = send[static_cast<std::size_t>(d)];
    const std::size_t k0 = rp[lo - old_lo];
    const std::size_t k1 = rp[hi - old_lo];
    std::vector<std::size_t> lens(hi - lo);
    for (std::size_t g = lo; g < hi; ++g) {
      lens[g - lo] = rp[g - old_lo + 1] - rp[g - old_lo];
    }
    detail::pack<std::size_t>(blk, lens);
    detail::pack<std::size_t>(blk, win_col.subspan(k0 - base, k1 - k0));
    detail::pack<T>(blk, win_val.subspan(k0 - base, k1 - k0));
    sent_bytes += blk.size();
    if (stats != nullptr) {
      stats->rows_moved += hi - lo;
      stats->nnz_moved += k1 - k0;
      stats->bytes_moved += blk.size();
    }
  }
  span.set_bytes(sent_bytes);

  // Receive pattern from the same replicated cuts: rank s sends to me iff
  // its old range intersects my new range.
  std::vector<std::uint8_t> recv_mask(static_cast<std::size_t>(np), 0);
  for (int s = 0; s < np; ++s) {
    if (s == me) continue;
    const auto [slo, shi] = from.local_range(s);
    if (std::max(slo, new_lo) < std::min(shi, new_hi)) {
      recv_mask[static_cast<std::size_t>(s)] = 1;
    }
  }

  const auto recv = proc.alltoallv_masked<std::byte>(send, recv_mask);

  // Merge in ascending global row order.  Both distributions are
  // contiguous, so ascending source rank visits my new rows in order and
  // each source's block is already row-sorted.
  std::vector<std::size_t> lens;
  std::vector<std::size_t> col;
  std::vector<T> val;
  lens.reserve(new_hi - new_lo);
  for (int s = 0; s < np; ++s) {
    const auto [slo, shi] = from.local_range(s);
    const std::size_t lo = std::max(slo, new_lo);
    const std::size_t hi = std::min(shi, new_hi);
    if (lo >= hi) continue;
    if (s == me) {
      const std::size_t k0 = rp[lo - old_lo];
      const std::size_t k1 = rp[hi - old_lo];
      for (std::size_t g = lo; g < hi; ++g) {
        lens.push_back(rp[g - old_lo + 1] - rp[g - old_lo]);
      }
      col.insert(col.end(),
                 win_col.begin() + static_cast<std::ptrdiff_t>(k0 - base),
                 win_col.begin() + static_cast<std::ptrdiff_t>(k1 - base));
      val.insert(val.end(),
                 win_val.begin() + static_cast<std::ptrdiff_t>(k0 - base),
                 win_val.begin() + static_cast<std::ptrdiff_t>(k1 - base));
    } else {
      const auto& blk = recv[static_cast<std::size_t>(s)];
      std::size_t at = 0;
      std::vector<std::size_t> in_lens(hi - lo);
      detail::unpack<std::size_t>(blk, at, in_lens);
      std::size_t in_nnz = 0;
      for (const std::size_t len : in_lens) in_nnz += len;
      const std::size_t c0 = col.size();
      col.resize(c0 + in_nnz);
      val.resize(c0 + in_nnz);
      detail::unpack<std::size_t>(
          blk, at, std::span<std::size_t>(col.data() + c0, in_nnz));
      detail::unpack<T>(blk, at, std::span<T>(val.data() + c0, in_nnz));
      HPFCG_REQUIRE(at == blk.size(),
                    "sparse redistribute: surplus migration payload from "
                    "rank " + std::to_string(s));
      lens.insert(lens.end(), in_lens.begin(), in_lens.end());
    }
  }

  return DistCsr<T>::from_local_rows(proc, std::move(target), lens,
                                     std::move(col), std::move(val));
}

/// Convenience overload taking the target as a cut-point distribution.
template <class T>
DistCsr<T> redistribute(DistCsr<T>& src, const hpf::Distribution& target,
                        RedistributeStats* stats = nullptr) {
  return redistribute(src, target.cuts(), stats);
}

}  // namespace hpfcg::sparse
