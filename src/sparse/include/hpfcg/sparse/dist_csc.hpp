#pragma once
// Distributed CSC matrix — the paper's Scenario 2 (column-wise
// partitioning) for sparse storage, Sections 4-5.
//
// Columns are distributed by `col_dist` (aligned with p, so the
// element-wise multiply is local) and the nnz arrays (a, row) by
// `nnz_dist`.  The accumulation q(row(k)) += a(k)*pj is many-to-one: HPF-1
// cannot express the sweep in parallel (FORALL forbids accumulation,
// INDEPENDENT is violated by the write-after-write dependency), so the
// faithful lowering is the rank-serialized matvec_serial().  The paper's
// proposed PRIVATE ... WITH MERGE(+) extension privatizes q per processor
// and merges once — matvec_private() — turning the sweep parallel again.

#include <span>
#include <utility>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/distribution.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/sparse/csc.hpp"
#include "hpfcg/sparse/nnz_exchange.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

template <class T>
class DistCsc {
 public:
  /// Collective build from a replicated matrix.
  DistCsc(msg::Process& proc, const Csc<T>& a, hpf::DistPtr col_dist,
          hpf::DistPtr nnz_dist)
      : proc_(&proc),
        col_dist_(std::move(col_dist)),
        nnz_dist_(std::move(nnz_dist)),
        n_(a.n_cols()),
        plan_(proc, a.col_ptr(), *col_dist_, *nnz_dist_) {
    HPFCG_REQUIRE(a.n_rows() == a.n_cols(),
                  "DistCsc: square matrices only (CG context)");
    HPFCG_REQUIRE(col_dist_->size() == n_, "DistCsc: col dist size mismatch");
    HPFCG_REQUIRE(nnz_dist_->size() == a.nnz(),
                  "DistCsc: nnz dist size mismatch");

    const auto [col_lo, col_hi] = col_dist_->local_range(proc.rank());
    col_ptr_.assign(a.col_ptr().begin() + static_cast<std::ptrdiff_t>(col_lo),
                    a.col_ptr().begin() + static_cast<std::ptrdiff_t>(col_hi) +
                        1);

    const auto own = plan_.owned();
    row_o_.assign(a.row_idx().begin() + static_cast<std::ptrdiff_t>(own.begin),
                  a.row_idx().begin() + static_cast<std::ptrdiff_t>(own.end));
    val_o_.assign(a.values().begin() + static_cast<std::ptrdiff_t>(own.begin),
                  a.values().begin() + static_cast<std::ptrdiff_t>(own.end));

    const auto need = plan_.needed();
    row_w_.assign(need.size(), 0);
    val_w_.assign(need.size(), T{});
  }

  /// Atom-aligned build (ATOM:BLOCK over columns): nnz cuts follow the
  /// column cuts, every column lives wholly with its owner.
  static DistCsc col_aligned(msg::Process& proc, const Csc<T>& a,
                             hpf::DistPtr col_dist) {
    HPFCG_REQUIRE(col_dist->contiguous(),
                  "col_aligned: column distribution must be contiguous");
    std::vector<std::size_t> cuts(static_cast<std::size_t>(col_dist->nprocs()) +
                                  1);
    for (int r = 0; r <= col_dist->nprocs(); ++r) {
      const std::size_t col_cut =
          r == col_dist->nprocs() ? a.n_cols()
                                  : col_dist->local_range(r).first;
      cuts[static_cast<std::size_t>(r)] = a.col_ptr()[col_cut];
    }
    auto nnz_dist = std::make_shared<const hpf::Distribution>(
        hpf::Distribution::from_cuts(a.nnz(), std::move(cuts)));
    return DistCsc(proc, a, std::move(col_dist), std::move(nnz_dist));
  }

  [[nodiscard]] msg::Process& proc() const { return *proc_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] const hpf::Distribution& col_dist() const {
    return *col_dist_;
  }
  [[nodiscard]] const hpf::DistPtr& col_dist_ptr() const { return col_dist_; }
  [[nodiscard]] std::size_t local_cols() const { return col_ptr_.size() - 1; }
  [[nodiscard]] std::size_t local_nnz() const { return val_o_.size(); }
  [[nodiscard]] std::size_t remote_nnz() const { return plan_.remote_nnz(); }

  void enable_caching() { caching_ = true; }

  /// q = A * p with the paper's PRIVATE(q) WITH MERGE(+) semantics: every
  /// rank sweeps its own columns into a private full-length q, one SUM
  /// merge combines them, and each rank keeps its owned block.  Fully
  /// parallel; communication equals Scenario 1's broadcast volume.
  void matvec_private(const hpf::DistributedVector<T>& p,
                      hpf::DistributedVector<T>& q) {
    check_vectors(p, q);
    assemble();
    const std::size_t base = plan_.needed().begin;
    std::vector<T> q_priv(n_, T{});
    std::size_t flops = 0;
    for (std::size_t lc = 0; lc < local_cols(); ++lc) {
      const T pj = p.local()[lc];
      const std::size_t lo = col_ptr_[lc];
      const std::size_t hi = col_ptr_[lc + 1];
      for (std::size_t k = lo; k < hi; ++k) {
        q_priv[row_w_[k - base]] += val_w_[k - base] * pj;
      }
      flops += 2 * (hi - lo);
    }
    proc_->add_flops(flops);
    proc_->allreduce_vec(q_priv);  // MERGE(+)
    auto ql = q.local();
    for (std::size_t l = 0; l < ql.size(); ++l) ql[l] = q_priv[q.global_of(l)];
  }

  /// q = A * p with faithful HPF-1 semantics: the many-to-one updates
  /// serialize the ranks (token chain); every cross-owner contribution is
  /// shipped to its owner, which applies it before the next rank runs.
  /// The cost model books the serialization as wait time.
  void matvec_serial(const hpf::DistributedVector<T>& p,
                     hpf::DistributedVector<T>& q) {
    check_vectors(p, q);
    assemble();
    const std::size_t base = plan_.needed().begin;
    msg::Process& proc = *proc_;
    const int np = proc.nprocs();
    const int me = proc.rank();
    constexpr int kTag = 0x2101;

    for (auto& v : q.local()) v = T{};
    std::vector<T> partial(n_, T{});

    proc.sequential([&] {
      std::size_t flops = 0;
      for (std::size_t lc = 0; lc < local_cols(); ++lc) {
        const T pj = p.local()[lc];
        const std::size_t lo = col_ptr_[lc];
        const std::size_t hi = col_ptr_[lc + 1];
        for (std::size_t k = lo; k < hi; ++k) {
          partial[row_w_[k - base]] += val_w_[k - base] * pj;
        }
        flops += 2 * (hi - lo);
      }
      proc.add_flops(flops);
      for (int r = 0; r < np; ++r) {
        if (r == me) continue;
        std::vector<T> chunk(q.dist().local_count(r));
        for (std::size_t l = 0; l < chunk.size(); ++l) {
          chunk[l] = partial[q.dist().global_index(r, l)];
        }
        proc.send<T>(r, kTag, std::span<const T>(chunk.data(), chunk.size()));
      }
      auto ql = q.local();
      for (std::size_t l = 0; l < ql.size(); ++l) {
        ql[l] += partial[q.global_of(l)];
      }
      proc.add_flops(ql.size());
    });

    auto ql = q.local();
    for (int r = 0; r < np; ++r) {
      if (r == me) continue;
      std::vector<T> chunk(ql.size());
      proc.recv_into<T>(r, kTag, std::span<T>(chunk.data(), chunk.size()));
      for (std::size_t l = 0; l < ql.size(); ++l) ql[l] += chunk[l];
      proc.add_flops(ql.size());
    }
  }

 private:
  void check_vectors(const hpf::DistributedVector<T>& p,
                     const hpf::DistributedVector<T>& q) const {
    HPFCG_REQUIRE(p.size() == n_ && q.size() == n_,
                  "DistCsc::matvec: dimension mismatch");
    HPFCG_REQUIRE(p.dist() == *col_dist_ && q.dist() == *col_dist_,
                  "DistCsc::matvec: vectors must be aligned with the columns");
  }

  void assemble() {
    if (caching_ && assembled_) return;
    plan_.execute<std::size_t>(*proc_, std::span<const std::size_t>(row_o_),
                               std::span<std::size_t>(row_w_));
    plan_.execute<T>(*proc_, std::span<const T>(val_o_), std::span<T>(val_w_));
    assembled_ = true;
  }

  msg::Process* proc_;
  hpf::DistPtr col_dist_;
  hpf::DistPtr nnz_dist_;
  std::size_t n_ = 0;
  NnzExchangePlan plan_;
  std::vector<std::size_t> col_ptr_;  ///< my columns' pointers (global k)
  std::vector<std::size_t> row_o_;    ///< owned slice of row
  std::vector<T> val_o_;              ///< owned slice of a
  std::vector<std::size_t> row_w_;    ///< assembled needed window of row
  std::vector<T> val_w_;              ///< assembled needed window of a
  bool caching_ = false;
  bool assembled_ = false;
};

}  // namespace hpfcg::sparse
