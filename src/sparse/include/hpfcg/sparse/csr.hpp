#pragma once
// Compressed Sparse Row storage (Section 3 of the paper).
//
// The trio (row_ptr, col_idx, values) with row_ptr of length n+1: row i's
// entries live at positions [row_ptr[i], row_ptr[i+1]) of col_idx/values.
// This is the `(row, col, a)` trio of Figure 2 with the roles named
// explicitly.  Entries within a row are kept in ascending column order.

#include <cstddef>
#include <span>
#include <vector>

#include "hpfcg/sparse/coo.hpp"
#include "hpfcg/util/error.hpp"

namespace hpfcg::sparse {

template <class T>
class Csc;  // forward: conversions live in convert.hpp

/// Immutable-after-build CSR matrix.
template <class T>
class Csr {
 public:
  Csr() = default;

  /// Build from raw arrays (validated).
  Csr(std::size_t n_rows, std::size_t n_cols, std::vector<std::size_t> row_ptr,
      std::vector<std::size_t> col_idx, std::vector<T> values)
      : n_rows_(n_rows),
        n_cols_(n_cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    HPFCG_REQUIRE(row_ptr_.size() == n_rows_ + 1,
                  "Csr: row_ptr must have n_rows+1 entries");
    HPFCG_REQUIRE(row_ptr_.front() == 0 && row_ptr_.back() == col_idx_.size(),
                  "Csr: row_ptr must span [0, nnz]");
    HPFCG_REQUIRE(col_idx_.size() == values_.size(),
                  "Csr: col_idx/values length mismatch");
    for (std::size_t i = 0; i < n_rows_; ++i) {
      HPFCG_REQUIRE(row_ptr_[i] <= row_ptr_[i + 1],
                    "Csr: row_ptr must be nondecreasing");
    }
    for (const std::size_t c : col_idx_) {
      HPFCG_REQUIRE(c < n_cols_, "Csr: column index out of range");
    }
  }

  /// Build from a dense row-major matrix, dropping exact zeros.
  static Csr from_dense(std::size_t n_rows, std::size_t n_cols,
                        std::span<const T> dense) {
    HPFCG_REQUIRE(dense.size() == n_rows * n_cols,
                  "Csr::from_dense: shape mismatch");
    Coo<T> coo(n_rows, n_cols);
    for (std::size_t i = 0; i < n_rows; ++i) {
      for (std::size_t j = 0; j < n_cols; ++j) {
        const T v = dense[i * n_cols + j];
        if (v != T{}) coo.add(i, j, v);
      }
    }
    return from_coo(std::move(coo));
  }

  /// Build from (compressed) COO.
  static Csr from_coo(Coo<T> coo) {
    coo.compress();
    std::vector<std::size_t> row_ptr(coo.n_rows() + 1, 0);
    std::vector<std::size_t> col_idx;
    std::vector<T> values;
    col_idx.reserve(coo.nnz());
    values.reserve(coo.nnz());
    for (const auto& e : coo.entries()) ++row_ptr[e.row + 1];
    for (std::size_t i = 0; i < coo.n_rows(); ++i) row_ptr[i + 1] += row_ptr[i];
    for (const auto& e : coo.entries()) {
      col_idx.push_back(e.col);
      values.push_back(e.value);
    }
    return Csr(coo.n_rows(), coo.n_cols(), std::move(row_ptr),
               std::move(col_idx), std::move(values));
  }

  [[nodiscard]] std::size_t n_rows() const { return n_rows_; }
  [[nodiscard]] std::size_t n_cols() const { return n_cols_; }
  [[nodiscard]] std::size_t nnz() const { return col_idx_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<T>& values() const { return values_; }

  /// Number of nonzeros in row i.
  [[nodiscard]] std::size_t row_nnz(std::size_t i) const {
    HPFCG_REQUIRE(i < n_rows_, "row_nnz: out of range");
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  /// Column indices / values of row i.
  [[nodiscard]] std::span<const std::size_t> row_cols(std::size_t i) const {
    HPFCG_REQUIRE(i < n_rows_, "row_cols: out of range");
    return {col_idx_.data() + row_ptr_[i], row_nnz(i)};
  }
  [[nodiscard]] std::span<const T> row_values(std::size_t i) const {
    HPFCG_REQUIRE(i < n_rows_, "row_values: out of range");
    return {values_.data() + row_ptr_[i], row_nnz(i)};
  }

  /// Element lookup (zero if absent) — O(row nnz), for tests/diagnostics.
  [[nodiscard]] T at(std::size_t i, std::size_t j) const {
    const auto cols = row_cols(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == j) return row_values(i)[k];
    }
    return T{};
  }

  /// q = A * p, serial reference.  q must be sized n_rows.
  void matvec(std::span<const T> p, std::span<T> q) const {
    HPFCG_REQUIRE(p.size() == n_cols_ && q.size() == n_rows_,
                  "Csr::matvec: dimension mismatch");
    for (std::size_t i = 0; i < n_rows_; ++i) {
      T acc{};
      const std::size_t lo = row_ptr_[i];
      const std::size_t hi = row_ptr_[i + 1];
      for (std::size_t k = lo; k < hi; ++k) {
        acc += values_[k] * p[col_idx_[k]];
      }
      q[i] = acc;
    }
  }

  /// q = A^T * p, serial reference.  q must be sized n_cols.
  void matvec_transpose(std::span<const T> p, std::span<T> q) const {
    HPFCG_REQUIRE(p.size() == n_rows_ && q.size() == n_cols_,
                  "Csr::matvec_transpose: dimension mismatch");
    for (auto& v : q) v = T{};
    for (std::size_t i = 0; i < n_rows_; ++i) {
      const T pi = p[i];
      const std::size_t lo = row_ptr_[i];
      const std::size_t hi = row_ptr_[i + 1];
      for (std::size_t k = lo; k < hi; ++k) {
        q[col_idx_[k]] += values_[k] * pi;
      }
    }
  }

  /// Exact structural + numeric symmetry check (CG requires symmetric A).
  [[nodiscard]] bool is_symmetric(T tol = T{}) const {
    if (n_rows_ != n_cols_) return false;
    for (std::size_t i = 0; i < n_rows_; ++i) {
      const auto cols = row_cols(i);
      const auto vals = row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const T diff = at(cols[k], i) - vals[k];
        if ((diff < T{} ? -diff : diff) > tol) return false;
      }
    }
    return true;
  }

  /// Dense expansion (tests only).
  [[nodiscard]] std::vector<T> to_dense() const {
    std::vector<T> d(n_rows_ * n_cols_, T{});
    for (std::size_t i = 0; i < n_rows_; ++i) {
      const auto cols = row_cols(i);
      const auto vals = row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        d[i * n_cols_ + cols[k]] = vals[k];
      }
    }
    return d;
  }

  /// Main diagonal as a vector (zeros where absent).
  [[nodiscard]] std::vector<T> diagonal() const {
    const std::size_t n = std::min(n_rows_, n_cols_);
    std::vector<T> d(n, T{});
    for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
    return d;
  }

 private:
  std::size_t n_rows_ = 0;
  std::size_t n_cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<T> values_;
};

}  // namespace hpfcg::sparse
