#include "hpfcg/sparse/matrix_market.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iomanip>

#include "hpfcg/sparse/coo.hpp"
#include "hpfcg/util/str.hpp"

namespace hpfcg::sparse {

namespace {

/// Parse a whole token as a positive decimal index; npos on failure.
std::size_t parse_index(const std::string& tok) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE ||
      tok[0] == '-') {
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(v);
}

/// Parse a whole token as a floating-point value.
bool parse_value(const std::string& tok, double* out) {
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(tok.c_str(), &end);
  return end != tok.c_str() && *end == '\0' && errno != ERANGE;
}

/// Next content line (comments and blanks skipped), trimmed.  Returns false
/// at end of stream.  `lineno` tracks every physical line read.
bool next_content_line(std::istream& in, std::string* out,
                       std::size_t* lineno) {
  std::string line;
  while (std::getline(in, line)) {
    ++*lineno;
    const std::string t = util::trim(line);
    if (t.empty() || t[0] == '%') continue;
    *out = t;
    return true;
  }
  return false;
}

}  // namespace

Csr<double> read_matrix_market(std::istream& in) {
  std::size_t lineno = 0;
  std::string line;
  if (!std::getline(in, line)) throw MatrixMarketError("empty stream", 0);
  ++lineno;

  const auto header = util::split_ws(util::to_lower(line));
  if (header.size() < 4 || header[0] != "%%matrixmarket" ||
      header[1] != "matrix" || header[2] != "coordinate") {
    throw MatrixMarketError("unsupported header: " + line, lineno);
  }
  const std::string& field = header[3];
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    throw MatrixMarketError(
        "only real/integer/pattern fields supported, got '" + field + "'",
        lineno);
  }
  const bool symmetric = header.size() >= 5 && header[4] == "symmetric";
  if (header.size() >= 5 && header[4] != "general" &&
      header[4] != "symmetric") {
    throw MatrixMarketError(
        "only general/symmetric supported, got '" + header[4] + "'", lineno);
  }

  // Size line: the first content line after the banner.  Comments — and
  // blank lines, which the old stream-based loop treated as the size line —
  // are legal here.
  if (!next_content_line(in, &line, &lineno)) {
    throw MatrixMarketError("missing size line", lineno);
  }
  const auto size_toks = util::split_ws(line);
  std::size_t rows = 0, cols = 0, nnz = 0;
  if (size_toks.size() != 3 ||
      (rows = parse_index(size_toks[0])) == static_cast<std::size_t>(-1) ||
      (cols = parse_index(size_toks[1])) == static_cast<std::size_t>(-1) ||
      (nnz = parse_index(size_toks[2])) == static_cast<std::size_t>(-1)) {
    throw MatrixMarketError("malformed size line: " + line, lineno);
  }

  // Entry lines: exactly `nnz` of them, each with exactly the declared
  // field count.  Token-stream parsing here would let a short line silently
  // shift every following entry by one field — the classic way to read a
  // plausible-looking but wrong matrix.
  const std::size_t fields = pattern ? 2 : 3;
  Coo<double> coo(rows, cols);
  for (std::size_t k = 0; k < nnz; ++k) {
    if (!next_content_line(in, &line, &lineno)) {
      throw MatrixMarketError(
          "truncated entry list: got " + std::to_string(k) + " of " +
              std::to_string(nnz) + " declared entries",
          lineno);
    }
    const auto toks = util::split_ws(line);
    if (toks.size() != fields) {
      throw MatrixMarketError(
          "entry has " + std::to_string(toks.size()) + " fields, expected " +
              std::to_string(fields) + ": " + line,
          lineno);
    }
    const std::size_t i = parse_index(toks[0]);
    const std::size_t j = parse_index(toks[1]);
    double v = 1.0;
    if (i == static_cast<std::size_t>(-1) ||
        j == static_cast<std::size_t>(-1) ||
        (!pattern && !parse_value(toks[2], &v))) {
      throw MatrixMarketError("malformed entry: " + line, lineno);
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw MatrixMarketError(
          "entry (" + std::to_string(i) + ", " + std::to_string(j) +
              ") outside declared " + std::to_string(rows) + " x " +
              std::to_string(cols) + " shape",
          lineno);
    }
    if (symmetric && i != j) {
      coo.add_sym(i - 1, j - 1, v);
    } else {
      // Explicit diagonal entries of symmetric files are their own mirror.
      coo.add(i - 1, j - 1, v);
    }
  }

  // Anything left beyond the declared count is an inconsistency the old
  // parser swallowed.
  if (next_content_line(in, &line, &lineno)) {
    throw MatrixMarketError(
        "entries beyond the declared " + std::to_string(nnz) + ": " + line,
        lineno);
  }
  return Csr<double>::from_coo(std::move(coo));
}

Csr<double> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw MatrixMarketError("cannot open " + path, 0);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr<double>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by hpf-cg\n";
  out << a.n_rows() << ' ' << a.n_cols() << ' ' << a.nnz() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr<double>& a) {
  std::ofstream out(path);
  if (!out.good()) throw MatrixMarketError("cannot open " + path, 0);
  write_matrix_market(out, a);
}

}  // namespace hpfcg::sparse
