#include "hpfcg/sparse/matrix_market.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "hpfcg/sparse/coo.hpp"
#include "hpfcg/util/error.hpp"
#include "hpfcg/util/str.hpp"

namespace hpfcg::sparse {

Csr<double> read_matrix_market(std::istream& in) {
  std::string line;
  HPFCG_REQUIRE(static_cast<bool>(std::getline(in, line)),
                "matrix market: empty stream");
  const auto header = util::split_ws(util::to_lower(line));
  HPFCG_REQUIRE(header.size() >= 4 && header[0] == "%%matrixmarket" &&
                    header[1] == "matrix" && header[2] == "coordinate",
                "matrix market: unsupported header: " + line);
  HPFCG_REQUIRE(header[3] == "real" || header[3] == "integer",
                "matrix market: only real/integer fields supported");
  const bool symmetric = header.size() >= 5 && header[4] == "symmetric";
  if (header.size() >= 5) {
    HPFCG_REQUIRE(header[4] == "general" || header[4] == "symmetric",
                  "matrix market: only general/symmetric supported");
  }

  // Skip comments.
  do {
    HPFCG_REQUIRE(static_cast<bool>(std::getline(in, line)),
                  "matrix market: missing size line");
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  std::size_t rows = 0, cols = 0, nnz = 0;
  HPFCG_REQUIRE(static_cast<bool>(size_line >> rows >> cols >> nnz),
                "matrix market: malformed size line: " + line);

  Coo<double> coo(rows, cols);
  for (std::size_t k = 0; k < nnz; ++k) {
    std::size_t i = 0, j = 0;
    double v = 0.0;
    HPFCG_REQUIRE(static_cast<bool>(in >> i >> j >> v),
                  "matrix market: truncated entry list");
    HPFCG_REQUIRE(i >= 1 && i <= rows && j >= 1 && j <= cols,
                  "matrix market: entry out of range");
    if (symmetric && i != j) {
      coo.add_sym(i - 1, j - 1, v);
    } else {
      coo.add(i - 1, j - 1, v);
    }
  }
  return Csr<double>::from_coo(std::move(coo));
}

Csr<double> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  HPFCG_REQUIRE(in.good(), "matrix market: cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr<double>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by hpf-cg\n";
  out << a.n_rows() << ' ' << a.n_cols() << ' ' << a.nnz() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr<double>& a) {
  std::ofstream out(path);
  HPFCG_REQUIRE(out.good(), "matrix market: cannot open " + path);
  write_matrix_market(out, a);
}

}  // namespace hpfcg::sparse
