#include "hpfcg/sparse/generators.hpp"

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <utility>

#include "hpfcg/sparse/coo.hpp"
#include "hpfcg/util/error.hpp"
#include "hpfcg/util/rng.hpp"

namespace hpfcg::sparse {

namespace {

/// Grid extents multiply into the matrix dimension; huge extents would wrap
/// size_t and silently build a tiny wrong matrix.  Reject the overflow and
/// name the extents, exactly like Distribution::cyclic_size rejects k*NP.
std::size_t checked_grid_size(const char* who, std::size_t nx, std::size_t ny,
                              std::size_t nz) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  HPFCG_REQUIRE(nx <= kMax / ny,
                std::string(who) + ": nx*ny overflows size_t: nx=" +
                    std::to_string(nx) + " ny=" + std::to_string(ny));
  const std::size_t nxy = nx * ny;
  HPFCG_REQUIRE(nxy <= kMax / nz,
                std::string(who) + ": nx*ny*nz overflows size_t: nx=" +
                    std::to_string(nx) + " ny=" + std::to_string(ny) +
                    " nz=" + std::to_string(nz));
  return nxy * nz;
}

}  // namespace

Csr<double> laplacian_2d(std::size_t nx, std::size_t ny) {
  HPFCG_REQUIRE(nx >= 1 && ny >= 1, "laplacian_2d: empty grid");
  const std::size_t n = checked_grid_size("laplacian_2d", nx, ny, 1);
  Coo<double> coo(n, n);
  const auto id = [nx](std::size_t x, std::size_t y) { return y * nx + x; };
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const std::size_t i = id(x, y);
      coo.add(i, i, 4.0);
      if (x + 1 < nx) coo.add(i, id(x + 1, y), -1.0);
      if (x > 0) coo.add(i, id(x - 1, y), -1.0);
      if (y + 1 < ny) coo.add(i, id(x, y + 1), -1.0);
      if (y > 0) coo.add(i, id(x, y - 1), -1.0);
    }
  }
  return Csr<double>::from_coo(std::move(coo));
}

Csr<double> laplacian_3d(std::size_t nx, std::size_t ny, std::size_t nz) {
  HPFCG_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "laplacian_3d: empty grid");
  const std::size_t n = checked_grid_size("laplacian_3d", nx, ny, nz);
  Coo<double> coo(n, n);
  const auto id = [nx, ny](std::size_t x, std::size_t y, std::size_t z) {
    return (z * ny + y) * nx + x;
  };
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t i = id(x, y, z);
        coo.add(i, i, 6.0);
        if (x + 1 < nx) coo.add(i, id(x + 1, y, z), -1.0);
        if (x > 0) coo.add(i, id(x - 1, y, z), -1.0);
        if (y + 1 < ny) coo.add(i, id(x, y + 1, z), -1.0);
        if (y > 0) coo.add(i, id(x, y - 1, z), -1.0);
        if (z + 1 < nz) coo.add(i, id(x, y, z + 1), -1.0);
        if (z > 0) coo.add(i, id(x, y, z - 1), -1.0);
      }
    }
  }
  return Csr<double>::from_coo(std::move(coo));
}

Csr<double> stencil27_3d(std::size_t nx, std::size_t ny, std::size_t nz) {
  HPFCG_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "stencil27_3d: empty grid");
  const std::size_t n = checked_grid_size("stencil27_3d", nx, ny, nz);
  Coo<double> coo(n, n);
  const auto id = [nx, ny](std::size_t x, std::size_t y, std::size_t z) {
    return (z * ny + y) * nx + x;
  };
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t i = id(x, y, z);
        coo.add(i, i, 26.0);
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const auto xx = static_cast<std::ptrdiff_t>(x) + dx;
              const auto yy = static_cast<std::ptrdiff_t>(y) + dy;
              const auto zz = static_cast<std::ptrdiff_t>(z) + dz;
              if (xx < 0 || yy < 0 || zz < 0 ||
                  xx >= static_cast<std::ptrdiff_t>(nx) ||
                  yy >= static_cast<std::ptrdiff_t>(ny) ||
                  zz >= static_cast<std::ptrdiff_t>(nz)) {
                continue;
              }
              coo.add(i,
                      id(static_cast<std::size_t>(xx),
                         static_cast<std::size_t>(yy),
                         static_cast<std::size_t>(zz)),
                      -1.0);
            }
          }
        }
      }
    }
  }
  return Csr<double>::from_coo(std::move(coo));
}

Csr<double> tridiagonal(std::size_t n, double diag, double off) {
  HPFCG_REQUIRE(n >= 1, "tridiagonal: empty matrix");
  Coo<double> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, diag);
    if (i + 1 < n) {
      coo.add(i, i + 1, off);
      coo.add(i + 1, i, off);
    }
  }
  return Csr<double>::from_coo(std::move(coo));
}

namespace {

/// Shared helper: symmetric pattern + strict diagonal dominance -> SPD.
Csr<double> spd_from_pattern(std::size_t n,
                             const std::set<std::pair<std::size_t, std::size_t>>&
                                 upper_pattern,
                             util::Xoshiro256& rng) {
  Coo<double> coo(n, n);
  std::vector<double> row_abs_sum(n, 0.0);
  for (const auto& [i, j] : upper_pattern) {
    const double v = -rng.uniform(0.1, 1.0);  // negative off-diagonals
    coo.add_sym(i, j, v);
    row_abs_sum[i] += std::abs(v);
    row_abs_sum[j] += std::abs(v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, row_abs_sum[i] + 1.0);  // strict dominance margin
  }
  return Csr<double>::from_coo(std::move(coo));
}

}  // namespace

Csr<double> random_spd(std::size_t n, std::size_t avg_row_nnz,
                       std::uint64_t seed) {
  HPFCG_REQUIRE(n >= 1, "random_spd: empty matrix");
  HPFCG_REQUIRE(avg_row_nnz >= 1, "random_spd: need at least the diagonal");
  util::Xoshiro256 rng(seed);
  std::set<std::pair<std::size_t, std::size_t>> pattern;
  // avg_row_nnz counts diagonal + off-diagonals; each off-diagonal pair
  // contributes to two rows.
  const std::size_t target_pairs = n * (avg_row_nnz - 1) / 2;
  while (pattern.size() < target_pairs && n > 1) {
    std::size_t i = rng.below(n);
    std::size_t j = rng.below(n);
    if (i == j) continue;
    if (i > j) std::swap(i, j);
    pattern.insert({i, j});
  }
  return spd_from_pattern(n, pattern, rng);
}

Csr<double> powerlaw_spd(std::size_t n, std::size_t base_degree,
                         std::size_t hub_count, std::size_t hub_degree,
                         std::uint64_t seed) {
  HPFCG_REQUIRE(n >= 2, "powerlaw_spd: matrix too small");
  HPFCG_REQUIRE(hub_count <= n, "powerlaw_spd: more hubs than rows");
  util::Xoshiro256 rng(seed);
  std::set<std::pair<std::size_t, std::size_t>> pattern;
  // Hubs are clustered — the irregular-grid picture of Section 5.2.2 is a
  // densely connected *region*, which is exactly what defeats contiguous
  // equal-atom-count distributions (spreading the hubs evenly would
  // re-balance the blocks by accident).
  const std::size_t cluster_start = hub_count >= n ? 0 : n / 4;
  const auto hub_row = [&](std::size_t h) {
    return (cluster_start + h) % n;
  };
  for (std::size_t h = 0; h < hub_count; ++h) {
    const std::size_t i = hub_row(h);
    std::size_t added = 0;
    while (added < hub_degree) {
      const std::size_t j = rng.below(n);
      if (j == i) continue;
      const auto key = i < j ? std::make_pair(i, j) : std::make_pair(j, i);
      if (pattern.insert(key).second) ++added;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < base_degree && attempts < 16 * base_degree + 16) {
      ++attempts;
      const std::size_t j = rng.below(n);
      if (j == i) continue;
      const auto key = i < j ? std::make_pair(i, j) : std::make_pair(j, i);
      if (pattern.insert(key).second) ++added;
    }
  }
  return spd_from_pattern(n, pattern, rng);
}

Csr<double> diagonal_spectrum(const std::vector<double>& eigenvalues) {
  HPFCG_REQUIRE(!eigenvalues.empty(), "diagonal_spectrum: empty spectrum");
  const std::size_t n = eigenvalues.size();
  Coo<double> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    HPFCG_REQUIRE(eigenvalues[i] > 0.0,
                  "diagonal_spectrum: eigenvalues must be positive for SPD");
    coo.add(i, i, eigenvalues[i]);
  }
  return Csr<double>::from_coo(std::move(coo));
}

Csr<double> figure1_matrix() {
  // Figure 1's 6×6 matrix, a_ij encoded as 10*i + j (1-based).
  Coo<double> coo(6, 6);
  const auto a = [&coo](std::size_t i, std::size_t j) {
    coo.add(i - 1, j - 1, static_cast<double>(10 * i + j));
  };
  a(1, 1); a(1, 2); a(1, 5);
  a(2, 1); a(2, 2); a(2, 4); a(2, 6);
  a(3, 1); a(3, 3);
  a(4, 2); a(4, 4);
  a(5, 1); a(5, 5);
  a(6, 2); a(6, 6);
  return Csr<double>::from_coo(std::move(coo));
}

double em_dense_entry(std::size_t i, std::size_t j, double range) {
  if (i == j) return 2.0;
  const double d = i > j ? static_cast<double>(i - j) : static_cast<double>(j - i);
  return std::exp(-d / range);
}

std::vector<double> random_rhs(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  return b;
}

}  // namespace hpfcg::sparse
