#include "hpfcg/sparse/halo.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hpfcg::sparse::halo {

namespace {

bool env_truthy(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "ON") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "TRUE") == 0 || std::strcmp(v, "yes") == 0;
}

std::atomic<bool>& enabled_flag() {
  // Opt-out, not opt-in: the executor is the production path; the legacy
  // O(n) gather survives behind HPFCG_HALO=0 for A/B byte comparisons.
  static std::atomic<bool> flag{env_truthy("HPFCG_HALO", true)};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void warn_fallback_once() {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true, std::memory_order_relaxed)) return;
  std::fprintf(
      stderr,
      "hpfcg: halo executor requested but the row distribution is not "
      "contiguous; falling back to the O(n) gather path (counted in "
      "Stats::halo_fallbacks).\n");
}

}  // namespace hpfcg::sparse::halo
