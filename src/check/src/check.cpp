#include "hpfcg/check/check.hpp"

#ifdef HPFCG_CHECK_ENABLED

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hpfcg::check {

namespace {

bool env_truthy(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "ON") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "TRUE") == 0 || std::strcmp(v, "yes") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_truthy("HPFCG_CHECK", false)};
  return flag;
}

std::atomic<std::int64_t>& timeout_flag() {
  static std::atomic<std::int64_t> ms{[] {
    const char* v = std::getenv("HPFCG_CHECK_TIMEOUT_MS");
    if (v != nullptr) {
      const long long parsed = std::atoll(v);
      if (parsed > 0) return static_cast<std::int64_t>(parsed);
    }
    return static_cast<std::int64_t>(20000);
  }()};
  return ms;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::int64_t watchdog_timeout_ms() {
  return timeout_flag().load(std::memory_order_relaxed);
}

void set_watchdog_timeout_ms(std::int64_t ms) {
  timeout_flag().store(ms, std::memory_order_relaxed);
}

}  // namespace hpfcg::check

#endif  // HPFCG_CHECK_ENABLED
