#include "hpfcg/check/collective_ledger.hpp"

#include <sstream>

#include "hpfcg/util/error.hpp"

namespace hpfcg::check {

const char* to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kBarrier: return "barrier";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kReduce: return "reduce";
    case CollectiveKind::kAllreduceVec: return "allreduce_vec";
    case CollectiveKind::kAllreduceBatch: return "allreduce_batch";
    case CollectiveKind::kReduceBatch: return "reduce_batch";
    case CollectiveKind::kAllgatherv: return "allgatherv";
    case CollectiveKind::kGatherv: return "gatherv";
    case CollectiveKind::kScatterv: return "scatterv";
    case CollectiveKind::kAlltoallv: return "alltoallv";
    case CollectiveKind::kNeighborAlltoallv: return "neighbor_alltoallv";
    case CollectiveKind::kHaloExchange: return "halo_exchange";
    case CollectiveKind::kExscan: return "exscan";
    case CollectiveKind::kSequential: return "sequential";
    case CollectiveKind::kReproReduce: return "repro_reduce";
    case CollectiveKind::kReplicatedBuild: return "replicated_build";
  }
  return "?";
}

std::string CollectiveRecord::describe() const {
  std::ostringstream os;
  if (kind == CollectiveKind::kReplicatedBuild) {
    os << "replicated_build(fingerprint=0x" << std::hex << count << ')';
    return os.str();
  }
  os << to_string(kind) << '(';
  bool sep = false;
  if (root != kNoRoot) {
    os << "root=" << root;
    sep = true;
  }
  if (elem_size != 0) {
    os << (sep ? ", " : "") << "elem=" << elem_size << 'B';
    sep = true;
  }
  if (count != kUnknownCount) {
    os << (sep ? ", " : "") << "count=" << count;
  }
  os << ')';
  return os.str();
}

namespace {

[[noreturn]] void fail_divergent(std::uint64_t seq, int divergent,
                                 const CollectiveRecord& div_rec,
                                 const CollectiveRecord& ref_rec) {
  std::ostringstream os;
  os << "hpfcg::check: collective conformance violation at collective #" << seq
     << ": rank " << divergent << " entered " << div_rec.describe()
     << " but rank 0 entered " << ref_rec.describe();
  throw util::Error(os.str());
}

}  // namespace

void CollectiveLedger::post(int rank, std::uint64_t seq,
                            const CollectiveRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.try_emplace(seq).first;
  Entry& e = it->second;
  ++e.posts;
  if (rank == 0) {
    e.have_ref = true;
    e.ref = rec;
    for (const auto& [parked_rank, parked_rec] : e.parked) {
      if (!parked_rec.conforms(rec)) {
        fail_divergent(seq, parked_rank, parked_rec, rec);
      }
    }
    e.parked.clear();
  } else if (e.have_ref) {
    if (!rec.conforms(e.ref)) fail_divergent(seq, rank, rec, e.ref);
  } else {
    e.parked.emplace_back(rank, rec);
  }
  if (e.posts == nprocs_) live_.erase(it);  // fully conformed: retire
}

}  // namespace hpfcg::check
