#include "hpfcg/check/harness.hpp"

#include <sstream>

namespace hpfcg::check {

bool Harness::anyone_waiting() const {
  std::lock_guard<std::mutex> lock(wait_mu_);
  for (const auto& w : waits_) {
    if (w.kind != WaitKind::kNone) return true;
  }
  return false;
}

std::string Harness::dump_wait_state() const {
  std::lock_guard<std::mutex> lock(wait_mu_);
  std::ostringstream os;
  for (int r = 0; r < nprocs_; ++r) {
    const auto& w = waits_[static_cast<std::size_t>(r)];
    os << "  rank " << r << ": ";
    switch (w.kind) {
      case WaitKind::kNone:
        os << "running (not blocked in the runtime)";
        break;
      case WaitKind::kRecv:
        os << "blocked in recv(src=";
        if (w.src < 0) {
          os << "any";
        } else {
          os << w.src;
        }
        os << ", tag=" << w.tag << ")";
        break;
      case WaitKind::kBarrier:
        os << "blocked in barrier";
        break;
    }
    os << '\n';
  }
  return os.str();
}

void Harness::report_violation(std::string msg) {
  std::lock_guard<std::mutex> lock(viol_mu_);
  violations_.push_back(std::move(msg));
}

std::vector<std::string> Harness::violations() const {
  std::lock_guard<std::mutex> lock(viol_mu_);
  return violations_;
}

}  // namespace hpfcg::check
