#pragma once
// hpfcg::check — the machine-checked correctness layer.
//
// The paper's argument is about which loops are *legal* to parallelize and
// which communication patterns the compiler may emit; the hand-lowered SPMD
// runtime can get exactly that wrong silently (mismatched collectives,
// many-to-one races, out-of-shard writes).  This module is an MPI-checker
// style (MUST-like) conformance layer threaded through msg/hpf/ext:
//
//   * collective conformance — every rank entering a collective posts an
//     op fingerprint (kind, root, element size, count, per-rank sequence
//     number) to a shared ledger; divergence is diagnosed by name instead
//     of deadlocking (collective_ledger.hpp);
//   * deadlock / leak detection — a watchdog dumps per-rank wait-for state
//     (who is blocked in which recv/collective, on which tag) when the
//     machine stops making progress, and a teardown audit reports
//     unreceived messages left in mailboxes (harness.hpp);
//   * ownership conformance — DistributedVector / DistCsr / PrivateArray
//     trap accesses to non-owned global indices and merge-before-publish
//     violations (the paper's Scenario-2 race, Section 5.1).
//
// Cost discipline: the layer is zero-cost when compiled out
// (-DHPFCG_CHECK=OFF ⇒ every hook folds to a constant-false branch) and
// side-channel-only when on: conformance never sends messages through the
// simulated network, so Stats counters (messages/bytes/flops, modeled
// times) are bit-identical whether checking is enabled or not.
//
// Enablement is two-level:
//   compile time — CMake option HPFCG_CHECK (ON by default) defines
//     HPFCG_CHECK_ENABLED; OFF removes every hook from the binary;
//   run time — environment variable HPFCG_CHECK=1|on|true (sampled once),
//     or programmatic set_enabled() (tests, benches).  A msg::Runtime
//     samples the flag at construction.

#include <cstdint>

namespace hpfcg::check {

/// True when the verification hooks are compiled into the binary.
#ifdef HPFCG_CHECK_ENABLED
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

#ifdef HPFCG_CHECK_ENABLED
/// Runtime switch: env HPFCG_CHECK (parsed once) or set_enabled().
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Watchdog no-progress timeout in milliseconds (env HPFCG_CHECK_TIMEOUT_MS,
/// default 20000).  Settable programmatically for deadlock tests.
[[nodiscard]] std::int64_t watchdog_timeout_ms();
void set_watchdog_timeout_ms(std::int64_t ms);
#else
[[nodiscard]] inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
[[nodiscard]] inline constexpr std::int64_t watchdog_timeout_ms() { return 0; }
inline void set_watchdog_timeout_ms(std::int64_t) {}
#endif

/// RAII enable/disable for tests: restores the previous state on scope exit.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ~ScopedEnable() { set_enabled(prev_); }

 private:
  bool prev_;
};

}  // namespace hpfcg::check
