#pragma once
// Per-machine verification harness: owns the collective ledger, the
// wait-for registry the deadlock watchdog reads, and the violation list the
// teardown audit reports.  One instance per msg::Runtime, created when
// checking is enabled at Runtime construction; every hook is a
// side-channel (no simulated messages, no Stats mutation).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hpfcg/check/collective_ledger.hpp"

namespace hpfcg::check {

/// What a rank is blocked on right now (for the watchdog's wait-for dump).
enum class WaitKind : std::uint8_t { kNone, kRecv, kBarrier };

struct WaitState {
  WaitKind kind = WaitKind::kNone;
  int src = 0;  ///< recv: source rank (kAnySource = -1)
  int tag = 0;  ///< recv: tag
};

class Harness {
 public:
  explicit Harness(int nprocs)
      : nprocs_(nprocs), ledger_(nprocs), waits_(static_cast<std::size_t>(nprocs)) {}

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  // ---- collective conformance -----------------------------------------
  /// Throws util::Error naming the divergent rank on mismatch.
  void on_collective(int rank, std::uint64_t seq, const CollectiveRecord& rec) {
    if (nprocs_ > 1) ledger_.post(rank, seq, rec);
    note_progress();
  }

  // ---- wait-for registry / progress ------------------------------------
  void begin_wait(int rank, WaitKind kind, int src = 0, int tag = 0) {
    std::lock_guard<std::mutex> lock(wait_mu_);
    waits_[static_cast<std::size_t>(rank)] = WaitState{kind, src, tag};
  }

  void end_wait(int rank) {
    {
      std::lock_guard<std::mutex> lock(wait_mu_);
      waits_[static_cast<std::size_t>(rank)] = WaitState{};
    }
    note_progress();
  }

  /// Any observable step (send, receive completion, collective entry).
  void note_progress() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// True if at least one rank is currently blocked.
  [[nodiscard]] bool anyone_waiting() const;

  /// Human-readable per-rank wait-for table for the watchdog diagnostic.
  [[nodiscard]] std::string dump_wait_state() const;

  // ---- non-throwing violation reports (surfaced by the teardown audit) --
  void report_violation(std::string msg);
  [[nodiscard]] std::vector<std::string> violations() const;

 private:
  int nprocs_;
  CollectiveLedger ledger_;

  mutable std::mutex wait_mu_;
  std::vector<WaitState> waits_;
  std::atomic<std::uint64_t> epoch_{0};

  mutable std::mutex viol_mu_;
  std::vector<std::string> violations_;
};

}  // namespace hpfcg::check
