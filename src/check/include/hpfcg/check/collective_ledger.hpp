#pragma once
// Collective-conformance ledger.
//
// SPMD discipline requires every rank to issue the same collectives in the
// same program order with compatible shapes.  Each rank entering a
// collective posts a fingerprint — (kind, root, element size, element
// count) at its per-rank sequence number — to this shared ledger, outside
// the simulated network (no messages, no Stats perturbation).  Rank 0's
// stream is authoritative: posts arriving before rank 0's are parked and
// validated when it lands, so any mismatching post raises a diagnostic
// deterministically naming the divergent rank (whoever disagrees with
// rank 0) instead of letting the mismatched trees deadlock.
//
// Counts that legitimately differ across ranks (e.g. a rank's local block
// in allgatherv) are fingerprinted by a rank-invariant quantity (the global
// total); counts no rank can know globally (header-carrying broadcast) use
// kUnknownCount and are not compared.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hpfcg::check {

enum class CollectiveKind : std::uint8_t {
  kBarrier,
  kBroadcast,
  kReduce,
  kAllreduceVec,
  /// Fused multi-value collectives: `count` is the batch width, so a rank
  /// diverging on how many scalars it fused is named by the ledger.
  kAllreduceBatch,
  kReduceBatch,
  kAllgatherv,
  kGatherv,
  kScatterv,
  kAlltoallv,
  /// Sender-described sparse personalized all-to-all (halo plan builds):
  /// per-pair counts are exchanged in a header pass, so only kind and
  /// element size are conformable.
  kNeighborAlltoallv,
  /// Cached halo-executor exchange (sparse::HaloPlan): `count` carries the
  /// plan's replicated topology fingerprint, so a rank executing a stale
  /// or divergent plan is named by the ledger.
  kHaloExchange,
  kExscan,
  kSequential,
  /// Reproducible-mode sum reduction (hpfcg::repro): the exact
  /// superaccumulator all-reduce that replaces the float merge tree.
  /// `count` is the batch width, like kAllreduceBatch, so a rank that
  /// disagrees on whether the mode is on — or on how many values it merged
  /// — is named by the ledger instead of deadlocking on mismatched trees.
  kReproReduce,
  /// Not a communication op: asserts a structure every rank builds locally
  /// (e.g. a replicated matrix) is identical machine-wide.  `count` carries
  /// a content fingerprint instead of an element count.
  kReplicatedBuild,
};

[[nodiscard]] const char* to_string(CollectiveKind k);

/// Sentinel for shapes not globally known (compared as "don't care").
inline constexpr std::size_t kUnknownCount = static_cast<std::size_t>(-1);
/// Root value for rootless collectives.
inline constexpr int kNoRoot = -1;

/// What one rank claims it is entering.
struct CollectiveRecord {
  CollectiveKind kind = CollectiveKind::kBarrier;
  int root = kNoRoot;
  std::size_t elem_size = 0;  ///< sizeof(T); 0 for barrier/sequential
  std::size_t count = kUnknownCount;

  [[nodiscard]] bool conforms(const CollectiveRecord& o) const {
    return kind == o.kind && root == o.root && elem_size == o.elem_size &&
           (count == kUnknownCount || o.count == kUnknownCount ||
            count == o.count);
  }

  [[nodiscard]] std::string describe() const;
};

/// Shared, mutex-protected conformance state for one machine.  Rank 0's
/// stream is authoritative: posts arriving before rank 0's are parked and
/// validated when it lands, so the rank named divergent is deterministic
/// (whoever disagrees with rank 0) regardless of thread arrival order.
/// Throws util::Error on divergence, naming the divergent rank.
class CollectiveLedger {
 public:
  explicit CollectiveLedger(int nprocs) : nprocs_(nprocs) {}

  /// Rank `rank` enters its `seq`-th conformance-relevant operation.
  void post(int rank, std::uint64_t seq, const CollectiveRecord& rec);

 private:
  struct Entry {
    bool have_ref = false;  ///< rank 0 has posted
    CollectiveRecord ref;   ///< rank 0's record
    std::vector<std::pair<int, CollectiveRecord>> parked;  ///< pre-rank-0
    int posts = 0;  ///< ranks seen; entry retires at nprocs
  };

  int nprocs_;
  std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> live_;
};

}  // namespace hpfcg::check
